module comfase

go 1.22
