// Package comfase benchmarks regenerate the paper's evaluation artifacts
// (one benchmark per table/figure of §IV-C) plus the ablations called
// out in DESIGN.md. Absolute times are hardware-bound; the reported
// custom metrics (severe/benign/negligible counts, collision counts)
// carry the reproduced result shapes.
//
// Run everything:  go test -bench=. -benchmem
// Full-grid runs (Table II's 11250 experiments) live in
// cmd/comfase-figures; the benchmarks use representative sub-grids so a
// bench sweep completes in minutes.
package comfase

import (
	"context"
	"runtime"
	"testing"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/figures"
	"comfase/internal/phy"
	"comfase/internal/platoon"
	"comfase/internal/registry"
	"comfase/internal/registry/param"
	"comfase/internal/runner"
	"comfase/internal/safety"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/trace"
	"comfase/internal/wave1609"
)

// newEngine builds a paper-configured engine and primes its golden run.
func newEngine(b *testing.B, cfg core.EngineConfig) *core.Engine {
	b.Helper()
	if cfg.Scenario.NrVehicles == 0 {
		cfg.Scenario = scenario.PaperScenario()
	}
	if cfg.Comm.PacketBits == 0 {
		cfg.Comm = scenario.PaperCommModel()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	if _, _, err := eng.GoldenRun(); err != nil {
		b.Fatalf("GoldenRun: %v", err)
	}
	return eng
}

// BenchmarkFig4GoldenRun regenerates Fig. 4: the 60 s attack-free
// four-vehicle sinusoidal platoon run whose speed/acceleration profiles
// anchor the classification thresholds.
func BenchmarkFig4GoldenRun(b *testing.B) {
	var maxDecel float64
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(core.EngineConfig{
			Scenario: scenario.PaperScenario(),
			Comm:     scenario.PaperCommModel(),
			Seed:     1,
		})
		if err != nil {
			b.Fatalf("NewEngine: %v", err)
		}
		_, res, err := eng.GoldenRun()
		if err != nil {
			b.Fatalf("GoldenRun: %v", err)
		}
		maxDecel = res.MaxDecel
	}
	b.ReportMetric(maxDecel, "golden-max-decel-mps2")
}

// runSweep executes a set of experiments and reports outcome metrics.
func runSweep(b *testing.B, eng *core.Engine, specs []core.ExperimentSpec) {
	b.Helper()
	var counts classify.Counts
	for i := 0; i < b.N; i++ {
		counts = classify.Counts{}
		for _, spec := range specs {
			res, err := eng.RunExperiment(spec)
			if err != nil {
				b.Fatalf("RunExperiment(%v): %v", spec, err)
			}
			counts.Add(res.Outcome)
		}
	}
	b.ReportMetric(float64(counts.Severe), "severe")
	b.ReportMetric(float64(counts.Benign), "benign")
	b.ReportMetric(float64(counts.Negligible), "negligible")
	b.ReportMetric(float64(len(specs)), "experiments")
}

// BenchmarkFig5DurationSweep regenerates the Fig. 5 series: outcome vs
// attack duration at a severe-prone grid point. The paper's shape:
// severe counts rise with duration and saturate around 4-5 s.
func BenchmarkFig5DurationSweep(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	var specs []core.ExperimentSpec
	for _, d := range []des.Time{
		des.Second, 2 * des.Second, 4 * des.Second,
		8 * des.Second, 16 * des.Second, 30 * des.Second,
	} {
		specs = append(specs, core.ExperimentSpec{
			Kind: core.AttackDelay, Targets: []string{"vehicle.2"},
			Value: 2.0, Start: 18 * des.Second, Duration: d,
		})
	}
	b.ResetTimer()
	runSweep(b, eng, specs)
}

// BenchmarkFig6PDSweep regenerates the Fig. 6 series: outcome vs
// propagation-delay value. The paper's shape: more severe cases at
// higher PD, saturating beyond ~2.2 s.
func BenchmarkFig6PDSweep(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	var specs []core.ExperimentSpec
	for _, pd := range []float64{0.2, 0.8, 1.4, 2.2, 3.0} {
		specs = append(specs, core.ExperimentSpec{
			Kind: core.AttackDelay, Targets: []string{"vehicle.2"},
			Value: pd, Start: 18 * des.Second, Duration: 10 * des.Second,
		})
	}
	b.ResetTimer()
	runSweep(b, eng, specs)
}

// BenchmarkFig7StartTimeSweep regenerates the Fig. 7 series: outcome vs
// attack start time. The paper's shape: mostly severe, with a benign dip
// where the platoon's acceleration is near zero (our phase: ~19.8 s).
func BenchmarkFig7StartTimeSweep(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	var specs []core.ExperimentSpec
	for _, s := range []des.Time{
		17 * des.Second, 18 * des.Second, 19 * des.Second,
		19800 * des.Millisecond, 20600 * des.Millisecond, 21400 * des.Millisecond,
	} {
		specs = append(specs, core.ExperimentSpec{
			Kind: core.AttackDelay, Targets: []string{"vehicle.2"},
			Value: 2.0, Start: s, Duration: 10 * des.Second,
		})
	}
	b.ResetTimer()
	runSweep(b, eng, specs)
}

// BenchmarkTableDelayCampaign runs the representative reduced delay grid
// (150 experiments; the paper's full Table II grid of 11250 runs via
// cmd/comfase-figures). Paper totals: 5923 severe / 4941 benign / 386
// negligible / 0 non-effective.
func BenchmarkTableDelayCampaign(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	setup := figures.DelaySetup(true)
	b.ResetTimer()
	var counts classify.Counts
	for i := 0; i < b.N; i++ {
		res, err := eng.RunCampaign(setup, nil)
		if err != nil {
			b.Fatalf("RunCampaign: %v", err)
		}
		counts = res.Counts
	}
	b.ReportMetric(float64(counts.Severe), "severe")
	b.ReportMetric(float64(counts.Benign), "benign")
	b.ReportMetric(float64(counts.Negligible), "negligible")
	b.ReportMetric(float64(counts.NonEffective), "non-effective")
}

// BenchmarkTableDoSCampaign runs the paper's full §IV-C2 DoS campaign
// (25 experiments). Paper: 25/25 severe, colliders V2 48% / V3 40% /
// V4 12%.
func BenchmarkTableDoSCampaign(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	setup := core.PaperDoSCampaign()
	b.ResetTimer()
	var counts classify.Counts
	colliders := map[string]int{}
	for i := 0; i < b.N; i++ {
		res, err := eng.RunCampaign(setup, nil)
		if err != nil {
			b.Fatalf("RunCampaign: %v", err)
		}
		counts = res.Counts
		colliders = map[string]int{}
		for _, e := range res.Experiments {
			if e.Collider != "" {
				colliders[e.Collider]++
			}
		}
	}
	b.ReportMetric(float64(counts.Severe), "severe")
	b.ReportMetric(float64(colliders["vehicle.2"]), "collider-v2")
	b.ReportMetric(float64(colliders["vehicle.3"]), "collider-v3")
	b.ReportMetric(float64(colliders["vehicle.4"]), "collider-v4")
}

// BenchmarkAblationControllers compares controller resilience (CACC vs
// Ploeg vs ACC) under the same delay attack — the DESIGN.md A1 ablation.
func BenchmarkAblationControllers(b *testing.B) {
	spec := core.ExperimentSpec{
		Kind: core.AttackDelay, Targets: []string{"vehicle.2"},
		Value: 2.0, Start: 18 * des.Second, Duration: 10 * des.Second,
	}
	for _, c := range []struct {
		name    string
		factory scenario.ControllerFactory
	}{
		{name: "CACC", factory: func(int) platoon.Controller { return platoon.DefaultCACC() }},
		{name: "PLOEG", factory: func(int) platoon.Controller { return platoon.DefaultPloeg() }},
		{name: "ACC", factory: func(int) platoon.Controller { return platoon.DefaultACC() }},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			eng := newEngine(b, core.EngineConfig{Controllers: c.factory})
			b.ResetTimer()
			var severe int
			for i := 0; i < b.N; i++ {
				res, err := eng.RunExperiment(spec)
				if err != nil {
					b.Fatalf("RunExperiment: %v", err)
				}
				if res.Outcome == classify.Severe {
					severe = 1
				} else {
					severe = 0
				}
			}
			b.ReportMetric(float64(severe), "severe")
		})
	}
}

// BenchmarkAblationPathLoss compares the two wirelessModel options of
// Step-1 (free-space vs two-ray interference) on the golden run — the
// DESIGN.md A2 ablation. At platoon ranges both deliver every beacon, so
// the classification baseline is identical.
func BenchmarkAblationPathLoss(b *testing.B) {
	for _, m := range []struct {
		name string
		loss phy.PathLoss
	}{
		{name: "freespace", loss: phy.FreeSpace{Alpha: 2}},
		{name: "tworay", loss: phy.TwoRayInterference{}},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			comm := scenario.PaperCommModel()
			comm.Channel.PathLoss = m.loss
			var deliveries uint64
			for i := 0; i < b.N; i++ {
				eng := newEngine(b, core.EngineConfig{Comm: comm})
				cfg := eng.Config()
				_ = cfg
				_, res, err := eng.GoldenRun()
				if err != nil {
					b.Fatalf("GoldenRun: %v", err)
				}
				deliveries = res.Deliveries
			}
			b.ReportMetric(float64(deliveries), "deliveries")
		})
	}
}

// BenchmarkAblationChannelAccess compares IEEE 1609.4 continuous vs
// alternating channel access on the golden run — the DESIGN.md A3
// ablation. Alternating access delays beacons by up to ~54 ms but never
// reclassifies the golden run.
func BenchmarkAblationChannelAccess(b *testing.B) {
	for _, mode := range []wave1609.AccessMode{
		wave1609.AccessContinuous, wave1609.AccessAlternating,
	} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			comm := scenario.PaperCommModel()
			comm.Schedule = wave1609.NewSchedule(mode)
			var maxDecel float64
			var deliveries uint64
			for i := 0; i < b.N; i++ {
				eng := newEngine(b, core.EngineConfig{Comm: comm})
				_, res, err := eng.GoldenRun()
				if err != nil {
					b.Fatalf("GoldenRun: %v", err)
				}
				maxDecel = res.MaxDecel
				deliveries = res.Deliveries
			}
			b.ReportMetric(maxDecel, "golden-max-decel-mps2")
			b.ReportMetric(float64(deliveries), "deliveries")
		})
	}
}

// BenchmarkAblationAEB runs the DoS campaign with and without the AEB
// distance monitor (the paper's future-work sensor redundancy). With
// the monitor, collisions drop to zero; severity persists only through
// forced emergency braking.
func BenchmarkAblationAEB(b *testing.B) {
	for _, mode := range []struct {
		name string
		aeb  *safety.AEB
	}{
		{name: "unprotected", aeb: nil},
		{name: "with-aeb", aeb: safety.DefaultAEB()},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			ts := scenario.PaperScenario()
			ts.AEB = mode.aeb
			eng := newEngine(b, core.EngineConfig{Scenario: ts})
			setup := core.PaperDoSCampaign()
			b.ResetTimer()
			var collisions, severe int
			for i := 0; i < b.N; i++ {
				res, err := eng.RunCampaign(setup, nil)
				if err != nil {
					b.Fatalf("RunCampaign: %v", err)
				}
				collisions, severe = 0, res.Counts.Severe
				for _, e := range res.Experiments {
					if e.Collided() {
						collisions++
					}
				}
			}
			b.ReportMetric(float64(collisions), "collisions")
			b.ReportMetric(float64(severe), "severe")
		})
	}
}

// BenchmarkAblationFading compares the golden run without fading (the
// paper's setup) against Nakagami-m highway fading. At 5-10 m platoon
// ranges the link margin is enormous, so even deep fades rarely destroy
// beacons — supporting the paper's choice to omit fading.
func BenchmarkAblationFading(b *testing.B) {
	for _, mode := range []string{"none", "nakagami"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			comm := scenario.PaperCommModel()
			if mode == "nakagami" {
				comm.Channel.Fading = phy.NewNakagamiFading(rng.New(1, "fading"))
			}
			var deliveries uint64
			for i := 0; i < b.N; i++ {
				eng := newEngine(b, core.EngineConfig{Comm: comm})
				_, res, err := eng.GoldenRun()
				if err != nil {
					b.Fatalf("GoldenRun: %v", err)
				}
				deliveries = res.Deliveries
			}
			b.ReportMetric(float64(deliveries), "deliveries")
		})
	}
}

// BenchmarkKernelThroughput measures the raw DES kernel event rate that
// bounds campaign wall-clock time.
func BenchmarkKernelThroughput(b *testing.B) {
	k := des.NewKernel()
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			k.ScheduleAfter(des.Microsecond, next)
		}
	}
	b.ResetTimer()
	k.ScheduleAfter(des.Microsecond, next)
	if err := k.Run(); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// BenchmarkExperiment measures a single end-to-end attack experiment
// (build + 60 s simulation + classification), the unit the 11250-run
// campaign multiplies.
func BenchmarkExperiment(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	spec := core.ExperimentSpec{
		Kind: core.AttackDelay, Targets: []string{"vehicle.2"},
		Value: 1.4, Start: 19 * des.Second, Duration: 7 * des.Second,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunExperiment(spec); err != nil {
			b.Fatalf("RunExperiment: %v", err)
		}
	}
}

// BenchmarkExperimentCheckpointed isolates the per-sibling gain of
// prefix-checkpoint forking on one experiment: "fresh" builds and
// simulates from t=0 (BenchmarkExperiment's path), "forked" restores a
// 19 s prefix checkpoint and simulates only the remaining 41 s. The gap
// between the two is the redundant prefix work a checkpointed campaign
// skips for every sibling after the first.
func BenchmarkExperimentCheckpointed(b *testing.B) {
	spec := core.ExperimentSpec{
		Kind: core.AttackDelay, Targets: []string{"vehicle.2"},
		Value: 1.4, Start: 19 * des.Second, Duration: 7 * des.Second,
	}
	b.Run("fresh", func(b *testing.B) {
		eng := newEngine(b, core.EngineConfig{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunExperiment(spec); err != nil {
				b.Fatalf("RunExperiment: %v", err)
			}
		}
	})
	b.Run("forked", func(b *testing.B) {
		eng := newEngine(b, core.EngineConfig{})
		gs, err := eng.BeginGroup(context.Background(), spec.Start)
		if err != nil {
			b.Fatalf("BeginGroup: %v", err)
		}
		defer gs.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gs.RunExperiment(context.Background(), spec); err != nil {
				b.Fatalf("RunExperiment: %v", err)
			}
		}
	})
}

// BenchmarkCampaignCheckpointed measures the campaign-level speedup of
// the checkpoint stack on a paper-shaped grid: 25 start times (Table
// II's 17-21.8 s sweep) x 2 values x 8 ascending durations = 400
// experiments on a horizon that just covers the latest attack window.
// (Table II sweeps 30 durations per value; eight keeps the benchmark's
// wall clock short while still amortising each chain's shared attacked
// interval the way the paper grid does.)
// The modes peel the layers apart: "fresh" is the no-checkpoint path,
// "forked" adds prefix-checkpoint forking only (trie disabled), "trie"
// chains same-value experiments through mid-attack boundary snapshots so
// each simulates just its unique duration suffix, and "trie+early-exit"
// additionally stops every run once its verdict is decided. The outcome
// metric pins the result shape: all four modes classify identically.
func BenchmarkCampaignCheckpointed(b *testing.B) {
	ts := scenario.PaperScenario()
	// Clip the horizon to the latest attack end (21.8 s + 25 s): the
	// paper's 60 s horizon just idles past it and dilutes the measured
	// prefix share.
	ts.TotalSimTime = 47 * des.Second
	grid := core.CampaignSetup{
		Attack:  core.AttackDelay,
		Targets: []string{"vehicle.2"},
		Values:  []float64{0.4, 2.0},
		Durations: []des.Time{
			2 * des.Second, 4 * des.Second, 6 * des.Second,
			9 * des.Second, 12 * des.Second, 16 * des.Second,
			20 * des.Second, 25 * des.Second,
		},
	}
	for s := 0; s < 25; s++ {
		grid.Starts = append(grid.Starts, 17*des.Second+des.Time(s)*200*des.Millisecond)
	}
	for _, mode := range []struct {
		name               string
		disableCheckpoints bool
		disableTrie        bool
		earlyExit          bool
	}{
		{name: "fresh", disableCheckpoints: true, disableTrie: true},
		{name: "forked", disableTrie: true},
		{name: "trie"},
		{name: "trie+early-exit", earlyExit: true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			eng := newEngine(b, core.EngineConfig{Scenario: ts, EarlyExit: mode.earlyExit})
			b.ResetTimer()
			var counts classify.Counts
			for i := 0; i < b.N; i++ {
				r, err := runner.New(eng, runner.Options{
					Workers:            runtime.GOMAXPROCS(0),
					DisableCheckpoints: mode.disableCheckpoints,
					DisableTrie:        mode.disableTrie,
				})
				if err != nil {
					b.Fatalf("runner.New: %v", err)
				}
				res, err := r.Run(context.Background(), grid)
				if err != nil {
					b.Fatalf("Run: %v", err)
				}
				counts = res.Counts
			}
			b.ReportMetric(float64(counts.Severe), "severe")
			b.ReportMetric(float64(counts.Total()), "experiments")
		})
	}
}

// BenchmarkGoldenCSVExport measures the Fig. 4 CSV export path.
func BenchmarkGoldenCSVExport(b *testing.B) {
	eng := newEngine(b, core.EngineConfig{})
	log, _, err := eng.GoldenRun()
	if err != nil {
		b.Fatalf("GoldenRun: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.WriteCSV(discard{}); err != nil {
			b.Fatalf("WriteCSV: %v", err)
		}
	}
	_ = trace.VehicleSample{}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkCampaignParallel tracks the campaign hot path end-to-end
// through the production runner (streaming, grid-order release): the
// same 24-experiment grid executed sequentially and on all cores. The
// workers=1/GOMAXPROCS pair exposes the parallel speedup trajectory;
// the custom metric pins the outcome shape so a perf change that breaks
// determinism is caught here too.
func BenchmarkCampaignParallel(b *testing.B) {
	grid := core.CampaignSetup{
		Attack:    core.AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.4, 2.0},
		Starts:    []des.Time{17 * des.Second, 19 * des.Second, 21 * des.Second},
		Durations: []des.Time{2 * des.Second, 5 * des.Second, 10 * des.Second, 30 * des.Second},
	}
	for _, w := range []struct {
		name    string
		workers int
	}{
		{name: "workers=1", workers: 1},
		{name: "workers=GOMAXPROCS", workers: runtime.GOMAXPROCS(0)},
	} {
		w := w
		b.Run(w.name, func(b *testing.B) {
			eng := newEngine(b, core.EngineConfig{})
			b.ResetTimer()
			var counts classify.Counts
			for i := 0; i < b.N; i++ {
				r, err := runner.New(eng, runner.Options{Workers: w.workers})
				if err != nil {
					b.Fatalf("runner.New: %v", err)
				}
				res, err := r.Run(context.Background(), grid)
				if err != nil {
					b.Fatalf("Run: %v", err)
				}
				counts = res.Counts
			}
			b.ReportMetric(float64(counts.Severe), "severe")
			b.ReportMetric(float64(counts.Total()), "experiments")
		})
	}
}

// BenchmarkCampaignMatrix runs a registry-expanded scenario x attack
// matrix (2 scenarios x 2 attack families on representative sub-grids)
// through the flattened-grid matrix executor, covering per-cell golden
// runs, engine reuse across same-scenario cells, checkpoint-trie
// duration chaining inside the delay cells and per-cell classification.
func BenchmarkCampaignMatrix(b *testing.B) {
	m := registry.Matrix{
		Scenarios: []registry.MatrixScenario{
			{Name: "paper-platoon"},
			{Name: "platoon", Label: "platoon-8", Params: param.Params{"nrVehicles": 8}},
		},
		Attacks: []registry.MatrixAttack{
			{
				Name:      "delay",
				Values:    []float64{0.6, 3.0},
				Starts:    []des.Time{17 * des.Second, 21 * des.Second},
				Durations: []des.Time{5 * des.Second, 10 * des.Second, 18 * des.Second},
			},
			{
				Name:      "dos",
				Values:    []float64{60},
				Starts:    []des.Time{17 * des.Second, 21 * des.Second},
				Durations: []des.Time{60 * des.Second},
			},
		},
	}
	expanded, err := m.Expand()
	if err != nil {
		b.Fatalf("Expand: %v", err)
	}
	cells := make([]runner.MatrixCell, len(expanded))
	for i, c := range expanded {
		cells[i] = runner.MatrixCell{
			Scenario: c.Scenario,
			Attack:   c.Attack,
			Engine: core.EngineConfig{
				Scenario:    c.Def.Traffic,
				Comm:        c.Def.Comm,
				Controllers: c.Def.Controllers,
				Seed:        1,
			},
			Setup: c.Setup,
		}
	}
	b.ResetTimer()
	var res *runner.MatrixResult
	for i := 0; i < b.N; i++ {
		res, err = runner.RunMatrix(context.Background(), cells,
			runner.Options{Workers: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatalf("RunMatrix: %v", err)
		}
	}
	b.ReportMetric(float64(len(res.Cells)), "cells")
	b.ReportMetric(float64(res.Counts.Severe), "severe")
	b.ReportMetric(float64(res.Counts.Total()), "experiments")
}
