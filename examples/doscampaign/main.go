// DoS campaign: the paper's §IV-C2 study. 25 denial-of-service attacks
// on Vehicle 2, one per start time in [17.0 s, 21.8 s], each active until
// the end of the simulation. Prints the outcome per start time and the
// collider attribution, which in the paper splits 48/40/12% across
// Vehicles 2/3/4 depending on the attack start band.
package main

import (
	"fmt"
	"log"
	"os"

	"comfase/internal/analysis"
	"comfase/internal/core"
	"comfase/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		return err
	}

	setup := core.PaperDoSCampaign()
	fmt.Printf("running %d DoS experiments (PD pinned to the 60 s horizon)...\n",
		setup.NumExperiments())
	res, err := eng.RunCampaign(setup, nil)
	if err != nil {
		return err
	}
	fmt.Println(analysis.SummaryLine(res))
	fmt.Println()

	fmt.Println("outcome and collider per attack start time:")
	for _, e := range res.Experiments {
		collider := e.Collider
		if collider == "" {
			collider = "-"
		}
		fmt.Printf("  start %-6v  %-12s collider %-10s max decel %.2f m/s^2\n",
			e.Spec.Start, e.Outcome, collider, e.MaxDecel)
	}
	fmt.Println()

	fmt.Println("collider shares (paper: V2 48%, V3 40%, V4 12%):")
	return analysis.WriteColliderTable(os.Stdout, analysis.ColliderShares(res.Experiments))
}
