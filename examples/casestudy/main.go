// Single-experiment case study: dissect one severe delay attack in
// detail. The example runs the golden run and one attacked run with full
// per-vehicle logging, prints the gap evolution around the collision,
// and writes both trajectories as CSV files for plotting.
package main

import (
	"fmt"
	"log"
	"os"

	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		return err
	}
	goldenLog, golden, err := eng.GoldenRun()
	if err != nil {
		return err
	}
	fmt.Printf("golden run: max deceleration %.2f m/s^2\n", golden.MaxDecel)

	spec := core.ExperimentSpec{
		Kind:     core.AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    2.0,
		Start:    18 * des.Second,
		Duration: 10 * des.Second,
	}
	res, attackLog, err := eng.RunExperimentWithLog(spec)
	if err != nil {
		return err
	}
	fmt.Printf("attack (%s): outcome=%s, max decel %.2f m/s^2\n",
		spec, res.Outcome, res.MaxDecel)
	for _, c := range res.Collisions {
		fmt.Printf("  collision: %s\n", c)
	}

	// Gap evolution every second around the attack window.
	fmt.Println("\n  t(s)   gap12   gap23   gap34   (m, attacked run)")
	for sec := 16; sec <= 26; sec++ {
		idx := sec * 100 // 10 ms sampling
		if idx >= attackLog.Len() {
			break
		}
		fmt.Printf("  %4d %7.2f %7.2f %7.2f\n", sec,
			gap(attackLog, idx, 0, 1), gap(attackLog, idx, 1, 2), gap(attackLog, idx, 2, 3))
	}

	if err := writeCSV("golden.csv", goldenLog); err != nil {
		return err
	}
	if err := writeCSV("attack.csv", attackLog); err != nil {
		return err
	}
	fmt.Println("\ntrajectories written to golden.csv and attack.csv")
	return nil
}

// gap returns the bumper-to-bumper gap between vehicles front and back
// at sample idx (4 m vehicle length).
func gap(l *trace.FullLog, idx, front, back int) float64 {
	return l.At(idx, front).Pos - 4 - l.At(idx, back).Pos
}

func writeCSV(path string, l *trace.FullLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
