// Falsification attacks: the extension direction the paper's related
// work (Iorio et al., Boeira et al.) studies and its future-work section
// plans. An attacker impersonates Vehicle 2 and falsifies the
// acceleration field of its beacons; followers consuming the forged
// feedforward destabilise. The example sweeps the forged value and
// reports when the platoon starts colliding.
package main

import (
	"fmt"
	"log"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/msg"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ts := scenario.PaperScenario()
	cm := scenario.PaperCommModel()

	// Reference: the attack-free golden run.
	golden, goldenMax, err := goldenRun(ts, cm)
	if err != nil {
		return err
	}
	th := classify.PaperThresholds(goldenMax)
	fmt.Printf("golden run: max deceleration %.2f m/s^2\n\n", goldenMax)

	// Sweep the forged acceleration advertised in Vehicle 2's beacons.
	for _, forged := range []float64{1.0, 0.0, -2.0, -5.0, -9.0} {
		attack, err := core.NewFalsificationAttack(func(b msg.Beacon) msg.Beacon {
			b.Accel = forged
			return b
		}, "vehicle.2")
		if err != nil {
			return err
		}
		outcome, maxDecel, collisions, err := runAttack(ts, cm, golden, th, attack)
		if err != nil {
			return err
		}
		fmt.Printf("forged accel %+5.1f m/s^2: outcome=%-12s max decel=%.2f m/s^2, %d collisions\n",
			forged, outcome, maxDecel, collisions)
	}
	return nil
}

func goldenRun(ts scenario.TrafficScenario, cm scenario.CommModel) (*trace.FullLog, float64, error) {
	sim, err := scenario.Build(ts, cm, 1, nil)
	if err != nil {
		return nil, 0, err
	}
	log := trace.NewFullLog(sim.VehicleIDs())
	sim.AddRecorder(log)
	if err := sim.Start(); err != nil {
		return nil, 0, err
	}
	if err := sim.RunUntil(ts.TotalSimTime); err != nil {
		return nil, 0, err
	}
	return log, log.MaxDeceleration(), nil
}

// runAttack drives the three-phase injection by hand against a custom
// attack model (the engine's predefined kinds do not include
// falsification sweeps with arbitrary forgers).
func runAttack(
	ts scenario.TrafficScenario,
	cm scenario.CommModel,
	golden *trace.FullLog,
	th classify.Thresholds,
	attack *core.FalsificationAttack,
) (classify.Outcome, float64, int, error) {
	sim, err := scenario.Build(ts, cm, 1, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	sum := trace.NewSummary(ts.NrVehicles, golden)
	sim.AddRecorder(sum)
	if err := sim.Start(); err != nil {
		return 0, 0, 0, err
	}
	// Attack window: 18 s to 28 s, like the quickstart's delay attack.
	if err := sim.RunUntil(18 * des.Second); err != nil {
		return 0, 0, 0, err
	}
	sim.Air.SetInterceptor(attack)
	if err := sim.RunUntil(28 * des.Second); err != nil {
		return 0, 0, 0, err
	}
	sim.Air.SetInterceptor(nil)
	if err := sim.RunUntil(ts.TotalSimTime); err != nil {
		return 0, 0, 0, err
	}
	collisions := sim.Traffic.Collisions()
	outcome := classify.Classify(th, classify.Observation{
		MaxDecel:    sum.MaxDecelOverall(),
		MaxSpeedDev: sum.MaxSpeedDev,
		Collided:    len(collisions) > 0,
	})
	return outcome, sum.MaxDecelOverall(), len(collisions), nil
}
