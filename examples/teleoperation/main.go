// Teleoperation scenario: the second scenario type the paper names
// (§III) and plans to evaluate (§V). A remotely driven vehicle follows a
// lead vehicle; the remote operator (full scene perception, e.g. CCTV)
// sends speed commands over the wireless channel at 20 Hz. A DoS attack
// on the command downlink is injected while the lead vehicle brakes:
//
//   - without a command watchdog the remote vehicle barrels on at its
//     last commanded speed and rams the braking leader;
//   - with a 0.5 s watchdog it performs a safe stop.
package main

import (
	"fmt"
	"log"

	"comfase/internal/core"
	"comfase/internal/geo"
	"comfase/internal/nic"
	"comfase/internal/phy"
	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/teleop"
	"comfase/internal/traffic"
	"comfase/internal/vehicle"
	"comfase/internal/wave1609"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, mode := range []struct {
		name     string
		watchdog des.Time
	}{
		{name: "no watchdog   ", watchdog: 0},
		{name: "0.5 s watchdog", watchdog: 500 * des.Millisecond},
	} {
		collisions, finalSpeed, gap, err := scenarioRun(mode.watchdog)
		if err != nil {
			return err
		}
		verdict := "SAFE STOP"
		if collisions > 0 {
			verdict = "COLLISION"
		}
		fmt.Printf("%s: %s (final speed %.1f m/s, final gap %.1f m, %d collisions)\n",
			mode.name, verdict, finalSpeed, gap, collisions)
	}
	fmt.Println("\nDoS on the command downlink from t=20s; lead vehicle brakes at t=22s.")
	fmt.Println("The watchdog converts a certain collision into a controlled stop —")
	fmt.Println("the teleoperation counterpart of the platooning AEB result.")
	return nil
}

func scenarioRun(watchdog des.Time) (collisions int, finalSpeed, finalGap float64, err error) {
	k := des.NewKernel()
	net, err := roadnet.NewNetwork(roadnet.PaperHighway())
	if err != nil {
		return 0, 0, 0, err
	}
	sim, err := traffic.NewSimulator(traffic.Config{Kernel: k, Network: net})
	if err != nil {
		return 0, 0, 0, err
	}
	air, err := nic.NewAir(nic.Config{
		Kernel:   k,
		Channel:  phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
		Seed:     1,
	})
	if err != nil {
		return 0, 0, 0, err
	}

	// Lead vehicle cruises at 20 m/s and brakes to a stop at t=22s.
	lead, err := sim.AddVehicle(vehicle.PaperCar("lead"), vehicle.State{Pos: 300, Speed: 20})
	if err != nil {
		return 0, 0, 0, err
	}
	leadTracker := traffic.SpeedTracker{
		Maneuver: traffic.Braking{CruiseSpeed: 20, FinalSpeed: 0, BrakeAt: 22, Decel: 4},
		Gain:     2,
	}
	sim.OnPreStep(func(now des.Time) {
		lead.Command(leadTracker.Accel(now.Seconds(), lead.State))
	})

	// Remote vehicle starts 100 m behind.
	remoteVeh, err := sim.AddVehicle(vehicle.PaperCar("remote"), vehicle.State{Pos: 200, Speed: 20})
	if err != nil {
		return 0, 0, 0, err
	}
	remote, err := teleop.NewRemoteVehicle(teleop.RemoteVehicleConfig{
		Kernel: k, Air: air, Vehicle: remoteVeh, Watchdog: watchdog,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	dt := sim.StepLength().Seconds()
	sim.OnPreStep(func(now des.Time) { remote.ControlStep(now, dt) })

	// The operator keeps a 2 s headway behind the lead vehicle using
	// ground-truth perception.
	operator, err := teleop.NewOperator(teleop.OperatorConfig{
		Kernel:   k,
		Air:      air,
		Position: geo.Vec{X: 400, Y: 30},
		Policy: func(des.Time) teleop.Command {
			gap := lead.State.Rear(lead.Spec.Length) - remoteVeh.State.Pos
			target := lead.State.Speed + 0.25*(gap-2*remoteVeh.State.Speed)
			if target < 0 || gap < 5 {
				return teleop.Command{Brake: true, BrakeDecel: 6}
			}
			return teleop.Command{TargetSpeed: target}
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}

	if err := sim.Start(); err != nil {
		return 0, 0, 0, err
	}
	operator.Start()

	// DoS the command downlink from t=20s until the end (the paper's DoS
	// model applied to the teleoperation scenario).
	dos, err := core.NewDoSAttack(60*des.Second, "remote")
	if err != nil {
		return 0, 0, 0, err
	}
	k.ScheduleAt(20*des.Second, func() { air.SetInterceptor(dos) })

	if err := k.RunUntil(60 * des.Second); err != nil {
		return 0, 0, 0, err
	}
	finalGap = lead.State.Rear(lead.Spec.Length) - remoteVeh.State.Pos
	return len(sim.Collisions()), remoteVeh.State.Speed, finalGap, nil
}
