// Physical-layer jamming: the wireless-channel jamming attack the
// paper's future-work section plans. A jammer rides along with Vehicle 2
// and radiates interference; the effect on the platoon — carrier sense
// lockout and SINR collapse — emerges from the 802.11p PHY model. The
// example sweeps the jammer's transmit power and reports the outcome,
// exposing the cliff between a harmless nuisance emitter and a channel-
// killing jammer.
package main

import (
	"fmt"
	"log"

	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		return err
	}
	_, golden, err := eng.GoldenRun()
	if err != nil {
		return err
	}
	fmt.Printf("golden run: max deceleration %.2f m/s^2\n\n", golden.MaxDecel)
	fmt.Println("jammer riding with Vehicle 2, active 18s..28s:")

	for _, power := range []float64{-60, -40, -30, -20, -10, 0, 23} {
		res, err := eng.RunExperiment(core.ExperimentSpec{
			Kind:     core.AttackJamming,
			Targets:  []string{"vehicle.2"},
			Value:    power, // jammer tx power in dBm
			Start:    18 * des.Second,
			Duration: 10 * des.Second,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %+4.0f dBm: outcome=%-13s max decel=%.2f m/s^2, %d collisions\n",
			power, res.Outcome, res.MaxDecel, len(res.Collisions))
	}
	fmt.Println("\nBelow the noise floor the jammer is invisible; once its energy")
	fmt.Println("reaches the receivers' carrier-sense threshold the platoon's")
	fmt.Println("beacons stop flowing and the CACC degrades exactly as under the")
	fmt.Println("propagation-delay DoS model — but produced by PHY physics.")
	return nil
}
