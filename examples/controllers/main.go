// Controller resilience comparison: CACC vs ACC vs Ploeg under the same
// delay attack — the analysis style of Heijden et al. and Iorio et al.
// (paper §II-D). The cooperative controllers (PATH CACC, Ploeg) consume
// V2V feedforward and suffer under delay; the autonomous radar-only ACC
// is immune but keeps much larger gaps.
package main

import (
	"fmt"
	"log"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/platoon"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	controllers := []struct {
		name    string
		factory scenario.ControllerFactory
	}{
		{name: "CACC", factory: func(int) platoon.Controller { return platoon.DefaultCACC() }},
		{name: "PLOEG", factory: func(int) platoon.Controller { return platoon.DefaultPloeg() }},
		{name: "ACC", factory: func(int) platoon.Controller { return platoon.DefaultACC() }},
	}

	// The probe attack: 2 s delay on Vehicle 2 during the deceleration
	// phase, a reliably severe case for the paper's CACC platoon.
	spec := core.ExperimentSpec{
		Kind:     core.AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    2.0,
		Start:    18 * des.Second,
		Duration: 10 * des.Second,
	}

	fmt.Println("controller resilience to a 2 s delay attack on Vehicle 2 (18s..28s):")
	for _, c := range controllers {
		eng, err := core.NewEngine(core.EngineConfig{
			Scenario:    scenario.PaperScenario(),
			Comm:        scenario.PaperCommModel(),
			Controllers: c.factory,
			Seed:        1,
		})
		if err != nil {
			return err
		}
		_, golden, err := eng.GoldenRun()
		if err != nil {
			return fmt.Errorf("%s golden run: %w", c.name, err)
		}
		res, err := eng.RunExperiment(spec)
		if err != nil {
			return fmt.Errorf("%s attack run: %w", c.name, err)
		}
		verdict := "resists the attack"
		if res.Outcome == classify.Severe {
			verdict = "FAILS under the attack"
		}
		fmt.Printf("  %-6s golden max decel %.2f -> attacked: outcome=%-12s max decel %.2f, %d collisions (%s)\n",
			c.name, golden.MaxDecel, res.Outcome, res.MaxDecel, len(res.Collisions), verdict)
	}
	fmt.Println("\nnote: ACC ignores V2V data (radar only), so communication attacks")
	fmt.Println("cannot perturb it — matching the related work's finding that only")
	fmt.Println("cooperative controllers are sensitive to V2V channel attacks.")
	return nil
}
