// AEB redundancy: the paper's future-work direction — "introduction of
// sensor models … that monitor the distance between vehicles" — made
// concrete. The same DoS campaign is run twice: against the paper's
// unprotected platoon and against one whose followers carry an
// autonomous-emergency-braking monitor on their radar. The monitor
// removes every collision; the attacks remain "severe" only through the
// emergency braking they force (§IV-B severe case ii instead of case i).
package main

import (
	"fmt"
	"log"

	"comfase/internal/core"
	"comfase/internal/safety"
	"comfase/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, mode := range []struct {
		name string
		aeb  *safety.AEB
	}{
		{name: "unprotected (paper §IV)", aeb: nil},
		{name: "with AEB monitor      ", aeb: safety.DefaultAEB()},
	} {
		ts := scenario.PaperScenario()
		ts.AEB = mode.aeb
		eng, err := core.NewEngine(core.EngineConfig{
			Scenario: ts,
			Comm:     scenario.PaperCommModel(),
			Seed:     1,
		})
		if err != nil {
			return err
		}
		res, err := eng.RunCampaign(core.PaperDoSCampaign(), nil)
		if err != nil {
			return err
		}
		collisions := 0
		emergencyOnly := 0
		for _, e := range res.Experiments {
			switch {
			case e.Collided():
				collisions++
			case e.MaxDecel > 5:
				emergencyOnly++
			}
		}
		fmt.Printf("%s: %v\n", mode.name, res.Counts)
		fmt.Printf("    collisions: %d, severe-by-emergency-braking only: %d\n",
			collisions, emergencyOnly)
	}
	fmt.Println("\nThe monitor converts collision incidents into emergency-braking")
	fmt.Println("incidents: the platoon survives the DoS attack, at the cost of")
	fmt.Println("harsh braking — the redundancy/safety interplay the paper's")
	fmt.Println("discussion (§IV-C3) anticipates.")
	return nil
}
