// Delay-attack campaign: a reduced version of the paper's §IV-C1 study.
// It sweeps propagation-delay values, attack start times and durations
// against Vehicle 2, classifies every experiment, and prints the three
// classification views of Figs. 5-7 plus the collider attribution.
package main

import (
	"fmt"
	"log"
	"os"

	"comfase/internal/analysis"
	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		return err
	}

	// A 5x5x5 sub-grid of Table II (125 experiments; the paper's full
	// grid is 25 starts x 15 PD values x 30 durations = 11250, available
	// via cmd/comfase-figures).
	setup := core.CampaignSetup{
		Attack:  core.AttackDelay,
		Targets: []string{"vehicle.2"},
		Values:  []float64{0.2, 0.8, 1.4, 2.2, 3.0},
		Starts: []des.Time{
			17 * des.Second,
			18 * des.Second,
			19 * des.Second,
			19800 * des.Millisecond, // the benign low-acceleration window
			21 * des.Second,
		},
		Durations: []des.Time{
			des.Second, 3 * des.Second, 6 * des.Second,
			15 * des.Second, 30 * des.Second,
		},
	}

	fmt.Printf("running %d delay-attack experiments...\n", setup.NumExperiments())
	res, err := eng.RunCampaign(setup, nil)
	if err != nil {
		return err
	}
	fmt.Println(analysis.SummaryLine(res))
	fmt.Println()

	for _, series := range []analysis.Series{
		analysis.ByDuration(res.Experiments), // Fig. 5
		analysis.ByValue(res.Experiments),    // Fig. 6
		analysis.ByStart(res.Experiments),    // Fig. 7
	} {
		if err := analysis.WriteSeriesTable(os.Stdout, series); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Println("collider attribution (paper §IV-C1: V2 65.4%, V3 18.1%, V4 16.5%):")
	return analysis.WriteColliderTable(os.Stdout, analysis.ColliderShares(res.Experiments))
}
