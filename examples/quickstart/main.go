// Quickstart: build the paper's platooning scenario, run the golden run,
// then inject one delay attack and compare the outcomes — the minimal
// end-to-end tour of the ComFASE-Go API.
package main

import (
	"fmt"
	"log"

	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Step-1 (Algorithm 1): configure the traffic scenario and the
	// communication model. The helpers reproduce §IV-A of the paper: a
	// 4-vehicle CACC platoon driving a sinusoidal maneuver on a 4-lane
	// highway, beaconing 200-bit CAMs at 10 Hz over IEEE 802.11p.
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		return err
	}

	// Step-2: the golden run (attack-free reference).
	_, golden, err := eng.GoldenRun()
	if err != nil {
		return err
	}
	fmt.Printf("golden run: max deceleration %.2f m/s^2, %d beacons delivered, no collisions\n",
		golden.MaxDecel, golden.Deliveries)

	// Step-3: one attack experiment. Delay every message to and from
	// Vehicle 2 by 2 s, starting at t=18 s for 10 s.
	res, err := eng.RunExperiment(core.ExperimentSpec{
		Kind:     core.AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    2.0,
		Start:    18 * des.Second,
		Duration: 10 * des.Second,
	})
	if err != nil {
		return err
	}

	// Step-4: the classification against the golden run.
	fmt.Printf("delay attack (PD=2s, 18s..28s): outcome=%s max decel=%.2f m/s^2\n",
		res.Outcome, res.MaxDecel)
	for _, c := range res.Collisions {
		fmt.Printf("  collision: %s\n", c)
	}
	return nil
}
