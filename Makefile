GO ?= go

.PHONY: check build vet test race chaos checkpoint-equiv trie-equiv obs-equiv registry-equiv fabric-equiv fuzz-smoke bench bench-diff bench-sanity profile cover

# Tier-1 verification gate: build + vet + race-enabled tests (which
# include the chaos self-test exercising every failure-containment path),
# a short fuzz smoke over every fuzz target, and a one-shot benchmark
# sanity pass. The campaign runner executes experiments on a worker pool,
# so the race detector is part of the default gate, not an optional
# extra; the bench sanity run keeps the perf harness compiling and
# executable without paying for a full measurement.
check: build vet race chaos checkpoint-equiv trie-equiv obs-equiv registry-equiv fabric-equiv fuzz-smoke cover bench-sanity

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos self-test by name, under the race detector: 200 experiments
# with deterministically scheduled panics, hangs and NaN corruption must
# quarantine every persistent failure and keep the healthy rows
# byte-identical. `race` already covers it via ./...; the explicit target
# keeps the gate honest even if package-level test filters change.
chaos:
	$(GO) test -race -run 'TestChaosCampaign' ./internal/runner

# The checkpoint-equivalence self-test by name, under the race detector:
# the same 200-experiment grid with prefix-checkpoint forking on and off
# — healthy, sharded and with chaos-injected failures — must emit
# byte-identical result CSVs and matching quarantine records.
checkpoint-equiv:
	$(GO) test -race -run 'TestCheckpointCampaignEquivalence' ./internal/runner

# The trie-equivalence self-test by name, under the race detector: the
# same grid with checkpoint-trie duration chaining on and off — healthy,
# sharded, under chaos injection, with early exit enabled, and with a
# mid-chain panic poisoning one trie subtree — must emit byte-identical
# result CSVs; and early termination on vs off must preserve every
# classification and the rendered per-cell report bit-for-bit.
trie-equiv:
	$(GO) test -race -run 'TestTrieCampaignEquivalence|TestTrieEarlyExitClassificationEquivalence|TestOrderGroupChainsTotalOrder' ./internal/runner

# The observability-equivalence self-test by name, under the race
# detector: the same grid with the full metrics stack (registry +
# millisecond heartbeat) and with metrics off — healthy and with
# chaos-injected failures — must emit byte-identical result CSVs and
# matching quarantine records. Observation must never perturb results.
obs-equiv:
	$(GO) test -race -run 'TestMetricsCampaignEquivalence' ./internal/runner

# The registry-equivalence self-test by name, under the race detector:
# campaigns resolved through the attack registry (by name) must emit
# result CSVs byte-identical to the legacy kind/factory paths — healthy
# and with chaos-injected failures — and matrix execution must stay
# deterministic across sequential, parallel and sharded runs.
registry-equiv:
	$(GO) test -race -run 'TestRegistryCampaignEquivalence|TestRegistryChaosEquivalence|TestRunMatrixDeterminism' ./internal/runner

# The fabric-equivalence chaos drills by name, under the race detector:
# a distributed campaign with a worker killed mid-lease (its ranges
# expire and are re-leased to survivors) and a fully healthy 3-worker
# run must both merge result CSVs and quarantine files byte-identical
# to a sequential run; late completions from the presumed-dead worker
# must be rejected by the lease generation counter, exactly once; and
# the multi-campaign drill — three campaigns with distinct grids
# submitted concurrently to one service, one worker crashing mid-lease
# — must leave every campaign's on-disk artifacts byte-identical to
# its own sequential run.
fabric-equiv:
	$(GO) test -race -run 'TestFabricChaosEquivalence|TestFabricDistributedEquivalence|TestFabricMultiCampaignChaosEquivalence|TestCoordinatorStaleCompletionExactlyOnce|TestRangeSplitEquivalence' ./internal/fabric ./internal/runner

# Short coverage-guided fuzz smoke on every fuzz target (the config
# parser, the matrix-section decoder, the DES kernel scheduler and
# snapshot/restore, the shard designator, the heartbeat snapshot
# decoder). 5s per target catches
# corpus regressions without slowing the gate meaningfully; -run '^$$'
# skips the unit tests the race step already ran.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzParse$$' -fuzztime 5s ./internal/config
	$(GO) test -run '^$$' -fuzz 'FuzzMatrixConfigDecode' -fuzztime 5s ./internal/config
	$(GO) test -run '^$$' -fuzz 'FuzzKernelSchedule' -fuzztime 5s ./internal/sim/des
	$(GO) test -run '^$$' -fuzz 'FuzzKernelSnapshot' -fuzztime 5s ./internal/sim/des
	$(GO) test -run '^$$' -fuzz 'FuzzParseShard' -fuzztime 5s ./internal/runner
	$(GO) test -run '^$$' -fuzz 'FuzzTrieGroupKey' -fuzztime 5s ./internal/runner
	$(GO) test -run '^$$' -fuzz 'FuzzHeartbeatDecode' -fuzztime 5s ./internal/obs
	$(GO) test -run '^$$' -fuzz 'FuzzLeaseProtocolDecode' -fuzztime 5s ./internal/fabric
	$(GO) test -run '^$$' -fuzz 'FuzzCampaignSubmitDecode' -fuzztime 5s ./internal/fabric

# Per-package coverage report plus the internal/obs coverage floor: the
# observability layer is pure bookkeeping whose failures would corrupt
# metrics silently, so it stays >= 90% covered by construction.
cover:
	scripts/cover.sh

# Full perf measurement: repeated runs of the regression trio, a dated
# bench/BENCH_<date>.{txt,json} artifact, and a comparison against the
# committed bench/BENCH_baseline.* (benchstat when installed, the bundled
# scripts/benchjson.go comparator otherwise).
bench:
	scripts/bench.sh

# Bench regression gate: a fresh, shorter run of the regression trio that
# FAILS on >25% ns/op regression — or any allocs/op increase beyond
# measurement grain — against the committed bench/BENCH_baseline.json.
# WARN_ONLY=1 downgrades failures to warnings on noisy hosts. Unlike
# `bench`, it writes no dated artifact.
bench-diff:
	scripts/benchdiff.sh

# Smoke-run every benchmark exactly once so the suite cannot rot.
bench-sanity:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# CPU+heap profile capture on the campaign benchmarks, distilled to
# pprof -top text under profiles/ and diffed (scripts/profdiff.go)
# against the committed bench/PROFILE_baseline_{cpu,mem}.txt captures.
# UPDATE_BASELINE=1 refreshes the committed baselines instead.
profile:
	scripts/profile.sh
