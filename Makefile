GO ?= go

.PHONY: check build vet test race bench

# Tier-1 verification gate: build + vet + race-enabled tests. The
# campaign runner executes experiments on a worker pool, so the race
# detector is part of the default gate, not an optional extra.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
