GO ?= go

.PHONY: check build vet test race bench bench-sanity

# Tier-1 verification gate: build + vet + race-enabled tests + a one-shot
# benchmark sanity pass. The campaign runner executes experiments on a
# worker pool, so the race detector is part of the default gate, not an
# optional extra; the bench sanity run keeps the perf harness compiling
# and executable without paying for a full measurement.
check: build vet race bench-sanity

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full perf measurement: repeated runs of the regression trio, a dated
# bench/BENCH_<date>.{txt,json} artifact, and a comparison against the
# committed bench/BENCH_baseline.* (benchstat when installed, the bundled
# scripts/benchjson.go comparator otherwise).
bench:
	scripts/bench.sh

# Smoke-run every benchmark exactly once so the suite cannot rot.
bench-sanity:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
