#!/bin/sh
# Perf harness: run the hot-path benchmark suite, emit machine-readable
# bench/BENCH_<date>.{txt,json}, and compare against the committed
# baseline (bench/BENCH_baseline.*). Uses benchstat when installed and
# falls back to the dependency-free scripts/benchjson.go comparator.
#
# Environment knobs:
#   COUNT=10       -count repetitions per benchmark
#   BENCH=regexp   benchmark selection (default: the regression trio)
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-10}"
BENCH="${BENCH:-BenchmarkExperiment\$|BenchmarkKernelThroughput\$|BenchmarkFig4GoldenRun\$|BenchmarkExperimentCheckpointed|BenchmarkCampaignCheckpointed|BenchmarkCampaignMatrix}"
DATE="$(date +%Y-%m-%d)"
mkdir -p bench
TXT="bench/BENCH_${DATE}.txt"
JSON="bench/BENCH_${DATE}.json"

echo "==> go test -bench '$BENCH' -count $COUNT"
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$TXT"

echo "==> writing $JSON"
go run scripts/benchjson.go -in "$TXT" -out "$JSON"

if [ -f bench/BENCH_baseline.json ]; then
    echo "==> comparison vs bench/BENCH_baseline"
    if command -v benchstat >/dev/null 2>&1 && [ -f bench/BENCH_baseline.txt ]; then
        benchstat bench/BENCH_baseline.txt "$TXT"
    else
        go run scripts/benchjson.go -in "$TXT" -compare bench/BENCH_baseline.json
    fi
fi
