//go:build ignore

// Benchjson converts `go test -bench` text output into machine-readable
// JSON and compares two runs benchstat-style. It exists so the perf
// harness works on machines without golang.org/x/perf/cmd/benchstat
// installed (this repo adds no external dependencies).
//
// Usage:
//
//	go run scripts/benchjson.go -in bench.txt -out BENCH_2026-08-06.json
//	go run scripts/benchjson.go -in bench.txt -compare bench/BENCH_baseline.json
//	go run scripts/benchjson.go -in bench.txt -compare bench/BENCH_baseline.json -check
//
// The JSON carries the per-benchmark median of every metric across
// repeated -count runs (medians are robust against scheduler noise in
// single runs), plus the run context (goos/goarch/pkg/cpu).
//
// With -check (the `make bench-diff` regression gate), the comparison
// FAILS (exit 1) when any shared benchmark regresses by more than
// -threshold percent on ns/op (default 25, sized for run-to-run noise)
// or on allocs/op beyond measurement granularity: the per-op counts
// are averages over b.N, so campaign-scale benchmarks flutter by a few
// parts per million with GC timing (pool refills, map growth
// amortisation); an increase above max(1, 0.1%) allocations is treated
// as real — any genuine hot-path leak adds per-beacon or per-step
// allocations, thousands of times that. -warn-only reports the same
// findings but exits 0, for noisy hosts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Report is the serialised form of one benchmark run.
type Report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is the aggregated result of one benchmark across -count runs.
type Benchmark struct {
	Name string `json:"name"`
	// Runs is the number of -count repetitions aggregated.
	Runs int `json:"runs"`
	// Metrics maps a unit ("ns/op", "B/op", "allocs/op", custom units)
	// to the median value across runs.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	in := flag.String("in", "", "benchmark text input (default stdin)")
	out := flag.String("out", "", "write aggregated JSON to this file")
	compare := flag.String("compare", "", "baseline JSON to diff the input against")
	check := flag.Bool("check", false, "with -compare: exit 1 on ns/op or allocs/op regressions")
	threshold := flag.Float64("threshold", 25, "with -check: ns/op regression percentage that fails")
	warnOnly := flag.Bool("warn-only", false, "with -check: report regressions but exit 0 (noisy hosts)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	var regressions []string
	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fatal(err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *compare, err))
		}
		diff(os.Stdout, base, rep)
		if *check {
			regressions = findRegressions(base, rep, *threshold)
		}
	}
	if *out != "" || *compare != "" {
		modeDiff(os.Stdout, rep)
	}
	if *check {
		if *compare == "" {
			fatal(fmt.Errorf("-check requires -compare"))
		}
		if len(regressions) > 0 {
			verdict := "FAIL"
			if *warnOnly {
				verdict = "WARN"
			}
			fmt.Fprintf(os.Stderr, "\nbenchjson: %s — %d regression(s) vs %s:\n", verdict, len(regressions), *compare)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			if !*warnOnly {
				os.Exit(1)
			}
		} else {
			fmt.Fprintf(os.Stderr, "\nbenchjson: PASS — no regressions vs %s (ns/op threshold %+.0f%%, allocs/op grain max(1, 0.1%%))\n", *compare, *threshold)
		}
	}
	if *out == "" && *compare == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads go-test benchmark output: context header lines
// ("goos: linux") and result lines ("BenchmarkX-8  N  12.3 ns/op ...").
func parse(r io.Reader) (Report, error) {
	rep := Report{Context: map[string]string{}}
	samples := map[string]map[string][]float64{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
				if v, ok := strings.CutPrefix(line, key+": "); ok {
					rep.Context[key] = v
				}
			}
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix so runs on different machines merge.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, seen := samples[name]; !seen {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], val)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(order) == 0 {
		return rep, fmt.Errorf("no benchmark result lines found")
	}
	for _, name := range order {
		b := Benchmark{Name: name, Metrics: map[string]float64{}}
		for unit, vals := range samples[name] {
			b.Metrics[unit] = median(vals)
			if len(vals) > b.Runs {
				b.Runs = len(vals)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, nil
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// diff prints a benchstat-style old/new/delta table for the metrics both
// reports share. Units where lower is better (all go-bench units) show a
// negative delta as an improvement; for wall-clock metrics the speedup
// column renders the same ratio the way perf reviews quote it
// (old/new, so 2.00x means twice as fast and anything below 1.00x is a
// regression).
func diff(w io.Writer, base, cur Report) {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	fmt.Fprintf(w, "%-36s %-12s %14s %14s %9s %8s\n", "benchmark", "metric", "old", "new", "delta", "speedup")
	for _, b := range cur.Benchmarks {
		old, ok := baseBy[b.Name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			if _, shared := old.Metrics[unit]; shared {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, nv := old.Metrics[unit], b.Metrics[unit]
			delta := "~"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			speedup := ""
			if unit == "ns/op" && nv != 0 {
				speedup = fmt.Sprintf("%.2fx", ov/nv)
			}
			fmt.Fprintf(w, "%-36s %-12s %14s %14s %9s %8s\n",
				b.Name, unit, formatVal(ov), formatVal(nv), delta, speedup)
		}
	}
}

// findRegressions returns one line per benchmark metric that got worse
// beyond tolerance: ns/op medians more than thresholdPct above the
// baseline, and allocs/op medians above the baseline by more than
// measurement granularity — max(1, 0.1%) allocations, because per-op
// counts are b.N averages that flutter by a few ppm with GC timing on
// campaign-scale benchmarks, while a genuine steady-state leak adds at
// least one allocation per beacon or step (thousands per op).
// Benchmarks present in only one report are skipped: the gate compares
// shared coverage, it does not police benchmark-set drift.
func findRegressions(base, cur Report, thresholdPct float64) []string {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var out []string
	for _, b := range cur.Benchmarks {
		old, ok := baseBy[b.Name]
		if !ok {
			continue
		}
		if ov, nv := old.Metrics["ns/op"], b.Metrics["ns/op"]; ov > 0 && nv > 0 {
			if pct := (nv - ov) / ov * 100; pct > thresholdPct {
				out = append(out, fmt.Sprintf("%s ns/op %s -> %s (%+.1f%%, threshold %+.0f%%)",
					b.Name, formatVal(ov), formatVal(nv), pct, thresholdPct))
			}
		}
		if ov, okOld := old.Metrics["allocs/op"]; okOld {
			grain := math.Max(1, ov*0.001)
			if nv, okNew := b.Metrics["allocs/op"]; okNew && nv > ov+grain {
				out = append(out, fmt.Sprintf("%s allocs/op %s -> %s (beyond the max(1, 0.1%%) grain)",
					b.Name, formatVal(ov), formatVal(nv)))
			}
		}
	}
	return out
}

// modePairs lists within-run sub-benchmark comparisons worth quoting.
// The campaign benchmarks run the same grid under several execution
// modes ("fresh", "forked", "trie", "trie+early-exit"); each pair below
// isolates one optimisation layer, so the ratio old/new is the speedup
// that layer buys on THIS machine — unlike the old-vs-baseline column,
// it never mixes measurements from two different hosts.
var modePairs = []struct{ old, new, label string }{
	{"fresh", "forked", "prefix checkpoint fork"},
	{"forked", "trie", "checkpoint trie"},
	{"trie", "trie+early-exit", "verdict-aware early exit"},
	{"fresh", "trie+early-exit", "all layers"},
}

// modeDiff prints the cross-mode speedup table for every benchmark in
// the report that has the paired sub-benchmarks, using ns/op medians.
func modeDiff(w io.Writer, rep Report) {
	byName := map[string]Benchmark{}
	var parents []string
	seen := map[string]bool{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
		if i := strings.LastIndexByte(b.Name, '/'); i > 0 {
			if p := b.Name[:i]; !seen[p] {
				seen[p] = true
				parents = append(parents, p)
			}
		}
	}
	headed := false
	for _, p := range parents {
		for _, mp := range modePairs {
			o, okOld := byName[p+"/"+mp.old]
			n, okNew := byName[p+"/"+mp.new]
			if !okOld || !okNew {
				continue
			}
			ov, nv := o.Metrics["ns/op"], n.Metrics["ns/op"]
			if ov == 0 || nv == 0 {
				continue
			}
			if !headed {
				fmt.Fprintf(w, "\n%-28s %-42s %8s\n", "benchmark", "mode comparison", "speedup")
				headed = true
			}
			fmt.Fprintf(w, "%-28s %-42s %7.2fx\n",
				p, fmt.Sprintf("%s vs %s (%s)", mp.old, mp.new, mp.label), ov/nv)
		}
	}
}

func formatVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
