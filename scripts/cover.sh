#!/bin/sh
# Per-package coverage report plus the internal/obs coverage floor.
# -short keeps this fast by skipping the multi-campaign self-tests; those
# exercise integration behaviour the line-coverage floor is not about.
# internal/obs is held to a hard floor: it is pure bookkeeping whose
# failures would corrupt metrics silently, so near-total unit coverage is
# the cheapest defense it has.
set -eu
cd "$(dirname "$0")/.."

floor=90.0

echo "==> go test -short -cover ./..."
report=$(go test -short -cover ./...) || { printf '%s\n' "$report"; exit 1; }
printf '%s\n' "$report"

obs=$(printf '%s\n' "$report" | awk '
    $2 == "comfase/internal/obs" {
        for (i = 1; i <= NF; i++)
            if ($i ~ /^[0-9.]+%$/) { sub(/%/, "", $i); print $i }
    }')
if [ -z "$obs" ]; then
    echo "cover: no coverage figure for comfase/internal/obs" >&2
    exit 1
fi
if [ "$(awk -v c="$obs" -v f="$floor" 'BEGIN { print (c >= f) ? 1 : 0 }')" != 1 ]; then
    echo "cover: internal/obs coverage ${obs}% is below the ${floor}% floor" >&2
    exit 1
fi
echo "cover: internal/obs coverage ${obs}% >= ${floor}% floor"
