#!/bin/sh
# Tier-1 verification gate (same as `make check`): build + vet +
# race-enabled tests + a one-shot benchmark sanity pass. The campaign
# runner executes experiments on a worker pool, so -race is part of the
# gate, not an optional extra; the -benchtime=1x pass keeps the perf
# harness compiling and executable without paying for a full measurement.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...
echo "==> go vet ./..."
go vet ./...
echo "==> go test -race ./..."
go test -race ./...
echo "==> chaos self-test (-race)"
go test -race -run 'TestChaosCampaign' ./internal/runner
echo "==> checkpoint equivalence self-test (-race)"
go test -race -run 'TestCheckpointCampaignEquivalence' ./internal/runner
echo "==> trie + early-exit equivalence self-test (-race)"
go test -race -run 'TestTrieCampaignEquivalence|TestTrieEarlyExitClassificationEquivalence|TestOrderGroupChainsTotalOrder' ./internal/runner
echo "==> observability equivalence self-test (-race)"
go test -race -run 'TestMetricsCampaignEquivalence' ./internal/runner
echo "==> registry equivalence self-test (-race)"
go test -race -run 'TestRegistryCampaignEquivalence|TestRegistryChaosEquivalence|TestRunMatrixDeterminism' ./internal/runner
echo "==> fabric equivalence chaos drills (-race)"
go test -race -run 'TestFabricChaosEquivalence|TestFabricDistributedEquivalence|TestFabricMultiCampaignChaosEquivalence|TestCoordinatorStaleCompletionExactlyOnce|TestRangeSplitEquivalence' ./internal/fabric ./internal/runner
echo "==> fuzz smoke (5s per target)"
go test -run '^$' -fuzz 'FuzzParse$' -fuzztime 5s ./internal/config >/dev/null
go test -run '^$' -fuzz 'FuzzMatrixConfigDecode' -fuzztime 5s ./internal/config >/dev/null
go test -run '^$' -fuzz 'FuzzKernelSchedule' -fuzztime 5s ./internal/sim/des >/dev/null
go test -run '^$' -fuzz 'FuzzKernelSnapshot' -fuzztime 5s ./internal/sim/des >/dev/null
go test -run '^$' -fuzz 'FuzzParseShard' -fuzztime 5s ./internal/runner >/dev/null
go test -run '^$' -fuzz 'FuzzTrieGroupKey' -fuzztime 5s ./internal/runner >/dev/null
go test -run '^$' -fuzz 'FuzzHeartbeatDecode' -fuzztime 5s ./internal/obs >/dev/null
go test -run '^$' -fuzz 'FuzzLeaseProtocolDecode' -fuzztime 5s ./internal/fabric >/dev/null
go test -run '^$' -fuzz 'FuzzCampaignSubmitDecode' -fuzztime 5s ./internal/fabric >/dev/null
echo "==> coverage report + internal/obs floor"
scripts/cover.sh
echo "==> go test -bench . -benchtime 1x (sanity)"
go test -run '^$' -bench . -benchtime 1x ./... >/dev/null
echo "OK"
