#!/bin/sh
# Tier-1 verification gate (same as `make check`): build + vet +
# race-enabled tests. The campaign runner executes experiments on a
# worker pool, so -race is part of the gate, not an optional extra.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...
echo "==> go vet ./..."
go vet ./...
echo "==> go test -race ./..."
go test -race ./...
echo "OK"
