#!/bin/sh
# Profiling harness (`make profile`): capture CPU and heap profiles on
# the campaign benchmarks, distill both into `go tool pprof -top` text
# under profiles/, and diff the CPU top against the committed baseline
# (bench/PROFILE_baseline_cpu.txt) with scripts/profdiff.go so a hot-path
# sweep shows exactly which functions gained or lost share.
#
# profiles/ is gitignored (raw .pprof files are machine-specific and
# large); only the distilled baseline text under bench/ is committed.
#
# Environment knobs:
#   BENCH=regexp       benchmark selection (default: the campaign pair)
#   NODES=25           -nodecount for the distilled -top text
#   UPDATE_BASELINE=1  refresh bench/PROFILE_baseline_{cpu,mem}.txt
set -eu
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkExperiment\$|BenchmarkCampaignCheckpointed}"
NODES="${NODES:-25}"
mkdir -p profiles

echo "==> go test -bench '$BENCH' with CPU+heap profiling"
go test -run '^$' -bench "$BENCH" -benchmem -count 1 \
    -cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
    -o profiles/comfase.test . | tee profiles/bench.txt

echo "==> distilling pprof -top (nodecount $NODES)"
go tool pprof -top -nodecount "$NODES" profiles/comfase.test profiles/cpu.pprof \
    > profiles/cpu.top.txt
# alloc_space (total bytes allocated) rather than the inuse default:
# the zero-allocation work targets allocation volume, not live heap.
go tool pprof -sample_index=alloc_space -top -nodecount "$NODES" \
    profiles/comfase.test profiles/mem.pprof > profiles/mem.top.txt

sed -n '1,8p' profiles/cpu.top.txt

if [ "${UPDATE_BASELINE:-}" = "1" ]; then
    cp profiles/cpu.top.txt bench/PROFILE_baseline_cpu.txt
    cp profiles/mem.top.txt bench/PROFILE_baseline_mem.txt
    echo "==> baselines refreshed: bench/PROFILE_baseline_{cpu,mem}.txt"
    exit 0
fi

if [ -f bench/PROFILE_baseline_cpu.txt ]; then
    echo "==> CPU flat%% delta vs bench/PROFILE_baseline_cpu.txt"
    go run scripts/profdiff.go bench/PROFILE_baseline_cpu.txt profiles/cpu.top.txt
fi
if [ -f bench/PROFILE_baseline_mem.txt ]; then
    echo "==> alloc_space flat%% delta vs bench/PROFILE_baseline_mem.txt"
    go run scripts/profdiff.go bench/PROFILE_baseline_mem.txt profiles/mem.top.txt
fi
echo "==> raw profiles: profiles/{cpu,mem}.pprof (go tool pprof profiles/comfase.test profiles/cpu.pprof)"
