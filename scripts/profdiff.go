//go:build ignore

// Profdiff diffs two `go tool pprof -top` text captures and prints the
// functions whose flat share moved the most — the distilled view a
// hot-path sweep needs ("phy.LossDB went from 18% to 3%, csv encoding
// disappeared, memo lookup appeared at 1%"). It compares the unitless
// flat% column rather than absolute seconds/bytes, so captures from
// machines of different speeds still diff meaningfully.
//
// Usage:
//
//	go run scripts/profdiff.go [-n 15] baseline.top.txt current.top.txt
//
// `make profile` runs it automatically against the committed
// bench/PROFILE_baseline_{cpu,mem}.txt captures.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type sample struct {
	flatPct float64
	cumPct  float64
}

func main() {
	n := flag.Int("n", 15, "show the N functions with the largest |flat% delta|")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: profdiff [-n 15] baseline.top.txt current.top.txt")
		os.Exit(2)
	}
	base, err := parseTop(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseTop(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	names := map[string]bool{}
	for name := range base {
		names[name] = true
	}
	for name := range cur {
		names[name] = true
	}
	type row struct {
		name     string
		old, new float64
	}
	rows := make([]row, 0, len(names))
	for name := range names {
		rows = append(rows, row{name, base[name].flatPct, cur[name].flatPct})
	}
	// Largest absolute movement first; ties break by name so the output
	// is stable across runs.
	sort.Slice(rows, func(i, j int) bool {
		di, dj := math.Abs(rows[i].new-rows[i].old), math.Abs(rows[j].new-rows[j].old)
		if di != dj {
			return di > dj
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > *n {
		rows = rows[:*n]
	}

	fmt.Printf("%9s %9s %9s  %s\n", "old flat%", "new flat%", "delta", "function")
	for _, r := range rows {
		old, new := "-", "-"
		if _, ok := base[r.name]; ok {
			old = fmt.Sprintf("%.2f%%", r.old)
		}
		if _, ok := cur[r.name]; ok {
			new = fmt.Sprintf("%.2f%%", r.new)
		}
		fmt.Printf("%9s %9s %+8.2f%%  %s\n", old, new, r.new-r.old, r.name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profdiff:", err)
	os.Exit(1)
}

// parseTop reads pprof -top text: a free-form header, then a column
// header line containing "flat  flat%", then one node per line:
//
//	0.50s 38.46% 38.46%  0.60s 46.15%  comfase/internal/phy.FreeSpace.LossDB
//
// Only the percentage columns are kept — they are unit-free, so the same
// parser covers cpu (seconds) and heap (bytes) captures.
func parseTop(path string) (map[string]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]sample{}
	inBody := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !inBody {
			if strings.HasPrefix(line, "flat") && strings.Contains(line, "flat%") {
				inBody = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 6 {
			continue
		}
		flatPct, err1 := parsePct(fields[1])
		cumPct, err2 := parsePct(fields[4])
		if err1 != nil || err2 != nil {
			continue
		}
		name := strings.Join(fields[5:], " ")
		out[name] = sample{flatPct: flatPct, cumPct: cumPct}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inBody {
		return nil, fmt.Errorf("%s: no pprof -top table found (missing 'flat  flat%%' header)", path)
	}
	return out, nil
}

func parsePct(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
}
