#!/bin/sh
# Bench regression gate (`make bench-diff`): run a fresh, shorter pass of
# the regression trio and fail when it regresses against the committed
# bench/BENCH_baseline.json — more than 25% on ns/op medians, or on
# allocs/op beyond measurement grain (max(1, 0.1%) allocations; per-op
# counts are b.N averages that flutter by a few ppm with GC timing,
# while a real steady-state leak adds per-beacon/per-step allocations).
# Unlike `make bench` this writes no dated artifact: it is a gate, not a
# measurement.
#
# Environment knobs:
#   COUNT=6        -count repetitions per benchmark (medians absorb noise)
#   BENCH=regexp   benchmark selection (default: the regression trio)
#   THRESHOLD=25   ns/op regression percentage that fails
#   WARN_ONLY=1    report regressions but exit 0 (noisy hosts, laptops)
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
BENCH="${BENCH:-BenchmarkExperiment\$|BenchmarkKernelThroughput\$|BenchmarkFig4GoldenRun\$|BenchmarkExperimentCheckpointed|BenchmarkCampaignCheckpointed|BenchmarkCampaignMatrix}"
THRESHOLD="${THRESHOLD:-25}"

if [ ! -f bench/BENCH_baseline.json ]; then
    echo "benchdiff: bench/BENCH_baseline.json missing — run 'make bench' and commit a baseline first" >&2
    exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> go test -bench '$BENCH' -count $COUNT"
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$TMP"

echo "==> gate vs bench/BENCH_baseline.json (ns/op threshold +${THRESHOLD}%, allocs/op grain max(1, 0.1%))"
if [ "${WARN_ONLY:-}" = "1" ]; then
    go run scripts/benchjson.go -in "$TMP" -compare bench/BENCH_baseline.json -check -threshold "$THRESHOLD" -warn-only
else
    go run scripts/benchjson.go -in "$TMP" -compare bench/BENCH_baseline.json -check -threshold "$THRESHOLD"
fi
