package classify

import "sort"

// LabeledCounts tallies outcomes per string label — the per-cell
// classification tables of matrix campaigns, where a label is a
// "scenario/attack" cell identity. Iteration helpers return labels in
// first-added order (matrix grid order) or sorted, both deterministic.
type LabeledCounts struct {
	counts map[string]*Counts
	order  []string
}

// Add tallies one outcome under the label.
func (lc *LabeledCounts) Add(label string, o Outcome) {
	if lc.counts == nil {
		lc.counts = make(map[string]*Counts)
	}
	c, ok := lc.counts[label]
	if !ok {
		c = &Counts{}
		lc.counts[label] = c
		lc.order = append(lc.order, label)
	}
	c.Add(o)
}

// Get returns the tally for the label (zero Counts when absent).
func (lc *LabeledCounts) Get(label string) Counts {
	if c, ok := lc.counts[label]; ok {
		return *c
	}
	return Counts{}
}

// Labels returns the labels in first-added order.
func (lc *LabeledCounts) Labels() []string {
	return append([]string(nil), lc.order...)
}

// SortedLabels returns the labels sorted lexicographically.
func (lc *LabeledCounts) SortedLabels() []string {
	out := lc.Labels()
	sort.Strings(out)
	return out
}

// Len returns the number of distinct labels.
func (lc *LabeledCounts) Len() int { return len(lc.order) }
