package classify

import (
	"reflect"
	"testing"
)

func TestLabeledCounts(t *testing.T) {
	var lc LabeledCounts
	if lc.Len() != 0 {
		t.Fatalf("zero value Len = %d", lc.Len())
	}
	if got := lc.Get("missing"); got != (Counts{}) {
		t.Errorf("Get on empty = %+v, want zero", got)
	}

	lc.Add("b/delay", Severe)
	lc.Add("a/dos", Benign)
	lc.Add("b/delay", Severe)
	lc.Add("b/delay", Negligible)

	if lc.Len() != 2 {
		t.Errorf("Len = %d, want 2", lc.Len())
	}
	// Labels preserves first-added (grid) order; SortedLabels sorts.
	if got := lc.Labels(); !reflect.DeepEqual(got, []string{"b/delay", "a/dos"}) {
		t.Errorf("Labels = %v, want first-added order", got)
	}
	if got := lc.SortedLabels(); !reflect.DeepEqual(got, []string{"a/dos", "b/delay"}) {
		t.Errorf("SortedLabels = %v", got)
	}
	if got := lc.Get("b/delay"); got != (Counts{Severe: 2, Negligible: 1}) {
		t.Errorf("Get(b/delay) = %+v", got)
	}
	if got := lc.Get("a/dos"); got != (Counts{Benign: 1}) {
		t.Errorf("Get(a/dos) = %+v", got)
	}
	// Get returns a copy: mutating it must not leak back.
	c := lc.Get("a/dos")
	c.Add(Severe)
	if lc.Get("a/dos").Severe != 0 {
		t.Error("Get leaked a mutable reference")
	}
}
