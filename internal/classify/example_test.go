package classify_test

import (
	"fmt"

	"comfase/internal/classify"
)

// The §IV-B classification in action: anchor the thresholds at the
// golden run's maximum deceleration and classify three observations.
func ExampleClassify() {
	th := classify.PaperThresholds(1.53)

	fmt.Println(classify.Classify(th, classify.Observation{
		MaxDecel: 1.53, MaxSpeedDev: 0,
	}))
	fmt.Println(classify.Classify(th, classify.Observation{
		MaxDecel: 3.2, MaxSpeedDev: 1.4,
	}))
	fmt.Println(classify.Classify(th, classify.Observation{
		MaxDecel: 0.9, MaxSpeedDev: 0.2, Collided: true,
	}))
	// Output:
	// non-effective
	// benign
	// severe
}

func ExampleCounts() {
	var c classify.Counts
	for _, o := range []classify.Outcome{
		classify.Severe, classify.Severe, classify.Benign, classify.Negligible,
	} {
		c.Add(o)
	}
	fmt.Println(c.Total(), c.Of(classify.Severe))
	fmt.Println(c)
	// Output:
	// 4 2
	// severe=2 benign=1 negligible=1 non-effective=0
}
