// Package classify implements Step-4 of the ComFASE execution flow: the
// comparison of an attack experiment against the golden run and its
// classification into the four §IV-B severity categories based on
// deceleration profiles and collision incidents.
package classify

import (
	"errors"
	"fmt"
)

// Outcome is the severity class of one experiment.
type Outcome int

// The §IV-B result classification categories.
const (
	// NonEffective: the attack had no effect at all — speed profiles
	// identical to the golden run and no failure indications.
	NonEffective Outcome = iota + 1
	// Negligible: behaviour changed, but the maximum deceleration stays
	// within the golden run's maximum (1.53 m/s^2 in the paper).
	Negligible
	// Benign: deceleration above the golden maximum but within the
	// maximum comfortable braking rate (5 m/s^2).
	Benign
	// Severe: a collision occurred, or a vehicle performed emergency
	// braking (deceleration beyond 5 m/s^2).
	Severe
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case NonEffective:
		return "non-effective"
	case Negligible:
		return "negligible"
	case Benign:
		return "benign"
	case Severe:
		return "severe"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Valid reports whether o is a defined category.
func (o Outcome) Valid() bool { return o >= NonEffective && o <= Severe }

// ParseOutcome inverts String: it maps a category name back to its
// Outcome. Campaign runners use it to reload classified results from
// persisted CSV rows when resuming an interrupted campaign.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "non-effective":
		return NonEffective, nil
	case "negligible":
		return Negligible, nil
	case "benign":
		return Benign, nil
	case "severe":
		return Severe, nil
	default:
		return 0, fmt.Errorf("classify: unknown outcome %q", s)
	}
}

// Thresholds are the classificationParameters of Algorithm 1 line 18.
type Thresholds struct {
	// SpeedDevEpsilon is the per-sample speed deviation below which the
	// attack counts as having no effect (non-effective). Strictly
	// "identical speed profiles" in the paper; a small epsilon absorbs
	// float noise.
	SpeedDevEpsilon float64
	// NegligibleMaxDecel is the golden run's maximum deceleration
	// (paper: 1.53 m/s^2); at or below it the change is negligible.
	NegligibleMaxDecel float64
	// BenignMaxDecel is the maximum comfortable braking rate (paper:
	// 5 m/s^2); at or below it the change is benign.
	BenignMaxDecel float64
	// EmergencyMaxDecel documents the emergency-braking band's upper
	// bound (paper: 8 m/s^2); anything above BenignMaxDecel is severe
	// regardless, so this value only annotates reports.
	EmergencyMaxDecel float64
}

// PaperThresholds returns §IV-B's thresholds, anchored at the measured
// golden-run maximum deceleration.
func PaperThresholds(goldenMaxDecel float64) Thresholds {
	return Thresholds{
		SpeedDevEpsilon:    1e-3,
		NegligibleMaxDecel: goldenMaxDecel,
		BenignMaxDecel:     5,
		EmergencyMaxDecel:  8,
	}
}

// Validate reports the first threshold problem, or nil.
func (t Thresholds) Validate() error {
	switch {
	case t.SpeedDevEpsilon < 0:
		return errors.New("classify: negative epsilon")
	case t.NegligibleMaxDecel <= 0:
		return errors.New("classify: negligible threshold must be positive")
	case t.BenignMaxDecel <= t.NegligibleMaxDecel:
		return errors.New("classify: benign threshold must exceed negligible")
	case t.EmergencyMaxDecel < t.BenignMaxDecel:
		return errors.New("classify: emergency threshold must be >= benign")
	}
	return nil
}

// Observation is what one experiment yielded, measured against the golden
// run.
type Observation struct {
	// MaxDecel is the strongest deceleration across all vehicles
	// (m/s^2, positive).
	MaxDecel float64
	// MaxSpeedDev is the largest per-sample speed deviation from the
	// golden run across all vehicles (m/s).
	MaxSpeedDev float64
	// Collided reports whether any collision incident occurred.
	Collided bool
}

// Classify maps an observation to its §IV-B category.
func Classify(t Thresholds, obs Observation) Outcome {
	switch {
	case obs.Collided:
		return Severe
	case obs.MaxSpeedDev <= t.SpeedDevEpsilon:
		return NonEffective
	case obs.MaxDecel <= t.NegligibleMaxDecel:
		return Negligible
	case obs.MaxDecel <= t.BenignMaxDecel:
		return Benign
	default:
		return Severe
	}
}

// Decided reports whether the classification of a still-running
// experiment can no longer change, so the simulation tail may be skipped
// (verdict-aware early termination). It is derived from the monotonicity
// of Classify's inputs: MaxDecel and MaxSpeedDev only grow as a run
// progresses, and a recorded collision is permanent, so
//
//   - a collision decides Severe immediately (and the collider column is
//     fixed by the FIRST collision, which is already recorded);
//   - once the attack window is over and the platoon has re-converged
//     onto the golden trajectory (stabilized: every per-sample speed
//     deviation stayed within the caller's stability tolerance for the
//     caller's hold period), the remaining tail tracks the golden run and
//     cannot move the observation across a class boundary.
//
// The one non-monotone trap is the non-effective class: while MaxSpeedDev
// is still within SpeedDevEpsilon the run classifies non-effective, but a
// future deviation of up to stabilityTol could push it past epsilon and
// demote it to negligible — so a non-effective-so-far run is only decided
// when the stability tolerance itself is within epsilon. Severe-by-
// deceleration is deliberately NOT decided here: a later collision would
// still change the collider attribution even though the class could not
// change.
func Decided(t Thresholds, obs Observation, attackOver, stabilized bool, stabilityTol float64) bool {
	if obs.Collided {
		return true
	}
	if !attackOver || !stabilized {
		return false
	}
	if obs.MaxSpeedDev <= t.SpeedDevEpsilon && stabilityTol > t.SpeedDevEpsilon {
		return false
	}
	return true
}

// Counts tallies outcomes per category.
type Counts struct {
	NonEffective int `json:"nonEffective"`
	Negligible   int `json:"negligible"`
	Benign       int `json:"benign"`
	Severe       int `json:"severe"`
}

// Add increments the tally for the outcome.
func (c *Counts) Add(o Outcome) {
	switch o {
	case NonEffective:
		c.NonEffective++
	case Negligible:
		c.Negligible++
	case Benign:
		c.Benign++
	case Severe:
		c.Severe++
	}
}

// Total returns the number of tallied experiments.
func (c Counts) Total() int {
	return c.NonEffective + c.Negligible + c.Benign + c.Severe
}

// Of returns the tally of one category.
func (c Counts) Of(o Outcome) int {
	switch o {
	case NonEffective:
		return c.NonEffective
	case Negligible:
		return c.Negligible
	case Benign:
		return c.Benign
	case Severe:
		return c.Severe
	default:
		return 0
	}
}

// String renders "severe=..., benign=..., negligible=..., non-effective=...".
func (c Counts) String() string {
	return fmt.Sprintf("severe=%d benign=%d negligible=%d non-effective=%d",
		c.Severe, c.Benign, c.Negligible, c.NonEffective)
}
