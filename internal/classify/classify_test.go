package classify

import (
	"testing"
	"testing/quick"
)

func TestOutcomeStringAndValid(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{o: NonEffective, want: "non-effective"},
		{o: Negligible, want: "negligible"},
		{o: Benign, want: "benign"},
		{o: Severe, want: "severe"},
	}
	for _, tt := range tests {
		if tt.o.String() != tt.want {
			t.Errorf("String = %q, want %q", tt.o.String(), tt.want)
		}
		if !tt.o.Valid() {
			t.Errorf("%v not valid", tt.o)
		}
	}
	if Outcome(0).Valid() || Outcome(9).Valid() {
		t.Error("invalid outcome considered valid")
	}
	if Outcome(0).String() == "" {
		t.Error("invalid outcome has empty String")
	}
}

func TestPaperThresholds(t *testing.T) {
	th := PaperThresholds(1.53)
	if err := th.Validate(); err != nil {
		t.Fatalf("paper thresholds invalid: %v", err)
	}
	if th.NegligibleMaxDecel != 1.53 || th.BenignMaxDecel != 5 || th.EmergencyMaxDecel != 8 {
		t.Errorf("thresholds %+v do not match §IV-B", th)
	}
}

func TestThresholdsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Thresholds)
	}{
		{name: "negative epsilon", mutate: func(th *Thresholds) { th.SpeedDevEpsilon = -1 }},
		{name: "zero negligible", mutate: func(th *Thresholds) { th.NegligibleMaxDecel = 0 }},
		{name: "benign below negligible", mutate: func(th *Thresholds) { th.BenignMaxDecel = 1 }},
		{name: "emergency below benign", mutate: func(th *Thresholds) { th.EmergencyMaxDecel = 4 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			th := PaperThresholds(1.53)
			tt.mutate(&th)
			if err := th.Validate(); err == nil {
				t.Error("invalid thresholds accepted")
			}
		})
	}
}

func TestClassifyPaperRules(t *testing.T) {
	th := PaperThresholds(1.53)
	tests := []struct {
		name string
		obs  Observation
		want Outcome
	}{
		{name: "identical profiles", obs: Observation{MaxDecel: 1.53, MaxSpeedDev: 0}, want: NonEffective},
		{name: "tiny float noise", obs: Observation{MaxDecel: 1.53, MaxSpeedDev: 5e-4}, want: NonEffective},
		{name: "changed but within golden decel", obs: Observation{MaxDecel: 1.2, MaxSpeedDev: 0.5}, want: Negligible},
		{name: "exactly golden max", obs: Observation{MaxDecel: 1.53, MaxSpeedDev: 0.5}, want: Negligible},
		{name: "above golden below comfort", obs: Observation{MaxDecel: 3, MaxSpeedDev: 1}, want: Benign},
		{name: "exactly comfortable limit", obs: Observation{MaxDecel: 5, MaxSpeedDev: 1}, want: Benign},
		{name: "emergency braking", obs: Observation{MaxDecel: 6.5, MaxSpeedDev: 2}, want: Severe},
		{name: "beyond emergency band", obs: Observation{MaxDecel: 9, MaxSpeedDev: 2}, want: Severe},
		{name: "collision overrides everything", obs: Observation{MaxDecel: 0.5, MaxSpeedDev: 0, Collided: true}, want: Severe},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(th, tt.obs); got != tt.want {
				t.Errorf("Classify(%+v) = %v, want %v", tt.obs, got, tt.want)
			}
		})
	}
}

// Property: classification is monotone in MaxDecel — more deceleration
// never yields a milder class (without collisions, above the
// non-effective epsilon).
func TestClassifyMonotoneProperty(t *testing.T) {
	th := PaperThresholds(1.53)
	f := func(a, b float64) bool {
		a, b = abs(a), abs(b)
		if a > b {
			a, b = b, a
		}
		lo := Classify(th, Observation{MaxDecel: a, MaxSpeedDev: 1})
		hi := Classify(th, Observation{MaxDecel: b, MaxSpeedDev: 1})
		return lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountsAddTotalOf(t *testing.T) {
	var c Counts
	for _, o := range []Outcome{Severe, Severe, Benign, Negligible, NonEffective, Severe} {
		c.Add(o)
	}
	c.Add(Outcome(99)) // unknown outcomes are ignored
	if c.Total() != 6 {
		t.Errorf("Total = %d, want 6", c.Total())
	}
	if c.Of(Severe) != 3 || c.Of(Benign) != 1 || c.Of(Negligible) != 1 || c.Of(NonEffective) != 1 {
		t.Errorf("Counts = %+v", c)
	}
	if c.Of(Outcome(99)) != 0 {
		t.Error("unknown outcome counted")
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
