package trace

import "comfase/internal/sim/des"

// SummaryState is a restorable snapshot of a Summary's accumulated
// extrema. The reference log and the stability tolerance are
// configuration (set by Reset/TrackStability for the whole experiment
// group) and are not captured. The zero value is ready to use; the
// extrema buffer grows on first SaveState and is reused afterwards.
type SummaryState struct {
	maxDecel     []float64
	maxSpeedDev  float64
	samples      int
	idx          int
	misaligned   bool
	lastUnstable des.Time
}

// SaveState captures the summary's accumulated state into st, reusing
// st's buffer.
func (s *Summary) SaveState(st *SummaryState) {
	st.maxDecel = append(st.maxDecel[:0], s.MaxDecel...)
	st.maxSpeedDev = s.MaxSpeedDev
	st.samples = s.Samples
	st.idx = s.idx
	st.misaligned = s.Misaligned
	st.lastUnstable = s.lastUnstable
}

// LoadState rewinds the summary to state captured by SaveState. The
// MaxDecel backing array is reused, preserving the Reset contract that
// callers copy extrema before the summary is recycled.
func (s *Summary) LoadState(st *SummaryState) {
	s.MaxDecel = append(s.MaxDecel[:0], st.maxDecel...)
	s.MaxSpeedDev = st.maxSpeedDev
	s.Samples = st.samples
	s.idx = st.idx
	s.Misaligned = st.misaligned
	s.lastUnstable = st.lastUnstable
}
