package trace

import (
	"strings"
	"testing"

	"comfase/internal/sim/des"
)

func sample(pos, speed, accel float64) VehicleSample {
	return VehicleSample{Pos: pos, Speed: speed, Accel: accel}
}

func TestFullLogRecordsAndAccessors(t *testing.T) {
	l := NewFullLog([]string{"vehicle.1", "vehicle.2"})
	l.OnSample(10*des.Millisecond, []VehicleSample{sample(100, 25, 0.5), sample(91, 25, -0.2)})
	l.OnSample(20*des.Millisecond, []VehicleSample{sample(100.25, 25.1, 0.4), sample(91.25, 25, -1.9)})

	if l.Len() != 2 || l.NumVehicles() != 2 {
		t.Fatalf("Len=%d NumVehicles=%d", l.Len(), l.NumVehicles())
	}
	if ids := l.IDs(); ids[0] != "vehicle.1" || ids[1] != "vehicle.2" {
		t.Errorf("IDs = %v", ids)
	}
	if l.Time(1) != 20*des.Millisecond {
		t.Errorf("Time(1) = %v", l.Time(1))
	}
	if got := l.At(1, 1); got.Accel != -1.9 {
		t.Errorf("At(1,1) = %+v", got)
	}
}

func TestFullLogIDsCopied(t *testing.T) {
	ids := []string{"a"}
	l := NewFullLog(ids)
	ids[0] = "mutated"
	if l.IDs()[0] != "a" {
		t.Error("IDs not copied at construction")
	}
	got := l.IDs()
	got[0] = "mutated"
	if l.IDs()[0] != "a" {
		t.Error("IDs accessor exposes internals")
	}
}

func TestFullLogSamplesCopied(t *testing.T) {
	l := NewFullLog([]string{"a"})
	row := []VehicleSample{sample(1, 2, 3)}
	l.OnSample(0, row)
	row[0].Pos = 99
	if l.At(0, 0).Pos != 1 {
		t.Error("OnSample did not copy the row")
	}
}

func TestMaxDeceleration(t *testing.T) {
	l := NewFullLog([]string{"a", "b"})
	l.OnSample(0, []VehicleSample{sample(0, 0, -1.2), sample(0, 0, 2.5)})
	l.OnSample(1, []VehicleSample{sample(0, 0, 0.3), sample(0, 0, -3.7)})
	if got := l.MaxDeceleration(); got != 3.7 {
		t.Errorf("MaxDeceleration = %v, want 3.7", got)
	}
	if got := l.MaxDecelerationOf(0); got != 1.2 {
		t.Errorf("MaxDecelerationOf(0) = %v, want 1.2", got)
	}
	if got := l.MaxDecelerationOf(1); got != 3.7 {
		t.Errorf("MaxDecelerationOf(1) = %v, want 3.7", got)
	}
}

func TestMaxDecelerationAllAccelerating(t *testing.T) {
	l := NewFullLog([]string{"a"})
	l.OnSample(0, []VehicleSample{sample(0, 0, 1)})
	if got := l.MaxDeceleration(); got != 0 {
		t.Errorf("MaxDeceleration = %v, want 0 when never braking", got)
	}
}

func TestMaxSpeedDeviation(t *testing.T) {
	ref := NewFullLog([]string{"a"})
	run := NewFullLog([]string{"a"})
	for i := 0; i < 10; i++ {
		tm := des.Time(i) * des.Millisecond
		ref.OnSample(tm, []VehicleSample{sample(0, 25, 0)})
		dev := 0.0
		if i == 7 {
			dev = -2.5
		}
		run.OnSample(tm, []VehicleSample{sample(0, 25+dev, 0)})
	}
	got, err := run.MaxSpeedDeviation(ref)
	if err != nil {
		t.Fatalf("MaxSpeedDeviation: %v", err)
	}
	if got != 2.5 {
		t.Errorf("deviation = %v, want 2.5", got)
	}
}

func TestMaxSpeedDeviationErrors(t *testing.T) {
	empty := NewFullLog([]string{"a"})
	if _, err := empty.MaxSpeedDeviation(empty); err == nil {
		t.Error("empty logs accepted")
	}
	a := NewFullLog([]string{"a"})
	a.OnSample(0, []VehicleSample{sample(0, 0, 0)})
	b2 := NewFullLog([]string{"a", "b"})
	b2.OnSample(0, []VehicleSample{sample(0, 0, 0), sample(0, 0, 0)})
	if _, err := a.MaxSpeedDeviation(b2); err == nil {
		t.Error("vehicle count mismatch accepted")
	}
	c := NewFullLog([]string{"a"})
	c.OnSample(5, []VehicleSample{sample(0, 0, 0)})
	if _, err := a.MaxSpeedDeviation(c); err == nil {
		t.Error("time mismatch accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewFullLog([]string{"vehicle.1"})
	l.OnSample(100*des.Millisecond, []VehicleSample{sample(12.5, 25.1, -0.75)})
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "time_s,vehicle,pos_m,speed_mps,accel_mps2\n") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, "0.100,vehicle.1,12.500,25.1000,-0.7500") {
		t.Errorf("missing row: %q", got)
	}
}

func TestSummaryTracksExtrema(t *testing.T) {
	s := NewSummary(2, nil)
	s.OnSample(0, []VehicleSample{sample(0, 10, -2), sample(0, 10, 1)})
	s.OnSample(1, []VehicleSample{sample(0, 10, -0.5), sample(0, 10, -4)})
	if s.MaxDecel[0] != 2 || s.MaxDecel[1] != 4 {
		t.Errorf("MaxDecel = %v", s.MaxDecel)
	}
	if s.MaxDecelOverall() != 4 {
		t.Errorf("MaxDecelOverall = %v", s.MaxDecelOverall())
	}
	if s.Samples != 2 {
		t.Errorf("Samples = %d", s.Samples)
	}
	if s.MaxSpeedDev != 0 {
		t.Errorf("MaxSpeedDev without reference = %v", s.MaxSpeedDev)
	}
}

func TestSummaryAgainstReference(t *testing.T) {
	ref := NewFullLog([]string{"a"})
	for i := 0; i < 5; i++ {
		ref.OnSample(des.Time(i), []VehicleSample{sample(0, 20, 0)})
	}
	s := NewSummary(1, ref)
	for i := 0; i < 5; i++ {
		dev := 0.0
		if i == 3 {
			dev = 1.75
		}
		s.OnSample(des.Time(i), []VehicleSample{sample(0, 20+dev, 0)})
	}
	if s.MaxSpeedDev != 1.75 {
		t.Errorf("MaxSpeedDev = %v, want 1.75", s.MaxSpeedDev)
	}
	if s.Misaligned {
		t.Error("aligned run flagged misaligned")
	}
}

func TestSummaryMisalignment(t *testing.T) {
	ref := NewFullLog([]string{"a"})
	ref.OnSample(0, []VehicleSample{sample(0, 20, 0)})
	s := NewSummary(1, ref)
	s.OnSample(des.Time(99), []VehicleSample{sample(0, 20, 0)})
	if !s.Misaligned {
		t.Error("time-shifted run not flagged")
	}
}

func TestSummaryLongerThanReference(t *testing.T) {
	ref := NewFullLog([]string{"a"})
	ref.OnSample(0, []VehicleSample{sample(0, 20, 0)})
	s := NewSummary(1, ref)
	s.OnSample(0, []VehicleSample{sample(0, 20, 0)})
	s.OnSample(1, []VehicleSample{sample(0, 25, -6)}) // beyond reference end
	if s.Misaligned {
		t.Error("extra samples flagged as misaligned")
	}
	if s.MaxDecelOverall() != 6 {
		t.Errorf("extrema not tracked past reference end: %v", s.MaxDecelOverall())
	}
}
