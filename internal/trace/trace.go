// Package trace records per-vehicle time series from simulation runs —
// the ComFASE logging layer that captures "vehicle speed, acceleration/
// deceleration and position" (§II-C) for golden-run comparison, result
// classification and figure generation.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"comfase/internal/sim/des"
)

// VehicleSample is one vehicle's state at one sample instant.
type VehicleSample struct {
	// Pos is the front-bumper lane position (m).
	Pos float64
	// Speed in m/s.
	Speed float64
	// Accel in m/s^2 (negative = deceleration).
	Accel float64
}

// Recorder consumes per-step samples. The scenario wiring invokes it once
// per traffic step with one sample per vehicle, in platoon order.
type Recorder interface {
	// OnSample delivers the states of all vehicles at time t.
	OnSample(t des.Time, states []VehicleSample)
}

// FullLog stores the complete time series of a run (used for the golden
// run, CSV export and figure generation).
type FullLog struct {
	ids     []string
	times   []des.Time
	samples [][]VehicleSample // samples[i] = all vehicles at times[i]
	// buf is the flat sample arena rows are carved from when the expected
	// run length is known up front (NewFullLogCap). Carving never extends
	// buf beyond its capacity — a reallocation would strand the rows
	// already handed out on the old array — so overflow rows fall back to
	// individual allocations.
	buf []VehicleSample
}

var _ Recorder = (*FullLog)(nil)

// NewFullLog creates a log for the given vehicle IDs (platoon order).
func NewFullLog(ids []string) *FullLog {
	cp := make([]string, len(ids))
	copy(cp, ids)
	return &FullLog{ids: cp}
}

// NewFullLogCap creates a log preallocated for about sampleHint samples.
// A run of the expected length records without any per-sample allocation;
// longer runs degrade gracefully to NewFullLog's per-row behaviour.
func NewFullLogCap(ids []string, sampleHint int) *FullLog {
	l := NewFullLog(ids)
	if sampleHint > 0 && len(ids) > 0 {
		l.times = make([]des.Time, 0, sampleHint)
		l.samples = make([][]VehicleSample, 0, sampleHint)
		l.buf = make([]VehicleSample, 0, sampleHint*len(ids))
	}
	return l
}

// OnSample implements Recorder.
func (l *FullLog) OnSample(t des.Time, states []VehicleSample) {
	var row []VehicleSample
	if n := len(l.buf); n+len(states) <= cap(l.buf) {
		l.buf = l.buf[: n+len(states) : n+len(states)]
		row = l.buf[n:]
		copy(row, states)
	} else {
		row = make([]VehicleSample, len(states))
		copy(row, states)
	}
	l.times = append(l.times, t)
	l.samples = append(l.samples, row)
}

// Len reports the number of samples.
func (l *FullLog) Len() int { return len(l.times) }

// IDs returns the vehicle IDs in column order.
func (l *FullLog) IDs() []string {
	cp := make([]string, len(l.ids))
	copy(cp, l.ids)
	return cp
}

// Time returns the time stamp of sample i.
func (l *FullLog) Time(i int) des.Time { return l.times[i] }

// At returns the state of vehicle v at sample i.
func (l *FullLog) At(i, v int) VehicleSample { return l.samples[i][v] }

// NumVehicles reports the number of recorded vehicles.
func (l *FullLog) NumVehicles() int { return len(l.ids) }

// MaxDeceleration returns the strongest deceleration magnitude (m/s^2,
// positive) observed across all vehicles and samples. This is the
// classification parameter of §IV-B.
func (l *FullLog) MaxDeceleration() float64 {
	var maxDecel float64
	for _, row := range l.samples {
		for _, s := range row {
			if d := -s.Accel; d > maxDecel {
				maxDecel = d
			}
		}
	}
	return maxDecel
}

// MaxDecelerationOf returns the strongest deceleration of one vehicle.
func (l *FullLog) MaxDecelerationOf(v int) float64 {
	var maxDecel float64
	for _, row := range l.samples {
		if d := -row[v].Accel; d > maxDecel {
			maxDecel = d
		}
	}
	return maxDecel
}

// MaxSpeedDeviation returns the largest per-sample speed difference (any
// vehicle) between this log and an identically shaped reference log. It
// returns an error if the logs are not sample-aligned.
func (l *FullLog) MaxSpeedDeviation(ref *FullLog) (float64, error) {
	n := l.Len()
	if ref.Len() < n {
		n = ref.Len()
	}
	if n == 0 {
		return 0, errors.New("trace: empty logs")
	}
	if l.NumVehicles() != ref.NumVehicles() {
		return 0, fmt.Errorf("trace: vehicle count mismatch %d vs %d",
			l.NumVehicles(), ref.NumVehicles())
	}
	var maxDev float64
	for i := 0; i < n; i++ {
		if l.times[i] != ref.times[i] {
			return 0, fmt.Errorf("trace: sample %d time mismatch %v vs %v",
				i, l.times[i], ref.times[i])
		}
		for v := range l.samples[i] {
			d := l.samples[i][v].Speed - ref.samples[i][v].Speed
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
		}
	}
	return maxDev, nil
}

// WriteCSV exports the log in tidy CSV form:
// time_s,vehicle,pos_m,speed_mps,accel_mps2.
func (l *FullLog) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "vehicle", "pos_m", "speed_mps", "accel_mps2"}); err != nil {
		return err
	}
	for i, t := range l.times {
		ts := strconv.FormatFloat(t.Seconds(), 'f', 3, 64)
		for v, s := range l.samples[i] {
			rec := []string{
				ts,
				l.ids[v],
				strconv.FormatFloat(s.Pos, 'f', 3, 64),
				strconv.FormatFloat(s.Speed, 'f', 4, 64),
				strconv.FormatFloat(s.Accel, 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary accumulates run extrema without storing the series — the
// memory-frugal recorder used for the thousands of attack runs in a
// campaign. It optionally tracks the deviation from a reference log on
// the fly.
type Summary struct {
	ref *FullLog
	idx int

	// stabilityTol, when positive, enables convergence tracking against
	// the reference: lastUnstable remembers the most recent sample whose
	// deviation exceeded the tolerance (see TrackStability).
	stabilityTol float64
	lastUnstable des.Time

	// MaxDecel is the strongest deceleration (positive magnitude) per
	// vehicle.
	MaxDecel []float64
	// MaxSpeedDev is the largest speed deviation from the reference
	// (zero if no reference).
	MaxSpeedDev float64
	// Samples counts the recorded steps.
	Samples int
	// Misaligned latches true if the reference had different sampling.
	Misaligned bool
}

var _ Recorder = (*Summary)(nil)

// NewSummary creates a summary for n vehicles; ref may be nil.
func NewSummary(n int, ref *FullLog) *Summary {
	return &Summary{ref: ref, MaxDecel: make([]float64, n)}
}

// Reset reinitialises the summary for a new run of n vehicles, reusing
// the per-vehicle extrema slice. Campaign workers keep one Summary per
// workspace and Reset it between experiments; callers that hand results
// out must copy MaxDecel first (see CopyMaxDecel), since the backing
// array is recycled.
func (s *Summary) Reset(n int, ref *FullLog) {
	if cap(s.MaxDecel) < n {
		s.MaxDecel = make([]float64, n)
	} else {
		s.MaxDecel = s.MaxDecel[:n]
		for i := range s.MaxDecel {
			s.MaxDecel[i] = 0
		}
	}
	s.ref = ref
	s.idx = 0
	s.MaxSpeedDev = 0
	s.Samples = 0
	s.Misaligned = false
	s.stabilityTol = 0
	s.lastUnstable = 0
}

// TrackStability enables convergence tracking against the reference log:
// every sample whose maximum speed deviation exceeds tol (m/s) updates
// LastUnstable. Call it after Reset; Reset disables tracking again.
// Samples that cannot be compared against the reference — no reference,
// reference exhausted, misaligned — conservatively count as unstable, so
// LastUnstable never under-reports.
func (s *Summary) TrackStability(tol float64) { s.stabilityTol = tol }

// LastUnstable reports the time of the most recent sample that deviated
// from the reference by more than the TrackStability tolerance (zero if
// every tracked sample stayed within it).
func (s *Summary) LastUnstable() des.Time { return s.lastUnstable }

// CopyMaxDecel returns a fresh copy of the per-vehicle deceleration
// extrema, safe to retain after the summary is Reset for the next run.
func (s *Summary) CopyMaxDecel() []float64 {
	out := make([]float64, len(s.MaxDecel))
	copy(out, s.MaxDecel)
	return out
}

// OnSample implements Recorder.
func (s *Summary) OnSample(t des.Time, states []VehicleSample) {
	for v, st := range states {
		if v < len(s.MaxDecel) {
			if d := -st.Accel; d > s.MaxDecel[v] {
				s.MaxDecel[v] = d
			}
		}
	}
	if s.ref != nil && s.idx < s.ref.Len() {
		if s.ref.Time(s.idx) != t || s.ref.NumVehicles() != len(states) {
			s.Misaligned = true
			if s.stabilityTol > 0 {
				s.lastUnstable = t
			}
		} else {
			var sampleDev float64
			for v, st := range states {
				d := st.Speed - s.ref.At(s.idx, v).Speed
				if d < 0 {
					d = -d
				}
				if d > sampleDev {
					sampleDev = d
				}
			}
			if sampleDev > s.MaxSpeedDev {
				s.MaxSpeedDev = sampleDev
			}
			if s.stabilityTol > 0 && sampleDev > s.stabilityTol {
				s.lastUnstable = t
			}
		}
	} else if s.stabilityTol > 0 {
		s.lastUnstable = t
	}
	s.idx++
	s.Samples++
}

// MaxDecelOverall returns the strongest deceleration across all vehicles.
func (s *Summary) MaxDecelOverall() float64 {
	var m float64
	for _, d := range s.MaxDecel {
		if d > m {
			m = d
		}
	}
	return m
}
