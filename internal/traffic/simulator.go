// Package traffic is the microscopic traffic simulator of ComFASE-Go —
// the dynamic half of our SUMO substitute. It steps vehicle dynamics on
// the shared discrete-event kernel, detects rear-end collisions with
// SUMO-style collider attribution, and exposes pre/post-step hooks that
// the platooning controllers and trace loggers attach to.
package traffic

import (
	"errors"
	"fmt"
	"slices"

	"comfase/internal/invariant"
	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/vehicle"
)

// Errors returned by the simulator API.
var (
	ErrDuplicateVehicle = errors.New("traffic: duplicate vehicle ID")
	ErrUnknownVehicle   = errors.New("traffic: unknown vehicle")
	ErrStarted          = errors.New("traffic: simulator already started")
)

// StepHook is a callback invoked once per simulation step. Pre-step hooks
// run before dynamics integrate (controllers set acceleration commands
// there); post-step hooks run after integration and collision detection
// (loggers sample there).
type StepHook func(now des.Time)

// Simulator owns the vehicles of a scenario and advances their dynamics
// at a fixed step on the DES kernel, mirroring how Veins couples OMNeT++
// to SUMO via TraCI at a fixed step length (Plexe default: 10 ms).
type Simulator struct {
	k   *des.Kernel
	net *roadnet.Network

	stepLen des.Time
	dt      float64

	vehicles []*vehicle.Vehicle
	byID     map[string]*vehicle.Vehicle
	// spare holds vehicles detached by Reset, recycled by AddVehicle so a
	// reused simulator repopulates without reallocating vehicle objects.
	spare []*vehicle.Vehicle
	// laneScratch is the retained sort buffer of detectCollisions.
	laneScratch []*vehicle.Vehicle

	// inv enables the runtime invariant checks (internal/invariant) on
	// every step; prevPos is the retained pre-step position buffer the
	// monotonicity check compares against, and fault latches the first
	// violation (the kernel is stopped so the run aborts promptly).
	inv     bool
	prevPos []float64
	fault   error

	pre  []StepHook
	post []StepHook

	collisions  []Collision
	onCollision []func(Collision)
	// collided tracks vehicles already involved in a reported collision
	// pair so the same wreck is not re-reported every subsequent step.
	collided map[string]bool

	ticker  *des.Ticker
	started bool
}

// Config configures a Simulator.
type Config struct {
	// Kernel is the event kernel driving the simulation (required).
	Kernel *des.Kernel
	// Network is the road network (required).
	Network *roadnet.Network
	// StepLength is the dynamics update period. Zero defaults to 10 ms,
	// Plexe's SUMO coupling step.
	StepLength des.Time
	// Invariants enables the per-step runtime sanity checks (finite
	// state, position monotonicity, handled overlaps). A violation
	// latches into Fault() and stops the kernel, so silent numeric
	// corruption aborts the run instead of producing a bogus result.
	Invariants bool
}

// NewSimulator builds an empty traffic simulation.
func NewSimulator(cfg Config) (*Simulator, error) {
	s := &Simulator{
		byID:     make(map[string]*vehicle.Vehicle, 8),
		collided: make(map[string]bool, 8),
	}
	s.ticker = des.NewTicker(nil, des.Millisecond, des.PriorityLast, s.step)
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset reinitialises the simulator in place for a new experiment:
// vehicles are detached into a spare pool that AddVehicle recycles, all
// hooks and collision state are cleared, and the stepping ticker is
// re-targeted at the configured kernel. A reset simulator behaves exactly
// like a freshly constructed one.
func (s *Simulator) Reset(cfg Config) error {
	if cfg.Kernel == nil {
		return errors.New("traffic: Config.Kernel is required")
	}
	if cfg.Network == nil {
		return errors.New("traffic: Config.Network is required")
	}
	step := cfg.StepLength
	if step <= 0 {
		step = 10 * des.Millisecond
	}
	s.k = cfg.Kernel
	s.net = cfg.Network
	s.stepLen = step
	s.dt = step.Seconds()
	for i, v := range s.vehicles {
		s.spare = append(s.spare, v)
		s.vehicles[i] = nil
	}
	s.vehicles = s.vehicles[:0]
	clear(s.byID)
	clear(s.collided)
	// Hooks and listeners hold closures into the previous experiment's
	// object graph; nil the slots so the retained arrays do not pin it.
	for i := range s.pre {
		s.pre[i] = nil
	}
	s.pre = s.pre[:0]
	for i := range s.post {
		s.post[i] = nil
	}
	s.post = s.post[:0]
	for i := range s.onCollision {
		s.onCollision[i] = nil
	}
	s.onCollision = s.onCollision[:0]
	s.collisions = s.collisions[:0]
	s.ticker.Rebind(cfg.Kernel, step)
	s.started = false
	s.inv = cfg.Invariants
	s.fault = nil
	return nil
}

// AddVehicle inserts a vehicle into the simulation. Vehicles must be
// added before Start. Vehicles detached by a prior Reset are recycled.
func (s *Simulator) AddVehicle(spec vehicle.Spec, st vehicle.State) (*vehicle.Vehicle, error) {
	if s.started {
		return nil, ErrStarted
	}
	if _, dup := s.byID[spec.ID]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVehicle, spec.ID)
	}
	var v *vehicle.Vehicle
	if n := len(s.spare); n > 0 {
		v = s.spare[n-1]
		s.spare[n-1] = nil
		s.spare = s.spare[:n-1]
		if err := v.Reset(spec, st); err != nil {
			s.spare = append(s.spare, v)
			return nil, err
		}
	} else {
		var err error
		v, err = vehicle.New(spec, st)
		if err != nil {
			return nil, err
		}
	}
	s.vehicles = append(s.vehicles, v)
	s.byID[spec.ID] = v
	return v, nil
}

// Vehicle returns a vehicle by ID.
func (s *Simulator) Vehicle(id string) (*vehicle.Vehicle, error) {
	v, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVehicle, id)
	}
	return v, nil
}

// Vehicles returns the vehicles in insertion order. The returned slice
// is a copy; the pointed-to vehicles are live.
func (s *Simulator) Vehicles() []*vehicle.Vehicle {
	out := make([]*vehicle.Vehicle, len(s.vehicles))
	copy(out, s.vehicles)
	return out
}

// OnPreStep registers a controller hook (runs before dynamics).
func (s *Simulator) OnPreStep(h StepHook) { s.pre = append(s.pre, h) }

// OnPostStep registers an observer hook (runs after dynamics and
// collision detection).
func (s *Simulator) OnPostStep(h StepHook) { s.post = append(s.post, h) }

// OnCollision registers a collision listener, invoked at detection time.
func (s *Simulator) OnCollision(f func(Collision)) {
	s.onCollision = append(s.onCollision, f)
}

// Collisions returns a copy of the collision log.
func (s *Simulator) Collisions() []Collision {
	out := make([]Collision, len(s.collisions))
	copy(out, s.collisions)
	return out
}

// CollisionCount reports the number of recorded collision incidents
// without copying the log — cheap enough for high-cadence polling (the
// engine's early-exit decision checks).
func (s *Simulator) CollisionCount() int { return len(s.collisions) }

// StepLength reports the dynamics step period.
func (s *Simulator) StepLength() des.Time { return s.stepLen }

// Network returns the road network.
func (s *Simulator) Network() *roadnet.Network { return s.net }

// Start schedules the periodic dynamics stepping, with the first step one
// step length after the current kernel time. It may be called once.
func (s *Simulator) Start() error {
	if s.started {
		return ErrStarted
	}
	s.started = true
	s.ticker.Start(s.k.Now().Add(s.stepLen))
	return nil
}

// step is one simulation tick: controllers, integration, collisions,
// observers. It runs at PriorityLast so every radio frame delivered at
// the same time stamp is already processed.
func (s *Simulator) step() {
	now := s.k.Now()
	for _, h := range s.pre {
		h(now)
	}
	if s.inv {
		if cap(s.prevPos) < len(s.vehicles) {
			s.prevPos = make([]float64, len(s.vehicles))
		}
		s.prevPos = s.prevPos[:len(s.vehicles)]
		for i, v := range s.vehicles {
			s.prevPos[i] = v.State.Pos
		}
	}
	for _, v := range s.vehicles {
		v.Step(s.dt)
	}
	s.detectCollisions(now)
	if s.inv && s.checkInvariants(now) {
		return // fault latched; kernel stopping — skip the observers
	}
	for _, h := range s.post {
		h(now)
	}
}

// Fault reports the first invariant violation observed during stepping
// (nil while the simulation is healthy). Once a fault latches the kernel
// has been stopped; callers translate the resulting des.ErrStopped into
// this error.
func (s *Simulator) Fault() error { return s.fault }

// checkInvariants validates the post-step world when invariant checking
// is enabled: every vehicle's state via vehicle.CheckState, plus the
// collision-handling consistency check (overlapping vehicles must have
// been halted by detectCollisions — anything else means the integrator
// or an attack model let vehicles drive through each other). The first
// violation latches into s.fault and stops the kernel; the return value
// reports whether that happened. laneScratch still holds the
// (lane, position)-sorted order detectCollisions built this step.
func (s *Simulator) checkInvariants(now des.Time) bool {
	fail := func(err error) bool {
		s.fault = fmt.Errorf("traffic: at %v: %w", now, err)
		s.k.Stop()
		return true
	}
	for i, v := range s.vehicles {
		if err := v.CheckState(s.prevPos[i]); err != nil {
			return fail(err)
		}
	}
	if len(s.vehicles) < 2 {
		return false // laneScratch is only (re)built with >= 2 vehicles
	}
	for i := 0; i+1 < len(s.laneScratch); i++ {
		rear, front := s.laneScratch[i], s.laneScratch[i+1]
		if rear.State.Lane != front.State.Lane {
			continue
		}
		gap := front.State.Rear(front.Spec.Length) - rear.State.Pos
		if err := invariant.CheckHandledOverlap(rear.Spec.ID, front.Spec.ID, gap,
			rear.Halted() && front.Halted()); err != nil {
			return fail(err)
		}
	}
	return false
}

// detectCollisions finds rear-end overlaps per lane. Vehicles are sorted
// by position; an overlap between consecutive vehicles is reported once
// (per colliding pair) with the rear vehicle as the collider, matching
// SUMO's collision output semantics. Both vehicles are halted in place
// (SUMO collision.action = "stop"), so trailing traffic may subsequently
// pile into the wreck — the effect the paper observes on Vehicles 3/4.
func (s *Simulator) detectCollisions(now des.Time) {
	if len(s.vehicles) < 2 {
		return
	}
	// Sort a retained scratch copy by (lane, position): no per-step map or
	// closure allocations, and lanes are visited in a deterministic order
	// (the old per-lane map iterated in random order, which could permute
	// same-step collision reports across lanes).
	s.laneScratch = append(s.laneScratch[:0], s.vehicles...)
	slices.SortStableFunc(s.laneScratch, func(a, b *vehicle.Vehicle) int {
		if a.State.Lane != b.State.Lane {
			return a.State.Lane - b.State.Lane
		}
		switch {
		case a.State.Pos < b.State.Pos:
			return -1
		case a.State.Pos > b.State.Pos:
			return 1
		}
		return 0
	})
	for i := 0; i+1 < len(s.laneScratch); i++ {
		rear, front := s.laneScratch[i], s.laneScratch[i+1]
		if rear.State.Lane != front.State.Lane {
			continue
		}
		if rear.State.Pos < front.State.Rear(front.Spec.Length) {
			continue // gap open
		}
		pair := rear.Spec.ID + "|" + front.Spec.ID
		if s.collided[pair] {
			continue
		}
		s.collided[pair] = true
		c := Collision{
			Time:     now,
			Collider: rear.Spec.ID,
			Victim:   front.Spec.ID,
			Lane:     rear.State.Lane,
			Pos:      rear.State.Pos,
			RelSpeed: rear.State.Speed - front.State.Speed,
		}
		rear.Halt()
		front.Halt()
		s.collisions = append(s.collisions, c)
		for _, f := range s.onCollision {
			f(c)
		}
	}
}
