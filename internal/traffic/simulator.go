// Package traffic is the microscopic traffic simulator of ComFASE-Go —
// the dynamic half of our SUMO substitute. It steps vehicle dynamics on
// the shared discrete-event kernel, detects rear-end collisions with
// SUMO-style collider attribution, and exposes pre/post-step hooks that
// the platooning controllers and trace loggers attach to.
package traffic

import (
	"errors"
	"fmt"
	"sort"

	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/vehicle"
)

// Errors returned by the simulator API.
var (
	ErrDuplicateVehicle = errors.New("traffic: duplicate vehicle ID")
	ErrUnknownVehicle   = errors.New("traffic: unknown vehicle")
	ErrStarted          = errors.New("traffic: simulator already started")
)

// StepHook is a callback invoked once per simulation step. Pre-step hooks
// run before dynamics integrate (controllers set acceleration commands
// there); post-step hooks run after integration and collision detection
// (loggers sample there).
type StepHook func(now des.Time)

// Simulator owns the vehicles of a scenario and advances their dynamics
// at a fixed step on the DES kernel, mirroring how Veins couples OMNeT++
// to SUMO via TraCI at a fixed step length (Plexe default: 10 ms).
type Simulator struct {
	k   *des.Kernel
	net *roadnet.Network

	stepLen des.Time
	dt      float64

	vehicles []*vehicle.Vehicle
	byID     map[string]*vehicle.Vehicle

	pre  []StepHook
	post []StepHook

	collisions  []Collision
	onCollision []func(Collision)
	// collided tracks vehicles already involved in a reported collision
	// pair so the same wreck is not re-reported every subsequent step.
	collided map[string]bool

	ticker  *des.Ticker
	started bool
}

// Config configures a Simulator.
type Config struct {
	// Kernel is the event kernel driving the simulation (required).
	Kernel *des.Kernel
	// Network is the road network (required).
	Network *roadnet.Network
	// StepLength is the dynamics update period. Zero defaults to 10 ms,
	// Plexe's SUMO coupling step.
	StepLength des.Time
}

// NewSimulator builds an empty traffic simulation.
func NewSimulator(cfg Config) (*Simulator, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("traffic: Config.Kernel is required")
	}
	if cfg.Network == nil {
		return nil, errors.New("traffic: Config.Network is required")
	}
	step := cfg.StepLength
	if step <= 0 {
		step = 10 * des.Millisecond
	}
	s := &Simulator{
		k:        cfg.Kernel,
		net:      cfg.Network,
		stepLen:  step,
		dt:       step.Seconds(),
		byID:     make(map[string]*vehicle.Vehicle, 8),
		collided: make(map[string]bool, 8),
	}
	s.ticker = des.NewTicker(cfg.Kernel, step, des.PriorityLast, s.step)
	return s, nil
}

// AddVehicle inserts a vehicle into the simulation. Vehicles must be
// added before Start.
func (s *Simulator) AddVehicle(spec vehicle.Spec, st vehicle.State) (*vehicle.Vehicle, error) {
	if s.started {
		return nil, ErrStarted
	}
	if _, dup := s.byID[spec.ID]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVehicle, spec.ID)
	}
	v, err := vehicle.New(spec, st)
	if err != nil {
		return nil, err
	}
	s.vehicles = append(s.vehicles, v)
	s.byID[spec.ID] = v
	return v, nil
}

// Vehicle returns a vehicle by ID.
func (s *Simulator) Vehicle(id string) (*vehicle.Vehicle, error) {
	v, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVehicle, id)
	}
	return v, nil
}

// Vehicles returns the vehicles in insertion order. The returned slice
// is a copy; the pointed-to vehicles are live.
func (s *Simulator) Vehicles() []*vehicle.Vehicle {
	out := make([]*vehicle.Vehicle, len(s.vehicles))
	copy(out, s.vehicles)
	return out
}

// OnPreStep registers a controller hook (runs before dynamics).
func (s *Simulator) OnPreStep(h StepHook) { s.pre = append(s.pre, h) }

// OnPostStep registers an observer hook (runs after dynamics and
// collision detection).
func (s *Simulator) OnPostStep(h StepHook) { s.post = append(s.post, h) }

// OnCollision registers a collision listener, invoked at detection time.
func (s *Simulator) OnCollision(f func(Collision)) {
	s.onCollision = append(s.onCollision, f)
}

// Collisions returns a copy of the collision log.
func (s *Simulator) Collisions() []Collision {
	out := make([]Collision, len(s.collisions))
	copy(out, s.collisions)
	return out
}

// StepLength reports the dynamics step period.
func (s *Simulator) StepLength() des.Time { return s.stepLen }

// Network returns the road network.
func (s *Simulator) Network() *roadnet.Network { return s.net }

// Start schedules the periodic dynamics stepping, with the first step one
// step length after the current kernel time. It may be called once.
func (s *Simulator) Start() error {
	if s.started {
		return ErrStarted
	}
	s.started = true
	s.ticker.Start(s.k.Now().Add(s.stepLen))
	return nil
}

// step is one simulation tick: controllers, integration, collisions,
// observers. It runs at PriorityLast so every radio frame delivered at
// the same time stamp is already processed.
func (s *Simulator) step() {
	now := s.k.Now()
	for _, h := range s.pre {
		h(now)
	}
	for _, v := range s.vehicles {
		v.Step(s.dt)
	}
	s.detectCollisions(now)
	for _, h := range s.post {
		h(now)
	}
}

// detectCollisions finds rear-end overlaps per lane. Vehicles are sorted
// by position; an overlap between consecutive vehicles is reported once
// (per colliding pair) with the rear vehicle as the collider, matching
// SUMO's collision output semantics. Both vehicles are halted in place
// (SUMO collision.action = "stop"), so trailing traffic may subsequently
// pile into the wreck — the effect the paper observes on Vehicles 3/4.
func (s *Simulator) detectCollisions(now des.Time) {
	byLane := make(map[int][]*vehicle.Vehicle, 4)
	for _, v := range s.vehicles {
		byLane[v.State.Lane] = append(byLane[v.State.Lane], v)
	}
	for lane, vs := range byLane {
		if len(vs) < 2 {
			continue
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].State.Pos < vs[j].State.Pos })
		for i := 0; i+1 < len(vs); i++ {
			rear, front := vs[i], vs[i+1]
			if rear.State.Pos < front.State.Rear(front.Spec.Length) {
				continue // gap open
			}
			pair := rear.Spec.ID + "|" + front.Spec.ID
			if s.collided[pair] {
				continue
			}
			s.collided[pair] = true
			c := Collision{
				Time:     now,
				Collider: rear.Spec.ID,
				Victim:   front.Spec.ID,
				Lane:     lane,
				Pos:      rear.State.Pos,
				RelSpeed: rear.State.Speed - front.State.Speed,
			}
			rear.Halt()
			front.Halt()
			s.collisions = append(s.collisions, c)
			for _, f := range s.onCollision {
				f(c)
			}
		}
	}
}
