package traffic

import (
	"fmt"

	"comfase/internal/sim/des"
)

// Collision describes a rear-end collision incident, following the
// vocabulary of SUMO's collision output that the paper uses for its
// severity analysis: the "collider" is the vehicle that drives into the
// "victim" ahead of it.
type Collision struct {
	// Time is the simulation time at which the overlap was detected.
	Time des.Time
	// Collider is the ID of the rear vehicle that caused the collision.
	Collider string
	// Victim is the ID of the front vehicle that was struck.
	Victim string
	// Lane is the lane index where the collision happened.
	Lane int
	// Pos is the longitudinal position (m) of the collider's front
	// bumper at impact.
	Pos float64
	// RelSpeed is the closing speed (m/s) at impact: collider speed
	// minus victim speed.
	RelSpeed float64
}

// String renders a SUMO-collision-log style one-liner.
func (c Collision) String() string {
	return fmt.Sprintf("t=%v collider=%s victim=%s lane=%d pos=%.2fm dv=%.2fm/s",
		c.Time, c.Collider, c.Victim, c.Lane, c.Pos, c.RelSpeed)
}
