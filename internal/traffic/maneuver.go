package traffic

import (
	"math"

	"comfase/internal/vehicle"
)

// Maneuver is the scenarioManeuver of ComFASE Step-1: it prescribes the
// driving pattern of the platoon leader. Followers do not use maneuvers;
// they track the leader through their controllers.
type Maneuver interface {
	// TargetSpeed returns the speed (m/s) the leader should hold at
	// simulation time t (seconds).
	TargetSpeed(t float64) float64
	// FeedforwardAccel returns the acceleration (m/s^2) of the target
	// speed profile at time t, used as a feedforward term so the leader
	// tracks the profile tightly despite actuation lag.
	FeedforwardAccel(t float64) float64
}

// SpeedTracker converts a maneuver's target speed into an acceleration
// command using feedforward plus proportional feedback, the same
// structure Plexe uses to drive its leader vehicle.
type SpeedTracker struct {
	// Maneuver is the speed profile to track.
	Maneuver Maneuver
	// Gain is the proportional speed-error gain (1/s). Plexe's leader
	// speed controller is comparably stiff; 2.0 tracks a 0.2 Hz sinusoid
	// through a 0.5 s actuation lag with small phase error.
	Gain float64
	// LagComp, when positive, is the actuation time constant (seconds)
	// to invert: the command gains a tau * d(ff)/dt lead term so the
	// realised acceleration after the first-order lag matches the
	// profile's feedforward (Plexe drives its leader through the same
	// inverse-engine trick).
	LagComp float64
}

// Accel returns the leader's acceleration command at time t.
func (c SpeedTracker) Accel(t float64, s vehicle.State) float64 {
	g := c.Gain
	if g <= 0 {
		g = 2.0
	}
	ff := c.Maneuver.FeedforwardAccel(t)
	if c.LagComp > 0 {
		const h = 1e-3 // numeric derivative step (s)
		dff := (c.Maneuver.FeedforwardAccel(t+h) - c.Maneuver.FeedforwardAccel(t-h)) / (2 * h)
		ff += c.LagComp * dff
	}
	return ff + g*(c.Maneuver.TargetSpeed(t)-s.Speed)
}

// ConstantSpeed is a trivial maneuver: hold a fixed cruise speed.
type ConstantSpeed struct {
	// Speed is the cruise speed in m/s.
	Speed float64
}

var _ Maneuver = ConstantSpeed{}

// TargetSpeed implements Maneuver.
func (m ConstantSpeed) TargetSpeed(float64) float64 { return m.Speed }

// FeedforwardAccel implements Maneuver.
func (m ConstantSpeed) FeedforwardAccel(float64) float64 { return 0 }

// Sinusoidal is the paper's demonstration maneuver (§IV-A1, Fig. 4): the
// leader's speed oscillates sinusoidally so the platoon repeatedly
// accelerates and brakes, making attack effects visible. The speed
// profile is
//
//	v(t) = Base + Amplitude * sin(2*pi*Frequency*(t - Phase))
//
// and the corresponding acceleration profile peaks at
// 2*pi*Frequency*Amplitude.
type Sinusoidal struct {
	// Base is the mean speed in m/s (Plexe default scenario: 100 km/h).
	Base float64
	// Amplitude is the speed swing in m/s.
	Amplitude float64
	// Frequency is the oscillation frequency in Hz (Plexe default 0.2,
	// i.e. a 5 s platooning cycle as in Fig. 4).
	Frequency float64
	// Phase shifts the profile in seconds: the speed minimum (upward
	// zero-crossing of acceleration) occurs at t = Phase - 1/(4*Frequency)
	// plus whole periods.
	Phase float64
}

var _ Maneuver = Sinusoidal{}

// TargetSpeed implements Maneuver.
func (m Sinusoidal) TargetSpeed(t float64) float64 {
	return m.Base + m.Amplitude*math.Sin(2*math.Pi*m.Frequency*(t-m.Phase))
}

// FeedforwardAccel implements Maneuver.
func (m Sinusoidal) FeedforwardAccel(t float64) float64 {
	w := 2 * math.Pi * m.Frequency
	return m.Amplitude * w * math.Cos(w*(t-m.Phase))
}

// PeakAccel returns the maximum acceleration magnitude of the profile.
func (m Sinusoidal) PeakAccel() float64 {
	return 2 * math.Pi * m.Frequency * m.Amplitude
}

// Braking is a maneuver that cruises and then brakes to a lower speed,
// useful for emergency-braking style scenarios.
type Braking struct {
	// CruiseSpeed is the initial speed in m/s.
	CruiseSpeed float64
	// FinalSpeed is the speed after braking in m/s.
	FinalSpeed float64
	// BrakeAt is the time (s) braking begins.
	BrakeAt float64
	// Decel is the braking deceleration magnitude in m/s^2.
	Decel float64
}

var _ Maneuver = Braking{}

// TargetSpeed implements Maneuver.
func (m Braking) TargetSpeed(t float64) float64 {
	if t < m.BrakeAt || m.Decel <= 0 {
		return m.CruiseSpeed
	}
	v := m.CruiseSpeed - m.Decel*(t-m.BrakeAt)
	if v < m.FinalSpeed {
		return m.FinalSpeed
	}
	return v
}

// FeedforwardAccel implements Maneuver.
func (m Braking) FeedforwardAccel(t float64) float64 {
	if t < m.BrakeAt || m.Decel <= 0 {
		return 0
	}
	if m.TargetSpeed(t) <= m.FinalSpeed {
		return 0
	}
	return -m.Decel
}
