package traffic

import (
	"fmt"

	"comfase/internal/sim/des"
	"comfase/internal/vehicle"
)

// SimState is a restorable snapshot of the traffic simulator's mutable
// state: every vehicle's dynamic state, the collision log, the latched
// invariant fault and the stepping ticker. The vehicle set, hooks and
// configuration are build-time wiring, stable across a checkpointed
// experiment group, so they are validated rather than captured. The
// collided-pair set is not stored either — it is rebuilt from the
// collision log, which records exactly one entry per pair.
//
// The zero value is ready to use; buffers grow on first SaveState and are
// reused afterwards, so steady-state restore cycles allocate nothing.
type SimState struct {
	vehicles   []vehicle.Memento
	collisions []Collision
	fault      error
	started    bool
	ticker     des.TickerState
}

// SaveState captures the simulator's mutable state into st, reusing st's
// buffers. It must be paired with a Kernel snapshot taken at the same
// instant: the ticker's pending step is a kernel event.
func (s *Simulator) SaveState(st *SimState) {
	if cap(st.vehicles) < len(s.vehicles) {
		st.vehicles = make([]vehicle.Memento, len(s.vehicles))
	}
	st.vehicles = st.vehicles[:len(s.vehicles)]
	for i, v := range s.vehicles {
		v.SaveState(&st.vehicles[i])
	}
	st.collisions = append(st.collisions[:0], s.collisions...)
	st.fault = s.fault
	st.started = s.started
	st.ticker = s.ticker.SaveState()
}

// LoadState restores state captured by SaveState, in place on the same
// simulator with the same vehicle set.
func (s *Simulator) LoadState(st *SimState) error {
	if len(st.vehicles) != len(s.vehicles) {
		return fmt.Errorf("traffic: restore with %d vehicles, snapshot had %d",
			len(s.vehicles), len(st.vehicles))
	}
	for i, v := range s.vehicles {
		v.LoadState(&st.vehicles[i])
	}
	s.collisions = append(s.collisions[:0], st.collisions...)
	clear(s.collided)
	for _, c := range s.collisions {
		s.collided[c.Collider+"|"+c.Victim] = true
	}
	s.fault = st.fault
	s.started = st.started
	s.ticker.LoadState(st.ticker)
	return nil
}
