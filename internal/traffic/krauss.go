package traffic

import (
	"math"

	"comfase/internal/sim/rng"
	"comfase/internal/vehicle"
)

// Krauss is SUMO's default stochastic car-following model (Krauß 1998) —
// the driver model that governs human-driven surrounding traffic in the
// original ComFASE stack. It is collision-free by construction: the
// driver never exceeds the "safe speed" from which it can still stop
// behind its leader under comfortable braking.
//
// ComFASE's own finding that "a faulty vehicle could significantly
// influence the behaviour of surrounding vehicles" motivates having
// conventional traffic around the platoon; Krauss vehicles provide it.
type Krauss struct {
	// Accel is the driver's acceleration ability a (m/s^2).
	Accel float64
	// Decel is the comfortable deceleration b (m/s^2).
	Decel float64
	// Tau is the driver's reaction time (s), SUMO default 1.0.
	Tau float64
	// Sigma is the driver imperfection in [0,1], SUMO default 0.5; the
	// driver randomly under-accelerates by up to Sigma*Accel.
	Sigma float64
	// MaxSpeed is the desired free-flow speed (m/s).
	MaxSpeed float64
	// RNG drives the imperfection term; nil makes the model
	// deterministic (sigma ignored).
	RNG *rng.Source
}

// DefaultKrauss returns SUMO's default passenger-car parameterisation.
func DefaultKrauss(maxSpeed float64, src *rng.Source) *Krauss {
	return &Krauss{
		Accel:    2.6,
		Decel:    4.5,
		Tau:      1.0,
		Sigma:    0.5,
		MaxSpeed: maxSpeed,
		RNG:      src,
	}
}

// SafeSpeed returns the Krauss safe speed for a follower with the given
// speed, a leader with leaderSpeed, and a bumper-to-bumper gap (m):
//
//	v_safe = -b*tau + sqrt((b*tau)^2 + v_l^2 + 2*b*gap)
//
// from which the follower can always stop behind a braking leader.
func (k *Krauss) SafeSpeed(gap, leaderSpeed float64) float64 {
	if gap <= 0 {
		return 0
	}
	bt := k.Decel * k.Tau
	v := -bt + math.Sqrt(bt*bt+leaderSpeed*leaderSpeed+2*k.Decel*gap)
	if v < 0 {
		return 0
	}
	return v
}

// DesiredSpeed computes the next-step target speed for dt seconds:
// min(v + a*dt, v_safe, v_max), minus the stochastic imperfection.
func (k *Krauss) DesiredSpeed(dt, speed, gap, leaderSpeed float64, hasLeader bool) float64 {
	v := speed + k.Accel*dt
	if hasLeader {
		if vs := k.SafeSpeed(gap, leaderSpeed); vs < v {
			v = vs
		}
	}
	if v > k.MaxSpeed {
		v = k.MaxSpeed
	}
	if k.RNG != nil && k.Sigma > 0 {
		v -= k.Sigma * k.Accel * dt * k.RNG.Float64()
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Accelerate converts the desired speed into an acceleration command for
// the vehicle's actuation envelope.
func (k *Krauss) Accelerate(dt, speed, gap, leaderSpeed float64, hasLeader bool) float64 {
	if dt <= 0 {
		return 0
	}
	return (k.DesiredSpeed(dt, speed, gap, leaderSpeed, hasLeader) - speed) / dt
}

// Driver binds a Krauss model to a vehicle and its (possibly nil) leader
// as a pre-step hook.
type Driver struct {
	Model  *Krauss
	Self   *vehicle.Vehicle
	Leader *vehicle.Vehicle
}

// Step issues the driver's command for a control period of dt seconds.
func (d *Driver) Step(dt float64) {
	var gap, leaderSpeed float64
	hasLeader := d.Leader != nil
	if hasLeader {
		gap = d.Leader.State.Rear(d.Leader.Spec.Length) - d.Self.State.Pos
		leaderSpeed = d.Leader.State.Speed
	}
	d.Self.Command(d.Model.Accelerate(dt, d.Self.State.Speed, gap, leaderSpeed, hasLeader))
}
