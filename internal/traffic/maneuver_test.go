package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"comfase/internal/vehicle"
)

func TestConstantSpeed(t *testing.T) {
	m := ConstantSpeed{Speed: 25}
	for _, tt := range []float64{0, 1, 17.2, 60} {
		if m.TargetSpeed(tt) != 25 {
			t.Errorf("TargetSpeed(%v) = %v", tt, m.TargetSpeed(tt))
		}
		if m.FeedforwardAccel(tt) != 0 {
			t.Errorf("FeedforwardAccel(%v) = %v", tt, m.FeedforwardAccel(tt))
		}
	}
}

func TestSinusoidalProfile(t *testing.T) {
	m := Sinusoidal{Base: 27.78, Amplitude: 1.2, Frequency: 0.2, Phase: 1.05}
	// Period is 5 s: profile repeats.
	f := func(tt float64) bool {
		tt = math.Mod(math.Abs(tt), 1000)
		return math.Abs(m.TargetSpeed(tt)-m.TargetSpeed(tt+5)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Speed minimum where acceleration crosses zero upward:
	// t = Phase - 1/(4f) = 1.05 - 1.25 = -0.2 (+ k*5) -> 19.8 for k=4.
	tMin := 19.8
	if got := m.TargetSpeed(tMin); math.Abs(got-(27.78-1.2)) > 1e-9 {
		t.Errorf("speed at minimum = %v, want %v", got, 27.78-1.2)
	}
	if got := m.FeedforwardAccel(tMin); math.Abs(got) > 1e-9 {
		t.Errorf("accel at speed minimum = %v, want 0", got)
	}
}

func TestSinusoidalPeakAccel(t *testing.T) {
	m := Sinusoidal{Base: 27.78, Amplitude: 1.2, Frequency: 0.2}
	want := 2 * math.Pi * 0.2 * 1.2
	if got := m.PeakAccel(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PeakAccel = %v, want %v", got, want)
	}
	// Feedforward never exceeds the peak.
	for tt := 0.0; tt < 10; tt += 0.01 {
		if a := math.Abs(m.FeedforwardAccel(tt)); a > want+1e-12 {
			t.Fatalf("feedforward %v exceeds peak %v at t=%v", a, want, tt)
		}
	}
}

func TestSinusoidalAccelIsSpeedDerivative(t *testing.T) {
	m := Sinusoidal{Base: 30, Amplitude: 2, Frequency: 0.2, Phase: 0.7}
	const h = 1e-6
	for tt := 0.0; tt < 6; tt += 0.37 {
		num := (m.TargetSpeed(tt+h) - m.TargetSpeed(tt-h)) / (2 * h)
		if math.Abs(num-m.FeedforwardAccel(tt)) > 1e-5 {
			t.Fatalf("accel not derivative of speed at t=%v: %v vs %v",
				tt, num, m.FeedforwardAccel(tt))
		}
	}
}

func TestBrakingManeuver(t *testing.T) {
	m := Braking{CruiseSpeed: 30, FinalSpeed: 10, BrakeAt: 5, Decel: 4}
	tests := []struct {
		name      string
		t         float64
		wantSpeed float64
		wantAccel float64
	}{
		{name: "before braking", t: 2, wantSpeed: 30, wantAccel: 0},
		{name: "just after brake start", t: 6, wantSpeed: 26, wantAccel: -4},
		{name: "mid braking", t: 9, wantSpeed: 14, wantAccel: -4},
		{name: "after reaching final", t: 12, wantSpeed: 10, wantAccel: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.TargetSpeed(tt.t); math.Abs(got-tt.wantSpeed) > 1e-9 {
				t.Errorf("TargetSpeed(%v) = %v, want %v", tt.t, got, tt.wantSpeed)
			}
			if got := m.FeedforwardAccel(tt.t); math.Abs(got-tt.wantAccel) > 1e-9 {
				t.Errorf("FeedforwardAccel(%v) = %v, want %v", tt.t, got, tt.wantAccel)
			}
		})
	}
}

func TestBrakingZeroDecelIsCruise(t *testing.T) {
	m := Braking{CruiseSpeed: 30, FinalSpeed: 10, BrakeAt: 5}
	if m.TargetSpeed(100) != 30 || m.FeedforwardAccel(100) != 0 {
		t.Error("zero-decel braking maneuver should behave as constant cruise")
	}
}

func TestSpeedTrackerCombinesTerms(t *testing.T) {
	tr := SpeedTracker{Maneuver: ConstantSpeed{Speed: 30}, Gain: 2}
	got := tr.Accel(0, vehicle.State{Speed: 28})
	if math.Abs(got-4) > 1e-12 { // 0 feedforward + 2*(30-28)
		t.Errorf("Accel = %v, want 4", got)
	}
}

func TestSpeedTrackerDefaultGain(t *testing.T) {
	tr := SpeedTracker{Maneuver: ConstantSpeed{Speed: 30}}
	got := tr.Accel(0, vehicle.State{Speed: 29})
	if got <= 0 {
		t.Errorf("Accel = %v, want positive with default gain", got)
	}
}
