package traffic

import (
	"errors"
	"math"
	"strings"
	"testing"

	"comfase/internal/invariant"

	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/vehicle"
)

func newTestSim(t *testing.T) (*des.Kernel, *Simulator) {
	t.Helper()
	k := des.NewKernel()
	net, err := roadnet.NewNetwork(roadnet.PaperHighway())
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	sim, err := NewSimulator(Config{Kernel: k, Network: net})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	return k, sim
}

func idealCar(id string) vehicle.Spec {
	s := vehicle.PaperCar(id)
	s.ActuationLag = 0
	return s
}

func TestNewSimulatorValidation(t *testing.T) {
	net, _ := roadnet.NewNetwork(roadnet.PaperHighway())
	if _, err := NewSimulator(Config{Network: net}); err == nil {
		t.Error("missing kernel accepted")
	}
	if _, err := NewSimulator(Config{Kernel: des.NewKernel()}); err == nil {
		t.Error("missing network accepted")
	}
}

func TestDefaultStepLength(t *testing.T) {
	_, sim := newTestSim(t)
	if sim.StepLength() != 10*des.Millisecond {
		t.Errorf("StepLength = %v, want 10ms (Plexe default)", sim.StepLength())
	}
}

func TestAddVehicleDuplicate(t *testing.T) {
	_, sim := newTestSim(t)
	if _, err := sim.AddVehicle(idealCar("v"), vehicle.State{}); err != nil {
		t.Fatalf("AddVehicle: %v", err)
	}
	if _, err := sim.AddVehicle(idealCar("v"), vehicle.State{}); !errors.Is(err, ErrDuplicateVehicle) {
		t.Errorf("duplicate add = %v, want ErrDuplicateVehicle", err)
	}
}

func TestAddVehicleAfterStart(t *testing.T) {
	_, sim := newTestSim(t)
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := sim.AddVehicle(idealCar("late"), vehicle.State{}); !errors.Is(err, ErrStarted) {
		t.Errorf("late add = %v, want ErrStarted", err)
	}
	if err := sim.Start(); !errors.Is(err, ErrStarted) {
		t.Errorf("double Start = %v, want ErrStarted", err)
	}
}

func TestVehicleLookup(t *testing.T) {
	_, sim := newTestSim(t)
	want, _ := sim.AddVehicle(idealCar("v"), vehicle.State{})
	got, err := sim.Vehicle("v")
	if err != nil || got != want {
		t.Errorf("Vehicle = %v, %v", got, err)
	}
	if _, err := sim.Vehicle("missing"); !errors.Is(err, ErrUnknownVehicle) {
		t.Errorf("missing lookup = %v, want ErrUnknownVehicle", err)
	}
	if n := len(sim.Vehicles()); n != 1 {
		t.Errorf("Vehicles len = %d", n)
	}
}

func TestSimulatorAdvancesDynamics(t *testing.T) {
	k, sim := newTestSim(t)
	v, _ := sim.AddVehicle(idealCar("v"), vehicle.State{Pos: 0, Speed: 20})
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := k.RunUntil(10 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if math.Abs(v.State.Pos-200) > 1e-6 {
		t.Errorf("Pos = %v after 10 s at 20 m/s, want 200", v.State.Pos)
	}
}

func TestPreStepHookControlsVehicle(t *testing.T) {
	k, sim := newTestSim(t)
	v, _ := sim.AddVehicle(idealCar("v"), vehicle.State{Speed: 20})
	sim.OnPreStep(func(des.Time) { v.Command(1) })
	var samples int
	sim.OnPostStep(func(des.Time) { samples++ })
	_ = sim.Start()
	if err := k.RunUntil(des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if math.Abs(v.State.Speed-21) > 1e-9 {
		t.Errorf("Speed = %v, want 21 after 1 s at +1 m/s^2", v.State.Speed)
	}
	if samples != 100 {
		t.Errorf("post-step hook ran %d times, want 100", samples)
	}
}

func TestCollisionDetectionAndHalt(t *testing.T) {
	k, sim := newTestSim(t)
	// Front vehicle stopped at 100 m; rear approaches at 20 m/s from 50 m.
	front, _ := sim.AddVehicle(idealCar("front"), vehicle.State{Pos: 100, Speed: 0})
	rear, _ := sim.AddVehicle(idealCar("rear"), vehicle.State{Pos: 50, Speed: 20})
	var seen []Collision
	sim.OnCollision(func(c Collision) { seen = append(seen, c) })
	_ = sim.Start()
	if err := k.RunUntil(10 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(seen) != 1 {
		t.Fatalf("collisions = %d, want 1", len(seen))
	}
	c := seen[0]
	if c.Collider != "rear" || c.Victim != "front" {
		t.Errorf("attribution = %s into %s, want rear into front", c.Collider, c.Victim)
	}
	if c.RelSpeed <= 0 {
		t.Errorf("RelSpeed = %v, want positive closing speed", c.RelSpeed)
	}
	// Gap 46 m at 20 m/s -> impact around 2.3 s.
	if c.Time < 2*des.Second || c.Time > 3*des.Second {
		t.Errorf("collision at %v, want ~2.3 s", c.Time)
	}
	if !rear.Halted() || !front.Halted() {
		t.Error("collided vehicles not halted")
	}
	if got := sim.Collisions(); len(got) != 1 || got[0] != c {
		t.Errorf("Collisions() = %v", got)
	}
}

func TestCollisionReportedOncePerPair(t *testing.T) {
	k, sim := newTestSim(t)
	_, _ = sim.AddVehicle(idealCar("front"), vehicle.State{Pos: 20, Speed: 0})
	_, _ = sim.AddVehicle(idealCar("rear"), vehicle.State{Pos: 10, Speed: 15})
	_ = sim.Start()
	if err := k.RunUntil(5 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if n := len(sim.Collisions()); n != 1 {
		t.Errorf("collision reported %d times, want once", n)
	}
}

func TestChainCollisionAttribution(t *testing.T) {
	k, sim := newTestSim(t)
	// Three-vehicle chain: middle rams front, then tail rams the wreck.
	_, _ = sim.AddVehicle(idealCar("front"), vehicle.State{Pos: 200, Speed: 0})
	_, _ = sim.AddVehicle(idealCar("middle"), vehicle.State{Pos: 150, Speed: 25})
	_, _ = sim.AddVehicle(idealCar("tail"), vehicle.State{Pos: 100, Speed: 25})
	_ = sim.Start()
	if err := k.RunUntil(20 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	cs := sim.Collisions()
	if len(cs) != 2 {
		t.Fatalf("collisions = %v, want 2 (pile-up)", cs)
	}
	if cs[0].Collider != "middle" || cs[0].Victim != "front" {
		t.Errorf("first collision %v", cs[0])
	}
	if cs[1].Collider != "tail" || cs[1].Victim != "middle" {
		t.Errorf("second collision %v", cs[1])
	}
	if !cs[1].Time.After(cs[0].Time) {
		t.Error("pile-up collision not later than first")
	}
}

func TestVehiclesOnDifferentLanesDoNotCollide(t *testing.T) {
	k, sim := newTestSim(t)
	_, _ = sim.AddVehicle(idealCar("a"), vehicle.State{Pos: 100, Speed: 0, Lane: 0})
	_, _ = sim.AddVehicle(idealCar("b"), vehicle.State{Pos: 50, Speed: 20, Lane: 1})
	_ = sim.Start()
	if err := k.RunUntil(10 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if n := len(sim.Collisions()); n != 0 {
		t.Errorf("cross-lane collision reported: %v", sim.Collisions())
	}
}

func TestLeaderTracksSinusoid(t *testing.T) {
	k, sim := newTestSim(t)
	m := Sinusoidal{Base: 27.78, Amplitude: 1.233, Frequency: 0.2, Phase: 1.05}
	tracker := SpeedTracker{Maneuver: m, Gain: 2, LagComp: 0.5}
	v, _ := sim.AddVehicle(vehicle.PaperCar("leader"),
		vehicle.State{Pos: 100, Speed: m.TargetSpeed(0)})
	sim.OnPreStep(func(now des.Time) {
		v.Command(tracker.Accel(now.Seconds(), v.State))
	})
	var maxErr float64
	sim.OnPostStep(func(now des.Time) {
		if now < 10*des.Second {
			return // allow transient to settle
		}
		e := math.Abs(v.State.Speed - m.TargetSpeed(now.Seconds()))
		if e > maxErr {
			maxErr = e
		}
	})
	_ = sim.Start()
	if err := k.RunUntil(60 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if maxErr > 0.35 {
		t.Errorf("steady-state speed tracking error %v m/s, want < 0.35", maxErr)
	}
}

// TestInvariantCheckCatchesNaN corrupts a vehicle's state mid-run and
// checks the simulator latches an ErrInvariant fault and stops the
// kernel instead of silently producing garbage samples.
func TestInvariantCheckCatchesNaN(t *testing.T) {
	k := des.NewKernel()
	net, _ := roadnet.NewNetwork(roadnet.PaperHighway())
	sim, err := NewSimulator(Config{Kernel: k, Network: net, Invariants: true})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	v, err := sim.AddVehicle(idealCar("vehicle.1"), vehicle.State{Pos: 100, Speed: 20})
	if err != nil {
		t.Fatalf("AddVehicle: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	k.ScheduleAt(100*des.Millisecond, func() { v.State.Speed = math.NaN() })
	err = k.RunUntil(des.Second)
	if !errors.Is(err, des.ErrStopped) {
		t.Fatalf("RunUntil = %v, want ErrStopped (fault latch)", err)
	}
	fault := sim.Fault()
	if fault == nil || !errors.Is(fault, invariant.ErrInvariant) {
		t.Fatalf("Fault() = %v, want an ErrInvariant violation", fault)
	}
	if !strings.Contains(fault.Error(), "vehicle.1") {
		t.Errorf("fault %q does not name the vehicle", fault)
	}
	if k.Now() >= des.Second {
		t.Errorf("kernel ran to %v despite fault", k.Now())
	}
}

// TestInvariantCheckAllowsHaltedWreck runs two vehicles into a rear-end
// collision with invariants enabled: the halted overlap is a legitimate
// simulation outcome, not a violation.
func TestInvariantCheckAllowsHaltedWreck(t *testing.T) {
	k := des.NewKernel()
	net, _ := roadnet.NewNetwork(roadnet.PaperHighway())
	sim, err := NewSimulator(Config{Kernel: k, Network: net, Invariants: true})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, err := sim.AddVehicle(idealCar("front"), vehicle.State{Pos: 50, Speed: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddVehicle(idealCar("rear"), vehicle.State{Pos: 30, Speed: 30}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := k.RunUntil(5 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if sim.Fault() != nil {
		t.Errorf("halted wreck reported as fault: %v", sim.Fault())
	}
	if len(sim.Collisions()) != 1 {
		t.Errorf("collisions = %d, want 1", len(sim.Collisions()))
	}
}

// TestInvariantResetClearsFault pins Reset's fault/flag behavior.
func TestInvariantResetClearsFault(t *testing.T) {
	k := des.NewKernel()
	net, _ := roadnet.NewNetwork(roadnet.PaperHighway())
	sim, err := NewSimulator(Config{Kernel: k, Network: net, Invariants: true})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	sim.fault = errors.New("stale")
	if err := sim.Reset(Config{Kernel: k, Network: net}); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if sim.Fault() != nil {
		t.Errorf("Reset kept fault %v", sim.Fault())
	}
	if sim.inv {
		t.Error("Reset kept invariants enabled despite cfg.Invariants=false")
	}
}
