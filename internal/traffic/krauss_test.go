package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/vehicle"
)

func detKrauss(maxSpeed float64) *Krauss {
	k := DefaultKrauss(maxSpeed, nil)
	k.Sigma = 0
	return k
}

func TestSafeSpeedProperties(t *testing.T) {
	k := detKrauss(30)
	// Zero gap: must stop.
	if got := k.SafeSpeed(0, 20); got != 0 {
		t.Errorf("SafeSpeed(0) = %v, want 0", got)
	}
	if got := k.SafeSpeed(-3, 20); got != 0 {
		t.Errorf("SafeSpeed(<0) = %v, want 0", got)
	}
	// Monotone in gap and leader speed.
	f := func(gapA, gapB, vl float64) bool {
		gapA = math.Mod(math.Abs(gapA), 500)
		gapB = math.Mod(math.Abs(gapB), 500)
		vl = math.Mod(math.Abs(vl), 50)
		lo, hi := math.Min(gapA, gapB), math.Max(gapA, gapB)
		return k.SafeSpeed(lo, vl) <= k.SafeSpeed(hi, vl)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSafeSpeedStationaryLeader(t *testing.T) {
	// With a stopped leader 50 m ahead and b=4.5, tau=1:
	// v_safe = -4.5 + sqrt(4.5^2 + 2*4.5*50) = ~17.2 m/s.
	k := detKrauss(30)
	got := k.SafeSpeed(50, 0)
	want := -4.5 + math.Sqrt(4.5*4.5+2*4.5*50)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SafeSpeed(50, 0) = %v, want %v", got, want)
	}
}

func TestDesiredSpeedCaps(t *testing.T) {
	k := detKrauss(30)
	// Free flow: accelerate by a*dt.
	if got := k.DesiredSpeed(0.1, 20, 0, 0, false); math.Abs(got-20.26) > 1e-9 {
		t.Errorf("free-flow desired = %v, want 20.26", got)
	}
	// Speed cap.
	if got := k.DesiredSpeed(0.1, 29.9, 0, 0, false); got != 30 {
		t.Errorf("capped desired = %v, want 30", got)
	}
	// Safe speed binds with a close leader.
	if got := k.DesiredSpeed(0.1, 20, 1, 0, true); got >= 20 {
		t.Errorf("desired = %v with 1 m gap, want strong slowdown", got)
	}
}

func TestImperfectionOnlyReduces(t *testing.T) {
	k := DefaultKrauss(30, rng.New(1, "krauss"))
	det := detKrauss(30)
	for i := 0; i < 1000; i++ {
		v := k.DesiredSpeed(0.1, 20, 0, 0, false)
		ideal := det.DesiredSpeed(0.1, 20, 0, 0, false)
		if v > ideal+1e-12 {
			t.Fatalf("imperfection increased speed: %v > %v", v, ideal)
		}
		if v < ideal-k.Sigma*k.Accel*0.1-1e-12 {
			t.Fatalf("imperfection too strong: %v", v)
		}
	}
}

func TestAccelerateZeroDt(t *testing.T) {
	if got := detKrauss(30).Accelerate(0, 20, 10, 20, true); got != 0 {
		t.Errorf("Accelerate(dt=0) = %v", got)
	}
}

// TestKraussFollowerIsCollisionFree drives a Krauss vehicle behind a
// harshly braking leader: the defining property of the model is that the
// follower never rear-ends.
func TestKraussFollowerIsCollisionFree(t *testing.T) {
	k := des.NewKernel()
	net, err := roadnet.NewNetwork(roadnet.PaperHighway())
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	sim, err := NewSimulator(Config{Kernel: k, Network: net})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	lead, err := sim.AddVehicle(vehicle.PaperCar("lead"), vehicle.State{Pos: 150, Speed: 25})
	if err != nil {
		t.Fatalf("AddVehicle: %v", err)
	}
	followSpec := vehicle.PaperCar("follower")
	followSpec.ActuationLag = 0 // the Krauss model assumes direct control
	follow, err := sim.AddVehicle(followSpec, vehicle.State{Pos: 100, Speed: 25})
	if err != nil {
		t.Fatalf("AddVehicle: %v", err)
	}
	tracker := SpeedTracker{
		Maneuver: Braking{CruiseSpeed: 25, FinalSpeed: 0, BrakeAt: 10, Decel: 6},
		Gain:     2, LagComp: 0.5,
	}
	driver := Driver{Model: detKrauss(35), Self: follow, Leader: lead}
	dt := sim.StepLength().Seconds()
	sim.OnPreStep(func(now des.Time) {
		lead.Command(tracker.Accel(now.Seconds(), lead.State))
		driver.Step(dt)
	})
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := k.RunUntil(60 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if cs := sim.Collisions(); len(cs) != 0 {
		t.Fatalf("Krauss follower collided: %v", cs)
	}
	if lead.State.Speed != 0 {
		t.Errorf("leader speed = %v, want full stop", lead.State.Speed)
	}
	if follow.State.Speed > 0.01 {
		t.Errorf("follower speed = %v, want stop behind leader", follow.State.Speed)
	}
	gap := lead.State.Rear(lead.Spec.Length) - follow.State.Pos
	if gap <= 0 {
		t.Errorf("final gap = %v, want positive", gap)
	}
}

// TestKraussBehindEmergencyBrakingVehicle quantifies the
// surrounding-traffic risk the paper highlights ("a faulty vehicle could
// significantly influence the behaviour of surrounding vehicles"): a
// conventional driver follows a vehicle that suddenly emergency-brakes
// at 9 m/s^2 (the aftermath of an attack on the platoon ahead).
//
// Krauss is collision-free only while the leader brakes no harder than
// the follower's assumed deceleration b. A comfortable driver (b = 4.5)
// therefore crashes into the emergency-braking vehicle; an attentive
// emergency-rated driver (b = 9) stops safely.
func TestKraussBehindEmergencyBrakingVehicle(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario run in -short mode")
	}
	run := func(followerDecel float64) []Collision {
		k := des.NewKernel()
		net, err := roadnet.NewNetwork(roadnet.PaperHighway())
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		sim, err := NewSimulator(Config{Kernel: k, Network: net})
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		front, err := sim.AddVehicle(vehicle.PaperCar("front"), vehicle.State{Pos: 200, Speed: 27.78})
		if err != nil {
			t.Fatalf("AddVehicle: %v", err)
		}
		tracker := SpeedTracker{
			Maneuver: Braking{CruiseSpeed: 27.78, FinalSpeed: 0, BrakeAt: 15, Decel: 9},
			Gain:     5,
		}
		humanSpec := vehicle.PaperCar("human")
		humanSpec.ActuationLag = 0 // Krauss assumes direct speed control
		// The driver never brakes harder than their model's b.
		humanSpec.MaxDecel = followerDecel
		human, err := sim.AddVehicle(humanSpec, vehicle.State{Pos: 120, Speed: 27.78})
		if err != nil {
			t.Fatalf("AddVehicle: %v", err)
		}
		model := detKrauss(33)
		model.Decel = followerDecel
		driver := Driver{Model: model, Self: human, Leader: front}
		dt := sim.StepLength().Seconds()
		sim.OnPreStep(func(now des.Time) {
			front.Command(tracker.Accel(now.Seconds(), front.State))
			driver.Step(dt)
		})
		if err := sim.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := k.RunUntil(40 * des.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return sim.Collisions()
	}

	if cs := run(9); len(cs) != 0 {
		t.Errorf("emergency-rated driver (b=9) crashed: %v", cs)
	}
	if cs := run(4.5); len(cs) == 0 {
		t.Error("comfortable driver (b=4.5) survived an emergency stop it cannot match")
	}
}
