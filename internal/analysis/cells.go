package analysis

import (
	"fmt"
	"io"

	"comfase/internal/classify"
	"comfase/internal/core"
)

// Cell identifies one (scenario, attack) cell of a matrix campaign. A
// plain single-scenario campaign has an empty Scenario.
type Cell struct {
	Scenario string
	Attack   string
}

// String renders "scenario/attack" (or just the attack outside
// matrices).
func (c Cell) String() string {
	if c.Scenario == "" {
		return c.Attack
	}
	return c.Scenario + "/" + c.Attack
}

// CellOf extracts an experiment's cell identity.
func CellOf(e core.ExperimentResult) Cell {
	return Cell{Scenario: e.Spec.Scenario, Attack: e.Spec.AttackLabel()}
}

// CellGroup is one cell's experiments with their classification tally.
type CellGroup struct {
	Cell Cell
	// Experiments are the cell's results in grid order.
	Experiments []core.ExperimentResult
	// Counts is the cell's outcome tally.
	Counts classify.Counts
}

// GroupCells splits experiments by cell, preserving grid order both
// across groups (first-appearance order = matrix expansion order) and
// within each group.
func GroupCells(exps []core.ExperimentResult) []CellGroup {
	idx := make(map[Cell]int)
	var groups []CellGroup
	for _, e := range exps {
		c := CellOf(e)
		i, ok := idx[c]
		if !ok {
			i = len(groups)
			idx[c] = i
			groups = append(groups, CellGroup{Cell: c})
		}
		groups[i].Experiments = append(groups[i].Experiments, e)
		groups[i].Counts.Add(e.Outcome)
	}
	return groups
}

// CellCounts tallies outcomes per cell label in grid order — the
// per-cell classification table of one matrix run.
func CellCounts(exps []core.ExperimentResult) *classify.LabeledCounts {
	var lc classify.LabeledCounts
	for _, e := range exps {
		lc.Add(CellOf(e).String(), e.Outcome)
	}
	return &lc
}

// CellFamily is one cell's figure family: the Fig. 5/6/7 outcome
// series and the collider attribution, computed over that cell alone.
type CellFamily struct {
	Cell      Cell
	Counts    classify.Counts
	ByDur     Series
	ByVal     Series
	ByStart   Series
	Colliders []ColliderShare
}

// CellFamilies computes each cell's figure family in grid order.
func CellFamilies(groups []CellGroup) []CellFamily {
	out := make([]CellFamily, 0, len(groups))
	for _, g := range groups {
		out = append(out, CellFamily{
			Cell:      g.Cell,
			Counts:    g.Counts,
			ByDur:     ByDuration(g.Experiments),
			ByVal:     ByValue(g.Experiments),
			ByStart:   ByStart(g.Experiments),
			Colliders: ColliderShares(g.Experiments),
		})
	}
	return out
}

// WriteCellReport renders one cell's figure family: headline tally,
// the three outcome series, and the collider attribution.
func WriteCellReport(w io.Writer, f CellFamily) error {
	if _, err := fmt.Fprintf(w, "cell %s: %d experiments: %v\n",
		f.Cell, f.Counts.Total(), f.Counts); err != nil {
		return err
	}
	for _, s := range []Series{f.ByDur, f.ByVal, f.ByStart} {
		if err := WriteSeriesTable(w, s); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "collider attribution:"); err != nil {
		return err
	}
	return WriteColliderTable(w, f.Colliders)
}

// WriteCellTable renders the per-cell classification tally as an
// aligned table, one row per (scenario, attack) cell in grid order.
func WriteCellTable(w io.Writer, groups []CellGroup) error {
	if _, err := fmt.Fprintf(w, "%-32s %8s %8s %12s %14s %8s\n",
		"cell", "severe", "benign", "negligible", "non-effective", "total"); err != nil {
		return err
	}
	for _, g := range groups {
		if _, err := fmt.Fprintf(w, "%-32s %8d %8d %12d %14d %8d\n",
			g.Cell, g.Counts.Severe, g.Counts.Benign, g.Counts.Negligible,
			g.Counts.NonEffective, g.Counts.Total()); err != nil {
			return err
		}
	}
	return nil
}
