package analysis

import (
	"math"
	"strings"
	"testing"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/sim/des"
)

func expWithDecel(d float64) core.ExperimentResult {
	return core.ExperimentResult{
		Spec:     core.ExperimentSpec{Kind: core.AttackDelay, Value: 1, Start: des.Second, Duration: des.Second},
		Outcome:  classify.Benign,
		MaxDecel: d,
	}
}

func TestPaperDecelEdges(t *testing.T) {
	edges := PaperDecelEdges(1.53)
	want := []float64{0, 1.53, 5, 8, math.Inf(1)}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edges = %v, want %v", edges, want)
		}
	}
}

func TestDecelHistogram(t *testing.T) {
	exps := []core.ExperimentResult{
		expWithDecel(0.5), expWithDecel(1.53), // negligible band
		expWithDecel(3),                    // benign band
		expWithDecel(6), expWithDecel(7.9), // emergency band
		expWithDecel(9), // beyond emergency
	}
	bins := DecelHistogram(exps, PaperDecelEdges(1.53))
	if len(bins) != 4 {
		t.Fatalf("bins = %v", bins)
	}
	wantCounts := []int{2, 1, 2, 1}
	for i, want := range wantCounts {
		if bins[i].Count != want {
			t.Errorf("bin %d (%s) count = %d, want %d", i, bins[i].Label(), bins[i].Count, want)
		}
	}
	// Totals preserved.
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(exps) {
		t.Errorf("histogram lost experiments: %d of %d", total, len(exps))
	}
}

func TestDecelHistogramDegenerate(t *testing.T) {
	if got := DecelHistogram(nil, []float64{1}); got != nil {
		t.Error("single-edge histogram should be nil")
	}
	if got := DecelHistogram(nil, []float64{2, 1}); got != nil {
		t.Error("unsorted edges should be nil")
	}
}

func TestDecelBinLabel(t *testing.T) {
	b := DecelBin{Lo: 1.53, Hi: 5}
	if !strings.Contains(b.Label(), "1.53") || !strings.Contains(b.Label(), "5.00") {
		t.Errorf("Label = %q", b.Label())
	}
	open := DecelBin{Lo: 8, Hi: math.Inf(1)}
	if !strings.HasPrefix(open.Label(), "> 8.00") {
		t.Errorf("open Label = %q", open.Label())
	}
}

func TestWriteDecelHistogram(t *testing.T) {
	var sb strings.Builder
	bins := DecelHistogram([]core.ExperimentResult{expWithDecel(3)}, PaperDecelEdges(1.53))
	if err := WriteDecelHistogram(&sb, bins); err != nil {
		t.Fatalf("WriteDecelHistogram: %v", err)
	}
	if !strings.Contains(sb.String(), "max deceleration band") {
		t.Errorf("missing header: %q", sb.String())
	}
}

func TestExperimentsCSV(t *testing.T) {
	exps := sampleExperiments()
	var sb strings.Builder
	if err := ExperimentsCSV(&sb, exps); err != nil {
		t.Fatalf("ExperimentsCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(exps)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(exps)+1)
	}
	if !strings.HasPrefix(lines[0], "expNr,attack,value,start_s") {
		t.Errorf("header = %q", lines[0])
	}
	// The severe experiment with a collider carries its attribution.
	found := false
	for _, l := range lines[1:] {
		if strings.Contains(l, "severe") && strings.Contains(l, "vehicle.2") {
			found = true
		}
	}
	if !found {
		t.Error("severe collider row missing")
	}
}
