package analysis

import (
	"fmt"
	"io"
	"strings"
)

// Bar glyphs: one per outcome class, matching the stacked-bar encoding
// of the paper's Figs. 5-7.
const (
	glyphSevere       = '#'
	glyphBenign       = '+'
	glyphNegligible   = '.'
	glyphNonEffective = ' '
)

// WriteSeriesBars renders a series as horizontal stacked bars, a
// terminal rendition of the paper's classification figures:
//
//	17.00 |#################+++++++....        | 450
//
// width is the bar width in characters (0 defaults to 50). Bars are
// scaled to the largest bucket total so relative sizes are comparable.
func WriteSeriesBars(w io.Writer, s Series, width int) error {
	if width <= 0 {
		width = 50
	}
	maxTotal := 0
	for _, b := range s.Buckets {
		if t := b.Counts.Total(); t > maxTotal {
			maxTotal = t
		}
	}
	if _, err := fmt.Fprintf(w, "%s  (x = %s; %c severe, %c benign, %c negligible)\n",
		s.Name, s.XLabel, glyphSevere, glyphBenign, glyphNegligible); err != nil {
		return err
	}
	if maxTotal == 0 {
		_, err := fmt.Fprintln(w, "  (no experiments)")
		return err
	}
	for _, b := range s.Buckets {
		bar := renderBar(b, width, maxTotal)
		if _, err := fmt.Fprintf(w, "%8.2f |%-*s| %d\n", b.Key, width, bar, b.Counts.Total()); err != nil {
			return err
		}
	}
	return nil
}

// renderBar builds one stacked bar scaled to maxTotal.
func renderBar(b Bucket, width, maxTotal int) string {
	scale := func(n int) int {
		return (n*width + maxTotal/2) / maxTotal
	}
	var sb strings.Builder
	sb.Grow(width)
	appendRun(&sb, glyphSevere, scale(b.Counts.Severe))
	appendRun(&sb, glyphBenign, scale(b.Counts.Benign))
	appendRun(&sb, glyphNegligible, scale(b.Counts.Negligible))
	appendRun(&sb, glyphNonEffective, scale(b.Counts.NonEffective))
	out := sb.String()
	if len(out) > width {
		out = out[:width]
	}
	return out
}

func appendRun(sb *strings.Builder, g rune, n int) {
	for i := 0; i < n; i++ {
		sb.WriteRune(g)
	}
}
