package analysis

import (
	"strconv"
	"unicode"
	"unicode/utf8"

	"comfase/internal/core"
)

// Append-style CSV encoders for the streaming result sinks. They produce
// output byte-identical to encoding/csv with the default configuration
// (Comma ',', UseCRLF false) writing the corresponding
// ExperimentCSVRecord/MatrixCSVRecord, but encode numeric fields with
// strconv.Append* straight into a caller-reused buffer, so the
// per-row sink path allocates nothing in steady state. Equivalence with
// encoding/csv is pinned by TestAppendRowMatchesEncodingCSV.

// appendCSVField appends one field, quoting exactly when encoding/csv
// would (field contains the comma, a quote, CR or LF; starts with a
// Unicode space; or is the literal `\.`).
func appendCSVField(buf []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(buf, field...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(field); i++ {
		c := field[i]
		if c == '"' {
			buf = append(buf, '"', '"')
		} else {
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// csvFieldNeedsQuotes mirrors encoding/csv's fieldNeedsQuotes for the
// default comma and UseCRLF=false.
func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	for i := 0; i < len(field); i++ {
		switch field[i] {
		case ',', '"', '\r', '\n':
			return true
		}
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// appendCSVHeader appends the header fields as one CSV row.
func appendCSVHeader(buf []byte, fields []string) []byte {
	for i, f := range fields {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendCSVField(buf, f)
	}
	return append(buf, '\n')
}

// AppendExperimentCSVHeader appends the ExperimentCSVHeader row to buf.
func AppendExperimentCSVHeader(buf []byte) []byte {
	return appendCSVHeader(buf, ExperimentCSVHeader())
}

// AppendMatrixCSVHeader appends the MatrixCSVHeader row to buf.
func AppendMatrixCSVHeader(buf []byte) []byte {
	return appendCSVHeader(buf, MatrixCSVHeader())
}

// AppendExperimentCSVRow appends one result row (terminated with '\n')
// in the ExperimentCSVHeader schema. The encoding matches
// ExperimentCSVRecord written through encoding/csv byte for byte.
func AppendExperimentCSVRow(buf []byte, e core.ExperimentResult) []byte {
	buf = strconv.AppendInt(buf, int64(e.Spec.Nr), 10)
	buf = append(buf, ',')
	return appendExperimentTail(buf, e)
}

// AppendMatrixCSVRow appends one result row in the MatrixCSVHeader
// schema (scenario column spliced after expNr).
func AppendMatrixCSVRow(buf []byte, e core.ExperimentResult) []byte {
	buf = strconv.AppendInt(buf, int64(e.Spec.Nr), 10)
	buf = append(buf, ',')
	buf = appendCSVField(buf, e.Spec.Scenario)
	buf = append(buf, ',')
	return appendExperimentTail(buf, e)
}

// appendExperimentTail appends the columns shared by both schemas,
// starting at the attack label.
func appendExperimentTail(buf []byte, e core.ExperimentResult) []byte {
	buf = appendCSVField(buf, e.Spec.AttackLabel())
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, e.Spec.Value, 'g', -1, 64)
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, e.Spec.Start.Seconds(), 'f', 3, 64)
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, e.Spec.Duration.Seconds(), 'f', 3, 64)
	buf = append(buf, ',')
	buf = appendCSVField(buf, e.Outcome.String())
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, e.MaxDecel, 'f', 4, 64)
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, e.MaxSpeedDev, 'f', 4, 64)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(len(e.Collisions)), 10)
	buf = append(buf, ',')
	buf = appendCSVField(buf, e.Collider)
	return append(buf, '\n')
}
