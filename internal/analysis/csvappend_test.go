package analysis

import (
	"bytes"
	"encoding/csv"
	"math"
	"testing"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
)

// appendRowCases exercises the field shapes that can reach result rows,
// plus adversarial strings that force every encoding/csv quoting rule.
var appendRowCases = []core.ExperimentResult{
	{
		Spec:    core.ExperimentSpec{Nr: 1, Kind: core.AttackDelay, Value: 0.5, Start: 20 * des.Second, Duration: 5 * des.Second},
		Outcome: classify.NonEffective, MaxDecel: 1.2345, MaxSpeedDev: 0.5,
	},
	{
		Spec:    core.ExperimentSpec{Nr: 42, Attack: "falsification", Scenario: "paper-platoon", Value: 1e-9, Start: des.Second / 2, Duration: 0},
		Outcome: classify.Severe, MaxDecel: 9.81, MaxSpeedDev: 12.75,
		Collisions: []traffic.Collision{{}}, Collider: "vehicle.2",
	},
	{
		Spec:    core.ExperimentSpec{Nr: -3, Attack: "with,comma", Scenario: "with\"quote", Value: math.Inf(1)},
		Outcome: classify.Severe, MaxDecel: math.NaN(),
		Collider: " leading-space",
	},
	{
		Spec:     core.ExperimentSpec{Nr: 0, Attack: "line\nbreak", Scenario: `\.`},
		Collider: "cr\rfield",
	},
}

// TestAppendRowMatchesEncodingCSV pins the zero-allocation appenders to
// encoding/csv byte for byte: the streaming sinks rely on this to keep
// result files identical to the batch ExperimentsCSV export.
func TestAppendRowMatchesEncodingCSV(t *testing.T) {
	for _, e := range appendRowCases {
		var want bytes.Buffer
		cw := csv.NewWriter(&want)
		if err := cw.Write(ExperimentCSVRecord(e)); err != nil {
			t.Fatalf("csv.Write: %v", err)
		}
		cw.Flush()
		got := AppendExperimentCSVRow(nil, e)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("experiment row mismatch:\n got %q\nwant %q", got, want.Bytes())
		}

		want.Reset()
		cw = csv.NewWriter(&want)
		if err := cw.Write(MatrixCSVRecord(e)); err != nil {
			t.Fatalf("csv.Write: %v", err)
		}
		cw.Flush()
		got = AppendMatrixCSVRow(nil, e)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("matrix row mismatch:\n got %q\nwant %q", got, want.Bytes())
		}
	}
}

// TestAppendHeaderMatchesEncodingCSV pins the header encodings the same
// way.
func TestAppendHeaderMatchesEncodingCSV(t *testing.T) {
	var want bytes.Buffer
	cw := csv.NewWriter(&want)
	if err := cw.Write(ExperimentCSVHeader()); err != nil {
		t.Fatal(err)
	}
	cw.Flush()
	if got := AppendExperimentCSVHeader(nil); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("experiment header mismatch:\n got %q\nwant %q", got, want.Bytes())
	}

	want.Reset()
	cw = csv.NewWriter(&want)
	if err := cw.Write(MatrixCSVHeader()); err != nil {
		t.Fatal(err)
	}
	cw.Flush()
	if got := AppendMatrixCSVHeader(nil); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("matrix header mismatch:\n got %q\nwant %q", got, want.Bytes())
	}
}

// TestAppendRowSteadyStateAllocs pins the reused-buffer encoding at zero
// allocations per row.
func TestAppendRowSteadyStateAllocs(t *testing.T) {
	e := appendRowCases[1]
	buf := AppendExperimentCSVRow(nil, e) // warm the buffer
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendExperimentCSVRow(buf[:0], e)
	})
	if allocs != 0 {
		t.Errorf("AppendExperimentCSVRow allocs/op = %v, want 0", allocs)
	}
}
