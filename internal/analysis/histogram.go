package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"comfase/internal/core"
)

// DecelBin is one bucket of a deceleration-magnitude histogram: the
// severity grading by "magnitude of vehicle decelerations" the paper's
// Step-4 describes.
type DecelBin struct {
	// Lo/Hi bound the bucket: Lo < maxDecel <= Hi.
	Lo, Hi float64
	// Count is the number of experiments in the bucket.
	Count int
}

// Label renders "(lo, hi] m/s^2" with an open upper bucket.
func (b DecelBin) Label() string {
	if math.IsInf(b.Hi, 1) {
		return fmt.Sprintf("> %.2f m/s^2", b.Lo)
	}
	return fmt.Sprintf("(%.2f, %.2f] m/s^2", b.Lo, b.Hi)
}

// PaperDecelEdges returns the §IV-B band edges anchored at the golden
// maximum: [0, golden], (golden, 5], (5, 8], (8, inf).
func PaperDecelEdges(goldenMaxDecel float64) []float64 {
	return []float64{0, goldenMaxDecel, 5, 8, math.Inf(1)}
}

// DecelHistogram bins experiments by their maximum deceleration. edges
// must be strictly increasing; values at or below edges[0] land in the
// first bucket.
func DecelHistogram(exps []core.ExperimentResult, edges []float64) []DecelBin {
	if len(edges) < 2 {
		return nil
	}
	if !sort.Float64sAreSorted(edges) {
		return nil
	}
	bins := make([]DecelBin, len(edges)-1)
	for i := range bins {
		bins[i] = DecelBin{Lo: edges[i], Hi: edges[i+1]}
	}
	for _, e := range exps {
		d := e.MaxDecel
		for i := range bins {
			if (d > bins[i].Lo || i == 0) && d <= bins[i].Hi {
				bins[i].Count++
				break
			}
		}
	}
	return bins
}

// WriteDecelHistogram renders the histogram as an aligned table.
func WriteDecelHistogram(w io.Writer, bins []DecelBin) error {
	if _, err := fmt.Fprintf(w, "%-24s %8s\n", "max deceleration band", "count"); err != nil {
		return err
	}
	for _, b := range bins {
		if _, err := fmt.Fprintf(w, "%-24s %8d\n", b.Label(), b.Count); err != nil {
			return err
		}
	}
	return nil
}

// ExperimentCSVHeader returns the column names of the per-experiment CSV
// schema shared by ExperimentsCSV and the streaming runner.CSVSink.
func ExperimentCSVHeader() []string {
	return []string{
		"expNr", "attack", "value", "start_s", "duration_s",
		"outcome", "max_decel_mps2", "max_speed_dev_mps",
		"collisions", "collider",
	}
}

// ExperimentCSVRecord encodes one experiment as a CSV record matching
// ExperimentCSVHeader. The encoding is deterministic, so result files
// written row-by-row by a streaming sink are byte-identical to a batch
// ExperimentsCSV export of the same experiments in the same order.
func ExperimentCSVRecord(e core.ExperimentResult) []string {
	return []string{
		strconv.Itoa(e.Spec.Nr),
		e.Spec.AttackLabel(),
		strconv.FormatFloat(e.Spec.Value, 'g', -1, 64),
		strconv.FormatFloat(e.Spec.Start.Seconds(), 'f', 3, 64),
		strconv.FormatFloat(e.Spec.Duration.Seconds(), 'f', 3, 64),
		e.Outcome.String(),
		strconv.FormatFloat(e.MaxDecel, 'f', 4, 64),
		strconv.FormatFloat(e.MaxSpeedDev, 'f', 4, 64),
		strconv.Itoa(len(e.Collisions)),
		e.Collider,
	}
}

// ExperimentsCSV exports one row per experiment — the raw
// AttackCampaignLog view for downstream analysis pipelines:
// expNr,attack,value,start_s,duration_s,outcome,max_decel,max_speed_dev,
// collisions,collider.
func ExperimentsCSV(w io.Writer, exps []core.ExperimentResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(ExperimentCSVHeader()); err != nil {
		return err
	}
	for _, e := range exps {
		if err := cw.Write(ExperimentCSVRecord(e)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MatrixCSVHeader returns the per-experiment CSV schema of matrix
// campaigns: the single-campaign schema with a scenario column after
// expNr, so every row carries its cell identity.
func MatrixCSVHeader() []string {
	return []string{
		"expNr", "scenario", "attack", "value", "start_s", "duration_s",
		"outcome", "max_decel_mps2", "max_speed_dev_mps",
		"collisions", "collider",
	}
}

// MatrixCSVRecord encodes one experiment as a CSV record matching
// MatrixCSVHeader; encoding matches ExperimentCSVRecord field for field.
func MatrixCSVRecord(e core.ExperimentResult) []string {
	rec := ExperimentCSVRecord(e)
	out := make([]string, 0, len(rec)+1)
	out = append(out, rec[0], e.Spec.Scenario)
	return append(out, rec[1:]...)
}
