package analysis

import (
	"strings"
	"testing"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
)

func exp(start des.Time, value float64, dur des.Time, o classify.Outcome, collider string) core.ExperimentResult {
	r := core.ExperimentResult{
		Spec: core.ExperimentSpec{
			Kind:     core.AttackDelay,
			Targets:  []string{"vehicle.2"},
			Value:    value,
			Start:    start,
			Duration: dur,
		},
		Outcome:  o,
		Collider: collider,
	}
	if collider != "" {
		r.Collisions = []traffic.Collision{{Collider: collider, Victim: "x"}}
	}
	return r
}

func sampleExperiments() []core.ExperimentResult {
	return []core.ExperimentResult{
		exp(17*des.Second, 0.2, des.Second, classify.Negligible, ""),
		exp(17*des.Second, 2.0, des.Second, classify.Benign, ""),
		exp(17*des.Second, 2.0, 10*des.Second, classify.Severe, "vehicle.2"),
		exp(18*des.Second, 0.2, 10*des.Second, classify.Severe, "vehicle.3"),
		exp(18*des.Second, 2.0, 10*des.Second, classify.Severe, "vehicle.2"),
		exp(18*des.Second, 0.2, des.Second, classify.NonEffective, ""),
	}
}

func TestByDuration(t *testing.T) {
	s := ByDuration(sampleExperiments())
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(s.Buckets))
	}
	if s.Buckets[0].Key != 1 || s.Buckets[1].Key != 10 {
		t.Errorf("keys = %v,%v, want sorted 1,10", s.Buckets[0].Key, s.Buckets[1].Key)
	}
	oneSec := s.Buckets[0].Counts
	if oneSec.Severe != 0 || oneSec.Benign != 1 || oneSec.Negligible != 1 || oneSec.NonEffective != 1 {
		t.Errorf("1s bucket = %+v", oneSec)
	}
	tenSec := s.Buckets[1].Counts
	if tenSec.Severe != 3 || tenSec.Total() != 3 {
		t.Errorf("10s bucket = %+v", tenSec)
	}
}

func TestByValue(t *testing.T) {
	s := ByValue(sampleExperiments())
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %d", len(s.Buckets))
	}
	if s.Buckets[0].Key != 0.2 || s.Buckets[1].Key != 2.0 {
		t.Errorf("keys = %v", s.Buckets)
	}
	if s.Buckets[1].Counts.Severe != 2 {
		t.Errorf("PD=2.0 severe = %d, want 2", s.Buckets[1].Counts.Severe)
	}
}

func TestByStart(t *testing.T) {
	s := ByStart(sampleExperiments())
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %d", len(s.Buckets))
	}
	if s.Buckets[0].Key != 17 || s.Buckets[1].Key != 18 {
		t.Errorf("keys = %v", s.Buckets)
	}
	if s.Buckets[0].Counts.Total() != 3 || s.Buckets[1].Counts.Total() != 3 {
		t.Error("start buckets uneven")
	}
}

func TestColliderShares(t *testing.T) {
	shares := ColliderShares(sampleExperiments())
	if len(shares) != 2 {
		t.Fatalf("shares = %v", shares)
	}
	if shares[0].Vehicle != "vehicle.2" || shares[0].Count != 2 {
		t.Errorf("top collider = %+v, want vehicle.2 x2", shares[0])
	}
	if shares[1].Vehicle != "vehicle.3" || shares[1].Count != 1 {
		t.Errorf("second collider = %+v", shares[1])
	}
	wantPct := 100 * 2.0 / 3.0
	if diff := shares[0].Percent - wantPct; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("percent = %v, want %v", shares[0].Percent, wantPct)
	}
}

func TestColliderSharesEmpty(t *testing.T) {
	if got := ColliderShares(nil); len(got) != 0 {
		t.Errorf("shares of nothing = %v", got)
	}
	noCollisions := []core.ExperimentResult{
		exp(17*des.Second, 0.2, des.Second, classify.Negligible, ""),
	}
	if got := ColliderShares(noCollisions); len(got) != 0 {
		t.Errorf("shares without collisions = %v", got)
	}
}

func TestColliderByStart(t *testing.T) {
	m := ColliderByStart(sampleExperiments())
	if m[17*des.Second] == "" && m[18*des.Second] == "" {
		t.Error("no colliders mapped")
	}
}

func TestWriteSeriesTable(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesTable(&sb, ByDuration(sampleExperiments())); err != nil {
		t.Fatalf("WriteSeriesTable: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Fig5-duration", "severe", "1.00", "10.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteColliderTable(t *testing.T) {
	var sb strings.Builder
	if err := WriteColliderTable(&sb, ColliderShares(sampleExperiments())); err != nil {
		t.Fatalf("WriteColliderTable: %v", err)
	}
	if !strings.Contains(sb.String(), "vehicle.2") {
		t.Errorf("collider table missing vehicle.2:\n%s", sb.String())
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	if err := SeriesCSV(&sb, ByValue(sampleExperiments())); err != nil {
		t.Fatalf("SeriesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,severe,benign,negligible,noneffective" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Errorf("csv lines = %d, want 3", len(lines))
	}
	if lines[2] != "2,2,1,0,0" {
		t.Errorf("PD=2 row = %q", lines[2])
	}
}

func TestSummaryLine(t *testing.T) {
	res := &core.CampaignResult{
		Experiments: sampleExperiments(),
		Golden:      core.GoldenResult{MaxDecel: 1.53},
	}
	for _, e := range res.Experiments {
		res.Counts.Add(e.Outcome)
	}
	line := SummaryLine(res)
	for _, want := range []string{"6 experiments", "severe=3", "1.53"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary %q missing %q", line, want)
		}
	}
}
