package analysis

import (
	"strings"
	"testing"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/sim/des"
)

// cellExp stamps a sample experiment with matrix cell identity.
func cellExp(scenarioLabel, attack string, o classify.Outcome) core.ExperimentResult {
	r := exp(17*des.Second, 1, des.Second, o, "")
	r.Spec.Scenario = scenarioLabel
	r.Spec.Kind = 0
	r.Spec.Attack = attack
	return r
}

func matrixExperiments() []core.ExperimentResult {
	return []core.ExperimentResult{
		cellExp("paper", "delay", classify.Severe),
		cellExp("paper", "delay", classify.Benign),
		cellExp("paper", "dos", classify.Severe),
		cellExp("p8", "delay", classify.Negligible),
		cellExp("p8", "dos", classify.NonEffective),
	}
}

func TestCellOfAndString(t *testing.T) {
	e := cellExp("p8", "delay", classify.Severe)
	c := CellOf(e)
	if c.String() != "p8/delay" {
		t.Errorf("Cell.String = %q, want p8/delay", c.String())
	}
	// Outside a matrix the scenario label is empty and the cell reads as
	// the bare attack label (legacy reports unchanged).
	legacy := exp(17*des.Second, 1, des.Second, classify.Severe, "")
	if got := CellOf(legacy).String(); got != "delay" {
		t.Errorf("legacy cell = %q, want delay", got)
	}
}

func TestGroupCellsPreservesGridOrder(t *testing.T) {
	groups := GroupCells(matrixExperiments())
	want := []string{"paper/delay", "paper/dos", "p8/delay", "p8/dos"}
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d", len(groups), len(want))
	}
	for i, g := range groups {
		if g.Cell.String() != want[i] {
			t.Errorf("group %d = %s, want %s", i, g.Cell, want[i])
		}
	}
	if groups[0].Counts != (classify.Counts{Severe: 1, Benign: 1}) {
		t.Errorf("paper/delay counts = %+v", groups[0].Counts)
	}
	if len(groups[0].Experiments) != 2 {
		t.Errorf("paper/delay has %d experiments, want 2", len(groups[0].Experiments))
	}
}

func TestCellCounts(t *testing.T) {
	lc := CellCounts(matrixExperiments())
	if lc.Len() != 4 {
		t.Fatalf("Len = %d, want 4", lc.Len())
	}
	if got := lc.Get("paper/dos"); got != (classify.Counts{Severe: 1}) {
		t.Errorf("paper/dos = %+v", got)
	}
}

func TestWriteCellTable(t *testing.T) {
	var sb strings.Builder
	if err := WriteCellTable(&sb, GroupCells(matrixExperiments())); err != nil {
		t.Fatalf("WriteCellTable: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"cell", "severe", "paper/delay", "p8/dos"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestCellFamiliesAndReport(t *testing.T) {
	fams := CellFamilies(GroupCells(matrixExperiments()))
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4", len(fams))
	}
	if fams[0].Cell.String() != "paper/delay" || fams[0].Counts.Total() != 2 {
		t.Errorf("family 0 = %s with %d experiments", fams[0].Cell, fams[0].Counts.Total())
	}
	var sb strings.Builder
	if err := WriteCellReport(&sb, fams[0]); err != nil {
		t.Fatalf("WriteCellReport: %v", err)
	}
	for _, want := range []string{"cell paper/delay", "Fig5-duration", "Fig6-pd-value", "Fig7-start-time", "collider attribution"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestMatrixCSVSchema pins the matrix schema: the legacy 10 columns
// with "scenario" spliced in second, and records that match the legacy
// encoding column-for-column.
func TestMatrixCSVSchema(t *testing.T) {
	h := MatrixCSVHeader()
	if len(h) != 11 || h[0] != "expNr" || h[1] != "scenario" || h[2] != "attack" {
		t.Fatalf("MatrixCSVHeader = %v", h)
	}
	e := cellExp("p8", "delay", classify.Severe)
	rec := MatrixCSVRecord(e)
	if len(rec) != 11 || rec[1] != "p8" {
		t.Fatalf("MatrixCSVRecord = %v", rec)
	}
	legacy := ExperimentCSVRecord(e)
	if rec[0] != legacy[0] {
		t.Errorf("expNr differs: %s vs %s", rec[0], legacy[0])
	}
	for i := 1; i < len(legacy); i++ {
		if rec[i+1] != legacy[i] {
			t.Errorf("column %d differs: %s vs %s", i, rec[i+1], legacy[i])
		}
	}
}

// TestAttackLabelInCSV: registry-only attacks carry their family name
// into the attack column; enum-backed specs keep the kind string.
func TestAttackLabelInCSV(t *testing.T) {
	named := cellExp("", "sybil", classify.Severe)
	if got := ExperimentCSVRecord(named)[1]; got != "sybil" {
		t.Errorf("named attack column = %q, want sybil", got)
	}
	legacy := exp(17*des.Second, 1, des.Second, classify.Severe, "")
	if got := ExperimentCSVRecord(legacy)[1]; got != "delay" {
		t.Errorf("legacy attack column = %q, want delay", got)
	}
}
