package analysis

import (
	"strings"
	"testing"
)

func TestWriteSeriesBars(t *testing.T) {
	s := ByStart(sampleExperiments())
	var sb strings.Builder
	if err := WriteSeriesBars(&sb, s, 40); err != nil {
		t.Fatalf("WriteSeriesBars: %v", err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + one line per bucket.
	if len(lines) != 1+len(s.Buckets) {
		t.Fatalf("lines = %d, want %d:\n%s", len(lines), 1+len(s.Buckets), out)
	}
	if !strings.Contains(lines[0], "severe") {
		t.Errorf("header missing legend: %q", lines[0])
	}
	// Severe glyphs appear for the bucket with severe outcomes.
	if !strings.Contains(out, "#") {
		t.Error("no severe glyphs rendered")
	}
	// Each bar line ends with the bucket total.
	if !strings.HasSuffix(strings.TrimSpace(lines[1]), "3") {
		t.Errorf("bucket total missing: %q", lines[1])
	}
}

func TestWriteSeriesBarsDefaults(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesBars(&sb, ByValue(sampleExperiments()), 0); err != nil {
		t.Fatalf("WriteSeriesBars: %v", err)
	}
	// Default width 50: a full bar line is at least 50+2 wide.
	for _, l := range strings.Split(sb.String(), "\n")[1:] {
		if l == "" {
			continue
		}
		if len(l) < 52 {
			t.Errorf("bar line too short for default width: %q", l)
		}
	}
}

func TestWriteSeriesBarsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesBars(&sb, Series{Name: "empty"}, 30); err != nil {
		t.Fatalf("WriteSeriesBars: %v", err)
	}
	if !strings.Contains(sb.String(), "no experiments") {
		t.Errorf("empty series rendering: %q", sb.String())
	}
}

func TestRenderBarNeverExceedsWidth(t *testing.T) {
	for _, b := range ByDuration(sampleExperiments()).Buckets {
		for _, width := range []int{1, 10, 50, 100} {
			bar := renderBar(b, width, 3)
			if len(bar) > width {
				t.Errorf("bar %q exceeds width %d", bar, width)
			}
		}
	}
}
