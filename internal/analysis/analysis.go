// Package analysis turns classified campaign results into the paper's
// evaluation artifacts: classification histograms by attack duration
// (Fig. 5), by propagation-delay value (Fig. 6) and by attack start time
// (Fig. 7), plus the collider-attribution shares of §IV-C1/C2.
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/sim/des"
)

// Bucket is one x-axis point of a classification figure.
type Bucket struct {
	// Key is the numeric x value (seconds for durations/starts, seconds
	// of PD for values).
	Key float64
	// Counts are the outcome tallies at this x value.
	Counts classify.Counts
}

// Series is an ordered set of buckets — one paper figure.
type Series struct {
	// Name labels the series ("Fig5-duration", ...).
	Name string
	// XLabel describes the key axis.
	XLabel string
	// Buckets are sorted by Key ascending.
	Buckets []Bucket
}

// group buckets experiments by a key extractor.
func group(name, xlabel string, exps []core.ExperimentResult, key func(core.ExperimentResult) float64) Series {
	m := make(map[float64]*classify.Counts)
	for _, e := range exps {
		k := key(e)
		c, ok := m[k]
		if !ok {
			c = &classify.Counts{}
			m[k] = c
		}
		c.Add(e.Outcome)
	}
	s := Series{Name: name, XLabel: xlabel, Buckets: make([]Bucket, 0, len(m))}
	for k, c := range m {
		s.Buckets = append(s.Buckets, Bucket{Key: k, Counts: *c})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].Key < s.Buckets[j].Key })
	return s
}

// ByDuration reproduces Fig. 5: classification per attack duration.
func ByDuration(exps []core.ExperimentResult) Series {
	return group("Fig5-duration", "attack duration (s)", exps,
		func(e core.ExperimentResult) float64 { return e.Spec.Duration.Seconds() })
}

// ByValue reproduces Fig. 6: classification per attack value (PD).
func ByValue(exps []core.ExperimentResult) Series {
	return group("Fig6-pd-value", "propagation delay (s)", exps,
		func(e core.ExperimentResult) float64 { return e.Spec.Value })
}

// ByStart reproduces Fig. 7: classification per attack start time.
func ByStart(exps []core.ExperimentResult) Series {
	return group("Fig7-start-time", "attack start time (s)", exps,
		func(e core.ExperimentResult) float64 { return e.Spec.Start.Seconds() })
}

// ColliderShare is one vehicle's share of the collision incidents.
type ColliderShare struct {
	// Vehicle is the collider's ID.
	Vehicle string
	// Count is the number of first collisions it caused.
	Count int
	// Percent is Count over all collision experiments.
	Percent float64
}

// ColliderShares computes the §IV-C collider attribution: which vehicle
// caused the first collision, across all experiments that collided.
func ColliderShares(exps []core.ExperimentResult) []ColliderShare {
	counts := make(map[string]int)
	total := 0
	for _, e := range exps {
		if e.Collider == "" {
			continue
		}
		counts[e.Collider]++
		total++
	}
	out := make([]ColliderShare, 0, len(counts))
	for v, c := range counts {
		share := ColliderShare{Vehicle: v, Count: c}
		if total > 0 {
			share.Percent = 100 * float64(c) / float64(total)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Vehicle < out[j].Vehicle
	})
	return out
}

// ColliderByStart maps each attack start time to the collider of that
// experiment (DoS analysis: "attack start time bands determine the
// collider"). Experiments without collisions map to "".
func ColliderByStart(exps []core.ExperimentResult) map[des.Time]string {
	out := make(map[des.Time]string, len(exps))
	for _, e := range exps {
		out[e.Spec.Start] = e.Collider
	}
	return out
}

// WriteSeriesTable renders a series as an aligned text table, one row per
// bucket, matching the stacked-bar figures of the paper.
func WriteSeriesTable(w io.Writer, s Series) error {
	if _, err := fmt.Fprintf(w, "%s  (x = %s)\n", s.Name, s.XLabel); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s %8s %8s %12s %14s %8s\n",
		"x", "severe", "benign", "negligible", "non-effective", "total"); err != nil {
		return err
	}
	for _, b := range s.Buckets {
		if _, err := fmt.Fprintf(w, "%12.2f %8d %8d %12d %14d %8d\n",
			b.Key, b.Counts.Severe, b.Counts.Benign, b.Counts.Negligible,
			b.Counts.NonEffective, b.Counts.Total()); err != nil {
			return err
		}
	}
	return nil
}

// WriteColliderTable renders the collider attribution table.
func WriteColliderTable(w io.Writer, shares []ColliderShare) error {
	if _, err := fmt.Fprintf(w, "%12s %8s %9s\n", "collider", "count", "percent"); err != nil {
		return err
	}
	for _, s := range shares {
		if _, err := fmt.Fprintf(w, "%12s %8d %8.1f%%\n", s.Vehicle, s.Count, s.Percent); err != nil {
			return err
		}
	}
	return nil
}

// SummaryLine renders the §IV-C1-style one-line campaign summary. When
// experiments were quarantined, the per-class failure tally is appended
// so an incomplete grid is visible at a glance.
func SummaryLine(res *core.CampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d experiments: %v (golden max decel %.2f m/s^2)",
		len(res.Experiments), res.Counts, res.Golden.MaxDecel)
	if n := res.FailureCounts.Total(); n > 0 {
		fmt.Fprintf(&b, "; %d quarantined: %v", n, res.FailureCounts)
	}
	return b.String()
}

// SeriesCSV writes a series as CSV (x,severe,benign,negligible,noneffective).
func SeriesCSV(w io.Writer, s Series) error {
	if _, err := fmt.Fprintln(w, "x,severe,benign,negligible,noneffective"); err != nil {
		return err
	}
	for _, b := range s.Buckets {
		if _, err := fmt.Fprintf(w, "%g,%d,%d,%d,%d\n",
			b.Key, b.Counts.Severe, b.Counts.Benign, b.Counts.Negligible,
			b.Counts.NonEffective); err != nil {
			return err
		}
	}
	return nil
}
