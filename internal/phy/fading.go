package phy

import (
	"math"

	"comfase/internal/sim/rng"
)

// Fading draws a per-frame stochastic channel gain, applied on top of
// the deterministic path loss. Veins models highway V2V fast fading with
// a Nakagami-m distribution; the paper's experiments run without fading
// (free-space only), so fading defaults to off.
type Fading interface {
	// GainDB returns a random power gain in dB (negative = fade) for
	// one transmitter-receiver frame at the given distance.
	GainDB(distance float64) float64
	// Name identifies the model in configs and logs.
	Name() string
}

// NakagamiFading is the Nakagami-m fading model used by Veins for
// vehicular channels: the received power is Gamma-distributed with shape
// m and the mean given by path loss. m = 1 is Rayleigh fading (worst
// case NLOS); m = 3 approximates near-LOS highway conditions; m -> inf
// approaches no fading.
type NakagamiFading struct {
	// M is the shape for short distances (Veins default 3.0 below
	// DistThreshold, 1.5 beyond — LOS degrades with range).
	M float64
	// MFar is the shape beyond DistThreshold (default 1.5).
	MFar float64
	// DistThreshold switches M to MFar (default 80 m).
	DistThreshold float64
	// Src draws the samples (required).
	Src *rng.Source
}

var _ Fading = (*NakagamiFading)(nil)

// NewNakagamiFading returns Veins' default highway parameterisation.
func NewNakagamiFading(src *rng.Source) *NakagamiFading {
	return &NakagamiFading{M: 3, MFar: 1.5, DistThreshold: 80, Src: src}
}

// Name implements Fading.
func (f *NakagamiFading) Name() string { return "nakagami" }

// GainDB implements Fading: it draws a unit-mean Gamma(m, 1/m) power
// factor and converts it to dB.
func (f *NakagamiFading) GainDB(distance float64) float64 {
	m := f.M
	if f.DistThreshold > 0 && distance > f.DistThreshold && f.MFar > 0 {
		m = f.MFar
	}
	if m <= 0 {
		m = 1
	}
	g := f.gamma(m, 1/m)
	if g <= 0 {
		g = 1e-12
	}
	return 10 * math.Log10(g)
}

// gamma draws a Gamma(shape, scale) sample via Marsaglia-Tsang, with the
// standard shape<1 boost.
func (f *NakagamiFading) gamma(shape, scale float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		u := f.Src.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		return f.gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := f.Src.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := f.Src.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		if u < 1-0.0331*x*x*x*x ||
			math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
