package phy

import (
	"errors"
	"math"
)

// ErrBadDistance is returned by path-loss computations for non-positive
// distances (the models are singular at d = 0).
var ErrBadDistance = errors.New("phy: distance must be positive")

// PathLoss computes the attenuation between two antennas. Implementations
// are the wirelessModel choices of ComFASE Step-1.
type PathLoss interface {
	// LossDB returns the path loss in dB (positive = attenuation) for a
	// transmitter-receiver distance in metres at a carrier frequency in
	// Hz. Distances are clamped to a minimum of 1 m, the usual far-field
	// guard in Veins' analogue models.
	LossDB(distance, freqHz float64) float64
	// Name identifies the model in configs and logs.
	Name() string
}

// FreeSpace is the free-space path-loss model ("free space path loss
// model" in the paper, used for its platooning experiments because the
// line of sight between platoon members is unobstructed):
//
//	L = 20 log10(4 * pi * d * f / c) + 10*(alpha-2) log10(d)
//
// with Alpha = 2 reducing to the classic Friis form.
type FreeSpace struct {
	// Alpha is the path-loss exponent; 2.0 is true free space. Veins'
	// SimplePathlossModel exposes the same knob.
	Alpha float64
}

var _ PathLoss = FreeSpace{}

// LossDB implements PathLoss.
func (m FreeSpace) LossDB(distance, freqHz float64) float64 {
	d := math.Max(distance, 1)
	alpha := m.Alpha
	if alpha <= 0 {
		alpha = 2
	}
	friis := 20 * math.Log10(4*math.Pi*d*freqHz/SpeedOfLight)
	return friis + 10*(alpha-2)*math.Log10(d)
}

// Name implements PathLoss.
func (m FreeSpace) Name() string { return "freespace" }

// TwoRayInterference is Veins' two-ray interference model (Sommer et al.),
// which captures the ground-reflection fading dips observed on flat
// highways. It needs the antenna heights above ground.
type TwoRayInterference struct {
	// HeightTx and HeightRx are antenna heights in metres (Veins default
	// for cars: 1.895 m).
	HeightTx float64
	HeightRx float64
	// EpsilonR is the relative permittivity of the road surface (Veins
	// default 1.02).
	EpsilonR float64
}

var _ PathLoss = TwoRayInterference{}

// LossDB implements PathLoss.
func (m TwoRayInterference) LossDB(distance, freqHz float64) float64 {
	d := math.Max(distance, 1)
	ht := m.HeightTx
	hr := m.HeightRx
	if ht <= 0 {
		ht = 1.895
	}
	if hr <= 0 {
		hr = 1.895
	}
	epsR := m.EpsilonR
	if epsR <= 0 {
		epsR = 1.02
	}
	lambda := SpeedOfLight / freqHz

	dLOS := math.Sqrt(d*d + (ht-hr)*(ht-hr))
	dRef := math.Sqrt(d*d + (ht+hr)*(ht+hr))
	sinTheta := (ht + hr) / dRef
	cosTheta := d / dRef

	// Reflection coefficient for vertical polarisation.
	gamma := (sinTheta - math.Sqrt(epsR-cosTheta*cosTheta)) /
		(sinTheta + math.Sqrt(epsR-cosTheta*cosTheta))

	phi := 2 * math.Pi * (dRef - dLOS) / lambda
	// Interference of direct and reflected ray.
	re := 1 + gamma*math.Cos(phi)
	im := gamma * math.Sin(phi)
	atten := math.Sqrt(re*re + im*im)
	if atten <= 0 {
		atten = 1e-12
	}
	friis := 20 * math.Log10(4*math.Pi*dLOS/lambda)
	return friis - 20*math.Log10(atten)
}

// Name implements PathLoss.
func (m TwoRayInterference) Name() string { return "tworay" }
