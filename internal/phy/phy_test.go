package phy

import (
	"math"
	"testing"
	"testing/quick"

	"comfase/internal/sim/des"
)

func TestUnitConversionsRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200)
		back := MilliwattToDBm(DBmToMilliwatt(dbm))
		return math.Abs(back-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if MilliwattToDBm(0) != math.Inf(-1) {
		t.Error("0 mW should be -inf dBm")
	}
	if DBmToMilliwatt(math.Inf(-1)) != 0 {
		t.Error("-inf dBm should be 0 mW")
	}
	if got := DBmToMilliwatt(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("0 dBm = %v mW, want 1", got)
	}
	if got := DBToLinear(3); math.Abs(got-1.9953) > 1e-3 {
		t.Errorf("3 dB = %v, want ~2", got)
	}
	if got := LinearToDB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("100x = %v dB, want 20", got)
	}
}

func TestFreeSpaceKnownValue(t *testing.T) {
	// FSPL at 100 m, 5.89 GHz: 20log10(4*pi*100*5.89e9/c) = ~87.8 dB.
	m := FreeSpace{}
	got := m.LossDB(100, 5.89e9)
	if math.Abs(got-87.84) > 0.1 {
		t.Errorf("FSPL(100m) = %v dB, want ~87.84", got)
	}
}

func TestFreeSpaceMonotoneInDistance(t *testing.T) {
	m := FreeSpace{}
	prev := math.Inf(-1)
	for d := 1.0; d <= 10000; d *= 1.7 {
		l := m.LossDB(d, 5.89e9)
		if l <= prev {
			t.Fatalf("free-space loss not monotone at %v m", d)
		}
		prev = l
	}
}

func TestFreeSpaceAlphaExponent(t *testing.T) {
	base := FreeSpace{Alpha: 2}
	steep := FreeSpace{Alpha: 3}
	// At 100 m the alpha-3 model loses an extra 10*log10(100) = 20 dB.
	diff := steep.LossDB(100, 5.89e9) - base.LossDB(100, 5.89e9)
	if math.Abs(diff-20) > 1e-9 {
		t.Errorf("alpha exponent delta = %v dB, want 20", diff)
	}
}

func TestFreeSpaceClampsBelowOneMetre(t *testing.T) {
	m := FreeSpace{}
	if m.LossDB(0.1, 5.89e9) != m.LossDB(1, 5.89e9) {
		t.Error("sub-metre distances should clamp to 1 m")
	}
}

func TestTwoRayApproachesFreeSpaceNearby(t *testing.T) {
	// At very short range the direct ray dominates: the models should be
	// within a few dB of each other.
	fs := FreeSpace{}
	tr := TwoRayInterference{}
	d := 10.0
	diff := math.Abs(fs.LossDB(d, 5.89e9) - tr.LossDB(d, 5.89e9))
	if diff > 6 {
		t.Errorf("two-ray deviates %v dB from free space at %v m", diff, d)
	}
}

func TestTwoRayShowsFadingStructure(t *testing.T) {
	// The hallmark of the two-ray model: non-monotone loss (fading dips)
	// at mid range, unlike free space.
	tr := TwoRayInterference{}
	monotone := true
	prev := tr.LossDB(10, 5.89e9)
	for d := 11.0; d < 500; d++ {
		l := tr.LossDB(d, 5.89e9)
		if l < prev {
			monotone = false
			break
		}
		prev = l
	}
	if monotone {
		t.Error("two-ray model shows no interference structure")
	}
}

func TestMCSValidAndString(t *testing.T) {
	if !MCSQpskR12.Valid() || MCS(0).Valid() || MCS(99).Valid() {
		t.Error("MCS validity wrong")
	}
	if MCSQpskR12.String() != "QPSK-1/2" {
		t.Errorf("String = %q", MCSQpskR12.String())
	}
	if MCS(99).String() == "" {
		t.Error("unknown MCS has empty String")
	}
	if MCSQpskR12.BitrateMbps() != 6 {
		t.Errorf("QPSK 1/2 bitrate = %v, want 6", MCSQpskR12.BitrateMbps())
	}
}

func TestFrameAirtime(t *testing.T) {
	// 200-bit payload (the paper's packetSize) at QPSK 1/2:
	// ceil((200+22)/48) = 5 symbols -> 40 + 5*8 = 80 us.
	got := MCSQpskR12.FrameAirtimeUs(200)
	if got != 80 {
		t.Errorf("airtime(200 bits) = %v us, want 80", got)
	}
	if MCSQpskR12.FrameAirtimeUs(0) != 40+8 {
		t.Errorf("empty frame = %v us, want preamble + 1 symbol", MCSQpskR12.FrameAirtimeUs(0))
	}
	if MCSQpskR12.FrameAirtimeUs(-5) != MCSQpskR12.FrameAirtimeUs(0) {
		t.Error("negative bits not clamped")
	}
}

func TestFrameAirtimeFasterMCSShorter(t *testing.T) {
	slow := MCSBpskR12.FrameAirtimeUs(800)
	fast := MCSQam64R34.FrameAirtimeUs(800)
	if fast >= slow {
		t.Errorf("64QAM airtime %v >= BPSK airtime %v", fast, slow)
	}
}

func TestBitErrorRateMonotoneInSNR(t *testing.T) {
	for mcs := MCSBpskR12; mcs <= MCSQam64R34; mcs++ {
		prev := 1.0
		for snr := -10.0; snr <= 30; snr += 0.5 {
			ber := mcs.BitErrorRate(snr)
			if ber < 0 || ber > 0.5 {
				t.Fatalf("%v BER(%v) = %v out of range", mcs, snr, ber)
			}
			if ber > prev+1e-12 {
				t.Fatalf("%v BER not nonincreasing at %v dB", mcs, snr)
			}
			prev = ber
		}
	}
}

func TestBitErrorRateOrderingAcrossMCS(t *testing.T) {
	// At a fixed mid-range SNR, higher-order modulation must have a
	// higher error rate.
	snr := 8.0
	if MCSQpskR12.BitErrorRate(snr) >= MCSQam64R34.BitErrorRate(snr) {
		t.Error("QPSK 1/2 not more robust than 64QAM 3/4")
	}
}

func TestPacketErrorRate(t *testing.T) {
	// High SNR: essentially error-free for beacon-sized frames.
	if per := MCSQpskR12.PacketErrorRate(30, 400); per > 1e-6 {
		t.Errorf("PER at 30 dB = %v, want ~0", per)
	}
	// Very low SNR: certain loss.
	if per := MCSQpskR12.PacketErrorRate(-10, 400); per < 0.999 {
		t.Errorf("PER at -10 dB = %v, want ~1", per)
	}
	if MCSQpskR12.PacketErrorRate(10, 0) != 0 {
		t.Error("zero-length packet should have zero PER")
	}
	// PER grows with frame length.
	if MCSQpskR12.PacketErrorRate(7, 100) >= MCSQpskR12.PacketErrorRate(7, 10000) {
		t.Error("PER not increasing in frame length")
	}
}

func TestSpeedOfLightDelay(t *testing.T) {
	d := SpeedOfLightDelay{}
	// 300 m -> ~1.0007 us.
	got := d.Delay(300)
	want := des.FromSeconds(300 / SpeedOfLight)
	if got != want {
		t.Errorf("Delay(300) = %v, want %v", got, want)
	}
	if d.Delay(-5) != 0 {
		t.Error("negative distance should clamp to zero delay")
	}
	// Platoon-range delay is sub-microsecond.
	if d.Delay(50) > des.Microsecond {
		t.Errorf("Delay(50 m) = %v, want < 1 us", d.Delay(50))
	}
}

func TestFixedDelayIgnoresDistance(t *testing.T) {
	fd := FixedDelay{D: 2 * des.Second}
	if fd.Delay(1) != 2*des.Second || fd.Delay(1e6) != 2*des.Second {
		t.Error("FixedDelay not constant")
	}
}

func TestDefaultChannelConfigValid(t *testing.T) {
	cfg := DefaultChannelConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.MCS != MCSQpskR12 {
		t.Errorf("default MCS = %v, want QPSK 1/2", cfg.MCS)
	}
}

func TestChannelConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ChannelConfig)
	}{
		{name: "nil pathloss", mutate: func(c *ChannelConfig) { c.PathLoss = nil }},
		{name: "nil delay", mutate: func(c *ChannelConfig) { c.Delay = nil }},
		{name: "zero freq", mutate: func(c *ChannelConfig) { c.FreqHz = 0 }},
		{name: "bad mcs", mutate: func(c *ChannelConfig) { c.MCS = 0 }},
		{name: "bad decider", mutate: func(c *ChannelConfig) { c.Decider = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultChannelConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestRxPowerAtPlatoonRangeDecodable(t *testing.T) {
	cfg := DefaultChannelConfig()
	// At 10 m (platoon spacing) the link budget is enormous.
	rx := cfg.RxPowerDBm(10)
	if rx < cfg.SensitivityDBm+40 {
		t.Errorf("rx power at 10 m = %v dBm, expected far above sensitivity", rx)
	}
	if snr := cfg.SNRdB(rx); snr < MCSQpskR12.MinSNRdB() {
		t.Errorf("SNR at 10 m = %v dB, expected decodable", snr)
	}
}

func TestSINRWithInterference(t *testing.T) {
	cfg := DefaultChannelConfig()
	rx := -60.0
	// No interference: SINR == SNR.
	if got, want := cfg.SINRdB(rx, math.Inf(-1)), cfg.SNRdB(rx); math.Abs(got-want) > 1e-9 {
		t.Errorf("SINR without interference = %v, want %v", got, want)
	}
	// Strong co-channel interferer dominates noise.
	withInt := cfg.SINRdB(rx, -70)
	if math.Abs(withInt-10) > 0.1 {
		t.Errorf("SINR with -70 dBm interferer = %v, want ~10 dB", withInt)
	}
	if withInt >= cfg.SNRdB(rx) {
		t.Error("interference did not reduce SINR")
	}
}
