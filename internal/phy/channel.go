package phy

import (
	"errors"

	"comfase/internal/sim/des"
)

// DelayModel computes the propagation delay of a frame as a function of
// transmitter-receiver distance. This is the Veins channel parameter
// (propagationDelay) that ComFASE's delay and DoS attack models rewrite
// (Table I: target parameter "Propagation delay (PD)").
type DelayModel interface {
	// Delay returns the propagation delay for the given distance in
	// metres.
	Delay(distance float64) des.Time
}

// SpeedOfLightDelay is the physical default: distance / c. For platoon
// ranges (< 100 m) this is a few hundred nanoseconds.
type SpeedOfLightDelay struct{}

var _ DelayModel = SpeedOfLightDelay{}

// Delay implements DelayModel.
func (SpeedOfLightDelay) Delay(distance float64) des.Time {
	if distance < 0 {
		distance = 0
	}
	return des.FromSeconds(distance / SpeedOfLight)
}

// FixedDelay returns a constant propagation delay regardless of distance.
// It is the building block the attack models use: ComFASE overrides the
// channel's PD with the attackValue while an attack is active.
type FixedDelay struct {
	// D is the constant delay.
	D des.Time
}

var _ DelayModel = FixedDelay{}

// Delay implements DelayModel.
func (f FixedDelay) Delay(float64) des.Time { return f.D }

// DeciderMode selects how the receiver judges frames.
type DeciderMode int

const (
	// DeciderThreshold accepts every frame whose SINR clears the MCS
	// threshold — fully deterministic, used by default for campaign
	// reproducibility.
	DeciderThreshold DeciderMode = iota + 1
	// DeciderProbabilistic draws a Bernoulli success from the SINR-based
	// packet error rate, like Veins' NIST decider.
	DeciderProbabilistic
)

// ChannelConfig bundles the analog-channel parameters of the CommModel of
// ComFASE Step-1 plus the receiver characteristics.
type ChannelConfig struct {
	// PathLoss is the wirelessModel (free-space in the paper's
	// experiments).
	PathLoss PathLoss
	// Delay is the propagation-delay model (speed of light by default).
	Delay DelayModel
	// FreqHz is the carrier frequency (5.89 GHz CCH by default).
	FreqHz float64
	// TxPowerDBm is the transmit power (Veins default 20 mW = 13 dBm;
	// we use 23 dBm, a common DSRC setting).
	TxPowerDBm float64
	// NoiseFloorDBm is thermal noise plus receiver noise figure over the
	// 10 MHz channel (about -104 dBm + 6 dB NF = -98 dBm).
	NoiseFloorDBm float64
	// SensitivityDBm is the minimum detectable signal (Veins default
	// -89 dBm).
	SensitivityDBm float64
	// CCAThresholdDBm is the carrier-sense busy threshold (-85 dBm).
	CCAThresholdDBm float64
	// MCS is the modulation-and-coding scheme for all frames.
	MCS MCS
	// Decider selects deterministic or probabilistic reception.
	Decider DeciderMode
	// Fading, when non-nil, adds per-frame stochastic fading on top of
	// the path loss (e.g. NakagamiFading). The paper's experiments run
	// without it.
	Fading Fading
}

// DefaultChannelConfig returns the configuration used by the paper's
// experiments: free-space path loss, speed-of-light propagation delay,
// CCH at 5.89 GHz, QPSK 1/2 (6 Mbit/s), deterministic decider.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		PathLoss:        FreeSpace{Alpha: 2},
		Delay:           SpeedOfLightDelay{},
		FreqHz:          5.89e9,
		TxPowerDBm:      23,
		NoiseFloorDBm:   -98,
		SensitivityDBm:  -89,
		CCAThresholdDBm: -85,
		MCS:             MCSQpskR12,
		Decider:         DeciderThreshold,
	}
}

// Validate reports the first configuration problem, or nil.
func (c ChannelConfig) Validate() error {
	switch {
	case c.PathLoss == nil:
		return errors.New("phy: PathLoss is required")
	case c.Delay == nil:
		return errors.New("phy: Delay model is required")
	case c.FreqHz <= 0:
		return errors.New("phy: FreqHz must be positive")
	case !c.MCS.Valid():
		return errors.New("phy: invalid MCS")
	case c.Decider != DeciderThreshold && c.Decider != DeciderProbabilistic:
		return errors.New("phy: invalid decider mode")
	}
	return nil
}

// RxPowerDBm computes the received power over the configured path loss.
func (c ChannelConfig) RxPowerDBm(distance float64) float64 {
	return c.TxPowerDBm - c.PathLoss.LossDB(distance, c.FreqHz)
}

// SNRdB computes the signal-to-noise ratio for a received power.
func (c ChannelConfig) SNRdB(rxPowerDBm float64) float64 {
	return rxPowerDBm - c.NoiseFloorDBm
}

// SINRdB computes the signal-to-interference-plus-noise ratio given the
// aggregate interference power in dBm (use math.Inf(-1) for none).
func (c ChannelConfig) SINRdB(rxPowerDBm, interferenceDBm float64) float64 {
	return c.SINRdBWithNoiseMw(rxPowerDBm, interferenceDBm, DBmToMilliwatt(c.NoiseFloorDBm))
}

// SINRdBWithNoiseMw is SINRdB with the noise floor pre-converted to
// milliwatts. The conversion is a pure function of the configuration, so
// callers on the hot path may compute it once per experiment; passing
// noiseMw == DBmToMilliwatt(c.NoiseFloorDBm) is bit-identical to SINRdB.
func (c ChannelConfig) SINRdBWithNoiseMw(rxPowerDBm, interferenceDBm, noiseMw float64) float64 {
	intMw := DBmToMilliwatt(interferenceDBm)
	return rxPowerDBm - MilliwattToDBm(noiseMw+intMw)
}
