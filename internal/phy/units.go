// Package phy implements the IEEE 802.11p physical layer of the Veins
// substitute: path-loss models (free-space and two-ray interference, the
// two wirelessModel options of ComFASE Step-1), thermal noise, an
// SINR-based frame decider with per-MCS bit-error rates, and the
// propagation-delay model — the exact channel parameter ComFASE's delay
// and DoS attacks manipulate.
package phy

import "math"

// SpeedOfLight is the propagation speed used for the default propagation
// delay model, in m/s.
const SpeedOfLight = 299792458.0

// DBmToMilliwatt converts a power level from dBm to milliwatts.
func DBmToMilliwatt(dbm float64) float64 {
	return math.Pow(10, dbm/10)
}

// MilliwattToDBm converts a power level from milliwatts to dBm. Zero or
// negative power maps to -inf dBm.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DBToLinear converts a ratio from decibels to linear scale.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear ratio to decibels.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}
