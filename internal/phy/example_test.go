package phy_test

import (
	"fmt"

	"comfase/internal/phy"
)

// Link-budget arithmetic for the paper's channel: free-space path loss
// at DSRC frequency, receive power, SNR, and the decodability of the
// 6 Mbit/s beacon rate.
func ExampleChannelConfig() {
	cfg := phy.DefaultChannelConfig()

	rx := cfg.RxPowerDBm(10) // platoon-spacing distance
	snr := cfg.SNRdB(rx)
	fmt.Printf("rx at 10 m: %.1f dBm, SNR %.1f dB\n", rx, snr)
	fmt.Println("decodable:", snr >= cfg.MCS.MinSNRdB())
	// Output:
	// rx at 10 m: -44.9 dBm, SNR 53.1 dB
	// decodable: true
}

// The paper's 200-bit beacons occupy the channel for 80 us at QPSK 1/2.
func ExampleMCS_FrameAirtimeUs() {
	fmt.Println(phy.MCSQpskR12.FrameAirtimeUs(200), "us")
	fmt.Println(phy.MCSQpskR12.BitrateMbps(), "Mbit/s")
	// Output:
	// 80 us
	// 6 Mbit/s
}

// The propagation delay the ComFASE attacks rewrite is distance / c by
// default — sub-microsecond at platoon range.
func ExampleSpeedOfLightDelay() {
	var d phy.SpeedOfLightDelay
	fmt.Println(d.Delay(10) < 100) // nanoseconds
	fmt.Println(phy.FixedDelay{D: 2e9}.Delay(10))
	// Output:
	// true
	// 2s
}
