package phy

import (
	"fmt"
	"math"
)

// MCS identifies an 802.11p modulation-and-coding scheme on the 10 MHz
// DSRC channel.
type MCS int

// The eight 802.11p rates. The default beacon rate in Veins is QPSK 1/2
// (6 Mbit/s).
const (
	MCSBpskR12  MCS = iota + 1 // BPSK 1/2, 3 Mbit/s
	MCSBpskR34                 // BPSK 3/4, 4.5 Mbit/s
	MCSQpskR12                 // QPSK 1/2, 6 Mbit/s
	MCSQpskR34                 // QPSK 3/4, 9 Mbit/s
	MCSQam16R12                // 16-QAM 1/2, 12 Mbit/s
	MCSQam16R34                // 16-QAM 3/4, 18 Mbit/s
	MCSQam64R23                // 64-QAM 2/3, 24 Mbit/s
	MCSQam64R34                // 64-QAM 3/4, 27 Mbit/s
)

// mcsInfo carries the static parameters of one scheme.
type mcsInfo struct {
	name        string
	bitrate     float64 // Mbit/s on a 10 MHz channel
	bitsPerSym  int     // data bits per OFDM symbol
	minSNRdB    float64 // decoding threshold used by the threshold decider
	constelBits int     // bits per modulation symbol (1 BPSK, 2 QPSK, ...)
}

var mcsTable = map[MCS]mcsInfo{
	MCSBpskR12:  {name: "BPSK-1/2", bitrate: 3, bitsPerSym: 24, minSNRdB: 1.0, constelBits: 1},
	MCSBpskR34:  {name: "BPSK-3/4", bitrate: 4.5, bitsPerSym: 36, minSNRdB: 2.0, constelBits: 1},
	MCSQpskR12:  {name: "QPSK-1/2", bitrate: 6, bitsPerSym: 48, minSNRdB: 3.0, constelBits: 2},
	MCSQpskR34:  {name: "QPSK-3/4", bitrate: 9, bitsPerSym: 72, minSNRdB: 5.0, constelBits: 2},
	MCSQam16R12: {name: "16QAM-1/2", bitrate: 12, bitsPerSym: 96, minSNRdB: 8.0, constelBits: 4},
	MCSQam16R34: {name: "16QAM-3/4", bitrate: 18, bitsPerSym: 144, minSNRdB: 11.0, constelBits: 4},
	MCSQam64R23: {name: "64QAM-2/3", bitrate: 24, bitsPerSym: 192, minSNRdB: 15.0, constelBits: 6},
	MCSQam64R34: {name: "64QAM-3/4", bitrate: 27, bitsPerSym: 216, minSNRdB: 17.0, constelBits: 6},
}

// Valid reports whether the MCS is one of the defined schemes.
func (m MCS) Valid() bool {
	_, ok := mcsTable[m]
	return ok
}

// String implements fmt.Stringer.
func (m MCS) String() string {
	if info, ok := mcsTable[m]; ok {
		return info.name
	}
	return fmt.Sprintf("MCS(%d)", int(m))
}

// BitrateMbps returns the data rate in Mbit/s (10 MHz channel).
func (m MCS) BitrateMbps() float64 {
	if info, ok := mcsTable[m]; ok {
		return info.bitrate
	}
	return mcsTable[MCSQpskR12].bitrate
}

// MinSNRdB returns the decoding SNR threshold used by the deterministic
// decider mode.
func (m MCS) MinSNRdB() float64 {
	if info, ok := mcsTable[m]; ok {
		return info.minSNRdB
	}
	return mcsTable[MCSQpskR12].minSNRdB
}

// 802.11p OFDM timing on a 10 MHz channel: 8 us per symbol, 40 us
// preamble + signal field.
const (
	symbolDurationUs   = 8.0
	preambleDurationUs = 40.0
	// serviceAndTailBits are the PLCP SERVICE (16) + tail (6) bits added
	// to the PSDU before symbol packing.
	serviceAndTailBits = 22
)

// FrameAirtimeUs returns the on-air duration of a frame with the given
// PSDU size in bits, in microseconds.
func (m MCS) FrameAirtimeUs(psduBits int) float64 {
	info, ok := mcsTable[m]
	if !ok {
		info = mcsTable[MCSQpskR12]
	}
	if psduBits < 0 {
		psduBits = 0
	}
	symbols := math.Ceil(float64(psduBits+serviceAndTailBits) / float64(info.bitsPerSym))
	return preambleDurationUs + symbols*symbolDurationUs
}

// BitErrorRate returns the post-coding bit error probability at the given
// SNR (dB) for this scheme. It uses the standard uncoded AWGN expressions
// (BPSK/QPSK/M-QAM over erfc) with a coding gain per code rate — the same
// family of curves Veins' NIST decider tabulates. The approximation only
// needs to be faithful near the decoding cliff, which it is.
func (m MCS) BitErrorRate(snrDB float64) float64 {
	info, ok := mcsTable[m]
	if !ok {
		info = mcsTable[MCSQpskR12]
	}
	// Coding gain: rate-1/2 convolutional ~5.1 dB, 2/3 ~4.2 dB, 3/4 ~3.8 dB.
	var gain float64
	switch info.bitrate {
	case 3, 6, 12:
		gain = 5.1
	case 24:
		gain = 4.2
	default:
		gain = 3.8
	}
	snr := DBToLinear(snrDB + gain)
	var ber float64
	switch info.constelBits {
	case 1: // BPSK
		ber = 0.5 * math.Erfc(math.Sqrt(snr))
	case 2: // QPSK: same per-bit error as BPSK at equal Eb/N0; SNR here is per-symbol
		ber = 0.5 * math.Erfc(math.Sqrt(snr/2))
	case 4: // 16-QAM
		ber = (3.0 / 8.0) * math.Erfc(math.Sqrt(snr/10))
	default: // 64-QAM
		ber = (7.0 / 24.0) * math.Erfc(math.Sqrt(snr/42))
	}
	return math.Min(math.Max(ber, 0), 0.5)
}

// PacketErrorRate returns the probability that a frame of psduBits bits
// has at least one residual bit error at the given SNR.
func (m MCS) PacketErrorRate(snrDB float64, psduBits int) float64 {
	if psduBits <= 0 {
		return 0
	}
	ber := m.BitErrorRate(snrDB)
	return 1 - math.Pow(1-ber, float64(psduBits))
}
