package phy

import (
	"math"
	"testing"

	"comfase/internal/sim/rng"
)

func TestNakagamiUnitMeanPower(t *testing.T) {
	f := NewNakagamiFading(rng.New(1, "fading"))
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += DBToLinear(f.GainDB(10)) // near range: m = 3
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("near-range fading mean power = %v, want ~1", mean)
	}
}

func TestNakagamiFarRangeMoreVariable(t *testing.T) {
	f := NewNakagamiFading(rng.New(1, "fading"))
	variance := func(dist float64) float64 {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := DBToLinear(f.GainDB(dist))
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	near := variance(10) // m = 3: Var = 1/3
	far := variance(200) // m = 1.5: Var = 2/3
	if far <= near {
		t.Errorf("far-range variance %v not above near-range %v", far, near)
	}
	if math.Abs(near-1.0/3.0) > 0.05 {
		t.Errorf("m=3 variance = %v, want ~1/3", near)
	}
	if math.Abs(far-2.0/3.0) > 0.08 {
		t.Errorf("m=1.5 variance = %v, want ~2/3", far)
	}
}

func TestNakagamiDegenerateShapes(t *testing.T) {
	f := &NakagamiFading{M: 0, Src: rng.New(1, "x")}
	for i := 0; i < 100; i++ {
		g := f.GainDB(10)
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("invalid gain %v for degenerate shape", g)
		}
	}
	sub := &NakagamiFading{M: 0.5, Src: rng.New(1, "y")}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += DBToLinear(sub.GainDB(10))
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("m=0.5 mean power = %v, want ~1 (shape<1 boost path)", mean)
	}
}

func TestNakagamiName(t *testing.T) {
	if NewNakagamiFading(rng.New(1, "z")).Name() != "nakagami" {
		t.Error("Name wrong")
	}
}

func TestChannelConfigValidWithFading(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.Fading = NewNakagamiFading(rng.New(1, "f"))
	if err := cfg.Validate(); err != nil {
		t.Errorf("config with fading invalid: %v", err)
	}
}
