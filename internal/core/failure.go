package core

import (
	"context"
	"errors"
	"fmt"

	"comfase/internal/invariant"
	"comfase/internal/sim/des"
)

// FailureClass is the error taxonomy of the failure-containment layer: a
// campaign experiment that cannot produce a classified result is binned
// into exactly one class, so "what killed my 11k-run campaign" is
// answerable from counts instead of log archaeology.
type FailureClass int

// The failure classes, ordered roughly by diagnostic severity.
const (
	// FailError is the residual class: a regular experiment error that
	// matches none of the specific classes (bad model config, sink I/O).
	FailError FailureClass = iota
	// FailPanic is a Go panic recovered inside the experiment boundary.
	FailPanic
	// FailTimeout is a per-experiment wall-clock watchdog expiry.
	FailTimeout
	// FailBudget is the deterministic kernel event-budget watchdog.
	FailBudget
	// FailInvariant is a runtime invariant violation (NaN/Inf state,
	// position reversal, unhandled overlap) from internal/invariant.
	FailInvariant

	numFailureClasses
)

// String implements fmt.Stringer; the strings are the quarantine-file
// vocabulary and must stay stable.
func (c FailureClass) String() string {
	switch c {
	case FailError:
		return "error"
	case FailPanic:
		return "panic"
	case FailTimeout:
		return "timeout"
	case FailBudget:
		return "event-budget"
	case FailInvariant:
		return "invariant"
	default:
		return fmt.Sprintf("FailureClass(%d)", int(c))
	}
}

// ParseFailureClass inverts String.
func ParseFailureClass(s string) (FailureClass, error) {
	for c := FailError; c < numFailureClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("core: unknown failure class %q", s)
}

// ClassifyFailure maps an experiment error to its FailureClass. Context
// cancellation from the campaign itself is not a failure and never
// reaches this function; a per-experiment deadline does, as
// context.DeadlineExceeded.
func ClassifyFailure(err error) FailureClass {
	switch {
	case isPanicError(err):
		return FailPanic
	case errors.Is(err, des.ErrBudgetExceeded):
		return FailBudget
	case errors.Is(err, invariant.ErrInvariant):
		return FailInvariant
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	default:
		return FailError
	}
}

// PanicError is a recovered panic from inside the experiment execution
// boundary, converted to an error so one crashing experiment cannot take
// down the whole campaign process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("core: experiment panicked: %v", p.Value)
}

func isPanicError(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// FailureCounts tallies quarantined experiments by class — the failure
// mirror of classify.Counts.
type FailureCounts struct {
	Error     int
	Panic     int
	Timeout   int
	Budget    int
	Invariant int
}

// Add increments the class tally.
func (c *FailureCounts) Add(class FailureClass) {
	switch class {
	case FailPanic:
		c.Panic++
	case FailTimeout:
		c.Timeout++
	case FailBudget:
		c.Budget++
	case FailInvariant:
		c.Invariant++
	default:
		c.Error++
	}
}

// Total is the number of counted failures.
func (c FailureCounts) Total() int {
	return c.Error + c.Panic + c.Timeout + c.Budget + c.Invariant
}

// String renders the non-zero tallies.
func (c FailureCounts) String() string {
	return fmt.Sprintf("panic=%d timeout=%d event-budget=%d invariant=%d error=%d",
		c.Panic, c.Timeout, c.Budget, c.Invariant, c.Error)
}

// ExperimentFailure is the quarantine record of one experiment that
// persistently failed (all retries exhausted). It flattens the spec to
// the same lossless-enough projection the CSV/JSONL sinks use —
// ExperimentSpec itself can carry a non-serialisable ModelFactory — so
// the record round-trips through quarantine.jsonl.
type ExperimentFailure struct {
	Nr        int      `json:"expNr"`
	Attack    string   `json:"attack"`
	Value     float64  `json:"value"`
	StartS    float64  `json:"startS"`
	DurationS float64  `json:"durationS"`
	Targets   []string `json:"targets,omitempty"`
	// Class is the FailureClass string ("panic", "timeout", ...).
	Class string `json:"class"`
	// Error is the final attempt's error text.
	Error string `json:"error"`
	// Stack is the recovered panic stack, when Class is "panic".
	Stack string `json:"stack,omitempty"`
	// Attempts is how many executions were tried (1 = no retry).
	Attempts int `json:"attempts"`
}

// NewExperimentFailure builds the quarantine record for spec's final
// error after the given number of attempts.
func NewExperimentFailure(spec ExperimentSpec, err error, attempts int) ExperimentFailure {
	f := ExperimentFailure{
		Nr:        spec.Nr,
		Attack:    spec.Kind.String(),
		Value:     spec.Value,
		StartS:    spec.Start.Seconds(),
		DurationS: spec.Duration.Seconds(),
		Targets:   spec.Targets,
		Class:     ClassifyFailure(err).String(),
		Error:     err.Error(),
		Attempts:  attempts,
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		f.Stack = string(pe.Stack)
	}
	return f
}
