package core

import (
	"sync/atomic"
	"testing"

	"comfase/internal/sim/des"
)

func smallGrid() CampaignSetup {
	return CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.4, 2.0},
		Starts:    []des.Time{17 * des.Second, 19800 * des.Millisecond, 21 * des.Second},
		Durations: []des.Time{2 * des.Second, 10 * des.Second},
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("24 experiments in -short mode")
	}
	seq, err := paperEngine(t).RunCampaign(smallGrid(), nil)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	par, err := paperEngine(t).RunCampaignParallel(smallGrid(), 4, nil)
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	if seq.Counts != par.Counts {
		t.Fatalf("counts differ: %v vs %v", seq.Counts, par.Counts)
	}
	for i := range seq.Experiments {
		a, b := seq.Experiments[i], par.Experiments[i]
		if a.Outcome != b.Outcome || a.MaxDecel != b.MaxDecel || a.Collider != b.Collider {
			t.Errorf("experiment %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestParallelProgressCoversAll(t *testing.T) {
	if testing.Short() {
		t.Skip("12 experiments in -short mode")
	}
	var calls atomic.Int64
	var sawTotal atomic.Int64
	_, err := paperEngine(t).RunCampaignParallel(smallGrid(), 3, func(done, total int) {
		calls.Add(1)
		sawTotal.Store(int64(total))
	})
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	if calls.Load() != 12 || sawTotal.Load() != 12 {
		t.Errorf("progress calls = %d (total %d), want 12", calls.Load(), sawTotal.Load())
	}
}

func TestParallelRejectsInvalidSetup(t *testing.T) {
	if _, err := paperEngine(t).RunCampaignParallel(CampaignSetup{}, 2, nil); err == nil {
		t.Error("invalid setup accepted")
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	setup := CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{2.0},
		Starts:    []des.Time{18 * des.Second},
		Durations: []des.Time{10 * des.Second},
	}
	res, err := paperEngine(t).RunCampaignParallel(setup, 1, nil)
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	if res.Counts.Total() != 1 {
		t.Errorf("total = %d", res.Counts.Total())
	}
}
