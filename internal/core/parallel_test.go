package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"comfase/internal/sim/des"
)

func smallGrid() CampaignSetup {
	return CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.4, 2.0},
		Starts:    []des.Time{17 * des.Second, 19800 * des.Millisecond, 21 * des.Second},
		Durations: []des.Time{2 * des.Second, 10 * des.Second},
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("24 experiments in -short mode")
	}
	seq, err := paperEngine(t).RunCampaign(smallGrid(), nil)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	par, err := paperEngine(t).RunCampaignParallel(smallGrid(), 4, nil)
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	if seq.Counts != par.Counts {
		t.Fatalf("counts differ: %v vs %v", seq.Counts, par.Counts)
	}
	for i := range seq.Experiments {
		a, b := seq.Experiments[i], par.Experiments[i]
		if a.Outcome != b.Outcome || a.MaxDecel != b.MaxDecel || a.Collider != b.Collider {
			t.Errorf("experiment %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestParallelProgressCoversAll(t *testing.T) {
	if testing.Short() {
		t.Skip("12 experiments in -short mode")
	}
	var calls atomic.Int64
	var sawTotal atomic.Int64
	_, err := paperEngine(t).RunCampaignParallel(smallGrid(), 3, func(done, total int) {
		calls.Add(1)
		sawTotal.Store(int64(total))
	})
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	if calls.Load() != 12 || sawTotal.Load() != 12 {
		t.Errorf("progress calls = %d (total %d), want 12", calls.Load(), sawTotal.Load())
	}
}

func TestParallelRejectsInvalidSetup(t *testing.T) {
	if _, err := paperEngine(t).RunCampaignParallel(CampaignSetup{}, 2, nil); err == nil {
		t.Error("invalid setup accepted")
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	setup := CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{2.0},
		Starts:    []des.Time{18 * des.Second},
		Durations: []des.Time{10 * des.Second},
	}
	res, err := paperEngine(t).RunCampaignParallel(setup, 1, nil)
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	if res.Counts.Total() != 1 {
		t.Errorf("total = %d", res.Counts.Total())
	}
}

// TestParallelFailFast pins the early-abort regression: after the first
// experiment error, remaining queued jobs must NOT be executed to
// completion (the old implementation drained the whole grid).
func TestParallelFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	var started atomic.Int64
	setup := smallGrid() // 12 experiments
	setup.Factory = func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error) {
		if started.Add(1) == 1 {
			return nil, errors.New("injected model failure")
		}
		return NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
	}
	_, err := paperEngine(t).RunCampaignParallel(setup, 2, nil)
	if err == nil {
		t.Fatal("campaign with failing experiment succeeded")
	}
	if !strings.Contains(err.Error(), "injected model failure") {
		t.Fatalf("error = %v, want the injected failure", err)
	}
	// Fail-fast bound: the failing job, one in-flight job per worker and
	// a small dispatch race window — far below the 12-point grid.
	if got := started.Load(); got > 6 {
		t.Errorf("%d experiments started after first error, want <= 6 (grid 12)", got)
	}
}

// TestParallelProgressMonotonic guarantees the Progress callback sees
// strictly increasing done counts (completion order, not grid order).
func TestParallelProgressMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("12 experiments in -short mode")
	}
	var mu sync.Mutex
	var dones []int
	_, err := paperEngine(t).RunCampaignParallel(smallGrid(), 4, func(done, total int) {
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
		if total != 12 {
			t.Errorf("total = %d, want 12", total)
		}
	})
	if err != nil {
		t.Fatalf("RunCampaignParallel: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != 12 {
		t.Fatalf("progress called %d times, want 12", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonically increasing", dones)
		}
	}
}

// TestParallelCtxCancelAborts verifies cancellation stops the campaign
// promptly and surfaces the context error.
func TestParallelCtxCancelAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	setup := smallGrid()
	setup.Factory = func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error) {
		if started.Add(1) == 1 {
			cancel()
		}
		return NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
	}
	_, err := paperEngine(t).RunCampaignParallelCtx(ctx, setup, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCampaignParallelCtx = %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 6 {
		t.Errorf("%d experiments started after cancel, want <= 6", got)
	}
}
