// Package core is ComFASE itself: the communication fault and attack
// simulation engine. It provides the attack models of Table I (delay,
// denial-of-service) plus the extension models the paper's future-work
// section anticipates (packet loss/jamming, falsification, replay), the
// campaign configuration of Algorithm 1 Step-1, and the Engine that
// executes golden runs (Step-2), attack injection experiments with the
// three-phase SimUntil flow (Step-3) and result classification (Step-4).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/nic"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// AttackModel is a ComFASE attack/fault model. Most models are
// nic.Interceptors (they rewrite frame deliveries while installed on the
// Air — the engine's CommModelEditor step); physical-layer models
// implement Installer instead. The engine applies whichever mechanism
// the concrete model provides.
type AttackModel interface {
	// Name identifies the model ("delay", "dos", ...).
	Name() string
	// Targets returns the attacked vehicle IDs (sorted).
	Targets() []string
}

// ChainableModel marks attack models whose interception behaviour is a
// pure function of the intercepted frame (time, src, dst, payload): no
// internal mutable state, no random stream, no dependence on the
// experiment number. Two instances built from specs that differ only in
// attack duration then behave identically over the shared part of the
// attacked interval, which lets the checkpoint trie reuse a mid-attack
// snapshot taken under one sibling's model for the next, longer sibling
// (GroupSession.RunExperimentChained). Models with per-experiment
// randomness (packet loss, corruption — their RNG streams are keyed by
// experiment number) or physical-layer installation (Installer) must NOT
// implement it.
type ChainableModel interface {
	AttackModel
	// ChainableAcrossDurations is a marker method; implementations
	// promise the purity contract documented on ChainableModel.
	ChainableAcrossDurations()
}

// targetSet answers membership for the targetVehicles parameter.
type targetSet map[string]bool

func newTargetSet(ids []string) (targetSet, error) {
	if len(ids) == 0 {
		return nil, errors.New("core: attack needs at least one target vehicle")
	}
	s := make(targetSet, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, errors.New("core: empty target vehicle ID")
		}
		s[id] = true
	}
	return s, nil
}

func (s targetSet) sorted() []string {
	out := make([]string, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// involves reports whether the link touches an attacked vehicle. The
// paper's attacks hit both the sender and receiver modules of the target
// (§IV-A3: "reception and transmission of messages of a specific
// vehicle").
func (s targetSet) involves(src, dst string) bool {
	return s[src] || s[dst]
}

// DelayAttack models the paper's delay attack (Table I): messages to or
// from the target vehicles are blocked and retransmitted later, realised
// by overriding the channel's propagation-delay parameter with the
// attack value while the attack is active.
type DelayAttack struct {
	delay   des.Time
	targets targetSet
}

var (
	_ AttackModel     = (*DelayAttack)(nil)
	_ nic.Interceptor = (*DelayAttack)(nil)
	_ ChainableModel  = (*DelayAttack)(nil)
)

// ChainableAcrossDurations marks the delay attack as a pure interceptor.
func (a *DelayAttack) ChainableAcrossDurations() {}

// NewDelayAttack builds a delay attack with the given PD attack value.
func NewDelayAttack(delay des.Time, targets ...string) (*DelayAttack, error) {
	if delay < 0 {
		return nil, errors.New("core: delay attack value must be non-negative")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &DelayAttack{delay: delay, targets: ts}, nil
}

// Name implements AttackModel.
func (a *DelayAttack) Name() string { return "delay" }

// Targets implements AttackModel.
func (a *DelayAttack) Targets() []string { return a.targets.sorted() }

// Delay returns the attack's PD value.
func (a *DelayAttack) Delay() des.Time { return a.delay }

// Intercept implements nic.Interceptor.
func (a *DelayAttack) Intercept(_ des.Time, src, dst string, _ mac.Frame) nic.Verdict {
	if !a.targets.involves(src, dst) {
		return nic.Verdict{}
	}
	return nic.Verdict{OverrideDelay: true, Delay: a.delay}
}

// DoSAttack models the paper's denial-of-service attack (Table I):
// the target's communication is jammed from attack start until the end
// of the simulation, realised by setting the propagation delay to the
// total simulation time so no message ever arrives within the horizon.
type DoSAttack struct {
	horizon des.Time
	targets targetSet
}

var (
	_ AttackModel     = (*DoSAttack)(nil)
	_ nic.Interceptor = (*DoSAttack)(nil)
	_ ChainableModel  = (*DoSAttack)(nil)
)

// ChainableAcrossDurations marks the DoS attack as a pure interceptor.
func (a *DoSAttack) ChainableAcrossDurations() {}

// NewDoSAttack builds a DoS attack. horizon is the totalSimTime whose
// value the propagation delay is pinned to (60 s in the paper).
func NewDoSAttack(horizon des.Time, targets ...string) (*DoSAttack, error) {
	if horizon <= 0 {
		return nil, errors.New("core: DoS horizon must be positive")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &DoSAttack{horizon: horizon, targets: ts}, nil
}

// Name implements AttackModel.
func (a *DoSAttack) Name() string { return "dos" }

// Targets implements AttackModel.
func (a *DoSAttack) Targets() []string { return a.targets.sorted() }

// Intercept implements nic.Interceptor.
func (a *DoSAttack) Intercept(_ des.Time, src, dst string, _ mac.Frame) nic.Verdict {
	if !a.targets.involves(src, dst) {
		return nic.Verdict{}
	}
	return nic.Verdict{OverrideDelay: true, Delay: a.horizon}
}

// PacketLossAttack is an extension model: a jammer that destroys each
// frame to/from the targets with a fixed probability (1.0 = hard jam,
// dropping instead of delaying).
type PacketLossAttack struct {
	p       float64
	rng     *rng.Source
	targets targetSet
}

var (
	_ AttackModel     = (*PacketLossAttack)(nil)
	_ nic.Interceptor = (*PacketLossAttack)(nil)
)

// NewPacketLossAttack builds a loss attack with drop probability p.
func NewPacketLossAttack(p float64, src *rng.Source, targets ...string) (*PacketLossAttack, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("core: loss probability %v outside [0,1]", p)
	}
	if src == nil {
		return nil, errors.New("core: packet loss attack needs an RNG source")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &PacketLossAttack{p: p, rng: src, targets: ts}, nil
}

// Name implements AttackModel.
func (a *PacketLossAttack) Name() string { return "packet-loss" }

// Targets implements AttackModel.
func (a *PacketLossAttack) Targets() []string { return a.targets.sorted() }

// Intercept implements nic.Interceptor.
func (a *PacketLossAttack) Intercept(_ des.Time, src, dst string, _ mac.Frame) nic.Verdict {
	if !a.targets.involves(src, dst) {
		return nic.Verdict{}
	}
	return nic.Verdict{Drop: a.rng.Bernoulli(a.p)}
}

// Falsifier rewrites a beacon in flight (position, speed or acceleration
// falsification à la Iorio et al. / Boeira et al.).
type Falsifier func(b msg.Beacon) msg.Beacon

// FalsificationAttack is an extension model: beacons transmitted by the
// target vehicles are replaced with falsified copies before delivery.
type FalsificationAttack struct {
	fn      Falsifier
	targets targetSet
}

var (
	_ AttackModel     = (*FalsificationAttack)(nil)
	_ nic.Interceptor = (*FalsificationAttack)(nil)
	_ ChainableModel  = (*FalsificationAttack)(nil)
)

// ChainableAcrossDurations marks the falsification attack as chainable.
// This extends the Falsifier contract: fn must be a pure rewrite of the
// beacon it is given (no captured mutable state, no randomness), which
// every registry-built falsifier satisfies.
func (a *FalsificationAttack) ChainableAcrossDurations() {}

// NewFalsificationAttack builds a falsification attack. Only frames SENT
// by a target are falsified (the attacker impersonates the target).
func NewFalsificationAttack(fn Falsifier, targets ...string) (*FalsificationAttack, error) {
	if fn == nil {
		return nil, errors.New("core: falsifier function is required")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &FalsificationAttack{fn: fn, targets: ts}, nil
}

// Name implements AttackModel.
func (a *FalsificationAttack) Name() string { return "falsification" }

// Targets implements AttackModel.
func (a *FalsificationAttack) Targets() []string { return a.targets.sorted() }

// Intercept implements nic.Interceptor.
func (a *FalsificationAttack) Intercept(_ des.Time, src, _ string, f mac.Frame) nic.Verdict {
	if !a.targets[src] || !f.HasBeacon {
		return nic.Verdict{}
	}
	return nic.Verdict{OverrideBeacon: true, Beacon: a.fn(f.Beacon.Clone())}
}

// ReplayAttack is an extension model: frames from the targets are
// delivered, but the payload is replaced with the state the target
// advertised ReplayAge earlier — a record-and-replay jammer. It works by
// delaying the frames by ReplayAge, which is equivalent for periodic
// state beacons.
type ReplayAttack struct {
	age     des.Time
	targets targetSet
}

var (
	_ AttackModel     = (*ReplayAttack)(nil)
	_ nic.Interceptor = (*ReplayAttack)(nil)
	_ ChainableModel  = (*ReplayAttack)(nil)
)

// ChainableAcrossDurations marks the replay attack as a pure interceptor.
func (a *ReplayAttack) ChainableAcrossDurations() {}

// NewReplayAttack builds a replay attack that serves state age seconds
// stale.
func NewReplayAttack(age des.Time, targets ...string) (*ReplayAttack, error) {
	if age <= 0 {
		return nil, errors.New("core: replay age must be positive")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &ReplayAttack{age: age, targets: ts}, nil
}

// Name implements AttackModel.
func (a *ReplayAttack) Name() string { return "replay" }

// Targets implements AttackModel.
func (a *ReplayAttack) Targets() []string { return a.targets.sorted() }

// Intercept implements nic.Interceptor.
func (a *ReplayAttack) Intercept(_ des.Time, src, _ string, _ mac.Frame) nic.Verdict {
	if !a.targets[src] {
		return nic.Verdict{}
	}
	return nic.Verdict{OverrideDelay: true, Delay: a.age}
}

// describeTargets renders a target list for logs.
func describeTargets(targets []string) string { return strings.Join(targets, ",") }
