package core

import (
	"testing"

	"comfase/internal/classify"
	"comfase/internal/safety"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func paperEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

func TestNewEngineValidation(t *testing.T) {
	bad := scenario.PaperScenario()
	bad.NrVehicles = 0
	if _, err := NewEngine(EngineConfig{Scenario: bad, Comm: scenario.PaperCommModel()}); err == nil {
		t.Error("invalid scenario accepted")
	}
	badComm := scenario.PaperCommModel()
	badComm.PacketBits = 0
	if _, err := NewEngine(EngineConfig{Scenario: scenario.PaperScenario(), Comm: badComm}); err == nil {
		t.Error("invalid comm accepted")
	}
	badTh := classify.PaperThresholds(1.5)
	badTh.BenignMaxDecel = 0.1
	if _, err := NewEngine(EngineConfig{
		Scenario:   scenario.PaperScenario(),
		Comm:       scenario.PaperCommModel(),
		Thresholds: &badTh,
	}); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestGoldenRunProducesPaperReference(t *testing.T) {
	eng := paperEngine(t)
	log, res, err := eng.GoldenRun()
	if err != nil {
		t.Fatalf("GoldenRun: %v", err)
	}
	if len(res.Collisions) != 0 {
		t.Fatalf("golden run collided: %v", res.Collisions)
	}
	// §IV-B anchors the negligible boundary at the golden maximum
	// deceleration of 1.53 m/s^2; ours lands within 10%.
	if res.MaxDecel < 1.4 || res.MaxDecel > 1.7 {
		t.Errorf("golden MaxDecel = %v, want ~1.53", res.MaxDecel)
	}
	if log.Len() < 5900 {
		t.Errorf("golden log has %d samples, want ~6000 (60 s at 100 Hz)", log.Len())
	}
	// 4 vehicles, 10 Hz, 60 s, 3 receivers each: ~7200 deliveries.
	if res.Deliveries < 7000 {
		t.Errorf("Deliveries = %d, want ~7188", res.Deliveries)
	}
	th := eng.Thresholds()
	if th.NegligibleMaxDecel != res.MaxDecel {
		t.Errorf("thresholds not anchored at golden max: %v vs %v",
			th.NegligibleMaxDecel, res.MaxDecel)
	}
	if th.BenignMaxDecel != 5 || th.EmergencyMaxDecel != 8 {
		t.Errorf("thresholds = %+v, want 5/8 bands", th)
	}
}

func TestRunExperimentDelayCausesSevere(t *testing.T) {
	eng := paperEngine(t)
	// A 2 s delay during the deceleration phase is reliably severe (cf.
	// Fig. 6 saturation beyond 2.2 s).
	res, err := eng.RunExperiment(ExperimentSpec{
		Kind:     AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    2.0,
		Start:    18 * des.Second,
		Duration: 10 * des.Second,
	})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if res.Outcome != classify.Severe {
		t.Errorf("outcome = %v, want severe", res.Outcome)
	}
	if !res.Collided() {
		t.Error("severe case without collision (paper: all severe cases were collisions)")
	}
	if res.Collider == "" {
		t.Error("collider not attributed")
	}
	if len(res.MaxDecelPerVehicle) != 4 {
		t.Errorf("per-vehicle decels = %v", res.MaxDecelPerVehicle)
	}
}

func TestRunExperimentTinyDelayMild(t *testing.T) {
	eng := paperEngine(t)
	res, err := eng.RunExperiment(ExperimentSpec{
		Kind:     AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    0.2,
		Start:    18 * des.Second,
		Duration: 1 * des.Second,
	})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if res.Outcome == classify.Severe {
		t.Errorf("0.2 s delay for 1 s classified severe")
	}
	if res.Collided() {
		t.Errorf("0.2 s delay for 1 s collided: %v", res.Collisions)
	}
}

func TestRunExperimentDeterministic(t *testing.T) {
	spec := ExperimentSpec{
		Kind:     AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    1.4,
		Start:    19 * des.Second,
		Duration: 7 * des.Second,
	}
	a, err := paperEngine(t).RunExperiment(spec)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	b, err := paperEngine(t).RunExperiment(spec)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if a.Outcome != b.Outcome || a.MaxDecel != b.MaxDecel ||
		a.MaxSpeedDev != b.MaxSpeedDev || a.Collider != b.Collider {
		t.Errorf("experiments diverged: %+v vs %+v", a, b)
	}
}

func TestRunExperimentAttackWindowRespected(t *testing.T) {
	eng := paperEngine(t)
	// An attack scheduled entirely past the horizon must be a no-op.
	res, err := eng.RunExperiment(ExperimentSpec{
		Kind:     AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    3,
		Start:    70 * des.Second, // beyond the 60 s horizon
		Duration: 10 * des.Second,
	})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if res.Outcome != classify.NonEffective {
		t.Errorf("attack after horizon = %v, want non-effective", res.Outcome)
	}
}

func TestRunCampaignSmallGrid(t *testing.T) {
	eng := paperEngine(t)
	setup := CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.2, 2.0},
		Starts:    []des.Time{18 * des.Second, 198 * 100 * des.Millisecond},
		Durations: []des.Time{1 * des.Second, 10 * des.Second},
	}
	var progress []int
	res, err := eng.RunCampaign(setup, func(done, total int) {
		progress = append(progress, done)
		if total != 8 {
			t.Errorf("total = %d, want 8", total)
		}
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(res.Experiments) != 8 || res.Counts.Total() != 8 {
		t.Fatalf("experiments = %d counts = %v", len(res.Experiments), res.Counts)
	}
	if len(progress) != 8 || progress[7] != 8 {
		t.Errorf("progress = %v", progress)
	}
	// The strong/long grid point must dominate the weak/short one.
	if res.Counts.Severe == 0 {
		t.Error("no severe outcomes in mixed grid")
	}
	if res.Counts.Severe == 8 {
		t.Error("every outcome severe in mixed grid")
	}
}

func TestRunCampaignRejectsInvalidSetup(t *testing.T) {
	eng := paperEngine(t)
	if _, err := eng.RunCampaign(CampaignSetup{}, nil); err == nil {
		t.Error("invalid setup accepted")
	}
}

// TestAEBPreventsCollisions exercises the paper's future-work safety
// mechanism: with an AEB distance monitor on every follower, the DoS
// campaign's collisions disappear entirely — severity shifts from
// "collision" to "emergency braking" (§IV-B severe case ii).
func TestAEBPreventsCollisions(t *testing.T) {
	if testing.Short() {
		t.Skip("two DoS campaigns in -short mode")
	}
	run := func(withAEB bool) (collisions int, counts classify.Counts) {
		ts := scenario.PaperScenario()
		if withAEB {
			ts.AEB = safety.DefaultAEB()
		}
		eng, err := NewEngine(EngineConfig{
			Scenario: ts, Comm: scenario.PaperCommModel(), Seed: 1,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		res, err := eng.RunCampaign(PaperDoSCampaign(), nil)
		if err != nil {
			t.Fatalf("RunCampaign: %v", err)
		}
		for _, e := range res.Experiments {
			if e.Collided() {
				collisions++
			}
		}
		return collisions, res.Counts
	}
	colWithout, _ := run(false)
	colWith, countsWith := run(true)
	if colWithout == 0 {
		t.Fatal("baseline DoS campaign produced no collisions")
	}
	if colWith != 0 {
		t.Errorf("AEB left %d collisions, want 0", colWith)
	}
	// Emergency braking keeps the runs severe: the attack is mitigated
	// in consequence, not in classification.
	if countsWith.Severe == 0 {
		t.Error("AEB runs have no severe (emergency braking) outcomes")
	}
}

// TestDoSCampaignShape asserts the §IV-C2 shape on the full 25-start DoS
// grid: an overwhelming majority of severe outcomes, every severe case a
// collision, the attacked vehicle and its immediate follower the
// dominant colliders, and the paper's start-time banding (Vehicle 3
// responsible in the mid band, Vehicle 2 at the edges).
func TestDoSCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full DoS campaign in -short mode")
	}
	eng := paperEngine(t)
	res, err := eng.RunCampaign(PaperDoSCampaign(), nil)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.Counts.Total() != 25 {
		t.Fatalf("total = %d", res.Counts.Total())
	}
	if res.Counts.Severe < 20 {
		t.Errorf("severe = %d/25, want >= 20 (paper: 25/25)", res.Counts.Severe)
	}
	colliders := map[string]int{}
	for _, e := range res.Experiments {
		if e.Outcome == classify.Severe && !e.Collided() {
			t.Errorf("severe without collision at start %v", e.Spec.Start)
		}
		if e.Collider != "" {
			colliders[e.Collider]++
		}
	}
	if colliders["vehicle.2"] == 0 || colliders["vehicle.3"] == 0 {
		t.Errorf("collider split %v, want both vehicle.2 and vehicle.3 present", colliders)
	}
	if colliders["vehicle.2"] < colliders["vehicle.4"] ||
		colliders["vehicle.3"] < colliders["vehicle.4"] {
		t.Errorf("collider order %v, want V2, V3 >> V4 (paper: 48/40/12)", colliders)
	}
	// Paper banding: starts in 17.6-19.4 s -> Vehicle 3 responsible.
	for _, e := range res.Experiments {
		s := e.Spec.Start
		if s >= 17600*des.Millisecond && s <= 19400*des.Millisecond &&
			e.Collider != "" && e.Collider == "vehicle.2" {
			t.Errorf("start %v collider %q, want surrounding vehicle per §IV-C2", s, e.Collider)
		}
	}
}
