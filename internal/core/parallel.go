package core

import (
	"fmt"
	"runtime"
	"sync"
)

// RunCampaignParallel executes the campaign grid on the given number of
// worker goroutines. Every experiment builds its own simulation, so runs
// are independent and the result is bit-for-bit identical to the
// sequential RunCampaign — the workers only change wall-clock time (the
// paper's 11,250-experiment campaign is embarrassingly parallel; the
// authors ran it on an 8-core Ryzen).
//
// workers <= 0 selects GOMAXPROCS. progress may be nil; when set it is
// invoked from worker goroutines under a lock, in completion (not grid)
// order.
func (e *Engine) RunCampaignParallel(setup CampaignSetup, workers int, progress Progress) (*CampaignResult, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	// Prime the golden run before spawning workers: the cached log is
	// shared read-only by every experiment.
	if err := e.ensureGolden(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs := setup.Experiments()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		return e.RunCampaign(setup, progress)
	}

	results := make([]ExperimentResult, len(specs))
	jobs := make(chan int)

	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, err := e.RunExperiment(specs[idx])
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment %v: %w", specs[idx], err)
					}
					mu.Unlock()
					continue
				}
				results[idx] = res
				done++
				if progress != nil {
					progress(done, len(specs))
				}
				mu.Unlock()
			}
		}()
	}
	for idx := range specs {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	out := &CampaignResult{
		Setup:       setup,
		Golden:      *e.goldenRes,
		Thresholds:  e.thresholds,
		Experiments: results,
	}
	for _, r := range results {
		out.Counts.Add(r.Outcome)
	}
	return out, nil
}
