package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"comfase/internal/runner/pool"
)

// RunCampaignParallel executes the campaign grid on the given number of
// worker goroutines. Every experiment builds its own simulation, so runs
// are independent and the result is bit-for-bit identical to the
// sequential RunCampaign — the workers only change wall-clock time (the
// paper's 11,250-experiment campaign is embarrassingly parallel; the
// authors ran it on an 8-core Ryzen).
//
// workers <= 0 selects GOMAXPROCS. progress may be nil; when set it is
// invoked from worker goroutines under a lock with a monotonically
// increasing done count, in completion (not grid) order.
func (e *Engine) RunCampaignParallel(setup CampaignSetup, workers int, progress Progress) (*CampaignResult, error) {
	return e.RunCampaignParallelCtx(context.Background(), setup, workers, progress)
}

// RunCampaignParallelCtx is RunCampaignParallel with cooperative
// cancellation and fail-fast error handling: after the first experiment
// error (or a ctx cancel) workers stop pulling jobs instead of draining
// the grid, and in-flight simulations abort within CancelCheckEvents
// kernel events. Completed results are discarded on error — campaigns
// that must survive interruption run through internal/runner, which
// streams partial results to sinks.
func (e *Engine) RunCampaignParallelCtx(ctx context.Context, setup CampaignSetup, workers int, progress Progress) (*CampaignResult, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	// Prime the golden run before spawning workers: the cached log is
	// shared read-only by every experiment.
	if err := e.ensureGolden(ctx); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs := setup.Experiments()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		return e.RunCampaignCtx(ctx, setup, progress)
	}

	results := make([]ExperimentResult, len(specs))
	var (
		mu   sync.Mutex
		done int
	)
	err := pool.Run(ctx, len(specs), workers, func(ctx context.Context, _, idx int) error {
		res, err := e.RunExperimentCtx(ctx, specs[idx])
		if err != nil {
			return fmt.Errorf("experiment %v: %w", specs[idx], err)
		}
		mu.Lock()
		results[idx] = res
		done++
		// Invoking the callback under the lock guarantees the done counts
		// it observes are monotonically increasing; callbacks should
		// therefore be fast.
		if progress != nil {
			progress(done, len(specs))
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &CampaignResult{
		Setup:       setup,
		Golden:      *e.goldenRes,
		Thresholds:  e.thresholds,
		Experiments: results,
	}
	for _, r := range results {
		out.Counts.Add(r.Outcome)
	}
	return out, nil
}
