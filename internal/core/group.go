// Checkpoint-trie forking: experiments of a campaign that share an
// attackStartTime also share a byte-identical fault-free prefix — the
// simulation from t=0 to the attack start is independent of the attack
// value and duration. A GroupSession runs that prefix ONCE per worker,
// snapshots the full simulation state (scenario.Checkpoint), and forks
// each sibling experiment from the snapshot: restore, install the attack,
// run to the horizon, classify.
//
// The session generalises the single prefix snapshot into a depth-2
// checkpoint trie: siblings that also share the attack VALUE differ only
// in duration, so their attacked intervals are nested. When the caller
// orders such a value chain by ascending duration and runs it through
// RunExperimentChained, the session snapshots again at each duration
// boundary — with the attack still active — and the next, longer sibling
// restores that mid-attack boundary instead of the prefix, simulating
// only its unique suffix. Chaining requires the model to advertise
// duration-independent purity via the ChainableModel marker; everything
// else (stochastic models, Installers) transparently forks from the
// prefix root. On the paper's grids the trie removes the dominant share
// of redundant event processing beyond what the prefix alone saves.
//
// Forked runs are bit-identical to fresh runs: every stateful layer
// restores exactly, runtime knobs (context check, event budget) are
// reapplied per sibling in the fresh path's order, and the kernel rewinds
// its interrupt-poll phase so deterministic abort points (event budget)
// land on the same event in both paths. The campaign equivalence tests
// pin this for the prefix root and the trie alike.
//
// Failure containment is tiered. Clean failures (invariant hit, budget
// exhaustion, cancellation) leave every snapshot intact — the next fork
// rewinds the workspace completely — so they cost nothing. A panic may
// corrupt the live workspace, so it taints the session: the tainted
// workspace is discarded (never re-pooled, exactly like the fresh path's
// panic handling) and the next fork heals the session by rebuilding the
// prefix from scratch, poisoning only the chain in progress while sibling
// value chains keep forking from the rebuilt root.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"comfase/internal/nic"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

// Errors returned by the group-execution API.
var (
	// ErrGroupPoisoned marks a GroupSession that failed unrecoverably
	// (its prefix could not be rebuilt); remaining experiments must run
	// on the fresh-build path.
	ErrGroupPoisoned = errors.New("core: experiment group session poisoned by an earlier failure")
	// ErrWrongGroup marks an experiment whose attack start does not match
	// the session's checkpointed prefix.
	ErrWrongGroup = errors.New("core: experiment start does not match the group's checkpoint")
	// ErrNotCheckpointable re-exports the scenario gate for callers that
	// select the fresh path without importing scenario.
	ErrNotCheckpointable = scenario.ErrNotCheckpointable
)

// groupScratch bundles the pooled per-group snapshot storage: the trie
// root (composed simulation checkpoint at the attack start plus the
// summary recorder's state there) and one rolling inner node — the
// mid-attack boundary checkpoint the current value chain extends.
type groupScratch struct {
	cp  scenario.Checkpoint
	sum trace.SummaryState

	chainCp  scenario.Checkpoint
	chainSum trace.SummaryState
}

// GroupSession executes a group of experiments that share an attack start
// time by forking each one from the checkpoint trie. Obtain one with
// Engine.BeginGroup; it is not safe for concurrent use (one session per
// campaign worker). Always Close a session — Close returns the workspace
// and checkpoint storage to the engine's pools when the session is still
// clean.
type GroupSession struct {
	e       *Engine
	u       *workUnit
	sim     *scenario.Simulation
	scratch *groupScratch
	start   des.Time
	healthy bool
	// tainted marks a session whose live workspace may be corrupted (a
	// sibling panicked). The session stays healthy: the next fork discards
	// the tainted workspace and heals by rebuilding the prefix.
	tainted bool

	// Rolling value-chain state: chainCp/chainSum in scratch are valid iff
	// chainValid, hold the simulation at chainAt (mid-attack, attack still
	// active) under the chain's (value, attack label), and sit chainDepth
	// boundaries deep past the root.
	chainValid bool
	chainAt    des.Time
	chainValue float64
	chainLabel string
	chainDepth int
}

// groupPool recycles groupScratch values across group sessions; see
// Engine.pool for the workspace analogue.
func (e *Engine) acquireScratch() *groupScratch {
	if v := e.groupPool.Get(); v != nil {
		return v.(*groupScratch)
	}
	return &groupScratch{}
}

// BeginGroup runs the fault-free prefix up to the attack start time and
// checkpoints it — the root of the session's checkpoint trie. ctx must be
// the same kind of context the caller will pass to fresh experiment
// attempts (timeout-wrapped or not), so the kernel's interrupt-poll
// cadence — and with it every deterministic abort point — matches the
// fresh path exactly.
//
// A non-nil error means no session exists and the caller must fall back
// to the fresh-build path; scenario.ErrNotCheckpointable marks
// configurations (fading channel, custom stateful controllers) that can
// never be checkpointed.
func (e *Engine) BeginGroup(ctx context.Context, start des.Time) (*GroupSession, error) {
	if err := e.ensureGolden(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	horizon := e.cfg.Scenario.TotalSimTime
	if start > horizon {
		start = horizon
	}
	gs := &GroupSession{e: e, start: start}
	if err := gs.buildRoot(ctx); err != nil {
		return nil, err
	}
	gs.healthy = true
	return gs, nil
}

// buildRoot acquires a workspace, simulates the fault-free prefix to the
// session's start time and snapshots it into the session's scratch —
// establishing (or re-establishing, on heal) the trie root. On error the
// session holds no workspace; reusable units are re-pooled, suspect ones
// dropped.
func (gs *GroupSession) buildRoot(ctx context.Context) (err error) {
	e := gs.e
	u := e.acquireUnit()
	keep := false
	// Same panic boundary as the fresh path: a panicking component during
	// the prefix surfaces as *PanicError and the workspace is discarded.
	defer func() {
		if r := recover(); r != nil {
			keep = false
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		if err != nil && keep {
			e.pool.Put(u)
		}
	}()
	sim, err := u.ws.Build(e.cfg.Scenario, e.cfg.Comm, e.cfg.Seed, e.cfg.Controllers)
	if err != nil {
		// A failed build may leave the workspace half-reset; drop the unit.
		return err
	}
	keep = true
	e.met.freshBuilds.Inc()
	if !u.ws.Checkpointable() {
		return ErrNotCheckpointable
	}
	// Runtime knobs in the fresh path's order; the prefix must execute
	// with the same budget and poll cadence as a fresh attempt so the
	// kernel counters at the fork point match a fresh run at `start`.
	sim.Kernel.SetMetrics(e.km)
	sim.Kernel.SetEventBudget(e.cfg.EventBudget)
	sim.AttachContext(ctx, e.cfg.CancelCheckEvents)
	summary := u.summary
	summary.Reset(len(sim.Members), e.golden)
	if e.cfg.EarlyExit {
		summary.TrackStability(e.eeTol)
	}
	sim.AddRecorder(summary)
	if err := sim.Start(); err != nil {
		return err
	}
	if err := sim.RunUntil(gs.start); err != nil {
		return err
	}
	scratch := gs.scratch
	if scratch == nil {
		scratch = e.acquireScratch()
	}
	if err := u.ws.Snapshot(&scratch.cp); err != nil {
		if gs.scratch == nil {
			e.groupPool.Put(scratch)
		}
		return err
	}
	summary.SaveState(&scratch.sum)
	e.met.prefixes.Inc()
	gs.u, gs.sim, gs.scratch = u, sim, scratch
	gs.tainted = false
	gs.chainValid = false
	gs.chainDepth = 0
	return nil
}

// heal rebuilds a tainted session: the possibly-corrupted workspace is
// discarded (never re-pooled, matching the fresh path's panic hygiene)
// and the prefix is re-simulated into the same scratch storage. The
// rebuilt snapshot carries a new workspace epoch, so the stale chain
// checkpoint can never be restored by accident. A failure whose cause is
// the caller's context (cancellation, per-attempt timeout) leaves the
// session tainted for a later retry; any other failure poisons it.
func (gs *GroupSession) heal(ctx context.Context) error {
	gs.u, gs.sim = nil, nil
	gs.chainValid = false
	if err := gs.buildRoot(ctx); err != nil {
		if ctx.Err() == nil {
			gs.healthy = false
		}
		return err
	}
	gs.e.met.groupRebuilds.Inc()
	return nil
}

// Healthy reports whether the session can still fork experiments. A
// tainted session (a sibling panicked) still reports healthy — it heals
// itself on the next fork; only a failed heal poisons the session for
// good, after which remaining siblings must run fresh.
func (gs *GroupSession) Healthy() bool { return gs.healthy }

// Start returns the attack start time the session's checkpoint was taken
// at.
func (gs *GroupSession) Start() des.Time { return gs.start }

// RunExperiment forks one sibling experiment from the prefix root:
// restore, install the attack model, run the attack window and the
// remaining horizon, classify. spec.Start must equal the session's fork
// point. It never consults or extends the duration chain — the runner's
// trie-off mode and existing callers keep their exact semantics.
func (gs *GroupSession) RunExperiment(ctx context.Context, spec ExperimentSpec) (ExperimentResult, error) {
	return gs.run(ctx, spec, false, false)
}

// RunExperimentChained is RunExperiment through the checkpoint trie: when
// the session's rolling value chain matches the spec (same attack value
// and label, chain boundary not past the spec's attack end) and the model
// advertises ChainableModel purity, the run forks from the mid-attack
// boundary checkpoint instead of the prefix root and simulates only its
// unique suffix. retain asks the session to snapshot a new boundary at
// this spec's attack end for the NEXT sibling — the caller passes true
// while more chain members follow. Specs that cannot chain (different
// value, unchainable model, no valid boundary) transparently fork from
// the root and start a new chain.
func (gs *GroupSession) RunExperimentChained(ctx context.Context, spec ExperimentSpec, retain bool) (ExperimentResult, error) {
	return gs.run(ctx, spec, true, retain)
}

func (gs *GroupSession) run(ctx context.Context, spec ExperimentSpec, chain, retain bool) (res ExperimentResult, err error) {
	if !gs.healthy {
		return ExperimentResult{}, ErrGroupPoisoned
	}
	e := gs.e
	horizon := e.cfg.Scenario.TotalSimTime
	start := spec.Start
	if start > horizon {
		start = horizon
	}
	if start != gs.start {
		return ExperimentResult{}, fmt.Errorf("%w: spec start %v, checkpoint at %v",
			ErrWrongGroup, start, gs.start)
	}
	if gs.tainted {
		if err := gs.heal(ctx); err != nil {
			return ExperimentResult{}, err
		}
	}
	e.met.started.Inc()
	var wallStart time.Time
	if e.met.wall != nil {
		wallStart = time.Now()
	}
	// The panic boundary: a panic anywhere past this point may have
	// corrupted the live workspace, so the session is tainted and will
	// rebuild its prefix before the next fork. Clean errors below do NOT
	// taint — every snapshot layer is restored wholesale on the next fork,
	// including the traffic fault latch and collision log, so an invariant
	// hit or budget abort leaves nothing behind.
	defer func() {
		if r := recover(); r != nil {
			gs.tainted = true
			gs.chainValid = false
			res = ExperimentResult{}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	model, err := buildModelSafe(spec, horizon, e.cfg.Seed)
	if err != nil {
		// Nothing touched the workspace yet; the session stays usable.
		return ExperimentResult{}, err
	}
	end := spec.End(horizon)
	ic, isInterceptor := model.(nic.Interceptor)
	_, marked := model.(ChainableModel)
	canChain := isInterceptor && marked
	fromChain := chain && canChain && gs.chainValid &&
		gs.chainValue == spec.Value && gs.chainLabel == spec.AttackLabel() &&
		end >= gs.chainAt

	sim := gs.sim
	// Per-sibling runtime knobs BEFORE Restore (fresh-path order):
	// AttachContext resets the kernel's poll phase, and Restore then
	// rewinds it to the fork-point value, so the sibling polls budget and
	// context on exactly the cadence a fresh run would past the fork.
	sim.Kernel.SetEventBudget(e.cfg.EventBudget)
	sim.AttachContext(ctx, e.cfg.CancelCheckEvents)

	var from des.Time
	if fromChain {
		if err := gs.u.ws.Restore(&gs.scratch.chainCp); err != nil {
			// Restore can only fail on ownership/epoch bookkeeping bugs;
			// nothing about the workspace is trustworthy then.
			gs.healthy = false
			return ExperimentResult{}, err
		}
		gs.u.summary.LoadState(&gs.scratch.chainSum)
		// The boundary snapshot captured the PREVIOUS sibling's model as
		// the installed interceptor (nic.AirState stores the pointer);
		// swap in this sibling's own — behaviourally identical by the
		// ChainableModel contract — instance.
		sim.Air.SetInterceptor(ic)
		from = gs.chainAt
		e.met.trieForks.Inc()
		e.met.trieSavedMs.Add(uint64((gs.chainAt - gs.start) / des.Millisecond))
	} else {
		if err := gs.u.ws.Restore(&gs.scratch.cp); err != nil {
			gs.healthy = false
			return ExperimentResult{}, err
		}
		gs.u.summary.LoadState(&gs.scratch.sum)
		// Algorithm 1 line 13 on the forked state (line 12 — SimUntil the
		// attack start — is the shared prefix).
		if err := applyAttack(sim, model); err != nil {
			// An Installer may have partially installed; rebuild before the
			// next fork rather than trust the workspace.
			gs.tainted = true
			gs.chainValid = false
			return ExperimentResult{}, err
		}
		from = start
		// This fork starts a new value chain; the previous one is done.
		gs.chainValid = false
		gs.chainDepth = 0
		e.met.forks.Inc()
	}

	decided, stopAt, err := e.runDecidable(sim, gs.u.summary, from, end, end, false)
	if err != nil {
		return ExperimentResult{}, err
	}
	if !decided && chain && retain && canChain {
		// The sibling reached its attack end undecided with the attack
		// still active: exactly the state the next, longer chain member
		// needs. Snapshot it as the chain's new boundary. A decided run
		// stopped mid-window, so the chain simply keeps its old boundary —
		// later members re-simulate past it and exit at the same instant.
		if err := gs.u.ws.Snapshot(&gs.scratch.chainCp); err != nil {
			gs.chainValid = false
		} else {
			gs.u.summary.SaveState(&gs.scratch.chainSum)
			gs.chainValid = true
			gs.chainAt = end
			gs.chainValue = spec.Value
			gs.chainLabel = spec.AttackLabel()
			gs.chainDepth++
			e.met.trieBoundaries.Inc()
			e.met.trieDepth.Set(int64(gs.chainDepth))
		}
	}
	if !decided {
		if err := removeAttack(sim, model); err != nil {
			gs.tainted = true
			gs.chainValid = false
			return ExperimentResult{}, err
		}
		decided, stopAt, err = e.runDecidable(sim, gs.u.summary, end, horizon, end, true)
		if err != nil {
			return ExperimentResult{}, err
		}
	}
	if decided {
		e.met.earlyExits.Inc()
		e.met.earlySavedMs.Add(uint64((horizon - stopAt) / des.Millisecond))
	}
	res, err = e.finishExperiment(sim, gs.u.summary, spec)
	if err != nil {
		return ExperimentResult{}, err
	}
	e.met.completed.Inc()
	if e.met.wall != nil {
		e.met.wall.ObserveDuration(time.Since(wallStart))
	}
	return res, nil
}

// buildModelSafe converts a panicking model factory into a *PanicError in
// its own recovery scope: the factory runs before anything touches the
// simulation, so its panic must not taint the caller's workspace.
func buildModelSafe(spec ExperimentSpec, horizon des.Time, seed uint64) (model AttackModel, err error) {
	defer func() {
		if r := recover(); r != nil {
			model, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return spec.buildModel(horizon, seed)
}

// Close releases the session. A clean session returns its workspace and
// checkpoint storage to the engine's pools; a tainted or poisoned one
// discards both (their components may be arbitrarily corrupted), exactly
// as the fresh path discards panicked workspaces.
func (gs *GroupSession) Close() {
	if gs.healthy && !gs.tainted {
		gs.e.pool.Put(gs.u)
		gs.e.groupPool.Put(gs.scratch)
	}
	gs.healthy = false
	gs.u = nil
	gs.sim = nil
	gs.scratch = nil
}

// RunExperimentGroup executes a group of experiments sharing one attack
// start time, forking them from a single prefix checkpoint. Experiments
// whose forked run fails — and whole groups whose prefix cannot be
// checkpointed (scenario.ErrNotCheckpointable) or fails — transparently
// fall back to the fresh-build path, so the call succeeds whenever plain
// per-experiment execution would. Results are returned in spec order.
// (The runner's trie mode additionally orders value chains by duration
// and uses RunExperimentChained; this convenience API keeps spec order
// and root forking.)
func (e *Engine) RunExperimentGroup(ctx context.Context, specs []ExperimentSpec) ([]ExperimentResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	for _, s := range specs[1:] {
		if s.Start != specs[0].Start {
			return nil, fmt.Errorf("core: experiment group mixes start times %v and %v",
				specs[0].Start, s.Start)
		}
	}
	gs, err := e.BeginGroup(ctx, specs[0].Start)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		gs = nil // prefix failed: run the whole group fresh
	} else {
		defer gs.Close()
	}
	out := make([]ExperimentResult, 0, len(specs))
	for _, spec := range specs {
		if gs != nil && gs.Healthy() {
			res, err := gs.RunExperiment(ctx, spec)
			if err == nil {
				out = append(out, res)
				continue
			}
			if ctx.Err() != nil {
				return out, err
			}
			// Fall through: retry this sibling fresh. Deterministic
			// failures (invariant hits, budget exhaustion) reproduce there
			// and surface exactly as they would without checkpointing.
		}
		res, err := e.RunExperimentCtx(ctx, spec)
		if err != nil {
			return out, fmt.Errorf("experiment %v: %w", spec, err)
		}
		out = append(out, res)
	}
	return out, nil
}
