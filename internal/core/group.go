// Prefix-checkpoint forking: experiments of a campaign that share an
// attackStartTime also share a byte-identical fault-free prefix — the
// simulation from t=0 to the attack start is independent of the attack
// value and duration. A GroupSession runs that prefix ONCE per worker,
// snapshots the full simulation state (scenario.Checkpoint), and forks
// each sibling experiment from the snapshot: restore, install the attack,
// run to the horizon, classify. On the paper's grids this removes the
// dominant share of redundant event processing.
//
// Forked runs are bit-identical to fresh runs: every stateful layer
// restores exactly, runtime knobs (context check, event budget) are
// reapplied per sibling in the fresh path's order, and the kernel rewinds
// its interrupt-poll phase so deterministic abort points (event budget)
// land on the same event in both paths. The campaign equivalence test
// pins this.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

// Errors returned by the group-execution API.
var (
	// ErrGroupPoisoned marks a GroupSession whose workspace or checkpoint
	// was discarded after a failed sibling; remaining experiments must run
	// on the fresh-build path.
	ErrGroupPoisoned = errors.New("core: experiment group session poisoned by an earlier failure")
	// ErrWrongGroup marks an experiment whose attack start does not match
	// the session's checkpointed prefix.
	ErrWrongGroup = errors.New("core: experiment start does not match the group's checkpoint")
	// ErrNotCheckpointable re-exports the scenario gate for callers that
	// select the fresh path without importing scenario.
	ErrNotCheckpointable = scenario.ErrNotCheckpointable
)

// groupScratch bundles the pooled per-group snapshot storage: the
// composed simulation checkpoint plus the summary recorder's state at the
// fork point.
type groupScratch struct {
	cp  scenario.Checkpoint
	sum trace.SummaryState
}

// GroupSession executes a group of experiments that share an attack start
// time by forking each one from a prefix checkpoint. Obtain one with
// Engine.BeginGroup; it is not safe for concurrent use (one session per
// campaign worker). Always Close a session — Close returns the workspace
// and checkpoint to the engine's pools when the session is still healthy.
type GroupSession struct {
	e       *Engine
	u       *workUnit
	sim     *scenario.Simulation
	scratch *groupScratch
	start   des.Time
	healthy bool
}

// groupPool recycles groupScratch values across group sessions; see
// Engine.pool for the workspace analogue.
func (e *Engine) acquireScratch() *groupScratch {
	if v := e.groupPool.Get(); v != nil {
		return v.(*groupScratch)
	}
	return &groupScratch{}
}

// BeginGroup runs the fault-free prefix up to the attack start time and
// checkpoints it. ctx must be the same kind of context the caller will
// pass to fresh experiment attempts (timeout-wrapped or not), so the
// kernel's interrupt-poll cadence — and with it every deterministic abort
// point — matches the fresh path exactly.
//
// A non-nil error means no session exists and the caller must fall back
// to the fresh-build path; scenario.ErrNotCheckpointable marks
// configurations (fading channel, custom stateful controllers) that can
// never be checkpointed.
func (e *Engine) BeginGroup(ctx context.Context, start des.Time) (gs *GroupSession, err error) {
	if err := e.ensureGolden(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	horizon := e.cfg.Scenario.TotalSimTime
	if start > horizon {
		start = horizon
	}
	u := e.acquireUnit()
	keep := false
	// Same panic boundary as the fresh path: a panicking component during
	// the prefix surfaces as *PanicError and the workspace is discarded.
	defer func() {
		if r := recover(); r != nil {
			keep = false
			gs, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
		if keep && gs == nil {
			e.pool.Put(u)
		}
	}()
	sim, err := u.ws.Build(e.cfg.Scenario, e.cfg.Comm, e.cfg.Seed, e.cfg.Controllers)
	if err != nil {
		// A failed build may leave the workspace half-reset; drop the unit.
		return nil, err
	}
	keep = true
	e.met.freshBuilds.Inc()
	if !u.ws.Checkpointable() {
		return nil, ErrNotCheckpointable
	}
	// Runtime knobs in the fresh path's order; the prefix must execute
	// with the same budget and poll cadence as a fresh attempt so the
	// kernel counters at the fork point match a fresh run at `start`.
	sim.Kernel.SetMetrics(e.km)
	sim.Kernel.SetEventBudget(e.cfg.EventBudget)
	sim.AttachContext(ctx, e.cfg.CancelCheckEvents)
	summary := u.summary
	summary.Reset(len(sim.Members), e.golden)
	sim.AddRecorder(summary)
	if err := sim.Start(); err != nil {
		return nil, err
	}
	if err := sim.RunUntil(start); err != nil {
		return nil, err
	}
	scratch := e.acquireScratch()
	if err := u.ws.Snapshot(&scratch.cp); err != nil {
		e.groupPool.Put(scratch)
		return nil, err
	}
	summary.SaveState(&scratch.sum)
	e.met.prefixes.Inc()
	return &GroupSession{e: e, u: u, sim: sim, scratch: scratch, start: start, healthy: true}, nil
}

// Healthy reports whether the session can still fork experiments. A
// failed sibling poisons the session: its workspace and checkpoint are
// discarded on Close, and remaining siblings must run fresh — the same
// containment the fresh path gets from discarding panicked workspaces.
func (gs *GroupSession) Healthy() bool { return gs.healthy }

// Start returns the attack start time the session's checkpoint was taken
// at.
func (gs *GroupSession) Start() des.Time { return gs.start }

// RunExperiment forks one sibling experiment from the prefix checkpoint:
// restore, install the attack model, run the attack window and the
// remaining horizon, classify. spec.Start must equal the session's fork
// point. Any failure — panic, cancellation, timeout, invariant hit,
// budget exhaustion — poisons the session; the caller retries the
// experiment on the fresh-build path, preserving retry and quarantine
// semantics exactly.
func (gs *GroupSession) RunExperiment(ctx context.Context, spec ExperimentSpec) (res ExperimentResult, err error) {
	if !gs.healthy {
		return ExperimentResult{}, ErrGroupPoisoned
	}
	e := gs.e
	horizon := e.cfg.Scenario.TotalSimTime
	start := spec.Start
	if start > horizon {
		start = horizon
	}
	if start != gs.start {
		return ExperimentResult{}, fmt.Errorf("%w: spec start %v, checkpoint at %v",
			ErrWrongGroup, start, gs.start)
	}
	e.met.started.Inc()
	var wallStart time.Time
	if e.met.wall != nil {
		wallStart = time.Now()
	}
	defer func() {
		if r := recover(); r != nil {
			gs.healthy = false
			res = ExperimentResult{}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	model, err := spec.buildModel(horizon, e.cfg.Seed)
	if err != nil {
		// Nothing touched the workspace yet; the session stays usable.
		return ExperimentResult{}, err
	}
	sim := gs.sim
	// Per-sibling runtime knobs BEFORE Restore (fresh-path order):
	// AttachContext resets the kernel's poll phase, and Restore then
	// rewinds it to the fork-point value, so the sibling polls budget and
	// context on exactly the cadence a fresh run would past `start`.
	sim.Kernel.SetEventBudget(e.cfg.EventBudget)
	sim.AttachContext(ctx, e.cfg.CancelCheckEvents)
	if err := gs.u.ws.Restore(&gs.scratch.cp); err != nil {
		gs.healthy = false
		return ExperimentResult{}, err
	}
	e.met.forks.Inc()
	gs.u.summary.LoadState(&gs.scratch.sum)

	end := spec.End(horizon)
	// Algorithm 1 lines 13-14 on the forked state (line 12 — SimUntil the
	// attack start — is the shared prefix).
	if err := applyAttack(sim, model); err != nil {
		gs.healthy = false
		return ExperimentResult{}, err
	}
	if err := sim.RunUntil(end); err != nil {
		gs.healthy = false
		return ExperimentResult{}, err
	}
	if err := removeAttack(sim, model); err != nil {
		gs.healthy = false
		return ExperimentResult{}, err
	}
	if err := sim.RunUntil(horizon); err != nil {
		gs.healthy = false
		return ExperimentResult{}, err
	}
	res, err = e.finishExperiment(sim, gs.u.summary, spec)
	if err != nil {
		gs.healthy = false
		return ExperimentResult{}, err
	}
	e.met.completed.Inc()
	if e.met.wall != nil {
		e.met.wall.ObserveDuration(time.Since(wallStart))
	}
	return res, nil
}

// Close releases the session. A healthy session returns its workspace and
// checkpoint storage to the engine's pools; a poisoned one discards both
// (their components may be arbitrarily corrupted), exactly as the fresh
// path discards panicked workspaces.
func (gs *GroupSession) Close() {
	if gs.healthy {
		gs.e.pool.Put(gs.u)
		gs.e.groupPool.Put(gs.scratch)
	}
	gs.healthy = false
	gs.u = nil
	gs.sim = nil
	gs.scratch = nil
}

// RunExperimentGroup executes a group of experiments sharing one attack
// start time, forking them from a single prefix checkpoint. Experiments
// whose forked run fails — and whole groups whose prefix cannot be
// checkpointed (scenario.ErrNotCheckpointable) or fails — transparently
// fall back to the fresh-build path, so the call succeeds whenever plain
// per-experiment execution would. Results are returned in spec order.
func (e *Engine) RunExperimentGroup(ctx context.Context, specs []ExperimentSpec) ([]ExperimentResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	for _, s := range specs[1:] {
		if s.Start != specs[0].Start {
			return nil, fmt.Errorf("core: experiment group mixes start times %v and %v",
				specs[0].Start, s.Start)
		}
	}
	gs, err := e.BeginGroup(ctx, specs[0].Start)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		gs = nil // prefix failed: run the whole group fresh
	} else {
		defer gs.Close()
	}
	out := make([]ExperimentResult, 0, len(specs))
	for _, spec := range specs {
		if gs != nil && gs.Healthy() {
			res, err := gs.RunExperiment(ctx, spec)
			if err == nil {
				out = append(out, res)
				continue
			}
			if ctx.Err() != nil {
				return out, err
			}
			// Fall through: retry this sibling fresh. Deterministic
			// failures (invariant hits, budget exhaustion) reproduce there
			// and surface exactly as they would without checkpointing.
		}
		res, err := e.RunExperimentCtx(ctx, spec)
		if err != nil {
			return out, fmt.Errorf("experiment %v: %w", spec, err)
		}
		out = append(out, res)
	}
	return out, nil
}
