package core

import (
	"errors"
	"fmt"

	"comfase/internal/mac"
	"comfase/internal/nic"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// ComFASE is a fault AND attack injection tool (§I). The models in this
// file are the fault side: non-malicious hardware/software failures of
// the communication unit, injected through the same CommModelEditor
// mechanism as the attacks.

// OmissionFault models a crash/omission failure of the target's on-board
// transmitter: from fault activation on, none of the target's frames
// reach any receiver, while its reception keeps working. This is the
// classic omission fault of dependability taxonomies, distinct from the
// bidirectional DoS attack.
type OmissionFault struct {
	targets targetSet
}

var (
	_ AttackModel     = (*OmissionFault)(nil)
	_ nic.Interceptor = (*OmissionFault)(nil)
	_ ChainableModel  = (*OmissionFault)(nil)
)

// ChainableAcrossDurations marks the omission fault as a pure interceptor.
func (f *OmissionFault) ChainableAcrossDurations() {}

// NewOmissionFault builds an omission fault for the target transmitters.
func NewOmissionFault(targets ...string) (*OmissionFault, error) {
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &OmissionFault{targets: ts}, nil
}

// Name implements AttackModel.
func (f *OmissionFault) Name() string { return "omission" }

// Targets implements AttackModel.
func (f *OmissionFault) Targets() []string { return f.targets.sorted() }

// Intercept implements nic.Interceptor.
func (f *OmissionFault) Intercept(_ des.Time, src, _ string, _ mac.Frame) nic.Verdict {
	return nic.Verdict{Drop: f.targets[src]}
}

// CorruptionFault models a value failure in the target's beacon path
// (faulty sensor, serialisation bug): the kinematic fields of every
// transmitted beacon are perturbed with zero-mean Gaussian noise.
type CorruptionFault struct {
	// sigmaPos/sigmaSpeed/sigmaAccel are the noise standard deviations.
	sigmaPos   float64
	sigmaSpeed float64
	sigmaAccel float64
	rng        *rng.Source
	targets    targetSet
}

var (
	_ AttackModel     = (*CorruptionFault)(nil)
	_ nic.Interceptor = (*CorruptionFault)(nil)
)

// NewCorruptionFault builds a corruption fault with per-field noise
// levels (standard deviations; zero disables a field).
func NewCorruptionFault(sigmaPos, sigmaSpeed, sigmaAccel float64, src *rng.Source, targets ...string) (*CorruptionFault, error) {
	if sigmaPos < 0 || sigmaSpeed < 0 || sigmaAccel < 0 {
		return nil, errors.New("core: corruption noise levels must be non-negative")
	}
	if sigmaPos == 0 && sigmaSpeed == 0 && sigmaAccel == 0 {
		return nil, errors.New("core: corruption fault needs at least one noisy field")
	}
	if src == nil {
		return nil, errors.New("core: corruption fault needs an RNG source")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &CorruptionFault{
		sigmaPos:   sigmaPos,
		sigmaSpeed: sigmaSpeed,
		sigmaAccel: sigmaAccel,
		rng:        src,
		targets:    ts,
	}, nil
}

// Name implements AttackModel.
func (f *CorruptionFault) Name() string { return "corruption" }

// Targets implements AttackModel.
func (f *CorruptionFault) Targets() []string { return f.targets.sorted() }

// Intercept implements nic.Interceptor.
func (f *CorruptionFault) Intercept(_ des.Time, src, _ string, fr mac.Frame) nic.Verdict {
	if !f.targets[src] || !fr.HasBeacon {
		return nic.Verdict{}
	}
	c := fr.Beacon.Clone()
	if f.sigmaPos > 0 {
		c.Pos = f.rng.Normal(c.Pos, f.sigmaPos)
	}
	if f.sigmaSpeed > 0 {
		c.Speed = f.rng.Normal(c.Speed, f.sigmaSpeed)
	}
	if f.sigmaAccel > 0 {
		c.Accel = f.rng.Normal(c.Accel, f.sigmaAccel)
	}
	return nic.Verdict{OverrideBeacon: true, Beacon: c}
}

// CalibrationFault models a systematic sensor bias: constant offsets on
// the advertised kinematic fields (e.g. a GNSS position bias or a
// miscalibrated accelerometer).
type CalibrationFault struct {
	offPos   float64
	offSpeed float64
	offAccel float64
	targets  targetSet
}

var (
	_ AttackModel     = (*CalibrationFault)(nil)
	_ nic.Interceptor = (*CalibrationFault)(nil)
	_ ChainableModel  = (*CalibrationFault)(nil)
)

// ChainableAcrossDurations marks the bias fault as a pure interceptor.
func (f *CalibrationFault) ChainableAcrossDurations() {}

// NewCalibrationFault builds a bias fault with per-field offsets.
func NewCalibrationFault(offPos, offSpeed, offAccel float64, targets ...string) (*CalibrationFault, error) {
	if offPos == 0 && offSpeed == 0 && offAccel == 0 {
		return nil, errors.New("core: calibration fault needs at least one offset")
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &CalibrationFault{
		offPos:   offPos,
		offSpeed: offSpeed,
		offAccel: offAccel,
		targets:  ts,
	}, nil
}

// Name implements AttackModel.
func (f *CalibrationFault) Name() string { return "calibration" }

// Targets implements AttackModel.
func (f *CalibrationFault) Targets() []string { return f.targets.sorted() }

// Intercept implements nic.Interceptor.
func (f *CalibrationFault) Intercept(_ des.Time, src, _ string, fr mac.Frame) nic.Verdict {
	if !f.targets[src] || !fr.HasBeacon {
		return nic.Verdict{}
	}
	c := fr.Beacon.Clone()
	c.Pos += f.offPos
	c.Speed += f.offSpeed
	c.Accel += f.offAccel
	return nic.Verdict{OverrideBeacon: true, Beacon: c}
}

// String renders a short description of the fault configuration.
func (f *CalibrationFault) String() string {
	return fmt.Sprintf("calibration(dPos=%g dSpeed=%g dAccel=%g)",
		f.offPos, f.offSpeed, f.offAccel)
}
