package core

import (
	"strings"
	"testing"

	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
)

// TestAttackRegistryCoversAllKinds: every AttackKind the legacy enum
// names must be resolvable by its String() through the registry, and
// resolve back to the same kind.
func TestAttackRegistryCoversAllKinds(t *testing.T) {
	kinds := []AttackKind{
		AttackDelay, AttackDoS, AttackPacketLoss, AttackReplay, AttackJamming,
	}
	for _, k := range kinds {
		entry, err := LookupAttack(k.String())
		if err != nil {
			t.Errorf("LookupAttack(%q): %v", k.String(), err)
			continue
		}
		if entry.Kind != k {
			t.Errorf("entry %q resolves to kind %v, want %v", k.String(), entry.Kind, k)
		}
		if entry.Build == nil {
			t.Errorf("entry %q has no builder", k.String())
		}
	}
	// The registry-only families have no enum kind — they are reachable
	// by name alone.
	for _, name := range []string{"falsification", "sybil", "omission", "corruption", "calibration"} {
		entry, err := LookupAttack(name)
		if err != nil {
			t.Errorf("LookupAttack(%q): %v", name, err)
			continue
		}
		if entry.Kind != 0 {
			t.Errorf("registry-only family %q carries enum kind %v", name, entry.Kind)
		}
	}
	if got := len(AttackNames()); got < 10 {
		t.Errorf("registry has %d families, want >= 10", got)
	}
}

// buildCtx is a minimal AttackContext for builder tests.
func buildCtx(t *testing.T, name string, value float64, p param.Params) AttackContext {
	t.Helper()
	entry, err := LookupAttack(name)
	if err != nil {
		t.Fatalf("LookupAttack(%q): %v", name, err)
	}
	applied, err := entry.Schema.Apply(p)
	if err != nil {
		t.Fatalf("Schema.Apply(%q, %v): %v", name, p, err)
	}
	return AttackContext{
		Spec: ExperimentSpec{
			Nr:       3,
			Kind:     entry.Kind,
			Attack:   name,
			Targets:  []string{"vehicle.2"},
			Value:    value,
			Start:    17 * des.Second,
			Duration: 5 * des.Second,
		},
		Params:  applied,
		Horizon: 60 * des.Second,
		Seed:    1,
	}
}

// TestAttackBuildersProduceModels exercises every registered family's
// builder with representative parameters.
func TestAttackBuildersProduceModels(t *testing.T) {
	cases := []struct {
		name   string
		value  float64
		params param.Params
	}{
		{"delay", 1.5, nil},
		{"dos", 60, nil},
		{"packet-loss", 0.5, nil},
		{"replay", 1.0, nil},
		{"jamming", -10, nil},
		{"falsification", 5, param.Params{"field": "accel", "mode": "offset"}},
		{"sybil", 8, param.Params{"index": 1, "speedMps": 20}},
		{"omission", 1, nil},
		{"corruption", 2, param.Params{"sigmaPosM": 0.5}},
		{"calibration", 1, param.Params{"posOffsetM": 3}},
	}
	for _, c := range cases {
		entry, err := LookupAttack(c.name)
		if err != nil {
			t.Fatalf("LookupAttack(%q): %v", c.name, err)
		}
		model, err := entry.Build(buildCtx(t, c.name, c.value, c.params))
		if err != nil {
			t.Errorf("%s builder: %v", c.name, err)
			continue
		}
		if model == nil {
			t.Errorf("%s builder returned a nil model", c.name)
			continue
		}
		if model.Name() == "" {
			t.Errorf("%s model has an empty name", c.name)
		}
	}
}

// TestAttackSchemaBoundsRejected: out-of-range or unknown attack
// parameters must fail CampaignSetup.Validate before any simulation.
func TestAttackSchemaBoundsRejected(t *testing.T) {
	base := CampaignSetup{
		Targets:   []string{"vehicle.2"},
		Values:    []float64{1},
		Starts:    []des.Time{17 * des.Second},
		Durations: []des.Time{5 * des.Second},
	}
	cases := []struct {
		attack string
		params param.Params
		want   string
	}{
		{"corruption", param.Params{"sigmaPosM": -1}, "sigmaPosM"},
		{"sybil", param.Params{"periodS": 0}, "periodS"},
		{"sybil", param.Params{"index": 1.5}, "index"},
		{"falsification", param.Params{"field": "yaw"}, "field"},
		{"falsification", param.Params{"feild": "speed"}, `did you mean "field"`},
	}
	for _, c := range cases {
		setup := base
		setup.AttackName = c.attack
		setup.Params = c.params
		err := setup.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%s, %v) = %v, want error mentioning %q",
				c.attack, c.params, err, c.want)
		}
	}
}

// TestValidateUnknownAttackSuggestion: the unknown-name error must come
// from the registry, with nearest-match help and the known-family list.
func TestValidateUnknownAttackSuggestion(t *testing.T) {
	setup := CampaignSetup{
		AttackName: "dealy",
		Targets:    []string{"vehicle.2"},
		Values:     []float64{1},
		Starts:     []des.Time{17 * des.Second},
		Durations:  []des.Time{5 * des.Second},
	}
	err := setup.Validate()
	if err == nil || !strings.Contains(err.Error(), `did you mean "delay"`) {
		t.Errorf("Validate(dealy) = %v, want delay suggestion", err)
	}
	if !strings.Contains(err.Error(), "dos") {
		t.Errorf("Validate(dealy) = %v, want the known-family list", err)
	}
}

// TestValidateNameKindConflict: naming one family while setting a
// different enum kind is a contradiction, not a preference.
func TestValidateNameKindConflict(t *testing.T) {
	setup := CampaignSetup{
		Attack:     AttackDoS,
		AttackName: "delay",
		Targets:    []string{"vehicle.2"},
		Values:     []float64{1},
		Starts:     []des.Time{17 * des.Second},
		Durations:  []des.Time{5 * des.Second},
	}
	if err := setup.Validate(); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("Validate(kind=dos, name=delay) = %v, want conflict error", err)
	}
	setup.Attack = AttackDelay // agreeing pair is fine
	if err := setup.Validate(); err != nil {
		t.Errorf("Validate(kind=delay, name=delay): %v", err)
	}
}

// TestDuplicateAttackRegistrationPanics guards the process-global
// registry against silent shadowing.
func TestDuplicateAttackRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering delay did not panic")
		}
	}()
	RegisterAttack(AttackEntry{
		Name:  "delay",
		Build: func(AttackContext) (AttackModel, error) { return nil, nil },
	})
}

// TestRegistryPacketLossDeterminism: the registry builder must derive
// the loss RNG stream from the experiment number exactly as the legacy
// path did, so identical (seed, expNr) drop identical frames.
func TestRegistryPacketLossDeterminism(t *testing.T) {
	build := func() AttackModel {
		entry, err := LookupAttack("packet-loss")
		if err != nil {
			t.Fatalf("LookupAttack: %v", err)
		}
		model, err := entry.Build(buildCtx(t, "packet-loss", 0.5, nil))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return model
	}
	a, b := build(), build()
	if a.Name() != b.Name() {
		t.Fatalf("model names differ: %q vs %q", a.Name(), b.Name())
	}
}
