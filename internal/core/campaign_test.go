package core

import (
	"testing"

	"comfase/internal/sim/des"
)

func TestAttackKindStringValid(t *testing.T) {
	tests := []struct {
		k    AttackKind
		want string
	}{
		{k: AttackDelay, want: "delay"},
		{k: AttackDoS, want: "dos"},
		{k: AttackPacketLoss, want: "packet-loss"},
		{k: AttackReplay, want: "replay"},
	}
	for _, tt := range tests {
		if tt.k.String() != tt.want || !tt.k.Valid() {
			t.Errorf("%v: String=%q Valid=%v", tt.k, tt.k.String(), tt.k.Valid())
		}
	}
	if AttackKind(0).Valid() || AttackKind(99).Valid() {
		t.Error("invalid kinds accepted")
	}
	if AttackKind(99).String() == "" {
		t.Error("empty String for unknown kind")
	}
}

func validSetup() CampaignSetup {
	return CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{1},
		Starts:    []des.Time{17 * des.Second},
		Durations: []des.Time{10 * des.Second},
	}
}

func TestCampaignSetupValidate(t *testing.T) {
	if err := validSetup().Validate(); err != nil {
		t.Fatalf("valid setup rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*CampaignSetup)
	}{
		{name: "bad kind", mutate: func(c *CampaignSetup) { c.Attack = 0 }},
		{name: "no targets", mutate: func(c *CampaignSetup) { c.Targets = nil }},
		{name: "no values", mutate: func(c *CampaignSetup) { c.Values = nil }},
		{name: "no starts", mutate: func(c *CampaignSetup) { c.Starts = nil }},
		{name: "no durations", mutate: func(c *CampaignSetup) { c.Durations = nil }},
		{name: "negative value", mutate: func(c *CampaignSetup) { c.Values = []float64{-1} }},
		{name: "negative start", mutate: func(c *CampaignSetup) { c.Starts = []des.Time{-1} }},
		{name: "zero duration", mutate: func(c *CampaignSetup) { c.Durations = []des.Time{0} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSetup()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid setup accepted")
			}
		})
	}
}

func TestExperimentGridOrder(t *testing.T) {
	s := validSetup()
	s.Starts = []des.Time{des.Second, 2 * des.Second}
	s.Values = []float64{0.2, 0.4}
	s.Durations = []des.Time{des.Second, 2 * des.Second}
	if s.NumExperiments() != 8 {
		t.Fatalf("NumExperiments = %d", s.NumExperiments())
	}
	exps := s.Experiments()
	if len(exps) != 8 {
		t.Fatalf("len = %d", len(exps))
	}
	// Algorithm 1 loop order: start outermost, then value, then duration.
	if exps[0].Start != des.Second || exps[0].Value != 0.2 || exps[0].Duration != des.Second {
		t.Errorf("exp0 = %+v", exps[0])
	}
	if exps[1].Duration != 2*des.Second {
		t.Errorf("exp1 should advance duration first: %+v", exps[1])
	}
	if exps[2].Value != 0.4 {
		t.Errorf("exp2 should advance value second: %+v", exps[2])
	}
	if exps[4].Start != 2*des.Second {
		t.Errorf("exp4 should advance start last: %+v", exps[4])
	}
	for i, e := range exps {
		if e.Nr != i {
			t.Errorf("exp %d has Nr %d", i, e.Nr)
		}
	}
}

func TestExperimentSpecEndClipsAtHorizon(t *testing.T) {
	e := ExperimentSpec{Start: 50 * des.Second, Duration: 30 * des.Second}
	if got := e.End(60 * des.Second); got != 60*des.Second {
		t.Errorf("End = %v, want clipped to horizon", got)
	}
	e = ExperimentSpec{Start: 10 * des.Second, Duration: 5 * des.Second}
	if got := e.End(60 * des.Second); got != 15*des.Second {
		t.Errorf("End = %v, want 15s", got)
	}
}

func TestExperimentSpecString(t *testing.T) {
	e := ExperimentSpec{Nr: 3, Kind: AttackDelay, Targets: []string{"vehicle.2"},
		Value: 1.2, Start: 17 * des.Second, Duration: 5 * des.Second}
	s := e.String()
	for _, want := range []string{"#3", "delay", "1.2", "17s", "vehicle.2"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestBuildModelPerKind(t *testing.T) {
	for _, kind := range []AttackKind{AttackDelay, AttackDoS, AttackPacketLoss, AttackReplay} {
		e := ExperimentSpec{Kind: kind, Targets: []string{"v2"}, Value: 0.5}
		m, err := e.buildModel(60*des.Second, 1)
		if err != nil {
			t.Errorf("%v: %v", kind, err)
			continue
		}
		if m.Name() != kind.String() {
			t.Errorf("model name %q for kind %v", m.Name(), kind)
		}
	}
	if _, err := (ExperimentSpec{Kind: 0, Targets: []string{"v"}}).buildModel(des.Second, 1); err == nil {
		t.Error("unknown kind built")
	}
}

func TestPaperDelayCampaignGrid(t *testing.T) {
	s := PaperDelayCampaign()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper delay campaign invalid: %v", err)
	}
	// Table II: 25 starts * 15 values * 30 durations = 11250.
	if len(s.Starts) != 25 || len(s.Values) != 15 || len(s.Durations) != 30 {
		t.Errorf("grid %dx%dx%d, want 25x15x30", len(s.Starts), len(s.Values), len(s.Durations))
	}
	if s.NumExperiments() != 11250 {
		t.Errorf("NumExperiments = %d, want 11250", s.NumExperiments())
	}
	if s.Starts[0] != 17*des.Second || s.Starts[24] != 21800*des.Millisecond {
		t.Errorf("starts [%v..%v], want [17s..21.8s]", s.Starts[0], s.Starts[24])
	}
	if s.Values[0] != 0.2 || s.Values[14] != 3.0 {
		t.Errorf("values [%v..%v], want [0.2..3.0]", s.Values[0], s.Values[14])
	}
	if s.Durations[0] != des.Second || s.Durations[29] != 30*des.Second {
		t.Errorf("durations [%v..%v], want [1s..30s]", s.Durations[0], s.Durations[29])
	}
	if len(s.Targets) != 1 || s.Targets[0] != "vehicle.2" {
		t.Errorf("targets = %v, want Vehicle 2", s.Targets)
	}
}

func TestPaperDoSCampaignGrid(t *testing.T) {
	s := PaperDoSCampaign()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper DoS campaign invalid: %v", err)
	}
	if s.NumExperiments() != 25 {
		t.Errorf("NumExperiments = %d, want 25", s.NumExperiments())
	}
	if s.Attack != AttackDoS {
		t.Errorf("attack = %v", s.Attack)
	}
	// DoS: active until the end of the simulation.
	if s.Durations[0] != 60*des.Second {
		t.Errorf("duration = %v, want horizon", s.Durations[0])
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCampaignFactoryOverridesKind(t *testing.T) {
	var built int
	setup := CampaignSetup{
		Factory: func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error) {
			built++
			return NewOmissionFault(spec.Targets...)
		},
		Targets:   []string{"vehicle.2"},
		Values:    []float64{1},
		Starts:    []des.Time{17 * des.Second},
		Durations: []des.Time{des.Second},
	}
	if err := setup.Validate(); err != nil {
		t.Fatalf("factory setup invalid: %v", err)
	}
	specs := setup.Experiments()
	m, err := specs[0].buildModel(60*des.Second, 1)
	if err != nil {
		t.Fatalf("buildModel: %v", err)
	}
	if m.Name() != "omission" || built != 1 {
		t.Errorf("factory not used: %q built=%d", m.Name(), built)
	}
}

func TestCampaignFactoryNilModelRejected(t *testing.T) {
	spec := ExperimentSpec{
		Factory: func(ExperimentSpec, des.Time, uint64) (AttackModel, error) { return nil, nil },
		Targets: []string{"v"},
	}
	if _, err := spec.buildModel(des.Second, 1); err == nil {
		t.Error("nil factory model accepted")
	}
}
