package core

import (
	"testing"

	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

func TestNewDelayAttackValidation(t *testing.T) {
	if _, err := NewDelayAttack(-des.Second, "v2"); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := NewDelayAttack(des.Second); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := NewDelayAttack(des.Second, ""); err == nil {
		t.Error("empty target accepted")
	}
	a, err := NewDelayAttack(2*des.Second, "v2", "v3")
	if err != nil {
		t.Fatalf("NewDelayAttack: %v", err)
	}
	if a.Name() != "delay" || a.Delay() != 2*des.Second {
		t.Errorf("a = %v %v", a.Name(), a.Delay())
	}
	got := a.Targets()
	if len(got) != 2 || got[0] != "v2" || got[1] != "v3" {
		t.Errorf("Targets = %v", got)
	}
}

func TestDelayAttackIntercept(t *testing.T) {
	a, _ := NewDelayAttack(2*des.Second, "v2")
	tests := []struct {
		name     string
		src, dst string
		hit      bool
	}{
		{name: "target sends", src: "v2", dst: "v3", hit: true},
		{name: "target receives", src: "v1", dst: "v2", hit: true},
		{name: "bystander link", src: "v3", dst: "v4", hit: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := a.Intercept(0, tt.src, tt.dst, mac.Frame{})
			if v.OverrideDelay != tt.hit {
				t.Errorf("OverrideDelay = %v, want %v", v.OverrideDelay, tt.hit)
			}
			if tt.hit && v.Delay != 2*des.Second {
				t.Errorf("Delay = %v", v.Delay)
			}
			if v.Drop {
				t.Error("delay attack dropped a frame")
			}
		})
	}
}

func TestDoSAttack(t *testing.T) {
	if _, err := NewDoSAttack(0, "v2"); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewDoSAttack(60 * des.Second); err == nil {
		t.Error("no targets accepted")
	}
	a, err := NewDoSAttack(60*des.Second, "v2")
	if err != nil {
		t.Fatalf("NewDoSAttack: %v", err)
	}
	if a.Name() != "dos" {
		t.Errorf("Name = %q", a.Name())
	}
	v := a.Intercept(0, "v2", "v1", mac.Frame{})
	if !v.OverrideDelay || v.Delay != 60*des.Second {
		t.Errorf("verdict = %+v, want PD pinned to horizon", v)
	}
	if v := a.Intercept(0, "v3", "v4", mac.Frame{}); v.OverrideDelay {
		t.Error("bystander link attacked")
	}
}

func TestPacketLossAttack(t *testing.T) {
	if _, err := NewPacketLossAttack(1.5, rng.New(1, "x"), "v2"); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := NewPacketLossAttack(-0.1, rng.New(1, "x"), "v2"); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := NewPacketLossAttack(0.5, nil, "v2"); err == nil {
		t.Error("nil rng accepted")
	}
	a, err := NewPacketLossAttack(1.0, rng.New(1, "x"), "v2")
	if err != nil {
		t.Fatalf("NewPacketLossAttack: %v", err)
	}
	if a.Name() != "packet-loss" {
		t.Errorf("Name = %q", a.Name())
	}
	for i := 0; i < 10; i++ {
		if !a.Intercept(0, "v2", "v1", mac.Frame{}).Drop {
			t.Fatal("p=1 jammer let a frame through")
		}
	}
	if a.Intercept(0, "v3", "v4", mac.Frame{}).Drop {
		t.Error("bystander frame dropped")
	}
	never, _ := NewPacketLossAttack(0, rng.New(1, "x"), "v2")
	for i := 0; i < 10; i++ {
		if never.Intercept(0, "v2", "v1", mac.Frame{}).Drop {
			t.Fatal("p=0 jammer dropped a frame")
		}
	}
}

func TestFalsificationAttack(t *testing.T) {
	if _, err := NewFalsificationAttack(nil, "v2"); err == nil {
		t.Error("nil falsifier accepted")
	}
	a, err := NewFalsificationAttack(func(b msg.Beacon) msg.Beacon {
		b.Accel = 99
		return b
	}, "v2")
	if err != nil {
		t.Fatalf("NewFalsificationAttack: %v", err)
	}
	if a.Name() != "falsification" {
		t.Errorf("Name = %q", a.Name())
	}
	orig := msg.Beacon{Source: "v2", Accel: 1.5}
	origFrame := mac.Frame{Src: "v2", Beacon: orig, HasBeacon: true}
	v := a.Intercept(0, "v2", "v3", origFrame)
	if !v.OverrideBeacon || v.Beacon.Accel != 99 {
		t.Errorf("verdict = %+v, want falsified accel", v)
	}
	if origFrame.Beacon.Accel != 1.5 {
		t.Error("original beacon mutated")
	}
	// Only frames SENT by the target are falsified.
	if v := a.Intercept(0, "v1", "v2", origFrame); v.OverrideBeacon {
		t.Error("frame to target falsified")
	}
	// Non-beacon payloads pass through.
	if v := a.Intercept(0, "v2", "v3", mac.Frame{Src: "v2", Payload: "not a beacon"}); v.OverrideBeacon {
		t.Error("non-beacon payload replaced")
	}
}

func TestReplayAttack(t *testing.T) {
	if _, err := NewReplayAttack(0, "v2"); err == nil {
		t.Error("zero age accepted")
	}
	a, err := NewReplayAttack(des.Second, "v2")
	if err != nil {
		t.Fatalf("NewReplayAttack: %v", err)
	}
	if a.Name() != "replay" {
		t.Errorf("Name = %q", a.Name())
	}
	if v := a.Intercept(0, "v2", "v1", mac.Frame{}); !v.OverrideDelay || v.Delay != des.Second {
		t.Errorf("verdict = %+v", v)
	}
	if v := a.Intercept(0, "v1", "v2", mac.Frame{}); v.OverrideDelay {
		t.Error("replay attacked frames TO the target")
	}
}
