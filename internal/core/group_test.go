package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"comfase/internal/phy"
	"comfase/internal/platoon"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// groupEngine returns an engine on a shortened paper scenario so group
// tests stay fast while still covering an attack window with real
// braking dynamics.
func groupEngine(t *testing.T, mut func(*EngineConfig)) *Engine {
	t.Helper()
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 30 * des.Second
	cfg := EngineConfig{
		Scenario: ts,
		Comm:     scenario.PaperCommModel(),
		Seed:     7,
	}
	if mut != nil {
		mut(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// groupSpecs is a sibling block sharing one start: the paper's delay
// attack on vehicle.2 with varying values and durations.
func groupSpecs(start des.Time) []ExperimentSpec {
	setup := CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.4, 1.0, 2.0},
		Starts:    []des.Time{start},
		Durations: []des.Time{2 * des.Second, 5 * des.Second, 20 * des.Second},
	}
	return setup.Experiments()
}

// resultsEqual compares classified results to the bit level: forked runs
// must reproduce fresh runs exactly, not approximately.
func resultsEqual(a, b ExperimentResult) bool {
	if a.Spec.Nr != b.Spec.Nr || a.Outcome != b.Outcome || a.Collider != b.Collider {
		return false
	}
	if math.Float64bits(a.MaxDecel) != math.Float64bits(b.MaxDecel) ||
		math.Float64bits(a.MaxSpeedDev) != math.Float64bits(b.MaxSpeedDev) {
		return false
	}
	if !reflect.DeepEqual(a.MaxDecelPerVehicle, b.MaxDecelPerVehicle) {
		return false
	}
	return reflect.DeepEqual(a.Collisions, b.Collisions)
}

func TestGroupForkMatchesFreshRuns(t *testing.T) {
	specs := groupSpecs(19 * des.Second)

	fresh := groupEngine(t, nil)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperiment(spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, nil)
	gs, err := forked.BeginGroup(context.Background(), specs[0].Start)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	for i, spec := range specs {
		res, err := gs.RunExperiment(context.Background(), spec)
		if err != nil {
			t.Fatalf("forked %v: %v", spec, err)
		}
		if !resultsEqual(res, want[i]) {
			t.Errorf("experiment %d diverged:\nfresh  %+v\nforked %+v", spec.Nr, want[i], res)
		}
	}
	if !gs.Healthy() {
		t.Error("session unexpectedly poisoned")
	}
}

func TestGroupForkMatchesFreshWithBudgetAndInvariants(t *testing.T) {
	// Budget + invariants + cancelable context: the configuration the
	// campaign runner uses. The forked path must reproduce fresh results
	// under the full interrupt-poll cadence, not just the bare kernel.
	mut := func(cfg *EngineConfig) {
		cfg.Invariants = true
		cfg.EventBudget = 50_000_000
		cfg.CancelCheckEvents = 256
	}
	specs := groupSpecs(19 * des.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fresh := groupEngine(t, mut)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperimentCtx(ctx, spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, mut)
	got, err := forked.RunExperimentGroup(ctx, specs)
	if err != nil {
		t.Fatalf("RunExperimentGroup: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !resultsEqual(got[i], want[i]) {
			t.Errorf("experiment %d diverged:\nfresh  %+v\nforked %+v", want[i].Spec.Nr, want[i], got[i])
		}
	}
}

func TestGroupForkMatchesFreshJamming(t *testing.T) {
	// Jamming exercises the Installer path and noise receptions — the
	// reception-pool restore's hardest case.
	setup := CampaignSetup{
		Attack:    AttackJamming,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{20, 30},
		Starts:    []des.Time{19 * des.Second},
		Durations: []des.Time{3 * des.Second, 8 * des.Second},
	}
	specs := setup.Experiments()

	fresh := groupEngine(t, nil)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperiment(spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, nil)
	got, err := forked.RunExperimentGroup(context.Background(), specs)
	if err != nil {
		t.Fatalf("RunExperimentGroup: %v", err)
	}
	for i := range got {
		if !resultsEqual(got[i], want[i]) {
			t.Errorf("experiment %d diverged:\nfresh  %+v\nforked %+v", want[i].Spec.Nr, want[i], got[i])
		}
	}
}

func TestBeginGroupRejectsFadingChannel(t *testing.T) {
	eng := groupEngine(t, func(cfg *EngineConfig) {
		cfg.Comm.Channel.Fading = phy.NewNakagamiFading(rng.New(1, "fading"))
	})
	_, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("err = %v, want ErrNotCheckpointable", err)
	}
	// The fallback wrapper must still complete the group.
	specs := groupSpecs(19 * des.Second)[:1]
	if _, err := eng.RunExperimentGroup(context.Background(), specs); err != nil {
		t.Fatalf("RunExperimentGroup fallback: %v", err)
	}
}

// hiddenStateController wraps a CACC but hides its state interface,
// modelling a user-supplied stateful controller the checkpoint layer
// cannot capture.
type hiddenStateController struct{ inner *platoon.CACC }

func (h hiddenStateController) Name() string { return "hidden" }
func (h hiddenStateController) Reset()       { h.inner.Reset() }
func (h hiddenStateController) Update(dt float64, self platoon.Snapshot, leader, pred platoon.KinState) float64 {
	return h.inner.Update(dt, self, leader, pred)
}

func TestBeginGroupRejectsOpaqueController(t *testing.T) {
	eng := groupEngine(t, func(cfg *EngineConfig) {
		cfg.Controllers = func(int) platoon.Controller {
			return hiddenStateController{inner: platoon.DefaultCACC()}
		}
	})
	_, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("err = %v, want ErrNotCheckpointable", err)
	}
}

func TestGroupPoisonOnPanicFallsBack(t *testing.T) {
	// A model that panics during install poisons the session; the group
	// wrapper retries fresh, where it panics again and surfaces as a
	// PanicError — identical to the fresh path's containment.
	boom := func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error) {
		return panicOnInstallModel{}, nil
	}
	setup := CampaignSetup{
		Factory:   boom,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{1},
		Starts:    []des.Time{19 * des.Second},
		Durations: []des.Time{2 * des.Second},
	}
	eng := groupEngine(t, nil)
	gs, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	_, err = gs.RunExperiment(context.Background(), setup.Experiments()[0])
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if gs.Healthy() {
		t.Error("session still healthy after panic")
	}
	if _, err := gs.RunExperiment(context.Background(), setup.Experiments()[0]); !errors.Is(err, ErrGroupPoisoned) {
		t.Errorf("err = %v, want ErrGroupPoisoned", err)
	}
}

func TestGroupRejectsWrongStart(t *testing.T) {
	eng := groupEngine(t, nil)
	gs, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	spec := groupSpecs(18 * des.Second)[0]
	if _, err := gs.RunExperiment(context.Background(), spec); !errors.Is(err, ErrWrongGroup) {
		t.Fatalf("err = %v, want ErrWrongGroup", err)
	}
	if !gs.Healthy() {
		t.Error("wrong-start rejection must not poison the session")
	}
}

// panicOnInstallModel panics when the engine installs it.
type panicOnInstallModel struct{}

func (panicOnInstallModel) Name() string      { return "panic-on-install" }
func (panicOnInstallModel) Targets() []string { return []string{"vehicle.2"} }
func (panicOnInstallModel) Install(*scenario.Simulation) error {
	panic("panic-on-install")
}
func (panicOnInstallModel) Uninstall(*scenario.Simulation) error { return nil }
