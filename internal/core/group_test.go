package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"comfase/internal/mac"
	"comfase/internal/nic"
	"comfase/internal/phy"
	"comfase/internal/platoon"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// groupEngine returns an engine on a shortened paper scenario so group
// tests stay fast while still covering an attack window with real
// braking dynamics.
func groupEngine(t *testing.T, mut func(*EngineConfig)) *Engine {
	t.Helper()
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 30 * des.Second
	cfg := EngineConfig{
		Scenario: ts,
		Comm:     scenario.PaperCommModel(),
		Seed:     7,
	}
	if mut != nil {
		mut(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// groupSpecs is a sibling block sharing one start: the paper's delay
// attack on vehicle.2 with varying values and durations.
func groupSpecs(start des.Time) []ExperimentSpec {
	setup := CampaignSetup{
		Attack:    AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.4, 1.0, 2.0},
		Starts:    []des.Time{start},
		Durations: []des.Time{2 * des.Second, 5 * des.Second, 20 * des.Second},
	}
	return setup.Experiments()
}

// resultsEqual compares classified results to the bit level: forked runs
// must reproduce fresh runs exactly, not approximately.
func resultsEqual(a, b ExperimentResult) bool {
	if a.Spec.Nr != b.Spec.Nr || a.Outcome != b.Outcome || a.Collider != b.Collider {
		return false
	}
	if math.Float64bits(a.MaxDecel) != math.Float64bits(b.MaxDecel) ||
		math.Float64bits(a.MaxSpeedDev) != math.Float64bits(b.MaxSpeedDev) {
		return false
	}
	if !reflect.DeepEqual(a.MaxDecelPerVehicle, b.MaxDecelPerVehicle) {
		return false
	}
	return reflect.DeepEqual(a.Collisions, b.Collisions)
}

func TestGroupForkMatchesFreshRuns(t *testing.T) {
	specs := groupSpecs(19 * des.Second)

	fresh := groupEngine(t, nil)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperiment(spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, nil)
	gs, err := forked.BeginGroup(context.Background(), specs[0].Start)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	for i, spec := range specs {
		res, err := gs.RunExperiment(context.Background(), spec)
		if err != nil {
			t.Fatalf("forked %v: %v", spec, err)
		}
		if !resultsEqual(res, want[i]) {
			t.Errorf("experiment %d diverged:\nfresh  %+v\nforked %+v", spec.Nr, want[i], res)
		}
	}
	if !gs.Healthy() {
		t.Error("session unexpectedly poisoned")
	}
}

func TestGroupForkMatchesFreshWithBudgetAndInvariants(t *testing.T) {
	// Budget + invariants + cancelable context: the configuration the
	// campaign runner uses. The forked path must reproduce fresh results
	// under the full interrupt-poll cadence, not just the bare kernel.
	mut := func(cfg *EngineConfig) {
		cfg.Invariants = true
		cfg.EventBudget = 50_000_000
		cfg.CancelCheckEvents = 256
	}
	specs := groupSpecs(19 * des.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fresh := groupEngine(t, mut)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperimentCtx(ctx, spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, mut)
	got, err := forked.RunExperimentGroup(ctx, specs)
	if err != nil {
		t.Fatalf("RunExperimentGroup: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !resultsEqual(got[i], want[i]) {
			t.Errorf("experiment %d diverged:\nfresh  %+v\nforked %+v", want[i].Spec.Nr, want[i], got[i])
		}
	}
}

func TestGroupForkMatchesFreshJamming(t *testing.T) {
	// Jamming exercises the Installer path and noise receptions — the
	// reception-pool restore's hardest case.
	setup := CampaignSetup{
		Attack:    AttackJamming,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{20, 30},
		Starts:    []des.Time{19 * des.Second},
		Durations: []des.Time{3 * des.Second, 8 * des.Second},
	}
	specs := setup.Experiments()

	fresh := groupEngine(t, nil)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperiment(spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, nil)
	got, err := forked.RunExperimentGroup(context.Background(), specs)
	if err != nil {
		t.Fatalf("RunExperimentGroup: %v", err)
	}
	for i := range got {
		if !resultsEqual(got[i], want[i]) {
			t.Errorf("experiment %d diverged:\nfresh  %+v\nforked %+v", want[i].Spec.Nr, want[i], got[i])
		}
	}
}

func TestBeginGroupRejectsFadingChannel(t *testing.T) {
	eng := groupEngine(t, func(cfg *EngineConfig) {
		cfg.Comm.Channel.Fading = phy.NewNakagamiFading(rng.New(1, "fading"))
	})
	_, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("err = %v, want ErrNotCheckpointable", err)
	}
	// The fallback wrapper must still complete the group.
	specs := groupSpecs(19 * des.Second)[:1]
	if _, err := eng.RunExperimentGroup(context.Background(), specs); err != nil {
		t.Fatalf("RunExperimentGroup fallback: %v", err)
	}
}

// hiddenStateController wraps a CACC but hides its state interface,
// modelling a user-supplied stateful controller the checkpoint layer
// cannot capture.
type hiddenStateController struct{ inner *platoon.CACC }

func (h hiddenStateController) Name() string { return "hidden" }
func (h hiddenStateController) Reset()       { h.inner.Reset() }
func (h hiddenStateController) Update(dt float64, self platoon.Snapshot, leader, pred platoon.KinState) float64 {
	return h.inner.Update(dt, self, leader, pred)
}

func TestBeginGroupRejectsOpaqueController(t *testing.T) {
	eng := groupEngine(t, func(cfg *EngineConfig) {
		cfg.Controllers = func(int) platoon.Controller {
			return hiddenStateController{inner: platoon.DefaultCACC()}
		}
	})
	_, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("err = %v, want ErrNotCheckpointable", err)
	}
}

func TestGroupPanicTaintsAndHeals(t *testing.T) {
	// A model that panics during install taints the session — its
	// workspace may be corrupted, so it is discarded — but the session
	// stays healthy: the next fork rebuilds the prefix from scratch and
	// runs normally. The panic itself surfaces as a PanicError, identical
	// to the fresh path's containment.
	boom := func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error) {
		return panicOnInstallModel{}, nil
	}
	setup := CampaignSetup{
		Factory:   boom,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{1},
		Starts:    []des.Time{19 * des.Second},
		Durations: []des.Time{2 * des.Second},
	}
	eng := groupEngine(t, nil)
	gs, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	_, err = gs.RunExperiment(context.Background(), setup.Experiments()[0])
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if !gs.Healthy() {
		t.Fatal("panic must taint, not poison: session should stay healthy")
	}

	// The healed session must reproduce fresh results bit-for-bit.
	good := groupSpecs(19 * des.Second)[0]
	want, err := groupEngine(t, nil).RunExperiment(good)
	if err != nil {
		t.Fatalf("fresh %v: %v", good, err)
	}
	got, err := gs.RunExperiment(context.Background(), good)
	if err != nil {
		t.Fatalf("healed forked %v: %v", good, err)
	}
	if !resultsEqual(got, want) {
		t.Errorf("healed session diverged:\nfresh  %+v\nforked %+v", want, got)
	}
}

func TestGroupRejectsWrongStart(t *testing.T) {
	eng := groupEngine(t, nil)
	gs, err := eng.BeginGroup(context.Background(), 19*des.Second)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	spec := groupSpecs(18 * des.Second)[0]
	if _, err := gs.RunExperiment(context.Background(), spec); !errors.Is(err, ErrWrongGroup) {
		t.Fatalf("err = %v, want ErrWrongGroup", err)
	}
	if !gs.Healthy() {
		t.Error("wrong-start rejection must not poison the session")
	}
}

func TestGroupChainMatchesFreshRuns(t *testing.T) {
	// The checkpoint trie: per-value duration chains must reproduce fresh
	// runs bit-for-bit. groupSpecs expands value-major with ascending
	// durations, so consecutive same-value specs form the chains.
	specs := groupSpecs(19 * des.Second)

	fresh := groupEngine(t, nil)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperiment(spec)
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, nil)
	gs, err := forked.BeginGroup(context.Background(), specs[0].Start)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	for i, spec := range specs {
		retain := i+1 < len(specs) && specs[i+1].Value == spec.Value
		res, err := gs.RunExperimentChained(context.Background(), spec, retain)
		if err != nil {
			t.Fatalf("chained %v: %v", spec, err)
		}
		if !resultsEqual(res, want[i]) {
			t.Errorf("experiment %d diverged:\nfresh   %+v\nchained %+v", spec.Nr, want[i], res)
		}
	}
	if !gs.Healthy() {
		t.Error("session unexpectedly poisoned")
	}
}

func TestGroupTriePanicPoisonsSubtreeOnly(t *testing.T) {
	// A panic at an inner trie node (a chained sibling's segment) must
	// fail only that subtree: the failing experiment surfaces a
	// PanicError exactly as the fresh path would, and the session heals
	// so the NEXT value chain reproduces fresh results bit-for-bit.
	const (
		start   = 19 * des.Second
		trigger = start + 3*des.Second // inside the 5s duration, past the 2s one
	)
	factory := func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error) {
		delay, err := NewDelayAttack(des.Time(spec.Value*float64(des.Second)), spec.Targets...)
		if err != nil {
			return nil, err
		}
		if spec.Value == 2.0 {
			return timeBombModel{inner: delay, trigger: trigger}, nil
		}
		return delay, nil
	}
	setup := CampaignSetup{
		Factory:   factory,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{2.0, 0.4}, // bombed chain first, healthy chain second
		Starts:    []des.Time{start},
		Durations: []des.Time{2 * des.Second, 5 * des.Second},
	}
	specs := setup.Experiments()

	fresh := groupEngine(t, nil)
	want := make([]ExperimentResult, len(specs))
	for i, spec := range specs {
		res, err := fresh.RunExperiment(spec)
		if i == 1 {
			// The bomb triggers inside this spec's attacked window on the
			// fresh path too — parity with the chained failure below.
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("fresh %v: err = %v, want PanicError", spec, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("fresh %v: %v", spec, err)
		}
		want[i] = res
	}

	forked := groupEngine(t, nil)
	gs, err := forked.BeginGroup(context.Background(), start)
	if err != nil {
		t.Fatalf("BeginGroup: %v", err)
	}
	defer gs.Close()
	for i, spec := range specs {
		retain := i+1 < len(specs) && specs[i+1].Value == spec.Value
		res, err := gs.RunExperimentChained(context.Background(), spec, retain)
		if i == 1 {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("chained %v: err = %v, want PanicError", spec, err)
			}
			if !gs.Healthy() {
				t.Fatal("inner-node panic must taint, not poison, the session")
			}
			continue
		}
		if err != nil {
			t.Fatalf("chained %v: %v", spec, err)
		}
		if !resultsEqual(res, want[i]) {
			t.Errorf("experiment %d diverged:\nfresh   %+v\nchained %+v", spec.Nr, want[i], res)
		}
	}
}

// timeBombModel is a chainable interceptor that panics as soon as it
// intercepts a frame at or past its trigger time. The panic is a pure
// function of simulation time, so fresh, forked and chained executions of
// the same spec fail identically — the ChainableModel contract holds even
// for the failure.
type timeBombModel struct {
	inner   *DelayAttack
	trigger des.Time
}

func (m timeBombModel) Name() string              { return "time-bomb" }
func (m timeBombModel) Targets() []string         { return m.inner.Targets() }
func (m timeBombModel) ChainableAcrossDurations() {}
func (m timeBombModel) Intercept(t des.Time, src, dst string, f mac.Frame) nic.Verdict {
	if t >= m.trigger {
		panic("time-bomb")
	}
	return m.inner.Intercept(t, src, dst, f)
}

// panicOnInstallModel panics when the engine installs it.
type panicOnInstallModel struct{}

func (panicOnInstallModel) Name() string      { return "panic-on-install" }
func (panicOnInstallModel) Targets() []string { return []string{"vehicle.2"} }
func (panicOnInstallModel) Install(*scenario.Simulation) error {
	panic("panic-on-install")
}
func (panicOnInstallModel) Uninstall(*scenario.Simulation) error { return nil }
