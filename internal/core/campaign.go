package core

import (
	"errors"
	"fmt"
	"strings"

	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
)

// AttackKind selects a predefined attack model (the attackModel parameter
// of Algorithm 1 line 4). It predates the attack registry and remains the
// compact way to address the paper's five models; registry-only families
// are addressed by name through CampaignSetup.AttackName.
type AttackKind int

// The shipped attack models.
const (
	AttackDelay AttackKind = iota + 1
	AttackDoS
	AttackPacketLoss
	AttackReplay
	AttackJamming
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case AttackDelay:
		return "delay"
	case AttackDoS:
		return "dos"
	case AttackPacketLoss:
		return "packet-loss"
	case AttackReplay:
		return "replay"
	case AttackJamming:
		return "jamming"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// Valid reports whether k names a shipped model.
func (k AttackKind) Valid() bool { return k >= AttackDelay && k <= AttackJamming }

// ParseAttackKind inverts String: it maps an attack name back to its
// AttackKind. Both the JSON config layer and the campaign-resume path
// round-trip attack kinds through this pair. Names are resolved against
// the attack registry, so unknown names carry a nearest-match suggestion
// and the accepted-names list; registry-only families (no enum value)
// are rejected here — address those via CampaignSetup.AttackName.
func ParseAttackKind(s string) (AttackKind, error) {
	e, err := LookupAttack(s)
	if err != nil {
		return 0, err
	}
	if e.Kind == 0 {
		return 0, fmt.Errorf("core: attack %q has no AttackKind; reference it by name", s)
	}
	return e.Kind, nil
}

// ModelFactory builds a custom attack/fault model for one experiment.
// The paper stresses that "fault and attack models are implemented in
// separate scripts, facilitating addition of new models" (§V); a factory
// is the Go equivalent — any AttackModel (falsification forgers, sybil
// nodes, calibration faults, ...) can be swept over the campaign grid.
type ModelFactory func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error)

// CampaignSetup mirrors setCampaign(attackModel, targetVehicles,
// attackStartVector, attackValuesVector, attackEndVector) of Algorithm 1.
// The experiment grid is the cross product Starts x Values x Durations,
// exactly the paper's three nested loops.
type CampaignSetup struct {
	// Attack selects a predefined model by enum. Ignored when Factory or
	// AttackName is set.
	Attack AttackKind
	// AttackName selects a registered attack family by name, reaching
	// registry-only families the AttackKind enum cannot. It takes
	// precedence over Attack and is the label written to result rows.
	AttackName string
	// Params are extra attack parameters validated against the family's
	// registry schema (nil = all defaults).
	Params param.Params
	// Factory, when non-nil, builds a custom model per experiment,
	// overriding Attack and AttackName (which then only provide the
	// result label).
	Factory ModelFactory
	// Scenario labels the scenario cell these experiments run in; matrix
	// campaigns stamp it so sinks and classification can group per cell.
	// Empty for plain single-scenario campaigns.
	Scenario string
	// Base offsets the experiment numbers: the grid is numbered
	// Base..Base+NumExperiments()-1. Matrix campaigns use it to keep
	// expNr globally unique across cells; zero for plain campaigns.
	Base int
	// Targets are the attacked vehicle IDs (paper: "vehicle.2").
	Targets []string
	// Values is the attackValuesVector. Unit depends on the model:
	// seconds of propagation delay for delay/DoS/replay, drop
	// probability for packet loss (see each registry entry's ValueDoc).
	Values []float64
	// Starts is the attackStartVector.
	Starts []des.Time
	// Durations encodes the attackEndVector relative to each start
	// (paper: attackStartTime + 1..30 s). A duration that reaches past
	// the simulation horizon is clipped at totalSimTime, which is how
	// DoS campaigns express "until the simulation ends".
	Durations []des.Time
}

// attackName resolves the registry name the setup addresses, or "".
func (c CampaignSetup) attackName() string {
	if c.AttackName != "" {
		return c.AttackName
	}
	if c.Attack.Valid() {
		return c.Attack.String()
	}
	return ""
}

// Validate reports the first setup problem, or nil.
func (c CampaignSetup) Validate() error {
	// Resolve the attack family up front: named setups get schema and
	// bounds checking here, before any simulation runs.
	allowNegative := c.Attack == AttackJamming
	if name := c.attackName(); name != "" {
		entry, err := LookupAttack(name)
		if err != nil {
			return err
		}
		if c.AttackName != "" && c.Attack.Valid() && entry.Kind != c.Attack {
			return fmt.Errorf("core: attack name %q conflicts with kind %v", c.AttackName, c.Attack)
		}
		if _, err := entry.Schema.Apply(c.Params); err != nil {
			return fmt.Errorf("core: attack %q: %w", name, err)
		}
		allowNegative = entry.AllowNegativeValues
	} else if c.Factory == nil {
		return fmt.Errorf("core: unknown attack kind %v (known attacks: %s)",
			c.Attack, strings.Join(AttackNames(), ", "))
	}
	switch {
	case c.Base < 0:
		return fmt.Errorf("core: negative experiment base %d", c.Base)
	case len(c.Targets) == 0:
		return errors.New("core: campaign needs target vehicles")
	case len(c.Values) == 0:
		return errors.New("core: campaign needs attack values")
	case len(c.Starts) == 0:
		return errors.New("core: campaign needs attack start times")
	case len(c.Durations) == 0:
		return errors.New("core: campaign needs attack durations")
	}
	// Jamming values are transmit powers in dBm and may legitimately be
	// negative; all other families use non-negative seconds/probabilities.
	if !allowNegative {
		for _, v := range c.Values {
			if v < 0 {
				return fmt.Errorf("core: negative attack value %v", v)
			}
		}
	}
	for _, s := range c.Starts {
		if s < 0 {
			return fmt.Errorf("core: negative attack start %v", s)
		}
	}
	for _, d := range c.Durations {
		if d <= 0 {
			return fmt.Errorf("core: non-positive attack duration %v", d)
		}
	}
	return nil
}

// NumExperiments returns the size of the experiment grid.
func (c CampaignSetup) NumExperiments() int {
	return len(c.Starts) * len(c.Values) * len(c.Durations)
}

// Experiments expands the grid in the paper's loop order (start, value,
// duration), numbering from Base.
func (c CampaignSetup) Experiments() []ExperimentSpec {
	out := make([]ExperimentSpec, 0, c.NumExperiments())
	n := c.Base
	for _, start := range c.Starts {
		for _, value := range c.Values {
			for _, dur := range c.Durations {
				out = append(out, ExperimentSpec{
					Nr:       n,
					Kind:     c.Attack,
					Attack:   c.AttackName,
					Params:   c.Params,
					Scenario: c.Scenario,
					Factory:  c.Factory,
					Targets:  c.Targets,
					Value:    value,
					Start:    start,
					Duration: dur,
				})
				n++
			}
		}
	}
	return out
}

// ExperimentSpec is one attack injection experiment of a campaign.
type ExperimentSpec struct {
	// Nr is the expNr of Algorithm 1 (globally unique across the cells
	// of a matrix campaign).
	Nr int
	// Kind is the attack model enum. Ignored when Factory or Attack is
	// set.
	Kind AttackKind
	// Attack is the registry name of the attack family ("" = use Kind).
	Attack string
	// Params are the family's extra parameters (validated at build).
	Params param.Params
	// Scenario is the scenario-cell label ("" outside matrix campaigns).
	Scenario string
	// Factory builds a custom model for this experiment (overrides
	// Kind and Attack).
	Factory ModelFactory
	// Targets are the attacked vehicles.
	Targets []string
	// Value is the attack value (PD seconds, drop probability, ...).
	Value float64
	// Start is the attackStartTime.
	Start des.Time
	// Duration is attackEndTime - attackStartTime before horizon
	// clipping.
	Duration des.Time
}

// AttackLabel is the attack name recorded in result rows: the registry
// name when the experiment was addressed by name, the enum name
// otherwise.
func (e ExperimentSpec) AttackLabel() string {
	if e.Attack != "" {
		return e.Attack
	}
	return e.Kind.String()
}

// End returns the attackEndTime clipped at the horizon.
func (e ExperimentSpec) End(horizon des.Time) des.Time {
	end := e.Start.Add(e.Duration)
	if end > horizon {
		return horizon
	}
	return end
}

// String renders a compact experiment label.
func (e ExperimentSpec) String() string {
	return fmt.Sprintf("#%d %s value=%g start=%v dur=%v targets=%s",
		e.Nr, e.AttackLabel(), e.Value, e.Start, e.Duration, describeTargets(e.Targets))
}

// buildModel instantiates the attack model for one experiment through
// the attack registry (or the experiment's custom Factory). horizon is
// the totalSimTime (the DoS PD value); seed derives stochastic attack
// streams.
func (e ExperimentSpec) buildModel(horizon des.Time, seed uint64) (AttackModel, error) {
	if e.Factory != nil {
		model, err := e.Factory(e, horizon, seed)
		if err != nil {
			return nil, err
		}
		if model == nil {
			return nil, errors.New("core: model factory returned nil")
		}
		return model, nil
	}
	name := e.Attack
	if name == "" {
		if !e.Kind.Valid() {
			return nil, fmt.Errorf("core: unknown attack kind %v", e.Kind)
		}
		name = e.Kind.String()
	}
	entry, err := LookupAttack(name)
	if err != nil {
		return nil, err
	}
	params, err := entry.Schema.Apply(e.Params)
	if err != nil {
		return nil, fmt.Errorf("core: attack %q: %w", name, err)
	}
	model, err := entry.Build(AttackContext{Spec: e, Params: params, Horizon: horizon, Seed: seed})
	if err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("core: attack %q builder returned nil", name)
	}
	return model, nil
}
