package core

import (
	"errors"
	"fmt"

	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// AttackKind selects a predefined attack model (the attackModel parameter
// of Algorithm 1 line 4).
type AttackKind int

// The shipped attack models.
const (
	AttackDelay AttackKind = iota + 1
	AttackDoS
	AttackPacketLoss
	AttackReplay
	AttackJamming
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case AttackDelay:
		return "delay"
	case AttackDoS:
		return "dos"
	case AttackPacketLoss:
		return "packet-loss"
	case AttackReplay:
		return "replay"
	case AttackJamming:
		return "jamming"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// Valid reports whether k names a shipped model.
func (k AttackKind) Valid() bool { return k >= AttackDelay && k <= AttackJamming }

// ParseAttackKind inverts String: it maps an attack name back to its
// AttackKind. Both the JSON config layer and the campaign-resume path
// round-trip attack kinds through this pair.
func ParseAttackKind(s string) (AttackKind, error) {
	switch s {
	case "delay":
		return AttackDelay, nil
	case "dos":
		return AttackDoS, nil
	case "packet-loss":
		return AttackPacketLoss, nil
	case "replay":
		return AttackReplay, nil
	case "jamming":
		return AttackJamming, nil
	default:
		return 0, fmt.Errorf("core: unknown attack kind %q", s)
	}
}

// ModelFactory builds a custom attack/fault model for one experiment.
// The paper stresses that "fault and attack models are implemented in
// separate scripts, facilitating addition of new models" (§V); a factory
// is the Go equivalent — any AttackModel (falsification forgers, sybil
// nodes, calibration faults, ...) can be swept over the campaign grid.
type ModelFactory func(spec ExperimentSpec, horizon des.Time, seed uint64) (AttackModel, error)

// CampaignSetup mirrors setCampaign(attackModel, targetVehicles,
// attackStartVector, attackValuesVector, attackEndVector) of Algorithm 1.
// The experiment grid is the cross product Starts x Values x Durations,
// exactly the paper's three nested loops.
type CampaignSetup struct {
	// Attack selects a predefined model. Ignored when Factory is set.
	Attack AttackKind
	// Factory, when non-nil, builds a custom model per experiment,
	// overriding Attack.
	Factory ModelFactory
	// Targets are the attacked vehicle IDs (paper: "vehicle.2").
	Targets []string
	// Values is the attackValuesVector. Unit depends on the model:
	// seconds of propagation delay for delay/DoS/replay, drop
	// probability for packet loss.
	Values []float64
	// Starts is the attackStartVector.
	Starts []des.Time
	// Durations encodes the attackEndVector relative to each start
	// (paper: attackStartTime + 1..30 s). A duration that reaches past
	// the simulation horizon is clipped at totalSimTime, which is how
	// DoS campaigns express "until the simulation ends".
	Durations []des.Time
}

// Validate reports the first setup problem, or nil.
func (c CampaignSetup) Validate() error {
	switch {
	case c.Factory == nil && !c.Attack.Valid():
		return fmt.Errorf("core: unknown attack kind %v", c.Attack)
	case len(c.Targets) == 0:
		return errors.New("core: campaign needs target vehicles")
	case len(c.Values) == 0:
		return errors.New("core: campaign needs attack values")
	case len(c.Starts) == 0:
		return errors.New("core: campaign needs attack start times")
	case len(c.Durations) == 0:
		return errors.New("core: campaign needs attack durations")
	}
	// Jamming values are transmit powers in dBm and may legitimately be
	// negative; all other kinds use non-negative seconds/probabilities.
	if c.Attack != AttackJamming {
		for _, v := range c.Values {
			if v < 0 {
				return fmt.Errorf("core: negative attack value %v", v)
			}
		}
	}
	for _, s := range c.Starts {
		if s < 0 {
			return fmt.Errorf("core: negative attack start %v", s)
		}
	}
	for _, d := range c.Durations {
		if d <= 0 {
			return fmt.Errorf("core: non-positive attack duration %v", d)
		}
	}
	return nil
}

// NumExperiments returns the size of the experiment grid.
func (c CampaignSetup) NumExperiments() int {
	return len(c.Starts) * len(c.Values) * len(c.Durations)
}

// Experiments expands the grid in the paper's loop order (start, value,
// duration).
func (c CampaignSetup) Experiments() []ExperimentSpec {
	out := make([]ExperimentSpec, 0, c.NumExperiments())
	n := 0
	for _, start := range c.Starts {
		for _, value := range c.Values {
			for _, dur := range c.Durations {
				out = append(out, ExperimentSpec{
					Nr:       n,
					Kind:     c.Attack,
					Factory:  c.Factory,
					Targets:  c.Targets,
					Value:    value,
					Start:    start,
					Duration: dur,
				})
				n++
			}
		}
	}
	return out
}

// ExperimentSpec is one attack injection experiment of a campaign.
type ExperimentSpec struct {
	// Nr is the expNr of Algorithm 1.
	Nr int
	// Kind is the attack model. Ignored when Factory is set.
	Kind AttackKind
	// Factory builds a custom model for this experiment (overrides
	// Kind).
	Factory ModelFactory
	// Targets are the attacked vehicles.
	Targets []string
	// Value is the attack value (PD seconds, drop probability, ...).
	Value float64
	// Start is the attackStartTime.
	Start des.Time
	// Duration is attackEndTime - attackStartTime before horizon
	// clipping.
	Duration des.Time
}

// End returns the attackEndTime clipped at the horizon.
func (e ExperimentSpec) End(horizon des.Time) des.Time {
	end := e.Start.Add(e.Duration)
	if end > horizon {
		return horizon
	}
	return end
}

// String renders a compact experiment label.
func (e ExperimentSpec) String() string {
	return fmt.Sprintf("#%d %s value=%g start=%v dur=%v targets=%s",
		e.Nr, e.Kind, e.Value, e.Start, e.Duration, describeTargets(e.Targets))
}

// buildModel instantiates the attack model for one experiment. horizon is
// the totalSimTime (the DoS PD value); seed derives stochastic attack
// streams.
func (e ExperimentSpec) buildModel(horizon des.Time, seed uint64) (AttackModel, error) {
	if e.Factory != nil {
		model, err := e.Factory(e, horizon, seed)
		if err != nil {
			return nil, err
		}
		if model == nil {
			return nil, errors.New("core: model factory returned nil")
		}
		return model, nil
	}
	switch e.Kind {
	case AttackDelay:
		return NewDelayAttack(des.FromSeconds(e.Value), e.Targets...)
	case AttackDoS:
		return NewDoSAttack(horizon, e.Targets...)
	case AttackPacketLoss:
		stream := rng.New(seed, fmt.Sprintf("attack.loss.%d", e.Nr))
		return NewPacketLossAttack(e.Value, stream, e.Targets...)
	case AttackReplay:
		return NewReplayAttack(des.FromSeconds(e.Value), e.Targets...)
	case AttackJamming:
		// Value is the jammer transmit power in dBm.
		return NewJammingAttack(e.Value, e.Targets...)
	default:
		return nil, fmt.Errorf("core: unknown attack kind %v", e.Kind)
	}
}

// PaperDelayCampaign returns Table II's delay campaign: PD values 0.2 to
// 3.0 s (0.2 steps), start times 17.0 to 21.8 s (0.2 steps), durations 1
// to 30 s (1 s steps) — 25*15*30 = 11250 experiments targeting Vehicle 2.
func PaperDelayCampaign() CampaignSetup {
	setup := CampaignSetup{
		Attack:  AttackDelay,
		Targets: []string{"vehicle.2"},
	}
	for v := 1; v <= 15; v++ {
		setup.Values = append(setup.Values, float64(v)*0.2)
	}
	for s := 0; s < 25; s++ {
		setup.Starts = append(setup.Starts, 17*des.Second+des.Time(s)*200*des.Millisecond)
	}
	for d := 1; d <= 30; d++ {
		setup.Durations = append(setup.Durations, des.Time(d)*des.Second)
	}
	return setup
}

// PaperDoSCampaign returns Table II's DoS campaign: 25 start times 17.0
// to 21.8 s, PD pinned to the 60 s horizon, attack active until the end
// of the simulation.
func PaperDoSCampaign() CampaignSetup {
	setup := CampaignSetup{
		Attack:    AttackDoS,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{60},
		Durations: []des.Time{60 * des.Second},
	}
	for s := 0; s < 25; s++ {
		setup.Starts = append(setup.Starts, 17*des.Second+des.Time(s)*200*des.Millisecond)
	}
	return setup
}
