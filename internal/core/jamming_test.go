package core

import (
	"testing"

	"comfase/internal/classify"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func TestNewJammingAttackValidation(t *testing.T) {
	if _, err := NewJammingAttack(23); err == nil {
		t.Error("no targets accepted")
	}
	a, err := NewJammingAttack(23, "vehicle.2")
	if err != nil {
		t.Fatalf("NewJammingAttack: %v", err)
	}
	if a.Name() != "jamming" || a.PowerDBm() != 23 {
		t.Errorf("a = %v %v", a.Name(), a.PowerDBm())
	}
}

func TestJammingInstallOnUnknownVehicle(t *testing.T) {
	a, _ := NewJammingAttack(23, "vehicle.99")
	sim, err := scenario.Build(scenario.PaperScenario(), scenario.PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := a.Install(sim); err == nil {
		t.Error("install on unknown vehicle accepted")
	}
}

func TestJammingInstallUninstallLifecycle(t *testing.T) {
	a, _ := NewJammingAttack(23, "vehicle.2")
	sim, err := scenario.Build(scenario.PaperScenario(), scenario.PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := a.Uninstall(sim); err == nil {
		t.Error("uninstall before install accepted")
	}
	if err := a.Install(sim); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if err := a.Install(sim); err == nil {
		t.Error("double install accepted")
	}
	if err := a.Uninstall(sim); err != nil {
		t.Fatalf("Uninstall: %v", err)
	}
}

// TestJammingPowerThreshold checks the physical plausibility of the
// RF-jamming model end to end: a jammer far below the noise floor is
// invisible; a strong jammer riding with Vehicle 2 silences the platoon's
// V2V channel and causes collisions, like the paper's DoS model but
// through the PHY rather than the propagation-delay parameter.
func TestJammingPowerThreshold(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	run := func(power float64) ExperimentResult {
		res, err := eng.RunExperiment(ExperimentSpec{
			Kind:     AttackJamming,
			Targets:  []string{"vehicle.2"},
			Value:    power,
			Start:    18 * des.Second,
			Duration: 10 * des.Second,
		})
		if err != nil {
			t.Fatalf("RunExperiment(%v dBm): %v", power, err)
		}
		return res
	}
	weak := run(-40)
	if weak.Outcome != classify.NonEffective {
		t.Errorf("-40 dBm jammer outcome = %v, want non-effective", weak.Outcome)
	}
	strong := run(23)
	if strong.Outcome != classify.Severe || !strong.Collided() {
		t.Errorf("23 dBm jammer outcome = %v (collisions %d), want severe collision",
			strong.Outcome, len(strong.Collisions))
	}
}
