package core

import (
	"fmt"

	"comfase/internal/msg"
	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// AttackContext carries everything an attack builder may use to
// instantiate a model for one experiment.
type AttackContext struct {
	// Spec is the experiment being built; Spec.Value is the swept attack
	// value and Spec.Targets the attacked vehicles.
	Spec ExperimentSpec
	// Params is the validated parameter map (entry schema applied:
	// defaults filled, bounds checked).
	Params param.Params
	// Horizon is the totalSimTime (the DoS PD value).
	Horizon des.Time
	// Seed derives stochastic attack streams.
	Seed uint64
}

// AttackEntry is one registered attack/fault family.
type AttackEntry struct {
	// Name is the registry key; it is also the label written to result
	// CSVs for experiments addressed by name.
	Name string
	// Kind is the legacy enum value for the families that predate the
	// registry (zero for registry-only families). ParseAttackKind and
	// the AttackKind-based CampaignSetup API resolve through it.
	Kind AttackKind
	// Desc is a one-line description for `comfase list`.
	Desc string
	// ValueDoc documents the meaning of the swept Value.
	ValueDoc string
	// AllowNegativeValues exempts the family from the non-negative
	// Value check (jamming powers in dBm are legitimately negative).
	AllowNegativeValues bool
	// Schema is the family's extra-parameter schema (nil = none).
	Schema param.Schema
	// Build instantiates the model for one experiment.
	Build func(AttackContext) (AttackModel, error)
}

var attacks = param.NewSet[AttackEntry]("attack")

// RegisterAttack adds an attack family to the registry. It panics on a
// duplicate or empty name, or a nil builder — registration happens at
// init time where such clashes are programming errors.
func RegisterAttack(e AttackEntry) {
	if e.Build == nil {
		panic(fmt.Sprintf("core: attack %q has no builder", e.Name))
	}
	attacks.Register(e.Name, e)
}

// LookupAttack returns the named attack family. Unknown names produce
// an error listing the accepted names with a nearest-match suggestion.
func LookupAttack(name string) (AttackEntry, error) {
	e, err := attacks.Lookup(name)
	if err != nil {
		return AttackEntry{}, fmt.Errorf("core: %w", err)
	}
	return e, nil
}

// AttackNames returns all registered attack names, sorted.
func AttackNames() []string { return attacks.Names() }

func init() {
	RegisterAttack(AttackEntry{
		Name:     "delay",
		Kind:     AttackDelay,
		Desc:     "delay attack: beacons from the target arrive PD seconds late",
		ValueDoc: "propagation delay PD in seconds",
		Build: func(ctx AttackContext) (AttackModel, error) {
			return NewDelayAttack(des.FromSeconds(ctx.Spec.Value), ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "dos",
		Kind:     AttackDoS,
		Desc:     "denial of service: beacons from the target never arrive",
		ValueDoc: "nominal PD in seconds (pinned to the horizon)",
		Build: func(ctx AttackContext) (AttackModel, error) {
			return NewDoSAttack(ctx.Horizon, ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "packet-loss",
		Kind:     AttackPacketLoss,
		Desc:     "random packet loss on frames involving the target",
		ValueDoc: "drop probability in [0,1]",
		Build: func(ctx AttackContext) (AttackModel, error) {
			// The stream name is keyed by expNr so every grid point draws
			// an independent, reproducible Bernoulli sequence.
			stream := rng.New(ctx.Seed, fmt.Sprintf("attack.loss.%d", ctx.Spec.Nr))
			return NewPacketLossAttack(ctx.Spec.Value, stream, ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "replay",
		Kind:     AttackReplay,
		Desc:     "replay attack: frames from the target are re-delivered aged",
		ValueDoc: "replay age in seconds",
		Build: func(ctx AttackContext) (AttackModel, error) {
			return NewReplayAttack(des.FromSeconds(ctx.Spec.Value), ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:                "jamming",
		Kind:                AttackJamming,
		Desc:                "RF jammer shadowing the first target vehicle",
		ValueDoc:            "jammer transmit power in dBm (may be negative)",
		AllowNegativeValues: true,
		Build: func(ctx AttackContext) (AttackModel, error) {
			return NewJammingAttack(ctx.Spec.Value, ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "falsification",
		Desc:     "falsification attack: one kinematic field of the target's beacons is rewritten",
		ValueDoc: "offset added to (or factor applied to) the chosen field",
		Schema: param.Schema{
			{Name: "field", Kind: param.Enum, Default: "speed", Enum: []string{"pos", "speed", "accel"},
				Desc: "beacon field to falsify"},
			{Name: "mode", Kind: param.Enum, Default: "offset", Enum: []string{"offset", "scale"},
				Desc: "apply Value as an additive offset or a multiplicative factor"},
		},
		Build: func(ctx AttackContext) (AttackModel, error) {
			field, mode, v := ctx.Params.Str("field"), ctx.Params.Str("mode"), ctx.Spec.Value
			fn := func(b msg.Beacon) msg.Beacon {
				apply := func(x float64) float64 {
					if mode == "scale" {
						return x * v
					}
					return x + v
				}
				switch field {
				case "pos":
					b.Pos = apply(b.Pos)
				case "speed":
					b.Speed = apply(b.Speed)
				case "accel":
					b.Accel = apply(b.Accel)
				}
				return b
			}
			return NewFalsificationAttack(fn, ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "sybil",
		Desc:     "sybil attack: a fake platoon member broadcasts forged beacons near the first target",
		ValueDoc: "advertised deceleration magnitude in m/s^2 (forged Accel = -Value)",
		Schema: param.Schema{
			{Name: "index", Kind: param.Int, Default: 0, Min: param.Bound(0),
				Desc: "platoon index the fake node claims (0 = leader)"},
			{Name: "speedMps", Kind: param.Float, Default: 0, Min: param.Bound(0),
				Desc: "advertised speed in m/s"},
			{Name: "periodS", Kind: param.Float, Default: 0.1, Min: param.Bound(0.001),
				Desc: "forged-beacon period in seconds"},
		},
		Build: func(ctx AttackContext) (AttackModel, error) {
			index := ctx.Params.Int("index")
			speed := ctx.Params.Float("speedMps")
			decel := ctx.Spec.Value
			forge := func(now des.Time) msg.Beacon {
				return msg.Beacon{
					Source:       "sybil",
					PlatoonID:    "platoon.0",
					PlatoonIndex: index,
					Speed:        speed,
					Accel:        -decel,
					Length:       4,
				}
			}
			period := des.FromSeconds(ctx.Params.Float("periodS"))
			return NewSybilAttack(forge, period, ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "omission",
		Desc:     "omission fault: the target's transmitter silently drops every beacon",
		ValueDoc: "unused (sweep a single placeholder value)",
		Build: func(ctx AttackContext) (AttackModel, error) {
			return NewOmissionFault(ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "corruption",
		Desc:     "corruption fault: Gaussian noise on the target's transmitted kinematics",
		ValueDoc: "noise scale factor multiplying the sigma parameters (> 0)",
		Schema: param.Schema{
			{Name: "sigmaPosM", Kind: param.Float, Default: 1, Min: param.Bound(0),
				Desc: "position noise sigma in metres at Value=1"},
			{Name: "sigmaSpeedMps", Kind: param.Float, Default: 0.5, Min: param.Bound(0),
				Desc: "speed noise sigma in m/s at Value=1"},
			{Name: "sigmaAccelMps2", Kind: param.Float, Default: 0.5, Min: param.Bound(0),
				Desc: "acceleration noise sigma in m/s^2 at Value=1"},
		},
		Build: func(ctx AttackContext) (AttackModel, error) {
			v := ctx.Spec.Value
			stream := rng.New(ctx.Seed, fmt.Sprintf("fault.corruption.%d", ctx.Spec.Nr))
			return NewCorruptionFault(
				v*ctx.Params.Float("sigmaPosM"),
				v*ctx.Params.Float("sigmaSpeedMps"),
				v*ctx.Params.Float("sigmaAccelMps2"),
				stream, ctx.Spec.Targets...)
		},
	})
	RegisterAttack(AttackEntry{
		Name:     "calibration",
		Desc:     "calibration fault: constant offsets on the target's transmitted kinematics",
		ValueDoc: "offset scale factor multiplying the offset parameters (non-zero)",
		Schema: param.Schema{
			{Name: "posOffsetM", Kind: param.Float, Default: 2,
				Desc: "position offset in metres at Value=1"},
			{Name: "speedOffsetMps", Kind: param.Float, Default: 0,
				Desc: "speed offset in m/s at Value=1"},
			{Name: "accelOffsetMps2", Kind: param.Float, Default: 0,
				Desc: "acceleration offset in m/s^2 at Value=1"},
		},
		Build: func(ctx AttackContext) (AttackModel, error) {
			v := ctx.Spec.Value
			return NewCalibrationFault(
				v*ctx.Params.Float("posOffsetM"),
				v*ctx.Params.Float("speedOffsetMps"),
				v*ctx.Params.Float("accelOffsetMps2"),
				ctx.Spec.Targets...)
		},
	})
}
