package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"comfase/internal/classify"
	"comfase/internal/nic"
	"comfase/internal/obs"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
	"comfase/internal/traffic"
)

// EngineConfig assembles everything an attack campaign needs.
type EngineConfig struct {
	// Scenario is the Step-1 traffic configuration.
	Scenario scenario.TrafficScenario
	// Comm is the Step-1 communication configuration.
	Comm scenario.CommModel
	// Controllers builds follower controllers per platoon index; nil
	// defaults to the paper's CACC.
	Controllers scenario.ControllerFactory
	// Seed drives every stochastic component. Identical (config, seed)
	// pairs reproduce identical campaigns.
	Seed uint64
	// Thresholds override the classification parameters; zero value
	// means "derive from the golden run per §IV-B".
	Thresholds *classify.Thresholds
	// CancelCheckEvents is the cooperative-cancellation poll granularity
	// of the DES kernel: when a Ctx variant runs with a cancelable
	// context, the kernel checks it every this many events. Zero selects
	// des.DefaultInterruptEvery.
	CancelCheckEvents uint64
	// Invariants enables the per-step runtime sanity checks of
	// internal/invariant in every simulation this engine builds. A
	// violation aborts the experiment with an error wrapping
	// invariant.ErrInvariant instead of silently producing a bogus
	// classification.
	Invariants bool
	// EventBudget, when non-zero, caps the kernel events any single
	// simulation may deliver. An experiment whose event loop runs away
	// (a buggy attack model rescheduling itself at the current time, for
	// example) aborts deterministically with des.ErrBudgetExceeded
	// instead of hanging the worker. The budget is checked on the same
	// cadence as CancelCheckEvents. It applies to experiments only; the
	// attack-free golden run is exempt, so a budget sized for the
	// attacked grid can never kill the reference it is compared against.
	EventBudget uint64
	// EarlyExit enables verdict-aware early termination: experiments stop
	// simulating as soon as their classification is decided (a collision
	// is recorded, or the attack window is over and the platoon has
	// re-stabilised onto the golden trajectory within EarlyExitTolerance
	// for EarlyExitHold). Classification output — class, collider
	// attribution, outcome counts — is identical with the flag on or off;
	// the raw kinematic extrema of a truncated run only cover the
	// simulated part of the horizon (DESIGN.md §10). Off by default: the
	// zero value preserves full-horizon kinematics bit-for-bit.
	EarlyExit bool
	// EarlyExitTolerance is the per-sample speed-deviation band (m/s)
	// within which the platoon counts as re-stabilised onto the golden
	// trajectory. Zero selects DefaultEarlyExitTolerance. Only consulted
	// when EarlyExit is set.
	EarlyExitTolerance float64
	// EarlyExitHold is how long every vehicle must stay within
	// EarlyExitTolerance after the attack window before the verdict
	// counts as decided. Zero selects DefaultEarlyExitHold. Only
	// consulted when EarlyExit is set.
	EarlyExitHold des.Time
	// Metrics, when non-nil, receives the engine's observability counters
	// (experiments started/completed, workspace-pool hits/misses,
	// checkpoint forks vs fresh builds, the per-experiment wall-clock
	// histogram) and the DES kernel counters (events executed,
	// snapshot/restore counts). All instrumentation flushes at experiment
	// or run granularity, never per event, and a nil registry disables it
	// entirely — results are bit-identical either way.
	Metrics *obs.Registry
}

// Early-exit defaults and cadence. The hold period defaults to one full
// cycle of the paper maneuver's 0.2 Hz sinusoid, so "stable for the
// hold" means the platoon tracked the golden run through a complete
// speed oscillation, not just a flat segment of it. Decision checks run
// on a fixed absolute-time grid (multiples of earlyExitCheckInterval
// since t=0) so fresh, forked and chained executions of the same
// experiment stop at the identical instant regardless of where their
// simulation segment began.
const (
	DefaultEarlyExitTolerance          = 1e-3
	DefaultEarlyExitHold               = 5 * des.Second
	earlyExitCheckInterval    des.Time = 500 * des.Millisecond
)

// Engine is the ComFASE engine: it owns a validated configuration and
// executes Algorithm 1.
type Engine struct {
	cfg        EngineConfig
	golden     *trace.FullLog
	goldenRes  *GoldenResult
	thresholds classify.Thresholds

	// eeTol/eeHold are the resolved early-exit knobs (defaults applied);
	// meaningful only when cfg.EarlyExit is set.
	eeTol  float64
	eeHold des.Time

	// pool recycles per-worker simulation workspaces: each experiment
	// checks one out, rebuilds the retained components in place and
	// returns it. Campaign workers therefore run thousands of experiments
	// with a near-constant allocation footprint. sync.Pool keeps at most
	// roughly one unit per P under steady concurrent load.
	pool sync.Pool
	// groupPool recycles the per-group checkpoint storage of
	// prefix-forked execution (see group.go) the same way.
	groupPool sync.Pool

	// met holds the engine's obs handles (all nil when cfg.Metrics is
	// nil: obs metrics are nil-safe, so the instrumentation below runs
	// unconditionally); km is the kernel metric bundle re-attached to
	// every workspace kernel after its Build.
	met engineMetrics
	km  *des.Metrics
}

// engineMetrics is the engine's metric inventory (DESIGN.md §8).
type engineMetrics struct {
	started     *obs.Counter   // experiment attempts begun (fresh + forked)
	completed   *obs.Counter   // experiment attempts finished successfully
	goldenRuns  *obs.Counter   // golden (reference) runs executed
	poolHits    *obs.Counter   // workspace checkouts served from the pool
	poolMisses  *obs.Counter   // workspace checkouts that built a new unit
	freshBuilds *obs.Counter   // experiment attempts on the fresh-build path
	forks       *obs.Counter   // experiment attempts forked from a checkpoint
	prefixes    *obs.Counter   // group prefix simulations checkpointed
	wall        *obs.Histogram // successful experiment wall-clock seconds

	trieBoundaries *obs.Counter // mid-attack boundary snapshots taken
	trieForks      *obs.Counter // experiment attempts forked from a boundary
	trieSavedMs    *obs.Counter // simulated milliseconds skipped via boundary forks
	trieDepth      *obs.Gauge   // depth of the most recently extended value chain
	groupRebuilds  *obs.Counter // tainted group sessions healed by a prefix rebuild
	earlyExits     *obs.Counter // experiments stopped once their verdict was decided
	earlySavedMs   *obs.Counter // simulated milliseconds skipped via early exit
}

// newEngineMetrics resolves the engine's metric handles. A nil registry
// yields all-nil handles, whose operations are no-ops.
func newEngineMetrics(reg *obs.Registry) engineMetrics {
	return engineMetrics{
		started:     reg.Counter("engine.experiments_started"),
		completed:   reg.Counter("engine.experiments_completed"),
		goldenRuns:  reg.Counter("engine.golden_runs"),
		poolHits:    reg.Counter("engine.workspace_pool_hits"),
		poolMisses:  reg.Counter("engine.workspace_pool_misses"),
		freshBuilds: reg.Counter("engine.fresh_builds"),
		forks:       reg.Counter("engine.checkpoint_forks"),
		prefixes:    reg.Counter("engine.checkpoint_prefixes"),
		wall:        reg.Histogram("engine.experiment_wall_seconds", obs.DurationBounds()...),

		trieBoundaries: reg.Counter("engine.trie_boundary_snapshots"),
		trieForks:      reg.Counter("engine.trie_suffix_forks"),
		trieSavedMs:    reg.Counter("engine.trie_sim_millis_saved"),
		trieDepth:      reg.Gauge("engine.trie_chain_depth"),
		groupRebuilds:  reg.Counter("engine.group_rebuilds"),
		earlyExits:     reg.Counter("engine.early_exits"),
		earlySavedMs:   reg.Counter("engine.early_exit_sim_millis_saved"),
	}
}

// workUnit is one pooled simulation workspace plus the reusable summary
// recorder that goes with it. fresh marks a unit the pool constructor
// just built and has never been checked out before — the discriminator
// behind the pool hit/miss counters.
type workUnit struct {
	ws      *scenario.Workspace
	summary *trace.Summary
	fresh   bool
}

// acquireUnit checks a workspace unit out of the pool.
func (e *Engine) acquireUnit() *workUnit {
	u := e.pool.Get().(*workUnit)
	if u.fresh {
		u.fresh = false
		e.met.poolMisses.Inc()
	} else {
		e.met.poolHits.Inc()
	}
	return u
}

// GoldenResult summarises the attack-free reference run (Step-2).
type GoldenResult struct {
	// MaxDecel is the strongest deceleration of the golden run — the
	// negligible/benign boundary of §IV-B (1.53 m/s^2 in the paper).
	MaxDecel float64
	// Collisions must be empty for a usable golden run.
	Collisions []traffic.Collision
	// Deliveries is the number of successfully decoded beacons.
	Deliveries uint64
	// Events is the kernel event count (for performance reporting).
	Events uint64
}

// ExperimentResult is the classified outcome of one attack experiment.
type ExperimentResult struct {
	// Spec is the experiment's grid point.
	Spec ExperimentSpec
	// Outcome is the §IV-B class.
	Outcome classify.Outcome
	// MaxDecel is the strongest deceleration observed (any vehicle).
	MaxDecel float64
	// MaxDecelPerVehicle is indexed by platoon position.
	MaxDecelPerVehicle []float64
	// MaxSpeedDev is the largest speed deviation from the golden run.
	MaxSpeedDev float64
	// Collisions lists collision incidents in order of occurrence.
	Collisions []traffic.Collision
	// Collider is the vehicle responsible for the FIRST collision ("" if
	// none) — the paper's collider analysis (§IV-C1/2, [32]).
	Collider string
}

// Collided reports whether the experiment produced a collision.
func (r ExperimentResult) Collided() bool { return len(r.Collisions) > 0 }

// CampaignResult aggregates a full attack-injection campaign (Step-3+4).
type CampaignResult struct {
	// Setup echoes the campaign grid.
	Setup CampaignSetup
	// Golden is the reference-run summary.
	Golden GoldenResult
	// Thresholds are the classification parameters used.
	Thresholds classify.Thresholds
	// Experiments holds one classified result per grid point, in expNr
	// order.
	Experiments []ExperimentResult
	// Counts tallies the outcome classes.
	Counts classify.Counts
	// Failures lists the experiments that failed persistently (all
	// retries exhausted) and were excluded from Experiments, in expNr
	// order. Empty on a clean campaign.
	Failures []ExperimentFailure
	// FailureCounts tallies Failures by class.
	FailureCounts FailureCounts
}

// Progress receives (completed, total) notifications during a campaign.
type Progress func(done, total int)

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Comm.Validate(); err != nil {
		return nil, err
	}
	if cfg.Controllers == nil {
		cfg.Controllers = scenario.DefaultControllers()
	}
	if cfg.Thresholds != nil {
		if err := cfg.Thresholds.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.EarlyExitTolerance < 0 {
		return nil, errors.New("core: early-exit tolerance must be non-negative")
	}
	if cfg.EarlyExitHold < 0 {
		return nil, errors.New("core: early-exit hold must be non-negative")
	}
	// The engine-level flag fans out through the scenario config so every
	// workspace build (golden run and experiments alike) checks the same
	// invariants.
	cfg.Scenario.Invariants = cfg.Scenario.Invariants || cfg.Invariants
	e := &Engine{cfg: cfg}
	e.eeTol = cfg.EarlyExitTolerance
	if e.eeTol == 0 {
		e.eeTol = DefaultEarlyExitTolerance
	}
	e.eeHold = cfg.EarlyExitHold
	if e.eeHold == 0 {
		e.eeHold = DefaultEarlyExitHold
	}
	e.met = newEngineMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		e.km = &des.Metrics{
			Events:    cfg.Metrics.Counter("kernel.events_executed"),
			Snapshots: cfg.Metrics.Counter("kernel.snapshots"),
			Restores:  cfg.Metrics.Counter("kernel.restores"),
		}
	}
	e.pool.New = func() any {
		return &workUnit{ws: scenario.NewWorkspace(), summary: new(trace.Summary), fresh: true}
	}
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// GoldenRun executes Step-2: the attack-free reference simulation. The
// resulting log is cached and reused by subsequent experiments. Calling
// it again re-runs and replaces the cache.
func (e *Engine) GoldenRun() (*trace.FullLog, GoldenResult, error) {
	return e.GoldenRunCtx(context.Background())
}

// GoldenRunCtx is GoldenRun with cooperative cancellation: a canceled ctx
// aborts the simulation within CancelCheckEvents kernel events. Like
// experiment runs it executes inside the engine's panic boundary: a
// panicking component surfaces as a *PanicError and the workspace is
// discarded.
func (e *Engine) GoldenRunCtx(ctx context.Context) (log *trace.FullLog, res GoldenResult, err error) {
	u := e.acquireUnit()
	keep := false
	defer func() {
		if r := recover(); r != nil {
			// A panicked workspace may hold arbitrarily corrupted
			// component state; it must never return to the pool.
			keep = false
			log, res = nil, GoldenResult{}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		if keep {
			e.pool.Put(u)
		}
	}()
	sim, err := u.ws.Build(e.cfg.Scenario, e.cfg.Comm, e.cfg.Seed, e.cfg.Controllers)
	if err != nil {
		// A failed build may leave the workspace half-reset; drop the unit.
		return nil, GoldenResult{}, err
	}
	keep = true
	// The event budget is deliberately NOT applied here: it is a
	// per-experiment watchdog sized against attack-model-induced runaway
	// event loops, and the attack-free golden run must not be killed by a
	// budget chosen for the experiments.
	sim.Kernel.SetMetrics(e.km)
	sim.AttachContext(ctx, e.cfg.CancelCheckEvents)
	// Preallocate the full log for the known run length (one sample per
	// traffic step): the golden run's recording path then allocates no
	// per-sample rows.
	hint := int(e.cfg.Scenario.TotalSimTime/sim.Traffic.StepLength()) + 2
	log = trace.NewFullLogCap(sim.VehicleIDs(), hint)
	sim.AddRecorder(log)
	if err := sim.Start(); err != nil {
		return nil, GoldenResult{}, err
	}
	if err := sim.RunUntil(e.cfg.Scenario.TotalSimTime); err != nil {
		return nil, GoldenResult{}, err
	}
	res = GoldenResult{
		MaxDecel:   log.MaxDeceleration(),
		Collisions: sim.Traffic.Collisions(),
		Deliveries: sim.Air.Stats().Deliveries,
		Events:     sim.Kernel.Executed(),
	}
	if len(res.Collisions) > 0 {
		return nil, res, fmt.Errorf("core: golden run collided: %v", res.Collisions[0])
	}
	e.met.goldenRuns.Inc()
	e.golden = log
	gr := res
	e.goldenRes = &gr
	if e.cfg.Thresholds != nil {
		e.thresholds = *e.cfg.Thresholds
	} else {
		e.thresholds = classify.PaperThresholds(res.MaxDecel)
	}
	return log, res, nil
}

// ensureGolden lazily executes the golden run.
func (e *Engine) ensureGolden(ctx context.Context) error {
	if e.golden != nil {
		return nil
	}
	_, _, err := e.GoldenRunCtx(ctx)
	return err
}

// EnsureGolden executes the golden run unless one is already cached. It
// is the priming step campaign runners call before spawning workers (the
// cached log is shared read-only by every experiment).
func (e *Engine) EnsureGolden(ctx context.Context) error { return e.ensureGolden(ctx) }

// Golden returns the cached golden-run summary; ok is false before the
// golden run has executed.
func (e *Engine) Golden() (res GoldenResult, ok bool) {
	if e.goldenRes == nil {
		return GoldenResult{}, false
	}
	return *e.goldenRes, true
}

// Thresholds returns the classification parameters in use (valid after
// the golden run).
func (e *Engine) Thresholds() classify.Thresholds { return e.thresholds }

// RunExperiment executes Step-3 for a single grid point: build a fresh
// simulation, run to attackStartTime, install the attack model (the
// CommModelEditor step), run to attackEndTime, remove the model, run to
// totalSimTime, then classify against the golden run (Step-4).
func (e *Engine) RunExperiment(spec ExperimentSpec) (ExperimentResult, error) {
	res, _, err := e.runExperiment(context.Background(), spec, false)
	return res, err
}

// RunExperimentCtx is RunExperiment with cooperative cancellation: a
// canceled ctx aborts the simulation within CancelCheckEvents kernel
// events and returns an error wrapping ctx.Err().
func (e *Engine) RunExperimentCtx(ctx context.Context, spec ExperimentSpec) (ExperimentResult, error) {
	res, _, err := e.runExperiment(ctx, spec, false)
	return res, err
}

// RunExperimentWithLog is RunExperiment plus the full per-vehicle time
// series of the attacked run — the raw material for single-experiment
// case studies (trajectory plots, gap evolution).
func (e *Engine) RunExperimentWithLog(spec ExperimentSpec) (ExperimentResult, *trace.FullLog, error) {
	return e.runExperiment(context.Background(), spec, true)
}

func (e *Engine) runExperiment(ctx context.Context, spec ExperimentSpec, withLog bool) (res ExperimentResult, full *trace.FullLog, err error) {
	if err := e.ensureGolden(ctx); err != nil {
		return ExperimentResult{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return ExperimentResult{}, nil, err
	}
	e.met.started.Inc()
	// Wall-clock timing costs two time.Now calls per experiment — noise
	// next to the simulation itself — but is still skipped entirely when
	// metrics are off so the disabled path pays literally nothing.
	var wallStart time.Time
	if e.met.wall != nil {
		wallStart = time.Now()
	}
	horizon := e.cfg.Scenario.TotalSimTime
	u := e.acquireUnit()
	keep := false
	// The panic boundary of the failure-containment layer: a panic
	// anywhere in the experiment (model factory, attack model,
	// controller, kernel handler) converts to a *PanicError instead of
	// crashing the campaign process, and the workspace — whose
	// components may be in an arbitrarily corrupted state — is
	// discarded, never returned to the pool.
	defer func() {
		if r := recover(); r != nil {
			keep = false
			res, full = ExperimentResult{}, nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		if keep {
			e.pool.Put(u)
		}
	}()
	model, err := spec.buildModel(horizon, e.cfg.Seed)
	if err != nil {
		// The unit is untouched, but pool.Put on every early return is
		// what ties keep-tracking to control flow; re-pool it here.
		keep = true
		return ExperimentResult{}, nil, err
	}
	sim, err := u.ws.Build(e.cfg.Scenario, e.cfg.Comm, e.cfg.Seed, e.cfg.Controllers)
	if err != nil {
		// A failed build may leave the workspace half-reset; drop the unit.
		return ExperimentResult{}, nil, err
	}
	keep = true
	e.met.freshBuilds.Inc()
	sim.Kernel.SetMetrics(e.km)
	sim.Kernel.SetEventBudget(e.cfg.EventBudget)
	sim.AttachContext(ctx, e.cfg.CancelCheckEvents)
	summary := u.summary
	summary.Reset(len(sim.Members), e.golden)
	if e.cfg.EarlyExit {
		summary.TrackStability(e.eeTol)
	}
	sim.AddRecorder(summary)
	if withLog {
		// Preallocate for the known run length (one sample per traffic
		// step) so the log never regrows mid-run.
		hint := int(horizon/sim.Traffic.StepLength()) + 2
		full = trace.NewFullLogCap(sim.VehicleIDs(), hint)
		sim.AddRecorder(full)
	}
	if err := sim.Start(); err != nil {
		return ExperimentResult{}, nil, err
	}

	start := spec.Start
	if start > horizon {
		start = horizon
	}
	end := spec.End(horizon)

	// Algorithm 1 lines 12-14: the three SimUntil phases (the attacked
	// window and tail run through the early-exit-aware helper).
	if err := sim.RunUntil(start); err != nil {
		return ExperimentResult{}, nil, err
	}
	if err := applyAttack(sim, model); err != nil {
		return ExperimentResult{}, nil, err
	}
	decided, stopAt, err := e.runDecidable(sim, summary, start, end, end, false)
	if err != nil {
		return ExperimentResult{}, nil, err
	}
	if !decided {
		if err := removeAttack(sim, model); err != nil {
			return ExperimentResult{}, nil, err
		}
		decided, stopAt, err = e.runDecidable(sim, summary, end, horizon, end, true)
		if err != nil {
			return ExperimentResult{}, nil, err
		}
	}
	if decided {
		e.met.earlyExits.Inc()
		e.met.earlySavedMs.Add(uint64((horizon - stopAt) / des.Millisecond))
	}

	res, err = e.finishExperiment(sim, summary, spec)
	if err != nil {
		return ExperimentResult{}, nil, err
	}
	e.met.completed.Inc()
	if e.met.wall != nil {
		e.met.wall.ObserveDuration(time.Since(wallStart))
	}
	return res, full, nil
}

// runDecidable advances the simulation from `from` to `to`, stopping
// early once the experiment's classification is decided (verdict-aware
// early termination). With EarlyExit off it degenerates to a single
// RunUntil. With it on, the run proceeds in chunks clipped to absolute
// multiples of earlyExitCheckInterval — the same instants for every
// execution path of the same experiment — and after each chunk consults
// classify.Decided. During the attacked window (tail=false) only a
// collision decides; during the tail (tail=true) re-stabilisation onto
// the golden run for the hold period decides too. It returns whether the
// verdict was decided and the simulation time reached.
//
// attackEnd is the end of the attacked window; the hold period can only
// begin once both the attack is over and the summary saw its last
// out-of-tolerance sample.
func (e *Engine) runDecidable(sim *scenario.Simulation, summary *trace.Summary, from, to, attackEnd des.Time, tail bool) (bool, des.Time, error) {
	if !e.cfg.EarlyExit {
		return false, to, sim.RunUntil(to)
	}
	for cur := from; cur < to; {
		next := (cur/earlyExitCheckInterval + 1) * earlyExitCheckInterval
		if next > to {
			next = to
		}
		if err := sim.RunUntil(next); err != nil {
			return false, cur, err
		}
		cur = next
		stabilized := false
		if tail {
			since := summary.LastUnstable()
			if attackEnd > since {
				since = attackEnd
			}
			stabilized = cur >= since.Add(e.eeHold)
		}
		obsv := classify.Observation{
			MaxDecel:    summary.MaxDecelOverall(),
			MaxSpeedDev: summary.MaxSpeedDev,
			Collided:    sim.Traffic.CollisionCount() > 0,
		}
		if classify.Decided(e.thresholds, obsv, tail, stabilized, e.eeTol) {
			return true, cur, nil
		}
	}
	return false, to, nil
}

// finishExperiment validates a completed attack run and assembles the
// classified result (Step-4). It is shared by the fresh-build and
// checkpoint-forked execution paths, so both classify byte-identically.
func (e *Engine) finishExperiment(sim *scenario.Simulation, summary *trace.Summary, spec ExperimentSpec) (ExperimentResult, error) {
	if summary.Misaligned {
		return ExperimentResult{}, errors.New("core: attack run sampling misaligned with golden run")
	}
	collisions := sim.Traffic.Collisions()
	collider := ""
	if len(collisions) > 0 {
		collider = collisions[0].Collider
	}
	res := ExperimentResult{
		Spec:     spec,
		MaxDecel: summary.MaxDecelOverall(),
		// The summary's backing array is recycled with the workspace, so
		// the result must own a copy.
		MaxDecelPerVehicle: summary.CopyMaxDecel(),
		MaxSpeedDev:        summary.MaxSpeedDev,
		Collisions:         collisions,
		Collider:           collider,
	}
	res.Outcome = classify.Classify(e.thresholds, classify.Observation{
		MaxDecel:    res.MaxDecel,
		MaxSpeedDev: res.MaxSpeedDev,
		Collided:    res.Collided(),
	})
	return res, nil
}

// applyAttack activates an attack model on a running simulation — the
// CommModelEditor step of Algorithm 1 line 11. Frame-level models swap
// the Air's interceptor; physical-layer models install themselves.
func applyAttack(sim *scenario.Simulation, model AttackModel) error {
	switch m := model.(type) {
	case Installer:
		return m.Install(sim)
	case nic.Interceptor:
		sim.Air.SetInterceptor(m)
		return nil
	default:
		return fmt.Errorf("core: attack model %q implements neither Interceptor nor Installer", model.Name())
	}
}

// removeAttack deactivates the model at attackEndTime.
func removeAttack(sim *scenario.Simulation, model AttackModel) error {
	switch m := model.(type) {
	case Installer:
		return m.Uninstall(sim)
	case nic.Interceptor:
		sim.Air.SetInterceptor(nil)
		return nil
	default:
		return fmt.Errorf("core: attack model %q implements neither Interceptor nor Installer", model.Name())
	}
}

// RunCampaign executes Step-3 and Step-4 for the whole grid. progress may
// be nil.
func (e *Engine) RunCampaign(setup CampaignSetup, progress Progress) (*CampaignResult, error) {
	return e.RunCampaignCtx(context.Background(), setup, progress)
}

// RunCampaignCtx is RunCampaign with cooperative cancellation: a canceled
// ctx aborts the in-flight experiment and returns its error. Completed
// results are discarded — campaigns that must survive interruption run
// through internal/runner, which streams partial results to sinks.
func (e *Engine) RunCampaignCtx(ctx context.Context, setup CampaignSetup, progress Progress) (*CampaignResult, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	if err := e.ensureGolden(ctx); err != nil {
		return nil, err
	}
	specs := setup.Experiments()
	out := &CampaignResult{
		Setup:       setup,
		Golden:      *e.goldenRes,
		Thresholds:  e.thresholds,
		Experiments: make([]ExperimentResult, 0, len(specs)),
	}
	for i, spec := range specs {
		res, err := e.RunExperimentCtx(ctx, spec)
		if err != nil {
			return nil, fmt.Errorf("experiment %v: %w", spec, err)
		}
		out.Experiments = append(out.Experiments, res)
		out.Counts.Add(res.Outcome)
		if progress != nil {
			progress(i+1, len(specs))
		}
	}
	return out, nil
}
