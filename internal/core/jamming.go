package core

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
	"comfase/internal/nic"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// Installer is implemented by attack models that manipulate the
// simulation beyond per-frame interception — e.g. RF jammers that add
// hardware to the scene. The engine installs them at attackStartTime and
// uninstalls them at attackEndTime, in place of swapping an Interceptor.
type Installer interface {
	// Install activates the attack on a running simulation.
	Install(sim *scenario.Simulation) error
	// Uninstall deactivates it.
	Uninstall(sim *scenario.Simulation) error
}

// JammingAttack is a physical-layer attack: an RF jammer rides along
// with the target vehicle and radiates continuous interference. Unlike
// the delay/DoS models (which rewrite the channel's propagation-delay
// parameter), the jammer's impact — receivers' carrier sense going busy
// and SINR collapse — emerges from the 802.11p PHY model itself.
type JammingAttack struct {
	powerDBm float64
	burst    des.Time
	period   des.Time
	targets  targetSet
	jammer   *nic.Jammer
}

var (
	_ AttackModel = (*JammingAttack)(nil)
	_ Installer   = (*JammingAttack)(nil)
)

// NewJammingAttack builds a jammer with the given transmit power that
// follows the first target vehicle. Typical values: 23 dBm matches the
// vehicles' own radios; -20 dBm is a weak nuisance jammer.
func NewJammingAttack(powerDBm float64, targets ...string) (*JammingAttack, error) {
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &JammingAttack{
		powerDBm: powerDBm,
		burst:    des.Millisecond,
		period:   des.Millisecond,
		targets:  ts,
	}, nil
}

// Name implements AttackModel.
func (a *JammingAttack) Name() string { return "jamming" }

// Targets implements AttackModel.
func (a *JammingAttack) Targets() []string { return a.targets.sorted() }

// PowerDBm returns the jammer's transmit power.
func (a *JammingAttack) PowerDBm() float64 { return a.powerDBm }

// Install implements Installer: it attaches a jammer that tracks the
// first target vehicle's position and starts radiating.
func (a *JammingAttack) Install(sim *scenario.Simulation) error {
	if a.jammer != nil {
		return errors.New("core: jamming attack already installed")
	}
	target := a.targets.sorted()[0]
	veh, err := sim.Traffic.Vehicle(target)
	if err != nil {
		return fmt.Errorf("jamming target: %w", err)
	}
	lane, err := sim.Network.Lane(sim.Scenario().Road.ID, sim.Scenario().Lane)
	if err != nil {
		return err
	}
	pos := func() geo.Vec {
		return geo.Vec{X: veh.State.Pos, Y: lane.CenterY}
	}
	j, err := sim.Air.AddJammer("jammer."+target, pos, a.powerDBm, a.burst, a.period)
	if err != nil {
		return err
	}
	a.jammer = j
	j.Start()
	return nil
}

// Uninstall implements Installer.
func (a *JammingAttack) Uninstall(*scenario.Simulation) error {
	if a.jammer == nil {
		return errors.New("core: jamming attack not installed")
	}
	a.jammer.Stop()
	a.jammer = nil
	return nil
}
