package core

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/nic"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// Forger produces the forged beacon a Sybil node broadcasts at time now.
// The returned beacon's PlatoonID/PlatoonIndex decide which cache slot it
// poisons at the receivers; SentAt is stamped by the attack.
type Forger func(now des.Time) msg.Beacon

// SybilAttack is an application-layer attack in the style of Boeira et
// al. (paper §II-D): an attacker node joins the channel and broadcasts
// beacons under a forged platoon identity. Because the paper's
// communication model carries no authentication ("no security mechanisms
// are implemented inside the Veins communication model", §III-C), the
// followers' caches accept the forgeries — the newest sender time stamp
// wins.
type SybilAttack struct {
	forge   Forger
	period  des.Time
	targets targetSet

	ticker *des.Ticker
	radio  *nic.Radio
	seq    uint64
	// Sent counts forged beacons broadcast.
	Sent uint64
}

var (
	_ AttackModel = (*SybilAttack)(nil)
	_ Installer   = (*SybilAttack)(nil)
)

// NewSybilAttack builds a Sybil node that shadows the first target
// vehicle's position and broadcasts forge(now) every period (default:
// the paper's 0.1 s beaconing).
func NewSybilAttack(forge Forger, period des.Time, targets ...string) (*SybilAttack, error) {
	if forge == nil {
		return nil, errors.New("core: sybil attack needs a forger")
	}
	if period <= 0 {
		period = 100 * des.Millisecond
	}
	ts, err := newTargetSet(targets)
	if err != nil {
		return nil, err
	}
	return &SybilAttack{forge: forge, period: period, targets: ts}, nil
}

// Name implements AttackModel.
func (a *SybilAttack) Name() string { return "sybil" }

// Targets implements AttackModel.
func (a *SybilAttack) Targets() []string { return a.targets.sorted() }

// Install implements Installer: the Sybil node's radio joins the medium
// next to the target and starts forging.
func (a *SybilAttack) Install(sim *scenario.Simulation) error {
	if a.ticker != nil {
		return errors.New("core: sybil attack already installed")
	}
	target := a.targets.sorted()[0]
	veh, err := sim.Traffic.Vehicle(target)
	if err != nil {
		return fmt.Errorf("sybil target: %w", err)
	}
	lane, err := sim.Network.Lane(sim.Scenario().Road.ID, sim.Scenario().Lane)
	if err != nil {
		return err
	}
	// The attacker drives on the adjacent lane, level with the target.
	radio, err := sim.Air.AddRadio("sybil."+target, func() geo.Vec {
		return geo.Vec{X: veh.State.Pos, Y: lane.CenterY + 3.2}
	}, nil)
	if err != nil {
		return err
	}
	a.radio = radio
	k := sim.Kernel
	a.ticker = des.NewTicker(k, a.period, des.PriorityNormal, func() {
		a.seq++
		b := a.forge(k.Now())
		b.SentAt = k.Now()
		b.Seq = a.seq
		_ = a.radio.SendBeacon(b, sim.Comm().PacketBits, mac.ACVideo, a.seq)
		a.Sent++
	})
	a.ticker.Start(k.Now())
	return nil
}

// Uninstall implements Installer.
func (a *SybilAttack) Uninstall(*scenario.Simulation) error {
	if a.ticker == nil {
		return errors.New("core: sybil attack not installed")
	}
	a.ticker.StopTicker()
	a.ticker = nil
	return nil
}
