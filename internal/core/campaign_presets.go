package core

import (
	"fmt"

	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
)

// CampaignEntry is one registered campaign preset: a named, ready-made
// CampaignSetup such as the paper's Table II grids.
type CampaignEntry struct {
	// Name is the registry key.
	Name string
	// Desc is a one-line description for `comfase list`.
	Desc string
	// Build returns a fresh setup (slices are not shared between calls).
	Build func() CampaignSetup
}

var campaigns = param.NewSet[CampaignEntry]("campaign")

// RegisterCampaign adds a campaign preset; it panics on duplicates.
func RegisterCampaign(e CampaignEntry) {
	if e.Build == nil {
		panic(fmt.Sprintf("core: campaign %q has no builder", e.Name))
	}
	campaigns.Register(e.Name, e)
}

// LookupCampaign returns the named preset, with nearest-match
// suggestions on unknown names.
func LookupCampaign(name string) (CampaignEntry, error) {
	e, err := campaigns.Lookup(name)
	if err != nil {
		return CampaignEntry{}, fmt.Errorf("core: %w", err)
	}
	return e, nil
}

// CampaignNames returns all registered preset names, sorted.
func CampaignNames() []string { return campaigns.Names() }

// MustCampaign returns the named preset's setup, panicking on unknown
// names (preset names are compile-time constants at call sites).
func MustCampaign(name string) CampaignSetup {
	e, err := LookupCampaign(name)
	if err != nil {
		panic(err)
	}
	return e.Build()
}

// paperTargets returns Table II's attacked vehicle set.
func paperTargets() []string { return []string{"vehicle.2"} }

// paperStartTimes returns Table II's attackStartVector, shared by both
// campaigns: 25 start times from 17.0 to 21.8 s in 0.2 s steps, one
// full cycle of the sinusoidal maneuver.
func paperStartTimes() []des.Time {
	starts := make([]des.Time, 0, 25)
	for s := 0; s < 25; s++ {
		starts = append(starts, 17*des.Second+des.Time(s)*200*des.Millisecond)
	}
	return starts
}

func init() {
	RegisterCampaign(CampaignEntry{
		Name: "paper-delay",
		Desc: "Table II delay campaign: PD 0.2..3.0 s x 25 starts x 1..30 s (11250 experiments)",
		Build: func() CampaignSetup {
			setup := CampaignSetup{
				Attack:     AttackDelay,
				AttackName: "delay",
				Targets:    paperTargets(),
				Starts:     paperStartTimes(),
			}
			for v := 1; v <= 15; v++ {
				setup.Values = append(setup.Values, float64(v)*0.2)
			}
			for d := 1; d <= 30; d++ {
				setup.Durations = append(setup.Durations, des.Time(d)*des.Second)
			}
			return setup
		},
	})
	RegisterCampaign(CampaignEntry{
		Name: "paper-dos",
		Desc: "Table II DoS campaign: 25 starts, attack active until the simulation ends",
		Build: func() CampaignSetup {
			return CampaignSetup{
				Attack:     AttackDoS,
				AttackName: "dos",
				Targets:    paperTargets(),
				Starts:     paperStartTimes(),
				Values:     []float64{60},
				Durations:  []des.Time{60 * des.Second},
			}
		},
	})
}

// PaperDelayCampaign returns Table II's delay campaign: PD values 0.2 to
// 3.0 s (0.2 steps), start times 17.0 to 21.8 s (0.2 steps), durations 1
// to 30 s (1 s steps) — 25*15*30 = 11250 experiments targeting Vehicle 2.
// It is a thin lookup of the "paper-delay" registry entry.
func PaperDelayCampaign() CampaignSetup { return MustCampaign("paper-delay") }

// PaperDoSCampaign returns Table II's DoS campaign: 25 start times 17.0
// to 21.8 s, PD pinned to the 60 s horizon, attack active until the end
// of the simulation. It is a thin lookup of the "paper-dos" registry
// entry.
func PaperDoSCampaign() CampaignSetup { return MustCampaign("paper-dos") }
