package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"comfase/internal/invariant"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// fastEngine builds an engine on a shortened paper scenario (5 s horizon)
// so failure-path tests stay cheap.
func fastEngine(t *testing.T, mut func(*EngineConfig)) *Engine {
	t.Helper()
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	cfg := EngineConfig{Scenario: ts, Comm: scenario.PaperCommModel(), Seed: 1}
	if mut != nil {
		mut(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

func fastSpec() ExperimentSpec {
	return ExperimentSpec{
		Kind:     AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    0.2,
		Start:    1 * des.Second,
		Duration: 1 * des.Second,
	}
}

func TestFailureClassRoundTrip(t *testing.T) {
	for c := FailError; c < numFailureClasses; c++ {
		got, err := ParseFailureClass(c.String())
		if err != nil {
			t.Fatalf("ParseFailureClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	if _, err := ParseFailureClass("nope"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestClassifyFailure(t *testing.T) {
	wrap := func(err error) error { return errors.Join(errors.New("ctx"), err) }
	cases := []struct {
		err  error
		want FailureClass
	}{
		{&PanicError{Value: "boom"}, FailPanic},
		{wrap(des.ErrBudgetExceeded), FailBudget},
		{wrap(invariant.ErrInvariant), FailInvariant},
		{wrap(context.DeadlineExceeded), FailTimeout},
		{errors.New("plain"), FailError},
	}
	for _, c := range cases {
		if got := ClassifyFailure(c.err); got != c.want {
			t.Errorf("ClassifyFailure(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRunExperimentPanicConverted(t *testing.T) {
	eng := fastEngine(t, nil)
	spec := fastSpec()
	spec.Factory = func(ExperimentSpec, des.Time, uint64) (AttackModel, error) {
		panic("factory boom")
	}
	_, err := eng.RunExperiment(spec)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "factory boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}
	if ClassifyFailure(err) != FailPanic {
		t.Errorf("class = %v, want panic", ClassifyFailure(err))
	}
	// The boundary must leave the engine healthy: a follow-up clean
	// experiment still works on a fresh workspace.
	if _, err := eng.RunExperiment(fastSpec()); err != nil {
		t.Fatalf("experiment after panic: %v", err)
	}
}

// panicInstaller is an attack model that panics mid-run, at Install time
// (attackStartTime) — the deepest point of the experiment, with the
// kernel live and the workspace mutated.
type panicInstaller struct{}

func (panicInstaller) Name() string                           { return "panic-installer" }
func (panicInstaller) Targets() []string                      { return []string{"vehicle.2"} }
func (panicInstaller) Install(*scenario.Simulation) error     { panic("install boom") }
func (p panicInstaller) Uninstall(*scenario.Simulation) error { return nil }

func TestRunExperimentPanicMidRunConverted(t *testing.T) {
	eng := fastEngine(t, nil)
	spec := fastSpec()
	spec.Factory = func(ExperimentSpec, des.Time, uint64) (AttackModel, error) {
		return panicInstaller{}, nil
	}
	_, err := eng.RunExperiment(spec)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !strings.Contains(err.Error(), "install boom") {
		t.Errorf("err = %v, want panic value in message", err)
	}
	if _, err := eng.RunExperiment(fastSpec()); err != nil {
		t.Fatalf("experiment after mid-run panic: %v", err)
	}
}

func TestRunExperimentEventBudget(t *testing.T) {
	eng := fastEngine(t, func(cfg *EngineConfig) {
		cfg.EventBudget = 500 // a 5 s run needs thousands of events
		cfg.CancelCheckEvents = 128
	})
	// The budget is enforced on the interrupt-poll cadence; a cancelable
	// context installs the configured 128-event granularity (with an
	// uncancelable one the kernel polls every DefaultInterruptEvery
	// events, which a short run may never reach).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := eng.RunExperimentCtx(ctx, fastSpec())
	if !errors.Is(err, des.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if ClassifyFailure(err) != FailBudget {
		t.Errorf("class = %v, want event-budget", ClassifyFailure(err))
	}
}

func TestEngineInvariantsFlagPropagates(t *testing.T) {
	eng := fastEngine(t, func(cfg *EngineConfig) { cfg.Invariants = true })
	if !eng.Config().Scenario.Invariants {
		t.Fatal("EngineConfig.Invariants did not propagate into the scenario")
	}
	// A healthy run with invariants enabled completes normally.
	if _, err := eng.RunExperiment(fastSpec()); err != nil {
		t.Fatalf("healthy run with invariants: %v", err)
	}
}

func TestNewExperimentFailureRecord(t *testing.T) {
	spec := fastSpec()
	spec.Nr = 7
	f := NewExperimentFailure(spec, &PanicError{Value: "x", Stack: []byte("st")}, 3)
	if f.Nr != 7 || f.Attack != "delay" || f.Class != "panic" ||
		f.Stack != "st" || f.Attempts != 3 {
		t.Errorf("record = %+v", f)
	}
	if f.StartS != 1 || f.DurationS != 1 || f.Value != 0.2 {
		t.Errorf("spec projection = %+v", f)
	}
	g := NewExperimentFailure(spec, errors.New("plain"), 1)
	if g.Class != "error" || g.Stack != "" {
		t.Errorf("plain record = %+v", g)
	}
}

func TestFailureCounts(t *testing.T) {
	var c FailureCounts
	for _, cl := range []FailureClass{FailPanic, FailPanic, FailTimeout, FailBudget, FailInvariant, FailError} {
		c.Add(cl)
	}
	if c.Panic != 2 || c.Timeout != 1 || c.Budget != 1 || c.Invariant != 1 || c.Error != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Total() != 6 {
		t.Errorf("total = %d", c.Total())
	}
	if s := c.String(); !strings.Contains(s, "panic=2") {
		t.Errorf("String() = %q", s)
	}
}
