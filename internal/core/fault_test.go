package core

import (
	"math"
	"testing"

	"comfase/internal/classify"
	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/nic"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

func TestOmissionFault(t *testing.T) {
	if _, err := NewOmissionFault(); err == nil {
		t.Error("no targets accepted")
	}
	f, err := NewOmissionFault("vehicle.2")
	if err != nil {
		t.Fatalf("NewOmissionFault: %v", err)
	}
	if f.Name() != "omission" {
		t.Errorf("Name = %q", f.Name())
	}
	if !f.Intercept(0, "vehicle.2", "vehicle.3", mac.Frame{}).Drop {
		t.Error("target transmission not dropped")
	}
	// Omission is transmit-only: frames TO the target still arrive.
	if f.Intercept(0, "vehicle.1", "vehicle.2", mac.Frame{}).Drop {
		t.Error("frame to target dropped")
	}
}

func TestCorruptionFaultValidation(t *testing.T) {
	r := rng.New(1, "f")
	if _, err := NewCorruptionFault(-1, 0, 0, r, "v"); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewCorruptionFault(0, 0, 0, r, "v"); err == nil {
		t.Error("all-zero sigmas accepted")
	}
	if _, err := NewCorruptionFault(1, 0, 0, nil, "v"); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewCorruptionFault(1, 0, 0, r); err == nil {
		t.Error("no targets accepted")
	}
}

func TestCorruptionFaultPerturbsFields(t *testing.T) {
	f, err := NewCorruptionFault(5, 1, 0.5, rng.New(1, "f"), "vehicle.2")
	if err != nil {
		t.Fatalf("NewCorruptionFault: %v", err)
	}
	orig := msg.Beacon{Source: "vehicle.2", Pos: 100, Speed: 25, Accel: 1}
	origFrame := mac.Frame{Src: "vehicle.2", Beacon: orig, HasBeacon: true}
	var devPos, devSpeed, devAccel float64
	for i := 0; i < 200; i++ {
		v := f.Intercept(0, "vehicle.2", "vehicle.3", origFrame)
		if !v.OverrideBeacon {
			t.Fatal("beacon not replaced")
		}
		b := v.Beacon
		devPos += math.Abs(b.Pos - 100)
		devSpeed += math.Abs(b.Speed - 25)
		devAccel += math.Abs(b.Accel - 1)
	}
	if devPos == 0 || devSpeed == 0 || devAccel == 0 {
		t.Errorf("fields not perturbed: %v %v %v", devPos, devSpeed, devAccel)
	}
	if origFrame.Beacon.Pos != 100 {
		t.Error("original beacon mutated")
	}
	// Bystanders and non-beacons untouched.
	if f.Intercept(0, "vehicle.1", "vehicle.3", origFrame).OverrideBeacon {
		t.Error("bystander frame corrupted")
	}
	if f.Intercept(0, "vehicle.2", "vehicle.3", mac.Frame{Src: "vehicle.2", Payload: "junk"}).OverrideBeacon {
		t.Error("non-beacon corrupted")
	}
}

func TestCalibrationFault(t *testing.T) {
	if _, err := NewCalibrationFault(0, 0, 0, "v"); err == nil {
		t.Error("all-zero offsets accepted")
	}
	if _, err := NewCalibrationFault(1, 0, 0); err == nil {
		t.Error("no targets accepted")
	}
	f, err := NewCalibrationFault(10, -2, 0.5, "vehicle.2")
	if err != nil {
		t.Fatalf("NewCalibrationFault: %v", err)
	}
	if f.Name() != "calibration" || f.String() == "" {
		t.Error("metadata wrong")
	}
	orig := msg.Beacon{Source: "vehicle.2", Pos: 100, Speed: 25, Accel: 1}
	v := f.Intercept(0, "vehicle.2", "vehicle.3", mac.Frame{Src: "vehicle.2", Beacon: orig, HasBeacon: true})
	if !v.OverrideBeacon || v.Beacon.Pos != 110 || v.Beacon.Speed != 23 || v.Beacon.Accel != 1.5 {
		t.Errorf("biased beacon = %+v", v.Beacon)
	}
}

// TestFaultInjectionEndToEnd runs the three fault models through the full
// three-phase injection flow and checks they degrade the platoon in the
// physically expected direction.
func TestFaultInjectionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection runs in -short mode")
	}
	ts := scenario.PaperScenario()
	cm := scenario.PaperCommModel()

	// collidesUnder injects a model over the 18-28 s window (the
	// reliably severe window of the delay experiments) and reports
	// whether the run collided.
	collidesUnder := func(model AttackModel) bool {
		sim, err := scenario.Build(ts, cm, 1, nil)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := sim.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sim.RunUntil(18 * des.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		if err := applyAttack(sim, model); err != nil {
			t.Fatalf("applyAttack: %v", err)
		}
		if err := sim.RunUntil(28 * des.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		if err := removeAttack(sim, model); err != nil {
			t.Fatalf("removeAttack: %v", err)
		}
		if err := sim.RunUntil(ts.TotalSimTime); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return len(sim.Traffic.Collisions()) > 0
	}

	omission, err := NewOmissionFault("vehicle.2")
	if err != nil {
		t.Fatal(err)
	}
	// A 10 s transmitter omission starting in the deceleration phase
	// leaves Vehicle 3 blind to Vehicle 2's state: collisions follow.
	if !collidesUnder(omission) {
		t.Error("omission fault did not collide in the severe window")
	}

	// Zero-mean corruption noise is low-passed by the 0.5 s actuation
	// lag and must NOT collide — faults are not automatically attacks.
	corrupt, err := NewCorruptionFault(0, 0, 3, rng.New(1, "f"), "vehicle.2")
	if err != nil {
		t.Fatal(err)
	}
	if collidesUnder(corrupt) {
		t.Error("zero-mean corruption noise collided; expected filtering to absorb it")
	}

	// A systematic +2 m/s^2 accelerometer bias, however, poisons the
	// feedforward persistently (like the falsification attack) and does
	// cause collisions.
	bias, err := NewCalibrationFault(0, 0, 2, "vehicle.2")
	if err != nil {
		t.Fatal(err)
	}
	if !collidesUnder(bias) {
		t.Error("systematic accelerometer bias did not collide in the severe window")
	}

	var _ nic.Interceptor = omission
	var _ = classify.Severe
}
