package core

import (
	"testing"

	"comfase/internal/msg"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func TestNewSybilAttackValidation(t *testing.T) {
	forge := func(des.Time) msg.Beacon { return msg.Beacon{} }
	if _, err := NewSybilAttack(nil, 0, "vehicle.2"); err == nil {
		t.Error("nil forger accepted")
	}
	if _, err := NewSybilAttack(forge, 0); err == nil {
		t.Error("no targets accepted")
	}
	a, err := NewSybilAttack(forge, 0, "vehicle.2")
	if err != nil {
		t.Fatalf("NewSybilAttack: %v", err)
	}
	if a.Name() != "sybil" || a.period != 100*des.Millisecond {
		t.Errorf("defaults wrong: %q %v", a.Name(), a.period)
	}
}

func TestSybilLifecycle(t *testing.T) {
	forge := func(des.Time) msg.Beacon { return msg.Beacon{} }
	a, _ := NewSybilAttack(forge, 0, "vehicle.2")
	sim, err := scenario.Build(scenario.PaperScenario(), scenario.PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := a.Uninstall(sim); err == nil {
		t.Error("uninstall before install accepted")
	}
	if err := a.Install(sim); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if err := a.Install(sim); err == nil {
		t.Error("double install accepted")
	}
	if err := a.Uninstall(sim); err != nil {
		t.Fatalf("Uninstall: %v", err)
	}
	bad, _ := NewSybilAttack(forge, 0, "vehicle.99")
	if err := bad.Install(sim); err == nil {
		t.Error("unknown target accepted")
	}
}

// TestSybilLeaderImpersonation is the Boeira-style end-to-end case: a
// Sybil node impersonates the platoon leader and advertises a hard
// constant acceleration. Every follower's leader cache is poisoned (no
// authentication in the channel), the CACC feedforward goes wrong for
// the whole platoon, and collisions follow.
func TestSybilLeaderImpersonation(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sybil run in -short mode")
	}
	forge := func(des.Time) msg.Beacon {
		return msg.Beacon{
			Source:       "evil",
			PlatoonID:    "platoon.0",
			PlatoonIndex: 0, // impersonate the leader
			Speed:        35,
			Accel:        2.5,
			Length:       4,
			Pos:          1e6, // far ahead: spacing comes from radar anyway
		}
	}
	attack, err := NewSybilAttack(forge, 0, "vehicle.2")
	if err != nil {
		t.Fatalf("NewSybilAttack: %v", err)
	}
	sim, err := scenario.Build(scenario.PaperScenario(), scenario.PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.RunUntil(18 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := applyAttack(sim, attack); err != nil {
		t.Fatalf("applyAttack: %v", err)
	}
	if err := sim.RunUntil(28 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := removeAttack(sim, attack); err != nil {
		t.Fatalf("removeAttack: %v", err)
	}
	if err := sim.RunUntil(60 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if attack.Sent == 0 {
		t.Fatal("sybil node sent nothing")
	}
	if len(sim.Traffic.Collisions()) == 0 {
		t.Error("leader impersonation did not destabilise the platoon")
	}
}
