package core_test

import (
	"fmt"

	"comfase/internal/core"
	"comfase/internal/mac"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// The complete Algorithm 1 flow on the paper's scenario: golden run,
// one delay-attack experiment, classification.
func ExampleEngine_RunExperiment() {
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := eng.RunExperiment(core.ExperimentSpec{
		Kind:     core.AttackDelay,
		Targets:  []string{"vehicle.2"},
		Value:    2.0, // delay every frame to/from Vehicle 2 by 2 s
		Start:    18 * des.Second,
		Duration: 10 * des.Second,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("outcome:", res.Outcome)
	fmt.Println("collided:", res.Collided())
	fmt.Println("first collider:", res.Collider)
	// Output:
	// outcome: severe
	// collided: true
	// first collider: vehicle.3
}

// Table II's campaign grids are available as ready-made setups.
func ExamplePaperDelayCampaign() {
	setup := core.PaperDelayCampaign()
	fmt.Println("experiments:", setup.NumExperiments())
	fmt.Println("targets:", setup.Targets)
	// Output:
	// experiments: 11250
	// targets: [vehicle.2]
}

// Attack models decide per (sender, receiver) link; the paper's attacks
// hit both directions of the target vehicle.
func ExampleDelayAttack() {
	attack, err := core.NewDelayAttack(2*des.Second, "vehicle.2")
	if err != nil {
		fmt.Println(err)
		return
	}
	hit := attack.Intercept(0, "vehicle.1", "vehicle.2", mac.Frame{})
	miss := attack.Intercept(0, "vehicle.3", "vehicle.4", mac.Frame{})
	fmt.Println(hit.OverrideDelay, hit.Delay)
	fmt.Println(miss.OverrideDelay)
	// Output:
	// true 2s
	// false
}
