package nic

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
	"comfase/internal/phy"
	"comfase/internal/sim/des"
)

// Jammer is a physical-layer attacker: an RF source that radiates
// jamming energy on the channel, raising the interference floor at every
// receiver. Strong jamming has two effects, both emergent from the PHY
// model rather than scripted: receivers' carrier sense goes busy (so
// their MACs defer transmissions) and the SINR of concurrent frames
// collapses (so receptions fail). This realises the wireless-channel
// jamming the paper's future-work section plans and references
// ([28] reactive jamming, [29] jamming taxonomy).
type Jammer struct {
	id       string
	air      *Air
	pos      func() geo.Vec
	powerDBm float64
	burst    des.Time
	ticker   *des.Ticker
	// bursts counts emitted jamming bursts.
	bursts uint64
}

// AddJammer registers a jamming source on the medium. pos tracks the
// jammer's position (fixed roadside unit or attacker vehicle); powerDBm
// is its transmit power; burst and period define the duty cycle (burst
// == period yields constant jamming). The jammer starts stopped.
func (a *Air) AddJammer(id string, pos func() geo.Vec, powerDBm float64, burst, period des.Time) (*Jammer, error) {
	switch {
	case id == "":
		return nil, errors.New("nic: jammer ID must be non-empty")
	case pos == nil:
		return nil, errors.New("nic: jammer position provider is required")
	case burst <= 0:
		return nil, errors.New("nic: jammer burst must be positive")
	case period < burst:
		return nil, fmt.Errorf("nic: jammer period %v shorter than burst %v", period, burst)
	}
	j := &Jammer{
		id:       id,
		air:      a,
		pos:      pos,
		powerDBm: powerDBm,
		burst:    burst,
	}
	j.ticker = des.NewTicker(a.k, period, des.PriorityNormal, j.emit)
	return j, nil
}

// ID returns the jammer's identifier.
func (j *Jammer) ID() string { return j.id }

// Bursts reports the number of emitted bursts.
func (j *Jammer) Bursts() uint64 { return j.bursts }

// Active reports whether the jammer is radiating.
func (j *Jammer) Active() bool { return j.ticker.Running() }

// Start begins jamming immediately.
func (j *Jammer) Start() { j.ticker.Start(j.air.k.Now()) }

// Stop ceases jamming; bursts already on the air complete.
func (j *Jammer) Stop() { j.ticker.StopTicker() }

// emit radiates one burst: pure interference at every radio.
func (j *Jammer) emit() {
	j.bursts++
	a := j.air
	now := a.k.Now()
	srcPos := j.pos()
	for _, dst := range a.radios {
		dist := srcPos.Dist(dst.pos())
		rxPower := j.powerDBm - a.cfg.PathLoss.LossDB(dist, a.cfg.FreqHz)
		rec := a.acquireReception(dst)
		rec.noise = true
		rec.sentAt = now
		rec.start = now.Add(a.cfg.Delay.Delay(dist))
		rec.end = rec.start.Add(j.burst)
		rec.powerDBm = rxPower
		rec.powerMw = phy.DBmToMilliwatt(rxPower)
		a.k.ScheduleAt(rec.start, rec.beginFn)
		a.k.ScheduleAt(rec.end, rec.endFn)
	}
	a.stats.NoiseBursts++
}
