package nic

import (
	"testing"

	"comfase/internal/geo"
	"comfase/internal/sim/des"
)

func TestAddJammerValidation(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {}})
	pos := func() geo.Vec { return geo.Vec{} }
	if _, err := n.air.AddJammer("", pos, 23, des.Millisecond, des.Millisecond); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := n.air.AddJammer("j", nil, 23, des.Millisecond, des.Millisecond); err == nil {
		t.Error("nil position accepted")
	}
	if _, err := n.air.AddJammer("j", pos, 23, 0, des.Millisecond); err == nil {
		t.Error("zero burst accepted")
	}
	if _, err := n.air.AddJammer("j", pos, 23, 2*des.Millisecond, des.Millisecond); err == nil {
		t.Error("period < burst accepted")
	}
	j, err := n.air.AddJammer("j", pos, 23, des.Millisecond, des.Millisecond)
	if err != nil {
		t.Fatalf("AddJammer: %v", err)
	}
	if j.ID() != "j" || j.Active() {
		t.Error("fresh jammer wrong state")
	}
}

func TestJammerBlocksNearbyReception(t *testing.T) {
	// Two radios 10 m apart; a strong jammer co-located with the
	// receiver. Frames from a are destroyed while the jammer runs.
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	j, err := n.air.AddJammer("j", func() geo.Vec { return geo.Vec{X: 10} },
		23, des.Millisecond, des.Millisecond)
	if err != nil {
		t.Fatalf("AddJammer: %v", err)
	}
	j.Start()
	// Give the jammer a head start so its first burst is on the air,
	// then send. The sender is 10 m from the jammer too, so its MAC will
	// sense a busy channel and defer; eventually the frame transmits but
	// the receiver's SINR stays wrecked while the jammer runs.
	n.k.ScheduleAt(100*des.Microsecond, func() { n.send(t, "a", 1) })
	n.k.ScheduleAt(500*des.Millisecond, j.Stop)
	if err := n.k.RunUntil(2 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if j.Bursts() == 0 {
		t.Fatal("jammer emitted no bursts")
	}
	if j.Active() {
		t.Error("jammer still active after Stop")
	}
	// The frame is eventually delivered once the jammer stops (the MAC
	// kept deferring on carrier sense while jamming was active).
	if len(n.rx["b"]) != 1 {
		t.Fatalf("b received %d frames, want 1 after jammer stops", len(n.rx["b"]))
	}
	if at := n.rx["b"][0].at; at < 500*des.Millisecond {
		t.Errorf("frame delivered at %v, during the jamming window", at)
	}
	if n.air.Stats().NoiseBursts == 0 {
		t.Error("noise bursts not counted")
	}
}

func TestWeakJammerHarmless(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	j, err := n.air.AddJammer("j", func() geo.Vec { return geo.Vec{X: 10} },
		-60, des.Millisecond, des.Millisecond)
	if err != nil {
		t.Fatalf("AddJammer: %v", err)
	}
	j.Start()
	n.k.ScheduleAt(10*des.Millisecond, func() { n.send(t, "a", 1) })
	if err := n.k.RunUntil(des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	j.Stop()
	if len(n.rx["b"]) != 1 {
		t.Errorf("b received %d frames under a -60 dBm jammer, want 1", len(n.rx["b"]))
	}
}

func TestJammerDutyCycle(t *testing.T) {
	// A 1 ms burst every 10 ms: bursts counted per period.
	n := newNet(t, map[string]geo.Vec{"a": {}})
	j, err := n.air.AddJammer("j", func() geo.Vec { return geo.Vec{} },
		23, des.Millisecond, 10*des.Millisecond)
	if err != nil {
		t.Fatalf("AddJammer: %v", err)
	}
	j.Start()
	if err := n.k.RunUntil(95 * des.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	j.Stop()
	if got := j.Bursts(); got != 10 {
		t.Errorf("bursts = %d, want 10 in 95 ms at 10 ms period", got)
	}
}
