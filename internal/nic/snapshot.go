package nic

import (
	"errors"
	"fmt"

	"comfase/internal/mac"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// receptionState is the captured field state of one registered reception.
// The destination radio is stored as an index into the Air's radio list
// (-1 = detached), because the checkpoint must survive the object being
// recycled and rebound in between snapshot and restore.
type receptionState struct {
	frame          mac.Frame
	sentAt         des.Time
	start          des.Time
	end            des.Time
	powerDBm       float64
	powerMw        float64
	delay          des.Time
	interferenceMw float64
	sensedBusy     bool
	noise          bool
	dst            int32
}

// radioState is the captured mutable state of one radio: transmit window,
// carrier-sense counter, the active reception set (as registry indices),
// the backoff stream position and the MAC entity state.
type radioState struct {
	txStart des.Time
	txEnd   des.Time
	busy    int
	active  []int32
	macRNG  rng.State
	mac     mac.EDCAState
}

// AirState is a restorable snapshot of the shared medium: statistics,
// decider stream position, the field state of every registered reception,
// the reception freelist and the per-radio state. The radio set itself is
// configuration — radios are registered at build time and a checkpointed
// experiment group never adds or removes them — so it is validated, not
// captured.
//
// The zero value is ready to use; buffers grow on first SaveState and are
// reused afterwards, so steady-state restore cycles allocate nothing.
type AirState struct {
	stats       Stats
	interceptor Interceptor
	deciderRNG  rng.State
	// numRecs is the registry size at snapshot time. Receptions allocated
	// after the snapshot are unreferenced once the kernel is rewound, so
	// restore returns them to the freelist.
	numRecs int
	recs    []receptionState
	recFree []int32
	radios  []radioState
}

// SaveState captures the medium's mutable state into st, reusing st's
// buffers. It must be paired with a Kernel snapshot taken at the same
// instant: the captured reception set and pending MAC attempts reference
// kernel events by ID.
func (a *Air) SaveState(st *AirState) error {
	st.stats = a.stats
	st.interceptor = a.interceptor
	if err := a.deciderRNG.SaveState(&st.deciderRNG); err != nil {
		return err
	}

	st.numRecs = len(a.allRecs)
	st.recs = st.recs[:0]
	for _, rec := range a.allRecs {
		dst := int32(-1)
		if rec.dst != nil {
			dst = a.radioIndex(rec.dst)
			if dst < 0 {
				return fmt.Errorf("nic: reception bound to unregistered radio %q", rec.dst.id)
			}
		}
		st.recs = append(st.recs, receptionState{
			frame:          rec.frame,
			sentAt:         rec.sentAt,
			start:          rec.start,
			end:            rec.end,
			powerDBm:       rec.powerDBm,
			powerMw:        rec.powerMw,
			delay:          rec.delay,
			interferenceMw: rec.interferenceMw,
			sensedBusy:     rec.sensedBusy,
			noise:          rec.noise,
			dst:            dst,
		})
	}
	st.recFree = st.recFree[:0]
	for _, rec := range a.recFree {
		st.recFree = append(st.recFree, a.recIndex[rec])
	}

	if cap(st.radios) < len(a.radios) {
		st.radios = make([]radioState, len(a.radios))
	}
	st.radios = st.radios[:len(a.radios)]
	for i, r := range a.radios {
		rs := &st.radios[i]
		rs.txStart = r.txStart
		rs.txEnd = r.txEnd
		rs.busy = r.busy
		rs.active = rs.active[:0]
		for _, rec := range r.active {
			rs.active = append(rs.active, a.recIndex[rec])
		}
		if err := r.macRNG.SaveState(&rs.macRNG); err != nil {
			return err
		}
		r.mac.SaveState(&rs.mac)
	}
	return nil
}

// LoadState restores state captured by SaveState, in place on the same
// medium with the same registered radio set. Receptions allocated after
// the snapshot are pushed back onto the freelist: the kernel rewind drops
// the events that referenced them, so recycling them keeps the delivery
// path allocation-free across forked runs.
func (a *Air) LoadState(st *AirState) error {
	if len(st.radios) != len(a.radios) {
		return fmt.Errorf("nic: restore with %d radios, snapshot had %d",
			len(a.radios), len(st.radios))
	}
	if st.numRecs > len(a.allRecs) {
		return errors.New("nic: reception registry shrank since snapshot")
	}
	a.stats = st.stats
	a.interceptor = st.interceptor
	if err := a.deciderRNG.LoadState(&st.deciderRNG); err != nil {
		return err
	}

	for i := 0; i < st.numRecs; i++ {
		rec, rs := a.allRecs[i], &st.recs[i]
		rec.frame = rs.frame
		rec.sentAt = rs.sentAt
		rec.start = rs.start
		rec.end = rs.end
		rec.powerDBm = rs.powerDBm
		rec.powerMw = rs.powerMw
		rec.delay = rs.delay
		rec.interferenceMw = rs.interferenceMw
		rec.sensedBusy = rs.sensedBusy
		rec.noise = rs.noise
		if rs.dst >= 0 {
			rec.dst = a.radios[rs.dst]
		} else {
			rec.dst = nil
		}
	}
	a.recFree = a.recFree[:0]
	for _, idx := range st.recFree {
		a.recFree = append(a.recFree, a.allRecs[idx])
	}
	for i := st.numRecs; i < len(a.allRecs); i++ {
		// Allocated after the snapshot: no restored state references this
		// object, and the kernel rewind dropped its scheduled events.
		rec := a.allRecs[i]
		rec.frame = mac.Frame{}
		rec.dst = nil
		a.recFree = append(a.recFree, rec)
	}

	for i, r := range a.radios {
		rs := &st.radios[i]
		r.txStart = rs.txStart
		r.txEnd = rs.txEnd
		r.busy = rs.busy
		r.active = r.active[:0]
		for _, idx := range rs.active {
			r.active = append(r.active, a.allRecs[idx])
		}
		if err := r.macRNG.LoadState(&rs.macRNG); err != nil {
			return err
		}
		r.mac.LoadState(&rs.mac)
	}
	return nil
}

// radioIndex returns the position of r in the registration order, or -1.
func (a *Air) radioIndex(r *Radio) int32 {
	for i, reg := range a.radios {
		if reg == r {
			return int32(i)
		}
	}
	return -1
}
