package nic

import (
	"testing"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/phy"
	"comfase/internal/sim/des"
	"comfase/internal/wave1609"
)

// beaconNet builds a 4-radio medium for the delivery-path measurements:
// sender plus three receivers in range, mirroring the paper platoon.
func beaconNet(tb testing.TB) (*des.Kernel, *Air, *Radio) {
	tb.Helper()
	k := des.NewKernel()
	air, err := NewAir(Config{
		Kernel:   k,
		Channel:  phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
		Seed:     1,
	})
	if err != nil {
		tb.Fatalf("NewAir: %v", err)
	}
	handler := func(mac.Frame, RxMeta) {}
	positions := []float64{0, 10, 20, 30}
	var src *Radio
	for i, x := range positions {
		x := x
		r, err := air.AddRadio(scratchID(i), func() geo.Vec { return geo.Vec{X: x} }, handler)
		if err != nil {
			tb.Fatalf("AddRadio: %v", err)
		}
		if i == 0 {
			src = r
		}
	}
	return k, air, src
}

func scratchID(i int) string {
	return string([]byte{'v', byte('0' + i)})
}

// deliverOneBeacon enqueues one beacon and drains the kernel: MAC
// contention, transmit fan-out to 3 receivers, begin/end receptions and
// decoded deliveries all run inside.
func deliverOneBeacon(tb testing.TB, k *des.Kernel, src *Radio, seq uint64) {
	b := msg.Beacon{
		Source: src.ID(), Seq: seq, SentAt: k.Now(),
		PlatoonID: "platoon.0", Pos: 12.5, Speed: 25, Accel: 0.1, Length: 4,
	}
	if err := src.SendBeacon(b, 200, mac.ACVideo, seq); err != nil {
		tb.Fatalf("SendBeacon: %v", err)
	}
	if err := k.Run(); err != nil {
		tb.Fatalf("Run: %v", err)
	}
}

// TestBeaconDeliveryZeroAllocs pins the steady-state beacon pipeline —
// SendBeacon through MAC contention, Air fan-out and decoded delivery —
// at zero allocations per beacon, mirroring the kernel's 0 allocs/event
// pin. The first deliveries warm the reception freelist; after that the
// typed beacon path must never touch the allocator.
func TestBeaconDeliveryZeroAllocs(t *testing.T) {
	k, _, src := beaconNet(t)
	var seq uint64
	for i := 0; i < 16; i++ { // warm-up: populate reception pool
		seq++
		deliverOneBeacon(t, k, src, seq)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		deliverOneBeacon(t, k, src, seq)
	})
	if allocs != 0 {
		t.Errorf("beacon delivery allocs/op = %v, want 0", allocs)
	}
}

// TestBeaconDeliveryZeroAllocsWithInterceptor re-pins the path with an
// attack model installed: interception passes the frame by value, so the
// verdict round-trip must not force the frame onto the heap.
func TestBeaconDeliveryZeroAllocsWithInterceptor(t *testing.T) {
	k, air, src := beaconNet(t)
	air.SetInterceptor(delayAll{delay: des.Millisecond})
	var seq uint64
	for i := 0; i < 16; i++ {
		seq++
		deliverOneBeacon(t, k, src, seq)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		deliverOneBeacon(t, k, src, seq)
	})
	if allocs != 0 {
		t.Errorf("intercepted beacon delivery allocs/op = %v, want 0", allocs)
	}
}

type delayAll struct{ delay des.Time }

func (d delayAll) Intercept(_ des.Time, _, _ string, _ mac.Frame) Verdict {
	return Verdict{OverrideDelay: true, Delay: d.delay}
}

// BenchmarkBeaconDelivery measures one complete beacon delivery:
// enqueue, EDCA contention, fan-out to three receivers and decode.
func BenchmarkBeaconDelivery(b *testing.B) {
	k, _, src := beaconNet(b)
	var seq uint64
	for i := 0; i < 16; i++ {
		seq++
		deliverOneBeacon(b, k, src, seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		deliverOneBeacon(b, k, src, seq)
	}
}
