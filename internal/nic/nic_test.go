package nic

import (
	"testing"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/phy"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/wave1609"
)

type rxRecord struct {
	at   des.Time
	f    mac.Frame
	meta RxMeta
}

type testNet struct {
	k   *des.Kernel
	air *Air
	rx  map[string][]rxRecord
}

// newNet builds a medium with radios at fixed positions.
func newNet(t *testing.T, positions map[string]geo.Vec) *testNet {
	t.Helper()
	n := &testNet{k: des.NewKernel(), rx: make(map[string][]rxRecord)}
	air, err := NewAir(Config{
		Kernel:   n.k,
		Channel:  phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("NewAir: %v", err)
	}
	n.air = air
	for id, p := range positions {
		id, p := id, p
		_, err := air.AddRadio(id, func() geo.Vec { return p }, func(f mac.Frame, m RxMeta) {
			n.rx[id] = append(n.rx[id], rxRecord{at: n.k.Now(), f: f, meta: m})
		})
		if err != nil {
			t.Fatalf("AddRadio(%s): %v", id, err)
		}
	}
	return n
}

func (n *testNet) send(t *testing.T, from string, seq uint64) {
	t.Helper()
	r, err := n.air.Radio(from)
	if err != nil {
		t.Fatalf("Radio: %v", err)
	}
	if err := r.Send("payload", 200, mac.ACVideo, seq); err != nil {
		t.Fatalf("Send: %v", err)
	}
}

func TestNewAirValidation(t *testing.T) {
	if _, err := NewAir(Config{}); err == nil {
		t.Error("missing kernel accepted")
	}
	bad := phy.DefaultChannelConfig()
	bad.PathLoss = nil
	if _, err := NewAir(Config{Kernel: des.NewKernel(), Channel: bad,
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous)}); err == nil {
		t.Error("bad channel accepted")
	}
	cfg := Config{Kernel: des.NewKernel(), Channel: phy.DefaultChannelConfig()}
	if _, err := NewAir(cfg); err == nil {
		t.Error("bad schedule accepted")
	}
}

func TestAddRadioValidation(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {}})
	if _, err := n.air.AddRadio("", func() geo.Vec { return geo.Vec{} }, nil); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := n.air.AddRadio("b", nil, nil); err == nil {
		t.Error("nil position accepted")
	}
	if _, err := n.air.AddRadio("a", func() geo.Vec { return geo.Vec{} }, nil); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := n.air.Radio("missing"); err == nil {
		t.Error("unknown radio lookup succeeded")
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{
		"v1": {X: 0}, "v2": {X: 10}, "v3": {X: 20}, "v4": {X: 30},
	})
	n.send(t, "v1", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, id := range []string{"v2", "v3", "v4"} {
		if len(n.rx[id]) != 1 {
			t.Errorf("%s received %d frames, want 1", id, len(n.rx[id]))
		}
	}
	if len(n.rx["v1"]) != 0 {
		t.Error("sender received its own frame")
	}
	if n.air.Stats().Deliveries != 3 {
		t.Errorf("Deliveries = %d, want 3", n.air.Stats().Deliveries)
	}
}

func TestPropagationDelayIsDistanceOverC(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 1000}})
	n.send(t, "a", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["b"]) != 1 {
		t.Fatalf("b received %d", len(n.rx["b"]))
	}
	meta := n.rx["b"][0].meta
	want := des.FromSeconds(1000 / phy.SpeedOfLight) // ~3.3 us
	if meta.PropDelay != want {
		t.Errorf("PropDelay = %v, want %v", meta.PropDelay, want)
	}
	// Delivery = send + AIFS-ish MAC delay + prop delay + airtime; the
	// reception itself spans start+airtime.
	if meta.RxAt != n.rx["b"][0].at {
		t.Error("RxAt inconsistent with delivery time")
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	// Free space at 5.89 GHz with 23 dBm: sensitivity -89 dBm is crossed
	// around 1.5 km; 9 km is far out of range.
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 9000}})
	n.send(t, "a", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["b"]) != 0 {
		t.Error("9 km frame delivered")
	}
	if n.air.Stats().DroppedBelowSensitivity != 1 {
		t.Errorf("DroppedBelowSensitivity = %d, want 1", n.air.Stats().DroppedBelowSensitivity)
	}
}

func TestCarrierSenseRaisesAndClears(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	n.send(t, "a", 1)
	rb, _ := n.air.Radio("b")
	sawBusy := false
	// Poll carrier sense while the frame is on the air (tx starts at
	// AIFS≈71us and lasts 80us).
	n.k.ScheduleAt(120*des.Microsecond, func() {
		if rb.MAC().Busy() {
			sawBusy = true
		}
	})
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sawBusy {
		t.Error("receiver MAC never sensed the medium busy")
	}
	if rb.MAC().Busy() {
		t.Error("carrier sense stuck busy after frame end")
	}
}

func TestHalfDuplexLoss(t *testing.T) {
	// Two radios sending at the same instant cannot hear each other.
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	n.send(t, "a", 1)
	n.send(t, "b", 2)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Both started their AIFS at t=0 with an idle medium, so both
	// transmit simultaneously and are deaf to each other.
	if got := n.air.Stats().DroppedHalfDuplex; got != 2 {
		t.Errorf("DroppedHalfDuplex = %d, want 2", got)
	}
	if len(n.rx["a"])+len(n.rx["b"]) != 0 {
		t.Error("simultaneous transmitters still heard each other")
	}
}

func TestCSMADefersSecondSender(t *testing.T) {
	// Stagger the second sender so it senses the first transmission and
	// defers instead of colliding.
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}, "c": {X: 20}})
	n.send(t, "a", 1)
	n.k.ScheduleAt(100*des.Microsecond, func() { n.send(t, "b", 2) })
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// c hears both frames.
	if len(n.rx["c"]) != 2 {
		t.Fatalf("c received %d frames, want 2", len(n.rx["c"]))
	}
	// b deferred: it also decodes a's frame (it was not transmitting
	// while a's frame was on the air).
	if len(n.rx["b"]) != 1 {
		t.Errorf("b received %d frames, want 1 (deferred, not collided)", len(n.rx["b"]))
	}
}

type fixedVerdict struct {
	v     Verdict
	calls []string
}

func (f *fixedVerdict) Intercept(_ des.Time, src, dst string, _ mac.Frame) Verdict {
	f.calls = append(f.calls, src+">"+dst)
	return f.v
}

func TestInterceptorDrop(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	ic := &fixedVerdict{v: Verdict{Drop: true}}
	n.air.SetInterceptor(ic)
	n.send(t, "a", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["b"]) != 0 {
		t.Error("dropped frame delivered")
	}
	if n.air.Stats().DroppedByInterceptor != 1 {
		t.Errorf("DroppedByInterceptor = %d", n.air.Stats().DroppedByInterceptor)
	}
	if len(ic.calls) != 1 || ic.calls[0] != "a>b" {
		t.Errorf("interceptor calls = %v", ic.calls)
	}
}

func TestInterceptorDelayOverride(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	n.air.SetInterceptor(&fixedVerdict{v: Verdict{OverrideDelay: true, Delay: 2 * des.Second}})
	n.send(t, "a", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["b"]) != 1 {
		t.Fatalf("b received %d", len(n.rx["b"]))
	}
	got := n.rx["b"][0].meta
	if got.PropDelay != 2*des.Second {
		t.Errorf("PropDelay = %v, want 2s override", got.PropDelay)
	}
	if got.RxAt < 2*des.Second {
		t.Errorf("delivery at %v, want after 2s", got.RxAt)
	}
	if n.air.Stats().DelayOverridden != 1 {
		t.Errorf("DelayOverridden = %d", n.air.Stats().DelayOverridden)
	}
}

func TestInterceptorPayloadFalsification(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	n.air.SetInterceptor(&fixedVerdict{v: Verdict{Payload: "falsified"}})
	n.send(t, "a", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["b"]) != 1 {
		t.Fatalf("b received %d", len(n.rx["b"]))
	}
	if got, _ := n.rx["b"][0].f.Payload.(string); got != "falsified" {
		t.Errorf("payload = %q, want falsified", got)
	}
}

func TestInterceptorRemoval(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	n.air.SetInterceptor(&fixedVerdict{v: Verdict{Drop: true}})
	n.air.SetInterceptor(nil)
	if n.air.Interceptor() != nil {
		t.Fatal("interceptor not removed")
	}
	n.send(t, "a", 1)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["b"]) != 1 {
		t.Error("frame not delivered after interceptor removal")
	}
}

func TestDoSStyleDelayNeverDeliversWithinHorizon(t *testing.T) {
	// The DoS model sets PD = 60 s; within a 60 s RunUntil horizon the
	// delivery events never fire.
	n := newNet(t, map[string]geo.Vec{"a": {X: 0}, "b": {X: 10}})
	n.air.SetInterceptor(&fixedVerdict{v: Verdict{OverrideDelay: true, Delay: 60 * des.Second}})
	n.send(t, "a", 1)
	if err := n.k.RunUntil(60 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(n.rx["b"]) != 0 {
		t.Error("DoS-delayed frame delivered within horizon")
	}
}

func TestBeaconingAllPairsDeliver(t *testing.T) {
	// 4 radios beaconing at 10 Hz for 2 s: 4*20 frames, each heard by 3
	// receivers, modulo rare CSMA losses. With CSMA deferral there
	// should be zero loss at these ranges.
	n := newNet(t, map[string]geo.Vec{
		"v1": {X: 30}, "v2": {X: 20}, "v3": {X: 10}, "v4": {X: 0},
	})
	for i, id := range []string{"v1", "v2", "v3", "v4"} {
		id := id
		phase := des.Time(i) * 2 * des.Millisecond // staggered like real CAMs
		tk := des.NewTicker(n.k, 100*des.Millisecond, des.PriorityNormal, func() {
			n.send(t, id, 0)
		})
		tk.Start(phase)
	}
	if err := n.k.RunUntil(2 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	total := 0
	for _, id := range []string{"v1", "v2", "v3", "v4"} {
		total += len(n.rx[id])
	}
	sent := n.air.Stats().FramesSent
	if sent < 80 {
		t.Fatalf("sent %d frames, want >= 80", sent)
	}
	if uint64(total) != 3*sent {
		t.Errorf("delivered %d, want %d (3 per frame)", total, 3*sent)
	}
}

func TestProbabilisticDeciderDropsAtLowSNR(t *testing.T) {
	cfg := phy.DefaultChannelConfig()
	cfg.Decider = phy.DeciderProbabilistic
	k := des.NewKernel()
	air, err := NewAir(Config{
		Kernel: k, Channel: cfg,
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous), Seed: 3,
	})
	if err != nil {
		t.Fatalf("NewAir: %v", err)
	}
	got := 0
	// 1.3 km: above sensitivity (~-86 dBm) but SNR ~12 dB, PER should be
	// essentially zero for QPSK 1/2; so frames still deliver. Move to a
	// distance with marginal SNR instead: ~2 km is below sensitivity.
	// Use 1.4 km: rx ~ -86.6, SNR ~11.4 -> deliverable.
	a, _ := air.AddRadio("a", func() geo.Vec { return geo.Vec{} }, nil)
	_, _ = air.AddRadio("b", func() geo.Vec { return geo.Vec{X: 1400} },
		func(mac.Frame, RxMeta) { got++ })
	for i := 0; i < 20; i++ {
		k.ScheduleAt(des.Time(i)*10*des.Millisecond, func() {
			_ = a.Send("x", 200, mac.ACVideo, 0)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == 0 {
		t.Error("probabilistic decider delivered nothing at decodable SNR")
	}
}

// TestHiddenTerminalSINRCollision reproduces the classic hidden-terminal
// failure: two senders out of carrier-sense range of each other transmit
// simultaneously; at a receiver in the middle both frames arrive with
// comparable power, the SINR collapses, and both are lost.
func TestHiddenTerminalSINRCollision(t *testing.T) {
	// a <-1200m-> mid <-1200m-> b: a and b are 2400 m apart, below both
	// sensitivity and CCA at each other, so CSMA cannot help them.
	n := newNet(t, map[string]geo.Vec{
		"a": {X: 0}, "mid": {X: 1200}, "b": {X: 2400},
	})
	n.send(t, "a", 1)
	n.send(t, "b", 2)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["mid"]) != 0 {
		t.Errorf("mid decoded %d frames through a collision", len(n.rx["mid"]))
	}
	if n.air.Stats().DroppedSINR < 2 {
		t.Errorf("DroppedSINR = %d, want >= 2", n.air.Stats().DroppedSINR)
	}
}

// TestStaggeredHiddenTerminalsStillCollide shifts the second hidden
// sender into the middle of the first transmission: partial overlap must
// also destroy both frames (worst-case interference accounting).
func TestStaggeredHiddenTerminalsStillCollide(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{
		"a": {X: 0}, "mid": {X: 1200}, "b": {X: 2400},
	})
	n.send(t, "a", 1)
	// Frame airtime is 80 us; b starts while a's frame is in the air at
	// mid (a transmits at ~71 us + prop delay, so 120 us overlaps).
	n.k.ScheduleAt(60*des.Microsecond, func() { n.send(t, "b", 2) })
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(n.rx["mid"]) != 0 {
		t.Errorf("mid decoded %d frames through a partial collision", len(n.rx["mid"]))
	}
}

// TestNearFarCapture: a strong nearby transmitter survives interference
// from a weak distant one (capture effect through the SINR decider).
func TestNearFarCapture(t *testing.T) {
	n := newNet(t, map[string]geo.Vec{
		"near": {X: 10}, "rx": {X: 0}, "far": {X: 2300},
	})
	n.send(t, "near", 1)
	n.send(t, "far", 2)
	if err := n.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The near frame (rx ~ -45 dBm) shrugs off the far one (~ -91 dBm).
	got := 0
	for _, r := range n.rx["rx"] {
		if r.f.Src == "near" {
			got++
		}
	}
	if got != 1 {
		t.Errorf("near frame not captured: %d", got)
	}
}

// TestNakagamiFadingCausesLossAtRange: with fast fading, a link near the
// edge of the deterministic range loses a visible fraction of frames,
// while a very short link stays essentially loss-free.
func TestNakagamiFadingCausesLossAtRange(t *testing.T) {
	build := func(dist float64) (*des.Kernel, *Air, *int) {
		cfg := phy.DefaultChannelConfig()
		cfg.Fading = phy.NewNakagamiFading(rng.New(7, "fading"))
		k := des.NewKernel()
		air, err := NewAir(Config{
			Kernel: k, Channel: cfg,
			Schedule: wave1609.NewSchedule(wave1609.AccessContinuous), Seed: 7,
		})
		if err != nil {
			t.Fatalf("NewAir: %v", err)
		}
		got := 0
		a, _ := air.AddRadio("a", func() geo.Vec { return geo.Vec{} }, nil)
		_, _ = air.AddRadio("b", func() geo.Vec { return geo.Vec{X: dist} },
			func(mac.Frame, RxMeta) { got++ })
		for i := 0; i < 200; i++ {
			k.ScheduleAt(des.Time(i)*10*des.Millisecond, func() {
				_ = a.Send("x", 200, mac.ACVideo, 0)
			})
		}
		return k, air, &got
	}
	k, _, gotNear := build(10)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *gotNear < 195 {
		t.Errorf("near link delivered %d/200 under fading, want ~200", *gotNear)
	}
	k2, _, gotFar := build(900)
	if err := k2.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *gotFar >= 195 || *gotFar == 0 {
		t.Errorf("900 m link delivered %d/200 under fading, want partial loss", *gotFar)
	}
}
