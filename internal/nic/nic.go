// Package nic assembles the per-vehicle network interface (EDCA MAC +
// 802.11p PHY + 1609.4 schedule) and the shared Air medium that couples
// them — the complete inter-vehicle communication model of the Veins
// substitute.
//
// Air is also ComFASE's injection point: every frame delivery passes
// through an optional Interceptor that can drop frames, override the
// channel's propagation delay (the paper's delay and DoS attack models,
// Table I) or falsify payloads before they reach the receiver. Swapping
// the interceptor is the Go equivalent of Algorithm 1's CommModelEditor.
package nic

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/phy"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/wave1609"
)

// MACOverheadBits is the MAC header + FCS overhead added to every
// application payload (24-byte 802.11 header + 4-byte FCS).
const MACOverheadBits = (24 + 4) * 8

// RxMeta describes how a frame arrived at a receiver.
type RxMeta struct {
	// Src is the transmitting node.
	Src string
	// SentAt is the transmission start time.
	SentAt des.Time
	// RxAt is the delivery time (end of reception).
	RxAt des.Time
	// PropDelay is the propagation delay applied to this link — the
	// attack-visible quantity.
	PropDelay des.Time
	// RxPowerDBm is the received signal power.
	RxPowerDBm float64
	// SINRdB is the signal-to-interference-plus-noise ratio the decider
	// used.
	SINRdB float64
}

// RxHandler consumes successfully decoded frames.
type RxHandler func(f mac.Frame, meta RxMeta)

// Verdict is an Interceptor's decision about one frame delivery on one
// link.
type Verdict struct {
	// Drop discards the frame for this receiver.
	Drop bool
	// OverrideDelay, when true, replaces the channel's propagation delay
	// with Delay — the mechanism of the paper's delay/DoS attacks.
	OverrideDelay bool
	// Delay is the overriding propagation delay.
	Delay des.Time
	// Payload, when non-nil, replaces the frame payload (falsification
	// attacks).
	Payload any
}

// Interceptor inspects every (transmitter, receiver) frame delivery while
// installed. Implementations are the ComFASE attack models.
type Interceptor interface {
	// Intercept is called at transmission time for each receiver.
	Intercept(now des.Time, src, dst string, payload any) Verdict
}

// Stats counts medium-level events.
type Stats struct {
	// FramesSent counts transmissions started.
	FramesSent uint64
	// Deliveries counts successfully decoded frames.
	Deliveries uint64
	// DroppedBelowSensitivity counts receptions under the sensitivity
	// floor (they still contribute interference).
	DroppedBelowSensitivity uint64
	// DroppedSINR counts decoding failures.
	DroppedSINR uint64
	// DroppedHalfDuplex counts frames lost because the receiver was
	// transmitting.
	DroppedHalfDuplex uint64
	// DroppedOffChannel counts frames lost because the receiver was
	// tuned to the SCH (alternating 1609.4 access).
	DroppedOffChannel uint64
	// DroppedByInterceptor counts frames dropped by the attack model.
	DroppedByInterceptor uint64
	// DelayOverridden counts deliveries whose propagation delay the
	// attack model rewrote.
	DelayOverridden uint64
	// NoiseBursts counts jamming bursts radiated onto the medium.
	NoiseBursts uint64
}

// Config configures the shared medium.
type Config struct {
	// Kernel drives all radio events (required).
	Kernel *des.Kernel
	// Channel is the analog-channel model (required valid).
	Channel phy.ChannelConfig
	// Schedule is the 1609.4 channel-access schedule shared by all
	// radios.
	Schedule wave1609.Schedule
	// Seed derives the backoff and decider random streams.
	Seed uint64
}

// Air is the shared broadcast medium connecting all radios.
type Air struct {
	k     *des.Kernel
	cfg   phy.ChannelConfig
	sched wave1609.Schedule

	radios []*Radio
	byID   map[string]*Radio

	interceptor Interceptor
	deciderRNG  *rng.Source
	seed        uint64

	stats Stats
}

// NewAir builds an empty medium.
func NewAir(cfg Config) (*Air, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("nic: Config.Kernel is required")
	}
	if err := cfg.Channel.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	return &Air{
		k:          cfg.Kernel,
		cfg:        cfg.Channel,
		sched:      cfg.Schedule,
		byID:       make(map[string]*Radio, 8),
		deciderRNG: rng.New(cfg.Seed, "nic.decider"),
		seed:       cfg.Seed,
	}, nil
}

// SetInterceptor installs (or, with nil, removes) the attack model. This
// is ComFASE's CommModelEditor: Algorithm 1 applies it at attackStartTime
// and removes it at attackEndTime.
func (a *Air) SetInterceptor(i Interceptor) { a.interceptor = i }

// Interceptor returns the installed attack model, if any.
func (a *Air) Interceptor() Interceptor { return a.interceptor }

// Stats returns a snapshot of the medium counters.
func (a *Air) Stats() Stats { return a.stats }

// Channel returns the analog channel configuration.
func (a *Air) Channel() phy.ChannelConfig { return a.cfg }

// Radio returns a registered radio by node ID.
func (a *Air) Radio(id string) (*Radio, error) {
	r, ok := a.byID[id]
	if !ok {
		return nil, fmt.Errorf("nic: unknown radio %q", id)
	}
	return r, nil
}

// AddRadio registers a node on the medium. pos must report the node's
// antenna position; handler receives decoded frames.
func (a *Air) AddRadio(id string, pos func() geo.Vec, handler RxHandler) (*Radio, error) {
	if id == "" {
		return nil, errors.New("nic: radio ID must be non-empty")
	}
	if pos == nil {
		return nil, errors.New("nic: position provider is required")
	}
	if _, dup := a.byID[id]; dup {
		return nil, fmt.Errorf("nic: duplicate radio %q", id)
	}
	r := &Radio{
		id:      id,
		air:     a,
		pos:     pos,
		handler: handler,
	}
	m, err := mac.New(mac.Config{
		Kernel:   a.k,
		RNG:      rng.New(a.seed, "nic.mac."+id),
		Schedule: a.sched,
		Airtime:  a.airtime,
		Transmit: func(f mac.Frame) { a.transmit(r, f) },
	})
	if err != nil {
		return nil, err
	}
	r.mac = m
	a.radios = append(a.radios, r)
	a.byID[id] = r
	return r, nil
}

// airtime converts PSDU bits to on-air time via the configured MCS.
func (a *Air) airtime(bits int) des.Time {
	us := a.cfg.MCS.FrameAirtimeUs(bits)
	return des.FromSeconds(us / 1e6)
}

// transmit fans a started transmission out to every other radio.
func (a *Air) transmit(src *Radio, f mac.Frame) {
	now := a.k.Now()
	dur := a.airtime(f.Bits)
	a.stats.FramesSent++
	src.txStart = now
	src.txEnd = now.Add(dur)
	a.k.ScheduleAt(src.txEnd, src.mac.TxDone)

	srcPos := src.pos()
	for _, dst := range a.radios {
		if dst == src {
			continue
		}
		dist := srcPos.Dist(dst.pos())
		delay := a.cfg.Delay.Delay(dist)
		payload := f.Payload
		if a.interceptor != nil {
			v := a.interceptor.Intercept(now, src.id, dst.id, payload)
			if v.Drop {
				a.stats.DroppedByInterceptor++
				continue
			}
			if v.OverrideDelay {
				delay = v.Delay
				a.stats.DelayOverridden++
			}
			if v.Payload != nil {
				payload = v.Payload
			}
		}
		rxPower := a.cfg.RxPowerDBm(dist)
		if a.cfg.Fading != nil {
			rxPower += a.cfg.Fading.GainDB(dist)
		}
		rec := &reception{
			frame:    f,
			payload:  payload,
			sentAt:   now,
			start:    now.Add(delay),
			powerDBm: rxPower,
			delay:    delay,
		}
		rec.end = rec.start.Add(dur)
		a.k.ScheduleAt(rec.start, func() { dst.beginReception(rec) })
		a.k.ScheduleAt(rec.end, func() { dst.endReception(rec) })
	}
}

// reception is one frame arriving at one radio.
type reception struct {
	frame    mac.Frame
	payload  any
	sentAt   des.Time
	start    des.Time
	end      des.Time
	powerDBm float64
	delay    des.Time
	// interferenceMw accumulates the power of every overlapping
	// reception at this radio (worst-case SINR, like Veins' per-segment
	// minimum).
	interferenceMw float64
	// sensedBusy records whether this reception raised carrier sense.
	sensedBusy bool
	// noise marks pure interference (jamming bursts): it contributes to
	// carrier sense and SINR but is never decoded.
	noise bool
}

// Radio is one node's network interface on the Air.
type Radio struct {
	id      string
	air     *Air
	pos     func() geo.Vec
	handler RxHandler
	mac     *mac.EDCA

	active  []*reception
	txStart des.Time
	txEnd   des.Time
	busy    int
}

// ID returns the node ID.
func (r *Radio) ID() string { return r.id }

// MAC exposes the EDCA entity (for stats and tests).
func (r *Radio) MAC() *mac.EDCA { return r.mac }

// Send broadcasts an application payload of the given size (payload bits,
// the paper's packetSize) at the given access category. MAC overhead is
// added automatically.
func (r *Radio) Send(payload any, payloadBits int, ac mac.AccessCategory, seq uint64) error {
	return r.mac.Enqueue(mac.Frame{
		Seq:     seq,
		Src:     r.id,
		Bits:    payloadBits + MACOverheadBits,
		AC:      ac,
		Payload: payload,
	})
}

// beginReception registers an incoming frame: it interferes with every
// overlapping reception and may raise carrier sense.
func (r *Radio) beginReception(rec *reception) {
	mw := phy.DBmToMilliwatt(rec.powerDBm)
	for _, other := range r.active {
		other.interferenceMw += mw
		rec.interferenceMw += phy.DBmToMilliwatt(other.powerDBm)
	}
	r.active = append(r.active, rec)
	if rec.powerDBm >= r.air.cfg.CCAThresholdDBm {
		rec.sensedBusy = true
		r.busy++
		if r.busy == 1 {
			r.mac.ChannelBusy()
		}
	}
}

// endReception finishes an incoming frame: decide, deliver, release
// carrier sense.
func (r *Radio) endReception(rec *reception) {
	for i, other := range r.active {
		if other == rec {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	if rec.sensedBusy {
		r.busy--
		if r.busy == 0 {
			r.mac.ChannelIdle()
		}
	}

	a := r.air
	cfg := a.cfg
	switch {
	case rec.noise:
		// Jamming bursts are never decoded; their effect is the carrier
		// sense and interference they already contributed.
		return
	case rec.powerDBm < cfg.SensitivityDBm:
		a.stats.DroppedBelowSensitivity++
		return
	case r.txStart < rec.end && rec.start < r.txEnd:
		// Half duplex: we transmitted during part of the reception.
		a.stats.DroppedHalfDuplex++
		return
	case !a.sched.InCCH(rec.start) || !a.sched.InCCH(rec.end):
		a.stats.DroppedOffChannel++
		return
	}

	sinr := cfg.SINRdB(rec.powerDBm, phy.MilliwattToDBm(rec.interferenceMw))
	ok := false
	switch cfg.Decider {
	case phy.DeciderThreshold:
		ok = sinr >= cfg.MCS.MinSNRdB()
	case phy.DeciderProbabilistic:
		per := cfg.MCS.PacketErrorRate(sinr, rec.frame.Bits)
		ok = !a.deciderRNG.Bernoulli(per)
	}
	if !ok {
		a.stats.DroppedSINR++
		return
	}
	a.stats.Deliveries++
	if r.handler == nil {
		return
	}
	f := rec.frame
	f.Payload = rec.payload
	r.handler(f, RxMeta{
		Src:        f.Src,
		SentAt:     rec.sentAt,
		RxAt:       rec.end,
		PropDelay:  rec.delay,
		RxPowerDBm: rec.powerDBm,
		SINRdB:     sinr,
	})
}
