// Package nic assembles the per-vehicle network interface (EDCA MAC +
// 802.11p PHY + 1609.4 schedule) and the shared Air medium that couples
// them — the complete inter-vehicle communication model of the Veins
// substitute.
//
// Air is also ComFASE's injection point: every frame delivery passes
// through an optional Interceptor that can drop frames, override the
// channel's propagation delay (the paper's delay and DoS attack models,
// Table I) or falsify payloads before they reach the receiver. Swapping
// the interceptor is the Go equivalent of Algorithm 1's CommModelEditor.
package nic

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/phy"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/wave1609"
)

// MACOverheadBits is the MAC header + FCS overhead added to every
// application payload (24-byte 802.11 header + 4-byte FCS).
const MACOverheadBits = (24 + 4) * 8

// RxMeta describes how a frame arrived at a receiver.
type RxMeta struct {
	// Src is the transmitting node.
	Src string
	// SentAt is the transmission start time.
	SentAt des.Time
	// RxAt is the delivery time (end of reception).
	RxAt des.Time
	// PropDelay is the propagation delay applied to this link — the
	// attack-visible quantity.
	PropDelay des.Time
	// RxPowerDBm is the received signal power.
	RxPowerDBm float64
	// SINRdB is the signal-to-interference-plus-noise ratio the decider
	// used.
	SINRdB float64
}

// RxHandler consumes successfully decoded frames.
type RxHandler func(f mac.Frame, meta RxMeta)

// Verdict is an Interceptor's decision about one frame delivery on one
// link.
type Verdict struct {
	// Drop discards the frame for this receiver.
	Drop bool
	// OverrideDelay, when true, replaces the channel's propagation delay
	// with Delay — the mechanism of the paper's delay/DoS attacks.
	OverrideDelay bool
	// Delay is the overriding propagation delay.
	Delay des.Time
	// OverrideBeacon, when true, replaces an inline beacon with Beacon
	// (falsification and sensor-fault models). It is ignored for frames
	// without an inline beacon.
	OverrideBeacon bool
	// Beacon is the overriding beacon.
	Beacon msg.Beacon
	// Payload, when non-nil, replaces the generic frame payload.
	Payload any
}

// Interceptor inspects every (transmitter, receiver) frame delivery while
// installed. Implementations are the ComFASE attack models. The frame is
// passed by value so the hot path never forces it onto the heap;
// implementations read f.Beacon/f.HasBeacon (or f.Payload for
// non-beacon traffic) and return overrides by value in the Verdict.
type Interceptor interface {
	// Intercept is called at transmission time for each receiver.
	Intercept(now des.Time, src, dst string, f mac.Frame) Verdict
}

// Stats counts medium-level events.
type Stats struct {
	// FramesSent counts transmissions started.
	FramesSent uint64
	// Deliveries counts successfully decoded frames.
	Deliveries uint64
	// DroppedBelowSensitivity counts receptions under the sensitivity
	// floor (they still contribute interference).
	DroppedBelowSensitivity uint64
	// DroppedSINR counts decoding failures.
	DroppedSINR uint64
	// DroppedHalfDuplex counts frames lost because the receiver was
	// transmitting.
	DroppedHalfDuplex uint64
	// DroppedOffChannel counts frames lost because the receiver was
	// tuned to the SCH (alternating 1609.4 access).
	DroppedOffChannel uint64
	// DroppedByInterceptor counts frames dropped by the attack model.
	DroppedByInterceptor uint64
	// DelayOverridden counts deliveries whose propagation delay the
	// attack model rewrote.
	DelayOverridden uint64
	// NoiseBursts counts jamming bursts radiated onto the medium.
	NoiseBursts uint64
}

// Config configures the shared medium.
type Config struct {
	// Kernel drives all radio events (required).
	Kernel *des.Kernel
	// Channel is the analog-channel model (required valid).
	Channel phy.ChannelConfig
	// Schedule is the 1609.4 channel-access schedule shared by all
	// radios.
	Schedule wave1609.Schedule
	// Seed derives the backoff and decider random streams.
	Seed uint64
}

// Air is the shared broadcast medium connecting all radios.
type Air struct {
	k     *des.Kernel
	cfg   phy.ChannelConfig
	sched wave1609.Schedule

	radios []*Radio
	byID   map[string]*Radio
	// spare holds radios detached by Reset, recycled by AddRadio so a
	// reused medium rebuilds its node set without reallocating radio/MAC
	// state.
	spare []*Radio

	interceptor Interceptor
	deciderRNG  *rng.Source
	seed        uint64

	// noiseMw caches DBmToMilliwatt(Channel.NoiseFloorDBm) — a pure
	// function of the configuration hoisted out of the per-delivery SINR
	// computation (bit-identical to converting on every call).
	noiseMw float64

	// airtimeFn is the bound airtime method, created once and shared by
	// every MAC so per-radio wiring does not allocate method values.
	airtimeFn func(int) des.Time
	// recFree is the reception freelist: finished receptions are recycled
	// here with their two scheduling closures intact, so steady-state
	// frame delivery allocates nothing.
	recFree []*reception
	// allRecs registers every reception ever allocated on this medium, in
	// creation order, and recIndex maps each back to its registry slot.
	// The registry is what lets a checkpoint capture in-flight receptions
	// by identity: kernel handlers hold pointers to specific reception
	// objects, so restore must rewind those objects' fields in place.
	allRecs  []*reception
	recIndex map[*reception]int32

	stats Stats
}

// NewAir builds an empty medium.
func NewAir(cfg Config) (*Air, error) {
	a := &Air{byID: make(map[string]*Radio, 8)}
	a.airtimeFn = a.airtime
	if err := a.Reset(cfg); err != nil {
		return nil, err
	}
	return a, nil
}

// Reset reinitialises the medium for a new experiment: configuration
// replaced, interceptor removed, stats zeroed, decider stream rewound,
// and all registered radios detached into a spare pool that AddRadio
// recycles. A reset-and-rebuilt medium replays a freshly constructed one
// bit-for-bit; only the allocations are saved.
func (a *Air) Reset(cfg Config) error {
	if cfg.Kernel == nil {
		return errors.New("nic: Config.Kernel is required")
	}
	if err := cfg.Channel.Validate(); err != nil {
		return err
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return err
	}
	a.k = cfg.Kernel
	a.cfg = cfg.Channel
	a.sched = cfg.Schedule
	a.seed = cfg.Seed
	a.noiseMw = phy.DBmToMilliwatt(cfg.Channel.NoiseFloorDBm)
	a.interceptor = nil
	a.stats = Stats{}
	if a.deciderRNG == nil {
		a.deciderRNG = rng.New(cfg.Seed, "nic.decider")
	} else {
		a.deciderRNG.Reseed(cfg.Seed, "nic.decider")
	}
	for _, r := range a.radios {
		// Drop references into the previous experiment's object graph so
		// the pool does not pin it in memory.
		for i := range r.active {
			r.active[i] = nil
		}
		r.active = r.active[:0]
		r.pos = nil
		r.handler = nil
		a.spare = append(a.spare, r)
	}
	a.radios = a.radios[:0]
	clear(a.byID)
	return nil
}

// SetInterceptor installs (or, with nil, removes) the attack model. This
// is ComFASE's CommModelEditor: Algorithm 1 applies it at attackStartTime
// and removes it at attackEndTime.
func (a *Air) SetInterceptor(i Interceptor) { a.interceptor = i }

// Interceptor returns the installed attack model, if any.
func (a *Air) Interceptor() Interceptor { return a.interceptor }

// Stats returns a snapshot of the medium counters.
func (a *Air) Stats() Stats { return a.stats }

// Channel returns the analog channel configuration.
func (a *Air) Channel() phy.ChannelConfig { return a.cfg }

// Radio returns a registered radio by node ID.
func (a *Air) Radio(id string) (*Radio, error) {
	r, ok := a.byID[id]
	if !ok {
		return nil, fmt.Errorf("nic: unknown radio %q", id)
	}
	return r, nil
}

// AddRadio registers a node on the medium. pos must report the node's
// antenna position; handler receives decoded frames. Radios detached by
// a prior Reset are recycled: their MAC entity is reset in place and
// their backoff stream rewound, reproducing a fresh radio exactly.
func (a *Air) AddRadio(id string, pos func() geo.Vec, handler RxHandler) (*Radio, error) {
	if id == "" {
		return nil, errors.New("nic: radio ID must be non-empty")
	}
	if pos == nil {
		return nil, errors.New("nic: position provider is required")
	}
	if _, dup := a.byID[id]; dup {
		return nil, fmt.Errorf("nic: duplicate radio %q", id)
	}
	if n := len(a.spare); n > 0 {
		r := a.spare[n-1]
		a.spare = a.spare[:n-1]
		r.id = id
		r.pos = pos
		r.handler = handler
		r.txStart = 0
		r.txEnd = 0
		r.busy = 0
		r.macRNG.Reseed(a.seed, "nic.mac."+id)
		if err := r.mac.Reset(r.macConfig()); err != nil {
			return nil, err
		}
		a.radios = append(a.radios, r)
		a.byID[id] = r
		return r, nil
	}
	r := &Radio{
		id:      id,
		air:     a,
		pos:     pos,
		handler: handler,
		macRNG:  rng.New(a.seed, "nic.mac."+id),
	}
	m, err := mac.New(r.macConfig())
	if err != nil {
		return nil, err
	}
	r.mac = m
	r.txDoneFn = m.TxDone
	a.radios = append(a.radios, r)
	a.byID[id] = r
	return r, nil
}

// macConfig assembles the MAC wiring for this radio. The transmit hook
// captures only the radio, whose identity is stable across pool reuse.
func (r *Radio) macConfig() mac.Config {
	a := r.air
	return mac.Config{
		Kernel:   a.k,
		RNG:      r.macRNG,
		Schedule: a.sched,
		Airtime:  a.airtimeFn,
		Transmit: r.transmitFrame,
	}
}

// transmitFrame adapts Air.transmit to the MAC's Transmit hook.
func (r *Radio) transmitFrame(f mac.Frame) { r.air.transmit(r, f) }

// airtime converts PSDU bits to on-air time via the configured MCS.
func (a *Air) airtime(bits int) des.Time {
	us := a.cfg.MCS.FrameAirtimeUs(bits)
	return des.FromSeconds(us / 1e6)
}

// acquireReception takes a reception from the freelist (or allocates one
// with its scheduling closures) and binds it to a receiver. All payload
// fields are zeroed; the caller fills them in.
func (a *Air) acquireReception(dst *Radio) *reception {
	if n := len(a.recFree); n > 0 {
		rec := a.recFree[n-1]
		a.recFree = a.recFree[:n-1]
		*rec = reception{beginFn: rec.beginFn, endFn: rec.endFn, dst: dst}
		return rec
	}
	rec := &reception{dst: dst}
	rec.beginFn = func() { rec.dst.beginReception(rec) }
	rec.endFn = func() { rec.dst.air.finishReception(rec) }
	if a.recIndex == nil {
		a.recIndex = make(map[*reception]int32, 16)
	}
	a.recIndex[rec] = int32(len(a.allRecs))
	a.allRecs = append(a.allRecs, rec)
	return rec
}

// finishReception completes a reception at its receiver and recycles it.
func (a *Air) finishReception(rec *reception) {
	rec.dst.endReception(rec)
	rec.frame = mac.Frame{}
	rec.dst = nil
	a.recFree = append(a.recFree, rec)
}

// transmit fans a started transmission out to every other radio.
func (a *Air) transmit(src *Radio, f mac.Frame) {
	now := a.k.Now()
	dur := a.airtime(f.Bits)
	a.stats.FramesSent++
	src.txStart = now
	src.txEnd = now.Add(dur)
	a.k.ScheduleAt(src.txEnd, src.txDoneFn)

	srcPos := src.pos()
	for _, dst := range a.radios {
		if dst == src {
			continue
		}
		dist := srcPos.Dist(dst.pos())
		delay := a.cfg.Delay.Delay(dist)
		df := f
		if a.interceptor != nil {
			v := a.interceptor.Intercept(now, src.id, dst.id, f)
			if v.Drop {
				a.stats.DroppedByInterceptor++
				continue
			}
			if v.OverrideDelay {
				delay = v.Delay
				a.stats.DelayOverridden++
			}
			if v.OverrideBeacon && df.HasBeacon {
				df.Beacon = v.Beacon
			}
			if v.Payload != nil {
				df.Payload = v.Payload
			}
		}
		rxPower := a.cfg.RxPowerDBm(dist)
		if a.cfg.Fading != nil {
			rxPower += a.cfg.Fading.GainDB(dist)
		}
		rec := a.acquireReception(dst)
		rec.frame = df
		rec.sentAt = now
		rec.start = now.Add(delay)
		rec.end = rec.start.Add(dur)
		rec.powerDBm = rxPower
		rec.powerMw = phy.DBmToMilliwatt(rxPower)
		rec.delay = delay
		a.k.ScheduleAt(rec.start, rec.beginFn)
		a.k.ScheduleAt(rec.end, rec.endFn)
	}
}

// reception is one frame arriving at one radio. Receptions are pooled on
// the Air: acquireReception recycles finished entries together with the
// two pre-bound scheduling closures, so the per-link delivery path is
// allocation-free in steady state.
type reception struct {
	frame  mac.Frame
	sentAt des.Time
	start  des.Time
	end    des.Time
	// powerDBm is the received power; powerMw caches its milliwatt
	// conversion (same pure function, computed once at transmit time
	// instead of per overlapping reception).
	powerDBm float64
	powerMw  float64
	delay    des.Time
	// interferenceMw accumulates the power of every overlapping
	// reception at this radio (worst-case SINR, like Veins' per-segment
	// minimum).
	interferenceMw float64
	// sensedBusy records whether this reception raised carrier sense.
	sensedBusy bool
	// noise marks pure interference (jamming bursts): it contributes to
	// carrier sense and SINR but is never decoded.
	noise bool

	// dst is the receiving radio; beginFn/endFn are the kernel handlers
	// created once per pooled entry.
	dst     *Radio
	beginFn des.Handler
	endFn   des.Handler
}

// Radio is one node's network interface on the Air.
type Radio struct {
	id      string
	air     *Air
	pos     func() geo.Vec
	handler RxHandler
	mac     *mac.EDCA
	macRNG  *rng.Source
	// txDoneFn is the bound mac.TxDone method, created once so transmit
	// completions do not allocate method values.
	txDoneFn des.Handler

	active  []*reception
	txStart des.Time
	txEnd   des.Time
	busy    int
}

// ID returns the node ID.
func (r *Radio) ID() string { return r.id }

// MAC exposes the EDCA entity (for stats and tests).
func (r *Radio) MAC() *mac.EDCA { return r.mac }

// Send broadcasts an application payload of the given size (payload bits,
// the paper's packetSize) at the given access category. MAC overhead is
// added automatically.
func (r *Radio) Send(payload any, payloadBits int, ac mac.AccessCategory, seq uint64) error {
	return r.mac.Enqueue(mac.Frame{
		Seq:     seq,
		Src:     r.id,
		Bits:    payloadBits + MACOverheadBits,
		AC:      ac,
		Payload: payload,
	})
}

// SendBeacon broadcasts a platooning beacon. Unlike Send, the beacon
// travels inline in the frame (no interface boxing), so the steady-state
// beaconing path stays allocation-free end to end.
func (r *Radio) SendBeacon(b msg.Beacon, payloadBits int, ac mac.AccessCategory, seq uint64) error {
	return r.mac.Enqueue(mac.Frame{
		Seq:       seq,
		Src:       r.id,
		Bits:      payloadBits + MACOverheadBits,
		AC:        ac,
		Beacon:    b,
		HasBeacon: true,
	})
}

// beginReception registers an incoming frame: it interferes with every
// overlapping reception and may raise carrier sense.
func (r *Radio) beginReception(rec *reception) {
	mw := rec.powerMw
	for _, other := range r.active {
		other.interferenceMw += mw
		rec.interferenceMw += other.powerMw
	}
	r.active = append(r.active, rec)
	if rec.powerDBm >= r.air.cfg.CCAThresholdDBm {
		rec.sensedBusy = true
		r.busy++
		if r.busy == 1 {
			r.mac.ChannelBusy()
		}
	}
}

// endReception finishes an incoming frame: decide, deliver, release
// carrier sense.
func (r *Radio) endReception(rec *reception) {
	for i, other := range r.active {
		if other == rec {
			n := len(r.active) - 1
			copy(r.active[i:], r.active[i+1:])
			r.active[n] = nil
			r.active = r.active[:n]
			break
		}
	}
	if rec.sensedBusy {
		r.busy--
		if r.busy == 0 {
			r.mac.ChannelIdle()
		}
	}

	a := r.air
	cfg := a.cfg
	switch {
	case rec.noise:
		// Jamming bursts are never decoded; their effect is the carrier
		// sense and interference they already contributed.
		return
	case rec.powerDBm < cfg.SensitivityDBm:
		a.stats.DroppedBelowSensitivity++
		return
	case r.txStart < rec.end && rec.start < r.txEnd:
		// Half duplex: we transmitted during part of the reception.
		a.stats.DroppedHalfDuplex++
		return
	case !a.sched.InCCH(rec.start) || !a.sched.InCCH(rec.end):
		a.stats.DroppedOffChannel++
		return
	}

	sinr := cfg.SINRdBWithNoiseMw(rec.powerDBm, phy.MilliwattToDBm(rec.interferenceMw), a.noiseMw)
	ok := false
	switch cfg.Decider {
	case phy.DeciderThreshold:
		ok = sinr >= cfg.MCS.MinSNRdB()
	case phy.DeciderProbabilistic:
		per := cfg.MCS.PacketErrorRate(sinr, rec.frame.Bits)
		ok = !a.deciderRNG.Bernoulli(per)
	}
	if !ok {
		a.stats.DroppedSINR++
		return
	}
	a.stats.Deliveries++
	if r.handler == nil {
		return
	}
	f := rec.frame
	r.handler(f, RxMeta{
		Src:        f.Src,
		SentAt:     rec.sentAt,
		RxAt:       rec.end,
		PropDelay:  rec.delay,
		RxPowerDBm: rec.powerDBm,
		SINRdB:     sinr,
	})
}
