// Package roadnet models the road infrastructure on which the traffic
// simulator places vehicles. It is the static-network part of our SUMO
// substitute: roads composed of parallel lanes, each with a length, a
// width and a speed limit, mirroring the roadFeatures configuration of
// ComFASE's Step-1 (number of lanes, length, width, speed limit).
//
// The demonstration scenario of the paper needs only a single straight
// multi-lane road, but the package supports multiple roads so richer
// scenarios (merges, teleoperation routes) can be added the way the
// paper's future-work section anticipates.
package roadnet

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
)

// Errors returned by network construction and lookups.
var (
	ErrNoLanes       = errors.New("roadnet: road must have at least one lane")
	ErrBadLength     = errors.New("roadnet: road length must be positive")
	ErrBadWidth      = errors.New("roadnet: lane width must be positive")
	ErrBadSpeedLimit = errors.New("roadnet: speed limit must be positive")
	ErrUnknownRoad   = errors.New("roadnet: unknown road")
	ErrUnknownLane   = errors.New("roadnet: unknown lane")
)

// RoadSpec describes a straight road segment, matching the roadFeatures
// parameters of ComFASE Step-1.
type RoadSpec struct {
	// ID names the road, e.g. "highway".
	ID string
	// Lanes is the number of parallel lanes (the paper's scenario: 4).
	Lanes int
	// Length is the drivable length in metres (paper: 9400 m).
	Length float64
	// LaneWidth is the width of each lane in metres (paper: 3.2 m).
	LaneWidth float64
	// SpeedLimit is the maximum allowed speed in m/s (paper: 90 m/s).
	SpeedLimit float64
}

// Validate reports the first specification problem, or nil.
func (s RoadSpec) Validate() error {
	switch {
	case s.Lanes < 1:
		return ErrNoLanes
	case s.Length <= 0:
		return ErrBadLength
	case s.LaneWidth <= 0:
		return ErrBadWidth
	case s.SpeedLimit <= 0:
		return ErrBadSpeedLimit
	}
	return nil
}

// Lane is one drivable lane of a road.
type Lane struct {
	// Road is the owning road's ID.
	Road string
	// Index is the lane index, 0 = rightmost.
	Index int
	// Length mirrors the road length in metres.
	Length float64
	// Width is the lane width in metres.
	Width float64
	// SpeedLimit is the lane's speed limit in m/s.
	SpeedLimit float64
	// CenterY is the lateral world coordinate of the lane's centre line.
	CenterY float64
}

// ID renders a SUMO-style lane identifier, e.g. "highway_0".
func (l Lane) ID() string { return fmt.Sprintf("%s_%d", l.Road, l.Index) }

// PositionAt maps a longitudinal offset on the lane to a world
// coordinate. Offsets are clamped to [0, Length].
func (l Lane) PositionAt(offset float64) geo.Vec {
	return geo.Vec{X: geo.Clamp(offset, 0, l.Length), Y: l.CenterY}
}

// Contains reports whether a longitudinal offset lies on the lane.
func (l Lane) Contains(offset float64) bool {
	return offset >= 0 && offset <= l.Length
}

// Network is an immutable collection of roads and their lanes.
type Network struct {
	roads map[string]RoadSpec
	lanes map[string][]Lane
}

// NewNetwork validates the specs and builds a network. Lane 0 of each
// road sits at CenterY = LaneWidth/2, lane i at (i+0.5)*LaneWidth.
func NewNetwork(specs ...RoadSpec) (*Network, error) {
	n := &Network{
		roads: make(map[string]RoadSpec, len(specs)),
		lanes: make(map[string][]Lane, len(specs)),
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("road %q: %w", s.ID, err)
		}
		if _, dup := n.roads[s.ID]; dup {
			return nil, fmt.Errorf("roadnet: duplicate road %q", s.ID)
		}
		n.roads[s.ID] = s
		lanes := make([]Lane, s.Lanes)
		for i := 0; i < s.Lanes; i++ {
			lanes[i] = Lane{
				Road:       s.ID,
				Index:      i,
				Length:     s.Length,
				Width:      s.LaneWidth,
				SpeedLimit: s.SpeedLimit,
				CenterY:    (float64(i) + 0.5) * s.LaneWidth,
			}
		}
		n.lanes[s.ID] = lanes
	}
	return n, nil
}

// Road returns the spec of a road.
func (n *Network) Road(id string) (RoadSpec, error) {
	s, ok := n.roads[id]
	if !ok {
		return RoadSpec{}, fmt.Errorf("%w: %q", ErrUnknownRoad, id)
	}
	return s, nil
}

// Lane returns one lane of a road.
func (n *Network) Lane(road string, index int) (Lane, error) {
	lanes, ok := n.lanes[road]
	if !ok {
		return Lane{}, fmt.Errorf("%w: %q", ErrUnknownRoad, road)
	}
	if index < 0 || index >= len(lanes) {
		return Lane{}, fmt.Errorf("%w: %s_%d", ErrUnknownLane, road, index)
	}
	return lanes[index], nil
}

// Lanes returns a copy of the lane list of a road.
func (n *Network) Lanes(road string) ([]Lane, error) {
	lanes, ok := n.lanes[road]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRoad, road)
	}
	out := make([]Lane, len(lanes))
	copy(out, lanes)
	return out, nil
}

// RoadIDs returns the IDs of all roads (order unspecified).
func (n *Network) RoadIDs() []string {
	ids := make([]string, 0, len(n.roads))
	for id := range n.roads {
		ids = append(ids, id)
	}
	return ids
}

// PaperHighway returns the road of the paper's demonstration scenario:
// 4 lanes, 9400 m long, 3.2 m wide lanes, 90 m/s speed limit (§IV-A1).
func PaperHighway() RoadSpec {
	return RoadSpec{
		ID:         "highway",
		Lanes:      4,
		Length:     9400,
		LaneWidth:  3.2,
		SpeedLimit: 90,
	}
}
