package roadnet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoadSpecValidate(t *testing.T) {
	valid := PaperHighway()
	tests := []struct {
		name    string
		mutate  func(*RoadSpec)
		wantErr error
	}{
		{name: "paper highway is valid", mutate: func(*RoadSpec) {}, wantErr: nil},
		{name: "no lanes", mutate: func(s *RoadSpec) { s.Lanes = 0 }, wantErr: ErrNoLanes},
		{name: "negative lanes", mutate: func(s *RoadSpec) { s.Lanes = -1 }, wantErr: ErrNoLanes},
		{name: "zero length", mutate: func(s *RoadSpec) { s.Length = 0 }, wantErr: ErrBadLength},
		{name: "zero width", mutate: func(s *RoadSpec) { s.LaneWidth = 0 }, wantErr: ErrBadWidth},
		{name: "zero speed", mutate: func(s *RoadSpec) { s.SpeedLimit = 0 }, wantErr: ErrBadSpeedLimit},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := valid
			tt.mutate(&s)
			if err := s.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPaperHighwayParameters(t *testing.T) {
	s := PaperHighway()
	if s.Lanes != 4 || s.Length != 9400 || s.LaneWidth != 3.2 || s.SpeedLimit != 90 {
		t.Errorf("PaperHighway = %+v does not match §IV-A1", s)
	}
}

func TestNewNetworkRejectsInvalidAndDuplicate(t *testing.T) {
	if _, err := NewNetwork(RoadSpec{ID: "x"}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := NewNetwork(PaperHighway(), PaperHighway()); err == nil {
		t.Error("duplicate road accepted")
	}
}

func TestNetworkLookups(t *testing.T) {
	n, err := NewNetwork(PaperHighway())
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := n.Road("highway"); err != nil {
		t.Errorf("Road: %v", err)
	}
	if _, err := n.Road("nope"); !errors.Is(err, ErrUnknownRoad) {
		t.Errorf("Road(nope) = %v, want ErrUnknownRoad", err)
	}
	lane, err := n.Lane("highway", 2)
	if err != nil {
		t.Fatalf("Lane: %v", err)
	}
	if lane.ID() != "highway_2" {
		t.Errorf("lane ID = %q", lane.ID())
	}
	if lane.CenterY != 2.5*3.2 {
		t.Errorf("lane 2 CenterY = %v, want 8.0", lane.CenterY)
	}
	if _, err := n.Lane("highway", 4); !errors.Is(err, ErrUnknownLane) {
		t.Errorf("Lane(4) = %v, want ErrUnknownLane", err)
	}
	if _, err := n.Lane("highway", -1); !errors.Is(err, ErrUnknownLane) {
		t.Errorf("Lane(-1) = %v, want ErrUnknownLane", err)
	}
	if _, err := n.Lane("nope", 0); !errors.Is(err, ErrUnknownRoad) {
		t.Errorf("Lane(nope) = %v, want ErrUnknownRoad", err)
	}
	lanes, err := n.Lanes("highway")
	if err != nil || len(lanes) != 4 {
		t.Errorf("Lanes = %d,%v want 4 lanes", len(lanes), err)
	}
	if _, err := n.Lanes("nope"); err == nil {
		t.Error("Lanes(nope) did not error")
	}
	if ids := n.RoadIDs(); len(ids) != 1 || ids[0] != "highway" {
		t.Errorf("RoadIDs = %v", ids)
	}
}

func TestLanesReturnsCopy(t *testing.T) {
	n, err := NewNetwork(PaperHighway())
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	lanes, _ := n.Lanes("highway")
	lanes[0].Length = -1
	fresh, _ := n.Lanes("highway")
	if fresh[0].Length != 9400 {
		t.Error("Lanes exposed internal state")
	}
}

func TestLanePositionAt(t *testing.T) {
	n, _ := NewNetwork(PaperHighway())
	lane, _ := n.Lane("highway", 0)
	tests := []struct {
		name   string
		offset float64
		wantX  float64
	}{
		{name: "middle", offset: 1000, wantX: 1000},
		{name: "clamp below", offset: -5, wantX: 0},
		{name: "clamp above", offset: 10000, wantX: 9400},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := lane.PositionAt(tt.offset)
			if p.X != tt.wantX || p.Y != 1.6 {
				t.Errorf("PositionAt(%v) = %v", tt.offset, p)
			}
		})
	}
}

func TestLaneContainsProperty(t *testing.T) {
	n, _ := NewNetwork(PaperHighway())
	lane, _ := n.Lane("highway", 0)
	f := func(off float64) bool {
		in := lane.Contains(off)
		return in == (off >= 0 && off <= lane.Length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLaneCenterYMonotoneProperty(t *testing.T) {
	n, _ := NewNetwork(PaperHighway())
	lanes, _ := n.Lanes("highway")
	for i := 1; i < len(lanes); i++ {
		if lanes[i].CenterY <= lanes[i-1].CenterY {
			t.Fatalf("lane centres not monotone: %v then %v", lanes[i-1].CenterY, lanes[i].CenterY)
		}
		if math.Abs(lanes[i].CenterY-lanes[i-1].CenterY-3.2) > 1e-9 {
			t.Fatalf("lane spacing %v, want lane width", lanes[i].CenterY-lanes[i-1].CenterY)
		}
	}
}
