package fabric

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"comfase/internal/analysis"
	"comfase/internal/obs"
	"comfase/internal/runner"
)

// ErrDrained marks a coordinator that shut down in draining mode with
// the grid incomplete: everything leased at drain time was finished (or
// expired) and flushed, but un-leased ranges were never executed. A
// later `comfase serve -resume` run picks up exactly where the merged
// prefix ends.
var ErrDrained = errors.New("fabric: drained before the grid completed")

// DefaultLeaseTTL is the worker lease time-to-live used when the
// coordinator is configured without one. Long enough that a loaded
// worker renewing at TTL/3 never flaps, short enough that a dead
// worker's range is re-leased promptly.
const DefaultLeaseTTL = 15 * time.Second

// DefaultLeaseSize is the per-lease range length used when the
// coordinator is configured without one.
const DefaultLeaseSize = 16

// CoordinatorOptions configure a Coordinator.
type CoordinatorOptions struct {
	// ConfigJSON is the raw campaign config file; it is served verbatim
	// to registering workers.
	ConfigJSON []byte
	// Base is the first expNr of the grid; Total the number of points.
	Base, Total int
	// Matrix selects the 11-column matrix CSV schema for the header.
	Matrix bool
	// LeaseSize is the range length per lease (<= 0 selects
	// DefaultLeaseSize).
	LeaseSize int
	// LeaseTTL is the worker lease time-to-live (<= 0 selects
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Results receives the merged CSV stream (header + rows in expNr
	// order, byte-identical to a sequential run).
	Results io.Writer
	// NoHeader suppresses the CSV header — the resume path appending to
	// a results file that already carries one.
	NoHeader bool
	// Quarantine, when non-nil, receives merged quarantine JSON lines in
	// expNr order.
	Quarantine io.Writer
	// ResumePrefix: grid points below it are already merged on disk; the
	// lease table starts past them.
	ResumePrefix int
	// MaxFailures is the campaign failure budget, with the runner's
	// semantics: 0 aborts on the first quarantined experiment, negative
	// is unlimited. Already-merged (resumed) failures do not count.
	MaxFailures int
	// Metrics receives the fabric counters and gauges; nil disables.
	Metrics *obs.Registry
	// Now is the clock (nil = time.Now); injectable for expiry tests.
	Now func() time.Time
	// Logf, when non-nil, receives one line per notable event (worker
	// registered, lease expired, range re-leased, ...).
	Logf func(format string, args ...any)
}

// chunkPayload buffers an accepted range until the frontier reaches it.
type chunkPayload struct {
	rows     []ResultRow
	failures []FailureRow
}

// workerInfo is the coordinator's per-worker liveness record.
type workerInfo struct {
	host     string
	pid      int
	lastSeen time.Time
	snapshot *obs.Snapshot
	// notifiedEnd: this worker has been told the run is over (a Done
	// lease/complete response or a Draining lease response), so it will
	// not poll again. Linger waits for every live worker to reach it.
	notifiedEnd bool
}

// Coordinator owns the grid: it leases ranges to workers, verifies and
// buffers their results, and streams the merged rows in grid order
// through a release frontier so the output files are byte-identical to
// a sequential single-process run. Create with NewCoordinator, mount
// Handler on an HTTP server, then Wait for completion.
type Coordinator struct {
	opts  CoordinatorOptions
	table *LeaseTable
	now   func() time.Time
	mux   *http.ServeMux

	mu            sync.Mutex
	buffered      map[int]chunkPayload
	nextChunk     int  // frontier: chunks below it are written out
	merged        int  // grid points written (resumed prefix included)
	failures      int  // new quarantined experiments accepted
	headerPending bool // write the CSV header before the first row
	workers       map[string]*workerInfo
	nextID        int
	cw            *csv.Writer
	err           error         // first fatal error (I/O, budget)
	doneCh        chan struct{} // closed exactly once when the run is over
	doneOnce      sync.Once

	rowsMerged     *obs.Counter
	failuresMerged *obs.Counter
	workersLive    *obs.Gauge
	workersSeen    *obs.Counter
}

// NewCoordinator validates the options and builds the lease table.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.ConfigJSON) == 0 {
		return nil, errors.New("fabric: coordinator needs the raw config JSON")
	}
	if !json.Valid(opts.ConfigJSON) {
		return nil, errors.New("fabric: coordinator config is not valid JSON")
	}
	if opts.Results == nil {
		return nil, errors.New("fabric: coordinator needs a results writer")
	}
	if opts.LeaseSize <= 0 {
		opts.LeaseSize = DefaultLeaseSize
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.ResumePrefix < 0 || opts.ResumePrefix > opts.Total {
		return nil, fmt.Errorf("fabric: resume prefix %d outside grid of %d", opts.ResumePrefix, opts.Total)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	table, err := NewLeaseTable(opts.Base, opts.Total, opts.LeaseSize, opts.LeaseTTL, now, opts.Metrics)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:           opts,
		table:          table,
		now:            now,
		buffered:       make(map[int]chunkPayload),
		workers:        make(map[string]*workerInfo),
		cw:             csv.NewWriter(opts.Results),
		doneCh:         make(chan struct{}),
		rowsMerged:     opts.Metrics.Counter("fabric.rows_merged"),
		failuresMerged: opts.Metrics.Counter("fabric.failures_merged"),
		workersLive:    opts.Metrics.Gauge("fabric.workers_live"),
		workersSeen:    opts.Metrics.Counter("fabric.workers_registered"),
	}
	if opts.ResumePrefix > 0 {
		table.MarkDonePrefix(opts.Base + opts.ResumePrefix)
		// Fast-forward the frontier past the chunks that are entirely
		// below the resumed prefix; a chunk straddling it was trimmed by
		// MarkDonePrefix and stays at the frontier, its below-prefix
		// points already on disk.
		for c.nextChunk < table.NumChunks() {
			_, to, _ := table.Bounds(c.nextChunk)
			if to > opts.Base+opts.ResumePrefix {
				break
			}
			c.nextChunk++
		}
		c.merged = opts.ResumePrefix
	}
	// Header is lazy, like runner.CSVSink: written right before the
	// first released row, so an all-quarantined grid leaves the results
	// file empty — byte-identical to the sequential sink's behavior.
	c.headerPending = !opts.NoHeader
	if table.Done() {
		// Resuming a grid that was already complete: nothing to serve.
		c.finish(nil)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	c.mux.HandleFunc("POST "+PathLease, c.handleLease)
	c.mux.HandleFunc("POST "+PathReport, c.handleReport)
	c.mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	c.mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	return c, nil
}

func (c *Coordinator) writeHeader() error {
	header := resultHeader(c.opts.Matrix)
	if err := c.cw.Write(header); err != nil {
		return fmt.Errorf("fabric: results header: %w", err)
	}
	c.cw.Flush()
	return c.cw.Error()
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// logf forwards to the configured logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Drain switches the coordinator to draining mode: outstanding leases
// may finish and report, nothing new is granted, and Wait returns once
// the table is idle.
func (c *Coordinator) Drain() {
	c.table.Drain()
	c.logf("draining: finishing leased ranges, leasing nothing new")
}

// Wait blocks until the grid completes, a fatal error occurs, or — after
// ctx is canceled — the drain finishes. It owns the liveness sweeper:
// expired leases return to pending (and are re-granted on the next
// Acquire), and the workers-live gauge tracks how many workers reported
// within the last TTL.
func (c *Coordinator) Wait(ctx context.Context) error {
	sweep := time.NewTicker(c.sweepInterval())
	defer sweep.Stop()
	ctxDone := ctx.Done()
	for {
		select {
		case <-c.doneCh:
			return c.runError()
		case <-ctxDone:
			ctxDone = nil // handled; don't spin on the closed channel
			c.Drain()
			if c.table.Idle() {
				c.finish(c.completionError())
			}
		case <-sweep.C:
			if n := c.table.Sweep(); n > 0 {
				c.logf("expired %d lease(s); ranges return to the pool", n)
			}
			c.updateLiveness()
			if c.table.Done() || (c.table.Draining() && c.table.Idle()) {
				c.finish(c.completionError())
			}
		}
	}
}

// sweepInterval is a quarter of the TTL, clamped to stay responsive for
// the short TTLs tests use without busy-looping for long ones.
func (c *Coordinator) sweepInterval() time.Duration {
	iv := c.opts.LeaseTTL / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > 5*time.Second {
		iv = 5 * time.Second
	}
	return iv
}

// completionError distinguishes "grid complete" (nil) from "drained
// early" at shutdown time; a recorded fatal error wins.
func (c *Coordinator) completionError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if !c.table.Done() {
		return fmt.Errorf("%w: %d/%d grid points merged", ErrDrained, c.merged, c.opts.Total)
	}
	return nil
}

// finish flushes the sinks and releases Wait exactly once.
func (c *Coordinator) finish(err error) {
	c.doneOnce.Do(func() {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.cw.Flush()
		if ferr := c.cw.Error(); ferr != nil && c.err == nil {
			c.err = fmt.Errorf("fabric: results flush: %w", ferr)
		}
		c.mu.Unlock()
		close(c.doneCh)
	})
}

func (c *Coordinator) runError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail records a fatal coordinator error and stops the run: the table
// drains so workers wind down, and Wait returns the error.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.table.Drain()
	c.finish(err)
}

// Merged reports how many grid points have been written out (the
// resumed prefix included).
func (c *Coordinator) Merged() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged
}

// Failures reports how many new quarantine records were accepted.
func (c *Coordinator) Failures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// updateLiveness refreshes the workers-live gauge: workers whose last
// report (register/lease/report/complete) is within one TTL.
func (c *Coordinator) updateLiveness() {
	cutoff := c.now().Add(-c.opts.LeaseTTL)
	c.mu.Lock()
	live := int64(0)
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			live++
		}
	}
	c.mu.Unlock()
	c.workersLive.Set(live)
}

// touchWorker stamps a worker's liveness; unknown IDs are ignored (the
// lease table rejects their operations anyway).
func (c *Coordinator) touchWorker(id string, snap *obs.Snapshot) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.lastSeen = c.now()
		if snap != nil {
			w.snapshot = snap
		}
	}
	c.mu.Unlock()
}

// markNotified records that a worker has been handed an end-of-run
// response and will not call back.
func (c *Coordinator) markNotified(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.notifiedEnd = true
	}
	c.mu.Unlock()
}

// Linger blocks until every live worker (seen within the last TTL) has
// received an end-of-run response, or one full lease TTL elapses —
// whichever comes first. Call it after Wait, before tearing down the
// HTTP server: idle workers poll for leases every TTL/2, and killing
// the socket before their next poll would make a clean completion look
// like a dead coordinator and burn their retry budgets.
func (c *Coordinator) Linger() {
	deadline := time.Now().Add(c.opts.LeaseTTL)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for time.Now().Before(deadline) {
		cutoff := c.now().Add(-c.opts.LeaseTTL)
		pending := 0
		c.mu.Lock()
		for _, w := range c.workers {
			if !w.notifiedEnd && w.lastSeen.After(cutoff) {
				pending++
			}
		}
		c.mu.Unlock()
		if pending == 0 {
			return
		}
		<-ticker.C
	}
}

// ---- HTTP handlers -------------------------------------------------

// readBody slurps a protocol request under the message size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMessageBytes))
	if err != nil {
		http.Error(w, "fabric: oversized or unreadable body", http.StatusBadRequest)
		return nil, false
	}
	return data, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The client will see a truncated body and retry.
		return
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeRegisterRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.nextID++
	id := "w" + strconv.Itoa(c.nextID)
	c.workers[id] = &workerInfo{host: req.Host, pid: req.PID, lastSeen: c.now()}
	c.mu.Unlock()
	c.workersSeen.Inc()
	c.logf("worker %s registered (host=%s pid=%d)", id, req.Host, req.PID)
	writeJSON(w, RegisterResponse{
		Version:    ProtocolVersion,
		WorkerID:   id,
		Config:     json.RawMessage(c.opts.ConfigJSON),
		Base:       c.opts.Base,
		Total:      c.opts.Total,
		LeaseTTLMS: c.opts.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeLeaseRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.touchWorker(req.WorkerID, nil)
	lease, status := c.table.Acquire(req.WorkerID)
	switch status {
	case AcquireGranted:
		c.logf("leased chunk %d [%d,%d) gen %d to %s", lease.Chunk, lease.From, lease.To, lease.Gen, req.WorkerID)
		writeJSON(w, LeaseResponse{Granted: true, Chunk: lease.Chunk, From: lease.From, To: lease.To, Gen: lease.Gen})
	case AcquireDone:
		c.markNotified(req.WorkerID)
		writeJSON(w, LeaseResponse{Done: true})
	case AcquireDraining:
		c.markNotified(req.WorkerID)
		writeJSON(w, LeaseResponse{Draining: true})
	default: // AcquireEmpty: outstanding leases may expire; poll again.
		writeJSON(w, LeaseResponse{RetryMS: (c.opts.LeaseTTL / 2).Milliseconds()})
	}
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeReportRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.touchWorker(req.WorkerID, req.Snapshot)
	if err := c.table.Renew(req.WorkerID, req.Chunk, req.Gen); err != nil {
		// The lease is gone; tell the worker to abandon the range.
		writeJSON(w, ReportResponse{OK: false, Cancel: true, Draining: c.table.Draining()})
		return
	}
	writeJSON(w, ReportResponse{OK: true, Draining: c.table.Draining()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeCompleteRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.touchWorker(req.WorkerID, nil)

	from, to, err := c.table.Bounds(req.Chunk)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Verify coverage before touching the lease: every expNr in
	// [from, to) exactly once, as a result row or a quarantine record.
	// A worker shipping garbage must not consume the lease.
	if err := verifyCoverage(from, to, req.Rows, req.Failures); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.table.Complete(req.WorkerID, req.Chunk, req.Gen); err != nil {
		// Late completion from a presumed-dead worker: the range was (or
		// will be) re-executed elsewhere. Discard idempotently.
		c.logf("rejected stale completion of chunk %d gen %d from %s", req.Chunk, req.Gen, req.WorkerID)
		done := c.table.Done()
		if done {
			c.markNotified(req.WorkerID)
		}
		writeJSON(w, CompleteResponse{OK: false, Stale: true, Done: done})
		return
	}

	c.mu.Lock()
	c.buffered[req.Chunk] = chunkPayload{rows: req.Rows, failures: req.Failures}
	c.failures += len(req.Failures)
	overBudget := c.opts.MaxFailures >= 0 && c.failures > c.opts.MaxFailures
	werr := c.releaseLocked()
	c.mu.Unlock()
	if werr != nil {
		c.fail(werr)
		http.Error(w, werr.Error(), http.StatusInternalServerError)
		return
	}
	done := c.table.Done()
	if done {
		c.markNotified(req.WorkerID)
	}
	writeJSON(w, CompleteResponse{OK: true, Done: done})
	if overBudget {
		// The triggering records are already merged and durable; stop
		// granting new work and surface the budget error, mirroring the
		// runner's ErrFailureBudget semantics.
		c.fail(fmt.Errorf("%w: %d persistent failure(s) over budget %d",
			runner.ErrFailureBudget, c.Failures(), c.opts.MaxFailures))
		return
	}
	if c.table.Done() {
		c.finish(nil)
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	cutoff := c.now().Add(-c.opts.LeaseTTL)
	c.mu.Lock()
	st := StatusResponse{
		Version:    ProtocolVersion,
		Total:      c.opts.Total,
		Merged:     c.merged,
		Chunks:     c.table.NumChunks(),
		ChunksDone: c.table.DoneChunks(),
		Draining:   c.table.Draining(),
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wi := c.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: id, Host: wi.host, PID: wi.pid,
			LastSeenUnix: wi.lastSeen.Unix(),
			Live:         wi.lastSeen.After(cutoff),
		})
	}
	c.mu.Unlock()
	writeJSON(w, st)
}

// ---- merge frontier ------------------------------------------------

// releaseLocked writes every buffered chunk at the frontier in chunk
// order: result rows to the CSV writer, failure records to the
// quarantine writer, both already in their exact sequential encodings.
// The caller holds c.mu.
func (c *Coordinator) releaseLocked() error {
	for {
		payload, ok := c.buffered[c.nextChunk]
		if !ok {
			break
		}
		delete(c.buffered, c.nextChunk)
		// Rows and failures each arrive sorted; interleave by expNr so
		// the quarantine stream is globally grid-ordered like the CSV.
		ri, fi := 0, 0
		for ri < len(payload.rows) || fi < len(payload.failures) {
			if fi >= len(payload.failures) || (ri < len(payload.rows) && payload.rows[ri].Nr < payload.failures[fi].Nr) {
				if c.headerPending {
					if err := c.writeHeader(); err != nil {
						return err
					}
					c.headerPending = false
				}
				if err := c.cw.Write(payload.rows[ri].Fields); err != nil {
					return fmt.Errorf("fabric: results write: %w", err)
				}
				c.rowsMerged.Inc()
				ri++
			} else {
				if c.opts.Quarantine != nil {
					if _, err := c.opts.Quarantine.Write(append(payload.failures[fi].Record, '\n')); err != nil {
						return fmt.Errorf("fabric: quarantine write: %w", err)
					}
				}
				c.failuresMerged.Inc()
				fi++
			}
			c.merged++
		}
		c.cw.Flush()
		if err := c.cw.Error(); err != nil {
			return fmt.Errorf("fabric: results flush: %w", err)
		}
		c.nextChunk++
	}
	return nil
}

// verifyCoverage checks that rows and failures partition [from, to):
// each sorted strictly ascending, union exactly the interval.
func verifyCoverage(from, to int, rows []ResultRow, failures []FailureRow) error {
	ri, fi := 0, 0
	for nr := from; nr < to; nr++ {
		switch {
		case ri < len(rows) && rows[ri].Nr == nr:
			if fi < len(failures) && failures[fi].Nr == nr {
				return fmt.Errorf("%w: expNr %d present as both result and failure", ErrProtocol, nr)
			}
			ri++
		case fi < len(failures) && failures[fi].Nr == nr:
			fi++
		default:
			return fmt.Errorf("%w: completion of [%d,%d) is missing expNr %d", ErrProtocol, from, to, nr)
		}
	}
	if ri != len(rows) || fi != len(failures) {
		return fmt.Errorf("%w: completion of [%d,%d) carries expNrs outside the range", ErrProtocol, from, to)
	}
	return nil
}

// resultHeader is the CSV header for the configured schema.
func resultHeader(matrix bool) []string {
	if matrix {
		return analysis.MatrixCSVHeader()
	}
	return analysis.ExperimentCSVHeader()
}
