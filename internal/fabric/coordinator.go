package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"comfase/internal/analysis"
	"comfase/internal/obs"
)

// ErrDrained marks a service that shut down in draining mode with work
// incomplete: everything leased at drain time was finished (or expired)
// and flushed, but un-leased ranges were never executed. A later
// `comfase serve -resume` run picks up exactly where each campaign's
// merged prefix ends.
var ErrDrained = errors.New("fabric: drained before the grid completed")

// DefaultLeaseTTL is the worker lease time-to-live used when the
// coordinator is configured without one. Long enough that a loaded
// worker renewing at TTL/3 never flaps, short enough that a dead
// worker's range is re-leased promptly.
const DefaultLeaseTTL = 15 * time.Second

// DefaultLeaseSize is the per-lease range length used when the
// coordinator is configured without one.
const DefaultLeaseSize = 16

// CoordinatorOptions configure a Coordinator.
type CoordinatorOptions struct {
	// ConfigJSON is the raw campaign config file; it is shipped to
	// workers with their first lease grant.
	ConfigJSON []byte
	// Base is the first expNr of the grid; Total the number of points.
	Base, Total int
	// Matrix selects the 11-column matrix CSV schema for the header.
	Matrix bool
	// LeaseSize is the range length per lease (<= 0 selects
	// DefaultLeaseSize).
	LeaseSize int
	// LeaseTTL is the worker lease time-to-live (<= 0 selects
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Results receives the merged CSV stream (header + rows in expNr
	// order, byte-identical to a sequential run).
	Results io.Writer
	// NoHeader suppresses the CSV header — the resume path appending to
	// a results file that already carries one.
	NoHeader bool
	// Quarantine, when non-nil, receives merged quarantine JSON lines in
	// expNr order.
	Quarantine io.Writer
	// ResumePrefix: grid points below it are already merged on disk; the
	// lease table starts past them.
	ResumePrefix int
	// MaxFailures is the campaign failure budget, with the runner's
	// semantics: 0 aborts on the first quarantined experiment, negative
	// is unlimited. Already-merged (resumed) failures do not count.
	MaxFailures int
	// Metrics receives the fabric counters and gauges; nil disables.
	Metrics *obs.Registry
	// Now is the clock (nil = time.Now); injectable for expiry tests.
	Now func() time.Time
	// Logf, when non-nil, receives one line per notable event (worker
	// registered, lease expired, range re-leased, ...).
	Logf func(format string, args ...any)
}

// chunkPayload buffers an accepted range until the frontier reaches it.
type chunkPayload struct {
	rows     []ResultRow
	failures []FailureRow
}

// workerInfo is the service's per-worker liveness record.
type workerInfo struct {
	host     string
	pid      int
	lastSeen time.Time
	snapshot *obs.Snapshot
	// notifiedEnd: this worker has been told the run is over (a Done
	// lease/complete response or a Draining lease response), so it will
	// not poll again. Linger waits for every live worker to reach it.
	notifiedEnd bool
}

// Coordinator is the single-campaign view of the fabric: one grid, one
// set of output writers, Wait returning when the grid completes. Since
// the multi-campaign growth it is a thin wrapper over Service with
// exactly one pre-submitted campaign — `comfase serve` without -dir, and
// every existing single-grid test, runs through the same scheduler,
// frontier and handlers as the queued-submission service.
type Coordinator struct {
	svc *Service
	id  string // the wrapped campaign's ID
}

// coordinatorCampaignID names the wrapper's single campaign.
const coordinatorCampaignID = "c1"

// NewCoordinator validates the options and builds the wrapped service.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.ConfigJSON) == 0 {
		return nil, errors.New("fabric: coordinator needs the raw config JSON")
	}
	if !json.Valid(opts.ConfigJSON) {
		return nil, errors.New("fabric: coordinator config is not valid JSON")
	}
	if opts.Results == nil {
		return nil, errors.New("fabric: coordinator needs a results writer")
	}
	if opts.ResumePrefix < 0 || opts.ResumePrefix > opts.Total {
		return nil, fmt.Errorf("fabric: resume prefix %d outside grid of %d", opts.ResumePrefix, opts.Total)
	}
	svc, err := NewService(ServiceOptions{
		LeaseSize:      opts.LeaseSize,
		LeaseTTL:       opts.LeaseTTL,
		FinishWhenDone: true,
		Metrics:        opts.Metrics,
		Now:            opts.Now,
		Logf:           opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	if _, err := svc.addCampaign(campaignSpec{
		id:           coordinatorCampaignID,
		configJSON:   opts.ConfigJSON,
		base:         opts.Base,
		total:        opts.Total,
		matrix:       opts.Matrix,
		maxFailures:  opts.MaxFailures,
		resumePrefix: opts.ResumePrefix,
		noHeader:     opts.NoHeader,
		results:      opts.Results,
		quarantine:   opts.Quarantine,
	}); err != nil {
		return nil, err
	}
	return &Coordinator{svc: svc, id: coordinatorCampaignID}, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.svc.Handler() }

// Service exposes the underlying multi-campaign service (status and
// results endpoints answer for the wrapped campaign too).
func (c *Coordinator) Service() *Service { return c.svc }

// Drain switches the coordinator to draining mode: outstanding leases
// may finish and report, nothing new is granted, and Wait returns once
// the table is idle.
func (c *Coordinator) Drain() { c.svc.Drain() }

// Wait blocks until the grid completes, a fatal error occurs, or — after
// ctx is canceled — the drain finishes.
func (c *Coordinator) Wait(ctx context.Context) error { return c.svc.Wait(ctx) }

// Linger blocks until every live worker has been told the run is over,
// bounded by one lease TTL. Call after Wait, before tearing down the
// HTTP server.
func (c *Coordinator) Linger() { c.svc.Linger() }

// Merged reports how many grid points have been written out (the
// resumed prefix included).
func (c *Coordinator) Merged() int {
	merged, _ := c.svc.campaignCounts(c.id)
	return merged
}

// Failures reports how many new quarantine records were accepted.
func (c *Coordinator) Failures() int {
	_, failures := c.svc.campaignCounts(c.id)
	return failures
}

// ---- shared HTTP plumbing ------------------------------------------

// readBody slurps a protocol request under the message size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMessageBytes))
	if err != nil {
		http.Error(w, "fabric: oversized or unreadable body", http.StatusBadRequest)
		return nil, false
	}
	return data, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The client will see a truncated body and retry.
		return
	}
}

// verifyCoverage checks that rows and failures partition [from, to):
// each sorted strictly ascending, union exactly the interval.
func verifyCoverage(from, to int, rows []ResultRow, failures []FailureRow) error {
	ri, fi := 0, 0
	for nr := from; nr < to; nr++ {
		switch {
		case ri < len(rows) && rows[ri].Nr == nr:
			if fi < len(failures) && failures[fi].Nr == nr {
				return fmt.Errorf("%w: expNr %d present as both result and failure", ErrProtocol, nr)
			}
			ri++
		case fi < len(failures) && failures[fi].Nr == nr:
			fi++
		default:
			return fmt.Errorf("%w: completion of [%d,%d) is missing expNr %d", ErrProtocol, from, to, nr)
		}
	}
	if ri != len(rows) || fi != len(failures) {
		return fmt.Errorf("%w: completion of [%d,%d) carries expNrs outside the range", ErrProtocol, from, to)
	}
	return nil
}

// resultHeader is the CSV header for the configured schema.
func resultHeader(matrix bool) []string {
	if matrix {
		return analysis.MatrixCSVHeader()
	}
	return analysis.ExperimentCSVHeader()
}
