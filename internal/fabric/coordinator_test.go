package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"comfase/internal/analysis"
	"comfase/internal/obs"
	"comfase/internal/runner"
)

// postProto drives one protocol endpoint of a coordinator handler
// in-process and decodes the response.
func postProto(t *testing.T, h http.Handler, path string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code == http.StatusOK && resp != nil {
		if err := json.Unmarshal(w.Body.Bytes(), resp); err != nil {
			t.Fatalf("%s: malformed response %q: %v", path, w.Body.String(), err)
		}
	}
	return w.Code
}

// register registers a worker and returns its coordinator-assigned ID.
func register(t *testing.T, h http.Handler) string {
	t.Helper()
	var resp RegisterResponse
	if code := postProto(t, h, PathRegister, RegisterRequest{Host: "test"}, &resp); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}
	return resp.WorkerID
}

// lease acquires the next range for the worker, failing unless granted.
func lease(t *testing.T, h http.Handler, worker string) Lease {
	t.Helper()
	var resp LeaseResponse
	if code := postProto(t, h, PathLease, LeaseRequest{WorkerID: worker}, &resp); code != http.StatusOK {
		t.Fatalf("lease: HTTP %d", code)
	}
	if !resp.Granted {
		t.Fatalf("lease not granted: %+v", resp)
	}
	return Lease{Chunk: resp.Chunk, From: resp.From, To: resp.To, Gen: resp.Gen}
}

// testRows builds marker result rows for [from, to): each row's fields
// are (expNr, tag), so merged output identifies which execution won.
func testRows(from, to int, tag string) []ResultRow {
	var rows []ResultRow
	for nr := from; nr < to; nr++ {
		rows = append(rows, ResultRow{Nr: nr, Fields: []string{strconv.Itoa(nr), tag}})
	}
	return rows
}

func newTestCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	if opts.ConfigJSON == nil {
		opts.ConfigJSON = []byte(`{}`)
	}
	if opts.Results == nil {
		opts.Results = &out
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c, &out
}

// waitDone runs c.Wait with a deadline and returns its error.
func waitDone(t *testing.T, c *Coordinator) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Wait(ctx) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		t.Fatal("coordinator did not finish in time")
		return nil
	}
}

func TestCoordinatorFrontierOrder(t *testing.T) {
	c, out := newTestCoordinator(t, CoordinatorOptions{
		Total: 6, LeaseSize: 2, NoHeader: true,
	})
	h := c.Handler()
	w1 := register(t, h)
	l0 := lease(t, h, w1) // [0,2)
	l1 := lease(t, h, w1) // [2,4)
	l2 := lease(t, h, w1) // [4,6)

	complete := func(l Lease) CompleteResponse {
		var resp CompleteResponse
		code := postProto(t, h, PathComplete, CompleteRequest{
			WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen, Rows: testRows(l.From, l.To, "v"),
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("complete chunk %d: HTTP %d", l.Chunk, code)
		}
		return resp
	}

	// Out-of-order completion: the frontier must hold everything back
	// until chunk 0 lands, then stream in grid order.
	complete(l2)
	if out.Len() != 0 {
		t.Fatalf("rows written before the frontier reached them: %q", out.String())
	}
	complete(l0)
	if got := c.Merged(); got != 2 {
		t.Fatalf("after chunk 0: merged %d, want 2 (chunk 2 still buffered)", got)
	}
	complete(l1)
	if err := waitDone(t, c); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var want strings.Builder
	for nr := 0; nr < 6; nr++ {
		fmt.Fprintf(&want, "%d,v\n", nr)
	}
	if out.String() != want.String() {
		t.Errorf("merged CSV:\n%q\nwant:\n%q", out.String(), want.String())
	}
}

// TestCoordinatorStaleCompletionExactlyOnce is the acceptance check for
// re-leased ranges: a late completion from the presumed-dead worker is
// rejected by the generation counter, the re-execution's rows are merged,
// and every grid point lands in the output exactly once.
func TestCoordinatorStaleCompletionExactlyOnce(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	c, out := newTestCoordinator(t, CoordinatorOptions{
		Total: 4, LeaseSize: 2, NoHeader: true, MaxFailures: -1,
		LeaseTTL: 10 * time.Second, Now: clock.Now, Metrics: reg,
	})
	h := c.Handler()
	w1 := register(t, h)
	w2 := register(t, h)

	dead := lease(t, h, w1) // w1 takes [0,2) ... and goes silent
	clock.Advance(11 * time.Second)

	release := lease(t, h, w2) // expired, so w2 is re-granted [0,2)
	if release.Chunk != dead.Chunk || release.Gen != dead.Gen+1 {
		t.Fatalf("re-lease = %+v, want chunk %d gen %d", release, dead.Chunk, dead.Gen+1)
	}

	// w1 wakes up and tries to renew, then complete: both stale.
	var rr ReportResponse
	postProto(t, h, PathReport, ReportRequest{WorkerID: w1, Campaign: "c1", Chunk: dead.Chunk, Gen: dead.Gen}, &rr)
	if rr.OK || !rr.Cancel {
		t.Fatalf("stale report answered %+v, want cancel", rr)
	}
	var cr CompleteResponse
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w1, Campaign: "c1", Chunk: dead.Chunk, Gen: dead.Gen, Rows: testRows(dead.From, dead.To, "dead"),
	}, &cr)
	if cr.OK || !cr.Stale {
		t.Fatalf("stale completion answered %+v, want stale", cr)
	}
	if out.Len() != 0 {
		t.Fatalf("stale rows were merged: %q", out.String())
	}

	// The live executions win.
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w2, Campaign: "c1", Chunk: release.Chunk, Gen: release.Gen, Rows: testRows(release.From, release.To, "live"),
	}, &cr)
	if !cr.OK {
		t.Fatalf("live completion rejected: %+v", cr)
	}
	rest := lease(t, h, w2)
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w2, Campaign: "c1", Chunk: rest.Chunk, Gen: rest.Gen, Rows: testRows(rest.From, rest.To, "live"),
	}, &cr)
	if err := waitDone(t, c); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("merged %d rows, want 4 (exactly once each): %q", len(lines), out.String())
	}
	for nr, line := range lines {
		if line != fmt.Sprintf("%d,live", nr) {
			t.Errorf("row %d = %q, want the re-execution's row", nr, line)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["fabric.leases_expired"] == 0 || snap.Counters["fabric.leases_released"] == 0 {
		t.Errorf("expiry metrics not recorded: %v", snap.Counters)
	}
	if snap.Counters["fabric.stale_rejected"] == 0 {
		t.Errorf("stale rejection not counted: %v", snap.Counters)
	}
}

func TestCoordinatorCoverageRejected(t *testing.T) {
	c, out := newTestCoordinator(t, CoordinatorOptions{Total: 4, LeaseSize: 2, NoHeader: true})
	h := c.Handler()
	w1 := register(t, h)
	l := lease(t, h, w1)

	bad := []CompleteRequest{
		// Missing expNr 1.
		{WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen, Rows: testRows(l.From, l.From+1, "v")},
		// ExpNr outside the range.
		{WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen, Rows: testRows(l.From, l.To+1, "v")},
		// Duplicated as both result and failure.
		{WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen, Rows: testRows(l.From, l.To, "v"),
			Failures: []FailureRow{{Nr: l.From, Record: json.RawMessage(`{}`)}}},
	}
	for i, req := range bad {
		if code := postProto(t, h, PathComplete, req, nil); code != http.StatusBadRequest {
			t.Errorf("bad completion %d: HTTP %d, want 400", i, code)
		}
	}
	if out.Len() != 0 {
		t.Fatalf("bad completions wrote rows: %q", out.String())
	}
	// The lease survived the garbage: a correct completion still lands.
	var cr CompleteResponse
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen, Rows: testRows(l.From, l.To, "v"),
	}, &cr)
	if !cr.OK {
		t.Fatalf("correct completion after rejections failed: %+v", cr)
	}
}

func TestCoordinatorResumePrefix(t *testing.T) {
	c, out := newTestCoordinator(t, CoordinatorOptions{
		Total: 6, LeaseSize: 2, NoHeader: true, ResumePrefix: 3,
	})
	if got := c.Merged(); got != 3 {
		t.Fatalf("resumed Merged = %d, want 3", got)
	}
	h := c.Handler()
	w1 := register(t, h)
	l := lease(t, h, w1)
	if l.From != 3 || l.To != 4 {
		t.Fatalf("first lease after resume = [%d,%d), want the trimmed [3,4)", l.From, l.To)
	}
	var cr CompleteResponse
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen, Rows: testRows(l.From, l.To, "v"),
	}, &cr)
	l2 := lease(t, h, w1)
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w1, Campaign: "c1", Chunk: l2.Chunk, Gen: l2.Gen, Rows: testRows(l2.From, l2.To, "v"),
	}, &cr)
	if err := waitDone(t, c); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	want := "3,v\n4,v\n5,v\n"
	if out.String() != want {
		t.Errorf("resumed output = %q, want only the un-resumed rows %q", out.String(), want)
	}
}

func TestCoordinatorResumeComplete(t *testing.T) {
	c, out := newTestCoordinator(t, CoordinatorOptions{
		Total: 4, LeaseSize: 2, NoHeader: true, ResumePrefix: 4,
	})
	if err := waitDone(t, c); err != nil {
		t.Fatalf("Wait on a fully resumed grid: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("fully resumed grid wrote rows: %q", out.String())
	}
}

func TestCoordinatorQuarantineMergeAndBudget(t *testing.T) {
	var quarantine bytes.Buffer
	c, out := newTestCoordinator(t, CoordinatorOptions{
		Total: 4, LeaseSize: 4, NoHeader: true, MaxFailures: 1,
		Quarantine: &quarantine,
	})
	h := c.Handler()
	w1 := register(t, h)
	l := lease(t, h, w1)
	// 4 points: results at 0 and 2, failures at 1 and 3 — one over the
	// budget of 1.
	var cr CompleteResponse
	code := postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen,
		Rows: []ResultRow{
			{Nr: 0, Fields: []string{"0", "v"}},
			{Nr: 2, Fields: []string{"2", "v"}},
		},
		Failures: []FailureRow{
			{Nr: 1, Record: json.RawMessage(`{"expNr":1}`)},
			{Nr: 3, Record: json.RawMessage(`{"expNr":3}`)},
		},
	}, &cr)
	if code != http.StatusOK || !cr.OK {
		t.Fatalf("completion rejected: HTTP %d %+v", code, cr)
	}
	err := waitDone(t, c)
	if !errors.Is(err, runner.ErrFailureBudget) {
		t.Fatalf("Wait = %v, want ErrFailureBudget", err)
	}
	// The accepted records are durable despite the budget abort, and the
	// quarantine stream is grid-ordered.
	if got, want := out.String(), "0,v\n2,v\n"; got != want {
		t.Errorf("results = %q, want %q", got, want)
	}
	if got, want := quarantine.String(), `{"expNr":1}`+"\n"+`{"expNr":3}`+"\n"; got != want {
		t.Errorf("quarantine = %q, want %q", got, want)
	}
}

func TestCoordinatorDrainWithoutWorkers(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{Total: 4, LeaseSize: 2, NoHeader: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // immediate drain: nothing leased, nothing done
	err := c.Wait(ctx)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("Wait = %v, want ErrDrained", err)
	}
}

// TestCoordinatorHeaderSchema pins the lazy-header contract: the
// schema-correct header is written immediately before the first
// released row — and never otherwise, so an all-quarantined grid or a
// resume of an already-complete grid leaves the results writer
// untouched, exactly like runner.CSVSink.
func TestCoordinatorHeaderSchema(t *testing.T) {
	runGrid := func(matrix, fail bool) string {
		t.Helper()
		c, out := newTestCoordinator(t, CoordinatorOptions{Total: 1, LeaseSize: 1, Matrix: matrix, MaxFailures: -1})
		h := c.Handler()
		w1 := register(t, h)
		l := lease(t, h, w1)
		req := CompleteRequest{WorkerID: w1, Campaign: "c1", Chunk: l.Chunk, Gen: l.Gen}
		if fail {
			req.Failures = []FailureRow{{Nr: 0, Record: []byte(`{"expNr":0}`)}}
		} else {
			req.Rows = testRows(0, 1, "v")
		}
		var resp CompleteResponse
		postProto(t, h, PathComplete, req, &resp)
		if !resp.OK {
			t.Fatalf("complete rejected: %+v", resp)
		}
		if err := waitDone(t, c); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	legacyHeader := strings.Join(analysis.ExperimentCSVHeader(), ",") + "\n"
	if got := runGrid(false, false); got != legacyHeader+"0,v\n" {
		t.Errorf("legacy output = %q, want header+row", got)
	}
	matrixHeader := strings.Join(analysis.MatrixCSVHeader(), ",") + "\n"
	if got := runGrid(true, false); got != matrixHeader+"0,v\n" {
		t.Errorf("matrix output = %q, want header+row", got)
	}
	// All experiments quarantined: no rows, so no header either.
	if got := runGrid(false, true); got != "" {
		t.Errorf("all-failure output = %q, want empty (lazy header)", got)
	}
	// Resuming a complete grid must not append a second header.
	c, out := newTestCoordinator(t, CoordinatorOptions{Total: 1, ResumePrefix: 1})
	if err := waitDone(t, c); err != nil {
		t.Fatal(err)
	}
	if out.String() != "" {
		t.Errorf("resume-complete output = %q, want empty", out.String())
	}
}

func TestCoordinatorStatus(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{Total: 6, LeaseSize: 2, NoHeader: true})
	h := c.Handler()
	w1 := register(t, h)
	lease(t, h, w1)
	r := httptest.NewRequest(http.MethodGet, PathStatus, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var st StatusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Total != 6 || st.Chunks != 3 || st.ChunksDone != 0 || len(st.Workers) != 1 {
		t.Errorf("status = %+v", st)
	}
	if !st.Workers[0].Live {
		t.Errorf("freshly registered worker not live: %+v", st.Workers[0])
	}
}
