package fabric

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestDecodeStrictRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"not json", "not json"},
		{"unknown field", `{"workerID":"w1","bogus":1}`},
		{"trailing data", `{"workerID":"w1"} {"again":true}`},
		{"wrong type", `{"workerID":42}`},
		{"duplicate via array", `[1,2,3]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeLeaseRequest([]byte(tc.data)); !errors.Is(err, ErrProtocol) {
				t.Errorf("DecodeLeaseRequest(%q) err = %v, want ErrProtocol", tc.data, err)
			}
		})
	}
	if _, err := DecodeLeaseRequest([]byte(strings.Repeat(" ", maxMessageBytes+1))); !errors.Is(err, ErrProtocol) {
		t.Error("oversized message accepted")
	}
}

func TestDecodeValidators(t *testing.T) {
	if _, err := DecodeRegisterRequest([]byte(`{"host":"h","pid":-1}`)); !errors.Is(err, ErrProtocol) {
		t.Error("negative pid accepted")
	}
	if m, err := DecodeRegisterRequest([]byte(`{}`)); err != nil || m.PID != 0 {
		t.Errorf("empty register rejected: %v", err)
	}
	if _, err := DecodeLeaseRequest([]byte(`{}`)); !errors.Is(err, ErrProtocol) {
		t.Error("empty workerID accepted")
	}
	if _, err := DecodeReportRequest([]byte(`{"workerID":"w1","campaign":"c1","chunk":-2}`)); !errors.Is(err, ErrProtocol) {
		t.Error("negative chunk accepted")
	}
	if _, err := DecodeReportRequest([]byte(`{"workerID":"w1","campaign":"c1","done":-1}`)); !errors.Is(err, ErrProtocol) {
		t.Error("negative done accepted")
	}
	if _, err := DecodeReportRequest([]byte(`{"workerID":"w1","chunk":3,"gen":2}`)); !errors.Is(err, ErrProtocol) {
		t.Error("report without campaign accepted")
	}
	if m, err := DecodeReportRequest([]byte(`{"workerID":"w1","campaign":"c1","chunk":3,"gen":2}`)); err != nil || m.Gen != 2 {
		t.Errorf("valid report rejected: %v", err)
	}
	if _, err := DecodeLeaseRequest([]byte(`{"workerID":"w1","known":["c1",""]}`)); !errors.Is(err, ErrProtocol) {
		t.Error("empty known entry accepted")
	}

	complete := func(body string) error {
		_, err := DecodeCompleteRequest([]byte(body))
		return err
	}
	if err := complete(`{"workerID":"w1","campaign":"c1","chunk":0,"gen":1,"rows":[{"nr":0,"fields":["a","b"]}]}`); err != nil {
		t.Errorf("valid complete rejected: %v", err)
	}
	for name, body := range map[string]string{
		"row without fields":   `{"workerID":"w1","campaign":"c1","chunk":0,"gen":1,"rows":[{"nr":0,"fields":[]}]}`,
		"row negative nr":      `{"workerID":"w1","campaign":"c1","chunk":0,"gen":1,"rows":[{"nr":-1,"fields":["a"]}]}`,
		"failure empty record": `{"workerID":"w1","campaign":"c1","chunk":0,"gen":1,"failures":[{"nr":0,"record":null}]}`,
		"failure negative nr":  `{"workerID":"w1","campaign":"c1","chunk":0,"gen":1,"failures":[{"nr":-3,"record":{}}]}`,
		"missing workerID":     `{"campaign":"c1","chunk":0,"gen":1}`,
		"missing campaign":     `{"workerID":"w1","chunk":0,"gen":1,"rows":[{"nr":0,"fields":["a"]}]}`,
	} {
		if err := complete(body); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s accepted (err=%v)", name, err)
		}
	}
}

func TestDecodeCampaignMessages(t *testing.T) {
	if _, err := DecodeSubmitRequest([]byte(`{"config":{"campaign":{}}}`)); err != nil {
		t.Errorf("valid submit rejected: %v", err)
	}
	for name, body := range map[string]string{
		"no config":        `{"name":"x"}`,
		"config not json":  `{"config":"nope"}`,
		"config array":     `{"config":[1,2]}`,
		"unknown field":    `{"config":{},"bogus":1}`,
		"name with slash":  `{"name":"a/b","config":{}}`,
		"name with ctrl":   `{"name":"a\tb","config":{}}`,
		"name too long":    `{"name":"` + strings.Repeat("x", maxCampaignName+1) + `","config":{}}`,
		"trailing garbage": `{"config":{}} {}`,
	} {
		if _, err := DecodeSubmitRequest([]byte(body)); !errors.Is(err, ErrProtocol) {
			t.Errorf("submit %s accepted (err=%v)", name, err)
		}
	}
	if _, err := DecodeCancelRequest([]byte(`{}`)); !errors.Is(err, ErrProtocol) {
		t.Error("cancel without campaignID accepted")
	}
	if m, err := DecodeCancelRequest([]byte(`{"campaignID":"c2"}`)); err != nil || m.CampaignID != "c2" {
		t.Errorf("valid cancel rejected: %v", err)
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	reqs := []any{
		RegisterRequest{Host: "node1", PID: 1234},
		LeaseRequest{WorkerID: "w1"},
		ReportRequest{WorkerID: "w1", Campaign: "c1", Chunk: 3, Gen: 7, Done: 2},
		CompleteRequest{
			WorkerID: "w2", Campaign: "c1", Chunk: 1, Gen: 2,
			Rows:     []ResultRow{{Nr: 4, Fields: []string{"4", "x"}}},
			Failures: []FailureRow{{Nr: 5, Record: json.RawMessage(`{"expNr":5}`)}},
		},
	}
	for _, req := range reqs {
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var decErr error
		switch req.(type) {
		case RegisterRequest:
			_, decErr = DecodeRegisterRequest(data)
		case LeaseRequest:
			_, decErr = DecodeLeaseRequest(data)
		case ReportRequest:
			_, decErr = DecodeReportRequest(data)
		case CompleteRequest:
			var m CompleteRequest
			m, decErr = DecodeCompleteRequest(data)
			if decErr == nil {
				re, err := json.Marshal(m)
				if err != nil || string(re) != string(data) {
					t.Errorf("CompleteRequest round trip: %s != %s (%v)", re, data, err)
				}
			}
		}
		if decErr != nil {
			t.Errorf("round trip of %T: %v", req, decErr)
		}
	}
}
