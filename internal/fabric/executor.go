package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"comfase/internal/analysis"
	"comfase/internal/config"
	"comfase/internal/core"
	"comfase/internal/obs"
	"comfase/internal/runner"
)

// Executor runs one leased grid range [from, to) and returns the wire
// rows: each grid point exactly once, either as its exact sequential CSV
// record or as its exact quarantine JSON line, both in ascending expNr
// order. The production executor wraps the ordinary campaign runner;
// tests substitute chaos-injecting ones.
type Executor interface {
	Execute(ctx context.Context, from, to int) ([]ResultRow, []FailureRow, error)
}

// ExecutorOptions tune the campaign executor beyond the config file.
type ExecutorOptions struct {
	// Workers overrides the config's local worker-pool size when > 0.
	Workers int
	// Metrics receives the runner/engine instrumentation; it is the same
	// registry whose snapshots the fabric worker reports as heartbeats.
	Metrics *obs.Registry
}

// campaignExecutor executes leased ranges through internal/runner with
// Options.Range, preserving every execution feature of a local campaign
// (checkpoint forking, trie chaining, retries, watchdogs) and therefore
// the byte-identical-output invariant.
type campaignExecutor struct {
	parsed *config.Parsed
	base   runner.Options
	matrix bool
	eng    *core.Engine // lazily built; reused across leases
}

// NewExecutor builds the production executor from the raw config JSON a
// coordinator serves at registration. The runner options come from the
// config's runtime section, with two fabric-imposed changes: the failure
// budget is unlimited (the coordinator owns the campaign-level budget)
// and result/quarantine files are replaced by in-memory wire rows.
func NewExecutor(cfgJSON []byte, opts ExecutorOptions) (Executor, error) {
	parsed, err := config.Parse(bytes.NewReader(cfgJSON))
	if err != nil {
		return nil, fmt.Errorf("fabric: coordinator config: %w", err)
	}
	base := runner.Options{
		Workers:            parsed.Runtime.Workers,
		Retries:            parsed.Runtime.Retries,
		RetryBackoff:       parsed.Runtime.RetryBackoff,
		ExperimentTimeout:  parsed.Runtime.ExperimentTimeout,
		MaxFailures:        -1, // the coordinator enforces the campaign budget
		DisableCheckpoints: parsed.Runtime.DisableCheckpoints,
		DisableTrie:        parsed.Runtime.DisableTrie,
		Metrics:            opts.Metrics,
	}
	if opts.Workers > 0 {
		base.Workers = opts.Workers
	}
	if base.Workers == 0 {
		base.Workers = -1 // all cores
	}
	matrix := len(parsed.Cells) > 0
	parsed.Engine.Metrics = opts.Metrics
	for i := range parsed.Cells {
		parsed.Cells[i].Engine.Metrics = opts.Metrics
	}
	return &campaignExecutor{parsed: parsed, base: base, matrix: matrix}, nil
}

// Execute implements Executor.
func (e *campaignExecutor) Execute(ctx context.Context, from, to int) ([]ResultRow, []FailureRow, error) {
	rs := &rowSink{matrix: e.matrix}
	fs := &failureSink{}
	opts := e.base
	opts.Range = runner.Range{From: from, To: to}
	opts.Quarantine = fs
	if e.matrix {
		if _, err := runner.RunMatrix(ctx, e.parsed.Cells, opts, rs); err != nil {
			return nil, nil, err
		}
		return rs.rows, fs.failures, nil
	}
	if e.eng == nil {
		eng, err := core.NewEngine(e.parsed.Engine)
		if err != nil {
			return nil, nil, err
		}
		e.eng = eng
	}
	r, err := runner.New(e.eng, opts, rs)
	if err != nil {
		return nil, nil, err
	}
	if _, err := r.Run(ctx, e.parsed.Campaign); err != nil {
		return nil, nil, err
	}
	return rs.rows, fs.failures, nil
}

// rowSink captures released results as wire rows. The runner releases in
// grid order, so the rows arrive sorted by expNr.
type rowSink struct {
	matrix bool
	rows   []ResultRow
}

func (s *rowSink) Put(res core.ExperimentResult) error {
	var rec []string
	if s.matrix {
		rec = analysis.MatrixCSVRecord(res)
	} else {
		rec = analysis.ExperimentCSVRecord(res)
	}
	s.rows = append(s.rows, ResultRow{Nr: res.Spec.Nr, Fields: rec})
	return nil
}

func (s *rowSink) Flush() error { return nil }

// failureSink captures quarantine records as the exact JSON line the
// sequential QuarantineSink would write (json.Marshal output; the
// Encoder adds only the trailing newline, which the coordinator appends
// on merge).
type failureSink struct {
	failures []FailureRow
}

func (s *failureSink) Put(f core.ExperimentFailure) error {
	rec, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if !json.Valid(rec) {
		return errors.New("fabric: quarantine record did not marshal to valid JSON")
	}
	s.failures = append(s.failures, FailureRow{Nr: f.Nr, Record: rec})
	return nil
}

func (s *failureSink) Flush() error { return nil }
