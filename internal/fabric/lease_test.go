package fabric

import (
	"errors"
	"sync"
	"testing"
	"time"

	"comfase/internal/obs"
)

// fakeClock is an advanceable clock for expiry tests — no sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNewLeaseTableChunking(t *testing.T) {
	cases := []struct {
		base, total, size int
		wantChunks        int
		wantLastFrom      int
		wantLastTo        int
	}{
		{0, 10, 3, 4, 9, 10},
		{0, 10, 10, 1, 0, 10},
		{0, 10, 100, 1, 0, 10},
		{5, 7, 2, 4, 11, 12},
		{0, 1, 1, 1, 0, 1},
	}
	for _, tc := range cases {
		tab, err := NewLeaseTable(tc.base, tc.total, tc.size, time.Second, nil, nil)
		if err != nil {
			t.Fatalf("NewLeaseTable(%d,%d,%d): %v", tc.base, tc.total, tc.size, err)
		}
		if got := tab.NumChunks(); got != tc.wantChunks {
			t.Errorf("base=%d total=%d size=%d: %d chunks, want %d", tc.base, tc.total, tc.size, got, tc.wantChunks)
		}
		from, to, err := tab.Bounds(tab.NumChunks() - 1)
		if err != nil || from != tc.wantLastFrom || to != tc.wantLastTo {
			t.Errorf("base=%d total=%d size=%d: last chunk [%d,%d) err=%v, want [%d,%d)",
				tc.base, tc.total, tc.size, from, to, err, tc.wantLastFrom, tc.wantLastTo)
		}
	}
	for _, bad := range []struct{ base, total, size int }{
		{0, 0, 1}, {0, -3, 1}, {0, 5, 0}, {0, 5, -2},
	} {
		if _, err := NewLeaseTable(bad.base, bad.total, bad.size, time.Second, nil, nil); err == nil {
			t.Errorf("NewLeaseTable(%d,%d,%d) accepted", bad.base, bad.total, bad.size)
		}
	}
	if _, err := NewLeaseTable(0, 4, 2, 0, nil, nil); err == nil {
		t.Error("zero TTL accepted")
	}
}

// TestLeaseLifecycle drives the lease state machine through scripted
// grant / renew / expire / re-lease scenarios — the generation-counter
// rejection paths in particular.
func TestLeaseLifecycle(t *testing.T) {
	const ttl = 10 * time.Second
	type step struct {
		name string
		// op: acquire | renew | complete | advance | sweep | drain
		op     string
		worker string
		chunk  int
		gen    uint64
		d      time.Duration

		wantStatus AcquireStatus
		wantLease  Lease
		wantErr    error
		wantSwept  int
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "grant renew complete",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "advance", d: ttl / 2},
				{op: "renew", worker: "w1", chunk: 0, gen: 1},
				{op: "advance", d: ttl / 2}, // only alive thanks to the renew
				{op: "complete", worker: "w1", chunk: 0, gen: 1},
			},
		},
		{
			name: "grants ascend and exhaust",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "acquire", worker: "w2", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 1, From: 2, To: 4, Gen: 1}},
				{op: "acquire", worker: "w3", wantStatus: AcquireEmpty},
			},
		},
		{
			name: "expiry re-leases with a higher generation",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "advance", d: ttl + time.Second},
				{op: "sweep", wantSwept: 1},
				{op: "acquire", worker: "w2", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 2}},
				// The presumed-dead worker's late operations are stale.
				{op: "renew", worker: "w1", chunk: 0, gen: 1, wantErr: ErrStaleLease},
				{op: "complete", worker: "w1", chunk: 0, gen: 1, wantErr: ErrStaleLease},
				// The re-lease itself is live.
				{op: "complete", worker: "w2", chunk: 0, gen: 2},
			},
		},
		{
			name: "acquire sweeps expired leases inline",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "acquire", worker: "w2", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 1, From: 2, To: 4, Gen: 1}},
				{op: "advance", d: ttl + time.Second},
				// No explicit sweep: Acquire must reclaim chunk 0 itself.
				{op: "acquire", worker: "w3", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 2}},
			},
		},
		{
			name: "lazy expiry rejects a late renew without a sweep",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "advance", d: ttl + time.Second},
				{op: "renew", worker: "w1", chunk: 0, gen: 1, wantErr: ErrStaleLease},
				// The chunk went back to pending; the next grant bumps gen.
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 2}},
			},
		},
		{
			name: "wrong worker and wrong generation are stale",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "renew", worker: "w2", chunk: 0, gen: 1, wantErr: ErrStaleLease},
				{op: "renew", worker: "w1", chunk: 0, gen: 2, wantErr: ErrStaleLease},
				{op: "renew", worker: "w1", chunk: 9, gen: 1, wantErr: ErrUnknownChunk},
				{op: "renew", worker: "w1", chunk: 0, gen: 1},
			},
		},
		{
			name: "double completion is stale",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "complete", worker: "w1", chunk: 0, gen: 1},
				{op: "complete", worker: "w1", chunk: 0, gen: 1, wantErr: ErrStaleLease},
				{op: "renew", worker: "w1", chunk: 0, gen: 1, wantErr: ErrStaleLease},
			},
		},
		{
			name: "draining grants nothing new but leased work finishes",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "drain"},
				{op: "acquire", worker: "w2", wantStatus: AcquireDraining},
				{op: "renew", worker: "w1", chunk: 0, gen: 1},
				{op: "complete", worker: "w1", chunk: 0, gen: 1},
				{op: "acquire", worker: "w1", wantStatus: AcquireDraining},
			},
		},
		{
			name: "done wins over draining",
			steps: []step{
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 0, From: 0, To: 2, Gen: 1}},
				{op: "acquire", worker: "w1", wantStatus: AcquireGranted, wantLease: Lease{Chunk: 1, From: 2, To: 4, Gen: 1}},
				{op: "complete", worker: "w1", chunk: 0, gen: 1},
				{op: "complete", worker: "w1", chunk: 1, gen: 1},
				{op: "drain"},
				{op: "acquire", worker: "w2", wantStatus: AcquireDone},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			tab, err := NewLeaseTable(0, 4, 2, ttl, clock.Now, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range tc.steps {
				switch s.op {
				case "acquire":
					lease, status := tab.Acquire(s.worker)
					if status != s.wantStatus {
						t.Fatalf("step %d (%s): Acquire status %v, want %v", i, s.op, status, s.wantStatus)
					}
					if status == AcquireGranted && lease != s.wantLease {
						t.Fatalf("step %d: lease %+v, want %+v", i, lease, s.wantLease)
					}
				case "renew":
					if err := tab.Renew(s.worker, s.chunk, s.gen); !errors.Is(err, s.wantErr) {
						t.Fatalf("step %d: Renew err %v, want %v", i, err, s.wantErr)
					}
				case "complete":
					if err := tab.Complete(s.worker, s.chunk, s.gen); !errors.Is(err, s.wantErr) {
						t.Fatalf("step %d: Complete err %v, want %v", i, err, s.wantErr)
					}
				case "advance":
					clock.Advance(s.d)
				case "sweep":
					if n := tab.Sweep(); n != s.wantSwept {
						t.Fatalf("step %d: Sweep = %d, want %d", i, n, s.wantSwept)
					}
				case "drain":
					tab.Drain()
				default:
					t.Fatalf("step %d: unknown op %q", i, s.op)
				}
			}
		})
	}
}

func TestLeaseTableMarkDonePrefix(t *testing.T) {
	clock := newFakeClock()
	tab, err := NewLeaseTable(0, 10, 3, time.Second, clock.Now, nil) // [0,3) [3,6) [6,9) [9,10)
	if err != nil {
		t.Fatal(err)
	}
	tab.MarkDonePrefix(5) // chunk 0 done; chunk 1 trimmed to [5,6)
	if got := tab.DoneChunks(); got != 1 {
		t.Fatalf("DoneChunks = %d, want 1", got)
	}
	lease, status := tab.Acquire("w1")
	if status != AcquireGranted || lease.From != 5 || lease.To != 6 {
		t.Fatalf("first grant after prefix = %+v (%v), want [5,6)", lease, status)
	}
	// Completing everything ends the table.
	if err := tab.Complete("w1", lease.Chunk, lease.Gen); err != nil {
		t.Fatal(err)
	}
	for {
		l, s := tab.Acquire("w1")
		if s == AcquireDone {
			break
		}
		if s != AcquireGranted {
			t.Fatalf("Acquire = %v mid-drain-down", s)
		}
		if err := tab.Complete("w1", l.Chunk, l.Gen); err != nil {
			t.Fatal(err)
		}
	}
	if !tab.Done() {
		t.Error("table not done after completing every chunk")
	}
}

func TestLeaseTableIdle(t *testing.T) {
	clock := newFakeClock()
	tab, err := NewLeaseTable(0, 4, 2, time.Second, clock.Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Idle() {
		t.Error("fresh table not idle")
	}
	lease, _ := tab.Acquire("w1")
	if tab.Idle() {
		t.Error("table idle with an outstanding lease")
	}
	// Expiry makes it idle again (Idle sweeps internally).
	clock.Advance(2 * time.Second)
	if !tab.Idle() {
		t.Error("table not idle after the lease expired")
	}
	_ = lease
}

func TestLeaseTableMetrics(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	tab, err := NewLeaseTable(0, 4, 2, time.Second, clock.Now, reg)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := tab.Acquire("w1") // grant 1
	clock.Advance(2 * time.Second)
	tab.Sweep()                                               // expire 1
	if err := tab.Renew("w1", l1.Chunk, l1.Gen); err == nil { // stale 1
		t.Fatal("stale renew accepted")
	}
	l2, _ := tab.Acquire("w2") // grant 2 = re-lease 1
	if err := tab.Complete("w2", l2.Chunk, l2.Gen); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	wantCounters := map[string]uint64{
		"fabric.leases_granted":  2,
		"fabric.leases_expired":  1,
		"fabric.leases_released": 1,
		"fabric.stale_rejected":  1,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	wantGauges := map[string]int64{
		"fabric.chunks_pending": 1,
		"fabric.chunks_leased":  0,
		"fabric.chunks_done":    1,
	}
	for name, want := range wantGauges {
		if got := snap.Gauges[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
