package fabric

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"comfase/internal/config"
	"comfase/internal/core"
	"comfase/internal/obs"
	"comfase/internal/runner"
)

// e2eConfig is the chaos campaign: a 12-point delay grid inside a 6 s
// horizon, small enough to execute in seconds but large enough (6 chunks
// at lease size 2) that killing a worker mid-campaign forces a re-lease.
const e2eConfig = `{
  "scenario": {"totalSimTimeS": 6},
  "campaign": {
    "attack": "delay",
    "valuesS": {"values": [0.3, 1.0, 2.0]},
    "startTimesS": {"values": [2]},
    "durationsS": {"values": [1, 2, 3, 4]}
  }
}`

// sequentialReference runs the chaos campaign in-process the ordinary
// way and returns the results CSV and quarantine bytes.
func sequentialReference(t *testing.T) (csvOut, quarantineOut []byte) {
	t.Helper()
	return sequentialReferenceFor(t, e2eConfig)
}

// sequentialReferenceFor runs an arbitrary campaign config sequentially —
// the byte-identity oracle for the multi-campaign drills.
func sequentialReferenceFor(t *testing.T, cfg string) (csvOut, quarantineOut []byte) {
	t.Helper()
	parsed, err := config.Parse(bytes.NewReader([]byte(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(parsed.Engine)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, qBuf bytes.Buffer
	r, err := runner.New(eng, runner.Options{
		Workers:     4,
		MaxFailures: -1,
		Quarantine:  runner.NewQuarantineSink(&qBuf),
	}, runner.NewCSVSink(&csvBuf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), parsed.Campaign); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), qBuf.Bytes()
}

// crashingExecutor simulates a worker crash: the first Execute call dies
// after a short delay (holding its lease, never completing), so the
// coordinator must detect the death by TTL expiry and re-lease the range.
type crashingExecutor struct {
	delay time.Duration
}

var errInjectedCrash = errors.New("injected worker crash")

func (e *crashingExecutor) Execute(ctx context.Context, from, to int) ([]ResultRow, []FailureRow, error) {
	select {
	case <-time.After(e.delay):
	case <-ctx.Done():
	}
	return nil, nil, errInjectedCrash
}

// TestFabricChaosEquivalence is the end-to-end failure drill: a
// coordinator and three workers over real HTTP, one worker killed
// mid-campaign while holding a lease. The survivors must absorb the
// re-leased range and the merged CSV must be byte-identical to a
// sequential single-process run.
func TestFabricChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end campaign")
	}
	wantCSV, wantQuarantine := sequentialReference(t)

	parsed, err := config.Parse(bytes.NewReader([]byte(e2eConfig)))
	if err != nil {
		t.Fatal(err)
	}
	total := parsed.Campaign.NumExperiments()
	if total != 12 {
		t.Fatalf("e2e grid = %d points, want 12", total)
	}

	reg := obs.NewRegistry()
	var csvBuf, qBuf bytes.Buffer
	coord, err := NewCoordinator(CoordinatorOptions{
		ConfigJSON:  []byte(e2eConfig),
		Total:       total,
		LeaseSize:   2,
		LeaseTTL:    400 * time.Millisecond,
		Results:     &csvBuf,
		Quarantine:  &qBuf,
		MaxFailures: -1,
		Metrics:     reg,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait(ctx) }()

	// The victim registers first and takes a lease, then "crashes": its
	// executor dies mid-range, the process never completes or renews, and
	// the lease must expire.
	victim, err := NewWorker(WorkerOptions{
		Coordinator: srv.URL,
		MaxRetries:  3,
		RetryBase:   10 * time.Millisecond,
		Seed:        7,
		NewExecutor: func([]byte) (Executor, error) {
			return &crashingExecutor{delay: 50 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victimErr := victim.Run(ctx)
	if !errors.Is(victimErr, errInjectedCrash) {
		t.Fatalf("victim died with %v, want the injected crash", victimErr)
	}

	// Two healthy workers finish the campaign, the re-leased range
	// included.
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerOptions{
				Coordinator: srv.URL,
				Workers:     2,
				MaxRetries:  8,
				RetryBase:   20 * time.Millisecond,
				Seed:        int64(100 + i),
				Metrics:     obs.NewRegistry(),
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	if got := coord.Merged(); got != total {
		t.Fatalf("merged %d/%d grid points", got, total)
	}
	if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
		t.Errorf("merged CSV differs from the sequential run:\nfabric:\n%s\nsequential:\n%s", csvBuf.Bytes(), wantCSV)
	}
	if !bytes.Equal(qBuf.Bytes(), wantQuarantine) {
		t.Errorf("merged quarantine differs:\nfabric: %q\nsequential: %q", qBuf.Bytes(), wantQuarantine)
	}
	snap := reg.Snapshot()
	if snap.Counters["fabric.leases_expired"] == 0 {
		t.Errorf("no lease expired — the victim's death went undetected: %v", snap.Counters)
	}
	if snap.Counters["fabric.leases_released"] == 0 {
		t.Errorf("no range re-leased after the crash: %v", snap.Counters)
	}
	if snap.Counters["fabric.workers_registered"] != 3 {
		t.Errorf("workers_registered = %d, want 3", snap.Counters["fabric.workers_registered"])
	}
}

// TestFabricDistributedEquivalence is the happy-path drill: three healthy
// workers, no failures, byte-identical output — exercising the release
// frontier under genuinely concurrent out-of-order completions.
func TestFabricDistributedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end campaign")
	}
	wantCSV, _ := sequentialReference(t)
	parsed, err := config.Parse(bytes.NewReader([]byte(e2eConfig)))
	if err != nil {
		t.Fatal(err)
	}
	total := parsed.Campaign.NumExperiments()

	var csvBuf bytes.Buffer
	coord, err := NewCoordinator(CoordinatorOptions{
		ConfigJSON: []byte(e2eConfig),
		Total:      total,
		LeaseSize:  3,
		LeaseTTL:   2 * time.Second,
		Results:    &csvBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait(ctx) }()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerOptions{
				Coordinator: srv.URL,
				Workers:     2,
				RetryBase:   20 * time.Millisecond,
				Seed:        int64(1 + i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
		t.Errorf("distributed CSV differs from sequential:\nfabric:\n%s\nsequential:\n%s", csvBuf.Bytes(), wantCSV)
	}
}

// multiCampaignConfigs are three genuinely different grids for the
// multi-campaign drill: distinct sizes and attack parameters, so a
// cross-campaign merge bug cannot cancel out.
var multiCampaignConfigs = []string{
	e2eConfig,
	`{
  "scenario": {"totalSimTimeS": 6},
  "campaign": {
    "attack": "delay",
    "valuesS": {"values": [0.5, 1.5]},
    "startTimesS": {"values": [2]},
    "durationsS": {"values": [1, 2, 3]}
  }
}`,
	`{
  "scenario": {"totalSimTimeS": 6},
  "campaign": {
    "attack": "delay",
    "valuesS": {"values": [0.8]},
    "startTimesS": {"values": [1, 2]},
    "durationsS": {"values": [1, 2, 3, 4]}
  }
}`,
}

// TestFabricMultiCampaignChaosEquivalence is the multi-campaign failure
// drill: three campaigns submitted concurrently to ONE submit-mode
// service, three workers sharing the queue, one worker killed
// mid-campaign while holding a lease. Every campaign's merged CSV and
// quarantine must come out byte-identical to its own sequential run —
// the namespaced lease tables and per-campaign release frontiers must
// not leak a single row across campaigns, even through a crash.
func TestFabricMultiCampaignChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end campaign")
	}
	dir := t.TempDir()
	reg := obs.NewRegistry()
	svc, err := NewService(ServiceOptions{
		Dir:         dir,
		LeaseSize:   2,
		LeaseTTL:    400 * time.Millisecond,
		FairnessCap: 2,
		Metrics:     reg,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	waitCtx, stopService := context.WithCancel(ctx)
	defer stopService()
	svcErr := make(chan error, 1)
	go func() { svcErr <- svc.Wait(waitCtx) }()

	// Submit all three campaigns concurrently — the submit path must be
	// safe under contention and hand out distinct sequential IDs.
	var submitWG sync.WaitGroup
	ids := make([]string, len(multiCampaignConfigs))
	for i, cfg := range multiCampaignConfigs {
		submitWG.Add(1)
		go func(i int, cfg string) {
			defer submitWG.Done()
			resp, err := svc.Submit("drill-"+string(rune('a'+i)), []byte(cfg))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = resp.CampaignID
		}(i, cfg)
	}
	submitWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	seen := map[string]bool{}
	for i, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("submission %d got duplicate or empty ID %q (all: %v)", i, id, ids)
		}
		seen[id] = true
	}

	// The victim takes a lease and crashes holding it; the TTL sweeper
	// must return its range to the pool.
	victim, err := NewWorker(WorkerOptions{
		Coordinator: srv.URL,
		MaxRetries:  3,
		RetryBase:   10 * time.Millisecond,
		Seed:        7,
		NewExecutor: func([]byte) (Executor, error) {
			return &crashingExecutor{delay: 50 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := victim.Run(ctx); !errors.Is(verr, errInjectedCrash) {
		t.Fatalf("victim died with %v, want the injected crash", verr)
	}

	// Three healthy workers drain the whole queue, building one executor
	// per campaign from the config shipped with its first grant.
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerOptions{
				Coordinator: srv.URL,
				Workers:     2,
				MaxRetries:  8,
				RetryBase:   20 * time.Millisecond,
				Seed:        int64(200 + i),
				Metrics:     obs.NewRegistry(),
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}

	// Submit mode never self-finishes: wait for every campaign to reach
	// done, then drain so the workers exit cleanly.
	for {
		states := svc.ListCampaigns()
		done := 0
		for _, st := range states {
			switch st.State {
			case StateDone:
				done++
			case StateFailed:
				t.Fatalf("campaign %s failed: %s", st.ID, st.Error)
			}
		}
		if done == len(multiCampaignConfigs) {
			break
		}
		if err := ctx.Err(); err != nil {
			t.Fatalf("campaigns stuck: %+v (%v)", states, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stopService()
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if err := <-svcErr; err != nil {
		t.Fatalf("service: %v", err)
	}

	// Byte-identity, campaign by campaign, on the durable files AND the
	// results-endpoint snapshot.
	for i, cfg := range multiCampaignConfigs {
		wantCSV, wantQ := sequentialReferenceFor(t, cfg)
		files := runner.CampaignFilesIn(dir, ids[i])
		gotCSV, err := os.ReadFile(files.Results)
		if err != nil {
			t.Fatalf("campaign %s results: %v", ids[i], err)
		}
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("campaign %s CSV differs from its sequential run:\nfabric:\n%s\nsequential:\n%s", ids[i], gotCSV, wantCSV)
		}
		gotQ, err := os.ReadFile(files.Quarantine)
		if err != nil {
			t.Fatalf("campaign %s quarantine: %v", ids[i], err)
		}
		if !bytes.Equal(gotQ, wantQ) {
			t.Errorf("campaign %s quarantine differs:\nfabric: %q\nsequential: %q", ids[i], gotQ, wantQ)
		}
		snap, ok := svc.Results(ids[i])
		if !ok || snap.State != StateDone {
			t.Fatalf("campaign %s snapshot missing or not done: %+v", ids[i], snap)
		}
		if snap.CSV != string(wantCSV) {
			t.Errorf("campaign %s snapshot CSV diverges from the sequential run", ids[i])
		}
	}

	msnap := reg.Snapshot()
	if msnap.Counters["fabric.leases_expired"] == 0 {
		t.Errorf("no lease expired — the victim's death went undetected: %v", msnap.Counters)
	}
	if msnap.Counters["fabric.campaigns_submitted"] != 3 || msnap.Counters["fabric.campaigns_finished"] != 3 {
		t.Errorf("campaign counters = submitted %d finished %d, want 3/3",
			msnap.Counters["fabric.campaigns_submitted"], msnap.Counters["fabric.campaigns_finished"])
	}
	if msnap.Counters["fabric.workers_registered"] != 4 {
		t.Errorf("workers_registered = %d, want 4", msnap.Counters["fabric.workers_registered"])
	}
}
