package fabric

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"comfase/internal/config"
	"comfase/internal/core"
	"comfase/internal/obs"
	"comfase/internal/runner"
)

// e2eConfig is the chaos campaign: a 12-point delay grid inside a 6 s
// horizon, small enough to execute in seconds but large enough (6 chunks
// at lease size 2) that killing a worker mid-campaign forces a re-lease.
const e2eConfig = `{
  "scenario": {"totalSimTimeS": 6},
  "campaign": {
    "attack": "delay",
    "valuesS": {"values": [0.3, 1.0, 2.0]},
    "startTimesS": {"values": [2]},
    "durationsS": {"values": [1, 2, 3, 4]}
  }
}`

// sequentialReference runs the campaign in-process the ordinary way and
// returns the results CSV and quarantine bytes.
func sequentialReference(t *testing.T) (csvOut, quarantineOut []byte) {
	t.Helper()
	parsed, err := config.Parse(bytes.NewReader([]byte(e2eConfig)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(parsed.Engine)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, qBuf bytes.Buffer
	r, err := runner.New(eng, runner.Options{
		Workers:     4,
		MaxFailures: -1,
		Quarantine:  runner.NewQuarantineSink(&qBuf),
	}, runner.NewCSVSink(&csvBuf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), parsed.Campaign); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), qBuf.Bytes()
}

// crashingExecutor simulates a worker crash: the first Execute call dies
// after a short delay (holding its lease, never completing), so the
// coordinator must detect the death by TTL expiry and re-lease the range.
type crashingExecutor struct {
	delay time.Duration
}

var errInjectedCrash = errors.New("injected worker crash")

func (e *crashingExecutor) Execute(ctx context.Context, from, to int) ([]ResultRow, []FailureRow, error) {
	select {
	case <-time.After(e.delay):
	case <-ctx.Done():
	}
	return nil, nil, errInjectedCrash
}

// TestFabricChaosEquivalence is the end-to-end failure drill: a
// coordinator and three workers over real HTTP, one worker killed
// mid-campaign while holding a lease. The survivors must absorb the
// re-leased range and the merged CSV must be byte-identical to a
// sequential single-process run.
func TestFabricChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end campaign")
	}
	wantCSV, wantQuarantine := sequentialReference(t)

	parsed, err := config.Parse(bytes.NewReader([]byte(e2eConfig)))
	if err != nil {
		t.Fatal(err)
	}
	total := parsed.Campaign.NumExperiments()
	if total != 12 {
		t.Fatalf("e2e grid = %d points, want 12", total)
	}

	reg := obs.NewRegistry()
	var csvBuf, qBuf bytes.Buffer
	coord, err := NewCoordinator(CoordinatorOptions{
		ConfigJSON:  []byte(e2eConfig),
		Total:       total,
		LeaseSize:   2,
		LeaseTTL:    400 * time.Millisecond,
		Results:     &csvBuf,
		Quarantine:  &qBuf,
		MaxFailures: -1,
		Metrics:     reg,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait(ctx) }()

	// The victim registers first and takes a lease, then "crashes": its
	// executor dies mid-range, the process never completes or renews, and
	// the lease must expire.
	victim, err := NewWorker(WorkerOptions{
		Coordinator: srv.URL,
		MaxRetries:  3,
		RetryBase:   10 * time.Millisecond,
		Seed:        7,
		NewExecutor: func([]byte) (Executor, error) {
			return &crashingExecutor{delay: 50 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victimErr := victim.Run(ctx)
	if !errors.Is(victimErr, errInjectedCrash) {
		t.Fatalf("victim died with %v, want the injected crash", victimErr)
	}

	// Two healthy workers finish the campaign, the re-leased range
	// included.
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerOptions{
				Coordinator: srv.URL,
				Workers:     2,
				MaxRetries:  8,
				RetryBase:   20 * time.Millisecond,
				Seed:        int64(100 + i),
				Metrics:     obs.NewRegistry(),
			})
			if err != nil {
				workerErrs[i] = err
				return
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	if got := coord.Merged(); got != total {
		t.Fatalf("merged %d/%d grid points", got, total)
	}
	if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
		t.Errorf("merged CSV differs from the sequential run:\nfabric:\n%s\nsequential:\n%s", csvBuf.Bytes(), wantCSV)
	}
	if !bytes.Equal(qBuf.Bytes(), wantQuarantine) {
		t.Errorf("merged quarantine differs:\nfabric: %q\nsequential: %q", qBuf.Bytes(), wantQuarantine)
	}
	snap := reg.Snapshot()
	if snap.Counters["fabric.leases_expired"] == 0 {
		t.Errorf("no lease expired — the victim's death went undetected: %v", snap.Counters)
	}
	if snap.Counters["fabric.leases_released"] == 0 {
		t.Errorf("no range re-leased after the crash: %v", snap.Counters)
	}
	if snap.Counters["fabric.workers_registered"] != 3 {
		t.Errorf("workers_registered = %d, want 3", snap.Counters["fabric.workers_registered"])
	}
}

// TestFabricDistributedEquivalence is the happy-path drill: three healthy
// workers, no failures, byte-identical output — exercising the release
// frontier under genuinely concurrent out-of-order completions.
func TestFabricDistributedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end campaign")
	}
	wantCSV, _ := sequentialReference(t)
	parsed, err := config.Parse(bytes.NewReader([]byte(e2eConfig)))
	if err != nil {
		t.Fatal(err)
	}
	total := parsed.Campaign.NumExperiments()

	var csvBuf bytes.Buffer
	coord, err := NewCoordinator(CoordinatorOptions{
		ConfigJSON: []byte(e2eConfig),
		Total:      total,
		LeaseSize:  3,
		LeaseTTL:   2 * time.Second,
		Results:    &csvBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait(ctx) }()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := NewWorker(WorkerOptions{
				Coordinator: srv.URL,
				Workers:     2,
				RetryBase:   20 * time.Millisecond,
				Seed:        int64(1 + i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
		t.Errorf("distributed CSV differs from sequential:\nfabric:\n%s\nsequential:\n%s", csvBuf.Bytes(), wantCSV)
	}
}
