// Package fabric is the distributed campaign runtime of the ComFASE
// reproduction: a coordinator service (`comfase serve`) that owns one or
// more expanded campaign/matrix grids and leases contiguous expNr ranges
// to worker processes (`comfase work`) over a small HTTP+JSON protocol,
// plus the failure machinery that makes the distribution trustworthy —
// lease TTLs renewed from the workers' obs heartbeat snapshots,
// dead-worker detection with automatic re-lease of unfinished ranges, a
// per-lease generation counter that rejects late results from a
// presumed-dead worker idempotently, bounded worker-side retry with
// jittered exponential backoff for coordinator blips, and a draining
// mode that finishes what is leased while leasing nothing new.
//
// Since the multi-campaign growth, the service absorbs queued campaign
// submissions over a /v1/campaigns API: every lease table, generation
// counter, release frontier and resume path is namespaced by campaign
// ID, and a shared worker fleet drains the queue of grids oldest-first
// under a per-campaign fairness cap — no coordinator restarts between
// campaigns.
//
// Each campaign streams its merged rows in grid order through its own
// release frontier, so the final results CSV (and the merged
// quarantine.jsonl) is byte-identical to a sequential single-process run
// even when workers crash mid-range and their leases are re-executed
// elsewhere.
package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"comfase/internal/obs"
)

// ProtocolVersion is the fabric wire-protocol version. Register fails
// when coordinator and worker disagree, so a fleet never silently mixes
// incompatible binaries. v2 namespaced every lease by campaign ID and
// moved config delivery from registration to the first lease grant of
// each campaign.
const ProtocolVersion = 2

// Paths of the coordinator's HTTP endpoints. The /v1/campaigns family is
// the control plane (submissions, status, cancellation, results); the
// rest is the worker data plane.
const (
	PathRegister = "/v1/register"
	PathLease    = "/v1/lease"
	PathReport   = "/v1/report"
	PathComplete = "/v1/complete"
	PathStatus   = "/v1/status"

	PathCampaigns       = "/v1/campaigns"
	PathCampaignStatus  = "/v1/campaigns/status"
	PathCampaignCancel  = "/v1/campaigns/cancel"
	PathCampaignResults = "/v1/campaigns/results"
)

// RegisterRequest introduces a worker to the coordinator. Host and PID
// are diagnostic only; identity is the coordinator-assigned WorkerID in
// the response.
type RegisterRequest struct {
	Host string `json:"host,omitempty"`
	PID  int    `json:"pid,omitempty"`
}

// RegisterResponse hands the worker its identity and the lease TTL it
// must renew within. Campaign configs are NOT shipped here: in a
// multi-campaign service the work a worker will see is unknowable at
// registration time, so each campaign's config arrives with that
// campaign's first lease grant instead.
type RegisterResponse struct {
	Version  int    `json:"version"`
	WorkerID string `json:"workerID"`
	// LeaseTTLMS is the lease time-to-live in milliseconds. A worker
	// that does not report within it is presumed dead and its range is
	// re-leased.
	LeaseTTLMS int64 `json:"leaseTTLMS"`
}

// LeaseRequest asks for the next unleased range of any active campaign.
// Known lists the campaign IDs the worker already holds an executor for,
// so the coordinator ships a campaign's config only on the worker's
// first encounter with it.
type LeaseRequest struct {
	WorkerID string   `json:"workerID"`
	Known    []string `json:"known,omitempty"`
}

// LeaseResponse grants a range, or explains why none was granted.
type LeaseResponse struct {
	// Granted reports whether Campaign/Chunk/From/To/Gen carry a lease.
	Granted bool `json:"granted"`
	// Campaign is the campaign ID the lease belongs to; echo it on
	// report/complete — chunk indices and generations are namespaced
	// per campaign.
	Campaign string `json:"campaign,omitempty"`
	// Chunk is the campaign's range index; echo it on report/complete.
	Chunk int `json:"chunk"`
	// From/To is the half-open expNr interval [From, To) to execute.
	From int `json:"from"`
	To   int `json:"to"`
	// Gen is the lease generation. A range re-leased after a presumed
	// worker death carries a higher generation; reports with a stale
	// generation are rejected.
	Gen uint64 `json:"gen"`
	// Config is the campaign's raw config JSON, present only when the
	// request's Known list did not include Campaign. The worker parses
	// it with the ordinary config loader and caches the executor.
	Config json.RawMessage `json:"config,omitempty"`
	// Done: every campaign is complete and the coordinator is about to
	// shut down — the worker should exit cleanly.
	Done bool `json:"done"`
	// Draining: the coordinator is shutting down and leases nothing new.
	Draining bool `json:"draining"`
	// RetryMS, when no lease was granted and the service is still live,
	// suggests when to ask again (outstanding leases may expire, and new
	// campaigns may be submitted at any time).
	RetryMS int64 `json:"retryMS,omitempty"`
}

// ReportRequest is the combined progress report + lease renewal + worker
// heartbeat: receiving it extends the lease TTL, and the embedded obs
// snapshot (the same document the worker's heartbeat file would carry)
// gives the coordinator per-worker liveness and throughput data.
type ReportRequest struct {
	WorkerID string `json:"workerID"`
	Campaign string `json:"campaign"`
	Chunk    int    `json:"chunk"`
	Gen      uint64 `json:"gen"`
	// Done is how many grid points of the leased range have finished.
	Done int `json:"done,omitempty"`
	// Snapshot is the worker's obs registry capture.
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	OK bool `json:"ok"`
	// Cancel tells the worker its lease is gone (expired and re-leased,
	// the range completed elsewhere, or the campaign was cancelled):
	// abandon the work, ask anew.
	Cancel bool `json:"cancel,omitempty"`
	// Draining mirrors the coordinator's drain flag so long-running
	// workers learn about a shutdown without a lease round-trip.
	Draining bool `json:"draining,omitempty"`
}

// ResultRow is one classified experiment in wire form: the expNr plus
// the exact CSV record fields the sequential run would have written.
// Shipping the encoded fields (rather than a re-parsed struct) is what
// lets the coordinator guarantee byte-identical merged output.
type ResultRow struct {
	Nr     int      `json:"nr"`
	Fields []string `json:"fields"`
}

// FailureRow is one quarantined experiment in wire form: the expNr plus
// the exact JSON line the sequential quarantine sink would have written.
type FailureRow struct {
	Nr     int             `json:"nr"`
	Record json.RawMessage `json:"record"`
}

// CompleteRequest reports a fully executed range: every expNr in
// [From, To) appears exactly once, either as a result row or as a
// quarantine record.
type CompleteRequest struct {
	WorkerID string       `json:"workerID"`
	Campaign string       `json:"campaign"`
	Chunk    int          `json:"chunk"`
	Gen      uint64       `json:"gen"`
	Rows     []ResultRow  `json:"rows"`
	Failures []FailureRow `json:"failures,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
	// Stale: the lease generation was superseded (the range was — or is
	// being — re-executed elsewhere, or the campaign was cancelled); the
	// payload was discarded. This is the idempotent rejection of a late
	// report from a presumed-dead worker: not an error, just "your work
	// was no longer wanted".
	Stale bool `json:"stale,omitempty"`
	// Done: every campaign is finished and the coordinator is about to
	// shut down. The worker should exit without polling for another
	// lease — a follow-up request would only see a dead socket and burn
	// its retry budget.
	Done bool `json:"done,omitempty"`
}

// SubmitRequest enqueues a new campaign on a submit-mode coordinator.
type SubmitRequest struct {
	// Name is an optional operator-facing label; the coordinator-assigned
	// campaign ID in the response is the identity.
	Name string `json:"name,omitempty"`
	// Config is the raw campaign/matrix config file, exactly what
	// `comfase campaign -config` would read.
	Config json.RawMessage `json:"config"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	// CampaignID names the campaign in every later status/cancel/results
	// call and in the per-campaign file layout under the service dir.
	CampaignID string `json:"campaignID"`
	// Base is the first expNr of the campaign's grid; Total the number
	// of points.
	Base  int `json:"base"`
	Total int `json:"total"`
	// Position is the campaign's place in the submission order (1-based):
	// the scheduler drains campaigns oldest-first.
	Position int `json:"position"`
}

// CancelRequest cancels a campaign: outstanding leases are rejected
// idempotently with stale:true when they complete, and nothing new is
// granted for it.
type CancelRequest struct {
	CampaignID string `json:"campaignID"`
}

// CancelResponse reports the campaign's state after the cancel.
type CancelResponse struct {
	OK    bool   `json:"ok"`
	State string `json:"state"`
}

// CampaignStatus is one campaign's control-plane view — also the schema
// of the per-campaign `<id>.status.json` documents a submit-mode service
// maintains on disk.
type CampaignStatus struct {
	ID         string `json:"id"`
	Name       string `json:"name,omitempty"`
	State      string `json:"state"`
	Base       int    `json:"base"`
	Total      int    `json:"total"`
	Merged     int    `json:"merged"`
	Failures   int    `json:"failures"`
	Chunks     int    `json:"chunks"`
	ChunksDone int    `json:"chunksDone"`
	// SubmittedSeq is the submission order (1-based); the scheduler
	// serves lower sequences first.
	SubmittedSeq int `json:"submittedSeq"`
	// Error carries the campaign's fatal error (budget exceeded, sink
	// I/O) when State is "failed".
	Error string `json:"error,omitempty"`
}

// CampaignListResponse is the GET /v1/campaigns document.
type CampaignListResponse struct {
	Version   int              `json:"version"`
	Campaigns []CampaignStatus `json:"campaigns"`
}

// CampaignResultsResponse is the GET /v1/campaigns/results document: the
// campaign's merged output so far. It is rendered from an atomically
// swapped release-frontier snapshot — never from worker state — so the
// CSV is always a grid-ordered prefix of the final file, exactly what is
// durable on disk.
type CampaignResultsResponse struct {
	CampaignID string `json:"campaignID"`
	State      string `json:"state"`
	Merged     int    `json:"merged"`
	Total      int    `json:"total"`
	// CSV is the merged results stream (header + rows in expNr order).
	CSV string `json:"csv"`
	// Quarantine is the merged quarantine JSON-lines stream.
	Quarantine string `json:"quarantine,omitempty"`
}

// StatusResponse is the GET /v1/status document — a human/tooling view
// of the whole service, separate from the obs snapshot. Grid-point and
// chunk counts aggregate across campaigns; per-campaign detail lives in
// the Campaigns list (and the /v1/campaigns endpoints).
type StatusResponse struct {
	Version    int              `json:"version"`
	Total      int              `json:"total"`
	Merged     int              `json:"merged"` // grid points written out
	Chunks     int              `json:"chunks"`
	ChunksDone int              `json:"chunksDone"`
	Draining   bool             `json:"draining"`
	Campaigns  []CampaignStatus `json:"campaigns,omitempty"`
	Workers    []WorkerStatus   `json:"workers,omitempty"`
}

// WorkerStatus is one registered worker's liveness view.
type WorkerStatus struct {
	ID           string `json:"id"`
	Host         string `json:"host,omitempty"`
	PID          int    `json:"pid,omitempty"`
	LastSeenUnix int64  `json:"lastSeenUnix"`
	Live         bool   `json:"live"`
}

// ErrProtocol wraps every decode/validation failure of the wire
// messages, so handlers can map them to 400s with one errors.Is check.
var ErrProtocol = errors.New("fabric: protocol error")

// maxMessageBytes bounds a single protocol message. Complete payloads
// carry whole ranges of CSV rows and submit payloads carry whole config
// files, so the bound is generous; everything else is tiny.
const maxMessageBytes = 64 << 20

// maxCampaignName bounds the operator-facing campaign label.
const maxCampaignName = 128

// decodeStrict parses exactly one JSON document into dst, rejecting
// unknown fields, trailing garbage and oversized payloads. It is the
// single entry point for every protocol message, which keeps the fuzz
// surface (FuzzLeaseProtocolDecode, FuzzCampaignSubmitDecode) honest:
// malformed, truncated or field-duplicated inputs must error cleanly,
// never panic.
func decodeStrict(data []byte, dst any) error {
	if len(data) > maxMessageBytes {
		return fmt.Errorf("%w: message of %d bytes exceeds limit", ErrProtocol, len(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: trailing data after message", ErrProtocol)
	}
	return nil
}

// DecodeRegisterRequest parses and validates a RegisterRequest.
func DecodeRegisterRequest(data []byte) (RegisterRequest, error) {
	var m RegisterRequest
	if err := decodeStrict(data, &m); err != nil {
		return RegisterRequest{}, err
	}
	if m.PID < 0 {
		return RegisterRequest{}, fmt.Errorf("%w: negative pid %d", ErrProtocol, m.PID)
	}
	return m, nil
}

// DecodeLeaseRequest parses and validates a LeaseRequest.
func DecodeLeaseRequest(data []byte) (LeaseRequest, error) {
	var m LeaseRequest
	if err := decodeStrict(data, &m); err != nil {
		return LeaseRequest{}, err
	}
	if m.WorkerID == "" {
		return LeaseRequest{}, fmt.Errorf("%w: empty workerID", ErrProtocol)
	}
	for i, id := range m.Known {
		if id == "" {
			return LeaseRequest{}, fmt.Errorf("%w: known[%d] is empty", ErrProtocol, i)
		}
	}
	return m, nil
}

// DecodeReportRequest parses and validates a ReportRequest.
func DecodeReportRequest(data []byte) (ReportRequest, error) {
	var m ReportRequest
	if err := decodeStrict(data, &m); err != nil {
		return ReportRequest{}, err
	}
	if m.WorkerID == "" {
		return ReportRequest{}, fmt.Errorf("%w: empty workerID", ErrProtocol)
	}
	if m.Campaign == "" {
		return ReportRequest{}, fmt.Errorf("%w: empty campaign", ErrProtocol)
	}
	if m.Chunk < 0 {
		return ReportRequest{}, fmt.Errorf("%w: negative chunk %d", ErrProtocol, m.Chunk)
	}
	if m.Done < 0 {
		return ReportRequest{}, fmt.Errorf("%w: negative done %d", ErrProtocol, m.Done)
	}
	return m, nil
}

// DecodeCompleteRequest parses and validates a CompleteRequest. Row
// ordering and range coverage are the coordinator's to check (they need
// the lease table); this layer guarantees structural sanity only.
func DecodeCompleteRequest(data []byte) (CompleteRequest, error) {
	var m CompleteRequest
	if err := decodeStrict(data, &m); err != nil {
		return CompleteRequest{}, err
	}
	if m.WorkerID == "" {
		return CompleteRequest{}, fmt.Errorf("%w: empty workerID", ErrProtocol)
	}
	if m.Campaign == "" {
		return CompleteRequest{}, fmt.Errorf("%w: empty campaign", ErrProtocol)
	}
	if m.Chunk < 0 {
		return CompleteRequest{}, fmt.Errorf("%w: negative chunk %d", ErrProtocol, m.Chunk)
	}
	for i, row := range m.Rows {
		if row.Nr < 0 {
			return CompleteRequest{}, fmt.Errorf("%w: row %d: negative expNr %d", ErrProtocol, i, row.Nr)
		}
		if len(row.Fields) == 0 {
			return CompleteRequest{}, fmt.Errorf("%w: row %d (expNr %d): no fields", ErrProtocol, i, row.Nr)
		}
	}
	for i, f := range m.Failures {
		if f.Nr < 0 {
			return CompleteRequest{}, fmt.Errorf("%w: failure %d: negative expNr %d", ErrProtocol, i, f.Nr)
		}
		trimmed := bytes.TrimSpace(f.Record)
		if len(trimmed) == 0 || trimmed[0] != '{' || !json.Valid(trimmed) {
			return CompleteRequest{}, fmt.Errorf("%w: failure %d (expNr %d): record is not a JSON object", ErrProtocol, i, f.Nr)
		}
	}
	return m, nil
}

// DecodeSubmitRequest parses and validates a SubmitRequest: the config
// must be a JSON object (the ordinary config-file shape — full semantic
// validation happens in the service, which parses it with the config
// loader), and the optional name is length-bounded and must not contain
// path separators or control characters, since it ends up in log lines
// and status documents.
func DecodeSubmitRequest(data []byte) (SubmitRequest, error) {
	var m SubmitRequest
	if err := decodeStrict(data, &m); err != nil {
		return SubmitRequest{}, err
	}
	trimmed := bytes.TrimSpace(m.Config)
	if len(trimmed) == 0 {
		return SubmitRequest{}, fmt.Errorf("%w: submit carries no config", ErrProtocol)
	}
	if trimmed[0] != '{' || !json.Valid(trimmed) {
		return SubmitRequest{}, fmt.Errorf("%w: submit config is not a JSON object", ErrProtocol)
	}
	if len(m.Name) > maxCampaignName {
		return SubmitRequest{}, fmt.Errorf("%w: campaign name of %d bytes exceeds %d", ErrProtocol, len(m.Name), maxCampaignName)
	}
	for _, r := range m.Name {
		if r < 0x20 || r == 0x7f || r == '/' || r == '\\' {
			return SubmitRequest{}, fmt.Errorf("%w: campaign name contains %q", ErrProtocol, r)
		}
	}
	return m, nil
}

// DecodeCancelRequest parses and validates a CancelRequest.
func DecodeCancelRequest(data []byte) (CancelRequest, error) {
	var m CancelRequest
	if err := decodeStrict(data, &m); err != nil {
		return CancelRequest{}, err
	}
	if m.CampaignID == "" {
		return CancelRequest{}, fmt.Errorf("%w: empty campaignID", ErrProtocol)
	}
	return m, nil
}
