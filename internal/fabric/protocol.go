// Package fabric is the distributed campaign runtime of the ComFASE
// reproduction: a coordinator process (`comfase serve`) that owns an
// expanded campaign/matrix grid and leases contiguous expNr ranges to
// worker processes (`comfase work`) over a small HTTP+JSON protocol,
// plus the failure machinery that makes the distribution trustworthy —
// lease TTLs renewed from the workers' obs heartbeat snapshots,
// dead-worker detection with automatic re-lease of unfinished ranges, a
// per-lease generation counter that rejects late results from a
// presumed-dead worker idempotently, bounded worker-side retry with
// jittered exponential backoff for coordinator blips, and a draining
// mode that finishes what is leased while leasing nothing new.
//
// The coordinator streams merged rows in grid order through a release
// frontier, so the final results CSV (and the merged quarantine.jsonl)
// is byte-identical to a sequential single-process run even when
// workers crash mid-range and their leases are re-executed elsewhere.
package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"comfase/internal/obs"
)

// ProtocolVersion is the fabric wire-protocol version. Register fails
// when coordinator and worker disagree, so a fleet never silently mixes
// incompatible binaries.
const ProtocolVersion = 1

// Paths of the coordinator's HTTP endpoints.
const (
	PathRegister = "/v1/register"
	PathLease    = "/v1/lease"
	PathReport   = "/v1/report"
	PathComplete = "/v1/complete"
	PathStatus   = "/v1/status"
)

// RegisterRequest introduces a worker to the coordinator. Host and PID
// are diagnostic only; identity is the coordinator-assigned WorkerID in
// the response.
type RegisterRequest struct {
	Host string `json:"host,omitempty"`
	PID  int    `json:"pid,omitempty"`
}

// RegisterResponse hands the worker everything it needs to execute
// leases: the campaign configuration (the raw JSON config file the
// coordinator was started with — workers need no config of their own),
// the grid geometry, and the lease TTL it must renew within.
type RegisterResponse struct {
	Version  int    `json:"version"`
	WorkerID string `json:"workerID"`
	// Config is the coordinator's raw JSON config file; the worker
	// parses it with the ordinary config loader.
	Config json.RawMessage `json:"config"`
	// Base is the first expNr of the grid; Total the number of points.
	Base  int `json:"base"`
	Total int `json:"total"`
	// LeaseTTLMS is the lease time-to-live in milliseconds. A worker
	// that does not report within it is presumed dead and its range is
	// re-leased.
	LeaseTTLMS int64 `json:"leaseTTLMS"`
}

// LeaseRequest asks for the next unleased range.
type LeaseRequest struct {
	WorkerID string `json:"workerID"`
}

// LeaseResponse grants a range, or explains why none was granted.
type LeaseResponse struct {
	// Granted reports whether Chunk/From/To/Gen carry a lease.
	Granted bool `json:"granted"`
	// Chunk is the coordinator's range index; echo it on report/complete.
	Chunk int `json:"chunk"`
	// From/To is the half-open expNr interval [From, To) to execute.
	From int `json:"from"`
	To   int `json:"to"`
	// Gen is the lease generation. A range re-leased after a presumed
	// worker death carries a higher generation; reports with a stale
	// generation are rejected.
	Gen uint64 `json:"gen"`
	// Done: every range is complete — the worker should exit cleanly.
	Done bool `json:"done"`
	// Draining: the coordinator is shutting down and leases nothing new.
	Draining bool `json:"draining"`
	// RetryMS, when no lease was granted and the grid is not done,
	// suggests when to ask again (outstanding leases may yet expire).
	RetryMS int64 `json:"retryMS,omitempty"`
}

// ReportRequest is the combined progress report + lease renewal + worker
// heartbeat: receiving it extends the lease TTL, and the embedded obs
// snapshot (the same document the worker's heartbeat file would carry)
// gives the coordinator per-worker liveness and throughput data.
type ReportRequest struct {
	WorkerID string `json:"workerID"`
	Chunk    int    `json:"chunk"`
	Gen      uint64 `json:"gen"`
	// Done is how many grid points of the leased range have finished.
	Done int `json:"done,omitempty"`
	// Snapshot is the worker's obs registry capture.
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	OK bool `json:"ok"`
	// Cancel tells the worker its lease is gone (expired and re-leased,
	// or the range completed elsewhere): abandon the work, ask anew.
	Cancel bool `json:"cancel,omitempty"`
	// Draining mirrors the coordinator's drain flag so long-running
	// workers learn about a shutdown without a lease round-trip.
	Draining bool `json:"draining,omitempty"`
}

// ResultRow is one classified experiment in wire form: the expNr plus
// the exact CSV record fields the sequential run would have written.
// Shipping the encoded fields (rather than a re-parsed struct) is what
// lets the coordinator guarantee byte-identical merged output.
type ResultRow struct {
	Nr     int      `json:"nr"`
	Fields []string `json:"fields"`
}

// FailureRow is one quarantined experiment in wire form: the expNr plus
// the exact JSON line the sequential quarantine sink would have written.
type FailureRow struct {
	Nr     int             `json:"nr"`
	Record json.RawMessage `json:"record"`
}

// CompleteRequest reports a fully executed range: every expNr in
// [From, To) appears exactly once, either as a result row or as a
// quarantine record.
type CompleteRequest struct {
	WorkerID string       `json:"workerID"`
	Chunk    int          `json:"chunk"`
	Gen      uint64       `json:"gen"`
	Rows     []ResultRow  `json:"rows"`
	Failures []FailureRow `json:"failures,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
	// Stale: the lease generation was superseded (the range was — or is
	// being — re-executed elsewhere); the payload was discarded. This is
	// the idempotent rejection of a late report from a presumed-dead
	// worker: not an error, just "your work was no longer wanted".
	Stale bool `json:"stale,omitempty"`
	// Done: this completion finished the grid. The worker should exit
	// without polling for another lease — the coordinator is about to
	// shut down, so a follow-up lease request would only see a dead
	// socket and burn its retry budget.
	Done bool `json:"done,omitempty"`
}

// StatusResponse is the GET /v1/status document — a human/tooling view
// of the coordinator, separate from the obs snapshot.
type StatusResponse struct {
	Version    int            `json:"version"`
	Total      int            `json:"total"`
	Merged     int            `json:"merged"` // grid points written out
	Chunks     int            `json:"chunks"`
	ChunksDone int            `json:"chunksDone"`
	Draining   bool           `json:"draining"`
	Workers    []WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one registered worker's liveness view.
type WorkerStatus struct {
	ID           string `json:"id"`
	Host         string `json:"host,omitempty"`
	PID          int    `json:"pid,omitempty"`
	LastSeenUnix int64  `json:"lastSeenUnix"`
	Live         bool   `json:"live"`
}

// ErrProtocol wraps every decode/validation failure of the wire
// messages, so handlers can map them to 400s with one errors.Is check.
var ErrProtocol = errors.New("fabric: protocol error")

// maxMessageBytes bounds a single protocol message. Complete payloads
// carry whole ranges of CSV rows, so the bound is generous; everything
// else is tiny.
const maxMessageBytes = 64 << 20

// decodeStrict parses exactly one JSON document into dst, rejecting
// unknown fields, trailing garbage and oversized payloads. It is the
// single entry point for every protocol message, which keeps the fuzz
// surface (FuzzLeaseProtocolDecode) honest: malformed, truncated or
// field-duplicated inputs must error cleanly, never panic.
func decodeStrict(data []byte, dst any) error {
	if len(data) > maxMessageBytes {
		return fmt.Errorf("%w: message of %d bytes exceeds limit", ErrProtocol, len(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: trailing data after message", ErrProtocol)
	}
	return nil
}

// DecodeRegisterRequest parses and validates a RegisterRequest.
func DecodeRegisterRequest(data []byte) (RegisterRequest, error) {
	var m RegisterRequest
	if err := decodeStrict(data, &m); err != nil {
		return RegisterRequest{}, err
	}
	if m.PID < 0 {
		return RegisterRequest{}, fmt.Errorf("%w: negative pid %d", ErrProtocol, m.PID)
	}
	return m, nil
}

// DecodeLeaseRequest parses and validates a LeaseRequest.
func DecodeLeaseRequest(data []byte) (LeaseRequest, error) {
	var m LeaseRequest
	if err := decodeStrict(data, &m); err != nil {
		return LeaseRequest{}, err
	}
	if m.WorkerID == "" {
		return LeaseRequest{}, fmt.Errorf("%w: empty workerID", ErrProtocol)
	}
	return m, nil
}

// DecodeReportRequest parses and validates a ReportRequest.
func DecodeReportRequest(data []byte) (ReportRequest, error) {
	var m ReportRequest
	if err := decodeStrict(data, &m); err != nil {
		return ReportRequest{}, err
	}
	if m.WorkerID == "" {
		return ReportRequest{}, fmt.Errorf("%w: empty workerID", ErrProtocol)
	}
	if m.Chunk < 0 {
		return ReportRequest{}, fmt.Errorf("%w: negative chunk %d", ErrProtocol, m.Chunk)
	}
	if m.Done < 0 {
		return ReportRequest{}, fmt.Errorf("%w: negative done %d", ErrProtocol, m.Done)
	}
	return m, nil
}

// DecodeCompleteRequest parses and validates a CompleteRequest. Row
// ordering and range coverage are the coordinator's to check (they need
// the lease table); this layer guarantees structural sanity only.
func DecodeCompleteRequest(data []byte) (CompleteRequest, error) {
	var m CompleteRequest
	if err := decodeStrict(data, &m); err != nil {
		return CompleteRequest{}, err
	}
	if m.WorkerID == "" {
		return CompleteRequest{}, fmt.Errorf("%w: empty workerID", ErrProtocol)
	}
	if m.Chunk < 0 {
		return CompleteRequest{}, fmt.Errorf("%w: negative chunk %d", ErrProtocol, m.Chunk)
	}
	for i, row := range m.Rows {
		if row.Nr < 0 {
			return CompleteRequest{}, fmt.Errorf("%w: row %d: negative expNr %d", ErrProtocol, i, row.Nr)
		}
		if len(row.Fields) == 0 {
			return CompleteRequest{}, fmt.Errorf("%w: row %d (expNr %d): no fields", ErrProtocol, i, row.Nr)
		}
	}
	for i, f := range m.Failures {
		if f.Nr < 0 {
			return CompleteRequest{}, fmt.Errorf("%w: failure %d: negative expNr %d", ErrProtocol, i, f.Nr)
		}
		trimmed := bytes.TrimSpace(f.Record)
		if len(trimmed) == 0 || trimmed[0] != '{' || !json.Valid(trimmed) {
			return CompleteRequest{}, fmt.Errorf("%w: failure %d (expNr %d): record is not a JSON object", ErrProtocol, i, f.Nr)
		}
	}
	return m, nil
}
