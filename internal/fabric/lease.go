package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"comfase/internal/obs"
)

// Lease state-machine errors. ErrStaleLease is the generation-counter
// rejection: the operation named a lease that has been superseded (the
// range expired and was re-granted, or already completed). Callers treat
// it as an idempotent "your work is no longer wanted", not a failure.
var (
	ErrStaleLease   = errors.New("fabric: stale lease")
	ErrUnknownChunk = errors.New("fabric: unknown chunk")
)

// chunkState is one range's position in the lease lifecycle.
type chunkState uint8

const (
	chunkPending chunkState = iota // never granted, or returned after expiry
	chunkLeased                    // granted to a worker, TTL running
	chunkDone                      // results accepted and merged
)

// chunk is one contiguous grid range [from, to) and its lease bookkeeping.
type chunk struct {
	from, to int
	state    chunkState
	// gen increments on every grant. A report or completion must present
	// the current generation; anything older is a late message from a
	// presumed-dead worker and is rejected with ErrStaleLease.
	gen     uint64
	worker  string
	expires time.Time
}

// Lease is a granted range in the table's terms.
type Lease struct {
	Chunk    int
	From, To int
	Gen      uint64
}

// AcquireStatus explains an Acquire outcome that granted nothing.
type AcquireStatus int

const (
	// AcquireGranted: the returned Lease is valid.
	AcquireGranted AcquireStatus = iota
	// AcquireEmpty: nothing pending right now, but outstanding leases
	// may expire and re-pend — ask again later.
	AcquireEmpty
	// AcquireDone: every chunk is done; the campaign is complete.
	AcquireDone
	// AcquireDraining: the table is draining and grants nothing new.
	AcquireDraining
)

// LeaseTable is the coordinator's range ledger: the campaign grid cut
// into contiguous chunks, each walked through pending → leased → done
// with TTL-based liveness. All methods are safe for concurrent use. The
// clock is injectable so the expiry paths are unit-testable without
// sleeping.
type LeaseTable struct {
	mu       sync.Mutex
	chunks   []chunk
	ttl      time.Duration
	now      func() time.Time
	draining bool
	done     int // count of chunkDone

	// Metrics (nil-safe; no-ops without a registry).
	granted  *obs.Counter // leases handed out
	expired  *obs.Counter // leases returned to pending by TTL expiry
	released *obs.Counter // grants of a chunk that had been granted before
	stale    *obs.Counter // operations rejected by the generation counter
	pendingG *obs.Gauge
	leasedG  *obs.Gauge
	doneG    *obs.Gauge
}

// NewLeaseTable cuts the grid [base, base+total) into ceil(total/size)
// contiguous chunks of at most size points each. ttl must be positive;
// now may be nil for the wall clock; reg may be nil. Optional label
// pairs (obs.Label form) decorate the per-table state gauges so a
// multi-campaign service can expose one gauge set per campaign; the
// event counters stay undecorated and therefore aggregate across every
// table sharing the registry.
func NewLeaseTable(base, total, size int, ttl time.Duration, now func() time.Time, reg *obs.Registry, labels ...string) (*LeaseTable, error) {
	if total <= 0 {
		return nil, fmt.Errorf("fabric: lease table needs a non-empty grid (total %d)", total)
	}
	if size <= 0 {
		return nil, fmt.Errorf("fabric: lease size %d must be positive", size)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("fabric: lease TTL %v must be positive", ttl)
	}
	if now == nil {
		now = time.Now
	}
	t := &LeaseTable{
		ttl:      ttl,
		now:      now,
		granted:  reg.Counter("fabric.leases_granted"),
		expired:  reg.Counter("fabric.leases_expired"),
		released: reg.Counter("fabric.leases_released"),
		stale:    reg.Counter("fabric.stale_rejected"),
		pendingG: reg.Gauge(obs.Label("fabric.chunks_pending", labels...)),
		leasedG:  reg.Gauge(obs.Label("fabric.chunks_leased", labels...)),
		doneG:    reg.Gauge(obs.Label("fabric.chunks_done", labels...)),
	}
	for from := base; from < base+total; from += size {
		to := from + size
		if to > base+total {
			to = base + total
		}
		t.chunks = append(t.chunks, chunk{from: from, to: to})
	}
	t.pendingG.Set(int64(len(t.chunks)))
	return t, nil
}

// NumChunks is the number of ranges in the table.
func (t *LeaseTable) NumChunks() int { return len(t.chunks) }

// Bounds returns chunk c's current [from, to) interval.
func (t *LeaseTable) Bounds(c int) (from, to int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c < 0 || c >= len(t.chunks) {
		return 0, 0, ErrUnknownChunk
	}
	return t.chunks[c].from, t.chunks[c].to, nil
}

// MarkDonePrefix marks every chunk entirely below nr done and trims the
// straddling chunk's lower bound to nr — the resume path: grid points
// below nr are already on disk from a previous coordinator incarnation
// (the release frontier writes a contiguous prefix, so "done so far" is
// always describable as a prefix).
func (t *LeaseTable) MarkDonePrefix(nr int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.chunks {
		c := &t.chunks[i]
		switch {
		case c.to <= nr:
			if c.state != chunkDone {
				c.state = chunkDone
				t.done++
			}
		case c.from < nr:
			c.from = nr
		}
	}
	t.syncGauges()
}

// Acquire grants the lowest pending chunk to worker. Expired leases are
// swept first, so a dead worker's range is re-granted here even if the
// background sweeper has not run yet.
func (t *LeaseTable) Acquire(worker string) (Lease, AcquireStatus) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	if t.done == len(t.chunks) {
		return Lease{}, AcquireDone
	}
	if t.draining {
		return Lease{}, AcquireDraining
	}
	for i := range t.chunks {
		c := &t.chunks[i]
		if c.state != chunkPending {
			continue
		}
		if c.gen > 0 {
			t.released.Inc() // this range had been granted before: a re-lease
		}
		c.state = chunkLeased
		c.gen++
		c.worker = worker
		c.expires = t.now().Add(t.ttl)
		t.granted.Inc()
		t.syncGauges()
		return Lease{Chunk: i, From: c.from, To: c.to, Gen: c.gen}, AcquireGranted
	}
	return Lease{}, AcquireEmpty
}

// Renew extends the lease's TTL. The (chunk, gen) pair must name the
// current lease; a superseded generation — or a chunk no longer leased —
// yields ErrStaleLease, telling a worker its range has moved on without it.
func (t *LeaseTable) Renew(worker string, chunkIdx int, gen uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, err := t.currentLocked(worker, chunkIdx, gen)
	if err != nil {
		return err
	}
	c.expires = t.now().Add(t.ttl)
	return nil
}

// Complete marks the lease's range done. Same staleness rules as Renew:
// a late completion from a presumed-dead worker is rejected with
// ErrStaleLease and changes nothing — the re-leased execution's results
// are the ones that count, so every range is merged exactly once.
func (t *LeaseTable) Complete(worker string, chunkIdx int, gen uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, err := t.currentLocked(worker, chunkIdx, gen)
	if err != nil {
		return err
	}
	c.state = chunkDone
	c.worker = ""
	t.done++
	t.syncGauges()
	return nil
}

// currentLocked resolves (worker, chunk, gen) to the live lease or the
// appropriate rejection. Expiry is checked lazily here too: an operation
// arriving after the TTL ran out is already stale even if no sweep or
// re-grant has happened, which keeps "expired" deterministic for tests
// driving a fake clock.
func (t *LeaseTable) currentLocked(worker string, chunkIdx int, gen uint64) (*chunk, error) {
	if chunkIdx < 0 || chunkIdx >= len(t.chunks) {
		return nil, ErrUnknownChunk
	}
	c := &t.chunks[chunkIdx]
	if c.state != chunkLeased || c.gen != gen || c.worker != worker {
		t.stale.Inc()
		return nil, fmt.Errorf("%w: chunk %d gen %d (worker %s)", ErrStaleLease, chunkIdx, gen, worker)
	}
	if t.now().After(c.expires) {
		t.expireLocked(c)
		t.stale.Inc()
		return nil, fmt.Errorf("%w: chunk %d gen %d expired", ErrStaleLease, chunkIdx, gen)
	}
	return c, nil
}

// Sweep returns every expired lease to pending and reports how many it
// expired. The coordinator runs it periodically; Acquire also sweeps
// inline so a waiting worker never starves behind a dead one.
func (t *LeaseTable) Sweep() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sweepLocked()
}

func (t *LeaseTable) sweepLocked() int {
	n := 0
	nowT := t.now()
	for i := range t.chunks {
		c := &t.chunks[i]
		if c.state == chunkLeased && nowT.After(c.expires) {
			t.expireLocked(c)
			n++
		}
	}
	if n > 0 {
		t.syncGauges()
	}
	return n
}

// expireLocked returns one leased chunk to pending. The generation is
// NOT bumped here — it bumps on the next grant — so a worker that was
// merely slow fails its next renew with ErrStaleLease only after the
// range is genuinely re-granted or re-validated, and the "every grant
// has a unique generation" invariant stays trivially true.
func (t *LeaseTable) expireLocked(c *chunk) {
	c.state = chunkPending
	c.worker = ""
	t.expired.Inc()
}

// Drain stops all future grants; outstanding leases may still renew and
// complete. Draining is irreversible for the life of the table.
func (t *LeaseTable) Drain() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.draining = true
}

// Draining reports whether Drain was called.
func (t *LeaseTable) Draining() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

// Done reports whether every chunk completed.
func (t *LeaseTable) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == len(t.chunks)
}

// Idle reports whether no chunk is currently leased — the drain exit
// condition ("finish what's leased, lease nothing new" has finished).
// Expired leases are swept first so a drain never waits on a dead worker
// longer than one TTL.
func (t *LeaseTable) Idle() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	for i := range t.chunks {
		if t.chunks[i].state == chunkLeased {
			return false
		}
	}
	return true
}

// Stats reports the table's chunk counts by state, sweeping expired
// leases first so the leased count reflects live workers only. The
// multi-campaign scheduler reads it to apply the per-campaign fairness
// cap (leased) and to know whether a campaign still has work to hand
// out (pending).
func (t *LeaseTable) Stats() (pending, leased, done int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	for i := range t.chunks {
		switch t.chunks[i].state {
		case chunkPending:
			pending++
		case chunkLeased:
			leased++
		}
	}
	return pending, leased, t.done
}

// DoneChunks reports how many chunks completed.
func (t *LeaseTable) DoneChunks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// syncGauges recomputes the state gauges; the caller holds t.mu.
func (t *LeaseTable) syncGauges() {
	var pending, leased int64
	for i := range t.chunks {
		switch t.chunks[i].state {
		case chunkPending:
			pending++
		case chunkLeased:
			leased++
		}
	}
	t.pendingG.Set(pending)
	t.leasedG.Set(leased)
	t.doneG.Set(int64(t.done))
}
