package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"comfase/internal/obs"
)

// ErrCoordinatorUnreachable wraps a coordinator call that exhausted its
// retry budget — the worker's "give up" signal, distinct from ordinary
// execution errors.
var ErrCoordinatorUnreachable = errors.New("fabric: coordinator unreachable")

// errLeaseLost is the internal signal that the current lease was
// cancelled under us (expired and re-granted elsewhere); the worker
// abandons the range and asks for a new lease.
var errLeaseLost = errors.New("fabric: lease lost")

// errGridDone is the internal signal that this worker's completion
// finished the grid: the coordinator is about to shut down, so the
// worker must exit without polling for another lease.
var errGridDone = errors.New("fabric: grid complete")

// WorkerOptions configure a fabric worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:7app".
	Coordinator string
	// Client is the HTTP client; nil uses a default with sane timeouts.
	Client *http.Client
	// Workers overrides the config-provided local pool size when > 0.
	Workers int
	// MaxRetries bounds consecutive failed attempts per coordinator call
	// (the -max-coordinator-retries budget). <= 0 uses the default.
	MaxRetries int
	// RetryBase/RetryMax bound the jittered exponential backoff between
	// attempts. Zero values use the defaults.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Metrics receives worker instrumentation; its snapshots double as
	// the heartbeat payload reported to the coordinator. May be nil.
	Metrics *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// NewExecutor builds the range executor from the coordinator's config
	// JSON; nil uses the production campaign executor. Chaos tests swap in
	// crashing executors here.
	NewExecutor func(cfgJSON []byte) (Executor, error)
	// Seed seeds the backoff jitter; 0 derives one from the PID so
	// co-located workers desynchronise.
	Seed int64
}

// Defaults for WorkerOptions zero values.
const (
	DefaultMaxRetries = 8
	DefaultRetryBase  = 200 * time.Millisecond
	DefaultRetryMax   = 10 * time.Second
)

// Worker is a fabric worker process: it registers with a coordinator,
// then loops lease → execute → complete until the run is done or the
// coordinator drains. Leases are namespaced by campaign; each campaign's
// config arrives with its first lease grant (the worker advertises the
// campaigns it already knows, and caches one executor per campaign), so
// one worker serves many queued grids without restarting. A renew
// goroutine reports progress (and the obs snapshot heartbeat) every
// TTL/3; if the coordinator answers Cancel — the lease expired and moved
// on, or the campaign was cancelled — the in-flight execution is aborted
// via context cancellation and the worker asks for fresh work.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	logf   func(string, ...any)

	id  string
	ttl time.Duration
	// execs caches one executor per campaign; known is its key list in
	// first-seen order, advertised on every lease request so the
	// coordinator ships a campaign's config exactly once per worker.
	execs map[string]Executor
	known []string

	rngMu sync.Mutex
	rng   *rand.Rand

	// Metrics.
	leases     *obs.Counter // leases acquired
	completed  *obs.Counter // leases completed and accepted
	staleDrops *obs.Counter // completions the coordinator rejected as stale
	cancels    *obs.Counter // leases abandoned after a Cancel
	retries    *obs.Counter // coordinator call attempts that failed and were retried
	rowsSent   *obs.Counter // result rows shipped
}

// NewWorker validates options and builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, errors.New("fabric: worker needs a coordinator URL")
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryMax < opts.RetryBase {
		opts.RetryMax = DefaultRetryMax
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = int64(os.Getpid())*1e9 + 1
	}
	reg := opts.Metrics
	return &Worker{
		opts:       opts,
		client:     client,
		logf:       logf,
		rng:        rand.New(rand.NewSource(seed)),
		leases:     reg.Counter("fabric.worker.leases_acquired"),
		completed:  reg.Counter("fabric.worker.leases_completed"),
		staleDrops: reg.Counter("fabric.worker.completions_stale"),
		cancels:    reg.Counter("fabric.worker.leases_cancelled"),
		retries:    reg.Counter("fabric.worker.coordinator_retries"),
		rowsSent:   reg.Counter("fabric.worker.rows_shipped"),
	}, nil
}

// Run registers, executes leases until the campaign finishes (or the
// coordinator drains), and returns nil on a clean finish. A cancelled
// ctx aborts mid-lease and returns the context error; a coordinator
// unreachable past the retry budget returns ErrCoordinatorUnreachable.
func (w *Worker) Run(ctx context.Context) error {
	host, _ := os.Hostname()
	var reg RegisterResponse
	if err := w.post(ctx, PathRegister, RegisterRequest{Host: host, PID: os.Getpid()}, &reg); err != nil {
		return err
	}
	if reg.Version != ProtocolVersion {
		return fmt.Errorf("fabric: coordinator speaks protocol v%d, worker v%d", reg.Version, ProtocolVersion)
	}
	if reg.LeaseTTLMS <= 0 {
		return fmt.Errorf("%w: non-positive lease TTL %dms", ErrProtocol, reg.LeaseTTLMS)
	}
	w.id = reg.WorkerID
	w.ttl = time.Duration(reg.LeaseTTLMS) * time.Millisecond
	w.execs = make(map[string]Executor)
	w.logf("registered as %s: lease TTL %v", w.id, w.ttl)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		if err := w.post(ctx, PathLease, LeaseRequest{WorkerID: w.id, Known: w.known}, &lr); err != nil {
			return err
		}
		switch {
		case lr.Done:
			w.logf("run complete; exiting")
			return nil
		case lr.Draining:
			w.logf("coordinator draining; exiting")
			return nil
		case !lr.Granted:
			// Nothing pending right now; outstanding leases may expire
			// and new campaigns may be submitted.
			wait := time.Duration(lr.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = w.ttl / 2
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			continue
		}
		exec, err := w.executorFor(lr.Campaign, lr.Config)
		if err != nil {
			return err
		}
		lease := Lease{Chunk: lr.Chunk, From: lr.From, To: lr.To, Gen: lr.Gen}
		w.leases.Inc()
		w.logf("lease %s/%d gen %d: range [%d,%d)", lr.Campaign, lease.Chunk, lease.Gen, lease.From, lease.To)
		if err := w.runLease(ctx, lr.Campaign, lease, exec); err != nil {
			switch {
			case errors.Is(err, errLeaseLost):
				w.cancels.Inc()
				w.logf("lease %s/%d gen %d lost; asking for new work", lr.Campaign, lease.Chunk, lease.Gen)
				continue
			case errors.Is(err, errGridDone):
				// Our completion finished the run: the coordinator is
				// shutting down, so don't poll it for another lease.
				w.logf("run complete; exiting")
				return nil
			}
			return err
		}
	}
}

// executorFor resolves the campaign's executor: cached from an earlier
// lease, or built from the config shipped with this grant (the
// coordinator sends it exactly when the campaign is absent from the
// request's Known list).
func (w *Worker) executorFor(campaign string, cfg json.RawMessage) (Executor, error) {
	if campaign == "" {
		return nil, fmt.Errorf("%w: lease grant names no campaign", ErrProtocol)
	}
	if exec, ok := w.execs[campaign]; ok {
		return exec, nil
	}
	if len(cfg) == 0 {
		return nil, fmt.Errorf("%w: lease grant for unknown campaign %s carries no config", ErrProtocol, campaign)
	}
	newExec := w.opts.NewExecutor
	if newExec == nil {
		newExec = func(cfgJSON []byte) (Executor, error) {
			return NewExecutor(cfgJSON, ExecutorOptions{Workers: w.opts.Workers, Metrics: w.opts.Metrics})
		}
	}
	exec, err := newExec(cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: campaign %s config: %w", campaign, err)
	}
	w.execs[campaign] = exec
	w.known = append(w.known, campaign)
	w.logf("campaign %s config received; executor ready", campaign)
	return exec, nil
}

// runLease executes one leased range with a TTL/3 renew loop alongside.
func (w *Worker) runLease(ctx context.Context, campaign string, lease Lease, exec Executor) error {
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost bool // set by the renew loop before cancelling leaseCtx
	var lostMu sync.Mutex
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		interval := w.ttl / 3
		if interval <= 0 {
			interval = time.Millisecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-ticker.C:
			}
			var snap *obs.Snapshot
			if w.opts.Metrics != nil {
				s := w.opts.Metrics.Snapshot()
				snap = &s
			}
			var resp ReportResponse
			// Renews use single attempts: the next tick retries anyway, and
			// the lease survives missed renews for a full TTL.
			err := w.postOnce(leaseCtx, PathReport, ReportRequest{
				WorkerID: w.id, Campaign: campaign, Chunk: lease.Chunk, Gen: lease.Gen, Snapshot: snap,
			}, &resp)
			if err != nil {
				if leaseCtx.Err() != nil {
					return
				}
				w.retries.Inc()
				continue
			}
			if resp.Cancel {
				lostMu.Lock()
				lost = true
				lostMu.Unlock()
				cancel()
				return
			}
		}
	}()

	rows, failures, err := exec.Execute(leaseCtx, lease.From, lease.To)
	cancel()
	<-renewDone
	if err != nil {
		lostMu.Lock()
		wasLost := lost
		lostMu.Unlock()
		if wasLost {
			return errLeaseLost
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fabric: lease %s/%d [%d,%d): %w", campaign, lease.Chunk, lease.From, lease.To, err)
	}

	var resp CompleteResponse
	if err := w.post(ctx, PathComplete, CompleteRequest{
		WorkerID: w.id, Campaign: campaign, Chunk: lease.Chunk, Gen: lease.Gen, Rows: rows, Failures: failures,
	}, &resp); err != nil {
		return err
	}
	if resp.Stale {
		// The range was re-leased while we worked (or its campaign was
		// cancelled): our payload was discarded (idempotently — the
		// surviving execution's rows are the ones merged). Not an error;
		// just move on.
		w.staleDrops.Inc()
		w.logf("lease %s/%d gen %d completed stale; results discarded by coordinator", campaign, lease.Chunk, lease.Gen)
	} else {
		w.completed.Inc()
		w.rowsSent.Add(uint64(len(rows)))
	}
	if resp.Done {
		return errGridDone
	}
	return nil
}

// post calls a coordinator endpoint with the capped-exponential-backoff
// retry budget: transport errors and 5xx responses retry with jitter up
// to MaxRetries consecutive attempts; 4xx responses are protocol bugs
// and fail immediately.
func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	var lastErr error
	for attempt := 0; attempt <= w.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			w.retries.Inc()
			if err := sleepCtx(ctx, w.backoff(attempt)); err != nil {
				return err
			}
		}
		err := w.postOnce(ctx, path, req, resp)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %s failed after %d attempts: %v",
		ErrCoordinatorUnreachable, path, w.opts.MaxRetries+1, lastErr)
}

// permanentError marks a coordinator response that retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// postOnce is a single POST attempt: marshal, send, decode.
func (w *Worker) postOnce(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return &permanentError{err: err}
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return &permanentError{err: err}
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := w.client.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, maxMessageBytes+1))
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		err := fmt.Errorf("fabric: %s: coordinator answered %s: %s",
			path, httpResp.Status, bytes.TrimSpace(data))
		if httpResp.StatusCode >= 400 && httpResp.StatusCode < 500 {
			return &permanentError{err: err}
		}
		return err
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("fabric: %s: malformed response: %w", path, err)
	}
	return nil
}

// backoff computes the jittered capped exponential delay before retry
// attempt n (n >= 1): full jitter over [base/2, base] · 2^(n-1), capped
// at RetryMax.
func (w *Worker) backoff(attempt int) time.Duration {
	d := w.opts.RetryBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= w.opts.RetryMax {
			d = w.opts.RetryMax
			break
		}
	}
	if d > w.opts.RetryMax {
		d = w.opts.RetryMax
	}
	w.rngMu.Lock()
	jittered := d/2 + time.Duration(w.rng.Int63n(int64(d/2)+1))
	w.rngMu.Unlock()
	return jittered
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
