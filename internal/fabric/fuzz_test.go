package fabric

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzLeaseProtocolDecode drives every protocol decoder with arbitrary
// bytes: none may panic, and anything they accept must be internally
// consistent (validator invariants hold) and re-encodable. The decoders
// share decodeStrict, so this also fuzzes the unknown-field, trailing-
// data and size-cap rejection paths the coordinator's HTTP surface
// depends on.
func FuzzLeaseProtocolDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workerID":"w1"}`))
	f.Add([]byte(`{"host":"node1","pid":4321}`))
	f.Add([]byte(`{"workerID":"w1","chunk":2,"gen":9,"done":5}`))
	f.Add([]byte(`{"workerID":"w1","chunk":0,"gen":1,"rows":[{"nr":0,"fields":["0","delay"]}]}`))
	f.Add([]byte(`{"workerID":"w1","chunk":0,"gen":1,"failures":[{"nr":3,"record":{"expNr":3,"class":"panic"}}]}`))
	f.Add([]byte(`{"workerID":"w1","chunk":0,"gen":1} trailing`))
	f.Add([]byte(`[{"nr":-1}]`))
	f.Add([]byte(`{"workerID":"w1","snapshot":{"seq":3,"counters":{"a":1}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeRegisterRequest(data); err == nil {
			if m.PID < 0 {
				t.Fatalf("accepted register with negative pid: %+v", m)
			}
		}
		if m, err := DecodeLeaseRequest(data); err == nil {
			if m.WorkerID == "" {
				t.Fatalf("accepted lease request without workerID: %+v", m)
			}
		}
		if m, err := DecodeReportRequest(data); err == nil {
			if m.WorkerID == "" || m.Chunk < 0 || m.Done < 0 {
				t.Fatalf("accepted invalid report: %+v", m)
			}
		}
		if m, err := DecodeCompleteRequest(data); err == nil {
			if m.WorkerID == "" || m.Chunk < 0 {
				t.Fatalf("accepted invalid complete: %+v", m)
			}
			for _, row := range m.Rows {
				if row.Nr < 0 || len(row.Fields) == 0 {
					t.Fatalf("accepted invalid row: %+v", row)
				}
			}
			for _, fr := range m.Failures {
				trimmed := bytes.TrimSpace(fr.Record)
				if fr.Nr < 0 || len(trimmed) == 0 || trimmed[0] != '{' || !json.Valid(trimmed) {
					t.Fatalf("accepted invalid failure row: %+v", fr)
				}
			}
			if _, err := json.Marshal(m); err != nil {
				t.Fatalf("accepted complete does not re-encode: %v", err)
			}
		}
	})
}

// FuzzCampaignSubmitDecode drives the campaign control-plane decoders
// (submit, cancel) with arbitrary bytes: none may panic, and anything
// accepted must satisfy the validator invariants — the config is a JSON
// object, the name is bounded and free of path separators and control
// characters, the cancel target is named. These messages share
// decodeStrict with the lease protocol, so unknown fields, trailing
// data and the size cap are exercised here too.
func FuzzCampaignSubmitDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"config":{}}`))
	f.Add([]byte(`{"name":"delay-sweep","config":{"campaign":{"lower":0,"upper":1,"step":1}}}`))
	f.Add([]byte(`{"name":"a/b","config":{}}`))
	f.Add([]byte(`{"config":{"matrix":{"scenarios":["platoon"],"attacks":["dos"]}}}`))
	f.Add([]byte(`{"config":{}} {"config":{}}`))
	f.Add([]byte(`{"config":[1,2,3]}`))
	f.Add([]byte(`{"campaignID":"c1"}`))
	f.Add([]byte(`{"campaignID":""}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeSubmitRequest(data); err == nil {
			trimmed := bytes.TrimSpace(m.Config)
			if len(trimmed) == 0 || trimmed[0] != '{' || !json.Valid(trimmed) {
				t.Fatalf("accepted submit without a JSON-object config: %+v", m)
			}
			if len(m.Name) > maxCampaignName {
				t.Fatalf("accepted overlong campaign name (%d bytes)", len(m.Name))
			}
			for _, r := range m.Name {
				if r < 0x20 || r == 0x7f || r == '/' || r == '\\' {
					t.Fatalf("accepted campaign name with %q: %q", r, m.Name)
				}
			}
			if _, err := json.Marshal(m); err != nil {
				t.Fatalf("accepted submit does not re-encode: %v", err)
			}
		}
		if m, err := DecodeCancelRequest(data); err == nil {
			if m.CampaignID == "" {
				t.Fatalf("accepted cancel without campaignID: %+v", m)
			}
		}
	})
}
