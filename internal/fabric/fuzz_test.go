package fabric

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzLeaseProtocolDecode drives every protocol decoder with arbitrary
// bytes: none may panic, and anything they accept must be internally
// consistent (validator invariants hold) and re-encodable. The decoders
// share decodeStrict, so this also fuzzes the unknown-field, trailing-
// data and size-cap rejection paths the coordinator's HTTP surface
// depends on.
func FuzzLeaseProtocolDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workerID":"w1"}`))
	f.Add([]byte(`{"host":"node1","pid":4321}`))
	f.Add([]byte(`{"workerID":"w1","chunk":2,"gen":9,"done":5}`))
	f.Add([]byte(`{"workerID":"w1","chunk":0,"gen":1,"rows":[{"nr":0,"fields":["0","delay"]}]}`))
	f.Add([]byte(`{"workerID":"w1","chunk":0,"gen":1,"failures":[{"nr":3,"record":{"expNr":3,"class":"panic"}}]}`))
	f.Add([]byte(`{"workerID":"w1","chunk":0,"gen":1} trailing`))
	f.Add([]byte(`[{"nr":-1}]`))
	f.Add([]byte(`{"workerID":"w1","snapshot":{"seq":3,"counters":{"a":1}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeRegisterRequest(data); err == nil {
			if m.PID < 0 {
				t.Fatalf("accepted register with negative pid: %+v", m)
			}
		}
		if m, err := DecodeLeaseRequest(data); err == nil {
			if m.WorkerID == "" {
				t.Fatalf("accepted lease request without workerID: %+v", m)
			}
		}
		if m, err := DecodeReportRequest(data); err == nil {
			if m.WorkerID == "" || m.Chunk < 0 || m.Done < 0 {
				t.Fatalf("accepted invalid report: %+v", m)
			}
		}
		if m, err := DecodeCompleteRequest(data); err == nil {
			if m.WorkerID == "" || m.Chunk < 0 {
				t.Fatalf("accepted invalid complete: %+v", m)
			}
			for _, row := range m.Rows {
				if row.Nr < 0 || len(row.Fields) == 0 {
					t.Fatalf("accepted invalid row: %+v", row)
				}
			}
			for _, fr := range m.Failures {
				trimmed := bytes.TrimSpace(fr.Record)
				if fr.Nr < 0 || len(trimmed) == 0 || trimmed[0] != '{' || !json.Valid(trimmed) {
					t.Fatalf("accepted invalid failure row: %+v", fr)
				}
			}
			if _, err := json.Marshal(m); err != nil {
				t.Fatalf("accepted complete does not re-encode: %v", err)
			}
		}
	})
}
