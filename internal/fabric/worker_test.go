package fabric

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"comfase/internal/obs"
)

func TestWorkerBackoffBounds(t *testing.T) {
	w, err := NewWorker(WorkerOptions{
		Coordinator: "http://test",
		RetryBase:   100 * time.Millisecond,
		RetryMax:    2 * time.Second,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 12; attempt++ {
		// Exponential cap: attempt n's nominal delay is base * 2^(n-1),
		// never above RetryMax; jitter keeps it within [d/2, d].
		nominal := 100 * time.Millisecond << (attempt - 1)
		if nominal > 2*time.Second || nominal <= 0 {
			nominal = 2 * time.Second
		}
		for i := 0; i < 50; i++ {
			d := w.backoff(attempt)
			if d < nominal/2 || d > nominal {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", attempt, d, nominal/2, nominal)
			}
		}
	}
}

func TestWorkerPostRetriesTransient(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"granted":false,"chunk":0,"from":0,"to":0,"gen":0,"done":true,"draining":false}`))
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	w, err := NewWorker(WorkerOptions{
		Coordinator: srv.URL, MaxRetries: 5,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		Metrics: reg, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp LeaseResponse
	if err := w.post(context.Background(), PathLease, LeaseRequest{WorkerID: "w1"}, &resp); err != nil {
		t.Fatalf("post: %v", err)
	}
	if !resp.Done {
		t.Errorf("response not decoded: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if got := reg.Snapshot().Counters["fabric.worker.coordinator_retries"]; got != 2 {
		t.Errorf("retry counter = %d, want 2", got)
	}
}

func TestWorkerPostPermanentOn4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "fabric: protocol error", http.StatusBadRequest)
	}))
	defer srv.Close()
	w, err := NewWorker(WorkerOptions{
		Coordinator: srv.URL, MaxRetries: 5,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp LeaseResponse
	err = w.post(context.Background(), PathLease, LeaseRequest{WorkerID: "w1"}, &resp)
	if err == nil {
		t.Fatal("4xx accepted")
	}
	if errors.Is(err, ErrCoordinatorUnreachable) {
		t.Fatalf("4xx reported as unreachable (was retried): %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
}

func TestWorkerPostExhaustsRetryBudget(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	w, err := NewWorker(WorkerOptions{
		Coordinator: srv.URL, MaxRetries: 3,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp LeaseResponse
	err = w.post(context.Background(), PathLease, LeaseRequest{WorkerID: "w1"}, &resp)
	if !errors.Is(err, ErrCoordinatorUnreachable) {
		t.Fatalf("err = %v, want ErrCoordinatorUnreachable", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d calls, want 4 (-max-coordinator-retries 3 = 1 + 3 retries)", got)
	}
}

func TestWorkerRunRejectsVersionSkew(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"version":99,"workerID":"w1","config":{},"base":0,"total":1,"leaseTTLMS":1000}`))
	}))
	defer srv.Close()
	w, err := NewWorker(WorkerOptions{Coordinator: srv.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "protocol v99") {
		t.Fatalf("version skew not rejected: %v", err)
	}
}
