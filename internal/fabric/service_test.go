package fabric

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"comfase/internal/analysis"
	"comfase/internal/runner"
)

// submitServiceConfig is a minimal real delay campaign: 3 grid points
// (1 value x 1 start x 3 durations), enough to exercise the submit
// path's config parsing without making the tests expensive.
const submitServiceConfig = `{
  "scenario": {"totalSimTimeS": 6},
  "campaign": {
    "attack": "delay",
    "valuesS": {"values": [0.3]},
    "startTimesS": {"values": [2]},
    "durationsS": {"values": [1, 2, 3]}
  }
}`

// newSchedulerService builds a submit-mode service on a fake clock with
// campaign grids defined directly (bypassing config parsing, like the
// coordinator wrapper does) so lease geometry is exact.
func newSchedulerService(t *testing.T, clock *fakeClock, fairnessCap int, grids ...int) (*Service, []string) {
	t.Helper()
	svc, err := NewService(ServiceOptions{
		Dir:         t.TempDir(),
		LeaseSize:   2,
		LeaseTTL:    10 * time.Second,
		FairnessCap: fairnessCap,
		Now:         clock.Now,
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	var ids []string
	for i, total := range grids {
		id := "c" + string(rune('1'+i))
		if _, err := svc.addCampaign(campaignSpec{
			id: id, configJSON: []byte(`{}`), total: total, maxFailures: -1,
		}); err != nil {
			t.Fatalf("addCampaign %s: %v", id, err)
		}
		ids = append(ids, id)
	}
	return svc, ids
}

// legacyRows fabricates schema-valid legacy result records for [from,
// to), so the files a submit-mode service writes stay parseable by the
// resume path's strict reader.
func legacyRows(from, to int) []ResultRow {
	var rows []ResultRow
	for nr := from; nr < to; nr++ {
		rows = append(rows, ResultRow{Nr: nr, Fields: []string{
			strconv.Itoa(nr), "delay", "0.3", "2.000", "1.000",
			"benign", "0.0000", "0.0000", "0", "",
		}})
	}
	return rows
}

// completeLease posts a full completion for the lease and returns the
// response.
func completeLease(t *testing.T, h http.Handler, worker, campaign string, l Lease) CompleteResponse {
	t.Helper()
	var resp CompleteResponse
	postProto(t, h, PathComplete, CompleteRequest{
		WorkerID: worker, Campaign: campaign, Chunk: l.Chunk, Gen: l.Gen,
		Rows: legacyRows(l.From, l.To),
	}, &resp)
	return resp
}

// leaseFull asks for a lease and returns the whole response (campaign
// included), failing the test unless granted.
func leaseFull(t *testing.T, h http.Handler, worker string) LeaseResponse {
	t.Helper()
	var resp LeaseResponse
	if code := postProto(t, h, PathLease, LeaseRequest{WorkerID: worker}, &resp); code != http.StatusOK {
		t.Fatalf("lease: HTTP %d", code)
	}
	if !resp.Granted {
		t.Fatalf("lease not granted: %+v", resp)
	}
	return resp
}

// TestSchedulerLeaseOrder is the table-driven fairness contract: which
// campaign each successive grant comes from, under different caps and
// completion patterns.
func TestSchedulerLeaseOrder(t *testing.T) {
	cases := []struct {
		name     string
		cap      int
		grids    []int // total grid points per campaign (LeaseSize 2)
		complete bool  // complete each lease before asking for the next
		want     []string
	}{
		{
			// Cap 1 with outstanding leases: after each campaign holds
			// one chunk, the work-conserving second pass hands out more,
			// still oldest-first — the queue interleaves c1,c2,c1,c2.
			name: "cap1 interleaves", cap: 1,
			grids: []int{4, 4},
			want:  []string{"c1", "c2", "c1", "c2"},
		},
		{
			// A high cap keeps the fleet on the oldest campaign until it
			// is fully leased, then moves on.
			name: "high cap drains oldest first", cap: 8,
			grids: []int{4, 4},
			want:  []string{"c1", "c1", "c2", "c2"},
		},
		{
			// Completing each lease before asking again keeps the oldest
			// campaign under its cap, so pass 1 stays on it until it is
			// fully leased — the cap only bites on outstanding leases.
			name: "cap1 completed leases", cap: 1,
			grids: []int{4, 4}, complete: true,
			want: []string{"c1", "c1", "c2", "c2"},
		},
		{
			// Three campaigns, cap 1: strict round-robin in submission
			// order while all have pending work.
			name: "three campaigns round robin", cap: 1,
			grids: []int{4, 4, 4},
			want:  []string{"c1", "c2", "c3", "c1", "c2", "c3"},
		},
		{
			// The cap never idles a worker: with only one campaign the
			// second pass ignores it entirely.
			name: "single campaign ignores cap", cap: 1,
			grids: []int{6},
			want:  []string{"c1", "c1", "c1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			svc, _ := newSchedulerService(t, clock, tc.cap, tc.grids...)
			h := svc.Handler()
			w1 := register(t, h)
			for i, want := range tc.want {
				lr := leaseFull(t, h, w1)
				if lr.Campaign != want {
					t.Fatalf("grant %d from %s, want %s", i, lr.Campaign, want)
				}
				if tc.complete {
					l := Lease{Chunk: lr.Chunk, From: lr.From, To: lr.To, Gen: lr.Gen}
					if resp := completeLease(t, h, w1, lr.Campaign, l); !resp.OK {
						t.Fatalf("grant %d completion rejected: %+v", i, resp)
					}
				}
			}
		})
	}
}

// TestSchedulerTTLExpiryCrossCampaign pins the re-lease path across
// campaigns: a dead worker's range from campaign c1 is re-granted — to a
// worker that has been serving c2 — once the TTL passes on the fake
// clock, with a bumped generation.
func TestSchedulerTTLExpiryCrossCampaign(t *testing.T) {
	clock := newFakeClock()
	svc, _ := newSchedulerService(t, clock, 1, 2, 4)
	h := svc.Handler()
	w1 := register(t, h)
	w2 := register(t, h)

	dead := leaseFull(t, h, w1) // c1's only chunk; w1 goes silent
	if dead.Campaign != "c1" {
		t.Fatalf("first grant from %s, want c1", dead.Campaign)
	}
	got := leaseFull(t, h, w2) // cap steers w2 to c2
	if got.Campaign != "c2" {
		t.Fatalf("second grant from %s, want c2", got.Campaign)
	}

	clock.Advance(11 * time.Second) // past the 10s TTL: w1 presumed dead

	release := leaseFull(t, h, w2)
	if release.Campaign != "c1" || release.Chunk != dead.Chunk || release.Gen != dead.Gen+1 {
		t.Fatalf("re-lease = %+v, want c1 chunk %d gen %d", release, dead.Chunk, dead.Gen+1)
	}
	// The dead worker's late completion is rejected idempotently.
	l := Lease{Chunk: dead.Chunk, From: dead.From, To: dead.To, Gen: dead.Gen}
	if resp := completeLease(t, h, w1, "c1", l); resp.OK || !resp.Stale {
		t.Fatalf("late completion answered %+v, want stale", resp)
	}
	// The re-execution's completion is the one that counts.
	l2 := Lease{Chunk: release.Chunk, From: release.From, To: release.To, Gen: release.Gen}
	if resp := completeLease(t, h, w2, "c1", l2); !resp.OK {
		t.Fatalf("re-execution completion rejected: %+v", resp)
	}
	st, ok := svc.CampaignStatusByID("c1")
	if !ok || st.State != StateDone || st.Merged != 2 {
		t.Fatalf("c1 status = %+v, want done with 2 merged", st)
	}
}

// TestSchedulerCancelMidLease pins the cancel contract: a campaign
// cancelled while a worker executes its range answers the next renew
// with cancel, rejects the late completion idempotently with stale:true
// (twice — idempotent), and grants nothing further from that campaign.
func TestSchedulerCancelMidLease(t *testing.T) {
	clock := newFakeClock()
	svc, _ := newSchedulerService(t, clock, 1, 4, 4)
	h := svc.Handler()
	w1 := register(t, h)

	lr := leaseFull(t, h, w1)
	if lr.Campaign != "c1" {
		t.Fatalf("grant from %s, want c1", lr.Campaign)
	}
	resp, found := svc.Cancel("c1")
	if !found || !resp.OK || resp.State != StateCancelled {
		t.Fatalf("Cancel = %+v found=%v", resp, found)
	}
	// Renew: told to abandon.
	var rr ReportResponse
	postProto(t, h, PathReport, ReportRequest{WorkerID: w1, Campaign: "c1", Chunk: lr.Chunk, Gen: lr.Gen}, &rr)
	if rr.OK || !rr.Cancel {
		t.Fatalf("renew after cancel answered %+v, want cancel", rr)
	}
	// Late completion: stale, idempotently.
	l := Lease{Chunk: lr.Chunk, From: lr.From, To: lr.To, Gen: lr.Gen}
	for i := 0; i < 2; i++ {
		if resp := completeLease(t, h, w1, "c1", l); resp.OK || !resp.Stale {
			t.Fatalf("completion %d after cancel answered %+v, want stale", i, resp)
		}
	}
	// Nothing written for the cancelled campaign.
	st, _ := svc.CampaignStatusByID("c1")
	if st.State != StateCancelled || st.Merged != 0 {
		t.Fatalf("c1 status = %+v, want cancelled with 0 merged", st)
	}
	// The fleet moves on to the next campaign.
	next := leaseFull(t, h, w1)
	if next.Campaign != "c2" {
		t.Fatalf("post-cancel grant from %s, want c2", next.Campaign)
	}
	// Cancelling again (or a terminal campaign) reports ok=false.
	if resp, found := svc.Cancel("c1"); !found || resp.OK || resp.State != StateCancelled {
		t.Fatalf("second cancel = %+v found=%v, want ok=false cancelled", resp, found)
	}
}

// TestServiceConfigShippedOncePerCampaign pins the Known-list contract:
// a campaign's config rides only the worker's first grant from it.
func TestServiceConfigShippedOncePerCampaign(t *testing.T) {
	clock := newFakeClock()
	svc, _ := newSchedulerService(t, clock, 8, 4)
	h := svc.Handler()
	w1 := register(t, h)

	first := leaseFull(t, h, w1)
	if len(first.Config) == 0 {
		t.Fatalf("first grant carries no config: %+v", first)
	}
	var second LeaseResponse
	postProto(t, h, PathLease, LeaseRequest{WorkerID: w1, Known: []string{first.Campaign}}, &second)
	if !second.Granted || second.Campaign != first.Campaign {
		t.Fatalf("second grant = %+v", second)
	}
	if len(second.Config) != 0 {
		t.Fatalf("config re-shipped to a worker that advertised it: %d bytes", len(second.Config))
	}
}

// TestServiceSubmitAPI drives the wire-level control plane end to end:
// submit two campaigns over HTTP, list them, read a status, complete one
// through the worker protocol, fetch its results snapshot, cancel the
// other — all against a dir-mode service whose on-disk layout must match
// runner.CampaignFilesIn.
func TestServiceSubmitAPI(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewService(ServiceOptions{Dir: dir, LeaseSize: 8, LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	h := svc.Handler()

	submit := func(name string) SubmitResponse {
		t.Helper()
		var resp SubmitResponse
		code := postProto(t, h, PathCampaigns, SubmitRequest{Name: name, Config: json.RawMessage(submitServiceConfig)}, &resp)
		if code != http.StatusOK {
			t.Fatalf("submit %s: HTTP %d", name, code)
		}
		return resp
	}
	s1 := submit("first")
	s2 := submit("second")
	if s1.CampaignID != "c1" || s2.CampaignID != "c2" || s2.Position != 2 {
		t.Fatalf("submissions = %+v, %+v", s1, s2)
	}
	if s1.Total != 3 {
		t.Fatalf("c1 grid = %d points, want 3", s1.Total)
	}
	if _, err := os.Stat(filepath.Join(dir, "c1.config.json")); err != nil {
		t.Fatalf("persisted config missing: %v", err)
	}

	// List in submission order, both queued.
	r := httptest.NewRequest(http.MethodGet, PathCampaigns, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var list CampaignListResponse
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Campaigns) != 2 || list.Campaigns[0].ID != "c1" || list.Campaigns[0].State != StateQueued {
		t.Fatalf("list = %+v", list.Campaigns)
	}

	// Run c1 through the worker protocol.
	w1 := register(t, h)
	lr := leaseFull(t, h, w1)
	if lr.Campaign != "c1" {
		t.Fatalf("grant from %s, want the oldest campaign c1", lr.Campaign)
	}
	l := Lease{Chunk: lr.Chunk, From: lr.From, To: lr.To, Gen: lr.Gen}
	if resp := completeLease(t, h, w1, "c1", l); !resp.OK {
		t.Fatalf("completion rejected: %+v", resp)
	}

	// Results endpoint: served from the atomic snapshot.
	r = httptest.NewRequest(http.MethodGet, PathCampaignResults+"?id=c1", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var res CampaignResultsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("results: %v", err)
	}
	if res.State != StateDone || res.Merged != 3 {
		t.Fatalf("results = state %s merged %d, want done/3", res.State, res.Merged)
	}
	if lines := strings.Split(strings.TrimSpace(res.CSV), "\n"); len(lines) != 4 { // header + 3 rows
		t.Fatalf("results CSV has %d lines, want 4:\n%s", len(lines), res.CSV)
	}
	// The snapshot matches what is durable on disk.
	onDisk, err := os.ReadFile(filepath.Join(dir, "c1.results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV != string(onDisk) {
		t.Errorf("results snapshot diverges from the on-disk file")
	}
	// Status document on disk, atomic and current.
	var st CampaignStatus
	stData, err := os.ReadFile(filepath.Join(dir, "c1.status.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(stData, &st); err != nil || st.State != StateDone || st.Merged != 3 {
		t.Fatalf("status doc = %+v (%v)", st, err)
	}

	// Cancel c2 over the wire.
	var cr CancelResponse
	if code := postProto(t, h, PathCampaignCancel, CancelRequest{CampaignID: "c2"}, &cr); code != http.StatusOK || !cr.OK {
		t.Fatalf("cancel: HTTP %d %+v", code, cr)
	}
	// Unknown campaigns 404.
	if code := postProto(t, h, PathCampaignCancel, CancelRequest{CampaignID: "nope"}, nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: HTTP %d, want 404", code)
	}
}

// TestServiceSubmitRequiresDir pins the wrapper-mode guard: a coordinator
// without a service directory refuses submissions with 403.
func TestServiceSubmitRequiresDir(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{Total: 2, LeaseSize: 2, NoHeader: true})
	code := postProto(t, c.Handler(), PathCampaigns, SubmitRequest{Config: json.RawMessage(`{}`)}, nil)
	if code != http.StatusForbidden {
		t.Fatalf("submit without -dir: HTTP %d, want 403", code)
	}
}

// TestServiceResumeDir pins dir-mode resume: a drained service's
// campaigns — one complete, one partial, one untouched — are re-adopted
// with their merged prefixes intact, and new submissions continue the ID
// numbering.
func TestServiceResumeDir(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewService(ServiceOptions{Dir: dir, LeaseSize: 1, LeaseTTL: 10 * time.Second, FairnessCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	for _, name := range []string{"done", "partial", "untouched"} {
		var resp SubmitResponse
		if code := postProto(t, h, PathCampaigns, SubmitRequest{Name: name, Config: json.RawMessage(submitServiceConfig)}, &resp); code != http.StatusOK {
			t.Fatalf("submit %s: HTTP %d", name, code)
		}
	}
	w1 := register(t, h)
	// Finish all of c1 (3 one-point chunks) and 1 point of c2.
	for i := 0; i < 4; i++ {
		lr := leaseFull(t, h, w1)
		l := Lease{Chunk: lr.Chunk, From: lr.From, To: lr.To, Gen: lr.Gen}
		if resp := completeLease(t, h, w1, lr.Campaign, l); !resp.OK {
			t.Fatalf("completion %d rejected: %+v", i, resp)
		}
	}
	svc.Drain()
	svc.finish(nil) // release sinks without running Wait

	resumed, err := NewService(ServiceOptions{Dir: dir, Resume: true, LeaseSize: 1, LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	byID := map[string]CampaignStatus{}
	for _, st := range resumed.ListCampaigns() {
		byID[st.ID] = st
	}
	if st := byID["c1"]; st.State != StateDone || st.Merged != 3 {
		t.Errorf("resumed c1 = %+v, want done/3", st)
	}
	if st := byID["c2"]; st.Merged != 1 {
		t.Errorf("resumed c2 = %+v, want 1 merged", st)
	}
	if st := byID["c3"]; st.Merged != 0 {
		t.Errorf("resumed c3 = %+v, want untouched", st)
	}
	if byID["c2"].Name != "partial" {
		t.Errorf("resumed c2 name = %q, want preserved from the status doc", byID["c2"].Name)
	}
	// New submissions continue numbering past the resumed campaigns.
	resp, err := resumed.Submit("fresh", []byte(submitServiceConfig))
	if err != nil {
		t.Fatalf("post-resume submit: %v", err)
	}
	if resp.CampaignID != "c4" {
		t.Errorf("post-resume ID = %s, want c4", resp.CampaignID)
	}
	// And the resumed partial campaign leases only its remaining points.
	w2 := register(t, resumed.Handler())
	seen := map[string]int{}
	for {
		var lr LeaseResponse
		postProto(t, resumed.Handler(), PathLease, LeaseRequest{WorkerID: w2}, &lr)
		if !lr.Granted {
			break
		}
		seen[lr.Campaign]++
	}
	if seen["c1"] != 0 || seen["c2"] != 2 || seen["c3"] != 3 || seen["c4"] != 3 {
		t.Errorf("resumed lease distribution = %v, want c2:2 c3:3 c4:3", seen)
	}
	resumed.finish(nil)
}

// TestRunnerFilesHelpers covers the shared per-campaign file-layout
// helpers the service and CLI resume paths agree on.
func TestRunnerFilesHelpers(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"c10", "c2", "other"} {
		f := runner.CampaignFilesIn(dir, id)
		if err := os.WriteFile(f.Config, []byte(`{}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	list, err := runner.ListCampaignDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, f := range list {
		ids = append(ids, f.ID)
	}
	if got, want := strings.Join(ids, ","), "c2,c10,other"; got != want {
		t.Errorf("ListCampaignDirs order = %s, want %s (numeric-aware)", got, want)
	}
	// ReadMergedPrefix names the file it rejects: a record at expNr 5
	// with nothing in [1,5) is not a contiguous coordinator output.
	bad := runner.CampaignFilesIn(dir, "bad")
	var gapped strings.Builder
	gapped.WriteString(strings.Join(analysis.ExperimentCSVHeader(), ",") + "\n")
	for _, nr := range []int{0, 5} {
		gapped.WriteString(strings.Join(legacyRows(nr, nr+1)[0].Fields, ",") + "\n")
	}
	if err := os.WriteFile(bad.Results, []byte(gapped.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = runner.ReadMergedPrefix(bad.Results, bad.Quarantine, 0, 10)
	if err == nil || !strings.Contains(err.Error(), bad.Results) || !strings.Contains(err.Error(), "contiguous") {
		t.Errorf("gapped prefix error = %v, want it to name %s", err, bad.Results)
	}
}
