package fabric

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"comfase/internal/config"
	"comfase/internal/obs"
	"comfase/internal/runner"
)

// Campaign lifecycle states as reported by the control plane.
const (
	StateQueued    = "queued"    // submitted, no range granted yet
	StateRunning   = "running"   // at least one range granted
	StateDone      = "done"      // every grid point merged
	StateFailed    = "failed"    // fatal error (failure budget, sink I/O)
	StateCancelled = "cancelled" // cancelled by the operator
)

// DefaultFairnessCap bounds how many chunks one campaign may hold leased
// while other active campaigns still have pending work. The scheduler is
// work-conserving: the cap shapes preference, it never idles a worker.
const DefaultFairnessCap = 4

// ServiceOptions configure a multi-campaign fabric Service.
type ServiceOptions struct {
	// Dir, when set, enables submit mode: campaigns arrive over the
	// /v1/campaigns API and every campaign's artifacts live side by side
	// in this directory under the runner.CampaignFilesIn layout. When
	// empty the service only runs campaigns added programmatically (the
	// single-campaign Coordinator wrapper).
	Dir string
	// Resume, with Dir, re-adopts every campaign already in the
	// directory: each `<id>.config.json` is re-submitted with its merged
	// contiguous prefix skipped, so a restarted service picks up exactly
	// where the previous incarnation's frontier stopped.
	Resume bool
	// LeaseSize is the range length per lease (<= 0 selects
	// DefaultLeaseSize).
	LeaseSize int
	// LeaseTTL is the worker lease time-to-live (<= 0 selects
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// FairnessCap bounds per-campaign concurrent leases while other
	// campaigns have pending work (<= 0 selects DefaultFairnessCap).
	FairnessCap int
	// FinishWhenDone makes Wait return once every submitted campaign is
	// terminal — the single-campaign Coordinator behavior. Without it
	// the service runs until drained, accepting submissions forever.
	FinishWhenDone bool
	// Metrics receives the fabric counters and gauges; nil disables.
	Metrics *obs.Registry
	// Now is the clock (nil = time.Now); injectable for expiry tests.
	Now func() time.Time
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

// campaignSpec is the internal submission record: everything addCampaign
// needs, whether the campaign came over the wire (submit mode derives
// the grid from the config) or from the Coordinator wrapper (explicit
// dims and external writers).
type campaignSpec struct {
	id, name     string
	configJSON   []byte
	base, total  int
	matrix       bool
	maxFailures  int
	resumePrefix int
	noHeader     bool
	// results/quarantine, when non-nil, are the wrapper's external
	// writers; otherwise submit mode opens the campaign's own files.
	results    io.Writer
	quarantine io.Writer
}

// serviceCampaign is one campaign's full server-side state. The lease
// table locks itself; everything else is guarded by Service.mu (lock
// order: Service.mu may be held while calling table methods, never the
// reverse).
type serviceCampaign struct {
	id, name    string
	seq         int
	base, total int
	matrix      bool
	maxFailures int
	configJSON  []byte
	files       runner.CampaignFiles // zero value in wrapper mode
	table       *LeaseTable

	// Sinks. cw writes through to the primary sink and the in-memory
	// mirror feeding the results snapshot; quarantine likewise.
	cw         *csv.Writer
	quarantine io.Writer
	mem        *bytes.Buffer // merged CSV mirror
	memQ       *bytes.Buffer // merged quarantine mirror
	closers    []io.Closer

	// Release frontier (guarded by Service.mu).
	buffered      map[int]chunkPayload
	nextChunk     int
	merged        int
	failures      int
	headerPending bool
	started       bool
	cancelled     bool
	failedErr     error

	// snapshot is the results endpoint's only data source: swapped
	// atomically at every frontier release and state change, never read
	// through worker or lease-table state.
	snapshot atomic.Pointer[CampaignResultsResponse]

	rowsMerged     *obs.Counter // labeled per campaign in submit mode
	failuresMerged *obs.Counter
}

// Service is the multi-campaign fabric coordinator: a queue of campaign
// grids, each with its own namespaced lease table, generation counters,
// release frontier and output files, drained oldest-first by a shared
// worker fleet under a per-campaign fairness cap. Create with
// NewService, mount Handler, submit campaigns (over the API in submit
// mode, or via the Coordinator wrapper), then Wait.
type Service struct {
	opts       ServiceOptions
	now        func() time.Time
	mux        *http.ServeMux
	submitMode bool

	mu        sync.Mutex
	campaigns map[string]*serviceCampaign
	order     []string // campaign IDs in submission order
	workers   map[string]*workerInfo
	nextWID   int
	nextSeq   int
	draining  bool
	err       error
	doneCh    chan struct{}
	doneOnce  sync.Once

	rowsMerged     *obs.Counter
	failuresMerged *obs.Counter
	workersLive    *obs.Gauge
	workersSeen    *obs.Counter
	submitted      *obs.Counter
	finished       *obs.Counter
}

// NewService validates the options and, in resume mode, re-adopts every
// campaign already present in the service directory.
func NewService(opts ServiceOptions) (*Service, error) {
	if opts.LeaseSize <= 0 {
		opts.LeaseSize = DefaultLeaseSize
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.FairnessCap <= 0 {
		opts.FairnessCap = DefaultFairnessCap
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Service{
		opts:           opts,
		now:            now,
		submitMode:     opts.Dir != "",
		campaigns:      make(map[string]*serviceCampaign),
		workers:        make(map[string]*workerInfo),
		doneCh:         make(chan struct{}),
		rowsMerged:     opts.Metrics.Counter("fabric.rows_merged"),
		failuresMerged: opts.Metrics.Counter("fabric.failures_merged"),
		workersLive:    opts.Metrics.Gauge("fabric.workers_live"),
		workersSeen:    opts.Metrics.Counter("fabric.workers_registered"),
		submitted:      opts.Metrics.Counter("fabric.campaigns_submitted"),
		finished:       opts.Metrics.Counter("fabric.campaigns_finished"),
	}
	if s.submitMode {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("fabric: service dir: %w", err)
		}
		if opts.Resume {
			if err := s.resumeDir(); err != nil {
				return nil, err
			}
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST "+PathRegister, s.handleRegister)
	s.mux.HandleFunc("POST "+PathLease, s.handleLease)
	s.mux.HandleFunc("POST "+PathReport, s.handleReport)
	s.mux.HandleFunc("POST "+PathComplete, s.handleComplete)
	s.mux.HandleFunc("GET "+PathStatus, s.handleStatus)
	s.mux.HandleFunc("POST "+PathCampaigns, s.handleSubmit)
	s.mux.HandleFunc("GET "+PathCampaigns, s.handleList)
	s.mux.HandleFunc("GET "+PathCampaignStatus, s.handleCampaignStatus)
	s.mux.HandleFunc("POST "+PathCampaignCancel, s.handleCancel)
	s.mux.HandleFunc("GET "+PathCampaignResults, s.handleResults)
	return s, nil
}

// Handler returns the service's HTTP handler (worker data plane plus the
// /v1/campaigns control plane).
func (s *Service) Handler() http.Handler { return s.mux }

func (s *Service) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// gridDims derives the grid geometry and failure budget from a raw
// campaign/matrix config file — the submit path's counterpart to what
// `comfase serve` computes for its single grid.
func gridDims(cfgJSON []byte) (base, total int, matrix bool, maxFailures int, err error) {
	parsed, err := config.Parse(bytes.NewReader(cfgJSON))
	if err != nil {
		return 0, 0, false, 0, err
	}
	if len(parsed.Cells) > 0 {
		matrix = true
		base = parsed.Cells[0].Setup.Base
		for _, cell := range parsed.Cells {
			total += cell.Setup.NumExperiments()
		}
	} else {
		base = parsed.Campaign.Base
		total = parsed.Campaign.NumExperiments()
	}
	if total == 0 {
		return 0, 0, false, 0, errors.New("fabric: the config describes an empty campaign grid")
	}
	return base, total, matrix, parsed.Runtime.MaxFailures, nil
}

// Submit enqueues a new campaign from its raw config file, persists the
// config under the service directory, and returns the assigned ID. Only
// valid in submit mode.
func (s *Service) Submit(name string, cfgJSON []byte) (SubmitResponse, error) {
	if !s.submitMode {
		return SubmitResponse{}, errors.New("fabric: campaign submission requires a service directory (start serve with -dir)")
	}
	base, total, matrix, budget, err := gridDims(cfgJSON)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("fabric: submitted config: %w", err)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return SubmitResponse{}, errors.New("fabric: service is draining; submissions closed")
	}
	s.nextSeq++
	id := "c" + strconv.Itoa(s.nextSeq)
	s.mu.Unlock()
	files := runner.CampaignFilesIn(s.opts.Dir, id)
	if err := os.WriteFile(files.Config, cfgJSON, 0o644); err != nil {
		return SubmitResponse{}, fmt.Errorf("fabric: persisting campaign config: %w", err)
	}
	c, err := s.addCampaign(campaignSpec{
		id: id, name: name, configJSON: cfgJSON,
		base: base, total: total, matrix: matrix, maxFailures: budget,
	})
	if err != nil {
		return SubmitResponse{}, err
	}
	return SubmitResponse{CampaignID: c.id, Base: c.base, Total: c.total, Position: c.seq}, nil
}

// resumeDir re-adopts every campaign in the service directory: the
// persisted config is the source of truth, the merged files' contiguous
// prefix is skipped, and ID numbering continues past the highest
// existing campaign number.
func (s *Service) resumeDir() error {
	list, err := runner.ListCampaignDirs(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("fabric: scanning service dir: %w", err)
	}
	for _, files := range list {
		cfgJSON, err := os.ReadFile(files.Config)
		if err != nil {
			return fmt.Errorf("fabric: campaign %s: %w", files.ID, err)
		}
		base, total, matrix, budget, err := gridDims(cfgJSON)
		if err != nil {
			return fmt.Errorf("fabric: campaign %s config %s: %w", files.ID, files.Config, err)
		}
		prefix, err := runner.ReadMergedPrefix(files.Results, files.Quarantine, base, total)
		if err != nil {
			return fmt.Errorf("fabric: campaign %s: %w", files.ID, err)
		}
		name := ""
		if data, err := os.ReadFile(files.Status); err == nil {
			var st CampaignStatus
			if json.Unmarshal(data, &st) == nil {
				name = st.Name
			}
		}
		if _, err := s.addCampaign(campaignSpec{
			id: files.ID, name: name, configJSON: cfgJSON,
			base: base, total: total, matrix: matrix, maxFailures: budget,
			resumePrefix: prefix,
		}); err != nil {
			return err
		}
		s.logf("resumed campaign %s: %d/%d grid points already merged", files.ID, prefix, total)
		if _, n, ok := splitTrailingCampaignInt(files.ID); ok && n >= s.nextSeq {
			s.nextSeq = n
		}
	}
	return nil
}

// splitTrailingCampaignInt extracts a campaign ID's trailing number so
// resumed services continue numbering past it.
func splitTrailingCampaignInt(id string) (prefix string, n int, ok bool) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return id, 0, false
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil {
		return id, 0, false
	}
	return id[:i], n, true
}

// addCampaign builds the campaign's lease table, opens its sinks, and
// registers it with the scheduler.
func (s *Service) addCampaign(spec campaignSpec) (*serviceCampaign, error) {
	if spec.resumePrefix < 0 || spec.resumePrefix > spec.total {
		return nil, fmt.Errorf("fabric: resume prefix %d outside grid of %d", spec.resumePrefix, spec.total)
	}
	var labels []string
	if s.submitMode {
		labels = []string{"campaign", spec.id}
	}
	table, err := NewLeaseTable(spec.base, spec.total, s.opts.LeaseSize, s.opts.LeaseTTL, s.now, s.opts.Metrics, labels...)
	if err != nil {
		return nil, err
	}
	c := &serviceCampaign{
		id: spec.id, name: spec.name,
		base: spec.base, total: spec.total,
		matrix: spec.matrix, maxFailures: spec.maxFailures,
		configJSON: spec.configJSON,
		table:      table,
		quarantine: spec.quarantine,
		mem:        &bytes.Buffer{},
		memQ:       &bytes.Buffer{},
		buffered:   make(map[int]chunkPayload),
	}
	if s.submitMode {
		c.files = runner.CampaignFilesIn(s.opts.Dir, spec.id)
		c.rowsMerged = s.opts.Metrics.Counter(obs.Label("fabric.campaign.rows_merged", "campaign", spec.id))
		c.failuresMerged = s.opts.Metrics.Counter(obs.Label("fabric.campaign.failures_merged", "campaign", spec.id))
		if err := s.openCampaignSinks(c, spec.resumePrefix > 0); err != nil {
			return nil, err
		}
	} else {
		c.rowsMerged = s.rowsMerged
		c.failuresMerged = s.failuresMerged
		mw := io.MultiWriter(spec.results, c.mem)
		c.cw = csv.NewWriter(mw)
		c.headerPending = !spec.noHeader
	}
	if spec.resumePrefix > 0 {
		table.MarkDonePrefix(spec.base + spec.resumePrefix)
		for c.nextChunk < table.NumChunks() {
			_, to, _ := table.Bounds(c.nextChunk)
			if to > spec.base+spec.resumePrefix {
				break
			}
			c.nextChunk++
		}
		c.merged = spec.resumePrefix
	}

	s.mu.Lock()
	if _, dup := s.campaigns[spec.id]; dup {
		s.mu.Unlock()
		c.closeSinks()
		return nil, fmt.Errorf("fabric: duplicate campaign ID %q", spec.id)
	}
	c.seq = len(s.order) + 1
	s.campaigns[spec.id] = c
	s.order = append(s.order, spec.id)
	s.publishLocked(c)
	s.mu.Unlock()
	s.submitted.Inc()
	s.logf("campaign %s submitted: grid [%d,%d), %d chunk(s)", spec.id, spec.base, spec.base+spec.total, table.NumChunks())
	return c, nil
}

// openCampaignSinks opens (or, resuming, re-opens in append mode) a
// submit-mode campaign's results and quarantine files, loading the
// already-merged bytes into the in-memory mirrors so the results
// endpoint sees the full stream.
func (s *Service) openCampaignSinks(c *serviceCampaign, resumed bool) error {
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	appendMode := false
	if resumed {
		if st, err := os.Stat(c.files.Results); err == nil && st.Size() > 0 {
			appendMode = true
		}
	}
	if appendMode {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		if data, err := os.ReadFile(c.files.Results); err == nil {
			c.mem.Write(data)
		}
		if data, err := os.ReadFile(c.files.Quarantine); err == nil {
			c.memQ.Write(data)
		}
	}
	rf, err := os.OpenFile(c.files.Results, mode, 0o644)
	if err != nil {
		return fmt.Errorf("fabric: campaign %s results: %w", c.id, err)
	}
	qf, err := os.OpenFile(c.files.Quarantine, mode, 0o644)
	if err != nil {
		rf.Close()
		return fmt.Errorf("fabric: campaign %s quarantine: %w", c.id, err)
	}
	c.closers = append(c.closers, rf, qf)
	c.cw = csv.NewWriter(io.MultiWriter(rf, c.mem))
	c.quarantine = qf
	c.headerPending = !appendMode
	return nil
}

func (c *serviceCampaign) closeSinks() {
	for _, cl := range c.closers {
		cl.Close()
	}
	c.closers = nil
}

// stateLocked computes the campaign's lifecycle state; Service.mu held.
func (c *serviceCampaign) stateLocked() string {
	switch {
	case c.cancelled:
		return StateCancelled
	case c.failedErr != nil:
		return StateFailed
	case c.table.Done():
		return StateDone
	case c.started:
		return StateRunning
	default:
		return StateQueued
	}
}

// active reports whether the scheduler should still hand out this
// campaign's ranges; Service.mu held.
func (c *serviceCampaign) activeLocked() bool {
	return !c.cancelled && c.failedErr == nil && !c.table.Done()
}

// statusLocked renders the campaign's control-plane document.
func (c *serviceCampaign) statusLocked() CampaignStatus {
	st := CampaignStatus{
		ID: c.id, Name: c.name, State: c.stateLocked(),
		Base: c.base, Total: c.total,
		Merged: c.merged, Failures: c.failures,
		Chunks: c.table.NumChunks(), ChunksDone: c.table.DoneChunks(),
		SubmittedSeq: c.seq,
	}
	if c.failedErr != nil {
		st.Error = c.failedErr.Error()
	}
	return st
}

// publishLocked refreshes the campaign's atomic results snapshot and,
// in submit mode, its on-disk status document. Service.mu held. The
// snapshot is the results endpoint's ONLY data source; it carries what
// the frontier has durably released, never in-flight worker state.
func (s *Service) publishLocked(c *serviceCampaign) {
	st := c.statusLocked()
	c.snapshot.Store(&CampaignResultsResponse{
		CampaignID: c.id,
		State:      st.State,
		Merged:     c.merged,
		Total:      c.total,
		CSV:        c.mem.String(),
		Quarantine: c.memQ.String(),
	})
	if s.submitMode {
		if err := writeStatusDoc(c.files.Status, st); err != nil {
			s.logf("campaign %s: status doc: %v", c.id, err)
		}
	}
}

// writeStatusDoc atomically replaces a campaign's status document
// (temp file + rename), so readers never observe a torn write.
func writeStatusDoc(path string, st CampaignStatus) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ---- scheduler -----------------------------------------------------

// acquire hands the worker a lease from the oldest campaign that is
// both active and under the fairness cap; if every candidate is capped
// (or capping would idle the worker), a second pass ignores the cap —
// the scheduler is work-conserving, the cap only shapes preference.
func (s *Service) acquire(workerID string) (c *serviceCampaign, lease Lease, status AcquireStatus) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, Lease{}, AcquireDraining
	}
	actives := make([]*serviceCampaign, 0, len(s.order))
	terminal := 0
	for _, id := range s.order {
		sc := s.campaigns[id]
		if sc.activeLocked() {
			actives = append(actives, sc)
		} else {
			terminal++
		}
	}
	finishWhenDone := s.opts.FinishWhenDone
	s.mu.Unlock()

	if len(actives) == 0 {
		if finishWhenDone && terminal > 0 {
			return nil, Lease{}, AcquireDone
		}
		// Submit mode: the queue is empty *right now*, but new campaigns
		// may arrive any moment — keep the fleet polling.
		return nil, Lease{}, AcquireEmpty
	}
	// Pass 1: oldest-first, honoring the fairness cap.
	for _, sc := range actives {
		_, leased, _ := sc.table.Stats()
		if leased >= s.opts.FairnessCap {
			continue
		}
		if l, st := sc.table.Acquire(workerID); st == AcquireGranted {
			return sc, l, AcquireGranted
		}
	}
	// Pass 2: ignore the cap rather than idle the worker.
	for _, sc := range actives {
		if l, st := sc.table.Acquire(workerID); st == AcquireGranted {
			return sc, l, AcquireGranted
		}
	}
	return nil, Lease{}, AcquireEmpty
}

// ---- campaign control ----------------------------------------------

// Cancel stops a campaign: nothing new is granted for it, its workers
// are told to abandon their leases on the next renew, and any late
// completion is rejected idempotently with stale:true. Already-merged
// records stay durable. Cancelling a terminal campaign reports ok=false
// with its unchanged state.
func (s *Service) Cancel(id string) (CancelResponse, bool) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	if !ok {
		s.mu.Unlock()
		return CancelResponse{}, false
	}
	state := c.stateLocked()
	if state == StateDone || state == StateFailed || state == StateCancelled {
		s.mu.Unlock()
		return CancelResponse{OK: false, State: state}, true
	}
	c.cancelled = true
	c.table.Drain()
	s.publishLocked(c)
	s.mu.Unlock()
	s.finished.Inc()
	s.logf("campaign %s cancelled", id)
	return CancelResponse{OK: true, State: StateCancelled}, true
}

// CampaignStatusByID returns one campaign's control-plane document.
func (s *Service) CampaignStatusByID(id string) (CampaignStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return CampaignStatus{}, false
	}
	return c.statusLocked(), true
}

// ListCampaigns returns every campaign's status in submission order.
func (s *Service) ListCampaigns() []CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id].statusLocked())
	}
	return out
}

// Results returns a campaign's merged-output snapshot. The pointer was
// swapped in whole at the last frontier release, so the view is always
// a grid-ordered durable prefix — never a peek at worker state.
func (s *Service) Results(id string) (*CampaignResultsResponse, bool) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return c.snapshot.Load(), true
}

// campaignMerged reports a campaign's merged/failure counts (wrapper
// accessors).
func (s *Service) campaignCounts(id string) (merged, failures int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.campaigns[id]; ok {
		return c.merged, c.failures
	}
	return 0, 0
}

// failCampaign records a campaign-fatal error. In FinishWhenDone mode
// (the single-campaign wrapper) the campaign's failure is the service's
// failure, preserving the Coordinator's semantics; in submit mode the
// service keeps serving the other campaigns.
func (s *Service) failCampaign(c *serviceCampaign, err error) {
	s.mu.Lock()
	fresh := c.failedErr == nil && !c.cancelled
	if fresh {
		c.failedErr = err
		s.publishLocked(c)
	}
	s.mu.Unlock()
	c.table.Drain()
	if fresh {
		s.finished.Inc()
		s.logf("campaign %s failed: %v", c.id, err)
	}
	if s.opts.FinishWhenDone {
		s.fail(err)
	}
}

// fail records a service-fatal error and stops the run.
func (s *Service) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.draining = true
	s.mu.Unlock()
	s.finish(err)
}

// finish flushes every campaign's sinks and releases Wait exactly once.
func (s *Service) finish(err error) {
	s.doneOnce.Do(func() {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		for _, id := range s.order {
			c := s.campaigns[id]
			if c.cw != nil {
				c.cw.Flush()
				if ferr := c.cw.Error(); ferr != nil && s.err == nil {
					s.err = fmt.Errorf("fabric: results flush: %w", ferr)
				}
			}
			c.closeSinks()
		}
		s.mu.Unlock()
		close(s.doneCh)
	})
}

// Drain switches the service to draining mode: outstanding leases may
// finish and report, nothing new is granted or accepted for submission,
// and Wait returns once every table is idle. Queued and half-done
// campaigns stay resumable — their configs and merged prefixes are on
// disk.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, c := range s.campaigns {
		c.table.Drain()
	}
	s.mu.Unlock()
	s.logf("draining: finishing leased ranges, leasing nothing new")
}

// drainingNow reports the drain flag.
func (s *Service) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// allTerminal reports whether every campaign reached a terminal state
// (and at least one campaign exists).
func (s *Service) allTerminal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 {
		return false
	}
	for _, id := range s.order {
		if s.campaigns[id].activeLocked() {
			return false
		}
	}
	return true
}

// idle reports whether no active campaign holds a leased chunk — the
// drain exit condition. Cancelled/failed campaigns are skipped: their
// abandoned leases expire on their own and nothing will merge them.
func (s *Service) idle() bool {
	s.mu.Lock()
	tables := make([]*LeaseTable, 0, len(s.order))
	for _, id := range s.order {
		c := s.campaigns[id]
		if !c.cancelled && c.failedErr == nil {
			tables = append(tables, c.table)
		}
	}
	s.mu.Unlock()
	for _, t := range tables {
		if !t.Idle() {
			return false
		}
	}
	return true
}

// completionError distinguishes "everything complete" (nil) from
// "drained early" at shutdown; a recorded fatal error wins, then the
// first failed campaign's error in FinishWhenDone mode.
func (s *Service) completionError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	merged, total, incomplete := 0, 0, 0
	var firstFailed error
	for _, id := range s.order {
		c := s.campaigns[id]
		merged += c.merged
		total += c.total
		if c.failedErr != nil && firstFailed == nil {
			firstFailed = c.failedErr
		}
		if c.activeLocked() {
			incomplete++
		}
	}
	if s.opts.FinishWhenDone && firstFailed != nil {
		return firstFailed
	}
	if incomplete > 0 {
		return fmt.Errorf("%w: %d/%d grid points merged", ErrDrained, merged, total)
	}
	return nil
}

// Wait blocks until the run completes (FinishWhenDone), a fatal error
// occurs, or — after ctx is canceled — the drain finishes. It owns the
// liveness sweeper.
func (s *Service) Wait(ctx context.Context) error {
	sweep := time.NewTicker(s.sweepInterval())
	defer sweep.Stop()
	// A service constructed over already-complete campaigns (a resume of
	// a finished grid) has nothing to wait for.
	if s.opts.FinishWhenDone && s.allTerminal() {
		s.finish(s.completionError())
	}
	ctxDone := ctx.Done()
	for {
		select {
		case <-s.doneCh:
			return s.runError()
		case <-ctxDone:
			ctxDone = nil // handled; don't spin on the closed channel
			s.Drain()
			if s.idle() {
				s.finish(s.completionError())
			}
		case <-sweep.C:
			expired := 0
			s.mu.Lock()
			tables := make([]*LeaseTable, 0, len(s.order))
			for _, id := range s.order {
				tables = append(tables, s.campaigns[id].table)
			}
			s.mu.Unlock()
			for _, t := range tables {
				expired += t.Sweep()
			}
			if expired > 0 {
				s.logf("expired %d lease(s); ranges return to the pool", expired)
			}
			s.updateLiveness()
			if s.opts.FinishWhenDone && s.allTerminal() {
				s.finish(s.completionError())
			}
			if s.drainingNow() && s.idle() {
				s.finish(s.completionError())
			}
		}
	}
}

func (s *Service) runError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// sweepInterval is a quarter of the TTL, clamped to stay responsive for
// the short TTLs tests use without busy-looping for long ones.
func (s *Service) sweepInterval() time.Duration {
	iv := s.opts.LeaseTTL / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > 5*time.Second {
		iv = 5 * time.Second
	}
	return iv
}

// updateLiveness refreshes the workers-live gauge.
func (s *Service) updateLiveness() {
	cutoff := s.now().Add(-s.opts.LeaseTTL)
	s.mu.Lock()
	live := int64(0)
	for _, w := range s.workers {
		if w.lastSeen.After(cutoff) {
			live++
		}
	}
	s.mu.Unlock()
	s.workersLive.Set(live)
}

// touchWorker stamps a worker's liveness; unknown IDs are ignored.
func (s *Service) touchWorker(id string, snap *obs.Snapshot) {
	s.mu.Lock()
	if w, ok := s.workers[id]; ok {
		w.lastSeen = s.now()
		if snap != nil {
			w.snapshot = snap
		}
	}
	s.mu.Unlock()
}

// markNotified records that a worker has been handed an end-of-run
// response and will not call back.
func (s *Service) markNotified(id string) {
	s.mu.Lock()
	if w, ok := s.workers[id]; ok {
		w.notifiedEnd = true
	}
	s.mu.Unlock()
}

// Linger blocks until every live worker has received an end-of-run
// response, or one lease TTL elapses — whichever comes first. Call after
// Wait, before tearing down the HTTP server.
func (s *Service) Linger() {
	deadline := time.Now().Add(s.opts.LeaseTTL)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for time.Now().Before(deadline) {
		cutoff := s.now().Add(-s.opts.LeaseTTL)
		pending := 0
		s.mu.Lock()
		for _, w := range s.workers {
			if !w.notifiedEnd && w.lastSeen.After(cutoff) {
				pending++
			}
		}
		s.mu.Unlock()
		if pending == 0 {
			return
		}
		<-ticker.C
	}
}

// ---- worker data-plane handlers ------------------------------------

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeRegisterRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.nextWID++
	id := "w" + strconv.Itoa(s.nextWID)
	s.workers[id] = &workerInfo{host: req.Host, pid: req.PID, lastSeen: s.now()}
	s.mu.Unlock()
	s.workersSeen.Inc()
	s.logf("worker %s registered (host=%s pid=%d)", id, req.Host, req.PID)
	writeJSON(w, RegisterResponse{
		Version:    ProtocolVersion,
		WorkerID:   id,
		LeaseTTLMS: s.opts.LeaseTTL.Milliseconds(),
	})
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeLeaseRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.touchWorker(req.WorkerID, nil)
	c, lease, status := s.acquire(req.WorkerID)
	switch status {
	case AcquireGranted:
		s.mu.Lock()
		if !c.started {
			c.started = true
			s.publishLocked(c)
		}
		s.mu.Unlock()
		resp := LeaseResponse{
			Granted: true, Campaign: c.id,
			Chunk: lease.Chunk, From: lease.From, To: lease.To, Gen: lease.Gen,
		}
		known := false
		for _, id := range req.Known {
			if id == c.id {
				known = true
				break
			}
		}
		if !known {
			resp.Config = json.RawMessage(c.configJSON)
		}
		s.logf("leased %s chunk %d [%d,%d) gen %d to %s", c.id, lease.Chunk, lease.From, lease.To, lease.Gen, req.WorkerID)
		writeJSON(w, resp)
	case AcquireDone:
		s.markNotified(req.WorkerID)
		writeJSON(w, LeaseResponse{Done: true})
	case AcquireDraining:
		s.markNotified(req.WorkerID)
		writeJSON(w, LeaseResponse{Draining: true})
	default: // AcquireEmpty: leases may expire, campaigns may arrive.
		writeJSON(w, LeaseResponse{RetryMS: (s.opts.LeaseTTL / 2).Milliseconds()})
	}
}

// campaignByID resolves a campaign reference from a worker message.
func (s *Service) campaignByID(id string) (*serviceCampaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeReportRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.touchWorker(req.WorkerID, req.Snapshot)
	c, ok := s.campaignByID(req.Campaign)
	if !ok {
		http.Error(w, fmt.Sprintf("fabric: unknown campaign %q", req.Campaign), http.StatusBadRequest)
		return
	}
	draining := s.drainingNow()
	s.mu.Lock()
	dead := c.cancelled || c.failedErr != nil
	s.mu.Unlock()
	if dead {
		// Cancelled/failed campaign: the range will never be merged.
		writeJSON(w, ReportResponse{OK: false, Cancel: true, Draining: draining})
		return
	}
	if err := c.table.Renew(req.WorkerID, req.Chunk, req.Gen); err != nil {
		// The lease is gone; tell the worker to abandon the range.
		writeJSON(w, ReportResponse{OK: false, Cancel: true, Draining: draining})
		return
	}
	writeJSON(w, ReportResponse{OK: true, Draining: draining})
}

func (s *Service) handleComplete(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeCompleteRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.touchWorker(req.WorkerID, nil)
	c, ok := s.campaignByID(req.Campaign)
	if !ok {
		http.Error(w, fmt.Sprintf("fabric: unknown campaign %q", req.Campaign), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	dead := c.cancelled || c.failedErr != nil
	s.mu.Unlock()
	if dead {
		// The campaign was cancelled (or failed) while the worker ran:
		// reject the late completion idempotently — same contract as a
		// superseded generation.
		s.logf("rejected completion of cancelled %s chunk %d from %s", c.id, req.Chunk, req.WorkerID)
		writeJSON(w, CompleteResponse{OK: false, Stale: true, Done: s.finishedDone()})
		return
	}

	from, to, err := c.table.Bounds(req.Chunk)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Verify coverage before touching the lease: every expNr in
	// [from, to) exactly once, as a result row or a quarantine record.
	// A worker shipping garbage must not consume the lease.
	if err := verifyCoverage(from, to, req.Rows, req.Failures); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.table.Complete(req.WorkerID, req.Chunk, req.Gen); err != nil {
		// Late completion from a presumed-dead worker: the range was (or
		// will be) re-executed elsewhere. Discard idempotently.
		s.logf("rejected stale completion of %s chunk %d gen %d from %s", c.id, req.Chunk, req.Gen, req.WorkerID)
		done := s.finishedDone()
		if done {
			s.markNotified(req.WorkerID)
		}
		writeJSON(w, CompleteResponse{OK: false, Stale: true, Done: done})
		return
	}

	s.mu.Lock()
	c.buffered[req.Chunk] = chunkPayload{rows: req.Rows, failures: req.Failures}
	c.failures += len(req.Failures)
	overBudget := c.maxFailures >= 0 && c.failures > c.maxFailures
	werr := s.releaseLocked(c)
	campaignDone := c.table.Done()
	if werr == nil {
		s.publishLocked(c)
	}
	s.mu.Unlock()
	if werr != nil {
		s.failCampaign(c, werr)
		http.Error(w, werr.Error(), http.StatusInternalServerError)
		return
	}
	done := s.finishedDone()
	if done {
		s.markNotified(req.WorkerID)
	}
	writeJSON(w, CompleteResponse{OK: true, Done: done})
	if overBudget {
		// The triggering records are already merged and durable; stop
		// granting this campaign's work and surface the budget error,
		// mirroring the runner's ErrFailureBudget semantics.
		s.failCampaign(c, fmt.Errorf("%w: %d persistent failure(s) over budget %d",
			runner.ErrFailureBudget, c.failures, c.maxFailures))
		return
	}
	if campaignDone {
		s.finished.Inc()
		s.logf("campaign %s complete: %d grid points merged (%d quarantined)", c.id, c.merged, c.failures)
		if s.opts.FinishWhenDone && s.allTerminal() {
			s.finish(s.completionError())
		}
	}
}

// finishedDone reports whether the whole service is finishing: every
// campaign terminal AND the run configured to end then. In submit mode
// the service keeps running (new submissions may arrive), so workers are
// never told Done — they exit on Draining at shutdown instead.
func (s *Service) finishedDone() bool {
	return s.opts.FinishWhenDone && s.allTerminal()
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	cutoff := s.now().Add(-s.opts.LeaseTTL)
	s.mu.Lock()
	st := StatusResponse{Version: ProtocolVersion, Draining: s.draining}
	for _, id := range s.order {
		c := s.campaigns[id]
		st.Total += c.total
		st.Merged += c.merged
		st.Chunks += c.table.NumChunks()
		st.ChunksDone += c.table.DoneChunks()
		st.Campaigns = append(st.Campaigns, c.statusLocked())
	}
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wi := s.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: id, Host: wi.host, PID: wi.pid,
			LastSeenUnix: wi.lastSeen.Unix(),
			Live:         wi.lastSeen.After(cutoff),
		})
	}
	s.mu.Unlock()
	writeJSON(w, st)
}

// ---- campaigns control-plane handlers ------------------------------

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeSubmitRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.submitMode {
		http.Error(w, "fabric: campaign submission requires a service directory (start serve with -dir)", http.StatusForbidden)
		return
	}
	resp, err := s.Submit(req.Name, req.Config)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, CampaignListResponse{Version: ProtocolVersion, Campaigns: s.ListCampaigns()})
}

func (s *Service) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	st, ok := s.CampaignStatusByID(id)
	if !ok {
		http.Error(w, fmt.Sprintf("fabric: unknown campaign %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeCancelRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, found := s.Cancel(req.CampaignID)
	if !found {
		http.Error(w, fmt.Sprintf("fabric: unknown campaign %q", req.CampaignID), http.StatusNotFound)
		return
	}
	writeJSON(w, resp)
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	snap, ok := s.Results(id)
	if !ok {
		http.Error(w, fmt.Sprintf("fabric: unknown campaign %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, snap)
}

// ---- merge frontier ------------------------------------------------

// releaseLocked writes every buffered chunk at the campaign's frontier
// in chunk order: result rows to the CSV writer, failure records to the
// quarantine writer, both already in their exact sequential encodings.
// The caller holds s.mu.
func (s *Service) releaseLocked(c *serviceCampaign) error {
	for {
		payload, ok := c.buffered[c.nextChunk]
		if !ok {
			break
		}
		delete(c.buffered, c.nextChunk)
		// Rows and failures each arrive sorted; interleave by expNr so
		// the quarantine stream is globally grid-ordered like the CSV.
		ri, fi := 0, 0
		for ri < len(payload.rows) || fi < len(payload.failures) {
			if fi >= len(payload.failures) || (ri < len(payload.rows) && payload.rows[ri].Nr < payload.failures[fi].Nr) {
				if c.headerPending {
					if err := c.writeHeader(); err != nil {
						return err
					}
					c.headerPending = false
				}
				if err := c.cw.Write(payload.rows[ri].Fields); err != nil {
					return fmt.Errorf("fabric: results write: %w", err)
				}
				c.rowsMerged.Inc()
				if s.submitMode {
					s.rowsMerged.Inc() // keep the aggregate counter aggregate
				}
				ri++
			} else {
				rec := append(payload.failures[fi].Record, '\n')
				if c.quarantine != nil {
					if _, err := c.quarantine.Write(rec); err != nil {
						return fmt.Errorf("fabric: quarantine write: %w", err)
					}
				}
				c.memQ.Write(rec)
				c.failuresMerged.Inc()
				if s.submitMode {
					s.failuresMerged.Inc()
				}
				fi++
			}
			c.merged++
		}
		c.cw.Flush()
		if err := c.cw.Error(); err != nil {
			return fmt.Errorf("fabric: results flush: %w", err)
		}
		c.nextChunk++
	}
	return nil
}

func (c *serviceCampaign) writeHeader() error {
	header := resultHeader(c.matrix)
	if err := c.cw.Write(header); err != nil {
		return fmt.Errorf("fabric: results header: %w", err)
	}
	c.cw.Flush()
	return c.cw.Error()
}
