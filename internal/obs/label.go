package obs

import "strings"

// Label decorates a metric name with key="value" label pairs in the
// canonical `name{k1="v1",k2="v2"}` form, so one Registry can hold the
// same logical metric for many instances (the fabric service registers
// per-campaign counters this way: `fabric.campaign.rows_merged{campaign="c3"}`).
// The registry itself treats the decorated name as an opaque string —
// labels are a naming convention, not a registry feature — which keeps
// the lock-free metric hot path untouched.
//
// Pairs are emitted in argument order; callers wanting a canonical
// ordering should pass keys sorted. Backslashes and double quotes inside
// a value are escaped so the rendered name survives a round trip through
// the snapshot JSON and line-oriented scrapes. An odd trailing key is
// ignored rather than panicking: metric naming must never take a
// campaign down.
func Label(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(kv))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabel undoes Label: it returns the bare metric name and the label
// pairs in emission order. Names without a label block come back
// unchanged with nil pairs; a malformed block (no closing brace) is
// treated as part of the name rather than rejected, mirroring the
// registry's opaque-string stance.
func SplitLabel(decorated string) (name string, kv []string) {
	open := strings.IndexByte(decorated, '{')
	if open < 0 || !strings.HasSuffix(decorated, "}") {
		return decorated, nil
	}
	name = decorated[:open]
	body := decorated[open+1 : len(decorated)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return decorated, nil // malformed: keep opaque
		}
		key := body[:eq]
		rest := body[eq+2:]
		val, n, ok := unescapeLabelValue(rest)
		if !ok {
			return decorated, nil
		}
		kv = append(kv, key, val)
		body = rest[n:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return decorated, nil
		}
	}
	return name, kv
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `\"`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' {
			b.WriteByte('\\')
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// unescapeLabelValue reads an escaped value up to its closing quote and
// reports how many input bytes (closing quote included) it consumed.
func unescapeLabelValue(s string) (val string, consumed int, ok bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, false
			}
			i++
			b.WriteByte(s[i])
		case '"':
			return b.String(), i + 1, true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, false
}
