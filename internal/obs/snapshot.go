package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// HistogramSnapshot is the wire form of one histogram: per-bucket counts
// (the final entry is the +Inf overflow bucket), total observation count
// and value sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is the wire form of a registry capture — the document the
// heartbeat file carries and the /metrics endpoint serves. Counter values
// are monotonically non-decreasing across successive snapshots of the
// same registry.
type Snapshot struct {
	// Seq is the heartbeat sequence number: strictly increasing across
	// the writes of one Heartbeat. 0 in ad-hoc snapshots.
	Seq uint64 `json:"seq,omitempty"`
	// UnixNano is the wall-clock capture time stamp (0 when unstamped).
	UnixNano int64 `json:"unixNano,omitempty"`

	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// ErrInvalidSnapshot wraps every validation failure of DecodeSnapshot,
// so consumers can distinguish "malformed document" from I/O errors with
// one errors.Is check.
var ErrInvalidSnapshot = errors.New("obs: invalid snapshot")

// Encode renders the snapshot as a single JSON line (trailing newline
// included), the heartbeat file format.
func (s Snapshot) Encode() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeSnapshot parses and validates one snapshot document. It is the
// decoder external heartbeat watchers should use: a truncated,
// concatenated or otherwise corrupt file yields an error wrapping
// ErrInvalidSnapshot (never a panic), so pollers can simply skip the
// read and retry after the next atomic heartbeat write.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrInvalidSnapshot, err)
	}
	// A heartbeat file holds exactly one document; trailing garbage means
	// the writer was not ours (or the file was corrupted in place).
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); !errors.Is(err, io.EOF) {
		return Snapshot{}, fmt.Errorf("%w: trailing data after snapshot document", ErrInvalidSnapshot)
	}
	if err := s.validate(); err != nil {
		return Snapshot{}, err
	}
	// Normalize explicitly-empty maps to nil so decode(encode(s)) == s:
	// Encode drops empty maps via omitempty, and a stable round trip is
	// part of the decoder's contract (pinned by FuzzHeartbeatDecode).
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	if len(s.Gauges) == 0 {
		s.Gauges = nil
	}
	if len(s.Histograms) == 0 {
		s.Histograms = nil
	}
	return s, nil
}

// validate checks the structural invariants every Registry-produced
// snapshot satisfies.
func (s Snapshot) validate() error {
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("%w: histogram %q has %d counts for %d bounds (want bounds+1)",
				ErrInvalidSnapshot, name, len(h.Counts), len(h.Bounds))
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("%w: histogram %q bucket counts sum to %d, count field says %d",
				ErrInvalidSnapshot, name, total, h.Count)
		}
		// Non-finite bounds/sums need no check here: JSON cannot encode
		// NaN or infinities, so the decoder rejects them upstream.
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("%w: histogram %q bounds not strictly ascending at %d", ErrInvalidSnapshot, name, i)
			}
		}
		if h.Count == 0 && h.Sum != 0 {
			return fmt.Errorf("%w: histogram %q has sum %v with zero observations", ErrInvalidSnapshot, name, h.Sum)
		}
	}
	return nil
}
