package obs

import (
	"math"
	"sync"
	"testing"
)

// TestMetricsConcurrentHammer drives every metric kind from many
// goroutines simultaneously — under `go test -race` this is the proof
// that the update paths are data-race-free — and then asserts the exact
// final values: counters see every increment, gauges converge to the net
// delta, histograms count every observation in the right bucket and
// accumulate the exact sum.
func TestMetricsConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 10_000
	)
	reg := NewRegistry()
	c := reg.Counter("hammer.counter")
	g := reg.Gauge("hammer.gauge")
	h := reg.Histogram("hammer.hist", 1, 2, 4)

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve the same metrics through the registry concurrently
			// too: get-or-create must always return the same instance.
			cc := reg.Counter("hammer.counter")
			gg := reg.Gauge("hammer.gauge")
			hh := reg.Histogram("hammer.hist", 1, 2, 4)
			for i := 0; i < perG; i++ {
				cc.Inc()
				cc.Add(2)
				gg.Add(3)
				gg.Add(-2)
				// Observation value cycles through all four buckets:
				// 0.5 -> (..1], 1.5 -> (1..2], 3 -> (2..4], 9 -> +Inf.
				switch i % 4 {
				case 0:
					hh.Observe(0.5)
				case 1:
					hh.Observe(1.5)
				case 2:
					hh.Observe(3)
				case 3:
					hh.Observe(9)
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(goroutines * perG)
	if got, want := c.Load(), 3*total; got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Load(), int64(total); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got, want := h.Count(), total; got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Exact sum: per cycle of 4 observations the sum grows by 14.
	wantSum := float64(goroutines) * float64(perG/4) * (0.5 + 1.5 + 3 + 9)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["hammer.hist"]
	perBucket := total / 4
	for i, c := range hs.Counts {
		if c != perBucket {
			t.Errorf("bucket %d count = %d, want %d", i, c, perBucket)
		}
	}
	if hs.Count != total {
		t.Errorf("snapshot histogram count = %d, want %d", hs.Count, total)
	}
	if snap.Counters["hammer.counter"] != 3*total {
		t.Errorf("snapshot counter = %d, want %d", snap.Counters["hammer.counter"], 3*total)
	}
	if snap.Gauges["hammer.gauge"] != int64(total) {
		t.Errorf("snapshot gauge = %d, want %d", snap.Gauges["hammer.gauge"], int64(total))
	}
}

// TestNilMetricsAreNoOps pins the "off = nil" contract: every operation
// on nil metrics and a nil registry is a safe no-op.
func TestNilMetricsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(7)
	if c.Load() != 0 {
		t.Error("nil counter loaded non-zero")
	}
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Error("nil gauge loaded non-zero")
	}
	h.Observe(1)
	h.ObserveDuration(0)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded observations")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", 1) != nil {
		t.Error("nil registry handed out live metrics")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if r.Names() != nil {
		t.Error("nil registry has names")
	}
}

// TestHistogramBuckets pins the bucket assignment rule: value v lands in
// the first bucket with bound >= v; values above every bound land in the
// overflow bucket; NaN is dropped.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []float64{0, 1, 1.0001, 10, 11, math.Inf(1), math.NaN()} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 2, 2} // {0,1}, {1.0001,10}, {11,+Inf}; NaN dropped
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], want[i], s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6 (NaN must be dropped)", s.Count)
	}
}

// TestHistogramBadBoundsPanic pins that malformed static bucket layouts
// fail loudly at construction.
func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{{2, 1}, {1, 1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

// TestRegistryGetOrCreate pins handle identity and histogram bounds
// fixation.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("counter identity not stable")
	}
	if reg.Gauge("a") != reg.Gauge("a") {
		t.Error("gauge identity not stable")
	}
	h1 := reg.Histogram("h", 1, 2)
	h2 := reg.Histogram("h", 99)
	if h1 != h2 {
		t.Error("histogram identity not stable")
	}
	if len(h1.bounds) != 2 {
		t.Error("second registration changed bucket layout")
	}
	names := reg.Names()
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
}
