package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerServesMetricsExpvarAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served").Add(9)
	reg.Gauge("level").Set(4)
	reg.Histogram("lat", 1, 2).Observe(1.5)

	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// /metrics serves the heartbeat snapshot schema.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	s, err := DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("/metrics decode: %v", err)
	}
	if s.Counters["served"] != 9 || s.Gauges["level"] != 4 {
		t.Errorf("/metrics snapshot = %+v", s)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Errorf("/metrics histogram = %+v", s.Histograms["lat"])
	}
	if s.UnixNano == 0 {
		t.Error("/metrics snapshot not time-stamped")
	}

	// /debug/vars carries the published "comfase" var plus memstats.
	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["comfase"]; !ok {
		t.Error("/debug/vars missing the comfase variable")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	// pprof: the index and a cheap profile endpoint both respond.
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	code, body = get("/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/goroutine status %d", code)
	}
}

func TestServerRebindsExpvarToLatestRegistry(t *testing.T) {
	regA := NewRegistry()
	regA.Counter("a").Inc()
	srvA, err := NewServer("127.0.0.1:0", regA)
	if err != nil {
		t.Fatalf("NewServer A: %v", err)
	}
	srvA.Close()

	regB := NewRegistry()
	regB.Counter("b").Add(2)
	srvB, err := NewServer("127.0.0.1:0", regB)
	if err != nil {
		t.Fatalf("NewServer B: %v", err)
	}
	defer srvB.Close()

	resp, err := http.Get("http://" + srvB.Addr() + "/debug/vars")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var vars struct {
		Comfase Snapshot `json:"comfase"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if vars.Comfase.Counters["b"] != 2 {
		t.Errorf("expvar snapshot = %+v, want registry B", vars.Comfase)
	}
	if _, stale := vars.Comfase.Counters["a"]; stale {
		t.Error("expvar still serving the closed server's registry")
	}
}

func TestServerFailsFastOnBusyAddr(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	if _, err := NewServer(srv.Addr(), NewRegistry()); err == nil {
		t.Fatal("second bind on a busy address succeeded")
	}
}
