package obs

import (
	"errors"
	"reflect"
	"testing"
)

// sampleSnapshot returns a registry with every metric kind populated.
func sampleRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("events").Add(12345)
	reg.Counter("zero") // registered, never incremented
	reg.Gauge("depth").Set(-7)
	h := reg.Histogram("wall", 0.5, 1, 5)
	h.Observe(0.1)
	h.Observe(0.7)
	h.Observe(100)
	return reg
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleRegistry().Snapshot()
	s.Seq = 42
	s.UnixNano = 1_700_000_000_000_000_000
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("encoded snapshot missing trailing newline")
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, s)
	}
}

// TestDecodeSnapshotTruncation pins truncation tolerance: every strict
// prefix of a valid document must decode to a clean error, never a panic
// or a silently wrong snapshot.
func TestDecodeSnapshotTruncation(t *testing.T) {
	s := sampleRegistry().Snapshot()
	s.Seq = 7
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for cut := 0; cut < len(data)-1; cut++ {
		if _, err := DecodeSnapshot(data[:cut]); !errors.Is(err, ErrInvalidSnapshot) {
			t.Fatalf("truncation at %d bytes: err = %v, want ErrInvalidSnapshot", cut, err)
		}
	}
}

func TestDecodeSnapshotRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"junk":              "not json",
		"trailing garbage":  `{"seq":1}{"seq":2}`,
		"unknown field":     `{"bogus":1}`,
		"counts mismatch":   `{"histograms":{"h":{"bounds":[1],"counts":[1],"count":1,"sum":1}}}`,
		"count wrong":       `{"histograms":{"h":{"bounds":[1],"counts":[1,2],"count":4,"sum":1}}}`,
		"bounds descending": `{"histograms":{"h":{"bounds":[2,1],"counts":[0,0,0],"count":0,"sum":0}}}`,
		"bounds duplicate":  `{"histograms":{"h":{"bounds":[1,1],"counts":[0,0,0],"count":0,"sum":0}}}`,
		"sum without count": `{"histograms":{"h":{"bounds":[1],"counts":[0,0],"count":0,"sum":3}}}`,
	}
	for name, doc := range cases {
		if _, err := DecodeSnapshot([]byte(doc)); !errors.Is(err, ErrInvalidSnapshot) {
			t.Errorf("%s: err = %v, want ErrInvalidSnapshot", name, err)
		}
	}
}
