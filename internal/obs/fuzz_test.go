package obs

import (
	"reflect"
	"testing"
)

// FuzzHeartbeatDecode throws arbitrary bytes at the heartbeat snapshot
// decoder — the surface external tooling and the -resume path expose to
// whatever is on disk. The decoder must never panic, and anything it
// accepts must re-encode and decode to the identical snapshot (so a
// watcher that archives heartbeats can round-trip them losslessly).
func FuzzHeartbeatDecode(f *testing.F) {
	reg := sampleRegistry()
	full := reg.Snapshot()
	full.Seq = 3
	full.UnixNano = 1_700_000_000_000_000_000
	if seed, err := full.Encode(); err == nil {
		f.Add(seed)
	}
	if seed, err := (Snapshot{Seq: 1}).Encode(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"a":1},"gauges":{"g":-2}}`))
	f.Add([]byte(`{"histograms":{"h":{"bounds":[1,2],"counts":[1,0,2],"count":3,"sum":4.5}}}`))
	f.Add([]byte(`{"histograms":{"h":{"bounds":[2,1],"counts":[0,0,0],"count":0,"sum":0}}}`))
	f.Add([]byte(`{"seq":1}{"seq":2}`))
	f.Add([]byte(``))
	f.Add([]byte(`nonsense`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return // rejected input; all that matters is no panic
		}
		re, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v\ninput: %q", err, data)
		}
		s2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v\nencoded: %q", err, re)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip not stable:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
	})
}
