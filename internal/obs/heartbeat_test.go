package obs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestHeartbeatWritesDecodableMonotonicSnapshots(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks")
	path := filepath.Join(t.TempDir(), "heartbeat.json")
	hb := NewHeartbeat(path, time.Millisecond, reg.Snapshot)
	if err := hb.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	var lastSeq, lastTicks uint64
	deadline := time.Now().Add(5 * time.Second)
	polls := 0
	for polls < 50 && time.Now().Before(deadline) {
		c.Inc()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read heartbeat: %v", err)
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("poll %d: DecodeSnapshot: %v\n%s", polls, err, data)
		}
		if s.Seq < lastSeq {
			t.Fatalf("seq went backwards: %d after %d", s.Seq, lastSeq)
		}
		if ticks := s.Counters["ticks"]; ticks < lastTicks {
			t.Fatalf("counter went backwards: %d after %d", ticks, lastTicks)
		} else {
			lastTicks = ticks
		}
		if s.UnixNano == 0 {
			t.Fatal("snapshot not time-stamped")
		}
		lastSeq = s.Seq
		polls++
		time.Sleep(time.Millisecond / 2)
	}
	if err := hb.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	// The final write reflects the end state and a newer sequence.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read final heartbeat: %v", err)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("final DecodeSnapshot: %v", err)
	}
	if s.Seq < lastSeq {
		t.Errorf("final seq %d below last observed %d", s.Seq, lastSeq)
	}
	if got, want := s.Counters["ticks"], c.Load(); got != want {
		t.Errorf("final ticks = %d, want %d", got, want)
	}

	// No temp files left behind by the atomic-rename protocol.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("stray file %q after heartbeat", e.Name())
		}
	}
}

func TestHeartbeatStartFailsFastOnUnwritablePath(t *testing.T) {
	hb := NewHeartbeat(filepath.Join(t.TempDir(), "missing-dir", "hb.json"), time.Second, (*Registry)(nil).Snapshot)
	if err := hb.Start(); err == nil {
		t.Fatal("Start succeeded on an unwritable path")
	}
}

// TestHeartbeatTruncatedFileRecovers is the mid-write truncation story:
// a reader that catches a truncated copy gets a clean decode error, and
// the next heartbeat write replaces it with a valid document.
func TestHeartbeatTruncatedFileRecovers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Add(3)
	path := filepath.Join(t.TempDir(), "hb.json")
	hb := NewHeartbeat(path, time.Hour, reg.Snapshot) // only explicit writes
	if err := hb.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Simulate a non-atomic copy cut off mid-write.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := DecodeSnapshot(data[:len(data)/2]); !errors.Is(err, ErrInvalidSnapshot) {
		t.Fatalf("truncated decode err = %v, want ErrInvalidSnapshot", err)
	}
	// Stop performs a final write, which must atomically replace the
	// corrupted file with a decodable document.
	if err := hb.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatalf("read after recover: %v", err)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode after recover: %v", err)
	}
	if s.Counters["n"] != 3 {
		t.Errorf("recovered snapshot counters = %v", s.Counters)
	}
}
