package obs

import (
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Lookup methods are
// get-or-create and lock only the registration map — never the metric
// update path — so components can resolve their metric handles once at
// construction time and update them lock-free forever after.
//
// A nil *Registry is the "observability off" configuration: its lookup
// methods return nil metrics, whose operations are no-ops. Instrumented
// code therefore never branches on an enable flag.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = new(Counter)
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use. A later lookup under the
// same name returns the existing histogram regardless of the bounds
// argument — bucket layout is fixed at first registration. Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric's current value. The capture
// is not a single atomic cut across metrics — each value is an
// independent atomic load — but every counter value is guaranteed
// monotonically non-decreasing across successive snapshots, which is the
// contract heartbeat consumers rely on. Safe on a nil registry (returns
// an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]uint64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Names returns the sorted names of all registered metrics, for tests
// and diagnostic listings.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
