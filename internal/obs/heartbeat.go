package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DefaultHeartbeatInterval is the snapshot cadence used when a Heartbeat
// is created with a non-positive interval. Frequent enough to watch a
// campaign live, cheap enough (one registry snapshot + one small file
// write) to be irrelevant next to experiment execution.
const DefaultHeartbeatInterval = 5 * time.Second

// Heartbeat periodically writes a registry snapshot as a single-line
// JSON document to a file, so external tooling can watch a running
// campaign by polling one path. Every write goes to a temporary file in
// the same directory followed by an atomic rename, so a reader never
// observes a partially written document; DecodeSnapshot additionally
// tolerates truncation (returning an error, not garbage) for tools that
// copy the file non-atomically.
type Heartbeat struct {
	path     string
	interval time.Duration
	source   func() Snapshot

	mu      sync.Mutex
	seq     uint64
	lastErr error

	stop chan struct{}
	done chan struct{}
}

// NewHeartbeat returns an unstarted heartbeat writing snapshots from
// source to path every interval (non-positive selects
// DefaultHeartbeatInterval). The usual source is Registry.Snapshot.
func NewHeartbeat(path string, interval time.Duration, source func() Snapshot) *Heartbeat {
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	return &Heartbeat{
		path:     path,
		interval: interval,
		source:   source,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start writes the first snapshot synchronously — so an unwritable path
// fails fast, before a campaign starts — and then begins the periodic
// writer goroutine.
func (h *Heartbeat) Start() error {
	if err := h.writeOnce(); err != nil {
		return err
	}
	go h.loop()
	return nil
}

// Stop halts the periodic writer, writes one final snapshot (the
// campaign's end state, so the file never ends on a stale mid-run
// capture) and returns the first error any write encountered.
func (h *Heartbeat) Stop() error {
	close(h.stop)
	<-h.done
	if err := h.writeOnce(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}

// loop is the periodic writer.
func (h *Heartbeat) loop() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			if err := h.writeOnce(); err != nil {
				h.mu.Lock()
				if h.lastErr == nil {
					h.lastErr = err
				}
				h.mu.Unlock()
			}
		}
	}
}

// writeOnce captures, stamps and atomically publishes one snapshot.
// Writes are serialized under h.mu so the sequence number in the file is
// strictly increasing even when Stop's final write races a tick.
func (h *Heartbeat) writeOnce() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	s := h.source()
	s.Seq = h.seq
	s.UnixNano = time.Now().UnixNano()
	data, err := s.Encode()
	if err != nil {
		return fmt.Errorf("obs: heartbeat encode: %w", err)
	}
	return WriteFileAtomic(h.path, data)
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory and an atomic rename, so concurrent readers of path always
// see either the previous or the new complete content.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: heartbeat temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("obs: heartbeat write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: heartbeat close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: heartbeat publish: %w", err)
	}
	return nil
}
