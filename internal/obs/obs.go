// Package obs is the campaign observability layer: dependency-free
// metric primitives (atomic counters, gauges, fixed-bucket histograms), a
// named registry with JSON snapshots, a heartbeat file writer and an
// expvar/pprof HTTP endpoint.
//
// The design rule is that instrumentation must be free enough to stay on
// in production campaigns:
//
//   - Every metric operation (Inc, Add, Set, Observe) is a handful of
//     atomic instructions — no locks, no allocations, no branches beyond
//     the nil guard. The registry mutex is taken only at registration and
//     snapshot time, never on the update path.
//   - Every metric method is safe on a nil receiver and does nothing
//     there, and a nil *Registry hands out nil metrics. "Metrics off" is
//     therefore simply a nil registry: instrumented code calls the same
//     methods unconditionally, and the disabled path costs one
//     predictable branch.
//   - The truly hot paths (the DES kernel event loop) are not touched at
//     all: components keep their existing plain counters and flush deltas
//     into obs at coarse boundaries (end of a kernel run, end of an
//     experiment), so a campaign's per-event cost is identical with
//     metrics on or off.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe on a nil *Counter (they do nothing /
// return zero), which is how disabled instrumentation stays branch-cheap.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (a level, not a rate): queue
// depths, progress counts, configuration echoes. Like Counter it is
// nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation i lands in the first
// bucket whose upper bound is >= v, or in the implicit +Inf overflow
// bucket. Bucket bounds are fixed at construction, so Observe is a linear
// scan over a small array plus two atomic updates — no locks, no
// allocations, safe for any number of concurrent observers. Nil-safe like
// the other metric kinds.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf bucket implied
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram with the given ascending, finite
// bucket upper bounds. It panics on unordered or non-finite bounds —
// bucket layout is static program structure, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bound must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// DurationBounds is a general-purpose latency bucket layout in seconds,
// spanning sub-millisecond kernel operations to multi-minute experiments.
func DurationBounds() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300,
	}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum without landing in any meaningful bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a wall-clock duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot fills a HistogramSnapshot from the live buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.Sum()
	return s
}
