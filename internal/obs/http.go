package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// currentRegistry backs the process-wide "comfase" expvar variable: the
// most recently served registry. expvar's namespace is global and
// Publish panics on re-registration, so the variable is published once
// and reads through this pointer.
var (
	currentRegistry atomic.Pointer[Registry]
	publishOnce     sync.Once
)

// publishExpvar registers the "comfase" expvar exactly once.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("comfase", expvar.Func(func() any {
			return currentRegistry.Load().Snapshot()
		}))
	})
}

// Server is a live-observability HTTP listener for a running campaign.
// It serves:
//
//	/metrics       — the registry snapshot as JSON (same schema as the
//	                 heartbeat file)
//	/debug/vars    — expvar (Go runtime memstats + the "comfase" metric
//	                 snapshot)
//	/debug/pprof/  — the full net/http/pprof suite (profile, heap,
//	                 goroutine, trace, ...) for profiling a campaign
//	                 while it executes
//
// The server runs on its own mux, so importing this package never
// touches http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer starts serving the registry's metrics on addr (":0" selects
// an ephemeral port — read the result from Addr). The listener is bound
// synchronously, so an occupied port fails fast; requests are served on
// a background goroutine until Close.
func NewServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	currentRegistry.Store(reg)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := reg.Snapshot()
		s.UnixNano = time.Now().UnixNano()
		data, err := s.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight requests are abandoned — the
// endpoint is diagnostic, not transactional.
func (s *Server) Close() error { return s.srv.Close() }
