package obs

import (
	"reflect"
	"testing"
)

func TestLabelRendering(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"fabric.rows", nil, "fabric.rows"},
		{"fabric.rows", []string{"campaign"}, "fabric.rows"}, // odd pair ignored
		{"fabric.rows", []string{"campaign", "c1"}, `fabric.rows{campaign="c1"}`},
		{"fabric.rows", []string{"campaign", "c1", "state", "done"},
			`fabric.rows{campaign="c1",state="done"}`},
		{"m", []string{"k", `quo"te`}, `m{k="quo\"te"}`},
		{"m", []string{"k", `back\slash`}, `m{k="back\\slash"}`},
	}
	for _, tc := range cases {
		if got := Label(tc.name, tc.kv...); got != tc.want {
			t.Errorf("Label(%q, %v) = %q, want %q", tc.name, tc.kv, got, tc.want)
		}
	}
}

func TestSplitLabelRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"campaign", "c1"},
		{"campaign", "c1", "state", "running"},
		{"k", `quo"te`},
		{"k", `back\slash`},
		{"k", ""},
	}
	for _, kv := range cases {
		decorated := Label("fabric.campaign.rows", kv...)
		name, got := SplitLabel(decorated)
		if name != "fabric.campaign.rows" {
			t.Errorf("SplitLabel(%q) name = %q", decorated, name)
		}
		if len(kv) == 0 {
			if got != nil {
				t.Errorf("SplitLabel(%q) kv = %v, want nil", decorated, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, kv) {
			t.Errorf("SplitLabel(%q) kv = %v, want %v", decorated, got, kv)
		}
	}
}

func TestSplitLabelMalformedStaysOpaque(t *testing.T) {
	for _, s := range []string{
		"plain", "name{", `name{k="v"`, `name{k=v}`, `name{k="v"x}`, `name{k="v\}`,
	} {
		name, kv := SplitLabel(s)
		if name != s || kv != nil {
			t.Errorf("SplitLabel(%q) = %q, %v; want opaque passthrough", s, name, kv)
		}
	}
}

// TestLabeledMetricsInRegistry pins the intended use: per-campaign
// counters under one registry, distinct handles per label set, all
// visible in the snapshot under their decorated names.
func TestLabeledMetricsInRegistry(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter(Label("fabric.campaign.rows_merged", "campaign", "c1"))
	b := reg.Counter(Label("fabric.campaign.rows_merged", "campaign", "c2"))
	if a == b {
		t.Fatal("distinct labels resolved to the same counter")
	}
	a.Add(3)
	b.Inc()
	snap := reg.Snapshot()
	if snap.Counters[`fabric.campaign.rows_merged{campaign="c1"}`] != 3 {
		t.Errorf("c1 counter missing from snapshot: %v", snap.Counters)
	}
	if snap.Counters[`fabric.campaign.rows_merged{campaign="c2"}`] != 1 {
		t.Errorf("c2 counter missing from snapshot: %v", snap.Counters)
	}
}
