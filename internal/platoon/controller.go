// Package platoon is the Plexe substitute: longitudinal platooning
// controllers (the PATH constant-spacing CACC the paper's scenario uses,
// plus ACC and Ploeg CACC baselines for resilience comparisons) and the
// beaconing application that feeds them with communicated kinematic
// state.
//
// Per the paper (§III-C, §IV-D) the simulated vehicles carry no redundant
// distance sensors: every input to a follower's controller other than its
// own state arrives over the V2V channel. That is precisely why delaying
// or blocking beacons has safety consequences.
package platoon

import (
	"math"

	"comfase/internal/sim/des"
)

// KinState is the kinematic state of a platoon member as known to a
// follower through beacons — possibly stale under attack.
type KinState struct {
	// Pos is the front-bumper lane position (m).
	Pos float64
	// Speed in m/s.
	Speed float64
	// Accel in m/s^2.
	Accel float64
	// Length is the member's vehicle length (m).
	Length float64
	// Time is when the state was generated at the sender.
	Time des.Time
	// Valid reports whether any state has been received at all.
	Valid bool
}

// Snapshot is the follower's own (locally known, never stale) state plus
// its radar measurement of the predecessor. Like Plexe, the controllers
// take the spacing term from radar and the speed/acceleration
// feedforward terms from V2V beacons — so communication attacks corrupt
// the cooperative terms while the ego measurements stay truthful.
type Snapshot struct {
	// Pos is the front-bumper lane position (m).
	Pos float64
	// Speed in m/s.
	Speed float64
	// Accel in m/s^2.
	Accel float64
	// Length is the own vehicle length (m).
	Length float64
	// RadarGap is the measured bumper-to-bumper distance to the
	// predecessor (m).
	RadarGap float64
	// RadarRelSpeed is the measured closing speed: own speed minus
	// predecessor speed (m/s, positive = closing in).
	RadarRelSpeed float64
	// RadarValid reports whether a radar return is available.
	RadarValid bool
}

// Controller computes a follower's desired acceleration from its own
// state and the communicated leader/predecessor states. Controllers may
// be stateful (Ploeg); Update is called once per control period.
type Controller interface {
	// Name identifies the controller in configs and reports.
	Name() string
	// Update returns the desired acceleration (m/s^2) for the next
	// control period of dt seconds.
	Update(dt float64, self Snapshot, leader, pred KinState) float64
	// Reset clears internal controller state.
	Reset()
}

// CACC is the PATH/Rajamani constant-spacing cooperative adaptive cruise
// controller — the controller of the paper's demonstration scenario
// (§IV-A1, [30]). Desired acceleration:
//
//	u = a1*a_pred + a2*a_lead + a3*(v - v_pred) + a4*(v - v_lead) + a5*eps
//	eps = Spacing - gap      (positive = too close)
//
// with the alphas derived from C1, Xi, OmegaN exactly as in Plexe. The
// gap comes from radar when available (Plexe's CACC reads distance from
// radar) and falls back to the communicated predecessor position
// otherwise; speeds and accelerations always come from V2V beacons.
type CACC struct {
	// C1 weights leader vs predecessor acceleration (Plexe default 0.5).
	C1 float64
	// Xi is the damping ratio (Plexe default 1).
	Xi float64
	// OmegaN is the controller bandwidth in rad/s (Plexe default 0.2).
	OmegaN float64
	// Spacing is the constant bumper-to-bumper gap in metres (Plexe
	// default 5 m).
	Spacing float64
}

var _ Controller = (*CACC)(nil)

// DefaultCACC returns the Plexe-default parameterisation used by the
// paper's platooning scenario.
func DefaultCACC() *CACC {
	return &CACC{C1: 0.5, Xi: 1, OmegaN: 0.2, Spacing: 5}
}

// Name implements Controller.
func (c *CACC) Name() string { return "CACC" }

// Reset implements Controller (CACC is stateless).
func (c *CACC) Reset() {}

// Alphas returns the five gains derived from (C1, Xi, OmegaN).
func (c *CACC) Alphas() (a1, a2, a3, a4, a5 float64) {
	root := math.Sqrt(math.Max(c.Xi*c.Xi-1, 0))
	a1 = 1 - c.C1
	a2 = c.C1
	a3 = -(2*c.Xi - c.C1*(c.Xi+root)) * c.OmegaN
	a4 = -(c.Xi + root) * c.OmegaN * c.C1
	a5 = -c.OmegaN * c.OmegaN
	return a1, a2, a3, a4, a5
}

// Update implements Controller.
func (c *CACC) Update(_ float64, self Snapshot, leader, pred KinState) float64 {
	if !pred.Valid || !leader.Valid {
		return 0 // no communicated data yet: hold current speed
	}
	a1, a2, a3, a4, a5 := c.Alphas()
	var eps float64
	if self.RadarValid {
		eps = c.Spacing - self.RadarGap
	} else {
		eps = self.Pos - pred.Pos + pred.Length + c.Spacing
	}
	return a1*pred.Accel + a2*leader.Accel +
		a3*(self.Speed-pred.Speed) + a4*(self.Speed-leader.Speed) +
		a5*eps
}

// ACC is the PATH constant-time-headway adaptive cruise controller
// (Rajamani; Plexe's "ACC"). It is an autonomous controller: it relies
// on its own radar only —
//
//	u = -1/Headway * (dv + Lambda*(Headway*v - gap))
//
// which makes it immune to V2V attacks, the baseline contrast the
// related work (Heijden et al., Iorio et al.) draws against CACC. When
// no radar is modelled it degrades to communicated predecessor data.
type ACC struct {
	// Headway is the desired time gap in seconds (Plexe default 1.2 s).
	Headway float64
	// Lambda is the spacing-error gain (Plexe default 0.1).
	Lambda float64
}

var _ Controller = (*ACC)(nil)

// DefaultACC returns the Plexe-default ACC parameterisation.
func DefaultACC() *ACC {
	return &ACC{Headway: 1.2, Lambda: 0.1}
}

// Name implements Controller.
func (c *ACC) Name() string { return "ACC" }

// Reset implements Controller (ACC is stateless).
func (c *ACC) Reset() {}

// Update implements Controller.
func (c *ACC) Update(_ float64, self Snapshot, _, pred KinState) float64 {
	h := c.Headway
	if h <= 0 {
		h = 1.2
	}
	if self.RadarValid {
		eps := h*self.Speed - self.RadarGap
		return -(self.RadarRelSpeed + c.Lambda*eps) / h
	}
	if !pred.Valid {
		return 0
	}
	eps := self.Pos - pred.Pos + pred.Length + h*self.Speed
	return -(self.Speed - pred.Speed + c.Lambda*eps) / h
}

// Ploeg is the Ploeg et al. time-headway CACC, a dynamic controller whose
// command evolves as
//
//	h * du = -u + Kp*e + Kd*de + a_pred        (per control period)
//	e  = x_pred - x - L_pred - (R + h*v)
//	de = v_pred - v - h*a
//
// It needs predecessor acceleration over V2V, making it an interesting
// middle ground between ACC and PATH CACC for attack-resilience studies.
type Ploeg struct {
	// Headway is the time gap h in seconds (Plexe default 0.5 s).
	Headway float64
	// Kp is the spacing-error gain (Plexe default 0.2).
	Kp float64
	// Kd is the spacing-error-rate gain (Plexe default 0.7).
	Kd float64
	// Standstill is the standstill distance R in metres.
	Standstill float64

	// u is the controller's internal command state.
	u float64
}

var _ Controller = (*Ploeg)(nil)

// DefaultPloeg returns the Plexe-default Ploeg parameterisation.
func DefaultPloeg() *Ploeg {
	return &Ploeg{Headway: 0.5, Kp: 0.2, Kd: 0.7, Standstill: 2}
}

// Name implements Controller.
func (c *Ploeg) Name() string { return "PLOEG" }

// Reset implements Controller.
func (c *Ploeg) Reset() { c.u = 0 }

// Update implements Controller.
func (c *Ploeg) Update(dt float64, self Snapshot, _, pred KinState) float64 {
	if !pred.Valid || dt <= 0 {
		return c.u
	}
	h := c.Headway
	if h <= 0 {
		h = 0.5
	}
	var gap, dv float64
	if self.RadarValid {
		gap = self.RadarGap
		dv = -self.RadarRelSpeed
	} else {
		gap = pred.Pos - pred.Length - self.Pos
		dv = pred.Speed - self.Speed
	}
	e := gap - (c.Standstill + h*self.Speed)
	de := dv - h*self.Accel
	du := (-c.u + c.Kp*e + c.Kd*de + pred.Accel) / h
	c.u += du * dt
	return c.u
}
