package platoon

import (
	"math"
	"testing"
	"testing/quick"
)

func steady(pos, speed float64, length float64) KinState {
	return KinState{Pos: pos, Speed: speed, Length: length, Valid: true}
}

func TestCACCAlphasPlexeDefaults(t *testing.T) {
	c := DefaultCACC()
	a1, a2, a3, a4, a5 := c.Alphas()
	want := [5]float64{0.5, 0.5, -0.3, -0.1, -0.04}
	got := [5]float64{a1, a2, a3, a4, a5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("alpha%d = %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestCACCEquilibriumIsZero(t *testing.T) {
	// Perfect spacing, equal speeds, zero accelerations -> no command.
	c := DefaultCACC()
	self := Snapshot{Pos: 100, Speed: 25, Length: 4}
	pred := steady(109, 25, 4) // gap = 109-4-100 = 5 = Spacing
	leader := steady(118, 25, 4)
	if got := c.Update(0.01, self, leader, pred); math.Abs(got) > 1e-12 {
		t.Errorf("equilibrium command = %v, want 0", got)
	}
}

func TestCACCBrakesWhenTooClose(t *testing.T) {
	c := DefaultCACC()
	self := Snapshot{Pos: 103, Speed: 25, Length: 4}
	pred := steady(109, 25, 4) // gap 2 m < 5 m
	leader := steady(118, 25, 4)
	if got := c.Update(0.01, self, leader, pred); got >= 0 {
		t.Errorf("too-close command = %v, want negative", got)
	}
}

func TestCACCAcceleratesWhenTooFar(t *testing.T) {
	c := DefaultCACC()
	self := Snapshot{Pos: 90, Speed: 25, Length: 4}
	pred := steady(109, 25, 4) // gap 15 m > 5 m
	leader := steady(118, 25, 4)
	if got := c.Update(0.01, self, leader, pred); got <= 0 {
		t.Errorf("too-far command = %v, want positive", got)
	}
}

func TestCACCFeedforwardWeights(t *testing.T) {
	// At equilibrium spacing and matched speeds, the command is exactly
	// a1*a_pred + a2*a_lead.
	c := DefaultCACC()
	self := Snapshot{Pos: 100, Speed: 25, Length: 4}
	pred := steady(109, 25, 4)
	leader := steady(118, 25, 4)
	pred.Accel = 2
	leader.Accel = -1
	want := 0.5*2 + 0.5*(-1)
	if got := c.Update(0.01, self, leader, pred); math.Abs(got-want) > 1e-12 {
		t.Errorf("feedforward = %v, want %v", got, want)
	}
}

func TestCACCInvalidDataHolds(t *testing.T) {
	c := DefaultCACC()
	if got := c.Update(0.01, Snapshot{}, KinState{}, KinState{}); got != 0 {
		t.Errorf("command with no data = %v, want 0", got)
	}
}

// Property: the CACC command is monotonically decreasing in the spacing
// error (the closer we are, the harder we brake).
func TestCACCMonotoneInSpacingProperty(t *testing.T) {
	c := DefaultCACC()
	leader := steady(1000, 25, 4)
	f := func(gapA, gapB float64) bool {
		gapA = 1 + math.Mod(math.Abs(gapA), 50)
		gapB = 1 + math.Mod(math.Abs(gapB), 50)
		if gapA == gapB {
			return true
		}
		predPos := 500.0
		mk := func(gap float64) float64 {
			self := Snapshot{Pos: predPos - 4 - gap, Speed: 25, Length: 4}
			return c.Update(0.01, self, leader, steady(predPos, 25, 4))
		}
		a, b := mk(gapA), mk(gapB)
		if gapA < gapB {
			return a < b
		}
		return b < a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestACCDefaults(t *testing.T) {
	c := DefaultACC()
	if c.Name() != "ACC" {
		t.Errorf("Name = %q", c.Name())
	}
	// Equilibrium: gap = headway * speed -> zero command.
	speed := 25.0
	gap := c.Headway * speed
	predPos := 500.0
	self := Snapshot{Pos: predPos - 4 - gap, Speed: speed, Length: 4}
	if got := c.Update(0.01, self, KinState{}, steady(predPos, speed, 4)); math.Abs(got) > 1e-12 {
		t.Errorf("ACC equilibrium = %v, want 0", got)
	}
}

func TestACCBrakesWhenClosing(t *testing.T) {
	c := DefaultACC()
	predPos := 500.0
	self := Snapshot{Pos: predPos - 4 - 30, Speed: 30, Length: 4}
	pred := steady(predPos, 20, 4) // slower predecessor
	if got := c.Update(0.01, self, KinState{}, pred); got >= 0 {
		t.Errorf("closing-in command = %v, want negative", got)
	}
}

func TestACCInvalidDataHolds(t *testing.T) {
	c := DefaultACC()
	if got := c.Update(0.01, Snapshot{Speed: 20}, KinState{}, KinState{}); got != 0 {
		t.Errorf("command with no data = %v, want 0", got)
	}
}

func TestACCIgnoresLeader(t *testing.T) {
	c := DefaultACC()
	predPos := 500.0
	self := Snapshot{Pos: predPos - 4 - 30, Speed: 25, Length: 4}
	pred := steady(predPos, 25, 4)
	a := c.Update(0.01, self, KinState{}, pred)
	leader := steady(900, 10, 4)
	leader.Accel = -5
	b := c.Update(0.01, self, leader, pred)
	if a != b {
		t.Error("ACC used leader state")
	}
}

func TestPloegConvergesTowardPredAccel(t *testing.T) {
	c := DefaultPloeg()
	speed := 25.0
	gap := c.Standstill + c.Headway*speed
	predPos := 500.0
	self := Snapshot{Pos: predPos - 4 - gap, Speed: speed, Length: 4}
	pred := steady(predPos, speed, 4)
	pred.Accel = 1.0
	// Iterate the dynamic controller; it should approach pred.Accel.
	var u float64
	for i := 0; i < 500; i++ {
		u = c.Update(0.01, self, KinState{}, pred)
	}
	if math.Abs(u-1.0) > 0.05 {
		t.Errorf("Ploeg command after settling = %v, want ~1.0", u)
	}
}

func TestPloegResetClearsState(t *testing.T) {
	c := DefaultPloeg()
	pred := steady(500, 20, 4)
	pred.Accel = 2
	self := Snapshot{Pos: 480, Speed: 20, Length: 4}
	for i := 0; i < 100; i++ {
		c.Update(0.01, self, KinState{}, pred)
	}
	c.Reset()
	if got := c.Update(0, self, KinState{}, KinState{}); got != 0 {
		t.Errorf("post-reset command = %v, want 0", got)
	}
}

func TestPloegInvalidDataHoldsLastCommand(t *testing.T) {
	c := DefaultPloeg()
	if got := c.Update(0.01, Snapshot{}, KinState{}, KinState{}); got != 0 {
		t.Errorf("initial invalid-data command = %v, want 0", got)
	}
}

func TestControllerNames(t *testing.T) {
	for _, tt := range []struct {
		c    Controller
		want string
	}{
		{c: DefaultCACC(), want: "CACC"},
		{c: DefaultACC(), want: "ACC"},
		{c: DefaultPloeg(), want: "PLOEG"},
	} {
		if tt.c.Name() != tt.want {
			t.Errorf("Name = %q, want %q", tt.c.Name(), tt.want)
		}
		tt.c.Reset() // must not panic
	}
}
