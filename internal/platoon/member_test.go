package platoon

import (
	"testing"

	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/nic"
	"comfase/internal/phy"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
	"comfase/internal/vehicle"
	"comfase/internal/wave1609"
)

// memberRig is a two-member platoon (leader + one follower) on a real
// medium, without the traffic simulator: control steps are driven by
// hand.
type memberRig struct {
	k        *des.Kernel
	air      *nic.Air
	leader   *Member
	follower *Member
	lv, fv   *vehicle.Vehicle
}

func newMemberRig(t *testing.T) *memberRig {
	t.Helper()
	k := des.NewKernel()
	air, err := nic.NewAir(nic.Config{
		Kernel:   k,
		Channel:  phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("NewAir: %v", err)
	}
	lv, err := vehicle.New(vehicle.PaperCar("vehicle.1"), vehicle.State{Pos: 109, Speed: 25})
	if err != nil {
		t.Fatalf("vehicle.New: %v", err)
	}
	fv, err := vehicle.New(vehicle.PaperCar("vehicle.2"), vehicle.State{Pos: 100, Speed: 25})
	if err != nil {
		t.Fatalf("vehicle.New: %v", err)
	}
	params := DefaultParams("platoon.0")
	tracker := &traffic.SpeedTracker{Maneuver: traffic.ConstantSpeed{Speed: 25}}
	leader, err := NewMember(MemberConfig{
		Kernel: k, Vehicle: lv, Air: air, Params: params, Index: 0, Leader: tracker,
	})
	if err != nil {
		t.Fatalf("NewMember(leader): %v", err)
	}
	follower, err := NewMember(MemberConfig{
		Kernel: k, Vehicle: fv, Air: air, Params: params, Index: 1,
		Controller: DefaultCACC(),
		Radar: func() (float64, float64, bool) {
			return lv.State.Rear(lv.Spec.Length) - fv.State.Pos,
				fv.State.Speed - lv.State.Speed, true
		},
	})
	if err != nil {
		t.Fatalf("NewMember(follower): %v", err)
	}
	return &memberRig{k: k, air: air, leader: leader, follower: follower, lv: lv, fv: fv}
}

func TestNewMemberValidation(t *testing.T) {
	k := des.NewKernel()
	air, _ := nic.NewAir(nic.Config{
		Kernel:   k,
		Channel:  phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
	})
	veh, _ := vehicle.New(vehicle.PaperCar("v"), vehicle.State{})
	params := DefaultParams("p")
	tracker := &traffic.SpeedTracker{Maneuver: traffic.ConstantSpeed{Speed: 25}}

	tests := []struct {
		name string
		cfg  MemberConfig
	}{
		{name: "nil kernel", cfg: MemberConfig{Vehicle: veh, Air: air, Params: params, Leader: tracker}},
		{name: "nil vehicle", cfg: MemberConfig{Kernel: k, Air: air, Params: params, Leader: tracker}},
		{name: "nil air", cfg: MemberConfig{Kernel: k, Vehicle: veh, Params: params, Leader: tracker}},
		{name: "negative index", cfg: MemberConfig{Kernel: k, Vehicle: veh, Air: air, Params: params, Index: -1, Leader: tracker}},
		{name: "leader without tracker", cfg: MemberConfig{Kernel: k, Vehicle: veh, Air: air, Params: params, Index: 0}},
		{name: "follower without controller", cfg: MemberConfig{Kernel: k, Vehicle: veh, Air: air, Params: params, Index: 1}},
		{name: "bad params", cfg: MemberConfig{Kernel: k, Vehicle: veh, Air: air, Params: Params{}, Leader: tracker}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMember(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams("p").Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "empty id", mutate: func(p *Params) { p.ID = "" }},
		{name: "zero spacing", mutate: func(p *Params) { p.Spacing = 0 }},
		{name: "zero beacon", mutate: func(p *Params) { p.BeaconInterval = 0 }},
		{name: "zero payload", mutate: func(p *Params) { p.PayloadBits = 0 }},
		{name: "bad ac", mutate: func(p *Params) { p.AC = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams("p")
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestBeaconsPopulateFollowerCache(t *testing.T) {
	rig := newMemberRig(t)
	rig.leader.Start()
	rig.follower.Start()
	if err := rig.k.RunUntil(des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if rig.follower.RxCount() == 0 {
		t.Fatal("follower accepted no beacons")
	}
	lead := rig.follower.LeaderState()
	if !lead.Valid || lead.Pos != 109 || lead.Speed != 25 || lead.Length != 4 {
		t.Errorf("leader cache = %+v", lead)
	}
	pred := rig.follower.PredecessorState()
	if !pred.Valid || pred.Pos != lead.Pos {
		t.Errorf("pred cache = %+v (leader is the predecessor at index 1)", pred)
	}
	// The leader never caches anything (no predecessor, no leader above).
	if rig.leader.RxCount() != 0 {
		t.Errorf("leader cached %d beacons", rig.leader.RxCount())
	}
}

func TestStaleBeaconDoesNotRollBackCache(t *testing.T) {
	rig := newMemberRig(t)
	fresh := msg.Beacon{
		Source: "vehicle.1", PlatoonID: "platoon.0", PlatoonIndex: 0,
		SentAt: 10 * des.Second, Speed: 30, Pos: 200, Length: 4,
	}
	stale := fresh
	stale.SentAt = 5 * des.Second
	stale.Speed = 11

	rig.follower.Seed(KinState{}, KinState{})
	injectBeacon(rig.follower, fresh)
	injectBeacon(rig.follower, stale)
	if got := rig.follower.LeaderState().Speed; got != 30 {
		t.Errorf("stale beacon rolled cache back: speed %v", got)
	}
}

func TestForeignPlatoonBeaconIgnored(t *testing.T) {
	rig := newMemberRig(t)
	foreign := msg.Beacon{
		Source: "stranger", PlatoonID: "platoon.OTHER", PlatoonIndex: 0,
		SentAt: des.Second, Speed: 99,
	}
	injectBeacon(rig.follower, foreign)
	if rig.follower.LeaderState().Speed == 99 {
		t.Error("foreign-platoon beacon accepted")
	}
	if rig.follower.RxCount() != 0 {
		t.Error("foreign beacon counted")
	}
}

func TestNonBeaconPayloadIgnored(t *testing.T) {
	rig := newMemberRig(t)
	f := mac.Frame{Src: "vehicle.1", Bits: 424, AC: mac.ACVideo, Payload: "not a beacon"}
	rig.follower.handleRx(f, nic.RxMeta{})
	if rig.follower.RxCount() != 0 {
		t.Error("non-beacon payload accepted")
	}
}

func TestControlStepLeaderTracksManeuver(t *testing.T) {
	rig := newMemberRig(t)
	rig.lv.State.Speed = 20 // below the 25 m/s target
	rig.leader.ControlStep(0, 0.01)
	if rig.lv.Commanded() <= 0 {
		t.Errorf("leader command = %v, want positive toward target", rig.lv.Commanded())
	}
}

func TestControlStepFollowerUsesCachesAndRadar(t *testing.T) {
	rig := newMemberRig(t)
	rig.follower.Seed(
		KinState{Pos: 109, Speed: 25, Length: 4},
		KinState{Pos: 109, Speed: 25, Length: 4},
	)
	// Equilibrium: gap 5 m, matched speeds -> ~zero command.
	rig.follower.ControlStep(0, 0.01)
	if cmd := rig.fv.Commanded(); cmd < -0.01 || cmd > 0.01 {
		t.Errorf("equilibrium command = %v", cmd)
	}
	// Shrink the true gap; radar harvests it even with stale comms.
	rig.fv.State.Pos = 103
	rig.follower.ControlStep(0, 0.01)
	if cmd := rig.fv.Commanded(); cmd >= 0 {
		t.Errorf("close-gap command = %v, want braking", cmd)
	}
}

func TestStopDisarmsBeacons(t *testing.T) {
	rig := newMemberRig(t)
	rig.leader.Start()
	rig.leader.Stop()
	if err := rig.k.RunUntil(des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if rig.follower.RxCount() != 0 {
		t.Error("beacons sent after Stop")
	}
}

func TestSeedNoopForLeader(t *testing.T) {
	rig := newMemberRig(t)
	rig.leader.Seed(KinState{Speed: 99}, KinState{Speed: 99})
	if rig.leader.LeaderState().Valid {
		t.Error("leader cache seeded")
	}
}

func TestMemberAccessors(t *testing.T) {
	rig := newMemberRig(t)
	if rig.follower.ID() != "vehicle.2" || rig.follower.Index() != 1 {
		t.Error("accessors wrong")
	}
	if rig.follower.Vehicle() != rig.fv || rig.follower.Radio() == nil {
		t.Error("vehicle/radio accessors wrong")
	}
	if rig.follower.Controller().Name() != "CACC" {
		t.Error("controller accessor wrong")
	}
}

// injectBeacon feeds a beacon directly into the member's rx path.
func injectBeacon(m *Member, b msg.Beacon) {
	m.handleRx(macFrame(b.Source, b), nic.RxMeta{})
}

func macFrame(src string, b msg.Beacon) mac.Frame {
	return mac.Frame{Src: src, Bits: 424, AC: mac.ACVideo, Beacon: b, HasBeacon: true}
}
