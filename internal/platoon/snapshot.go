package platoon

import "comfase/internal/sim/des"

// ControllerState is the portable snapshot of a follower controller's
// internal state. All shipped controllers fit in it: CACC and ACC are
// stateless, Ploeg carries its dynamic command u.
type ControllerState struct {
	// U is the dynamic command state (Ploeg's u; unused by the stateless
	// controllers).
	U float64
}

// StatefulController extends Controller with checkpoint hooks. A
// controller that keeps internal state across Update calls must implement
// it to participate in prefix-checkpoint forking; the engine falls back
// to fresh per-experiment builds for controllers that do not.
type StatefulController interface {
	Controller
	// SaveState captures the controller's internal state.
	SaveState() ControllerState
	// LoadState restores state captured by SaveState.
	LoadState(ControllerState)
}

// SaveState implements StatefulController (CACC is stateless).
func (c *CACC) SaveState() ControllerState { return ControllerState{} }

// LoadState implements StatefulController (CACC is stateless).
func (c *CACC) LoadState(ControllerState) {}

// SaveState implements StatefulController (ACC is stateless).
func (c *ACC) SaveState() ControllerState { return ControllerState{} }

// LoadState implements StatefulController (ACC is stateless).
func (c *ACC) LoadState(ControllerState) {}

// SaveState implements StatefulController.
func (c *Ploeg) SaveState() ControllerState { return ControllerState{U: c.u} }

// LoadState implements StatefulController.
func (c *Ploeg) LoadState(st ControllerState) { c.u = st.U }

var (
	_ StatefulController = (*CACC)(nil)
	_ StatefulController = (*ACC)(nil)
	_ StatefulController = (*Ploeg)(nil)
)

// MemberState is a restorable snapshot of a platoon member's mutable
// state: beacon caches and counters, the beacon ticker, and the follower
// controller's internal state. The radio and vehicle are snapshotted by
// their own layers; the wiring (kernel, radar, AEB thresholds, params) is
// build-time configuration, stable across a checkpointed experiment
// group.
type MemberState struct {
	Leader         KinState
	Pred           KinState
	BeaconSeq      uint64
	RxCount        uint64
	AEBActivations uint64
	Beacons        des.TickerState
	Ctrl           ControllerState
}

// Checkpointable reports whether the member's state can be fully captured
// by SaveState: true unless a custom follower controller keeps state the
// StatefulController interface cannot reach.
func (m *Member) Checkpointable() bool {
	if m.ctrl == nil {
		return true
	}
	_, ok := m.ctrl.(StatefulController)
	return ok
}

// SaveState captures the member's mutable state. It must be paired with a
// Kernel snapshot taken at the same instant: the beacon ticker's pending
// event is a kernel event.
func (m *Member) SaveState(st *MemberState) {
	st.Leader = m.leaderCache
	st.Pred = m.predCache
	st.BeaconSeq = m.beaconSeq
	st.RxCount = m.rxCount
	st.AEBActivations = m.aebActivations
	st.Beacons = m.beacons.SaveState()
	if sc, ok := m.ctrl.(StatefulController); ok {
		st.Ctrl = sc.SaveState()
	} else {
		st.Ctrl = ControllerState{}
	}
}

// LoadState restores state captured by SaveState.
func (m *Member) LoadState(st *MemberState) {
	m.leaderCache = st.Leader
	m.predCache = st.Pred
	m.beaconSeq = st.BeaconSeq
	m.rxCount = st.RxCount
	m.aebActivations = st.AEBActivations
	m.beacons.LoadState(st.Beacons)
	if sc, ok := m.ctrl.(StatefulController); ok {
		sc.LoadState(st.Ctrl)
	}
}
