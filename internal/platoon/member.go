package platoon

import (
	"errors"
	"fmt"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/msg"
	"comfase/internal/nic"
	"comfase/internal/safety"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
	"comfase/internal/vehicle"
)

// Params configures a platoon, matching the communication and vehicle
// configuration of ComFASE Step-1.
type Params struct {
	// ID names the platoon.
	ID string
	// Spacing is the CACC constant gap in metres (5 m default).
	Spacing float64
	// BeaconInterval is the beaconingTime of the CommModel (paper:
	// 0.1 s).
	BeaconInterval des.Time
	// PayloadBits is the packetSize of the CommModel (paper: 200 bits).
	PayloadBits int
	// AC is the EDCA access category for beacons.
	AC mac.AccessCategory
}

// DefaultParams returns the paper's communication parameters (§IV-A2):
// 200-bit packets every 0.1 s.
func DefaultParams(id string) Params {
	return Params{
		ID:             id,
		Spacing:        5,
		BeaconInterval: 100 * des.Millisecond,
		PayloadBits:    200,
		AC:             mac.ACVideo,
	}
}

// Validate reports the first parameter problem, or nil.
func (p Params) Validate() error {
	switch {
	case p.ID == "":
		return errors.New("platoon: ID must be non-empty")
	case p.Spacing <= 0:
		return errors.New("platoon: spacing must be positive")
	case p.BeaconInterval <= 0:
		return errors.New("platoon: beacon interval must be positive")
	case p.PayloadBits <= 0:
		return errors.New("platoon: payload bits must be positive")
	case !p.AC.Valid():
		return errors.New("platoon: invalid access category")
	}
	return nil
}

// MemberConfig wires one vehicle into a platoon.
type MemberConfig struct {
	// Kernel drives the beacon ticker (required).
	Kernel *des.Kernel
	// Vehicle is the managed vehicle (required).
	Vehicle *vehicle.Vehicle
	// Air is the shared medium to attach the member's radio to
	// (required).
	Air *nic.Air
	// Params are the platoon-wide parameters.
	Params Params
	// Index is the position in the platoon: 0 = leader. The paper's
	// "Vehicle 1" is index 0 and the attacked "Vehicle 2" is index 1.
	Index int
	// Controller computes follower accelerations; required for
	// followers, ignored for the leader.
	Controller Controller
	// Leader is the leader's maneuver tracker; required for the leader,
	// ignored for followers.
	Leader *traffic.SpeedTracker
	// LaneY maps the vehicle's lane index to the antenna's lateral world
	// coordinate. Optional; defaults to 3.2 m lanes.
	LaneY func(lane int) float64
	// Radar measures the true bumper-to-bumper gap and closing speed to
	// the predecessor (Plexe's radar sensor feeding the controllers'
	// spacing terms). Optional; without it controllers fall back to
	// communicated positions.
	Radar func() (gap, relSpeed float64, ok bool)
	// AEB, when non-nil, monitors the radar and overrides the
	// controller with an emergency brake on imminent collisions — the
	// redundant safety mechanism of the paper's future-work section.
	// Requires Radar; ignored for the leader.
	AEB *safety.AEB
}

// Member is one vehicle's platooning application instance: it broadcasts
// beacons, caches leader/predecessor state from received beacons, and
// commands the vehicle every control step.
type Member struct {
	k      *des.Kernel
	veh    *vehicle.Vehicle
	radio  *nic.Radio
	params Params
	index  int

	ctrl    Controller
	tracker *traffic.SpeedTracker
	radar   func() (gap, relSpeed float64, ok bool)
	aeb     *safety.AEB
	laneY   func(lane int) float64

	// posFn and rxFn are the radio wiring callbacks, created once so a
	// pooled member re-registers its radio without allocating closures.
	posFn func() geo.Vec
	rxFn  nic.RxHandler
	// aebActivations counts control steps on which the AEB overrode the
	// controller.
	aebActivations uint64

	leaderCache KinState
	predCache   KinState

	beaconSeq uint64
	beacons   *des.Ticker

	// rxCount counts beacons accepted into a cache.
	rxCount uint64
}

// NewMember attaches a platooning application to a vehicle and registers
// its radio on the medium.
func NewMember(cfg MemberConfig) (*Member, error) {
	m := &Member{}
	m.posFn = func() geo.Vec {
		return geo.Vec{X: m.veh.State.Pos, Y: m.laneY(m.veh.State.Lane)}
	}
	m.rxFn = m.handleRx
	m.beacons = des.NewTicker(nil, des.Millisecond, des.PriorityNormal, m.sendBeacon)
	if err := m.Reset(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset reinitialises the member in place for a new experiment: caches
// and counters are zeroed, the radio is re-registered on the (reset)
// medium, and the beacon ticker is re-targeted. A pooled, reset member
// behaves exactly like one freshly built by NewMember.
func (m *Member) Reset(cfg MemberConfig) error {
	switch {
	case cfg.Kernel == nil:
		return errors.New("platoon: Kernel is required")
	case cfg.Vehicle == nil:
		return errors.New("platoon: Vehicle is required")
	case cfg.Air == nil:
		return errors.New("platoon: Air is required")
	case cfg.Index < 0:
		return errors.New("platoon: negative index")
	}
	if err := cfg.Params.Validate(); err != nil {
		return err
	}
	if cfg.Index == 0 && cfg.Leader == nil {
		return errors.New("platoon: leader requires a maneuver tracker")
	}
	if cfg.Index > 0 && cfg.Controller == nil {
		return errors.New("platoon: follower requires a controller")
	}
	if cfg.AEB != nil {
		if err := cfg.AEB.Validate(); err != nil {
			return err
		}
		if cfg.Index > 0 && cfg.Radar == nil {
			return errors.New("platoon: AEB requires a radar")
		}
	}
	laneY := cfg.LaneY
	if laneY == nil {
		laneY = func(lane int) float64 { return (float64(lane) + 0.5) * 3.2 }
	}
	m.k = cfg.Kernel
	m.veh = cfg.Vehicle
	m.params = cfg.Params
	m.index = cfg.Index
	m.ctrl = cfg.Controller
	m.tracker = cfg.Leader
	m.radar = cfg.Radar
	m.aeb = cfg.AEB
	m.laneY = laneY
	m.aebActivations = 0
	m.leaderCache = KinState{}
	m.predCache = KinState{}
	m.beaconSeq = 0
	m.rxCount = 0
	radio, err := cfg.Air.AddRadio(cfg.Vehicle.Spec.ID, m.posFn, m.rxFn)
	if err != nil {
		return fmt.Errorf("platoon: add radio: %w", err)
	}
	m.radio = radio
	m.beacons.Rebind(cfg.Kernel, cfg.Params.BeaconInterval)
	return nil
}

// ID returns the member's vehicle ID.
func (m *Member) ID() string { return m.veh.Spec.ID }

// Index returns the member's platoon position (0 = leader).
func (m *Member) Index() int { return m.index }

// Vehicle returns the managed vehicle.
func (m *Member) Vehicle() *vehicle.Vehicle { return m.veh }

// Radio returns the member's network interface.
func (m *Member) Radio() *nic.Radio { return m.radio }

// Controller returns the follower controller (nil for the leader).
func (m *Member) Controller() Controller { return m.ctrl }

// RxCount reports how many beacons were accepted into the caches.
func (m *Member) RxCount() uint64 { return m.rxCount }

// AEBActivations reports how many control steps the AEB monitor
// intervened on (zero without a monitor).
func (m *Member) AEBActivations() uint64 { return m.aebActivations }

// LeaderState returns the cached leader state.
func (m *Member) LeaderState() KinState { return m.leaderCache }

// PredecessorState returns the cached predecessor state.
func (m *Member) PredecessorState() KinState { return m.predCache }

// Seed primes the caches with ground-truth initial states, modelling a
// platoon that was already formed before the simulation window (Plexe
// scenarios start with an established platoon).
func (m *Member) Seed(leader, pred KinState) {
	if m.index == 0 {
		return
	}
	leader.Valid = true
	pred.Valid = true
	m.leaderCache = leader
	m.predCache = pred
}

// Start arms the beacon ticker. Beacons are phase-staggered by platoon
// index (2.5 ms apart) so the CAMs of a freshly started platoon do not
// all contend at the same instant.
func (m *Member) Start() {
	offset := des.Time(m.index) * 2500 * des.Microsecond
	m.beacons.Start(m.k.Now().Add(offset).Add(m.params.BeaconInterval))
}

// Stop disarms the beacon ticker.
func (m *Member) Stop() { m.beacons.StopTicker() }

// sendBeacon broadcasts the member's current kinematic state.
func (m *Member) sendBeacon() {
	m.beaconSeq++
	b := msg.Beacon{
		Source:       m.veh.Spec.ID,
		Seq:          m.beaconSeq,
		SentAt:       m.k.Now(),
		PlatoonID:    m.params.ID,
		PlatoonIndex: m.index,
		Pos:          m.veh.State.Pos,
		Lane:         m.veh.State.Lane,
		Speed:        m.veh.State.Speed,
		Accel:        m.veh.State.Accel,
		Length:       m.veh.Spec.Length,
	}
	// Queue-full drops are legitimate MAC behaviour under attack-induced
	// congestion; the next beacon will carry fresher state anyway.
	_ = m.radio.SendBeacon(b, m.params.PayloadBits, m.params.AC, m.beaconSeq)
}

// handleRx caches leader/predecessor beacons. Only fresher states (by
// sender time stamp) replace the cache, so a delayed frame that arrives
// after a newer one cannot roll the cache back.
func (m *Member) handleRx(f mac.Frame, meta nic.RxMeta) {
	if !f.HasBeacon || f.Beacon.PlatoonID != m.params.ID {
		return
	}
	b := f.Beacon
	st := KinState{
		Pos:    b.Pos,
		Speed:  b.Speed,
		Accel:  b.Accel,
		Length: b.Length,
		Time:   b.SentAt,
		Valid:  true,
	}
	accepted := false
	if b.PlatoonIndex == 0 && m.index > 0 && b.SentAt >= m.leaderCache.Time {
		m.leaderCache = st
		accepted = true
	}
	if b.PlatoonIndex == m.index-1 && b.SentAt >= m.predCache.Time {
		m.predCache = st
		accepted = true
	}
	if accepted {
		m.rxCount++
	}
}

// ControlStep computes and issues the member's acceleration command. It
// is registered as a traffic pre-step hook; dt is the control period in
// seconds.
func (m *Member) ControlStep(now des.Time, dt float64) {
	if m.index == 0 {
		m.veh.Command(m.tracker.Accel(now.Seconds(), m.veh.State))
		return
	}
	self := Snapshot{
		Pos:    m.veh.State.Pos,
		Speed:  m.veh.State.Speed,
		Accel:  m.veh.State.Accel,
		Length: m.veh.Spec.Length,
	}
	if m.radar != nil {
		self.RadarGap, self.RadarRelSpeed, self.RadarValid = m.radar()
	}
	cmd := m.ctrl.Update(dt, self, m.leaderCache, m.predCache)
	if m.aeb != nil && self.RadarValid {
		filtered, active := m.aeb.Filter(cmd, self.RadarGap, self.RadarRelSpeed)
		if active {
			m.aebActivations++
		}
		cmd = filtered
	}
	m.veh.Command(cmd)
}
