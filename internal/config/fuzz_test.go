package config

import (
	"strings"
	"testing"
)

// FuzzParse ensures arbitrary (possibly hostile) config documents never
// panic the parser: they either build a valid experiment or return an
// error.
func FuzzParse(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"seed": 7}`)
	f.Add(`{"campaign": {"attack": "delay",
	  "valuesS": {"values": [1]},
	  "startTimesS": {"values": [17]},
	  "durationsS": {"values": [10]}}}`)
	f.Add(`{"scenario": {"nrVehicles": -3}}`)
	f.Add(`{"comm": {"pathLoss": "tworay", "fading": "nakagami"}}`)
	f.Add(`{"campaign": {"valuesS": {"range": {"from": 3, "to": 1, "step": 0}}}}`)
	f.Add(`[1,2,3]`)
	f.Add(`"not an object"`)
	f.Add(`{"scenario": {"maneuver": {"type": "braking", "decelMps2": 1e308}}}`)

	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Parse(strings.NewReader(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be internally consistent.
		if p.Seed == 0 {
			t.Errorf("accepted config with zero seed")
		}
		if err := p.Engine.Scenario.Validate(); err != nil {
			t.Errorf("accepted invalid scenario: %v", err)
		}
		if err := p.Engine.Comm.Validate(); err != nil {
			t.Errorf("accepted invalid comm model: %v", err)
		}
		if err := p.Campaign.Validate(); err != nil {
			t.Errorf("accepted invalid campaign: %v", err)
		}
	})
}
