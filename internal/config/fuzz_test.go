package config

import (
	"strings"
	"testing"

	"comfase/internal/runner"
)

// FuzzParse ensures arbitrary (possibly hostile) config documents never
// panic the parser: they either build a valid experiment or return an
// error.
func FuzzParse(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"seed": 7}`)
	f.Add(`{"campaign": {"attack": "delay",
	  "valuesS": {"values": [1]},
	  "startTimesS": {"values": [17]},
	  "durationsS": {"values": [10]}}}`)
	f.Add(`{"scenario": {"nrVehicles": -3}}`)
	f.Add(`{"comm": {"pathLoss": "tworay", "fading": "nakagami"}}`)
	f.Add(`{"campaign": {"valuesS": {"range": {"from": 3, "to": 1, "step": 0}}}}`)
	f.Add(`[1,2,3]`)
	f.Add(`"not an object"`)
	f.Add(`{"scenario": {"maneuver": {"type": "braking", "decelMps2": 1e308}}}`)

	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Parse(strings.NewReader(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be internally consistent.
		if p.Seed == 0 {
			t.Errorf("accepted config with zero seed")
		}
		if len(p.Cells) > 0 {
			// Matrix config: the per-cell setups carry the invariants.
			validateCells(t, p.Cells)
			return
		}
		if err := p.Engine.Scenario.Validate(); err != nil {
			t.Errorf("accepted invalid scenario: %v", err)
		}
		if err := p.Engine.Comm.Validate(); err != nil {
			t.Errorf("accepted invalid comm model: %v", err)
		}
		if err := p.Campaign.Validate(); err != nil {
			t.Errorf("accepted invalid campaign: %v", err)
		}
	})
}

// validateCells asserts the invariants every accepted matrix expansion
// must hold: valid per-cell scenario/comm/setup and a contiguous global
// expNr space in cell order.
func validateCells(t *testing.T, cells []runner.MatrixCell) {
	t.Helper()
	base := 0
	for i, cell := range cells {
		if err := cell.Engine.Scenario.Validate(); err != nil {
			t.Errorf("cell %d: accepted invalid scenario: %v", i, err)
		}
		if err := cell.Engine.Comm.Validate(); err != nil {
			t.Errorf("cell %d: accepted invalid comm model: %v", i, err)
		}
		if err := cell.Setup.Validate(); err != nil {
			t.Errorf("cell %d: accepted invalid setup: %v", i, err)
		}
		if cell.Setup.Base != base {
			t.Errorf("cell %d: base %d, want contiguous %d", i, cell.Setup.Base, base)
		}
		if cell.Scenario == "" || cell.Attack == "" {
			t.Errorf("cell %d: empty identity %q/%q", i, cell.Scenario, cell.Attack)
		}
		base += cell.Setup.NumExperiments()
	}
}

// FuzzMatrixConfigDecode drives arbitrary documents through the matrix
// section: accepted documents must expand to a well-formed grid and —
// the property shard/resume/merge rest on — re-expand to the identical
// grid on a second parse.
func FuzzMatrixConfigDecode(f *testing.F) {
	f.Add(`{"matrix": {
	  "scenarios": [{"name": "paper-platoon"}],
	  "attacks": [{"name": "delay",
	    "valuesS": {"values": [1]},
	    "startTimesS": {"values": [17]},
	    "durationsS": {"values": [10]}}]}}`)
	f.Add(`{"matrix": {
	  "scenarios": [{"name": "platoon", "label": "p8", "params": {"nrVehicles": 8}},
	                {"name": "teleop", "params": {"watchdogS": 0.5}}],
	  "attacks": [{"name": "dos",
	    "valuesS": {"values": [60]},
	    "startTimesS": {"range": {"from": 17, "to": 21, "step": 2}},
	    "durationsS": {"values": [60]}}]}}`)
	f.Add(`{"matrix": {"scenarios": [{"name": "platoon", "params": {"nrVehicles": 99}}],
	  "attacks": [{"name": "delay"}]}}`)
	f.Add(`{"matrix": {"scenarios": [{"name": "nope"}], "attacks": [{"name": "delay"}]}}`)
	f.Add(`{"campaign": {"attack": "delay"}, "matrix": {"scenarios": [], "attacks": []}}`)
	f.Add(`{"matrix": {}}`)

	f.Fuzz(func(t *testing.T, doc string) {
		p, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		if len(p.Cells) == 0 {
			return
		}
		validateCells(t, p.Cells)
		// Determinism: the same document expands to the same grid.
		again, err := Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("second parse rejected an accepted document: %v", err)
		}
		if len(again.Cells) != len(p.Cells) {
			t.Fatalf("re-expansion has %d cells, want %d", len(again.Cells), len(p.Cells))
		}
		for i := range p.Cells {
			a, b := p.Cells[i], again.Cells[i]
			if a.Scenario != b.Scenario || a.Attack != b.Attack || a.Setup.Base != b.Setup.Base ||
				a.Setup.NumExperiments() != b.Setup.NumExperiments() {
				t.Errorf("cell %d differs across parses: %s/%s base=%d n=%d vs %s/%s base=%d n=%d",
					i, a.Scenario, a.Attack, a.Setup.Base, a.Setup.NumExperiments(),
					b.Scenario, b.Attack, b.Setup.Base, b.Setup.NumExperiments())
			}
		}
	})
}
