package config

import (
	"math"
	"strings"
	"testing"
	"time"

	"comfase/internal/core"
	"comfase/internal/runner"
	"comfase/internal/sim/des"
)

func TestRangeExpand(t *testing.T) {
	tests := []struct {
		name string
		r    Range
		want []float64
	}{
		{name: "paper PD values", r: Range{From: 0.2, To: 3.0, Step: 0.2},
			want: nil /* length checked below */},
		{name: "single point", r: Range{From: 5, To: 5, Step: 1}, want: []float64{5}},
		{name: "two points", r: Range{From: 1, To: 2, Step: 1}, want: []float64{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.r.Expand()
			if err != nil {
				t.Fatalf("Expand: %v", err)
			}
			if tt.want != nil {
				if len(got) != len(tt.want) {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
				for i := range tt.want {
					if got[i] != tt.want[i] {
						t.Fatalf("got %v, want %v", got, tt.want)
					}
				}
			}
		})
	}
	// The paper's PD range must land exactly 15 values despite float steps.
	got, err := (Range{From: 0.2, To: 3.0, Step: 0.2}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Errorf("PD range has %d values, want 15: %v", len(got), got)
	}
	if math.Abs(got[14]-3.0) > 1e-9 {
		t.Errorf("last PD = %v, want 3.0", got[14])
	}
}

func TestRangeExpandErrors(t *testing.T) {
	if _, err := (Range{From: 1, To: 2, Step: 0}).Expand(); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := (Range{From: 2, To: 1, Step: 1}).Expand(); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestVectorExpandMergesListAndRange(t *testing.T) {
	v := Vector{Values: []float64{60}, Range: &Range{From: 1, To: 3, Step: 1}}
	got, err := v.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(got) != 4 || got[0] != 60 || got[3] != 3 {
		t.Errorf("Expand = %v", got)
	}
}

func TestManeuverConfigBuild(t *testing.T) {
	if _, err := (ManeuverConfig{Type: "warp"}).Build(); err == nil {
		t.Error("unknown maneuver accepted")
	}
	m, err := (ManeuverConfig{}).Build()
	if err != nil {
		t.Fatalf("default maneuver: %v", err)
	}
	if m.TargetSpeed(0) <= 0 {
		t.Error("default maneuver has no speed")
	}
	c, err := (ManeuverConfig{Type: "constant", BaseSpeedMps: 30}).Build()
	if err != nil {
		t.Fatalf("constant: %v", err)
	}
	if c.TargetSpeed(10) != 30 {
		t.Errorf("constant speed = %v", c.TargetSpeed(10))
	}
	b, err := (ManeuverConfig{Type: "braking", BaseSpeedMps: 30, FinalSpeedMps: 10,
		BrakeAtS: 5, DecelMps2: 4}).Build()
	if err != nil {
		t.Fatalf("braking: %v", err)
	}
	if b.TargetSpeed(100) != 10 {
		t.Errorf("braking final speed = %v", b.TargetSpeed(100))
	}
}

func TestScenarioConfigOverrides(t *testing.T) {
	ts, err := (ScenarioConfig{
		NrVehicles:    6,
		TotalSimTimeS: 30,
		MaxDecelMps2:  6,
	}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ts.NrVehicles != 6 || ts.TotalSimTime != 30*des.Second || ts.VehicleTemplate.MaxDecel != 6 {
		t.Errorf("overrides not applied: %+v", ts)
	}
	// Untouched fields keep paper defaults.
	if ts.Road.Length != 9400 || ts.VehicleTemplate.Length != 4 {
		t.Error("defaults lost")
	}
	if _, err := (ScenarioConfig{Lane: 99}).Build(); err == nil {
		t.Error("invalid lane accepted")
	}
}

func TestCommConfigOverrides(t *testing.T) {
	cm, err := (CommConfig{PathLoss: "tworay", AccessMode: "alternating",
		PacketBits: 400, BeaconIntervalS: 0.05, Decider: "probabilistic"}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cm.Channel.PathLoss.Name() != "tworay" {
		t.Error("path loss override lost")
	}
	if cm.PacketBits != 400 || cm.BeaconInterval != 50*des.Millisecond {
		t.Error("packet/beacon overrides lost")
	}
	for _, bad := range []CommConfig{
		{PathLoss: "magic"}, {AccessMode: "sometimes"}, {Decider: "vibes"},
	} {
		if _, err := bad.Build(); err == nil {
			t.Errorf("bad comm config accepted: %+v", bad)
		}
	}
}

func TestCampaignConfigBuild(t *testing.T) {
	cc := CampaignConfig{
		Attack:      "delay",
		ValuesS:     Vector{Range: &Range{From: 0.2, To: 3.0, Step: 0.2}},
		StartTimesS: Vector{Range: &Range{From: 17, To: 21.8, Step: 0.2}},
		DurationsS:  Vector{Range: &Range{From: 1, To: 30, Step: 1}},
	}
	setup, err := cc.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if setup.NumExperiments() != 11250 {
		t.Errorf("experiments = %d, want 11250 (Table II)", setup.NumExperiments())
	}
	if setup.Targets[0] != "vehicle.2" {
		t.Errorf("default target = %v", setup.Targets)
	}
	if setup.Attack != core.AttackDelay {
		t.Errorf("attack = %v", setup.Attack)
	}
}

func TestCampaignConfigErrors(t *testing.T) {
	good := func() CampaignConfig {
		return CampaignConfig{
			Attack:      "dos",
			ValuesS:     Vector{Values: []float64{60}},
			StartTimesS: Vector{Values: []float64{17}},
			DurationsS:  Vector{Values: []float64{60}},
		}
	}
	if _, err := good().Build(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good()
	bad.Attack = "quantum"
	if _, err := bad.Build(); err == nil {
		t.Error("unknown attack accepted")
	}
	bad = good()
	bad.ValuesS = Vector{}
	if _, err := bad.Build(); err == nil {
		t.Error("empty values accepted")
	}
	bad = good()
	bad.DurationsS = Vector{Range: &Range{From: 3, To: 1, Step: 1}}
	if _, err := bad.Build(); err == nil {
		t.Error("bad duration range accepted")
	}
}

func TestControllerFactory(t *testing.T) {
	for _, name := range []string{"", "cacc", "acc", "ploeg"} {
		f, err := ControllerFactory(name)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if f(1) == nil {
			t.Errorf("%q produced nil controller", name)
		}
	}
	if _, err := ControllerFactory("pid"); err == nil {
		t.Error("unknown controller accepted")
	}
}

func TestParseFullDocument(t *testing.T) {
	doc := `{
	  "seed": 7,
	  "controller": "cacc",
	  "scenario": {"totalSimTimeS": 60},
	  "comm": {"packetBits": 200, "beaconIntervalS": 0.1},
	  "campaign": {
	    "attack": "delay",
	    "targets": ["vehicle.2"],
	    "valuesS": {"range": {"from": 0.2, "to": 3.0, "step": 0.2}},
	    "startTimesS": {"range": {"from": 17, "to": 21.8, "step": 0.2}},
	    "durationsS": {"range": {"from": 1, "to": 30, "step": 1}}
	  }
	}`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 7 {
		t.Errorf("seed = %d", p.Seed)
	}
	if p.Campaign.NumExperiments() != 11250 {
		t.Errorf("experiments = %d", p.Campaign.NumExperiments())
	}
	if p.Engine.Scenario.TotalSimTime != 60*des.Second {
		t.Errorf("sim time = %v", p.Engine.Scenario.TotalSimTime)
	}
}

func TestParseFabricSection(t *testing.T) {
	doc := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [1]},
	    "startTimesS": {"values": [17]},
	    "durationsS": {"values": [2]}
	  },
	  "fabric": {
	    "addr": "127.0.0.1:7440",
	    "leaseSize": 8,
	    "leaseTTLS": 2.5,
	    "maxCoordinatorRetries": 4,
	    "retryBaseMS": 50,
	    "dir": "/tmp/campaigns",
	    "fairnessCap": 2
	  }
	}`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fb := p.Fabric
	if fb.Addr != "127.0.0.1:7440" || fb.LeaseSize != 8 {
		t.Errorf("fabric = %+v", fb)
	}
	if fb.LeaseTTL != 2500*time.Millisecond {
		t.Errorf("leaseTTL = %v", fb.LeaseTTL)
	}
	if fb.MaxCoordinatorRetries != 4 || fb.RetryBase != 50*time.Millisecond {
		t.Errorf("worker retry settings = %+v", fb)
	}
	if fb.Dir != "/tmp/campaigns" || fb.FairnessCap != 2 {
		t.Errorf("submit-mode settings = %+v", fb)
	}
	// An absent section yields all-zero settings (fabric defaults apply).
	p2, err := Parse(strings.NewReader(`{"campaign": {
	  "attack": "delay",
	  "valuesS": {"values": [1]},
	  "startTimesS": {"values": [17]},
	  "durationsS": {"values": [2]}
	}}`))
	if err != nil {
		t.Fatalf("Parse without fabric: %v", err)
	}
	if p2.Fabric != (FabricSettings{}) {
		t.Errorf("absent fabric section = %+v, want zero", p2.Fabric)
	}
	for _, bad := range []string{
		`{"fabric": {"leaseSize": -1}}`,
		`{"fabric": {"leaseTTLS": -2}}`,
		`{"fabric": {"maxCoordinatorRetries": -3}}`,
		`{"fabric": {"retryBaseMS": -4}}`,
		`{"fabric": {"fairnessCap": -1}}`,
		`{"fabric": {"bogus": true}}`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"sneed": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse(strings.NewReader(``)); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := Parse(strings.NewReader(`{`)); err == nil {
		t.Error("truncated document accepted")
	}
}

func TestParseDefaultSeed(t *testing.T) {
	doc := `{"campaign": {
	  "attack": "dos",
	  "valuesS": {"values": [60]},
	  "startTimesS": {"values": [17]},
	  "durationsS": {"values": [60]}
	}}`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 1 || p.Engine.Seed != 1 {
		t.Errorf("default seed = %d/%d, want 1", p.Seed, p.Engine.Seed)
	}
}

func TestCommConfigFading(t *testing.T) {
	cm, err := (CommConfig{Fading: "nakagami"}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cm.Channel.Fading == nil || cm.Channel.Fading.Name() != "nakagami" {
		t.Error("fading not configured")
	}
	off, err := (CommConfig{}).Build()
	if err != nil || off.Channel.Fading != nil {
		t.Error("fading should default to off (paper setup)")
	}
	if _, err := (CommConfig{Fading: "rician"}).Build(); err == nil {
		t.Error("unknown fading accepted")
	}
}

func TestRuntimeConfigBuild(t *testing.T) {
	doc := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [2.0]},
	    "startTimesS": {"values": [18]},
	    "durationsS": {"values": [10]}
	  },
	  "runtime": {
	    "workers": 4,
	    "shard": "2/4",
	    "resultsFile": "out.csv",
	    "cancelCheckEvents": 1024,
	    "retries": 2,
	    "retryBackoffMS": 250,
	    "experimentTimeoutS": 30,
	    "maxFailures": -1,
	    "quarantineFile": "quarantine.jsonl",
	    "invariants": true,
	    "eventBudget": 500000
	  }
	}`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Runtime.Workers != 4 {
		t.Errorf("workers = %d, want 4", p.Runtime.Workers)
	}
	if p.Runtime.Shard != (runner.Shard{Index: 2, Count: 4}) {
		t.Errorf("shard = %v, want 2/4", p.Runtime.Shard)
	}
	if p.Runtime.ResultsFile != "out.csv" {
		t.Errorf("resultsFile = %q", p.Runtime.ResultsFile)
	}
	if p.Engine.CancelCheckEvents != 1024 {
		t.Errorf("cancelCheckEvents = %d, want 1024", p.Engine.CancelCheckEvents)
	}
	if p.Runtime.Retries != 2 || p.Runtime.RetryBackoff != 250*time.Millisecond {
		t.Errorf("retries = %d backoff = %v, want 2/250ms", p.Runtime.Retries, p.Runtime.RetryBackoff)
	}
	if p.Runtime.ExperimentTimeout != 30*time.Second {
		t.Errorf("experimentTimeout = %v, want 30s", p.Runtime.ExperimentTimeout)
	}
	if p.Runtime.MaxFailures != -1 || p.Runtime.QuarantineFile != "quarantine.jsonl" {
		t.Errorf("maxFailures = %d quarantineFile = %q", p.Runtime.MaxFailures, p.Runtime.QuarantineFile)
	}
	if !p.Engine.Invariants || p.Engine.EventBudget != 500000 {
		t.Errorf("invariants = %v eventBudget = %d, want true/500000", p.Engine.Invariants, p.Engine.EventBudget)
	}
}

func TestRuntimeConfigDefaultsAndErrors(t *testing.T) {
	rt, err := (RuntimeConfig{}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if rt.Shard.Enabled() || rt.Workers != 0 || rt.ResultsFile != "" {
		t.Errorf("zero runtime config built %+v, want disabled defaults", rt)
	}
	if _, err := (RuntimeConfig{Shard: "5/4"}).Build(); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := (RuntimeConfig{Shard: "nope"}).Build(); err == nil {
		t.Error("malformed shard accepted")
	}
	if _, err := (RuntimeConfig{Retries: -1}).Build(); err == nil {
		t.Error("negative retries accepted")
	}
	if _, err := (RuntimeConfig{RetryBackoffMS: -1}).Build(); err == nil {
		t.Error("negative retry backoff accepted")
	}
	if _, err := (RuntimeConfig{ExperimentTimeoutS: -1}).Build(); err == nil {
		t.Error("negative experiment timeout accepted")
	}
}
