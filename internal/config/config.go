// Package config parses JSON experiment configurations for the ComFASE
// command-line tools. A config file describes the Step-1 objects of
// Algorithm 1 (traffic scenario, communication model, attack campaign)
// in human units (seconds, m/s); zero values fall back to the paper's
// defaults, so "{}" reproduces the paper's setup exactly.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"comfase/internal/core"
	"comfase/internal/phy"
	"comfase/internal/platoon"
	"comfase/internal/registry/param"
	"comfase/internal/runner"
	"comfase/internal/safety"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/traffic"
	"comfase/internal/wave1609"
)

// Range expands to an inclusive arithmetic sequence [From, To] with the
// given Step. Explicit lists and ranges can be mixed; both contribute.
type Range struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Step float64 `json:"step"`
}

// Expand returns the sequence, or an error for a malformed range.
func (r Range) Expand() ([]float64, error) {
	if r.Step <= 0 {
		return nil, fmt.Errorf("config: range step %v must be positive", r.Step)
	}
	if r.To < r.From {
		return nil, fmt.Errorf("config: range [%v,%v] is inverted", r.From, r.To)
	}
	var out []float64
	// Index-based loop avoids float accumulation drift.
	n := int(math.Floor((r.To-r.From)/r.Step + 1e-9))
	for i := 0; i <= n; i++ {
		out = append(out, r.From+float64(i)*r.Step)
	}
	return out, nil
}

// Vector is a list of values, an expandable range, or both.
type Vector struct {
	Values []float64 `json:"values,omitempty"`
	Range  *Range    `json:"range,omitempty"`
}

// Expand returns the merged value list.
func (v Vector) Expand() ([]float64, error) {
	out := append([]float64(nil), v.Values...)
	if v.Range != nil {
		expanded, err := v.Range.Expand()
		if err != nil {
			return nil, err
		}
		out = append(out, expanded...)
	}
	return out, nil
}

// ManeuverConfig selects the leader's driving pattern.
type ManeuverConfig struct {
	// Type is "sinusoidal", "constant" or "braking".
	Type string `json:"type"`
	// BaseSpeedMps is the cruise/mean speed.
	BaseSpeedMps float64 `json:"baseSpeedMps,omitempty"`
	// AmplitudeMps is the sinusoidal speed swing.
	AmplitudeMps float64 `json:"amplitudeMps,omitempty"`
	// FrequencyHz is the sinusoidal frequency.
	FrequencyHz float64 `json:"frequencyHz,omitempty"`
	// PhaseS is the sinusoidal phase shift in seconds.
	PhaseS float64 `json:"phaseS,omitempty"`
	// BrakeAtS, FinalSpeedMps, DecelMps2 parameterise braking maneuvers.
	BrakeAtS      float64 `json:"brakeAtS,omitempty"`
	FinalSpeedMps float64 `json:"finalSpeedMps,omitempty"`
	DecelMps2     float64 `json:"decelMps2,omitempty"`
}

// Build returns the maneuver, defaulting to the paper's sinusoid.
func (m ManeuverConfig) Build() (traffic.Maneuver, error) {
	switch m.Type {
	case "", "sinusoidal":
		s := scenario.PaperManeuver()
		if m.BaseSpeedMps > 0 {
			s.Base = m.BaseSpeedMps
		}
		if m.AmplitudeMps > 0 {
			s.Amplitude = m.AmplitudeMps
		}
		if m.FrequencyHz > 0 {
			s.Frequency = m.FrequencyHz
		}
		if m.PhaseS != 0 {
			s.Phase = m.PhaseS
		}
		return s, nil
	case "constant":
		speed := m.BaseSpeedMps
		if speed <= 0 {
			speed = 27.78
		}
		return traffic.ConstantSpeed{Speed: speed}, nil
	case "braking":
		b := traffic.Braking{
			CruiseSpeed: m.BaseSpeedMps,
			FinalSpeed:  m.FinalSpeedMps,
			BrakeAt:     m.BrakeAtS,
			Decel:       m.DecelMps2,
		}
		if b.CruiseSpeed <= 0 {
			b.CruiseSpeed = 27.78
		}
		if b.Decel <= 0 {
			b.Decel = 4
		}
		return b, nil
	default:
		return nil, fmt.Errorf("config: unknown maneuver type %q", m.Type)
	}
}

// AEBConfig enables the autonomous-emergency-braking safety monitor on
// every follower. Zero fields fall back to safety.DefaultAEB.
type AEBConfig struct {
	// TTCThresholdS is the time-to-collision trigger in seconds.
	TTCThresholdS float64 `json:"ttcThresholdS,omitempty"`
	// MinGapM is the distance floor in metres.
	MinGapM float64 `json:"minGapM,omitempty"`
	// DecelMps2 is the emergency deceleration magnitude.
	DecelMps2 float64 `json:"decelMps2,omitempty"`
}

// Build returns the monitor.
func (a AEBConfig) Build() (*safety.AEB, error) {
	aeb := safety.DefaultAEB()
	if a.TTCThresholdS > 0 {
		aeb.TTCThreshold = a.TTCThresholdS
	}
	if a.MinGapM > 0 {
		aeb.MinGap = a.MinGapM
	}
	if a.DecelMps2 > 0 {
		aeb.Decel = a.DecelMps2
	}
	return aeb, aeb.Validate()
}

// ScenarioConfig overrides the paper's traffic scenario.
type ScenarioConfig struct {
	NrVehicles     int             `json:"nrVehicles,omitempty"`
	TotalSimTimeS  float64         `json:"totalSimTimeS,omitempty"`
	Lane           int             `json:"lane,omitempty"`
	LeaderStartM   float64         `json:"leaderStartM,omitempty"`
	StepLengthS    float64         `json:"stepLengthS,omitempty"`
	Maneuver       *ManeuverConfig `json:"maneuver,omitempty"`
	MaxSpeedMps    float64         `json:"maxSpeedMps,omitempty"`
	MaxAccelMps2   float64         `json:"maxAccelMps2,omitempty"`
	MaxDecelMps2   float64         `json:"maxDecelMps2,omitempty"`
	VehicleLengthM float64         `json:"vehicleLengthM,omitempty"`
	ActuationLagS  float64         `json:"actuationLagS,omitempty"`
	// AEB equips followers with the emergency-braking monitor.
	AEB *AEBConfig `json:"aeb,omitempty"`
}

// Build returns a TrafficScenario with the paper defaults overridden.
func (c ScenarioConfig) Build() (scenario.TrafficScenario, error) {
	ts := scenario.PaperScenario()
	if c.NrVehicles > 0 {
		ts.NrVehicles = c.NrVehicles
	}
	if c.TotalSimTimeS > 0 {
		ts.TotalSimTime = des.FromSeconds(c.TotalSimTimeS)
	}
	if c.Lane > 0 {
		ts.Lane = c.Lane
	}
	if c.LeaderStartM > 0 {
		ts.LeaderStartPos = c.LeaderStartM
	}
	if c.StepLengthS > 0 {
		ts.StepLength = des.FromSeconds(c.StepLengthS)
	}
	if c.MaxSpeedMps > 0 {
		ts.VehicleTemplate.MaxSpeed = c.MaxSpeedMps
	}
	if c.MaxAccelMps2 > 0 {
		ts.VehicleTemplate.MaxAccel = c.MaxAccelMps2
	}
	if c.MaxDecelMps2 > 0 {
		ts.VehicleTemplate.MaxDecel = c.MaxDecelMps2
	}
	if c.VehicleLengthM > 0 {
		ts.VehicleTemplate.Length = c.VehicleLengthM
	}
	if c.ActuationLagS > 0 {
		ts.VehicleTemplate.ActuationLag = c.ActuationLagS
	}
	if c.Maneuver != nil {
		m, err := c.Maneuver.Build()
		if err != nil {
			return scenario.TrafficScenario{}, err
		}
		ts.Maneuver = m
	}
	if c.AEB != nil {
		aeb, err := c.AEB.Build()
		if err != nil {
			return scenario.TrafficScenario{}, err
		}
		ts.AEB = aeb
	}
	return ts, ts.Validate()
}

// CommConfig overrides the paper's communication model.
type CommConfig struct {
	// PathLoss is "freespace" or "tworay".
	PathLoss string `json:"pathLoss,omitempty"`
	// AccessMode is "continuous" or "alternating" (IEEE 1609.4).
	AccessMode string `json:"accessMode,omitempty"`
	// PacketBits is the packetSize.
	PacketBits int `json:"packetBits,omitempty"`
	// BeaconIntervalS is the beaconingTime in seconds.
	BeaconIntervalS float64 `json:"beaconIntervalS,omitempty"`
	// TxPowerDBm overrides the transmit power.
	TxPowerDBm float64 `json:"txPowerDBm,omitempty"`
	// Decider is "threshold" or "probabilistic".
	Decider string `json:"decider,omitempty"`
	// Fading is "" (off, the paper's setup) or "nakagami".
	Fading string `json:"fading,omitempty"`
	// FadingSeed seeds the fading process (default 1).
	FadingSeed uint64 `json:"fadingSeed,omitempty"`
}

// Build returns a CommModel with the paper defaults overridden.
func (c CommConfig) Build() (scenario.CommModel, error) {
	cm := scenario.PaperCommModel()
	switch c.PathLoss {
	case "", "freespace":
		cm.Channel.PathLoss = phy.FreeSpace{Alpha: 2}
	case "tworay":
		cm.Channel.PathLoss = phy.TwoRayInterference{}
	default:
		return scenario.CommModel{}, fmt.Errorf("config: unknown path loss %q", c.PathLoss)
	}
	switch c.AccessMode {
	case "", "continuous":
		cm.Schedule = wave1609.NewSchedule(wave1609.AccessContinuous)
	case "alternating":
		cm.Schedule = wave1609.NewSchedule(wave1609.AccessAlternating)
	default:
		return scenario.CommModel{}, fmt.Errorf("config: unknown access mode %q", c.AccessMode)
	}
	switch c.Decider {
	case "", "threshold":
		cm.Channel.Decider = phy.DeciderThreshold
	case "probabilistic":
		cm.Channel.Decider = phy.DeciderProbabilistic
	default:
		return scenario.CommModel{}, fmt.Errorf("config: unknown decider %q", c.Decider)
	}
	switch c.Fading {
	case "":
		// The paper's experiments run without fading.
	case "nakagami":
		seed := c.FadingSeed
		if seed == 0 {
			seed = 1
		}
		cm.Channel.Fading = phy.NewNakagamiFading(rng.New(seed, "fading"))
	default:
		return scenario.CommModel{}, fmt.Errorf("config: unknown fading %q", c.Fading)
	}
	if c.PacketBits > 0 {
		cm.PacketBits = c.PacketBits
	}
	if c.BeaconIntervalS > 0 {
		cm.BeaconInterval = des.FromSeconds(c.BeaconIntervalS)
	}
	if c.TxPowerDBm != 0 {
		cm.Channel.TxPowerDBm = c.TxPowerDBm
	}
	return cm, cm.Validate()
}

// CampaignConfig describes the attack campaign grid.
type CampaignConfig struct {
	// Attack names a registered attack family — any name `comfase list`
	// prints (delay, dos, packet-loss, replay, jamming, falsification,
	// sybil, omission, corruption, calibration, ...). Default: delay.
	Attack string `json:"attack"`
	// Params are the family's extra parameters, validated against its
	// registry schema.
	Params map[string]any `json:"params,omitempty"`
	// Targets are the attacked vehicle IDs (default: vehicle.2).
	Targets []string `json:"targets,omitempty"`
	// ValuesS is the attackValuesVector (seconds for delay/dos/replay,
	// probability for packet-loss).
	ValuesS Vector `json:"valuesS"`
	// StartTimesS is the attackStartVector in seconds.
	StartTimesS Vector `json:"startTimesS"`
	// DurationsS is the attackEndVector as start-relative durations.
	DurationsS Vector `json:"durationsS"`
}

// Build expands the vectors into a CampaignSetup. The attack name
// resolves against the attack registry, so every registered family —
// not just the enum kinds — is reachable, and unknown names carry the
// registry's accepted-names list with a nearest-match suggestion.
func (c CampaignConfig) Build() (core.CampaignSetup, error) {
	name := c.Attack
	if name == "" {
		name = "delay"
	}
	entry, err := core.LookupAttack(name)
	if err != nil {
		return core.CampaignSetup{}, fmt.Errorf("config: unknown attack %q: %w", name, err)
	}
	targets := c.Targets
	if len(targets) == 0 {
		targets = []string{"vehicle.2"}
	}
	values, err := c.ValuesS.Expand()
	if err != nil {
		return core.CampaignSetup{}, fmt.Errorf("values: %w", err)
	}
	starts, err := c.StartTimesS.Expand()
	if err != nil {
		return core.CampaignSetup{}, fmt.Errorf("startTimes: %w", err)
	}
	durations, err := c.DurationsS.Expand()
	if err != nil {
		return core.CampaignSetup{}, fmt.Errorf("durations: %w", err)
	}
	setup := core.CampaignSetup{
		Attack:     entry.Kind,
		AttackName: entry.Name,
		Params:     param.Params(c.Params),
		Targets:    targets,
		Values:     values,
	}
	for _, s := range starts {
		setup.Starts = append(setup.Starts, des.FromSeconds(s))
	}
	for _, d := range durations {
		setup.Durations = append(setup.Durations, des.FromSeconds(d))
	}
	return setup, setup.Validate()
}

// RuntimeConfig configures the campaign runtime (internal/runner): how
// the grid is executed rather than what it contains. Command-line flags
// override these settings.
type RuntimeConfig struct {
	// Workers is the number of parallel experiment workers (0 = one, the
	// sequential paper setup; negative = all cores).
	Workers int `json:"workers,omitempty"`
	// Shard is the "i/n" grid slice this process executes (empty = the
	// whole grid). N processes with shards 1/n..n/n produce disjoint
	// result files that `comfase merge` recombines.
	Shard string `json:"shard,omitempty"`
	// ResultsFile streams per-experiment CSV rows to this path as results
	// complete; it is also the file -resume reads back.
	ResultsFile string `json:"resultsFile,omitempty"`
	// CancelCheckEvents is the DES-kernel cancellation poll granularity
	// (0 = the des package default).
	CancelCheckEvents uint64 `json:"cancelCheckEvents,omitempty"`

	// Retries is how many times a failed experiment is re-executed on a
	// fresh workspace before it is quarantined (0 = none).
	Retries int `json:"retries,omitempty"`
	// RetryBackoffMS is the base pause in milliseconds before retry k
	// (linear backoff; 0 retries immediately).
	RetryBackoffMS int `json:"retryBackoffMS,omitempty"`
	// ExperimentTimeoutS is the per-attempt wall-clock watchdog in
	// seconds; an attempt exceeding it is quarantined as a "timeout"
	// failure (0 disables the watchdog).
	ExperimentTimeoutS float64 `json:"experimentTimeoutS,omitempty"`
	// MaxFailures is the campaign failure budget: how many persistently
	// failed experiments are tolerated before the run aborts. 0 (the
	// default) aborts on the first persistent failure; negative streams
	// past any number of failures.
	MaxFailures int `json:"maxFailures,omitempty"`
	// QuarantineFile appends the JSON-lines record of every persistent
	// failure to this path; with -resume it is also read back to skip
	// already-quarantined grid points.
	QuarantineFile string `json:"quarantineFile,omitempty"`
	// Invariants enables the runtime invariant checks (NaN/Inf state,
	// position reversal, unhandled overlap) inside every simulation step.
	Invariants bool `json:"invariants,omitempty"`
	// EventBudget caps the number of kernel events one experiment may
	// execute; exceeding it quarantines the experiment as an
	// "event-budget" failure (0 = unlimited).
	EventBudget uint64 `json:"eventBudget,omitempty"`
	// Checkpoints toggles prefix-checkpoint forking: experiments sharing
	// an attack start time simulate their fault-free prefix once per
	// worker and fork from the snapshot. Results are bit-identical either
	// way; omitted or true leaves forking on (the default), false forces
	// every experiment onto the fresh-build path.
	Checkpoints *bool `json:"checkpoints,omitempty"`
	// CheckpointTrie toggles duration chaining on top of checkpoint
	// forking: same-value experiments run in ascending-duration order and
	// each forks from the previous sibling's mid-attack boundary snapshot
	// instead of re-simulating the shared attacked interval. Results are
	// bit-identical either way; omitted or true leaves chaining on (the
	// default, effective only while checkpoints are on), false degrades
	// every experiment to a plain prefix fork.
	CheckpointTrie *bool `json:"checkpointTrie,omitempty"`
	// EarlyExit enables verdict-aware early termination: an experiment
	// stops simulating once its classification can no longer change (a
	// collision was recorded, or the attack window is over and the
	// platoon re-converged onto the golden trajectory). Classifications
	// and collider attribution are identical either way; the raw
	// kinematic summaries of truncated runs cover a shorter window
	// (DESIGN.md §10). Off by default.
	EarlyExit bool `json:"earlyExit,omitempty"`
	// EarlyExitToleranceMps is the re-stabilisation speed tolerance in
	// m/s (0 = the engine default of 1e-3; only meaningful with EarlyExit).
	EarlyExitToleranceMps float64 `json:"earlyExitToleranceMps,omitempty"`
	// EarlyExitHoldS is how long in seconds the platoon must hold within
	// the tolerance before the verdict counts as decided (0 = the engine
	// default of 5 s; only meaningful with EarlyExit).
	EarlyExitHoldS float64 `json:"earlyExitHoldS,omitempty"`

	// HeartbeatFile periodically publishes a JSON metrics snapshot to this
	// path via atomic rename (internal/obs heartbeat). Empty disables the
	// heartbeat; campaign outputs are byte-identical either way.
	HeartbeatFile string `json:"heartbeatFile,omitempty"`
	// HeartbeatIntervalS is the snapshot period in seconds (0 = the obs
	// package default of 5s; only meaningful with HeartbeatFile set).
	HeartbeatIntervalS float64 `json:"heartbeatIntervalS,omitempty"`
	// MetricsAddr, when non-empty, serves live metrics over HTTP on this
	// address ("127.0.0.1:0" picks a free port): /metrics (snapshot JSON),
	// /debug/vars (expvar) and /debug/pprof (profiling).
	MetricsAddr string `json:"metricsAddr,omitempty"`
}

// Build validates the runtime settings.
func (r RuntimeConfig) Build() (RuntimeSettings, error) {
	var out RuntimeSettings
	out.Workers = r.Workers
	out.ResultsFile = r.ResultsFile
	if r.Shard != "" {
		sh, err := runner.ParseShard(r.Shard)
		if err != nil {
			return RuntimeSettings{}, err
		}
		out.Shard = sh
	}
	if r.Retries < 0 {
		return RuntimeSettings{}, fmt.Errorf("config: negative retries %d", r.Retries)
	}
	out.Retries = r.Retries
	if r.RetryBackoffMS < 0 {
		return RuntimeSettings{}, fmt.Errorf("config: negative retryBackoffMS %d", r.RetryBackoffMS)
	}
	out.RetryBackoff = time.Duration(r.RetryBackoffMS) * time.Millisecond
	if r.ExperimentTimeoutS < 0 {
		return RuntimeSettings{}, fmt.Errorf("config: negative experimentTimeoutS %g", r.ExperimentTimeoutS)
	}
	out.ExperimentTimeout = time.Duration(r.ExperimentTimeoutS * float64(time.Second))
	out.MaxFailures = r.MaxFailures
	out.QuarantineFile = r.QuarantineFile
	out.DisableCheckpoints = r.Checkpoints != nil && !*r.Checkpoints
	out.DisableTrie = r.CheckpointTrie != nil && !*r.CheckpointTrie
	if r.EarlyExitToleranceMps < 0 {
		return RuntimeSettings{}, fmt.Errorf("config: negative earlyExitToleranceMps %g", r.EarlyExitToleranceMps)
	}
	if r.EarlyExitHoldS < 0 {
		return RuntimeSettings{}, fmt.Errorf("config: negative earlyExitHoldS %g", r.EarlyExitHoldS)
	}
	out.HeartbeatFile = r.HeartbeatFile
	if r.HeartbeatIntervalS < 0 {
		return RuntimeSettings{}, fmt.Errorf("config: negative heartbeatIntervalS %g", r.HeartbeatIntervalS)
	}
	out.HeartbeatInterval = time.Duration(r.HeartbeatIntervalS * float64(time.Second))
	out.MetricsAddr = r.MetricsAddr
	return out, nil
}

// RuntimeSettings is the validated campaign-runtime configuration.
type RuntimeSettings struct {
	Workers            int
	Shard              runner.Shard
	ResultsFile        string
	Retries            int
	RetryBackoff       time.Duration
	ExperimentTimeout  time.Duration
	MaxFailures        int
	QuarantineFile     string
	DisableCheckpoints bool
	DisableTrie        bool
	HeartbeatFile      string
	HeartbeatInterval  time.Duration
	MetricsAddr        string
}

// FabricConfig configures the distributed campaign fabric
// (internal/fabric): how a `comfase serve` coordinator leases the grid
// to `comfase work` processes. Command-line flags override these
// settings. The section rides inside the ordinary config file, which the
// coordinator serves verbatim to registering workers — so one file
// configures the whole fleet.
type FabricConfig struct {
	// Addr is the coordinator's HTTP listen address for `comfase serve`
	// ("127.0.0.1:0" picks a free port).
	Addr string `json:"addr,omitempty"`
	// LeaseSize is the number of contiguous grid points per worker lease
	// (0 = the fabric default of 16).
	LeaseSize int `json:"leaseSize,omitempty"`
	// LeaseTTLS is the lease time-to-live in seconds: a worker that does
	// not report within it is presumed dead and its range is re-leased
	// (0 = the fabric default of 15 s).
	LeaseTTLS float64 `json:"leaseTTLS,omitempty"`
	// MaxCoordinatorRetries bounds consecutive failed coordinator calls
	// on the worker side before it gives up (0 = the fabric default).
	MaxCoordinatorRetries int `json:"maxCoordinatorRetries,omitempty"`
	// RetryBaseMS is the base of the worker's capped jittered exponential
	// backoff in milliseconds (0 = the fabric default of 200 ms).
	RetryBaseMS int `json:"retryBaseMS,omitempty"`
	// Dir, when set, starts `comfase serve` in submit mode: campaigns
	// arrive over the /v1/campaigns API and every campaign's artifacts
	// live side by side in this directory.
	Dir string `json:"dir,omitempty"`
	// FairnessCap bounds how many chunks one campaign may hold leased
	// while other campaigns still have pending work (0 = the fabric
	// default of 4). Only meaningful in submit mode.
	FairnessCap int `json:"fairnessCap,omitempty"`
}

// Build validates the fabric settings.
func (f FabricConfig) Build() (FabricSettings, error) {
	var out FabricSettings
	out.Addr = f.Addr
	if f.LeaseSize < 0 {
		return FabricSettings{}, fmt.Errorf("config: negative fabric leaseSize %d", f.LeaseSize)
	}
	out.LeaseSize = f.LeaseSize
	if f.LeaseTTLS < 0 {
		return FabricSettings{}, fmt.Errorf("config: negative fabric leaseTTLS %g", f.LeaseTTLS)
	}
	out.LeaseTTL = time.Duration(f.LeaseTTLS * float64(time.Second))
	if f.MaxCoordinatorRetries < 0 {
		return FabricSettings{}, fmt.Errorf("config: negative fabric maxCoordinatorRetries %d", f.MaxCoordinatorRetries)
	}
	out.MaxCoordinatorRetries = f.MaxCoordinatorRetries
	if f.RetryBaseMS < 0 {
		return FabricSettings{}, fmt.Errorf("config: negative fabric retryBaseMS %d", f.RetryBaseMS)
	}
	out.RetryBase = time.Duration(f.RetryBaseMS) * time.Millisecond
	out.Dir = f.Dir
	if f.FairnessCap < 0 {
		return FabricSettings{}, fmt.Errorf("config: negative fabric fairnessCap %d", f.FairnessCap)
	}
	out.FairnessCap = f.FairnessCap
	return out, nil
}

// FabricSettings is the validated fabric configuration. Zero values mean
// "use the fabric package default".
type FabricSettings struct {
	Addr                  string
	LeaseSize             int
	LeaseTTL              time.Duration
	MaxCoordinatorRetries int
	RetryBase             time.Duration
	Dir                   string
	FairnessCap           int
}

// File is a complete experiment description.
type File struct {
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Controller is "cacc", "acc" or "ploeg" (default cacc).
	Controller string         `json:"controller,omitempty"`
	Scenario   ScenarioConfig `json:"scenario,omitempty"`
	Comm       CommConfig     `json:"comm,omitempty"`
	Campaign   CampaignConfig `json:"campaign,omitempty"`
	// Matrix sweeps registered attacks over registered scenarios in one
	// run; mutually exclusive with Campaign and the top-level
	// scenario/controller sections.
	Matrix  *MatrixConfig `json:"matrix,omitempty"`
	Runtime RuntimeConfig `json:"runtime,omitempty"`
	// Fabric configures distributed execution with `comfase serve` and
	// `comfase work`; ignored by the single-process subcommands.
	Fabric FabricConfig `json:"fabric,omitempty"`
}

// Parsed is the fully built experiment configuration. Exactly one of
// Campaign (with Engine) or Cells is populated: a matrix file yields
// Cells and leaves Engine/Campaign zero.
type Parsed struct {
	Seed     uint64
	Engine   core.EngineConfig
	Campaign core.CampaignSetup
	Cells    []runner.MatrixCell
	Runtime  RuntimeSettings
	Fabric   FabricSettings
}

// ControllerFactory maps a controller name to a factory.
func ControllerFactory(name string) (scenario.ControllerFactory, error) {
	switch name {
	case "", "cacc":
		return func(int) platoon.Controller { return platoon.DefaultCACC() }, nil
	case "acc":
		return func(int) platoon.Controller { return platoon.DefaultACC() }, nil
	case "ploeg":
		return func(int) platoon.Controller { return platoon.DefaultPloeg() }, nil
	default:
		return nil, fmt.Errorf("config: unknown controller %q", name)
	}
}

// Parse reads and builds a config file. An empty document reproduces the
// paper's setup with the delay campaign left empty (fill Campaign to run
// one).
func Parse(r io.Reader) (*Parsed, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("config: empty document")
		}
		return nil, fmt.Errorf("config: %w", err)
	}
	return BuildFile(f)
}

// BuildFile turns a decoded File into a Parsed configuration.
func BuildFile(f File) (*Parsed, error) {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	fb, err := f.Fabric.Build()
	if err != nil {
		return nil, err
	}
	if f.Matrix != nil {
		cells, err := buildMatrix(f, seed)
		if err != nil {
			return nil, err
		}
		rt, err := f.Runtime.Build()
		if err != nil {
			return nil, err
		}
		return &Parsed{Seed: seed, Cells: cells, Runtime: rt, Fabric: fb}, nil
	}
	ts, err := f.Scenario.Build()
	if err != nil {
		return nil, err
	}
	cm, err := f.Comm.Build()
	if err != nil {
		return nil, err
	}
	factory, err := ControllerFactory(f.Controller)
	if err != nil {
		return nil, err
	}
	setup, err := f.Campaign.Build()
	if err != nil {
		return nil, err
	}
	rt, err := f.Runtime.Build()
	if err != nil {
		return nil, err
	}
	return &Parsed{
		Seed: seed,
		Engine: core.EngineConfig{
			Scenario:           ts,
			Comm:               cm,
			Controllers:        factory,
			Seed:               seed,
			CancelCheckEvents:  f.Runtime.CancelCheckEvents,
			Invariants:         f.Runtime.Invariants,
			EventBudget:        f.Runtime.EventBudget,
			EarlyExit:          f.Runtime.EarlyExit,
			EarlyExitTolerance: f.Runtime.EarlyExitToleranceMps,
			EarlyExitHold:      des.FromSeconds(f.Runtime.EarlyExitHoldS),
		},
		Campaign: setup,
		Runtime:  rt,
		Fabric:   fb,
	}, nil
}
