package config

import (
	"strings"
	"testing"
)

const matrixDoc = `{
  "seed": 7,
  "matrix": {
    "scenarios": [
      {"name": "paper-platoon"},
      {"name": "platoon", "label": "platoon-8", "params": {"nrVehicles": 8}}
    ],
    "attacks": [
      {"name": "delay",
       "valuesS": {"values": [0.5, 2]},
       "startTimesS": {"values": [17, 19]},
       "durationsS": {"values": [5]}},
      {"name": "dos",
       "valuesS": {"values": [60]},
       "startTimesS": {"values": [17]},
       "durationsS": {"values": [60]}}
    ]
  }
}`

func TestParseMatrixDocument(t *testing.T) {
	p, err := Parse(strings.NewReader(matrixDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 7 {
		t.Errorf("Seed = %d, want 7", p.Seed)
	}
	if len(p.Cells) != 4 {
		t.Fatalf("got %d cells, want 4 (2 scenarios x 2 attacks)", len(p.Cells))
	}
	wantCells := []struct {
		scenario, attack string
		base, n          int
	}{
		{"paper-platoon", "delay", 0, 4},
		{"paper-platoon", "dos", 4, 1},
		{"platoon-8", "delay", 5, 4},
		{"platoon-8", "dos", 9, 1},
	}
	for i, want := range wantCells {
		cell := p.Cells[i]
		if cell.Scenario != want.scenario || cell.Attack != want.attack {
			t.Errorf("cell %d = %s/%s, want %s/%s", i, cell.Scenario, cell.Attack, want.scenario, want.attack)
		}
		if cell.Setup.Base != want.base || cell.Setup.NumExperiments() != want.n {
			t.Errorf("cell %d grid = base %d n %d, want base %d n %d",
				i, cell.Setup.Base, cell.Setup.NumExperiments(), want.base, want.n)
		}
		if cell.Setup.Scenario != cell.Scenario {
			t.Errorf("cell %d setup label %q != cell label %q", i, cell.Setup.Scenario, cell.Scenario)
		}
		if cell.Engine.Seed != 7 {
			t.Errorf("cell %d engine seed = %d, want 7", i, cell.Engine.Seed)
		}
		if err := cell.Setup.Validate(); err != nil {
			t.Errorf("cell %d setup invalid: %v", i, err)
		}
	}
	if p.Cells[2].Engine.Scenario.NrVehicles != 8 {
		t.Errorf("platoon-8 engine has %d vehicles, want 8", p.Cells[2].Engine.Scenario.NrVehicles)
	}
	// Matrix documents leave the single-campaign fields zero.
	if p.Campaign.NumExperiments() != 0 {
		t.Error("matrix document also produced a single campaign")
	}
}

func TestMatrixExclusiveWithCampaign(t *testing.T) {
	doc := `{
	  "campaign": {"attack": "delay",
	    "valuesS": {"values": [1]}, "startTimesS": {"values": [17]}, "durationsS": {"values": [5]}},
	  "matrix": {"scenarios": [{"name": "paper-platoon"}], "attacks": [{"name": "delay",
	    "valuesS": {"values": [1]}, "startTimesS": {"values": [17]}, "durationsS": {"values": [5]}}]}
	}`
	if _, err := Parse(strings.NewReader(doc)); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("Parse(campaign+matrix) = %v, want mutual-exclusion error", err)
	}
}

func TestMatrixRejectsTopLevelScenario(t *testing.T) {
	doc := `{
	  "scenario": {"nrVehicles": 6},
	  "matrix": {"scenarios": [{"name": "paper-platoon"}], "attacks": [{"name": "delay",
	    "valuesS": {"values": [1]}, "startTimesS": {"values": [17]}, "durationsS": {"values": [5]}}]}
	}`
	if _, err := Parse(strings.NewReader(doc)); err == nil ||
		!strings.Contains(err.Error(), "scenario/controller") {
		t.Errorf("Parse(scenario+matrix) = %v, want section-conflict error", err)
	}
}

func TestMatrixUnknownAttackSuggestion(t *testing.T) {
	doc := `{"matrix": {"scenarios": [{"name": "paper-platoon"}], "attacks": [{"name": "dely",
	  "valuesS": {"values": [1]}, "startTimesS": {"values": [17]}, "durationsS": {"values": [5]}}]}}`
	if _, err := Parse(strings.NewReader(doc)); err == nil ||
		!strings.Contains(err.Error(), `did you mean "delay"`) {
		t.Errorf("Parse(dely) = %v, want suggestion", err)
	}
}

func TestMatrixScenarioParamBounds(t *testing.T) {
	doc := `{"matrix": {"scenarios": [{"name": "platoon", "params": {"nrVehicles": 99}}],
	  "attacks": [{"name": "delay",
	  "valuesS": {"values": [1]}, "startTimesS": {"values": [17]}, "durationsS": {"values": [5]}}]}}`
	if _, err := Parse(strings.NewReader(doc)); err == nil ||
		!strings.Contains(err.Error(), "nrVehicles") {
		t.Errorf("Parse(nrVehicles=99) = %v, want bounds error", err)
	}
}

func TestMatrixCommOverrideAppliesToAllCells(t *testing.T) {
	doc := `{
	  "comm": {"beaconIntervalS": 0.2},
	  "matrix": {"scenarios": [{"name": "paper-platoon"}, {"name": "platoon", "label": "p8", "params": {"nrVehicles": 8}}],
	    "attacks": [{"name": "delay",
	    "valuesS": {"values": [1]}, "startTimesS": {"values": [17]}, "durationsS": {"values": [5]}}]}
	}`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for i, cell := range p.Cells {
		if got := cell.Engine.Comm.BeaconInterval.Seconds(); got != 0.2 {
			t.Errorf("cell %d beacon interval = %v s, want 0.2", i, got)
		}
	}
}
