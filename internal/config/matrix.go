package config

import (
	"errors"
	"fmt"

	"comfase/internal/core"
	"comfase/internal/registry"
	"comfase/internal/registry/param"
	"comfase/internal/runner"
	"comfase/internal/sim/des"
)

// MatrixScenarioConfig selects one registered scenario for the matrix.
type MatrixScenarioConfig struct {
	// Name is a registered scenario family (`comfase list`).
	Name string `json:"name"`
	// Label identifies the cell in result rows (default: Name); two
	// parameterisations of one family need distinct labels.
	Label string `json:"label,omitempty"`
	// Params parameterise the family (validated against its schema).
	Params map[string]any `json:"params,omitempty"`
}

// MatrixAttackConfig selects one registered attack with its sweep
// vectors; the vectors apply in every scenario cell.
type MatrixAttackConfig struct {
	// Name is a registered attack family (`comfase list`).
	Name string `json:"name"`
	// Params are the family's extra parameters.
	Params map[string]any `json:"params,omitempty"`
	// Targets are the attacked vehicle IDs (default: vehicle.2).
	Targets []string `json:"targets,omitempty"`
	// ValuesS, StartTimesS, DurationsS are the sweep vectors in the
	// units of the single-campaign section.
	ValuesS     Vector `json:"valuesS"`
	StartTimesS Vector `json:"startTimesS"`
	DurationsS  Vector `json:"durationsS"`
}

// MatrixConfig is the `matrix` section: the cross product of registered
// scenarios and attacks, expanded into one deterministic flat grid with
// globally contiguous experiment numbers. It is mutually exclusive with
// the single `campaign` section.
type MatrixConfig struct {
	Scenarios []MatrixScenarioConfig `json:"scenarios"`
	Attacks   []MatrixAttackConfig   `json:"attacks"`
}

// Build expands the matrix into runner cells. comm is the file-level
// communication override applied to every cell (nil = each scenario's
// own model); the engine knobs mirror BuildFile's single-campaign path.
func (m MatrixConfig) Build(seed uint64, comm *CommConfig, rt RuntimeConfig) ([]runner.MatrixCell, error) {
	spec := registry.Matrix{}
	for _, s := range m.Scenarios {
		spec.Scenarios = append(spec.Scenarios, registry.MatrixScenario{
			Name:   s.Name,
			Label:  s.Label,
			Params: param.Params(s.Params),
		})
	}
	for _, a := range m.Attacks {
		values, err := a.ValuesS.Expand()
		if err != nil {
			return nil, fmt.Errorf("config: matrix attack %q values: %w", a.Name, err)
		}
		starts, err := a.StartTimesS.Expand()
		if err != nil {
			return nil, fmt.Errorf("config: matrix attack %q startTimes: %w", a.Name, err)
		}
		durations, err := a.DurationsS.Expand()
		if err != nil {
			return nil, fmt.Errorf("config: matrix attack %q durations: %w", a.Name, err)
		}
		ma := registry.MatrixAttack{
			Name:    a.Name,
			Params:  param.Params(a.Params),
			Targets: a.Targets,
			Values:  values,
		}
		for _, s := range starts {
			ma.Starts = append(ma.Starts, des.FromSeconds(s))
		}
		for _, d := range durations {
			ma.Durations = append(ma.Durations, des.FromSeconds(d))
		}
		spec.Attacks = append(spec.Attacks, ma)
	}
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	out := make([]runner.MatrixCell, 0, len(cells))
	for _, c := range cells {
		cm := c.Def.Comm
		if comm != nil {
			built, err := comm.Build()
			if err != nil {
				return nil, err
			}
			cm = built
		}
		out = append(out, runner.MatrixCell{
			Scenario: c.Scenario,
			Attack:   c.Attack,
			Engine: core.EngineConfig{
				Scenario:           c.Def.Traffic,
				Comm:               cm,
				Controllers:        c.Def.Controllers,
				Seed:               seed,
				CancelCheckEvents:  rt.CancelCheckEvents,
				Invariants:         rt.Invariants,
				EventBudget:        rt.EventBudget,
				EarlyExit:          rt.EarlyExit,
				EarlyExitTolerance: rt.EarlyExitToleranceMps,
				EarlyExitHold:      des.FromSeconds(rt.EarlyExitHoldS),
			},
			Setup: c.Setup,
		})
	}
	return out, nil
}

// isZero reports whether the campaign section was left empty.
func (c CampaignConfig) isZero() bool {
	return c.Attack == "" && len(c.Params) == 0 && len(c.Targets) == 0 &&
		len(c.ValuesS.Values) == 0 && c.ValuesS.Range == nil &&
		len(c.StartTimesS.Values) == 0 && c.StartTimesS.Range == nil &&
		len(c.DurationsS.Values) == 0 && c.DurationsS.Range == nil
}

// buildMatrix validates section exclusivity and expands f.Matrix.
func buildMatrix(f File, seed uint64) ([]runner.MatrixCell, error) {
	if !f.Campaign.isZero() {
		return nil, errors.New("config: matrix and campaign sections are mutually exclusive")
	}
	if f.Scenario != (ScenarioConfig{}) || f.Controller != "" {
		return nil, errors.New("config: matrix runs parameterise scenarios per cell; drop the top-level scenario/controller sections")
	}
	var comm *CommConfig
	if f.Comm != (CommConfig{}) {
		comm = &f.Comm
	}
	return f.Matrix.Build(seed, comm, f.Runtime)
}
