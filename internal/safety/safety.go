// Package safety implements the redundant safety mechanisms the paper's
// discussion (§IV-C3) and future-work section call for: "introduction of
// sensor models in our simulation environment that monitors the distance
// between vehicles". The AEB monitor watches the radar's ground-truth
// gap and overrides the (possibly attack-corrupted) cooperative
// controller with an emergency brake when a collision becomes imminent —
// letting ComFASE-Go evaluate systems *with* protection mechanisms, not
// only the unprotected stack of the paper's demonstration.
package safety

import (
	"errors"
	"math"
)

// AEB is an autonomous-emergency-braking monitor. It is a pure function
// of the current radar measurement, so a single instance may be shared
// across vehicles.
type AEB struct {
	// TTCThreshold is the time-to-collision (s) below which the monitor
	// intervenes. Production AEB systems trigger around 0.6-1.5 s.
	TTCThreshold float64
	// MinGap is the distance floor (m): closer than this the monitor
	// brakes regardless of closing speed.
	MinGap float64
	// Decel is the commanded emergency deceleration magnitude (m/s^2).
	Decel float64
}

// DefaultAEB returns a monitor with a 1.5 s TTC threshold, 1 m gap floor
// and the paper vehicle's full 9 m/s^2 braking capability.
func DefaultAEB() *AEB {
	return &AEB{TTCThreshold: 1.5, MinGap: 1, Decel: 9}
}

// Validate reports the first configuration problem, or nil.
func (a *AEB) Validate() error {
	switch {
	case a.TTCThreshold <= 0:
		return errors.New("safety: TTC threshold must be positive")
	case a.MinGap < 0:
		return errors.New("safety: min gap must be non-negative")
	case a.Decel <= 0:
		return errors.New("safety: emergency deceleration must be positive")
	}
	return nil
}

// TTC returns the time to collision (s) for a gap and closing speed
// (positive = closing). It returns +inf when the gap is opening.
func TTC(gap, closingSpeed float64) float64 {
	if closingSpeed <= 0 {
		return math.Inf(1)
	}
	if gap <= 0 {
		return 0
	}
	return gap / closingSpeed
}

// Filter passes the controller command through the monitor. gap is the
// radar bumper-to-bumper distance (m) and closingSpeed the radar closing
// speed (m/s, positive = approaching). It returns the possibly
// overridden command and whether the monitor intervened.
func (a *AEB) Filter(cmd, gap, closingSpeed float64) (float64, bool) {
	imminent := gap <= a.MinGap || TTC(gap, closingSpeed) < a.TTCThreshold
	if !imminent {
		return cmd, false
	}
	brake := -a.Decel
	if cmd < brake {
		// The controller already brakes harder than the monitor would.
		return cmd, true
	}
	return brake, true
}
