package safety

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultAEBValid(t *testing.T) {
	if err := DefaultAEB().Validate(); err != nil {
		t.Fatalf("default AEB invalid: %v", err)
	}
}

func TestAEBValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AEB)
	}{
		{name: "zero ttc", mutate: func(a *AEB) { a.TTCThreshold = 0 }},
		{name: "negative min gap", mutate: func(a *AEB) { a.MinGap = -1 }},
		{name: "zero decel", mutate: func(a *AEB) { a.Decel = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := DefaultAEB()
			tt.mutate(a)
			if err := a.Validate(); err == nil {
				t.Error("invalid AEB accepted")
			}
		})
	}
}

func TestTTC(t *testing.T) {
	tests := []struct {
		name         string
		gap, closing float64
		want         float64
	}{
		{name: "closing", gap: 10, closing: 5, want: 2},
		{name: "opening", gap: 10, closing: -3, want: math.Inf(1)},
		{name: "steady", gap: 10, closing: 0, want: math.Inf(1)},
		{name: "overlap", gap: -1, closing: 5, want: 0},
		{name: "zero gap", gap: 0, closing: 5, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TTC(tt.gap, tt.closing); got != tt.want {
				t.Errorf("TTC(%v, %v) = %v, want %v", tt.gap, tt.closing, got, tt.want)
			}
		})
	}
}

func TestFilterPassesSafeSituations(t *testing.T) {
	a := DefaultAEB()
	// 5 m gap at matched speeds: TTC infinite.
	cmd, active := a.Filter(1.2, 5, 0)
	if active || cmd != 1.2 {
		t.Errorf("safe situation filtered: cmd=%v active=%v", cmd, active)
	}
	// Gap opening fast.
	cmd, active = a.Filter(-0.5, 3, -10)
	if active || cmd != -0.5 {
		t.Errorf("opening gap filtered: cmd=%v active=%v", cmd, active)
	}
}

func TestFilterBrakesOnImminentCollision(t *testing.T) {
	a := DefaultAEB()
	// 5 m gap closing at 10 m/s: TTC 0.5 s < 1.5 s threshold.
	cmd, active := a.Filter(2.0, 5, 10)
	if !active {
		t.Fatal("monitor did not intervene")
	}
	if cmd != -9 {
		t.Errorf("override = %v, want -9", cmd)
	}
}

func TestFilterBrakesBelowMinGap(t *testing.T) {
	a := DefaultAEB()
	// 0.5 m gap, not closing: still brake (gap floor).
	cmd, active := a.Filter(0, 0.5, -1)
	if !active || cmd != -9 {
		t.Errorf("min-gap floor: cmd=%v active=%v", cmd, active)
	}
}

func TestFilterKeepsStrongerBraking(t *testing.T) {
	a := DefaultAEB()
	a.Decel = 6
	// Controller already brakes at 8 > monitor's 6: keep the stronger.
	cmd, active := a.Filter(-8, 2, 10)
	if !active || cmd != -8 {
		t.Errorf("stronger braking overridden: cmd=%v active=%v", cmd, active)
	}
}

// Property: the filtered command never exceeds the input command when
// the monitor is active (AEB only ever brakes harder, never accelerates).
func TestFilterNeverAcceleratesProperty(t *testing.T) {
	a := DefaultAEB()
	f := func(cmd, gap, closing float64) bool {
		if math.IsNaN(cmd) || math.IsNaN(gap) || math.IsNaN(closing) {
			return true
		}
		out, active := a.Filter(cmd, gap, closing)
		if !active {
			return out == cmd
		}
		return out <= cmd || out == -a.Decel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
