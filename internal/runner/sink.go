package runner

import (
	"encoding/json"
	"io"

	"comfase/internal/analysis"
	"comfase/internal/classify"
	"comfase/internal/core"
)

// Sink consumes classified experiment results as they are released by a
// Runner. Results arrive in deterministic grid order (the Runner reorders
// worker completions), one call at a time from a single goroutine, so
// sinks need not be safe for concurrent use. A non-nil error from Put or
// Flush aborts the campaign fail-fast.
type Sink interface {
	// Put receives the next result in grid order.
	Put(res core.ExperimentResult) error
	// Flush forces buffered rows out. The Runner calls it after the last
	// result and — crucially — on abort, so partial results survive a
	// cancellation. It does not close underlying files; the opener does.
	Flush() error
}

// CSVSink streams one CSV row per result in the analysis.ExperimentsCSV
// schema, writing through on every row so an interrupted campaign leaves
// a complete, parseable prefix on disk — the file Resume reads back.
// Rows are encoded with the analysis.AppendExperimentCSVRow appender
// into a buffer reused across Puts, so the per-row path is
// allocation-free in steady state while staying byte-identical to
// encoding/csv output.
type CSVSink struct {
	w           io.Writer
	buf         []byte
	writeHeader bool
}

// NewCSVSink returns a sink that writes a header before the first row.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: w, writeHeader: true}
}

// NewCSVAppendSink returns a sink that writes rows only — the resume path
// appending to a result file that already carries a header.
func NewCSVAppendSink(w io.Writer) *CSVSink {
	return &CSVSink{w: w}
}

// Put implements Sink.
func (s *CSVSink) Put(res core.ExperimentResult) error {
	s.buf = s.buf[:0]
	if s.writeHeader {
		s.buf = analysis.AppendExperimentCSVHeader(s.buf)
		s.writeHeader = false
	}
	s.buf = analysis.AppendExperimentCSVRow(s.buf, res)
	_, err := s.w.Write(s.buf)
	return err
}

// Flush implements Sink. Put writes through, so nothing is buffered.
func (s *CSVSink) Flush() error { return nil }

// jsonRow is the flat JSON-lines encoding of one result. ExperimentSpec
// itself is not marshalable (it can carry a ModelFactory func), so the
// sink projects the same fields the CSV schema persists.
type jsonRow struct {
	Nr          int     `json:"expNr"`
	Scenario    string  `json:"scenario,omitempty"`
	Attack      string  `json:"attack"`
	Value       float64 `json:"value"`
	StartS      float64 `json:"startS"`
	DurationS   float64 `json:"durationS"`
	Outcome     string  `json:"outcome"`
	MaxDecel    float64 `json:"maxDecelMps2"`
	MaxSpeedDev float64 `json:"maxSpeedDevMps"`
	Collisions  int     `json:"collisions"`
	Collider    string  `json:"collider,omitempty"`
}

// JSONSink streams one JSON object per line per result.
type JSONSink struct {
	enc *json.Encoder
}

// NewJSONSink returns a JSON-lines sink writing to w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Put implements Sink.
func (s *JSONSink) Put(res core.ExperimentResult) error {
	return s.enc.Encode(jsonRow{
		Nr:          res.Spec.Nr,
		Scenario:    res.Spec.Scenario,
		Attack:      res.Spec.AttackLabel(),
		Value:       res.Spec.Value,
		StartS:      res.Spec.Start.Seconds(),
		DurationS:   res.Spec.Duration.Seconds(),
		Outcome:     res.Outcome.String(),
		MaxDecel:    res.MaxDecel,
		MaxSpeedDev: res.MaxSpeedDev,
		Collisions:  len(res.Collisions),
		Collider:    res.Collider,
	})
}

// Flush implements Sink. The encoder writes through on every Put, so
// there is nothing to flush.
func (s *JSONSink) Flush() error { return nil }

// MemorySink aggregates results in memory — the in-process equivalent of
// the CSV file for library callers that want streaming progress plus a
// final in-memory campaign summary.
type MemorySink struct {
	// Experiments holds the received results in arrival (grid) order.
	Experiments []core.ExperimentResult
	// Counts tallies the received outcome classes.
	Counts classify.Counts
}

// Put implements Sink.
func (s *MemorySink) Put(res core.ExperimentResult) error {
	s.Experiments = append(s.Experiments, res)
	s.Counts.Add(res.Outcome)
	return nil
}

// Flush implements Sink.
func (s *MemorySink) Flush() error { return nil }
