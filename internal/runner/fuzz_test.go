package runner

import (
	"math"
	"testing"

	"comfase/internal/core"
	"comfase/internal/sim/des"
)

// FuzzParseShard checks that ParseShard never panics and that every
// accepted designator is valid and round-trips through String: parsing
// the rendered form again renders identically. (The disabled shard 0/0
// renders "1/1", which parses back to the equivalent full-grid shard —
// hence the String-of-String comparison.)
func FuzzParseShard(f *testing.F) {
	for _, seed := range []string{"1/1", "2/4", "0/0", "-1/3", "abc", "3/2", "1/1000000", " 1/2", "1/2 trailing"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sh, err := ParseShard(s)
		if err != nil {
			return
		}
		if err := sh.Validate(); err != nil {
			t.Fatalf("ParseShard(%q) accepted invalid shard %+v: %v", s, sh, err)
		}
		once := sh.String()
		sh2, err := ParseShard(once)
		if err != nil {
			t.Fatalf("ParseShard(%q) round-trip rejected %q: %v", s, once, err)
		}
		if twice := sh2.String(); twice != once {
			t.Fatalf("ParseShard(%q): String round-trip %q -> %q", s, once, twice)
		}
	})
}

// FuzzTrieGroupKey fuzzes the checkpoint trie's group-key derivation —
// grid expansion (with an arbitrary matrix-cell base), shard filtering,
// same-start grouping and per-value chain ordering — and checks the
// invariants every execution mode relies on:
//
//   - the chains of a group partition it exactly;
//   - every chain is one attack value (compared as float64 bit patterns,
//     so a NaN value must sit alone in its bucket);
//   - chain order is strictly ascending in (duration, expNr);
//   - a shard's chains are projections of the full grid's chains: the
//     surviving experiments keep their full-grid relative order.
func FuzzTrieGroupKey(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(2), 0, uint8(2), uint8(3), []byte{1, 2, 3, 4})
	f.Add(uint8(1), uint8(1), uint8(1), 1000, uint8(1), uint8(1), []byte{0})
	f.Add(uint8(4), uint8(4), uint8(3), 7, uint8(3), uint8(4), []byte{9, 9, 9, 0, 255, 17})
	f.Fuzz(func(t *testing.T, nVals, nDurs, nStarts uint8, base int, shardIdx, shardCount uint8, raw []byte) {
		nv, nd, ns := int(nVals%4)+1, int(nDurs%4)+1, int(nStarts%4)+1
		if base < 0 {
			base = -base
		}
		base %= 1 << 20
		byteAt := func(i int) byte {
			if len(raw) == 0 {
				return 0
			}
			return raw[i%len(raw)]
		}
		setup := core.CampaignSetup{
			Attack:  core.AttackDelay,
			Targets: []string{"vehicle.2"},
			Base:    base,
		}
		for i := 0; i < nv; i++ {
			v := float64(byteAt(i)%5) / 10 // few distinct values -> collisions
			if byteAt(i) == 255 {
				v = math.NaN()
			}
			setup.Values = append(setup.Values, v)
		}
		for i := 0; i < nd; i++ {
			setup.Durations = append(setup.Durations, des.Time(byteAt(nv+i)%4)*500*des.Millisecond)
		}
		// Starts are strictly increasing, like every real grid: with
		// duplicate non-adjacent starts groupByStart would merge groups
		// differently for different shard subsets, and the projection
		// property below only holds per group.
		start := des.Second
		for i := 0; i < ns; i++ {
			start += des.Time(byteAt(nv+nd+i)%4+1) * 200 * des.Millisecond
			setup.Starts = append(setup.Starts, start)
		}
		specs := setup.Experiments()

		check := func(specs []core.ExperimentSpec, group []int) [][]int {
			chains := orderGroupChains(specs, group)
			seen := make(map[int]bool)
			for _, c := range chains {
				if len(c) == 0 {
					t.Fatal("empty chain bucket")
				}
				key := math.Float64bits(specs[c[0]].Value)
				if math.IsNaN(specs[c[0]].Value) && len(c) != 1 {
					t.Fatalf("NaN value chained across %d experiments", len(c))
				}
				for i, idx := range c {
					if seen[idx] {
						t.Fatalf("index %d appears in two chains", idx)
					}
					seen[idx] = true
					if !math.IsNaN(specs[idx].Value) && math.Float64bits(specs[idx].Value) != key {
						t.Fatalf("chain mixes values %v and %v", specs[c[0]].Value, specs[idx].Value)
					}
					if i > 0 {
						prev, cur := specs[c[i-1]], specs[idx]
						if cur.Duration < prev.Duration ||
							(cur.Duration == prev.Duration && cur.Nr <= prev.Nr) {
							t.Fatalf("chain not ascending in (duration, expNr): %v then %v", prev, cur)
						}
					}
				}
			}
			if len(seen) != len(group) {
				t.Fatalf("chains cover %d of %d group members", len(seen), len(group))
			}
			return chains
		}

		// Full grid: group by start, order each group, and record each
		// experiment's chain position keyed by expNr.
		all := make([]int, len(specs))
		for i := range all {
			all[i] = i
		}
		fullOrder := make(map[uint64][]int) // (start, value bits) -> Nr sequence
		chainKey := func(s core.ExperimentSpec) uint64 {
			return uint64(s.Start)*31 ^ math.Float64bits(s.Value)
		}
		for _, group := range groupByStart(specs, all) {
			for _, c := range check(specs, group) {
				k := chainKey(specs[c[0]])
				for _, idx := range c {
					fullOrder[k] = append(fullOrder[k], specs[idx].Nr)
				}
			}
		}

		// Sharded subset: its chains must be subsequences of the full
		// grid's chains.
		count := int(shardCount%8) + 1
		shard := Shard{Index: int(shardIdx)%count + 1, Count: count}
		var sub []core.ExperimentSpec
		for _, s := range specs {
			if shard.Contains(s.Nr) {
				sub = append(sub, s)
			}
		}
		todo := make([]int, len(sub))
		for i := range todo {
			todo[i] = i
		}
		for _, group := range groupByStart(sub, todo) {
			for _, c := range check(sub, group) {
				if math.IsNaN(sub[c[0]].Value) {
					continue // NaN never equals itself; no full-grid bucket to project from
				}
				full := fullOrder[chainKey(sub[c[0]])]
				j := 0
				for _, idx := range c {
					for j < len(full) && full[j] != sub[idx].Nr {
						j++
					}
					if j == len(full) {
						t.Fatalf("shard chain order %v is not a subsequence of full-grid order %v", c, full)
					}
					j++
				}
			}
		}
	})
}
