package runner

import "testing"

// FuzzParseShard checks that ParseShard never panics and that every
// accepted designator is valid and round-trips through String: parsing
// the rendered form again renders identically. (The disabled shard 0/0
// renders "1/1", which parses back to the equivalent full-grid shard —
// hence the String-of-String comparison.)
func FuzzParseShard(f *testing.F) {
	for _, seed := range []string{"1/1", "2/4", "0/0", "-1/3", "abc", "3/2", "1/1000000", " 1/2", "1/2 trailing"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sh, err := ParseShard(s)
		if err != nil {
			return
		}
		if err := sh.Validate(); err != nil {
			t.Fatalf("ParseShard(%q) accepted invalid shard %+v: %v", s, sh, err)
		}
		once := sh.String()
		sh2, err := ParseShard(once)
		if err != nil {
			t.Fatalf("ParseShard(%q) round-trip rejected %q: %v", s, once, err)
		}
		if twice := sh2.String(); twice != once {
			t.Fatalf("ParseShard(%q): String round-trip %q -> %q", s, once, twice)
		}
	})
}
