package runner

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
)

// registryGrid is a small grid inside the 5 s chaos horizon. value/dur
// vectors are chosen per family so every point is meaningful (e.g.
// packet-loss probabilities stay in [0,1]).
func registryGrid(values []float64) core.CampaignSetup {
	return core.CampaignSetup{
		Targets:   []string{"vehicle.2"},
		Values:    values,
		Starts:    []des.Time{des.Second, 2 * des.Second, 3 * des.Second},
		Durations: []des.Time{500 * des.Millisecond, 1500 * des.Millisecond},
	}
}

// legacyFactory replicates the pre-registry buildModel switch for the
// families the equivalence test sweeps — the reference the registry
// path must match bit-for-bit.
func legacyFactory(kind core.AttackKind) core.ModelFactory {
	return func(spec core.ExperimentSpec, horizon des.Time, seed uint64) (core.AttackModel, error) {
		switch kind {
		case core.AttackDelay:
			return core.NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
		case core.AttackDoS:
			return core.NewDoSAttack(horizon, spec.Targets...)
		case core.AttackPacketLoss:
			stream := rng.New(seed, fmt.Sprintf("attack.loss.%d", spec.Nr))
			return core.NewPacketLossAttack(spec.Value, stream, spec.Targets...)
		case core.AttackReplay:
			return core.NewReplayAttack(des.FromSeconds(spec.Value), spec.Targets...)
		}
		return nil, fmt.Errorf("legacyFactory: unhandled kind %v", kind)
	}
}

// TestRegistryCampaignEquivalence is the refactor's self-test: the
// registry attack path (by enum kind and by family name) must reproduce
// the legacy hardcoded-switch behaviour bit-for-bit. For each family it
// runs the same grid three ways — enum kind, registry name, and a
// factory replicating the old switch — and requires byte-identical
// result CSVs.
func TestRegistryCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns in -short mode")
	}
	families := []struct {
		name   string
		kind   core.AttackKind
		values []float64
	}{
		{"delay", core.AttackDelay, []float64{0.3, 1.0}},
		{"dos", core.AttackDoS, []float64{5}},
		{"packet-loss", core.AttackPacketLoss, []float64{0.5, 0.9}},
		{"replay", core.AttackReplay, []float64{0.5, 1.5}},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			run := func(mutate func(*core.CampaignSetup)) []byte {
				setup := registryGrid(fam.values)
				mutate(&setup)
				var buf bytes.Buffer
				r, err := New(chaosEngine(t, 0), Options{Workers: 2}, NewCSVSink(&buf))
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if _, err := r.Run(context.Background(), setup); err != nil {
					t.Fatalf("Run: %v", err)
				}
				return buf.Bytes()
			}
			kindCSV := run(func(s *core.CampaignSetup) { s.Attack = fam.kind })
			nameCSV := run(func(s *core.CampaignSetup) { s.AttackName = fam.name })
			factoryCSV := run(func(s *core.CampaignSetup) {
				s.Factory = legacyFactory(fam.kind)
				s.AttackName = fam.name // label parity with the registry paths
			})
			if !bytes.Equal(kindCSV, nameCSV) {
				t.Errorf("registry name path differs from enum path:\nkind:\n%s\nname:\n%s", kindCSV, nameCSV)
			}
			if !bytes.Equal(kindCSV, factoryCSV) {
				t.Errorf("registry path differs from legacy factory:\nkind:\n%s\nfactory:\n%s", kindCSV, factoryCSV)
			}
		})
	}
}

// chaosAttackOnce registers the test-only "chaos-delay" family exactly
// once per process: a delay attack whose Build consults the chaos
// schedule by expNr, panicking or returning hang/NaN models like the
// chaos factory does.
var chaosAttackOnce sync.Once

func registerChaosAttack() {
	chaosAttackOnce.Do(func() {
		core.RegisterAttack(core.AttackEntry{
			Name: "chaos-delay",
			Desc: "test-only delay attack with a deterministic fault schedule",
			Build: func(ctx core.AttackContext) (core.AttackModel, error) {
				chaosAttackMu.Lock()
				chaosAttackAttempts[ctx.Spec.Nr]++
				n := chaosAttackAttempts[ctx.Spec.Nr]
				chaosAttackMu.Unlock()
				class, transient := chaosClass(ctx.Spec.Nr)
				if transient && n == 1 {
					panic(fmt.Sprintf("chaos transient #%d", ctx.Spec.Nr))
				}
				switch class {
				case "panic":
					panic(fmt.Sprintf("chaos persistent #%d", ctx.Spec.Nr))
				case "event-budget":
					return hangModel{}, nil
				case "invariant":
					return nanModel{}, nil
				}
				return core.NewDelayAttack(des.FromSeconds(ctx.Spec.Value), ctx.Spec.Targets...)
			},
		})
	})
}

// chaosAttackState backs the registered chaos-delay family. The
// registry is process-global, so the schedule state must outlive any
// single test run; tests reset the map under the lock.
var (
	chaosAttackMu       sync.Mutex
	chaosAttackAttempts = map[int]int{}
)

// TestRegistryChaosEquivalence runs the chaos fault schedule through a
// registered attack family and through the legacy chaos factory, and
// requires identical quarantine classes and byte-identical CSVs for the
// healthy experiments — the registry path must not weaken the
// failure-containment layer.
func TestRegistryChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 200-experiment chaos campaign in -short mode")
	}
	registerChaosAttack()

	run := func(mutate func(*core.CampaignSetup)) ([]byte, map[int]string) {
		setup := chaosGrid()
		mutate(&setup)
		var buf bytes.Buffer
		r, err := New(chaosEngine(t, 200_000), Options{
			Workers:     4,
			Retries:     1,
			MaxFailures: -1,
		}, NewCSVSink(&buf))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := r.Run(context.Background(), setup)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		classes := make(map[int]string)
		for _, f := range res.Failures {
			classes[f.Nr] = f.Class
		}
		return buf.Bytes(), classes
	}

	chaosAttackMu.Lock()
	clear(chaosAttackAttempts)
	chaosAttackMu.Unlock()
	regCSV, regClasses := run(func(s *core.CampaignSetup) {
		s.Attack = 0 // chaosGrid pre-sets the delay kind; resolve by name alone
		s.AttackName = "chaos-delay"
	})

	var mu sync.Mutex
	attempts := map[int]int{}
	facCSV, facClasses := run(func(s *core.CampaignSetup) {
		s.Attack = 0
		s.AttackName = "chaos-delay" // label parity; Factory wins in buildModel
		s.Factory = chaosFactory(&mu, attempts)
	})

	if !bytes.Equal(regCSV, facCSV) {
		t.Errorf("healthy-row CSVs differ:\nregistry:\n%s\nfactory:\n%s", regCSV, facCSV)
	}
	if len(regClasses) == 0 {
		t.Fatal("chaos schedule quarantined nothing; the test is vacuous")
	}
	if fmt.Sprint(sortedClasses(regClasses)) != fmt.Sprint(sortedClasses(facClasses)) {
		t.Errorf("quarantine classes differ:\nregistry: %v\nfactory:  %v",
			sortedClasses(regClasses), sortedClasses(facClasses))
	}
}

func sortedClasses(m map[int]string) []string {
	nrs := make([]int, 0, len(m))
	for nr := range m {
		nrs = append(nrs, nr)
	}
	sort.Ints(nrs)
	out := make([]string, 0, len(nrs))
	for _, nr := range nrs {
		out = append(out, fmt.Sprintf("%d:%s", nr, m[nr]))
	}
	return out
}

// TestRunMatrixDeterminism is the matrix analogue of
// TestRunnerDeterminism: a sequential matrix run, a parallel one, and a
// sharded-then-merged pair must produce byte-identical matrix CSVs, and
// the per-cell tallies must agree with the flat experiment stream.
func TestRunMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs matrix campaigns in -short mode")
	}
	cells := testMatrixCells(t)

	runMatrix := func(opts Options) (*MatrixResult, []byte) {
		var buf bytes.Buffer
		res, err := RunMatrix(context.Background(), cells, opts, NewMatrixCSVSink(&buf))
		if err != nil {
			t.Fatalf("RunMatrix(%+v): %v", opts, err)
		}
		return res, buf.Bytes()
	}

	seq, seqCSV := runMatrix(Options{Workers: 1})
	_, parCSV := runMatrix(Options{Workers: 4})
	if !bytes.Equal(seqCSV, parCSV) {
		t.Errorf("parallel matrix CSV differs from sequential:\nseq:\n%s\npar:\n%s", seqCSV, parCSV)
	}

	var shardCSVs [][]byte
	for i := 1; i <= 2; i++ {
		_, csvBytes := runMatrix(Options{Workers: 2, Shard: Shard{Index: i, Count: 2}})
		shardCSVs = append(shardCSVs, csvBytes)
	}
	merged := mergeCSVBytes(t, shardCSVs...)
	if !bytes.Equal(seqCSV, merged) {
		t.Errorf("merged matrix shards differ from sequential:\nseq:\n%s\nmerged:\n%s", seqCSV, merged)
	}

	// Per-cell tallies must re-derive from the flat stream.
	total := 0
	for _, label := range seq.CellCounts.Labels() {
		total += seq.CellCounts.Get(label).Total()
	}
	if total != len(seq.Experiments) {
		t.Errorf("cell tallies cover %d experiments, want %d", total, len(seq.Experiments))
	}
	if got := len(seq.Cells); got != len(cells) {
		t.Errorf("got %d cell results, want %d", got, len(cells))
	}

	// The flat stream must be in global grid order with contiguous Nrs.
	for i, e := range seq.Experiments {
		if e.Spec.Nr != i {
			t.Fatalf("experiment %d has Nr %d; global grid order broken", i, e.Spec.Nr)
		}
	}
}

// testMatrixCells is a 2-scenario x 2-attack matrix on the 5 s chaos
// horizon. Both cells share the paper scenario engine config but carry
// distinct labels, so the engine-reuse path and the label plumbing are
// both exercised.
func testMatrixCells(t *testing.T) []MatrixCell {
	t.Helper()
	eng := chaosEngineConfig(0)
	grid := func(base int, scenarioLabel, attack string, kind core.AttackKind, values []float64) core.CampaignSetup {
		s := registryGrid(values)
		s.Attack = kind
		s.AttackName = attack
		s.Scenario = scenarioLabel
		s.Base = base
		return s
	}
	var cells []MatrixCell
	base := 0
	for _, sc := range []string{"cell-a", "cell-b"} {
		for _, at := range []struct {
			name   string
			kind   core.AttackKind
			values []float64
		}{
			{"delay", core.AttackDelay, []float64{0.3, 1.0}},
			{"packet-loss", core.AttackPacketLoss, []float64{0.5}},
		} {
			setup := grid(base, sc, at.name, at.kind, at.values)
			cells = append(cells, MatrixCell{Scenario: sc, Attack: at.name, Engine: eng, Setup: setup})
			base += setup.NumExperiments()
		}
	}
	return cells
}

// chaosEngineConfig is chaosEngine's config without the construction —
// RunMatrix builds engines itself.
func chaosEngineConfig(budget uint64) core.EngineConfig {
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	return core.EngineConfig{
		Scenario:          ts,
		Comm:              scenario.PaperCommModel(),
		Seed:              1,
		CancelCheckEvents: 256,
		Invariants:        true,
		EventBudget:       budget,
	}
}

func mergeCSVBytes(t *testing.T, csvs ...[]byte) []byte {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	for i, b := range csvs {
		path := fmt.Sprintf("%s/shard%d.csv", dir, i)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatalf("write shard: %v", err)
		}
		paths = append(paths, path)
	}
	var merged bytes.Buffer
	if err := MergeResultFiles(&merged, paths...); err != nil {
		t.Fatalf("MergeResultFiles: %v", err)
	}
	return merged.Bytes()
}

// TestRunMatrixBaseValidation verifies the contiguity guard: a gap in
// the global expNr space is a configuration bug and must be rejected
// before any cell runs.
func TestRunMatrixBaseValidation(t *testing.T) {
	cells := testMatrixCells(t)
	cells[1].Setup.Base += 5
	_, err := RunMatrix(context.Background(), cells, Options{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "base") {
		t.Fatalf("RunMatrix accepted a non-contiguous base: %v", err)
	}
}

// TestRunMatrixResume verifies that resuming a partially completed
// matrix run skips the recorded rows and reproduces the full CSV.
func TestRunMatrixResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs matrix campaigns in -short mode")
	}
	cells := testMatrixCells(t)
	var full bytes.Buffer
	if _, err := RunMatrix(context.Background(), cells, Options{Workers: 1}, NewMatrixCSVSink(&full)); err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}

	// Cut the file mid-grid (header + first 7 rows) and resume.
	lines := bytes.SplitAfter(full.Bytes(), []byte("\n"))
	prefix := bytes.Join(lines[:8], nil)
	done, err := ReadResults(bytes.NewReader(prefix))
	if err != nil {
		t.Fatalf("ReadResults: %v", err)
	}
	if len(done) != 7 {
		t.Fatalf("prefix parsed to %d rows, want 7", len(done))
	}
	var tail bytes.Buffer
	if _, err := RunMatrix(context.Background(), cells, Options{Workers: 1, Resume: done},
		NewMatrixCSVAppendSink(&tail)); err != nil {
		t.Fatalf("resumed RunMatrix: %v", err)
	}
	combined := append(append([]byte(nil), prefix...), tail.Bytes()...)
	if !bytes.Equal(combined, full.Bytes()) {
		t.Errorf("resumed matrix CSV differs:\nfull:\n%s\ncombined:\n%s", full.Bytes(), combined)
	}
}
