package runner

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"comfase/internal/core"
)

// truncatedResultsCSV produces a small results CSV and chops the final
// line mid-record, the way a SIGKILL mid-write does.
func truncatedResultsCSV(t *testing.T) (full string, cut string, nRows int) {
	t.Helper()
	setup := chaosGrid()
	setup.Values = setup.Values[:2]
	setup.Starts = setup.Starts[:2]
	setup.Durations = setup.Durations[:1] // 4 experiments
	var buf bytes.Buffer
	r, err := New(chaosEngine(t, 0), Options{Workers: 1}, NewCSVSink(&buf))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Run(context.Background(), setup); err != nil {
		t.Fatalf("Run: %v", err)
	}
	full = buf.String()
	// Cut inside the final row: past its expNr field but before its
	// newline, leaving a parseable prefix plus one partial record.
	lastStart := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	cutAt := lastStart + (len(full)-1-lastStart)/2
	if cutAt <= lastStart {
		t.Fatal("final row too short to truncate meaningfully")
	}
	return full, full[:cutAt], 4
}

// TestReadResultsTruncatedTail is the regression test for resume after a
// killed run: the partial final record is dropped, every complete row
// survives, and the same malformed bytes anywhere else stay an error.
func TestReadResultsTruncatedTail(t *testing.T) {
	full, cut, nRows := truncatedResultsCSV(t)

	got, err := ReadResults(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("ReadResults(truncated): %v", err)
	}
	if len(got) != nRows-1 {
		t.Errorf("truncated read kept %d rows, want %d", len(got), nRows-1)
	}
	want, err := ReadResults(strings.NewReader(full))
	if err != nil {
		t.Fatalf("ReadResults(full): %v", err)
	}
	for nr, res := range got {
		if !reflect.DeepEqual(res, want[nr]) {
			t.Errorf("row %d differs after truncation: %+v vs %+v", nr, res, want[nr])
		}
	}

	// The same partial record newline-terminated is a complete write of
	// garbage, not an interrupted one: hard error.
	if _, err := ReadResults(strings.NewReader(cut + "\n")); err == nil {
		t.Error("newline-terminated partial record accepted")
	}
	// A partial record with healthy successors is mid-file corruption:
	// hard error. Splice the truncated tail in front of the full file's
	// final row.
	lastStart := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	corrupt := cut + "\n" + full[lastStart:]
	if _, err := ReadResults(strings.NewReader(corrupt)); err == nil {
		t.Error("mid-file partial record accepted")
	}
}

// TestReadQuarantineTruncated mirrors the tolerance for quarantine.jsonl.
func TestReadQuarantineTruncated(t *testing.T) {
	recs := []core.ExperimentFailure{
		{Nr: 0, Attack: "delay", Class: "panic", Error: "boom", Attempts: 2},
		{Nr: 1, Attack: "delay", Class: "timeout", Error: "slow", Attempts: 2},
		{Nr: 2, Attack: "delay", Class: "invariant", Error: "NaN", Attempts: 1},
	}
	var buf bytes.Buffer
	sink := NewQuarantineSink(&buf)
	for _, f := range recs {
		if err := sink.Put(f); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	full := buf.String()
	lastStart := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	cut := full[:lastStart+(len(full)-1-lastStart)/2]

	got, err := ReadQuarantine(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("ReadQuarantine(truncated): %v", err)
	}
	if len(got) != 2 || got[0].Class != "panic" || got[1].Class != "timeout" {
		t.Errorf("truncated read = %+v, want records 0 and 1", got)
	}

	if _, err := ReadQuarantine(strings.NewReader(cut + "\n")); err == nil {
		t.Error("newline-terminated partial record accepted")
	}
	corrupt := cut + "\n" + full[lastStart:]
	if _, err := ReadQuarantine(strings.NewReader(corrupt)); err == nil {
		t.Error("mid-file partial record accepted")
	}
	// Unknown failure classes are rejected even in well-formed records.
	if _, err := ReadQuarantine(strings.NewReader(`{"expNr":0,"class":"gremlin"}` + "\n")); err == nil {
		t.Error("unknown failure class accepted")
	}
}
