package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// chaosEngine is a 5 s paper scenario with the full failure-containment
// configuration: runtime invariants on and an event budget well above a
// healthy run (~10k events at this horizon) but far below a runaway
// event loop.
func chaosEngine(t *testing.T, budget uint64) *core.Engine {
	t.Helper()
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario:          ts,
		Comm:              scenario.PaperCommModel(),
		Seed:              1,
		CancelCheckEvents: 256,
		Invariants:        true,
		EventBudget:       budget,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// chaosGrid is a 200-point delay grid inside the 5 s horizon
// (10 starts x 5 values x 4 durations).
func chaosGrid() core.CampaignSetup {
	setup := core.CampaignSetup{
		Attack:    core.AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		Durations: []des.Time{500 * des.Millisecond, des.Second, 1500 * des.Millisecond, 2 * des.Second},
	}
	for s := 0; s < 10; s++ {
		setup.Starts = append(setup.Starts, des.Second+des.Time(s)*200*des.Millisecond)
	}
	return setup
}

// chaosClass is the deterministic fault schedule of the chaos self-test,
// keyed by expNr. First match wins, so the classes never overlap:
//
//	transient    — panics on the first attempt, healthy on the retry
//	panic        — panics on every attempt
//	event-budget — installs a runaway same-time event loop (a hang,
//	               caught by the kernel event budget)
//	invariant    — corrupts a vehicle state to NaN (caught by the
//	               runtime invariant checks)
func chaosClass(nr int) (class string, transient bool) {
	switch {
	case nr%17 == 3:
		return "", true
	case nr%29 == 5:
		return "panic", false
	case nr%31 == 7:
		return "event-budget", false
	case nr%37 == 11:
		return "invariant", false
	}
	return "", false
}

// hangModel schedules an event that reschedules itself at the current
// simulation time forever: simulated time never advances and the run
// only ends when a watchdog trips.
type hangModel struct{}

func (hangModel) Name() string      { return "chaos-hang" }
func (hangModel) Targets() []string { return []string{"vehicle.2"} }
func (hangModel) Install(sim *scenario.Simulation) error {
	k := sim.Kernel
	var loop func()
	loop = func() { k.ScheduleAfter(0, loop) }
	k.ScheduleAfter(0, loop)
	return nil
}
func (hangModel) Uninstall(*scenario.Simulation) error { return nil }

// nanModel corrupts the target vehicle's speed to NaN at install time —
// the kind of silent numeric corruption the invariant checks exist for.
type nanModel struct{}

func (nanModel) Name() string      { return "chaos-nan" }
func (nanModel) Targets() []string { return []string{"vehicle.2"} }
func (nanModel) Install(sim *scenario.Simulation) error {
	sim.Members[1].Vehicle().State.Speed = math.NaN()
	return nil
}
func (nanModel) Uninstall(*scenario.Simulation) error { return nil }

// chaosFactory injects the fault schedule. attempts counts factory calls
// per expNr (the factory runs inside the engine's panic boundary, under
// concurrent workers).
func chaosFactory(mu *sync.Mutex, attempts map[int]int) core.ModelFactory {
	return func(spec core.ExperimentSpec, horizon des.Time, seed uint64) (core.AttackModel, error) {
		mu.Lock()
		attempts[spec.Nr]++
		n := attempts[spec.Nr]
		mu.Unlock()
		class, transient := chaosClass(spec.Nr)
		if transient && n == 1 {
			panic(fmt.Sprintf("chaos transient #%d", spec.Nr))
		}
		switch class {
		case "panic":
			panic(fmt.Sprintf("chaos persistent #%d", spec.Nr))
		case "event-budget":
			return hangModel{}, nil
		case "invariant":
			return nanModel{}, nil
		}
		return core.NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
	}
}

// TestChaosCampaign is the end-to-end proof of the failure-containment
// layer: a 200-experiment campaign with deterministically scheduled
// panics, hangs and NaN corruption completes, quarantines every
// persistent failure with the correct class, retries the transient ones,
// and emits byte-identical CSV rows for the healthy experiments compared
// to an uninjected run of the same grid.
func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("two 200-experiment campaigns in -short mode")
	}
	setup := chaosGrid()
	total := setup.NumExperiments()
	if total != 200 {
		t.Fatalf("grid size = %d, want 200", total)
	}
	wantClass := map[int]string{} // persistent failures by expNr
	transientNrs := map[int]bool{}
	for nr := 0; nr < total; nr++ {
		class, transient := chaosClass(nr)
		if transient {
			transientNrs[nr] = true
		} else if class != "" {
			wantClass[nr] = class
		}
	}

	// Reference: the same grid, no fault injection.
	var refCSV bytes.Buffer
	refRunner, err := New(chaosEngine(t, 100_000), Options{Workers: 4}, NewCSVSink(&refCSV))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	refRes, err := refRunner.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(refRes.Experiments) != total || refRes.FailureCounts.Total() != 0 {
		t.Fatalf("reference: %d experiments, %d failures", len(refRes.Experiments), refRes.FailureCounts.Total())
	}

	// Chaos: same grid with the fault schedule layered on top.
	chaos := setup
	var mu sync.Mutex
	attempts := map[int]int{}
	chaos.Factory = chaosFactory(&mu, attempts)
	var gotCSV bytes.Buffer
	quarantine := &MemoryFailureSink{}
	var jsonl bytes.Buffer
	jsonlSink := NewQuarantineSink(&jsonl)
	r, err := New(chaosEngine(t, 100_000), Options{
		Workers:     4,
		Retries:     1,
		MaxFailures: -1,
		Quarantine:  teeFailureSink{quarantine, jsonlSink},
	}, NewCSVSink(&gotCSV))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(context.Background(), chaos)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	// Every persistent failure is quarantined with the right class and
	// exhausted both attempts; nothing healthy is quarantined.
	if len(res.Failures) != len(wantClass) {
		t.Fatalf("failures = %d, want %d", len(res.Failures), len(wantClass))
	}
	for _, f := range res.Failures {
		want, ok := wantClass[f.Nr]
		if !ok {
			t.Errorf("experiment %d quarantined unexpectedly: %+v", f.Nr, f)
			continue
		}
		if f.Class != want {
			t.Errorf("experiment %d class = %q, want %q", f.Nr, f.Class, want)
		}
		if f.Attempts != 2 {
			t.Errorf("experiment %d attempts = %d, want 2", f.Nr, f.Attempts)
		}
		if f.Class == "panic" && !strings.Contains(f.Stack, "chaosFactory") {
			t.Errorf("experiment %d panic record has no useful stack", f.Nr)
		}
	}
	if res.FailureCounts.Total() != len(wantClass) {
		t.Errorf("failure counts = %+v", res.FailureCounts)
	}

	// The quarantine sink received the records in grid (expNr) order,
	// and the JSONL encoding round-trips.
	if !sort.SliceIsSorted(quarantine.Failures, func(i, j int) bool {
		return quarantine.Failures[i].Nr < quarantine.Failures[j].Nr
	}) {
		t.Error("quarantine records not in grid order")
	}
	fromDisk, err := ReadQuarantine(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("ReadQuarantine: %v", err)
	}
	if len(fromDisk) != len(wantClass) {
		t.Errorf("quarantine.jsonl has %d records, want %d", len(fromDisk), len(wantClass))
	}
	for nr, class := range wantClass {
		if fromDisk[nr].Class != class {
			t.Errorf("quarantine.jsonl expNr %d class = %q, want %q", nr, fromDisk[nr].Class, class)
		}
	}

	// Transient experiments were retried (factory called twice) and
	// produced results.
	for nr := range transientNrs {
		if attempts[nr] != 2 {
			t.Errorf("transient experiment %d saw %d attempts, want 2", nr, attempts[nr])
		}
	}
	if len(res.Experiments) != total-len(wantClass) {
		t.Fatalf("experiments = %d, want %d", len(res.Experiments), total-len(wantClass))
	}

	// Healthy rows — retried transients included — are byte-identical to
	// the uninjected run: the chaos CSV must equal the reference CSV
	// minus the quarantined expNrs.
	want := filterCSVRows(t, refCSV.String(), wantClass)
	if got := gotCSV.String(); got != want {
		t.Errorf("chaos CSV differs from filtered reference:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// teeFailureSink fans quarantine records out to several sinks.
type teeFailureSink []FailureSink

func (ts teeFailureSink) Put(f core.ExperimentFailure) error {
	for _, s := range ts {
		if err := s.Put(f); err != nil {
			return err
		}
	}
	return nil
}

func (ts teeFailureSink) Flush() error {
	for _, s := range ts {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// filterCSVRows drops the rows whose expNr is quarantined.
func filterCSVRows(t *testing.T, csv string, drop map[int]string) string {
	t.Helper()
	lines := strings.SplitAfter(csv, "\n")
	var b strings.Builder
	for i, line := range lines {
		if i == 0 || strings.TrimSpace(line) == "" {
			b.WriteString(line)
			continue
		}
		nr, err := strconv.Atoi(line[:strings.IndexByte(line, ',')])
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if _, failed := drop[nr]; !failed {
			b.WriteString(line)
		}
	}
	return b.String()
}

// TestExperimentTimeoutClass drives the wall-clock watchdog: a hanging
// experiment with no event budget is cut off by ExperimentTimeout and
// quarantined as a "timeout" failure.
func TestExperimentTimeoutClass(t *testing.T) {
	setup := chaosGrid()
	setup.Values = setup.Values[:1]
	setup.Starts = setup.Starts[:1]
	setup.Durations = setup.Durations[:1]
	setup.Factory = func(core.ExperimentSpec, des.Time, uint64) (core.AttackModel, error) {
		return hangModel{}, nil
	}
	quarantine := &MemoryFailureSink{}
	r, err := New(chaosEngine(t, 0), Options{
		Workers:           1,
		MaxFailures:       -1,
		ExperimentTimeout: 100 * time.Millisecond,
		Quarantine:        quarantine,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(quarantine.Failures) != 1 || quarantine.Failures[0].Class != "timeout" {
		t.Fatalf("quarantine = %+v, want one timeout record", quarantine.Failures)
	}
	if res.FailureCounts.Timeout != 1 {
		t.Errorf("failure counts = %+v", res.FailureCounts)
	}
}

// TestFailureBudgetEdges pins the failure-budget policy at its edges
// with a grid whose experiments all fail (the model factory errors).
func TestFailureBudgetEdges(t *testing.T) {
	grid := func() core.CampaignSetup {
		setup := chaosGrid()
		setup.Values = setup.Values[:2]
		setup.Starts = setup.Starts[:2]
		setup.Durations = setup.Durations[:1]
		setup.Factory = func(spec core.ExperimentSpec, _ des.Time, _ uint64) (core.AttackModel, error) {
			return nil, fmt.Errorf("chaos: experiment %d is unbuildable", spec.Nr)
		}
		return setup // 4 experiments, all destined to fail
	}
	run := func(t *testing.T, maxFailures int) (*core.CampaignResult, *MemoryFailureSink, error) {
		t.Helper()
		quarantine := &MemoryFailureSink{}
		r, err := New(chaosEngine(t, 0), Options{
			Workers:     1,
			MaxFailures: maxFailures,
			Quarantine:  quarantine,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := r.Run(context.Background(), grid())
		return res, quarantine, err
	}

	t.Run("budget 0 fails fast", func(t *testing.T) {
		_, quarantine, err := run(t, 0)
		if !errors.Is(err, ErrFailureBudget) {
			t.Fatalf("err = %v, want ErrFailureBudget", err)
		}
		// The triggering failure still reaches the quarantine sink.
		if len(quarantine.Failures) != 1 || quarantine.Failures[0].Class != "error" {
			t.Errorf("quarantine = %+v, want the triggering record", quarantine.Failures)
		}
	})
	t.Run("budget = total completes", func(t *testing.T) {
		res, quarantine, err := run(t, 4)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(res.Failures) != 4 || len(res.Experiments) != 0 {
			t.Fatalf("failures = %d experiments = %d, want 4/0", len(res.Failures), len(res.Experiments))
		}
		if len(quarantine.Failures) != 4 || res.FailureCounts.Error != 4 {
			t.Errorf("quarantine = %d records, counts = %+v", len(quarantine.Failures), res.FailureCounts)
		}
	})
	t.Run("budget total-1 aborts on last", func(t *testing.T) {
		_, _, err := run(t, 3)
		if !errors.Is(err, ErrFailureBudget) {
			t.Fatalf("err = %v, want ErrFailureBudget", err)
		}
	})
	t.Run("unlimited budget completes", func(t *testing.T) {
		res, _, err := run(t, -1)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(res.Failures) != 4 {
			t.Fatalf("failures = %d, want 4", len(res.Failures))
		}
	})
}

// TestRetryRecoversTransientFailure pins the retry policy in isolation:
// one experiment that fails once and then succeeds must not be
// quarantined.
func TestRetryRecoversTransientFailure(t *testing.T) {
	setup := chaosGrid()
	setup.Values = setup.Values[:1]
	setup.Starts = setup.Starts[:1]
	setup.Durations = setup.Durations[:1]
	var mu sync.Mutex
	calls := 0
	setup.Factory = func(spec core.ExperimentSpec, _ des.Time, _ uint64) (core.AttackModel, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, errors.New("chaos: transient")
		}
		return core.NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
	}
	quarantine := &MemoryFailureSink{}
	r, err := New(chaosEngine(t, 0), Options{
		Workers:    1,
		Retries:    2,
		Quarantine: quarantine,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 2 {
		t.Errorf("factory called %d times, want 2", calls)
	}
	if len(res.Experiments) != 1 || len(quarantine.Failures) != 0 {
		t.Errorf("experiments = %d, quarantined = %d", len(res.Experiments), len(quarantine.Failures))
	}
}

// TestResumeFailuresSkipsQuarantined proves the quarantine file is
// resumable: a resumed run re-executes neither completed nor quarantined
// grid points.
func TestResumeFailuresSkipsQuarantined(t *testing.T) {
	setup := chaosGrid()
	setup.Values = setup.Values[:2]
	setup.Starts = setup.Starts[:2]
	setup.Durations = setup.Durations[:1] // 4 experiments
	failNr := 1
	factory := func(spec core.ExperimentSpec, _ des.Time, _ uint64) (core.AttackModel, error) {
		if spec.Nr == failNr {
			return nil, errors.New("chaos: permanently broken")
		}
		return core.NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
	}
	setup.Factory = factory

	var csvBuf, jsonl bytes.Buffer
	r, err := New(chaosEngine(t, 0), Options{
		Workers:     1,
		MaxFailures: -1,
		Quarantine:  NewQuarantineSink(&jsonl),
	}, NewCSVSink(&csvBuf))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Run(context.Background(), setup); err != nil {
		t.Fatalf("first run: %v", err)
	}

	resume, err := ReadResults(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadResults: %v", err)
	}
	resumeFailures, err := ReadQuarantine(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("ReadQuarantine: %v", err)
	}
	if len(resume) != 3 || len(resumeFailures) != 1 {
		t.Fatalf("resume inputs: %d results, %d failures", len(resume), len(resumeFailures))
	}

	setup.Factory = func(core.ExperimentSpec, des.Time, uint64) (core.AttackModel, error) {
		t.Error("resumed run re-executed a grid point")
		return nil, errors.New("unreachable")
	}
	var csv2, jsonl2 bytes.Buffer
	r2, err := New(chaosEngine(t, 0), Options{
		Workers:        1,
		MaxFailures:    0, // resumed failures must not count against the budget
		Resume:         resume,
		ResumeFailures: resumeFailures,
		Quarantine:     NewQuarantineSink(&jsonl2),
	}, NewCSVAppendSink(&csv2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r2.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if len(res.Experiments) != 3 || len(res.Failures) != 1 || res.Failures[0].Nr != failNr {
		t.Fatalf("resumed result: %d experiments, failures %+v", len(res.Experiments), res.Failures)
	}
	if csv2.Len() != 0 || jsonl2.Len() != 0 {
		t.Errorf("resumed run re-emitted rows (csv %d bytes, quarantine %d bytes)", csv2.Len(), jsonl2.Len())
	}
}
