package runner

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comfase/internal/core"
	"comfase/internal/obs"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// obsEngine is chaosEngine with a metrics registry attached (nil reg
// reproduces chaosEngine exactly).
func obsEngine(t *testing.T, budget uint64, reg *obs.Registry) *core.Engine {
	t.Helper()
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario:          ts,
		Comm:              scenario.PaperCommModel(),
		Seed:              1,
		CancelCheckEvents: 256,
		Invariants:        true,
		EventBudget:       budget,
		Metrics:           reg,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// runWithMetrics executes setup with the full observability stack wired
// in (registry on engine and runner, live heartbeat to a temp file) when
// reg is non-nil, and with everything off when reg is nil. It returns the
// CSV bytes and the quarantined failures in grid order.
func runWithMetrics(t *testing.T, setup core.CampaignSetup, opts Options, reg *obs.Registry) (string, []core.ExperimentFailure) {
	t.Helper()
	quarantine := &MemoryFailureSink{}
	opts.Quarantine = quarantine
	opts.Metrics = reg
	if reg != nil {
		hb := obs.NewHeartbeat(filepath.Join(t.TempDir(), "heartbeat.json"), time.Millisecond, reg.Snapshot)
		if err := hb.Start(); err != nil {
			t.Fatalf("heartbeat start: %v", err)
		}
		defer func() {
			if err := hb.Stop(); err != nil {
				t.Errorf("heartbeat stop: %v", err)
			}
		}()
	}
	var csv bytes.Buffer
	r, err := New(obsEngine(t, 100_000, reg), opts, NewCSVSink(&csv))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Run(context.Background(), setup); err != nil {
		t.Fatalf("Run (metrics=%v): %v", reg != nil, err)
	}
	return csv.String(), quarantine.Failures
}

// TestMetricsCampaignEquivalence is the zero-interference proof for the
// observability layer: the same grid executed with the full metrics stack
// (registry on engine and runner, heartbeat publishing every millisecond)
// and with metrics off entirely must emit byte-identical result CSVs and
// identical quarantine records — on a healthy grid and under the chaos
// fault schedule with retries in play. Observation must never perturb the
// experiment.
func TestMetricsCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 200-experiment campaigns in -short mode")
	}
	setup := chaosGrid()

	t.Run("healthy", func(t *testing.T) {
		on, _ := runWithMetrics(t, setup, Options{Workers: 4}, obs.NewRegistry())
		off, _ := runWithMetrics(t, setup, Options{Workers: 4}, nil)
		if on != off {
			t.Errorf("metrics-on CSV differs from metrics-off CSV:\non:\n%s\noff:\n%s", on, off)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		opts := Options{Workers: 4, Retries: 1, MaxFailures: -1}
		chaosOn := setup
		var muOn sync.Mutex
		chaosOn.Factory = chaosFactory(&muOn, map[int]int{})
		on, onFails := runWithMetrics(t, chaosOn, opts, obs.NewRegistry())

		chaosOff := setup
		var muOff sync.Mutex
		chaosOff.Factory = chaosFactory(&muOff, map[int]int{})
		off, offFails := runWithMetrics(t, chaosOff, opts, nil)

		if on != off {
			t.Errorf("chaos metrics-on CSV differs from metrics-off CSV:\non:\n%s\noff:\n%s", on, off)
		}
		if len(onFails) != len(offFails) {
			t.Fatalf("quarantine size: %d with metrics, %d without", len(onFails), len(offFails))
		}
		for i := range onFails {
			a, b := onFails[i], offFails[i]
			if a.Nr != b.Nr || a.Class != b.Class || a.Attempts != b.Attempts {
				t.Errorf("quarantine record %d differs: metrics {Nr:%d Class:%q Attempts:%d}, plain {Nr:%d Class:%q Attempts:%d}",
					i, a.Nr, a.Class, a.Attempts, b.Nr, b.Class, b.Attempts)
			}
		}
	})
}

// TestHeartbeatLiveCampaign polls the heartbeat file while a campaign
// executes: every observed snapshot must decode as valid JSON with a
// strictly increasing sequence number and monotonically non-decreasing
// counters, a mid-write truncation of the file must surface as a clean
// decode error (never garbage values), and the final snapshot must agree
// with the campaign's actual outcome.
func TestHeartbeatLiveCampaign(t *testing.T) {
	reg := obs.NewRegistry()
	eng := obsEngine(t, 100_000, reg)
	setup := core.CampaignSetup{
		Attack:    core.AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.2, 0.5},
		Starts:    []des.Time{des.Second, des.Second + 200*des.Millisecond, des.Second + 400*des.Millisecond},
		Durations: []des.Time{300 * des.Millisecond, 600 * des.Millisecond},
	}
	total := setup.NumExperiments()

	path := filepath.Join(t.TempDir(), "heartbeat.json")
	hb := obs.NewHeartbeat(path, time.Millisecond, reg.Snapshot)
	if err := hb.Start(); err != nil {
		t.Fatalf("heartbeat start: %v", err)
	}

	// The poller races the campaign: it reads whatever is published and
	// verifies the monotonicity contract across everything it sees.
	stop := make(chan struct{})
	pollErr := make(chan error, 1)
	var decoded atomic.Int64
	go func() {
		defer close(pollErr)
		var lastSeq uint64
		last := map[string]uint64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, err := os.ReadFile(path)
			if err != nil {
				pollErr <- err
				return
			}
			s, err := obs.DecodeSnapshot(data)
			if err != nil {
				// Rename-based publishing means a reader sees complete
				// documents only; any decode failure is a real bug.
				pollErr <- err
				return
			}
			if s.Seq <= lastSeq {
				continue // same document as the previous poll
			}
			lastSeq = s.Seq
			decoded.Add(1)
			for name, v := range s.Counters {
				if prev, ok := last[name]; ok && v < prev {
					pollErr <- errors.New("counter " + name + " decreased between snapshots")
					return
				}
				last[name] = v
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	r, err := New(eng, Options{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A fast machine can finish the whole campaign inside one heartbeat
	// period; the writer keeps publishing until Stop, so wait for the
	// poller to observe several distinct snapshots before tearing down.
	deadline := time.Now().Add(5 * time.Second)
	for decoded.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	if err, ok := <-pollErr; ok && err != nil {
		t.Fatalf("heartbeat poller: %v", err)
	}
	if err := hb.Stop(); err != nil {
		t.Fatalf("heartbeat stop: %v", err)
	}
	if n := decoded.Load(); n < 3 {
		t.Fatalf("poller decoded %d distinct snapshots, want >= 3", n)
	}

	// The file's final state is Stop's end-of-campaign snapshot and must
	// agree with the campaign result.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read final heartbeat: %v", err)
	}
	final, err := obs.DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode final heartbeat: %v", err)
	}
	if got := final.Counters["engine.experiments_completed"]; got != uint64(total) {
		t.Errorf("final engine.experiments_completed = %d, want %d", got, total)
	}
	if got := final.Counters["runner.results_emitted"]; got != uint64(len(res.Experiments)) {
		t.Errorf("final runner.results_emitted = %d, want %d", got, len(res.Experiments))
	}
	if got := final.Gauges["runner.shard_done"]; got != int64(total) {
		t.Errorf("final runner.shard_done = %d, want %d", got, total)
	}
	if got := final.Counters["kernel.events_executed"]; got == 0 {
		t.Error("final kernel.events_executed = 0, want > 0")
	}
	if final.Histograms["engine.experiment_wall_seconds"].Count != uint64(total) {
		t.Errorf("wall histogram count = %d, want %d",
			final.Histograms["engine.experiment_wall_seconds"].Count, total)
	}

	// Mid-write truncation: a tool that copies the file non-atomically can
	// see a prefix; any cut into the JSON document must fail decoding
	// cleanly. (len-1 only strips the trailing newline, so the deepest
	// structural cut is len-2: inside the closing brace.)
	for _, cut := range []int{1, len(data) / 2, len(data) - 2} {
		if _, err := obs.DecodeSnapshot(data[:cut]); !errors.Is(err, obs.ErrInvalidSnapshot) {
			t.Errorf("DecodeSnapshot(%d-byte truncation) = %v, want ErrInvalidSnapshot", cut, err)
		}
	}
}
