package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"comfase/internal/analysis"
	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     1,
		// A small poll granularity keeps cancellation latency tiny in
		// tests without measurably slowing the ~100k-event experiments.
		CancelCheckEvents: 512,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// testGrid is an 8-point grid spanning severe and benign regions.
func testGrid() core.CampaignSetup {
	return core.CampaignSetup{
		Attack:    core.AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{0.4, 2.0},
		Starts:    []des.Time{17 * des.Second, 19800 * des.Millisecond},
		Durations: []des.Time{2 * des.Second, 10 * des.Second},
	}
}

func runToCSV(t *testing.T, opts Options, setup core.CampaignSetup) (*core.CampaignResult, []byte) {
	t.Helper()
	var buf bytes.Buffer
	r, err := New(newEngine(t), opts, NewCSVSink(&buf))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("Run(%+v): %v", opts, err)
	}
	return res, buf.Bytes()
}

// TestRunnerDeterminism is the end-to-end invariant check of the
// campaign runtime: sequential, parallel, and sharded-then-merged runs
// of the same (config, seed) grid produce identical CampaignResults and
// byte-identical result CSVs.
func TestRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("32 experiments in -short mode")
	}
	setup := testGrid()

	seq, seqCSV := runToCSV(t, Options{Workers: 1}, setup)
	par, parCSV := runToCSV(t, Options{Workers: 4}, setup)

	if !bytes.Equal(seqCSV, parCSV) {
		t.Errorf("parallel CSV differs from sequential:\nseq:\n%s\npar:\n%s", seqCSV, parCSV)
	}
	if seq.Counts != par.Counts {
		t.Errorf("counts differ: %v vs %v", seq.Counts, par.Counts)
	}
	if !reflect.DeepEqual(stripFactories(seq.Experiments), stripFactories(par.Experiments)) {
		t.Error("parallel experiments differ from sequential")
	}

	// Two shards, each its own engine (separate-process model), merged.
	dir := t.TempDir()
	var shardPaths []string
	for i := 1; i <= 2; i++ {
		_, csvBytes := runToCSV(t, Options{Workers: 2, Shard: Shard{Index: i, Count: 2}}, setup)
		path := filepath.Join(dir, Shard{Index: i, Count: 2}.String()[:1]+".csv")
		if err := os.WriteFile(path, csvBytes, 0o644); err != nil {
			t.Fatalf("write shard: %v", err)
		}
		shardPaths = append(shardPaths, path)
	}
	var merged bytes.Buffer
	if err := MergeResultFiles(&merged, shardPaths...); err != nil {
		t.Fatalf("MergeResultFiles: %v", err)
	}
	if !bytes.Equal(seqCSV, merged.Bytes()) {
		t.Errorf("merged shard CSV differs from sequential:\nseq:\n%s\nmerged:\n%s", seqCSV, merged.Bytes())
	}
}

// stripFactories zeroes the non-comparable Factory fields so
// reflect.DeepEqual can compare result slices.
func stripFactories(exps []core.ExperimentResult) []core.ExperimentResult {
	out := append([]core.ExperimentResult(nil), exps...)
	for i := range out {
		out[i].Spec.Factory = nil
	}
	return out
}

// TestRunnerCancelFlushesPartialResults verifies the SIGINT story: a
// mid-campaign cancel aborts promptly, the CSV sink retains a parseable
// grid-order prefix, and a resumed run completes exactly the remaining
// grid points and reproduces the uninterrupted file byte-for-byte.
func TestRunnerCancelFlushesPartialResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	setup := testGrid()
	_, wantCSV := runToCSV(t, Options{Workers: 1}, setup)

	// Interrupt after the second completion. One worker makes the cut
	// deterministic: completion order is grid order, so exactly rows 0-1
	// are released before the cancel lands (with two workers on a small
	// machine, one worker can finish points 1 and 2 before the other
	// finishes point 0, leaving an empty — and flaky — released prefix).
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	r, err := New(newEngine(t), Options{
		Workers: 1,
		Progress: func(done, total int) {
			if done == 2 {
				cancel()
			}
		},
	}, NewCSVSink(&buf))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Run(ctx, setup); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}

	completed, err := ReadResults(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadResults on partial file: %v", err)
	}
	if len(completed) == 0 || len(completed) >= setup.NumExperiments() {
		t.Fatalf("partial file has %d rows, want a strict non-empty subset of %d",
			len(completed), setup.NumExperiments())
	}
	// Grid-order release means the partial file is a byte prefix of the
	// sequential output.
	if !bytes.HasPrefix(wantCSV, buf.Bytes()) {
		t.Errorf("partial CSV is not a prefix of the sequential CSV:\npartial:\n%s", buf.Bytes())
	}

	// Resume: append to the partial buffer, count re-executions.
	var executed atomic.Int64
	resumeSetup := setup
	resumeSetup.Factory = func(spec core.ExperimentSpec, horizon des.Time, seed uint64) (core.AttackModel, error) {
		executed.Add(1)
		return core.NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
	}
	r2, err := New(newEngine(t), Options{Workers: 2, Resume: completed}, NewCSVAppendSink(&buf))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r2.Run(context.Background(), resumeSetup)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	remaining := int64(setup.NumExperiments() - len(completed))
	if executed.Load() != remaining {
		t.Errorf("resume executed %d experiments, want exactly the %d remaining", executed.Load(), remaining)
	}
	if !bytes.Equal(buf.Bytes(), wantCSV) {
		t.Errorf("resumed CSV differs from uninterrupted run:\nwant:\n%s\ngot:\n%s", wantCSV, buf.Bytes())
	}
	if res.Counts.Total() != setup.NumExperiments() {
		t.Errorf("resumed result covers %d experiments, want %d", res.Counts.Total(), setup.NumExperiments())
	}
}

// TestRunnerProgressMonotonicWithResume checks done counts start at the
// resumed offset and increase by one per completion.
func TestRunnerProgressMonotonicWithResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	setup := testGrid()
	full, _ := runToCSV(t, Options{Workers: 1}, setup)
	resume := map[int]core.ExperimentResult{
		full.Experiments[0].Spec.Nr: full.Experiments[0],
		full.Experiments[3].Spec.Nr: full.Experiments[3],
	}
	var mu sync.Mutex
	var dones []int
	r, err := New(newEngine(t), Options{
		Workers: 4,
		Resume:  resume,
		Progress: func(done, total int) {
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
			if total != 8 {
				t.Errorf("total = %d, want 8", total)
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Run(context.Background(), setup); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != 7 { // initial resumed notification + 6 completions
		t.Fatalf("progress called %d times (%v), want 7", len(dones), dones)
	}
	for i, d := range dones {
		if d != i+2 {
			t.Fatalf("progress sequence %v, want 2..8", dones)
		}
	}
}

func TestShardPartitionIsDisjointAndComplete(t *testing.T) {
	const n = 4
	const grid = 37
	covered := make([]int, grid)
	for i := 1; i <= n; i++ {
		sh := Shard{Index: i, Count: n}
		for nr := 0; nr < grid; nr++ {
			if sh.Contains(nr) {
				covered[nr]++
			}
		}
	}
	for nr, c := range covered {
		if c != 1 {
			t.Errorf("grid point %d covered by %d shards, want exactly 1", nr, c)
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"1/1": {1, 1},
		"2/4": {2, 4},
		"4/4": {4, 4},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "0/4", "5/4", "-1/2", "2", "a/b", "1/0"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

func TestReadResultsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	res, csvBytes := runToCSV(t, Options{Workers: 1}, core.CampaignSetup{
		Attack:    core.AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{2.0},
		Starts:    []des.Time{18 * des.Second},
		Durations: []des.Time{10 * des.Second},
	})
	completed, err := ReadResults(bytes.NewReader(csvBytes))
	if err != nil {
		t.Fatalf("ReadResults: %v", err)
	}
	want := res.Experiments[0]
	got, ok := completed[want.Spec.Nr]
	if !ok {
		t.Fatalf("expNr %d missing from %v", want.Spec.Nr, completed)
	}
	if got.Outcome != want.Outcome || got.Collider != want.Collider ||
		got.Spec.Kind != want.Spec.Kind || got.Spec.Start != want.Spec.Start ||
		got.Spec.Duration != want.Spec.Duration || got.Spec.Value != want.Spec.Value ||
		len(got.Collisions) != len(want.Collisions) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestReadResultsRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"time_s,vehicle,pos_m\n1,2,3\n", // wrong schema
		"expNr,attack,value,start_s,duration_s,outcome,max_decel_mps2,max_speed_dev_mps,collisions,collider\nx,delay,1,1,1,severe,1,1,0,\n",
		"expNr,attack,value,start_s,duration_s,outcome,max_decel_mps2,max_speed_dev_mps,collisions,collider\n1,delay,1,1,1,spicy,1,1,0,\n",
		"expNr,attack,value,start_s,duration_s,outcome,max_decel_mps2,max_speed_dev_mps,collisions,collider\n" +
			"1,delay,1,1,1,severe,1,1,0,\n1,delay,1,1,1,severe,1,1,0,\n", // duplicate
	} {
		if _, err := ReadResults(strings.NewReader(in)); err == nil {
			t.Errorf("ReadResults accepted %q", in)
		}
	}
	got, err := ReadResults(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: got %v, %v; want empty map", got, err)
	}
}

func TestJSONAndMemorySinks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	var jsonBuf bytes.Buffer
	mem := &MemorySink{}
	r, err := New(newEngine(t), Options{Workers: 1}, NewJSONSink(&jsonBuf), mem)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	setup := core.CampaignSetup{
		Attack:    core.AttackDelay,
		Targets:   []string{"vehicle.2"},
		Values:    []float64{2.0},
		Starts:    []des.Time{18 * des.Second},
		Durations: []des.Time{2 * des.Second, 10 * des.Second},
	}
	res, err := r.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mem.Counts != res.Counts || len(mem.Experiments) != 2 {
		t.Errorf("memory sink: counts %v (want %v), %d experiments", mem.Counts, res.Counts, len(mem.Experiments))
	}
	lines := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("json sink wrote %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if row["expNr"] != float64(i) || row["attack"] != "delay" {
			t.Errorf("line %d = %v", i, row)
		}
	}
}

// TestRunnerMatchesEngineCampaign ties the runner to the legacy
// Engine.RunCampaign path: same grid, same results.
func TestRunnerMatchesEngineCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	setup := testGrid()
	legacy, err := newEngine(t).RunCampaign(setup, nil)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	var buf bytes.Buffer
	if err := analysis.ExperimentsCSV(&buf, legacy.Experiments); err != nil {
		t.Fatalf("ExperimentsCSV: %v", err)
	}
	_, runnerCSV := runToCSV(t, Options{Workers: 4}, setup)
	if !bytes.Equal(buf.Bytes(), runnerCSV) {
		t.Errorf("runner CSV differs from legacy RunCampaign export")
	}
}
