package runner

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"comfase/internal/analysis"
	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
)

// ReadResults parses a per-experiment CSV result file (the schema of
// analysis.ExperimentsCSV / CSVSink) and returns the completed
// experiments keyed by expNr — the input of Options.Resume.
//
// A truncated FINAL line — a run killed mid-write (power loss, SIGKILL)
// leaves a partial record with no trailing newline — is tolerated and
// dropped; the resume run simply re-executes that grid point. Malformed
// records that are newline-terminated or have healthy successors, and
// duplicate expNrs, remain hard errors — those indicate real corruption,
// not an interrupted write.
//
// The reconstruction is lossy where the CSV is: MaxDecel/MaxSpeedDev
// carry the file's 4-decimal precision, per-vehicle deceleration vectors
// are gone, and the collision list is rebuilt only as far as its length
// and the first collider. That is sufficient for every aggregate the
// analysis package computes (outcome counts, figure series, collider
// attribution) — and resumed rows are never re-written to the result
// file, so the on-disk record stays exact.
func ReadResults(r io.Reader) (map[int]core.ExperimentResult, error) {
	tail := &tailTracker{r: r}
	cr := csv.NewReader(tail)
	header, err := cr.Read()
	if err == io.EOF {
		return map[int]core.ExperimentResult{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: results header: %w", err)
	}
	matrix, err := resultSchema(header)
	if err != nil {
		return nil, err
	}
	out := make(map[int]core.ExperimentResult)
	// truncatedTail reports whether the malformed record just read is an
	// interrupted final write: nothing follows it and the stream does
	// not end with a newline.
	truncatedTail := func() bool {
		_, err := cr.Read()
		return err == io.EOF && tail.last != '\n'
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			if truncatedTail() {
				return out, nil // drop the partial record
			}
			return nil, fmt.Errorf("runner: results line %d: %w", line, err)
		}
		res, err := parseResultRecord(rec, matrix)
		if err != nil {
			if truncatedTail() {
				return out, nil // drop the partial record
			}
			return nil, fmt.Errorf("runner: results line %d: %w", line, err)
		}
		if _, dup := out[res.Spec.Nr]; dup {
			return nil, fmt.Errorf("runner: results line %d: duplicate expNr %d", line, res.Spec.Nr)
		}
		out[res.Spec.Nr] = res
	}
}

// equalHeader reports whether two CSV headers are identical.
func equalHeader(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tailTracker remembers the last byte delivered from the underlying
// reader, so ReadResults can tell a truncated final write (no trailing
// newline) from a complete-but-corrupt record.
type tailTracker struct {
	r    io.Reader
	last byte
}

func (t *tailTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.last = p[n-1]
	}
	return n, err
}

// resultSchema validates a results-file header and reports whether it
// uses the matrix schema (scenario column after expNr) or the legacy
// single-campaign schema.
func resultSchema(header []string) (matrix bool, err error) {
	if len(header) == 0 || header[0] != "expNr" {
		return false, fmt.Errorf("runner: not a results file (header starts with %q)", first(header))
	}
	switch {
	case len(header) == len(analysis.ExperimentCSVHeader()) && header[1] == "attack":
		return false, nil
	case len(header) == len(analysis.MatrixCSVHeader()) && header[1] == "scenario":
		return true, nil
	default:
		return false, fmt.Errorf("runner: unrecognised results schema (%d columns)", len(header))
	}
}

func first(header []string) string {
	if len(header) == 0 {
		return ""
	}
	return header[0]
}

func parseResultRecord(rec []string, matrix bool) (core.ExperimentResult, error) {
	var res core.ExperimentResult
	nr, err := strconv.Atoi(rec[0])
	if err != nil {
		return res, fmt.Errorf("expNr: %w", err)
	}
	scenarioLabel := ""
	if matrix {
		scenarioLabel = rec[1]
		rec = rec[1:] // remaining columns match the legacy layout
	}
	// The attack column resolves through the registry: legacy enum names
	// keep their AttackKind; registry-only family names are carried in
	// Spec.Attack, so labels and cell grouping survive the round trip.
	entry, err := core.LookupAttack(rec[1])
	if err != nil {
		return res, err
	}
	attackName := ""
	if matrix || entry.Kind == 0 {
		attackName = entry.Name
	}
	value, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return res, fmt.Errorf("value: %w", err)
	}
	startS, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return res, fmt.Errorf("start_s: %w", err)
	}
	durS, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return res, fmt.Errorf("duration_s: %w", err)
	}
	outcome, err := classify.ParseOutcome(rec[5])
	if err != nil {
		return res, err
	}
	maxDecel, err := strconv.ParseFloat(rec[6], 64)
	if err != nil {
		return res, fmt.Errorf("max_decel_mps2: %w", err)
	}
	maxSpeedDev, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return res, fmt.Errorf("max_speed_dev_mps: %w", err)
	}
	nCollisions, err := strconv.Atoi(rec[8])
	if err != nil {
		return res, fmt.Errorf("collisions: %w", err)
	}
	if nCollisions < 0 {
		return res, fmt.Errorf("negative collision count %d", nCollisions)
	}
	res = core.ExperimentResult{
		Spec: core.ExperimentSpec{
			Nr:       nr,
			Kind:     entry.Kind,
			Attack:   attackName,
			Scenario: scenarioLabel,
			Value:    value,
			Start:    des.FromSeconds(startS),
			Duration: des.FromSeconds(durS),
		},
		Outcome:     outcome,
		MaxDecel:    maxDecel,
		MaxSpeedDev: maxSpeedDev,
		Collider:    rec[9],
	}
	if nCollisions > 0 {
		res.Collisions = make([]traffic.Collision, nCollisions)
		res.Collisions[0].Collider = rec[9]
	}
	return res, nil
}

// ReadResultsFile is ReadResults over a file path. A missing file yields
// an empty map, so "-resume" on a first run degrades to a normal run.
func ReadResultsFile(path string) (map[int]core.ExperimentResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[int]core.ExperimentResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResults(f)
}

// MergeResultFiles recombines per-shard result CSVs into one canonical
// file ordered by expNr. Because every shard writes rows with the shared
// deterministic encoding, the merged output is byte-identical to the CSV
// a single sequential run of the whole grid would have produced. Both
// the legacy and the matrix schema are accepted — all inputs must share
// one header, which the merged file echoes. Duplicate expNrs across
// inputs (overlapping shards) are rejected.
func MergeResultFiles(w io.Writer, paths ...string) error {
	type row struct {
		nr  int
		rec []string
	}
	var rows []row
	var outHeader []string
	seen := make(map[int]string)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		cr := csv.NewReader(f)
		header, err := cr.Read()
		if err != nil {
			f.Close()
			if err == io.EOF {
				continue // empty shard (all its points were elsewhere)
			}
			return fmt.Errorf("runner: %s: header: %w", path, err)
		}
		if _, err := resultSchema(header); err != nil {
			f.Close()
			return fmt.Errorf("runner: %s is not a results file", path)
		}
		if outHeader == nil {
			outHeader = header
		} else if !equalHeader(outHeader, header) {
			f.Close()
			return fmt.Errorf("runner: %s: header differs from earlier shards (mixed schemas?)", path)
		}
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("runner: %s: %w", path, err)
			}
			nr, err := strconv.Atoi(rec[0])
			if err != nil {
				f.Close()
				return fmt.Errorf("runner: %s: expNr: %w", path, err)
			}
			if prev, dup := seen[nr]; dup {
				f.Close()
				return fmt.Errorf("runner: expNr %d present in both %s and %s", nr, prev, path)
			}
			seen[nr] = path
			rows = append(rows, row{nr: nr, rec: rec})
		}
		f.Close()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].nr < rows[j].nr })
	if outHeader == nil {
		outHeader = analysis.ExperimentCSVHeader() // every shard was empty
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(outHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r.rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
