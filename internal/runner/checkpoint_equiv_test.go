package runner

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"comfase/internal/core"
)

// runForEquivalence executes the chaos grid once with the given
// checkpoint setting and returns the CSV bytes plus the quarantined
// failures in grid order.
func runForEquivalence(t *testing.T, setup core.CampaignSetup, opts Options, disable bool) (string, []core.ExperimentFailure) {
	t.Helper()
	opts.DisableCheckpoints = disable
	quarantine := &MemoryFailureSink{}
	opts.Quarantine = quarantine
	var csv bytes.Buffer
	r, err := New(chaosEngine(t, 100_000), opts, NewCSVSink(&csv))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Run(context.Background(), setup); err != nil {
		t.Fatalf("Run (checkpoints disabled=%v): %v", disable, err)
	}
	return csv.String(), quarantine.Failures
}

// TestCheckpointCampaignEquivalence is the byte-equivalence proof for
// prefix-checkpoint forking: the same 200-point grid executed with
// checkpoints on and off must emit byte-identical result CSVs — on a
// healthy grid, on a sharded slice of it, and under the chaos fault
// schedule with retries and quarantine in play. The forked path is the
// default, so this test is the campaign-level pin that it changes
// nothing but wall-clock time.
func TestCheckpointCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 200-experiment campaigns in -short mode")
	}
	setup := chaosGrid()

	t.Run("healthy", func(t *testing.T) {
		on, _ := runForEquivalence(t, setup, Options{Workers: 4}, false)
		off, _ := runForEquivalence(t, setup, Options{Workers: 4}, true)
		if on != off {
			t.Errorf("checkpointed CSV differs from fresh CSV:\non:\n%s\noff:\n%s", on, off)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		// Sharding punches round-robin holes in each start's sibling
		// block; grouped scheduling must still emit the shard's rows in
		// grid order.
		opts := Options{Workers: 2, Shard: Shard{Index: 2, Count: 3}}
		on, _ := runForEquivalence(t, setup, opts, false)
		off, _ := runForEquivalence(t, setup, opts, true)
		if on != off {
			t.Errorf("sharded checkpointed CSV differs from fresh CSV:\non:\n%s\noff:\n%s", on, off)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		// The full failure-containment stack on top: deterministic
		// panics, hangs and NaN corruption, one retry, unlimited failure
		// budget. Healthy rows must stay byte-identical and every
		// persistent failure must quarantine with the same class and
		// attempt count whether or not its first attempt was forked.
		opts := Options{Workers: 4, Retries: 1, MaxFailures: -1}
		chaosOn := setup
		var muOn sync.Mutex
		chaosOn.Factory = chaosFactory(&muOn, map[int]int{})
		on, onFails := runForEquivalence(t, chaosOn, opts, false)

		chaosOff := setup
		var muOff sync.Mutex
		chaosOff.Factory = chaosFactory(&muOff, map[int]int{})
		off, offFails := runForEquivalence(t, chaosOff, opts, true)

		if on != off {
			t.Errorf("chaos checkpointed CSV differs from fresh CSV:\non:\n%s\noff:\n%s", on, off)
		}
		if len(onFails) != len(offFails) {
			t.Fatalf("quarantine size: %d checkpointed, %d fresh", len(onFails), len(offFails))
		}
		for i := range onFails {
			a, b := onFails[i], offFails[i]
			// Stack traces legitimately differ between the forked and
			// fresh call paths; the classification contract is the
			// stable part.
			if a.Nr != b.Nr || a.Class != b.Class || a.Attempts != b.Attempts {
				t.Errorf("quarantine record %d differs: checkpointed {Nr:%d Class:%q Attempts:%d}, fresh {Nr:%d Class:%q Attempts:%d}",
					i, a.Nr, a.Class, a.Attempts, b.Nr, b.Class, b.Attempts)
			}
		}
	})
}
