// Package runner is the campaign runtime of the ComFASE reproduction:
// it executes an attack-injection grid (Algorithm 1, Step-3/4) the way a
// production system has to — streaming, cancellable, shardable and
// resumable — while preserving the repo's core invariant that the same
// (config, seed) pair produces bit-for-bit identical results no matter
// how the work is scheduled.
//
//   - Streaming: classified results flow through pluggable Sinks (CSV
//     row-per-result, JSON lines, in-memory aggregate) as experiments
//     complete, released in deterministic grid order regardless of
//     worker completion order.
//   - Cancellable: the context threads down to the DES kernel, which
//     polls it every few thousand events, so even a mid-simulation abort
//     is prompt; sinks are flushed before Run returns, so partial
//     results survive.
//   - Shardable: Shard i/n deterministically partitions the grid so n
//     independent processes produce disjoint result files that
//     MergeResultFiles recombines into the byte-identical sequential
//     output.
//   - Resumable: Resume(ReadResults(file)) skips grid points a previous
//     (interrupted) run already completed and appends exactly the
//     missing rows.
//   - Checkpointed: experiments sharing an attackStartTime are scheduled
//     as one unit on one worker, which simulates their common fault-free
//     prefix once and forks each sibling from the snapshot
//     (core.GroupSession). The grid is start-major, so sharding and
//     resume keep siblings contiguous, and the release frontier still
//     emits rows in grid order — checkpointed and fresh campaigns
//     produce byte-identical outputs. Within a group, siblings sharing
//     an attack value are additionally ordered into duration chains
//     (ascending duration, experiment number as the tie-break — a total
//     order, so every schedule and shard derives the same trie shape)
//     and executed through the session's checkpoint trie: each sibling
//     simulates only the suffix past the previous duration boundary.
package runner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"comfase/internal/core"
	"comfase/internal/obs"
	"comfase/internal/runner/pool"
	"comfase/internal/sim/des"
)

// ErrFailureBudget is wrapped by Run's error when persistent experiment
// failures exceed Options.MaxFailures. The triggering experiment error is
// wrapped alongside it, so both errors.Is(err, ErrFailureBudget) and
// errors.Is(err, <cause>) hold.
var ErrFailureBudget = errors.New("runner: failure budget exceeded")

// Shard selects a deterministic 1-based slice i/n of the campaign grid:
// the grid points whose expNr ≡ Index-1 (mod Count). Round-robin
// assignment balances the load even when severity (and therefore cost)
// clusters in one region of the grid. The zero value disables sharding.
type Shard struct {
	// Index is 1-based: 1 <= Index <= Count.
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseShard parses the CLI form "i/n" (e.g. "2/4").
func ParseShard(s string) (Shard, error) {
	var sh Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil {
		return Shard{}, fmt.Errorf("runner: shard %q is not of the form i/n", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate reports whether the shard designator is well-formed.
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil // disabled
	}
	if s.Count < 1 || s.Index < 1 || s.Index > s.Count {
		return fmt.Errorf("runner: invalid shard %d/%d (want 1 <= i <= n)", s.Index, s.Count)
	}
	return nil
}

// Enabled reports whether the shard restricts the grid.
func (s Shard) Enabled() bool { return s.Count > 0 }

// Range restricts execution to the contiguous expNr interval [From, To).
// It is the selection primitive of the fabric layer: a coordinator leases
// contiguous grid ranges to worker processes, and each worker runs its
// lease as Options.Range. The zero value disables the restriction. Range
// composes with Shard (both filters apply), though the fabric uses Range
// alone.
type Range struct {
	// From is the first expNr included.
	From int
	// To is the first expNr excluded; To > From for a non-empty range.
	To int
}

// Enabled reports whether the range restricts the grid.
func (r Range) Enabled() bool { return r.From != 0 || r.To != 0 }

// Validate reports whether the range designator is well-formed.
func (r Range) Validate() error {
	if !r.Enabled() {
		return nil
	}
	if r.From < 0 || r.To < r.From {
		return fmt.Errorf("runner: invalid range [%d,%d)", r.From, r.To)
	}
	return nil
}

// Contains reports whether the grid point with the given expNr belongs
// to this range.
func (r Range) Contains(nr int) bool {
	if !r.Enabled() {
		return true
	}
	return nr >= r.From && nr < r.To
}

// String renders the half-open interval.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.From, r.To) }

// Contains reports whether the grid point with the given expNr belongs
// to this shard.
func (s Shard) Contains(nr int) bool {
	if !s.Enabled() {
		return true
	}
	return nr%s.Count == s.Index-1
}

// String renders the CLI form.
func (s Shard) String() string {
	if !s.Enabled() {
		return "1/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Options configure a Runner.
type Options struct {
	// Workers is the number of concurrent experiment goroutines
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// Shard restricts execution to a deterministic grid slice; the zero
	// value runs the whole grid.
	Shard Shard
	// Range restricts execution to the contiguous expNr interval
	// [From, To) — the unit a fabric coordinator leases to one worker.
	// The zero value runs the whole grid; when both Shard and Range are
	// set, a grid point must satisfy both.
	Range Range
	// Progress, when set, receives (done, total) after every completed
	// experiment. done is monotonically increasing and counts resumed
	// grid points; total is the shard's grid size. Invocation order is
	// completion order, not grid order, and the callback runs under the
	// runner's lock — keep it fast.
	Progress core.Progress
	// Resume maps expNr -> already-classified result from a previous
	// interrupted run (see ReadResults). Those grid points are not
	// re-executed and not re-emitted to sinks; they do appear in the
	// returned CampaignResult.
	Resume map[int]core.ExperimentResult

	// Retries is how many times a failed experiment is re-executed
	// before it is quarantined (0 = no retries). Every attempt runs on a
	// fresh workspace, so transient corruption does not leak between
	// attempts.
	Retries int
	// RetryBackoff is the base pause before retry k (linear: the k-th
	// retry waits k*RetryBackoff). Zero retries immediately.
	RetryBackoff time.Duration
	// ExperimentTimeout is the per-attempt wall-clock watchdog: an
	// attempt exceeding it is aborted (the DES kernel polls the deadline
	// cooperatively) and counts as a "timeout"-class failure. Zero
	// disables the watchdog.
	ExperimentTimeout time.Duration
	// MaxFailures is the campaign failure budget: the number of
	// persistently failed (all retries exhausted) experiments tolerated
	// before the run aborts with an error wrapping ErrFailureBudget.
	// 0 — the default — is fail-fast: the first persistent failure
	// aborts. Negative means unlimited: the campaign always streams past
	// failures. Failed grid points are quarantined, excluded from the
	// result sinks and CampaignResult.Experiments, and never block the
	// release frontier.
	MaxFailures int
	// Quarantine, when set, receives the record of every persistent
	// failure in grid order (quarantine.jsonl via NewQuarantineSink).
	Quarantine FailureSink
	// ResumeFailures maps expNr -> quarantine record from a previous run
	// (see ReadQuarantine). Those grid points are not re-executed and
	// not re-emitted to the quarantine sink; they reappear in
	// CampaignResult.Failures but do not count against MaxFailures
	// (this run's budget governs this run's new failures). Delete the
	// quarantine file to retry them.
	ResumeFailures map[int]core.ExperimentFailure

	// Metrics, when set, receives runner-level counters and gauges
	// (retries, per-class failures, emitted rows, sink flushes, shard
	// progress, per-worker throughput). Pass the same registry to
	// core.EngineConfig.Metrics for the full stack view. nil disables
	// runner metrics; execution and outputs are bit-identical either way.
	Metrics *obs.Registry

	// DisableCheckpoints turns off prefix-checkpoint forking: every
	// experiment then builds and simulates from t=0 (the pre-checkpoint
	// execution path). The zero value — checkpoints enabled — is right
	// for production campaigns: results are bit-identical either way and
	// forking skips the redundant shared prefixes. Configurations the
	// checkpoint layer cannot capture (fading channels, opaque custom
	// controllers) fall back to the fresh path automatically.
	DisableCheckpoints bool
	// DisableTrie turns off duration chaining within checkpoint groups:
	// every sibling then forks from the group's prefix checkpoint in grid
	// order (the pre-trie behaviour). Only meaningful while checkpoints
	// are enabled. The zero value — trie enabled — buckets each group
	// into per-value chains sorted by ascending duration and shares the
	// attacked interval between chain members; results are bit-identical
	// either way, and models that cannot chain (stochastic ones,
	// physical-layer Installers) fall back to prefix forking
	// automatically.
	DisableTrie bool
}

// Runner executes campaign grids against a core.Engine.
type Runner struct {
	eng   *core.Engine
	opts  Options
	sinks []Sink
	met   runnerMetrics
}

// New validates the options and returns a Runner streaming to the given
// sinks (none is fine: the returned CampaignResult still aggregates
// everything).
func New(eng *core.Engine, opts Options, sinks ...Sink) (*Runner, error) {
	if eng == nil {
		return nil, fmt.Errorf("runner: nil engine")
	}
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Range.Validate(); err != nil {
		return nil, err
	}
	return &Runner{eng: eng, opts: opts, sinks: sinks, met: newRunnerMetrics(opts.Metrics)}, nil
}

// slot tracks one shard grid point through the run. A slot holds either
// a classified result or — for a persistently failed experiment — its
// quarantine record; either way done flips and the release frontier
// advances past it.
type slot struct {
	res      core.ExperimentResult
	failure  *core.ExperimentFailure
	done     bool // outcome available (computed, resumed or failed)
	skipEmit bool // resumed from a previous run, or already force-emitted
}

// Run executes the (sharded) campaign grid. Newly computed results are
// released to the sinks in grid order as soon as the contiguous prefix
// they belong to completes; on any error — including ctx cancellation —
// sinks are flushed before Run returns, so everything emitted so far is
// durable and a later Resume run can pick up from it.
//
// The returned CampaignResult covers this shard's grid points in grid
// order (resumed ones included) and is bit-for-bit identical for
// sequential, parallel and resumed executions of the same (config,
// seed) grid.
func (r *Runner) Run(ctx context.Context, setup core.CampaignSetup) (*core.CampaignResult, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	// Prime the golden run before spawning workers: the cached log is
	// shared read-only by every experiment.
	if err := r.eng.EnsureGolden(ctx); err != nil {
		return nil, err
	}

	var specs []core.ExperimentSpec
	for _, spec := range setup.Experiments() {
		if r.opts.Shard.Contains(spec.Nr) && r.opts.Range.Contains(spec.Nr) {
			specs = append(specs, spec)
		}
	}
	total := len(specs)

	slots := make([]slot, total)
	var todo []int // indices into specs still to execute
	for i, spec := range specs {
		if res, ok := r.opts.Resume[spec.Nr]; ok {
			slots[i] = slot{res: res, done: true, skipEmit: true}
		} else if f, ok := r.opts.ResumeFailures[spec.Nr]; ok {
			fc := f
			slots[i] = slot{failure: &fc, done: true, skipEmit: true}
		} else {
			todo = append(todo, i)
		}
	}

	var (
		mu       sync.Mutex
		next     int // emission frontier: slots[0:next] released to sinks
		done     = total - len(todo)
		failures int // persistent failures this run (resumed ones excluded)
	)
	r.met.shardTotal.Set(int64(total))
	r.met.shardDone.Set(int64(done))
	// release emits the contiguous completed prefix — results to the
	// sinks, quarantine records to the failure sink; the caller holds mu.
	release := func() error {
		for next < total && slots[next].done {
			s := &slots[next]
			switch {
			case s.skipEmit:
			case s.failure != nil:
				if r.opts.Quarantine != nil {
					if err := r.opts.Quarantine.Put(*s.failure); err != nil {
						return fmt.Errorf("runner: quarantine sink: %w", err)
					}
				}
				r.met.quarantined.Inc()
			default:
				for _, snk := range r.sinks {
					if err := snk.Put(s.res); err != nil {
						return fmt.Errorf("runner: sink: %w", err)
					}
				}
				r.met.results.Inc()
			}
			next++
		}
		return nil
	}

	// complete records one finished grid point (success or persistent
	// failure), advances the release frontier and enforces the failure
	// budget. It is the single completion path for grouped and fresh
	// execution alike.
	complete := func(idx int, res core.ExperimentResult, attempts int, runErr error) error {
		mu.Lock()
		defer mu.Unlock()
		if runErr != nil {
			fail := core.NewExperimentFailure(specs[idx], runErr, attempts)
			slots[idx] = slot{failure: &fail, done: true}
			r.met.failure(fail.Class)
			failures++
			overBudget := r.opts.MaxFailures >= 0 && failures > r.opts.MaxFailures
			done++
			r.met.shardDone.Set(int64(done))
			if relErr := release(); relErr != nil {
				return relErr
			}
			if overBudget {
				// Aborting: force the triggering record out if the
				// frontier has not reached it, so the quarantine file
				// explains the abort even when earlier grid points are
				// still in flight.
				if idx >= next && r.opts.Quarantine != nil {
					slots[idx].skipEmit = true
					if qerr := r.opts.Quarantine.Put(fail); qerr != nil {
						return fmt.Errorf("runner: quarantine sink: %w", qerr)
					}
				}
				return fmt.Errorf("%w: %d persistent failure(s) over budget %d; experiment %v: %w",
					ErrFailureBudget, failures, r.opts.MaxFailures, specs[idx], runErr)
			}
			if r.opts.Progress != nil {
				r.opts.Progress(done, total)
			}
			return nil
		}
		slots[idx] = slot{res: res, done: true}
		done++
		r.met.shardDone.Set(int64(done))
		if relErr := release(); relErr != nil {
			return relErr
		}
		if r.opts.Progress != nil {
			r.opts.Progress(done, total)
		}
		return nil
	}

	mu.Lock()
	err := release() // resumed prefix advances the frontier immediately
	if err == nil && done > 0 && r.opts.Progress != nil {
		r.opts.Progress(done, total)
	}
	mu.Unlock()

	// Schedule contiguous same-start runs of the remaining grid as one
	// unit each, so siblings land on the same worker and can fork from
	// that worker's prefix checkpoint. The grid is start-major, so the
	// runs survive shard filtering and resume holes intact.
	groups := groupByStart(specs, todo)

	if err == nil {
		err = pool.Run(ctx, len(groups), r.opts.Workers, func(ctx context.Context, worker, g int) error {
			group := groups[g]
			// One registry lookup per scheduling unit; nil when metrics are
			// off, and increments are then no-ops.
			wc := r.met.worker(worker)
			var gs *core.GroupSession
			if !r.opts.DisableCheckpoints && len(group) > 1 {
				gs = r.beginGroup(ctx, specs[group[0]].Start)
				if gs != nil {
					defer gs.Close()
				}
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			// With a live session and the trie enabled, execute the group as
			// per-value duration chains; otherwise keep the grid-order walk.
			// Either way the release frontier restores grid order on output.
			chained := gs != nil && !r.opts.DisableTrie
			order := [][]int{group}
			if chained {
				order = orderGroupChains(specs, group)
			}
			for _, chain := range order {
				for i, idx := range chain {
					retain := chained && i+1 < len(chain)
					res, attempts, runErr := r.runWithRetry(ctx, specs[idx], gs, chained, retain)
					if runErr != nil && ctx.Err() != nil {
						// Campaign-level cancellation, not an experiment failure.
						return fmt.Errorf("experiment %v: %w", specs[idx], runErr)
					}
					wc.Inc()
					if cerr := complete(idx, res, attempts, runErr); cerr != nil {
						return cerr
					}
				}
			}
			return nil
		})
	}

	// Flush sinks even on abort: partial results must be durable for the
	// resume path. The first flush error is reported only when the run
	// itself succeeded.
	for _, s := range r.sinks {
		if ferr := s.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("runner: sink flush: %w", ferr)
		}
		r.met.flushes.Inc()
	}
	if r.opts.Quarantine != nil {
		if ferr := r.opts.Quarantine.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("runner: quarantine flush: %w", ferr)
		}
		r.met.flushes.Inc()
	}
	if err != nil {
		return nil, err
	}

	golden, _ := r.eng.Golden()
	out := &core.CampaignResult{
		Setup:       setup,
		Golden:      golden,
		Thresholds:  r.eng.Thresholds(),
		Experiments: make([]core.ExperimentResult, 0, total),
	}
	for i := range slots {
		if f := slots[i].failure; f != nil {
			out.Failures = append(out.Failures, *f)
			class, cerr := core.ParseFailureClass(f.Class)
			if cerr != nil {
				class = core.FailError
			}
			out.FailureCounts.Add(class)
			continue
		}
		out.Experiments = append(out.Experiments, slots[i].res)
		out.Counts.Add(slots[i].res.Outcome)
	}
	return out, nil
}

// groupByStart slices the pending grid indices into contiguous runs
// sharing an attack start time. todo is ascending and the grid is
// start-major, so equal-start siblings are adjacent; each returned group
// becomes one scheduling unit (one prefix checkpoint).
func groupByStart(specs []core.ExperimentSpec, todo []int) [][]int {
	var groups [][]int
	for i := 0; i < len(todo); {
		j := i + 1
		start := specs[todo[i]].Start
		for j < len(todo) && specs[todo[j]].Start == start {
			j++
		}
		groups = append(groups, todo[i:j])
		i = j
	}
	return groups
}

// orderGroupChains buckets one same-start group into the value chains of
// the checkpoint trie: one bucket per attack value, buckets in
// first-appearance (grid) order, each bucket sorted by ascending attack
// duration with the experiment number as the tie-break. The sort key
// (duration, expNr) is a total order over the group, so sequential,
// parallel, sharded and resumed runs all derive the identical chain shape
// from whatever subset of the grid they hold. Values are compared as
// float64 bit patterns via ==; a NaN attack value never equals itself and
// therefore forms single-element buckets, which degrade to plain prefix
// forks rather than corrupt a chain.
func orderGroupChains(specs []core.ExperimentSpec, group []int) [][]int {
	byValue := make(map[float64]int)
	var chains [][]int
	for _, idx := range group {
		v := specs[idx].Value
		b, ok := byValue[v]
		if !ok {
			b = len(chains)
			byValue[v] = b
			chains = append(chains, nil)
		}
		chains[b] = append(chains[b], idx)
	}
	for _, c := range chains {
		sort.Slice(c, func(i, j int) bool {
			if specs[c[i]].Duration != specs[c[j]].Duration {
				return specs[c[i]].Duration < specs[c[j]].Duration
			}
			return specs[c[i]].Nr < specs[c[j]].Nr
		})
	}
	return chains
}

// beginGroup checkpoints the fault-free prefix at start, applying the
// same wall-clock watchdog a fresh attempt would get. Any error — a
// non-checkpointable configuration, a prefix failure, a prefix timeout —
// selects the fresh-build fallback by returning nil: the group then runs
// exactly as it would with checkpoints disabled. Campaign cancellation
// is the caller's to detect via ctx.Err().
func (r *Runner) beginGroup(ctx context.Context, start des.Time) *core.GroupSession {
	prefixCtx, cancel := ctx, func() {}
	if r.opts.ExperimentTimeout > 0 {
		prefixCtx, cancel = context.WithTimeout(ctx, r.opts.ExperimentTimeout)
	}
	gs, err := r.eng.BeginGroup(prefixCtx, start)
	cancel()
	if err != nil {
		return nil
	}
	return gs
}

// runWithRetry executes one grid point with the per-attempt wall-clock
// watchdog and the retry policy: up to 1+Retries attempts with linear
// backoff between them. When the worker holds a healthy group session,
// the first attempt forks from its checkpoint (through the duration
// chain when chained is set; retain asks the session to keep a boundary
// snapshot for the next chain member); retries — and the first attempt
// once a sibling has poisoned the session — run on a fresh workspace, so
// transient corruption does not leak between attempts and attempt counts
// match the checkpoint-disabled path exactly. It returns the result of
// the first successful attempt, or — after exhausting every attempt —
// the final error. Campaign-level cancellation surfaces as an error too;
// the caller distinguishes it via ctx.Err().
func (r *Runner) runWithRetry(ctx context.Context, spec core.ExperimentSpec, gs *core.GroupSession, chained, retain bool) (core.ExperimentResult, int, error) {
	attempts := 1 + r.opts.Retries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			if err := sleepCtx(ctx, time.Duration(a-1)*r.opts.RetryBackoff); err != nil {
				return core.ExperimentResult{}, a - 1, lastErr
			}
			r.met.retries.Inc()
		}
		attemptCtx, cancel := ctx, func() {}
		if r.opts.ExperimentTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.opts.ExperimentTimeout)
		}
		var res core.ExperimentResult
		var err error
		if a == 1 && gs != nil && gs.Healthy() {
			if chained {
				res, err = gs.RunExperimentChained(attemptCtx, spec, retain)
			} else {
				res, err = gs.RunExperiment(attemptCtx, spec)
			}
		} else {
			res, err = r.eng.RunExperimentCtx(attemptCtx, spec)
		}
		cancel()
		if err == nil {
			return res, a, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The campaign is shutting down; do not burn retries on it.
			return core.ExperimentResult{}, a, lastErr
		}
	}
	return core.ExperimentResult{}, attempts, lastErr
}

// sleepCtx pauses for d unless ctx is canceled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
