package runner

import (
	"bytes"
	"context"
	"os"
	"testing"

	"comfase/internal/core"
)

// TestPaperCampaignsMatchSeedFixtures pins the registry-hosted paper
// campaign presets to the committed full-campaign result files: the
// rows the registry path produces must be byte-identical to the
// corresponding rows of results/experiments_{delay,dos}.csv. The delay
// campaign is checked on its first grid row-block (one start, one
// value, all 30 durations = rows 0..29); the DoS campaign in full.
func TestPaperCampaignsMatchSeedFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 55 full-horizon experiments in -short mode")
	}
	run := func(setup core.CampaignSetup) []byte {
		t.Helper()
		var buf bytes.Buffer
		r, err := New(newEngine(t), Options{Workers: 4}, NewCSVSink(&buf))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := r.Run(context.Background(), setup); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return buf.Bytes()
	}
	fixture := func(path string, lines int) []byte {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("fixture: %v", err)
		}
		split := bytes.SplitAfter(raw, []byte("\n"))
		if len(split) < lines {
			t.Fatalf("fixture %s has %d lines, want >= %d", path, len(split), lines)
		}
		return bytes.Join(split[:lines], nil)
	}

	delay := core.PaperDelayCampaign()
	delay.Starts = delay.Starts[:1] // grid is start-major: this is rows 0..29
	delay.Values = delay.Values[:1]
	if got, want := run(delay), fixture("../../results/experiments_delay.csv", 31); !bytes.Equal(got, want) {
		t.Errorf("registry paper-delay prefix differs from seed fixture:\ngot:\n%s\nwant:\n%s", got, want)
	}

	dos := core.PaperDoSCampaign()
	if got, want := run(dos), fixture("../../results/experiments_dos.csv", 26); !bytes.Equal(got, want) {
		t.Errorf("registry paper-dos differs from seed fixture:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
