package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllIndices(t *testing.T) {
	const n = 100
	var mu sync.Mutex
	seen := make(map[int]int, n)
	err := Run(context.Background(), n, 7, func(_ context.Context, _, i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("executed %d distinct indices, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d executed %d times", i, c)
		}
	}
}

func TestRunWorkerIndices(t *testing.T) {
	const n, workers = 64, 5
	want := Workers(workers, n)
	if want != workers {
		t.Fatalf("Workers(%d, %d) = %d, want %d", workers, n, want, workers)
	}
	if got := Workers(0, n); got <= 0 {
		t.Fatalf("Workers(0, %d) = %d, want > 0", n, got)
	}
	if got := Workers(10, 3); got != 3 {
		t.Fatalf("Workers(10, 3) = %d, want 3 (capped at n)", got)
	}
	perWorker := make([]atomic.Int64, want)
	err := Run(context.Background(), n, workers, func(_ context.Context, w, _ int) error {
		if w < 0 || w >= want {
			return errors.New("worker index out of range")
		}
		perWorker[w].Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var total int64
	for i := range perWorker {
		total += perWorker[i].Load()
	}
	if total != n {
		t.Fatalf("per-worker counts sum to %d, want %d", total, n)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int, int) error {
		t.Error("fn called for empty job set")
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunFailFastStopsDispatch(t *testing.T) {
	const n = 1000
	boom := errors.New("boom")
	var started atomic.Int64
	err := Run(context.Background(), n, 2, func(_ context.Context, _, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Slow jobs give the dispatcher time to observe the cancel; a
		// non-fail-fast pool would still start all 1000.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want %v", err, boom)
	}
	// At most: the failing job, one job per worker in flight, and a
	// couple dispatched into the unbuffered channel race window.
	if got := started.Load(); got > 8 {
		t.Errorf("%d jobs started after early failure, want <= 8", got)
	}
}

func TestRunHonorsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := Run(ctx, 1000, 2, func(ctx context.Context, _, i int) error {
		if started.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 8 {
		t.Errorf("%d jobs started after cancel, want <= 8", got)
	}
}

func TestRunReportsFirstErrorOnly(t *testing.T) {
	first := errors.New("first")
	err := Run(context.Background(), 4, 1, func(_ context.Context, _, i int) error {
		if i == 0 {
			return first
		}
		return errors.New("later")
	})
	if !errors.Is(err, first) {
		t.Fatalf("Run = %v, want %v", err, first)
	}
}
