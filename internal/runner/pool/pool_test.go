package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllIndices(t *testing.T) {
	const n = 100
	var mu sync.Mutex
	seen := make(map[int]int, n)
	err := Run(context.Background(), n, 7, func(_ context.Context, i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("executed %d distinct indices, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d executed %d times", i, c)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int) error {
		t.Error("fn called for empty job set")
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunFailFastStopsDispatch(t *testing.T) {
	const n = 1000
	boom := errors.New("boom")
	var started atomic.Int64
	err := Run(context.Background(), n, 2, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Slow jobs give the dispatcher time to observe the cancel; a
		// non-fail-fast pool would still start all 1000.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want %v", err, boom)
	}
	// At most: the failing job, one job per worker in flight, and a
	// couple dispatched into the unbuffered channel race window.
	if got := started.Load(); got > 8 {
		t.Errorf("%d jobs started after early failure, want <= 8", got)
	}
}

func TestRunHonorsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := Run(ctx, 1000, 2, func(ctx context.Context, i int) error {
		if started.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 8 {
		t.Errorf("%d jobs started after cancel, want <= 8", got)
	}
}

func TestRunReportsFirstErrorOnly(t *testing.T) {
	first := errors.New("first")
	err := Run(context.Background(), 4, 1, func(_ context.Context, i int) error {
		if i == 0 {
			return first
		}
		return errors.New("later")
	})
	if !errors.Is(err, first) {
		t.Fatalf("Run = %v, want %v", err, first)
	}
}
