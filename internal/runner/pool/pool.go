// Package pool implements the fail-fast worker pool shared by the
// campaign execution paths (core.RunCampaignParallel and runner.Runner):
// a fixed set of goroutines drains an index stream, and the first error —
// or a context cancellation — stops dispatch immediately instead of
// draining the remaining jobs. In-flight jobs observe the cancellation
// through the ctx handed to them (the DES kernel polls it cooperatively),
// so even long simulations abort promptly.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves the effective worker count Run will use for n jobs:
// workers <= 0 selects GOMAXPROCS, and the count is capped at n. Callers
// that size per-worker state (metrics, scratch buffers) use this to agree
// with Run on how many worker indices exist.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Run executes fn(ctx, worker, i) for every index i in [0, n) on the
// given number of worker goroutines (workers <= 0 selects GOMAXPROCS).
// worker identifies the goroutine running the job, in [0, Workers(workers,
// n)); a given worker runs its jobs sequentially, so per-worker state
// needs no further synchronization. The first non-nil error cancels the
// ctx passed to the remaining jobs and stops dispatch; Run returns that
// first error after all workers have exited. If the parent ctx is
// canceled before all jobs complete, Run returns the ctx error. fn may be
// called concurrently and must be safe for that.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// runJob is the pool's last-resort panic boundary: job code is
	// expected to contain its own panics (core's experiment boundary
	// does), but a panic that escapes anyway — from glue code around the
	// experiment, say — must kill the job, not the process.
	runJob := func(worker, idx int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("pool: job %d panicked: %v\n%s", idx, r, debug.Stack())
			}
		}()
		return fn(ctx, worker, idx)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					return
				}
				if err := runJob(worker, idx); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	// Distinguish "parent canceled" from "our own deferred cancel": the
	// parent's error is the only way ctx can be done here without a job
	// error having been recorded.
	return ctx.Err()
}
