package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"comfase/internal/core"
)

// FailureSink consumes the quarantine records of persistently failed
// experiments, released in deterministic grid order like result Sinks
// (one call at a time; no concurrency). A non-nil error aborts the
// campaign fail-fast.
type FailureSink interface {
	// Put receives the next persistent failure in grid order.
	Put(f core.ExperimentFailure) error
	// Flush forces buffered records out; the Runner calls it after the
	// last record and on abort.
	Flush() error
}

// QuarantineSink streams one JSON object per line per persistent failure
// — the quarantine.jsonl file. Records write through on every Put, so an
// interrupted campaign leaves a complete, parseable prefix (plus at most
// one truncated trailing line, which ReadQuarantine tolerates).
type QuarantineSink struct {
	enc *json.Encoder
}

// NewQuarantineSink returns a quarantine sink writing JSON lines to w.
func NewQuarantineSink(w io.Writer) *QuarantineSink {
	return &QuarantineSink{enc: json.NewEncoder(w)}
}

// Put implements FailureSink.
func (s *QuarantineSink) Put(f core.ExperimentFailure) error { return s.enc.Encode(f) }

// Flush implements FailureSink. The encoder writes through on every Put,
// so there is nothing to flush.
func (s *QuarantineSink) Flush() error { return nil }

// MemoryFailureSink collects quarantine records in memory.
type MemoryFailureSink struct {
	// Failures holds the received records in arrival (grid) order.
	Failures []core.ExperimentFailure
}

// Put implements FailureSink.
func (s *MemoryFailureSink) Put(f core.ExperimentFailure) error {
	s.Failures = append(s.Failures, f)
	return nil
}

// Flush implements FailureSink.
func (s *MemoryFailureSink) Flush() error { return nil }

// ReadQuarantine parses a quarantine.jsonl stream back into failure
// records keyed by expNr — the input of Options.ResumeFailures. A
// truncated final line (a crash mid-write: malformed, nothing after it,
// no trailing newline) is ignored; a malformed line anywhere else, or a
// duplicate expNr, is an error.
func ReadQuarantine(r io.Reader) (map[int]core.ExperimentFailure, error) {
	out := make(map[int]core.ExperimentFailure)
	tail := &tailTracker{r: r}
	sc := bufio.NewScanner(tail)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024) // panic stacks are long
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The malformed line had healthy successors: real corruption.
			return nil, pendingErr
		}
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var f core.ExperimentFailure
		if err := json.Unmarshal(text, &f); err != nil {
			// Tolerated only if this turns out to be the last line.
			pendingErr = fmt.Errorf("runner: quarantine line %d: %w", line, err)
			continue
		}
		if _, err := core.ParseFailureClass(f.Class); err != nil {
			return nil, fmt.Errorf("runner: quarantine line %d: %w", line, err)
		}
		if _, dup := out[f.Nr]; dup {
			return nil, fmt.Errorf("runner: quarantine line %d: duplicate expNr %d", line, f.Nr)
		}
		out[f.Nr] = f
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runner: quarantine: %w", err)
	}
	if pendingErr != nil && tail.last == '\n' {
		// The malformed line was newline-terminated: a complete write,
		// so real corruption rather than an interrupted one.
		return nil, pendingErr
	}
	return out, nil
}

// MergeQuarantineFiles recombines per-worker (or per-shard)
// quarantine.jsonl files into one stream ordered by expNr — the failure
// analogue of MergeResultFiles. Each input is parsed with ReadQuarantine,
// so a truncated final line (a worker killed mid-write) is tolerated and
// dropped, exactly like the CSV resume discriminator; a malformed
// interior line or a duplicate expNr across inputs is real corruption
// and rejected. Records are re-encoded with the same json.Encoder the
// QuarantineSink uses, so the merged file is byte-identical to the
// quarantine a single sequential run would have written.
func MergeQuarantineFiles(w io.Writer, paths ...string) error {
	type entry struct {
		nr   int
		path string
	}
	merged := make(map[int]core.ExperimentFailure)
	var order []entry
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		records, err := ReadQuarantine(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("runner: %s: %w", path, err)
		}
		for nr, rec := range records {
			if _, dup := merged[nr]; dup {
				return fmt.Errorf("runner: quarantine expNr %d present in more than one input (last: %s)", nr, path)
			}
			merged[nr] = rec
			order = append(order, entry{nr: nr, path: path})
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].nr < order[j].nr })
	enc := json.NewEncoder(w)
	for _, e := range order {
		if err := enc.Encode(merged[e.nr]); err != nil {
			return err
		}
	}
	return nil
}

// ReadQuarantineFile is ReadQuarantine over a file path. A missing file
// yields an empty map, so resuming a clean campaign degrades to a normal
// run.
func ReadQuarantineFile(path string) (map[int]core.ExperimentFailure, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[int]core.ExperimentFailure{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadQuarantine(f)
}
