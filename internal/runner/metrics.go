package runner

import (
	"strconv"

	"comfase/internal/obs"
)

// runnerMetrics bundles the campaign-runtime counters the Runner feeds.
// All fields are nil when metrics are off (Options.Metrics == nil) and
// every update is a no-op then; nothing in the runner branches on an
// enable flag. Updates happen on completion-granularity paths (one
// finished experiment, one sink flush) — never inside a simulation — so
// the instrumented and uninstrumented runs schedule identically.
type runnerMetrics struct {
	reg *obs.Registry
	// retries counts re-attempts after a failed experiment attempt
	// (attempt 1 of each grid point is not a retry).
	retries *obs.Counter
	// results counts classified results released to the result sinks;
	// quarantined counts persistent-failure records released to the
	// quarantine sink. Resumed grid points are emitted by a previous run
	// and count there, not here.
	results     *obs.Counter
	quarantined *obs.Counter
	// flushes counts sink Flush calls (result and quarantine sinks).
	flushes *obs.Counter
	// shardDone/shardTotal expose the release-frontier progress of the
	// current Run: done counts completed grid points (resumed included),
	// total is the shard's grid size.
	shardDone  *obs.Gauge
	shardTotal *obs.Gauge
}

func newRunnerMetrics(reg *obs.Registry) runnerMetrics {
	return runnerMetrics{
		reg:         reg,
		retries:     reg.Counter("runner.retries"),
		results:     reg.Counter("runner.results_emitted"),
		quarantined: reg.Counter("runner.quarantine_emitted"),
		flushes:     reg.Counter("runner.sink_flushes"),
		shardDone:   reg.Gauge("runner.shard_done"),
		shardTotal:  reg.Gauge("runner.shard_total"),
	}
}

// failure bumps the per-class persistent-failure counter
// (runner.failures.<class>). Classes are a small closed set
// (core.FailureClass), so the registry stays bounded.
func (m *runnerMetrics) failure(class string) {
	if m.reg == nil {
		return
	}
	m.reg.Counter("runner.failures." + class).Inc()
}

// worker returns the per-worker experiment counter
// (runner.worker.<w>.experiments). Callers cache it for the duration of
// a scheduling unit; with metrics off it is nil and increments no-op.
func (m *runnerMetrics) worker(w int) *obs.Counter {
	return m.reg.Counter("runner.worker." + strconv.Itoa(w) + ".experiments")
}
