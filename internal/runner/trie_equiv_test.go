package runner

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"comfase/internal/analysis"
	"comfase/internal/core"
	"comfase/internal/mac"
	"comfase/internal/nic"
	"comfase/internal/obs"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
)

// trieChaosEngine is the chaos scenario with the checkpoint-trie knobs
// under test. The early-exit variant keeps the default (tight) stability
// tolerance — a loose tolerance genuinely changes classifications, since
// a platoon whose speeds merely hover near the golden profile can still
// brake past the negligible/benign boundary later — but shortens the
// hold so verdicts actually decide inside the 5 s horizon.
func trieChaosEngine(t *testing.T, budget uint64, reg *obs.Registry, earlyExit bool) *core.Engine {
	t.Helper()
	ts := scenario.PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	cfg := core.EngineConfig{
		Scenario:          ts,
		Comm:              scenario.PaperCommModel(),
		Seed:              1,
		CancelCheckEvents: 256,
		Invariants:        true,
		EventBudget:       budget,
		Metrics:           reg,
	}
	if earlyExit {
		cfg.EarlyExit = true
		cfg.EarlyExitHold = des.Second
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// runTrieEquiv executes the grid on the given engine with the requested
// trie setting and returns the CSV bytes, the classified results in grid
// order and the quarantined failures.
func runTrieEquiv(t *testing.T, eng *core.Engine, setup core.CampaignSetup, opts Options, disableTrie bool) (string, []core.ExperimentResult, []core.ExperimentFailure) {
	t.Helper()
	opts.DisableTrie = disableTrie
	quarantine := &MemoryFailureSink{}
	opts.Quarantine = quarantine
	var csv bytes.Buffer
	r, err := New(eng, opts, NewCSVSink(&csv))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(context.Background(), setup)
	if err != nil {
		t.Fatalf("Run (trie disabled=%v): %v", disableTrie, err)
	}
	return csv.String(), res.Experiments, quarantine.Failures
}

// trieBombModel is a chainable interceptor that panics the moment the
// simulation clock reaches its trigger — a deterministic, purely
// time-keyed failure that detonates inside a chained suffix rather than
// in the model factory, so it poisons an inner trie node mid-run.
type trieBombModel struct {
	inner   *core.DelayAttack
	trigger des.Time
}

func (m *trieBombModel) Name() string              { return "trie-bomb" }
func (m *trieBombModel) Targets() []string         { return m.inner.Targets() }
func (m *trieBombModel) ChainableAcrossDurations() {}

func (m *trieBombModel) Intercept(t des.Time, src, dst string, f mac.Frame) nic.Verdict {
	if t >= m.trigger {
		panic(fmt.Sprintf("trie bomb detonated at %v", t))
	}
	return m.inner.Intercept(t, src, dst, f)
}

// trieBombFactory plants a bomb on one attack value, 1.2 s into the
// attack window: the two longest durations of every bombed chain cross
// the trigger, so with the trie enabled the panic fires while running a
// chained suffix forked from a mid-attack boundary.
func trieBombFactory() core.ModelFactory {
	return func(spec core.ExperimentSpec, _ des.Time, _ uint64) (core.AttackModel, error) {
		inner, err := core.NewDelayAttack(des.FromSeconds(spec.Value), spec.Targets...)
		if err != nil {
			return nil, err
		}
		if spec.Value == 0.6 {
			return &trieBombModel{inner: inner, trigger: spec.Start + 1200*des.Millisecond}, nil
		}
		return inner, nil
	}
}

// TestTrieCampaignEquivalence is the byte-equivalence proof for the
// checkpoint trie: the same 200-point grid executed with duration
// chaining on and off must emit byte-identical result CSVs — on a
// healthy grid, on a sharded slice, under the chaos fault schedule, and
// with early exit enabled on both sides (chain boundaries only exist
// where the shorter sibling finished undecided, so fresh and chained
// runs stop at the same aligned instants). The trie is the default, so
// this is the campaign-level pin that it changes nothing but wall-clock
// time.
func TestTrieCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 200-experiment campaigns in -short mode")
	}
	setup := chaosGrid()

	t.Run("healthy", func(t *testing.T) {
		reg := obs.NewRegistry()
		on, _, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, reg, false), setup, Options{Workers: 4}, false)
		off, _, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), setup, Options{Workers: 4}, true)
		if on != off {
			t.Errorf("trie CSV differs from chain-free CSV:\non:\n%s\noff:\n%s", on, off)
		}
		if forks := reg.Counter("engine.trie_suffix_forks").Load(); forks == 0 {
			t.Error("trie run forked no suffixes from boundary snapshots — equivalence is vacuous")
		}
	})

	t.Run("sharded", func(t *testing.T) {
		// Sharding punches round-robin holes in every sibling block; the
		// (duration, expNr) chain order must survive the holes and the
		// release frontier must still emit the shard's rows in grid order.
		opts := Options{Workers: 2, Shard: Shard{Index: 2, Count: 3}}
		on, _, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), setup, opts, false)
		off, _, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), setup, opts, true)
		if on != off {
			t.Errorf("sharded trie CSV differs from chain-free CSV:\non:\n%s\noff:\n%s", on, off)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		// The full failure-containment stack on top of chaining:
		// deterministic panics, hangs and NaN corruption, one retry,
		// unlimited failure budget.
		opts := Options{Workers: 4, Retries: 1, MaxFailures: -1}
		chaosOn := setup
		var muOn sync.Mutex
		chaosOn.Factory = chaosFactory(&muOn, map[int]int{})
		on, _, onFails := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), chaosOn, opts, false)

		chaosOff := setup
		var muOff sync.Mutex
		chaosOff.Factory = chaosFactory(&muOff, map[int]int{})
		off, _, offFails := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), chaosOff, opts, true)

		if on != off {
			t.Errorf("chaos trie CSV differs from chain-free CSV:\non:\n%s\noff:\n%s", on, off)
		}
		compareQuarantine(t, onFails, offFails)
	})

	t.Run("healthy early-exit", func(t *testing.T) {
		on, _, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, true), setup, Options{Workers: 4}, false)
		off, _, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, true), setup, Options{Workers: 4}, true)
		if on != off {
			t.Errorf("early-exit trie CSV differs from chain-free CSV:\non:\n%s\noff:\n%s", on, off)
		}
	})

	t.Run("chained panic poisons subtree only", func(t *testing.T) {
		// A purely time-keyed panic inside a chained suffix: the bombed
		// value chain quarantines its two longest durations (the trigger
		// lies 1.2 s into the attack window), the session heals, and
		// every sibling chain of the same group still produces rows
		// byte-identical to the chain-free run.
		opts := Options{Workers: 4, Retries: 1, MaxFailures: -1}
		bombOn := setup
		bombOn.Factory = trieBombFactory()
		on, _, onFails := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), bombOn, opts, false)

		bombOff := setup
		bombOff.Factory = trieBombFactory()
		off, _, offFails := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), bombOff, opts, true)

		// 10 starts x 1 bombed value x 2 durations crossing the trigger.
		if len(onFails) != 20 {
			t.Errorf("trie run quarantined %d experiments, want 20", len(onFails))
		}
		for _, f := range onFails {
			if f.Class != "panic" || f.Attempts != 2 {
				t.Errorf("bombed experiment %d: class %q attempts %d, want panic/2", f.Nr, f.Class, f.Attempts)
			}
		}
		if on != off {
			t.Errorf("bombed trie CSV differs from chain-free CSV:\non:\n%s\noff:\n%s", on, off)
		}
		compareQuarantine(t, onFails, offFails)
	})
}

// compareQuarantine checks the classification contract of two quarantine
// streams: same grid points, same failure class, same attempt count.
// Stack traces legitimately differ between chained and fresh call paths.
func compareQuarantine(t *testing.T, on, off []core.ExperimentFailure) {
	t.Helper()
	if len(on) != len(off) {
		t.Fatalf("quarantine size: %d chained, %d fresh", len(on), len(off))
	}
	for i := range on {
		a, b := on[i], off[i]
		if a.Nr != b.Nr || a.Class != b.Class || a.Attempts != b.Attempts {
			t.Errorf("quarantine record %d differs: chained {Nr:%d Class:%q Attempts:%d}, fresh {Nr:%d Class:%q Attempts:%d}",
				i, a.Nr, a.Class, a.Attempts, b.Nr, b.Class, b.Attempts)
		}
	}
}

// renderCellReports renders the full per-cell classification report — the
// analysis artefact early exit promises to preserve bit-for-bit.
func renderCellReports(t *testing.T, exps []core.ExperimentResult) string {
	t.Helper()
	var b bytes.Buffer
	for _, fam := range analysis.CellFamilies(analysis.GroupCells(exps)) {
		if err := analysis.WriteCellReport(&b, fam); err != nil {
			t.Fatalf("WriteCellReport: %v", err)
		}
	}
	return b.String()
}

// TestTrieEarlyExitClassificationEquivalence pins the early-exit
// contract: truncating an experiment once its verdict is decided may
// change the raw kinematic summaries (DESIGN.md §10) but must not change
// a single classification — per-experiment outcome and collider match a
// full-horizon run exactly, and the rendered per-cell report is
// byte-identical, both on a healthy grid and under the chaos schedule.
func TestTrieEarlyExitClassificationEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple 200-experiment campaigns in -short mode")
	}
	setup := chaosGrid()

	compare := func(t *testing.T, ee, full []core.ExperimentResult) {
		t.Helper()
		if len(ee) != len(full) {
			t.Fatalf("result count: %d early-exit, %d full", len(ee), len(full))
		}
		for i := range ee {
			a, b := ee[i], full[i]
			if a.Spec.Nr != b.Spec.Nr || a.Outcome != b.Outcome || a.Collider != b.Collider {
				t.Errorf("experiment %d: early-exit {Outcome:%v Collider:%q}, full {Nr:%d Outcome:%v Collider:%q}",
					a.Spec.Nr, a.Outcome, a.Collider, b.Spec.Nr, b.Outcome, b.Collider)
			}
		}
		if eeRep, fullRep := renderCellReports(t, ee), renderCellReports(t, full); eeRep != fullRep {
			t.Errorf("classification report differs:\nearly-exit:\n%s\nfull:\n%s", eeRep, fullRep)
		}
	}

	t.Run("healthy", func(t *testing.T) {
		reg := obs.NewRegistry()
		_, ee, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, reg, true), setup, Options{Workers: 4}, false)
		_, full, _ := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), setup, Options{Workers: 4}, false)
		compare(t, ee, full)
		if exits := reg.Counter("engine.early_exits").Load(); exits == 0 {
			t.Error("no experiment exited early — classification equivalence is vacuous")
		}
	})

	t.Run("chaos", func(t *testing.T) {
		opts := Options{Workers: 4, Retries: 1, MaxFailures: -1}
		chaosEE := setup
		var muEE sync.Mutex
		chaosEE.Factory = chaosFactory(&muEE, map[int]int{})
		_, ee, eeFails := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, true), chaosEE, opts, false)

		chaosFull := setup
		var muFull sync.Mutex
		chaosFull.Factory = chaosFactory(&muFull, map[int]int{})
		_, full, fullFails := runTrieEquiv(t, trieChaosEngine(t, 100_000, nil, false), chaosFull, opts, false)

		compare(t, ee, full)
		compareQuarantine(t, eeFails, fullFails)
	})
}

// TestOrderGroupChainsTotalOrder pins the chain ordering contract: one
// bucket per attack value in first-appearance order, each sorted by
// (duration, expNr) — a total order, so equal durations break the tie on
// the experiment number, and any subset of the grid (a shard, a resume
// hole) derives chain orders that are projections of the full grid's.
func TestOrderGroupChainsTotalOrder(t *testing.T) {
	setup := chaosGrid()
	setup.Values = []float64{0.2, 0.4}
	// A duplicated duration forces the expNr tie-break.
	setup.Durations = []des.Time{des.Second, des.Second, 500 * des.Millisecond}
	setup.Starts = setup.Starts[:1]
	specs := setup.Experiments()
	group := make([]int, len(specs))
	for i := range group {
		group[i] = i
	}

	chains := orderGroupChains(specs, group)
	// Grid order per value is Nr 0,1 (1 s), 2 (0.5 s) — sorted by
	// (duration, expNr) the 0.5 s run leads and the equal 1 s runs keep
	// expNr order.
	want := [][]int{{2, 0, 1}, {5, 3, 4}}
	if len(chains) != len(want) {
		t.Fatalf("chains = %v, want %v", chains, want)
	}
	for b := range want {
		if len(chains[b]) != len(want[b]) {
			t.Fatalf("chain %d = %v, want %v", b, chains[b], want[b])
		}
		for i := range want[b] {
			if chains[b][i] != want[b][i] {
				t.Fatalf("chain %d = %v, want %v", b, chains[b], want[b])
			}
		}
	}

	// Any subset must order as the full grid's projection: drop two
	// experiments and check the surviving relative order is unchanged.
	subset := []int{0, 1, 4, 5} // drop Nr 2 and 3
	subChains := orderGroupChains(specs, subset)
	wantSub := [][]int{{0, 1}, {5, 4}}
	for b := range wantSub {
		if len(subChains[b]) != len(wantSub[b]) {
			t.Fatalf("subset chain %d = %v, want %v", b, subChains[b], wantSub[b])
		}
		for i := range wantSub[b] {
			if subChains[b][i] != wantSub[b][i] {
				t.Fatalf("subset chain %d = %v, want %v", b, subChains[b], wantSub[b])
			}
		}
	}
}
