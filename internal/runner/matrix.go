package runner

import (
	"context"
	"errors"
	"fmt"
	"io"

	"comfase/internal/analysis"
	"comfase/internal/classify"
	"comfase/internal/core"
)

// MatrixCell is one (scenario, attack) cell of a matrix campaign: the
// engine configuration of the scenario plus the cell's campaign grid.
// Cells are produced by registry.Matrix.Expand (via the config layer);
// the runner deliberately takes the flattened form so it does not
// depend on the registry package.
type MatrixCell struct {
	// Scenario is the cell's scenario label (matches Setup.Scenario).
	Scenario string
	// Attack is the cell's attack family name.
	Attack string
	// Engine configures the scenario cell's engine (one golden run per
	// distinct scenario).
	Engine core.EngineConfig
	// Setup is the cell's campaign grid; Setup.Base carries the global
	// expNr offset, so shard/resume/merge work on the flattened grid.
	Setup core.CampaignSetup
}

// CellResult is one cell's campaign outcome.
type CellResult struct {
	Scenario string
	Attack   string
	Result   *core.CampaignResult
}

// MatrixResult aggregates a full matrix run.
type MatrixResult struct {
	// Cells are the per-cell results in matrix order.
	Cells []CellResult
	// Experiments are all classified results in global grid order.
	Experiments []core.ExperimentResult
	// Counts is the overall outcome tally.
	Counts classify.Counts
	// CellCounts tallies outcomes per "scenario/attack" cell label.
	CellCounts *classify.LabeledCounts
	// Failures are the quarantined experiments across all cells.
	Failures []core.ExperimentFailure
	// FailureCounts tallies the failure classes.
	FailureCounts core.FailureCounts
}

// RunMatrix executes the cells in matrix order against one Options set,
// streaming all results to the shared sinks. Each distinct scenario
// label gets one engine — its golden run is simulated once and its
// workspace pool and prefix checkpoints are scoped to the cell, so the
// checkpoint group key is effectively (scenario, attack start). Shard,
// resume and quarantine semantics apply to the flattened global grid
// exactly as they do to a single campaign: expNr is globally unique and
// contiguous across cells, sinks receive rows in global grid order, and
// Options.MaxFailures is a whole-matrix budget.
func RunMatrix(ctx context.Context, cells []MatrixCell, opts Options, sinks ...Sink) (*MatrixResult, error) {
	if len(cells) == 0 {
		return nil, errors.New("runner: matrix has no cells")
	}
	// The global expNr space must be contiguous in cell order — sharding
	// and merge correctness depend on it.
	base := cells[0].Setup.Base
	total := 0
	selected := make([]int, len(cells)) // shard+range-selected points per cell
	for i, cell := range cells {
		if cell.Setup.Base != base {
			return nil, fmt.Errorf("runner: matrix cell %d (%s/%s) has base %d, want %d",
				i, cell.Scenario, cell.Attack, cell.Setup.Base, base)
		}
		if err := cell.Setup.Validate(); err != nil {
			return nil, fmt.Errorf("runner: matrix cell %s/%s: %w", cell.Scenario, cell.Attack, err)
		}
		n := cell.Setup.NumExperiments()
		base += n
		for nr := cell.Setup.Base; nr < cell.Setup.Base+n; nr++ {
			if opts.Shard.Contains(nr) && opts.Range.Contains(nr) {
				selected[i]++
			}
		}
		total += selected[i]
	}

	out := &MatrixResult{CellCounts: &classify.LabeledCounts{}}
	remainingFailures := opts.MaxFailures
	doneOffset := 0
	var eng *core.Engine
	prevScenario := ""
	for i, cell := range cells {
		if selected[i] == 0 {
			// No grid point of this cell survives the shard/range filter:
			// skip its engine (and golden run) entirely. The empty
			// CellResult keeps the matrix shape intact for reporting.
			out.Cells = append(out.Cells, CellResult{
				Scenario: cell.Scenario,
				Attack:   cell.Attack,
				Result:   &core.CampaignResult{Setup: cell.Setup},
			})
			continue
		}
		if eng == nil || cell.Scenario != prevScenario {
			var err error
			eng, err = core.NewEngine(cell.Engine)
			if err != nil {
				return nil, fmt.Errorf("runner: matrix cell %s/%s: %w", cell.Scenario, cell.Attack, err)
			}
			prevScenario = cell.Scenario
		}
		cellOpts := opts
		cellOpts.MaxFailures = remainingFailures
		if opts.Progress != nil {
			offset := doneOffset
			cellOpts.Progress = func(done, _ int) { opts.Progress(offset+done, total) }
		}
		r, err := New(eng, cellOpts, sinks...)
		if err != nil {
			return nil, err
		}
		res, err := r.Run(ctx, cell.Setup)
		if err != nil {
			return nil, fmt.Errorf("runner: matrix cell %d (%s/%s): %w", i, cell.Scenario, cell.Attack, err)
		}
		newFailures := 0
		for _, f := range res.Failures {
			if _, resumed := opts.ResumeFailures[f.Nr]; !resumed {
				newFailures++
			}
		}
		if remainingFailures >= 0 {
			remainingFailures -= newFailures
		}
		doneOffset += len(res.Experiments) + len(res.Failures)
		out.Cells = append(out.Cells, CellResult{Scenario: cell.Scenario, Attack: cell.Attack, Result: res})
		out.Experiments = append(out.Experiments, res.Experiments...)
		for _, e := range res.Experiments {
			out.Counts.Add(e.Outcome)
			out.CellCounts.Add(cell.Scenario+"/"+cell.Attack, e.Outcome)
		}
		out.Failures = append(out.Failures, res.Failures...)
		for _, f := range res.Failures {
			class, cerr := core.ParseFailureClass(f.Class)
			if cerr != nil {
				class = core.FailError
			}
			out.FailureCounts.Add(class)
		}
	}
	return out, nil
}

// MatrixCSVSink streams one CSV row per result in the
// analysis.MatrixCSVHeader schema (scenario column included), writing
// through on every row like CSVSink and reusing the row buffer the same
// way.
type MatrixCSVSink struct {
	w           io.Writer
	buf         []byte
	writeHeader bool
}

// NewMatrixCSVSink returns a sink that writes the matrix header before
// the first row.
func NewMatrixCSVSink(w io.Writer) *MatrixCSVSink {
	return &MatrixCSVSink{w: w, writeHeader: true}
}

// NewMatrixCSVAppendSink returns a matrix sink that writes rows only —
// the resume path appending to a file that already carries a header.
func NewMatrixCSVAppendSink(w io.Writer) *MatrixCSVSink {
	return &MatrixCSVSink{w: w}
}

// Put implements Sink.
func (s *MatrixCSVSink) Put(res core.ExperimentResult) error {
	s.buf = s.buf[:0]
	if s.writeHeader {
		s.buf = analysis.AppendMatrixCSVHeader(s.buf)
		s.writeHeader = false
	}
	s.buf = analysis.AppendMatrixCSVRow(s.buf, res)
	_, err := s.w.Write(s.buf)
	return err
}

// Flush implements Sink. Put writes through, so nothing is buffered.
func (s *MatrixCSVSink) Flush() error { return nil }
