package runner

// This file holds the per-campaign file layout and resume-prefix
// helpers shared by the multi-campaign fabric service and the CLI. A
// submit-mode coordinator keeps every campaign's artifacts side by side
// in one directory; these helpers are the single source of truth for
// that naming, so the service, `comfase serve -dir -resume` and
// operators reading the directory all agree on which file belongs to
// which campaign.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"comfase/internal/core"
)

// CampaignFiles names one campaign's on-disk artifacts inside a service
// directory. Results and Quarantine are the merged grid-ordered streams
// (byte-identical to a sequential run); Config is the submitted raw
// config JSON (the resume source of truth); Status is the atomically
// rewritten per-campaign status document.
type CampaignFiles struct {
	ID         string
	Config     string
	Results    string
	Quarantine string
	Status     string
}

// CampaignFilesIn returns campaign id's file layout under dir.
func CampaignFilesIn(dir, id string) CampaignFiles {
	return CampaignFiles{
		ID:         id,
		Config:     filepath.Join(dir, id+".config.json"),
		Results:    filepath.Join(dir, id+".results.csv"),
		Quarantine: filepath.Join(dir, id+".quarantine.jsonl"),
		Status:     filepath.Join(dir, id+".status.json"),
	}
}

// ListCampaignDirs scans a service directory for submitted campaigns —
// every `<id>.config.json` — and returns their layouts sorted by ID
// (numeric-aware, so c10 sorts after c2).
func ListCampaignDirs(dir string) ([]CampaignFiles, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []CampaignFiles
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".config.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".config.json")
		if id == "" {
			continue
		}
		out = append(out, CampaignFilesIn(dir, id))
	}
	sort.Slice(out, func(i, j int) bool {
		return lessNumericAware(out[i].ID, out[j].ID)
	})
	return out, nil
}

// lessNumericAware orders c2 before c10 by comparing the shared alpha
// prefix, then any trailing integer by value, falling back to plain
// string order.
func lessNumericAware(a, b string) bool {
	pa, na, aok := splitTrailingInt(a)
	pb, nb, bok := splitTrailingInt(b)
	if aok && bok && pa == pb {
		if na != nb {
			return na < nb
		}
	}
	return a < b
}

func splitTrailingInt(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n, true
}

// ContiguousPrefix measures how much of the grid [base, base+total) is
// already covered by the given result rows and quarantine records as a
// contiguous prefix, and how many records lie beyond it. A coordinator's
// release frontier only ever writes contiguous prefixes, so extra > 0
// means the files are NOT a coordinator output (per-shard files that
// still need `comfase merge`, or files from a different grid) and a
// resume must refuse rather than silently discard the stray records.
func ContiguousPrefix(base, total int, rows map[int]core.ExperimentResult, fails map[int]core.ExperimentFailure) (prefix, extra int) {
	for prefix < total {
		nr := base + prefix
		_, inRows := rows[nr]
		_, inFails := fails[nr]
		if !inRows && !inFails {
			break
		}
		prefix++
	}
	return prefix, len(rows) + len(fails) - prefix
}

// ReadMergedPrefix reads a coordinator's merged results (and optional
// quarantine) files, truncates any partial trailing line a mid-write
// crash left behind, and returns the contiguous done-prefix length.
// Errors name the offending file — several campaigns share a directory
// in submit mode, so "which file was rejected" must never be ambiguous.
func ReadMergedPrefix(resultsPath, quarantinePath string, base, total int) (prefix int, err error) {
	if err := TruncateToLastNewline(resultsPath); err != nil {
		return 0, fmt.Errorf("results file %s: %w", resultsPath, err)
	}
	rows, err := ReadResultsFile(resultsPath)
	if err != nil {
		return 0, fmt.Errorf("results file %s: %w", resultsPath, err)
	}
	fails := map[int]core.ExperimentFailure{}
	if quarantinePath != "" {
		if err := TruncateToLastNewline(quarantinePath); err != nil {
			return 0, fmt.Errorf("quarantine file %s: %w", quarantinePath, err)
		}
		if fails, err = ReadQuarantineFile(quarantinePath); err != nil {
			return 0, fmt.Errorf("quarantine file %s: %w", quarantinePath, err)
		}
	}
	prefix, extra := ContiguousPrefix(base, total, rows, fails)
	if extra > 0 {
		return 0, fmt.Errorf("results file %s holds %d record(s) beyond its %d-point contiguous prefix — not a coordinator output (per-shard files need `comfase merge` first)",
			resultsPath, extra, prefix)
	}
	return prefix, nil
}

// TruncateToLastNewline chops a partial trailing line (a crash
// mid-write) off a line-oriented output file so appending to it stays
// parseable. Missing files are fine; a file with no newline at all is
// emptied.
func TruncateToLastNewline(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	idx := bytes.LastIndexByte(data, '\n')
	return os.Truncate(path, int64(idx+1))
}
