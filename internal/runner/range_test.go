package runner

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comfase/internal/core"
)

func TestRangeValidateContains(t *testing.T) {
	cases := []struct {
		name     string
		r        Range
		valid    bool
		contains map[int]bool
	}{
		{
			name:     "disabled zero range contains everything",
			r:        Range{},
			valid:    true,
			contains: map[int]bool{0: true, 7: true, 1 << 20: true},
		},
		{
			name:     "half-open interval",
			r:        Range{From: 3, To: 6},
			valid:    true,
			contains: map[int]bool{2: false, 3: true, 5: true, 6: false},
		},
		{
			name:     "prefix from zero",
			r:        Range{From: 0, To: 2},
			valid:    true,
			contains: map[int]bool{0: true, 1: true, 2: false},
		},
		{name: "negative from", r: Range{From: -1, To: 4}, valid: false},
		{name: "inverted", r: Range{From: 5, To: 2}, valid: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.r.Validate()
			if tc.valid && err != nil {
				t.Fatalf("Validate(%v) = %v", tc.r, err)
			}
			if !tc.valid {
				if err == nil {
					t.Fatalf("Validate(%v) accepted", tc.r)
				}
				return
			}
			for nr, want := range tc.contains {
				if got := tc.r.Contains(nr); got != want {
					t.Errorf("%v.Contains(%d) = %v, want %v", tc.r, nr, got, want)
				}
			}
		})
	}
	if _, err := New(chaosEngine(t, 0), Options{Range: Range{From: 2, To: 1}}); err == nil {
		t.Error("runner accepted an inverted range")
	}
}

// TestRangeSplitEquivalence is the fabric leasing invariant at the
// runner layer: executing a grid as range slices and concatenating the
// slice outputs must reproduce the unrestricted run byte for byte.
func TestRangeSplitEquivalence(t *testing.T) {
	setup := chaosGrid()
	setup.Values = setup.Values[:2]
	setup.Starts = setup.Starts[:3]
	setup.Durations = setup.Durations[:2] // 12 experiments
	total := setup.NumExperiments()

	runRange := func(r Range) string {
		t.Helper()
		var buf bytes.Buffer
		run, err := New(chaosEngine(t, 0), Options{Workers: 2, Range: r}, NewCSVSink(&buf))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := run.Run(context.Background(), setup); err != nil {
			t.Fatalf("Run(%v): %v", r, err)
		}
		return buf.String()
	}

	full := runRange(Range{})
	var spliced strings.Builder
	header := full[:strings.IndexByte(full, '\n')+1]
	spliced.WriteString(header)
	for from := 0; from < total; from += 5 {
		to := from + 5
		if to > total {
			to = total
		}
		part := runRange(Range{From: from, To: to})
		spliced.WriteString(strings.TrimPrefix(part, header))
	}
	if spliced.String() != full {
		t.Errorf("range-spliced CSV differs from the full run:\nspliced:\n%s\nfull:\n%s", spliced.String(), full)
	}
}

func TestMergeQuarantineFiles(t *testing.T) {
	recs := []core.ExperimentFailure{
		{Nr: 4, Attack: "delay", Class: "panic", Error: "boom", Attempts: 2},
		{Nr: 1, Attack: "delay", Class: "timeout", Error: "slow", Attempts: 1},
		{Nr: 9, Attack: "delay", Class: "invariant", Error: "NaN", Attempts: 3},
		{Nr: 2, Attack: "delay", Class: "panic", Error: "again", Attempts: 2},
	}
	dir := t.TempDir()
	writeFile := func(name string, failures []core.ExperimentFailure, chopTail bool) string {
		t.Helper()
		var buf bytes.Buffer
		sink := NewQuarantineSink(&buf)
		for _, f := range failures {
			if err := sink.Put(f); err != nil {
				t.Fatal(err)
			}
		}
		data := buf.Bytes()
		if chopTail {
			data = data[:len(data)-7] // mid-record, no trailing newline
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Worker A holds 4 and 1; worker B holds 9, 2 and a record truncated
	// by a mid-write kill that must be dropped silently.
	a := writeFile("a.jsonl", recs[:2], false)
	b := writeFile("b.jsonl", append(recs[2:4:4], core.ExperimentFailure{Nr: 7, Attack: "delay", Class: "panic"}), true)

	var merged bytes.Buffer
	if err := MergeQuarantineFiles(&merged, a, b); err != nil {
		t.Fatalf("MergeQuarantineFiles: %v", err)
	}
	// Expected: the sequential sink writing the surviving records in
	// grid order — byte identity, not just semantic equality.
	var want bytes.Buffer
	wantSink := NewQuarantineSink(&want)
	for _, nr := range []int{1, 2, 4, 9} {
		for _, f := range recs {
			if f.Nr == nr {
				if err := wantSink.Put(f); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if merged.String() != want.String() {
		t.Errorf("merged quarantine:\n%q\nwant:\n%q", merged.String(), want.String())
	}

	// A duplicate expNr across inputs is corruption, not mergeable.
	dup := writeFile("dup.jsonl", recs[:1], false)
	if err := MergeQuarantineFiles(&bytes.Buffer{}, a, dup); err == nil {
		t.Error("duplicate expNr across inputs accepted")
	}
	// Missing inputs are I/O errors, not silently empty.
	if err := MergeQuarantineFiles(&bytes.Buffer{}, filepath.Join(dir, "nope.jsonl")); err == nil {
		t.Error("missing input accepted")
	}
}
