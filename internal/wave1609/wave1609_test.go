package wave1609

import (
	"testing"
	"testing/quick"

	"comfase/internal/sim/des"
)

func TestAccessModeString(t *testing.T) {
	if AccessContinuous.String() != "continuous" ||
		AccessAlternating.String() != "alternating" ||
		AccessMode(0).String() != "unknown" {
		t.Error("AccessMode.String wrong")
	}
}

func TestValidate(t *testing.T) {
	if err := NewSchedule(AccessContinuous).Validate(); err != nil {
		t.Errorf("continuous default invalid: %v", err)
	}
	if err := NewSchedule(AccessAlternating).Validate(); err != nil {
		t.Errorf("alternating default invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Schedule)
	}{
		{name: "bad mode", mutate: func(s *Schedule) { s.Mode = 0 }},
		{name: "zero sync", mutate: func(s *Schedule) { s.SyncInterval = 0 }},
		{name: "cch > sync", mutate: func(s *Schedule) { s.CCHInterval = s.SyncInterval + 1 }},
		{name: "guard >= cch", mutate: func(s *Schedule) { s.GuardInterval = s.CCHInterval }},
		{name: "negative guard", mutate: func(s *Schedule) { s.GuardInterval = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSchedule(AccessAlternating)
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid schedule accepted")
			}
		})
	}
}

func TestContinuousAlwaysTransmits(t *testing.T) {
	s := NewSchedule(AccessContinuous)
	f := func(now uint32, airtime uint16) bool {
		n := des.Time(now)
		return s.CanTransmit(n, des.Time(airtime)) &&
			s.NextTxOpportunity(n, des.Time(airtime)) == n &&
			s.InCCH(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlternatingWindows(t *testing.T) {
	s := NewSchedule(AccessAlternating)
	air := 100 * des.Microsecond
	tests := []struct {
		name string
		now  des.Time
		want bool
	}{
		{name: "in guard", now: 2 * des.Millisecond, want: false},
		{name: "just after guard", now: 4 * des.Millisecond, want: true},
		{name: "mid CCH", now: 25 * des.Millisecond, want: true},
		{name: "frame would cross CCH end", now: 50*des.Millisecond - 50*des.Microsecond, want: false},
		{name: "in SCH", now: 75 * des.Millisecond, want: false},
		{name: "next interval guard", now: 101 * des.Millisecond, want: false},
		{name: "next interval CCH", now: 110 * des.Millisecond, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.CanTransmit(tt.now, air); got != tt.want {
				t.Errorf("CanTransmit(%v) = %v, want %v", tt.now, got, tt.want)
			}
		})
	}
}

func TestNextTxOpportunity(t *testing.T) {
	s := NewSchedule(AccessAlternating)
	air := 100 * des.Microsecond
	tests := []struct {
		name string
		now  des.Time
		want des.Time
	}{
		{name: "in guard waits for guard end", now: des.Millisecond, want: 4 * des.Millisecond},
		{name: "in window transmits now", now: 20 * des.Millisecond, want: 20 * des.Millisecond},
		{name: "in SCH waits for next CCH", now: 70 * des.Millisecond, want: 104 * des.Millisecond},
		{name: "frame does not fit window tail", now: 50*des.Millisecond - 10*des.Microsecond, want: 104 * des.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.NextTxOpportunity(tt.now, air); got != tt.want {
				t.Errorf("NextTxOpportunity(%v) = %v, want %v", tt.now, got, tt.want)
			}
		})
	}
}

func TestNextTxOpportunityOversizedFrame(t *testing.T) {
	s := NewSchedule(AccessAlternating)
	if got := s.NextTxOpportunity(0, 60*des.Millisecond); got != des.MaxTime {
		t.Errorf("oversized frame opportunity = %v, want MaxTime", got)
	}
}

// Property: an opportunity returned by NextTxOpportunity is always a time
// at which CanTransmit holds.
func TestOpportunityIsTransmittableProperty(t *testing.T) {
	s := NewSchedule(AccessAlternating)
	f := func(now uint32, airUs uint16) bool {
		n := des.Time(now) * des.Microsecond
		air := des.Time(airUs%2000) * des.Microsecond
		opp := s.NextTxOpportunity(n, air)
		if opp == des.MaxTime {
			return true
		}
		return opp >= n && s.CanTransmit(opp, air)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInCCH(t *testing.T) {
	s := NewSchedule(AccessAlternating)
	if !s.InCCH(10 * des.Millisecond) {
		t.Error("10 ms should be CCH")
	}
	if s.InCCH(60 * des.Millisecond) {
		t.Error("60 ms should be SCH")
	}
	if !s.InCCH(des.Millisecond) {
		t.Error("guard should still count as tuned-to-CCH")
	}
}
