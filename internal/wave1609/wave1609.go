// Package wave1609 implements the IEEE 1609.4 multi-channel operation
// layer of the Veins substitute: the division of time into synchronised
// CCH/SCH intervals with guard periods, and the transmit-window queries
// the MAC uses to defer frames that do not fit the remaining channel
// time. The paper's communication model (Fig. 1) stacks exactly this
// layer above the 802.11p MAC.
package wave1609

import (
	"errors"

	"comfase/internal/sim/des"
)

// AccessMode selects how the radio uses the control channel.
type AccessMode int

const (
	// AccessContinuous keeps the radio on the CCH permanently. This is
	// Plexe's default for platooning beacons and the mode the paper's
	// experiments run in.
	AccessContinuous AccessMode = iota + 1
	// AccessAlternating switches between CCH and SCH every interval as
	// per IEEE 1609.4 synchronised channel switching.
	AccessAlternating
)

// String implements fmt.Stringer.
func (m AccessMode) String() string {
	switch m {
	case AccessContinuous:
		return "continuous"
	case AccessAlternating:
		return "alternating"
	default:
		return "unknown"
	}
}

// Standard IEEE 1609.4 timing.
const (
	// DefaultSyncInterval is the CCH+SCH period (100 ms).
	DefaultSyncInterval = 100 * des.Millisecond
	// DefaultCCHInterval is the control-channel half (50 ms).
	DefaultCCHInterval = 50 * des.Millisecond
	// DefaultGuardInterval is the guard time at the start of each
	// channel interval during which no transmissions may start (4 ms).
	DefaultGuardInterval = 4 * des.Millisecond
)

// Schedule answers "may I start a CCH transmission now, and if not, when
// next?" for a given access mode.
type Schedule struct {
	// Mode is the channel access mode.
	Mode AccessMode
	// SyncInterval is the full CCH+SCH period.
	SyncInterval des.Time
	// CCHInterval is the CCH portion at the start of each sync interval.
	CCHInterval des.Time
	// GuardInterval is the no-transmit guard at the start of the CCH
	// interval.
	GuardInterval des.Time
}

// NewSchedule returns a schedule with standard 1609.4 timing.
func NewSchedule(mode AccessMode) Schedule {
	return Schedule{
		Mode:          mode,
		SyncInterval:  DefaultSyncInterval,
		CCHInterval:   DefaultCCHInterval,
		GuardInterval: DefaultGuardInterval,
	}
}

// Validate reports the first configuration problem, or nil.
func (s Schedule) Validate() error {
	if s.Mode != AccessContinuous && s.Mode != AccessAlternating {
		return errors.New("wave1609: invalid access mode")
	}
	if s.Mode == AccessContinuous {
		return nil
	}
	switch {
	case s.SyncInterval <= 0:
		return errors.New("wave1609: sync interval must be positive")
	case s.CCHInterval <= 0 || s.CCHInterval > s.SyncInterval:
		return errors.New("wave1609: CCH interval must be in (0, sync]")
	case s.GuardInterval < 0 || s.GuardInterval >= s.CCHInterval:
		return errors.New("wave1609: guard must be in [0, CCH)")
	}
	return nil
}

// phase returns the offset of now within the sync interval.
func (s Schedule) phase(now des.Time) des.Time {
	p := now % s.SyncInterval
	if p < 0 {
		p += s.SyncInterval
	}
	return p
}

// CanTransmit reports whether a CCH transmission of the given airtime may
// START at time now and complete within the current CCH window. In
// continuous mode this is always true.
func (s Schedule) CanTransmit(now, airtime des.Time) bool {
	if s.Mode == AccessContinuous {
		return true
	}
	p := s.phase(now)
	if p < s.GuardInterval || p >= s.CCHInterval {
		return false
	}
	return p.Add(airtime) <= s.CCHInterval
}

// NextTxOpportunity returns the earliest time >= now at which a CCH
// transmission of the given airtime may start. In continuous mode it
// returns now. If the frame cannot fit any CCH window at all (airtime
// longer than the usable window) it returns des.MaxTime.
func (s Schedule) NextTxOpportunity(now, airtime des.Time) des.Time {
	if s.Mode == AccessContinuous {
		return now
	}
	usable := s.CCHInterval - s.GuardInterval
	if airtime > usable {
		return des.MaxTime
	}
	for i := 0; i < 3; i++ {
		p := s.phase(now)
		windowStart := now - p + s.GuardInterval
		latestStart := now - p + s.CCHInterval - airtime
		switch {
		case p < s.GuardInterval:
			return windowStart
		case now <= latestStart:
			return now
		default:
			// Roll to the next sync interval's guard end.
			now = now - p + s.SyncInterval + s.GuardInterval
			return now
		}
	}
	return des.MaxTime
}

// InCCH reports whether the radio is tuned to the control channel at time
// now (guard intervals count as CCH for listening purposes).
func (s Schedule) InCCH(now des.Time) bool {
	if s.Mode == AccessContinuous {
		return true
	}
	return s.phase(now) < s.CCHInterval
}
