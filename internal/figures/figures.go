// Package figures regenerates every table and figure of the paper's
// evaluation section (§IV-C) from scratch: the golden-run profiles of
// Fig. 4, the classification histograms of Figs. 5-7, the delay-campaign
// totals and collider shares of §IV-C1, and the DoS campaign of §IV-C2.
// The cmd/comfase-figures binary and the repository benchmarks are thin
// wrappers around this package.
package figures

import (
	"fmt"
	"io"
	"time"

	"comfase/internal/analysis"
	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

// Options tunes a reproduction run.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks the delay grid (5 starts x 5 values x 6 durations =
	// 150 experiments) for fast smoke runs; the full grid is Table II's
	// 11250.
	Quick bool
	// Progress, when non-nil, receives campaign progress.
	Progress core.Progress
}

// Result bundles everything the paper's evaluation section reports.
type Result struct {
	// GoldenLog is the Fig. 4 time series.
	GoldenLog *trace.FullLog
	// Golden summarises the reference run.
	Golden core.GoldenResult
	// Delay is the §IV-C1 campaign result.
	Delay *core.CampaignResult
	// DoS is the §IV-C2 campaign result.
	DoS *core.CampaignResult
	// Fig5, Fig6, Fig7 are the classification series.
	Fig5, Fig6, Fig7 analysis.Series
	// DelayColliders and DoSColliders are the collider attributions.
	DelayColliders []analysis.ColliderShare
	DoSColliders   []analysis.ColliderShare
	// DelayWall and DoSWall are the wall-clock campaign durations (the
	// paper reports ~7 h for 11250 experiments on a Ryzen 7 5800X).
	DelayWall time.Duration
	DoSWall   time.Duration
}

// DelaySetup returns the delay-campaign grid: Table II's full grid, or a
// reduced-but-representative one in quick mode.
func DelaySetup(quick bool) core.CampaignSetup {
	if !quick {
		return core.PaperDelayCampaign()
	}
	setup := core.CampaignSetup{
		Attack:  core.AttackDelay,
		Targets: []string{"vehicle.2"},
		Values:  []float64{0.2, 0.8, 1.4, 2.2, 3.0},
		Starts: []des.Time{
			17 * des.Second,
			18200 * des.Millisecond,
			19400 * des.Millisecond,
			19800 * des.Millisecond,
			21 * des.Second,
		},
		Durations: []des.Time{
			des.Second, 2 * des.Second, 4 * des.Second,
			8 * des.Second, 16 * des.Second, 30 * des.Second,
		},
	}
	return setup
}

// Run executes the full reproduction: golden run, delay campaign, DoS
// campaign, and all derived series.
func Run(opts Options) (*Result, error) {
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	log, golden, err := eng.GoldenRun()
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	delay, err := eng.RunCampaign(DelaySetup(opts.Quick), opts.Progress)
	if err != nil {
		return nil, err
	}
	delayWall := time.Since(t0)

	t0 = time.Now()
	dos, err := eng.RunCampaign(core.PaperDoSCampaign(), opts.Progress)
	if err != nil {
		return nil, err
	}
	dosWall := time.Since(t0)

	return &Result{
		GoldenLog:      log,
		Golden:         golden,
		Delay:          delay,
		DoS:            dos,
		Fig5:           analysis.ByDuration(delay.Experiments),
		Fig6:           analysis.ByValue(delay.Experiments),
		Fig7:           analysis.ByStart(delay.Experiments),
		DelayColliders: analysis.ColliderShares(delay.Experiments),
		DoSColliders:   analysis.ColliderShares(dos.Experiments),
		DelayWall:      delayWall,
		DoSWall:        dosWall,
	}, nil
}

// WriteReport renders the full evaluation report as text.
func (r *Result) WriteReport(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("ComFASE-Go reproduction report\n================================\n\n"); err != nil {
		return err
	}
	if err := p("Golden run (Fig. 4 reference): max deceleration %.3f m/s^2, %d beacon deliveries, %d kernel events\n\n",
		r.Golden.MaxDecel, r.Golden.Deliveries, r.Golden.Events); err != nil {
		return err
	}

	if err := p("Delay campaign (SS IV-C1): %s\n", analysis.SummaryLine(r.Delay)); err != nil {
		return err
	}
	if err := p("  wall clock: %v\n\n", r.DelayWall.Round(time.Millisecond)); err != nil {
		return err
	}
	for _, series := range []analysis.Series{r.Fig5, r.Fig6, r.Fig7} {
		if err := analysis.WriteSeriesTable(w, series); err != nil {
			return err
		}
		if err := p("\n"); err != nil {
			return err
		}
		if err := analysis.WriteSeriesBars(w, series, 50); err != nil {
			return err
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	if err := p("Delay-campaign deceleration severity grading (SS III-A Step-4):\n"); err != nil {
		return err
	}
	edges := analysis.PaperDecelEdges(r.Golden.MaxDecel)
	if err := analysis.WriteDecelHistogram(w, analysis.DecelHistogram(r.Delay.Experiments, edges)); err != nil {
		return err
	}
	if err := p("\nDelay-campaign colliders (paper: V2 65.4%%, V3 18.1%%, V4 16.5%%):\n"); err != nil {
		return err
	}
	if err := analysis.WriteColliderTable(w, r.DelayColliders); err != nil {
		return err
	}

	if err := p("\nDoS campaign (SS IV-C2): %s\n", analysis.SummaryLine(r.DoS)); err != nil {
		return err
	}
	if err := p("  wall clock: %v\n", r.DoSWall.Round(time.Millisecond)); err != nil {
		return err
	}
	if err := p("DoS colliders (paper: V2 48%%, V3 40%%, V4 12%%):\n"); err != nil {
		return err
	}
	if err := analysis.WriteColliderTable(w, r.DoSColliders); err != nil {
		return err
	}
	if err := p("\nDoS collider by start time (paper: 17.6-19.4 s -> V3, 19.6-20 s -> V4, rest -> V2):\n"); err != nil {
		return err
	}
	for _, e := range r.DoS.Experiments {
		collider := e.Collider
		if collider == "" {
			collider = "(no collision: " + e.Outcome.String() + ")"
		}
		if err := p("  start %-6v -> %s\n", e.Spec.Start, collider); err != nil {
			return err
		}
	}
	return nil
}
