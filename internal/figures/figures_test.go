package figures

import (
	"strings"
	"testing"

	"comfase/internal/core"
)

func TestDelaySetupFullIsTableII(t *testing.T) {
	full := DelaySetup(false)
	if full.NumExperiments() != 11250 {
		t.Errorf("full grid = %d, want 11250", full.NumExperiments())
	}
}

func TestDelaySetupQuickIsRepresentative(t *testing.T) {
	quick := DelaySetup(true)
	if err := quick.Validate(); err != nil {
		t.Fatalf("quick setup invalid: %v", err)
	}
	if quick.NumExperiments() != 150 {
		t.Errorf("quick grid = %d, want 150", quick.NumExperiments())
	}
	if quick.Attack != core.AttackDelay || quick.Targets[0] != "vehicle.2" {
		t.Errorf("quick setup %+v not a delay attack on vehicle 2", quick)
	}
}

// TestRunQuickEndToEnd is the integration test of the whole reproduction
// pipeline: 150 delay + 25 DoS experiments, all figures derived, report
// rendered. It asserts the §IV-C shapes the quick grid can carry.
func TestRunQuickEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quick reproduction takes ~3 s")
	}
	var lastDone, lastTotal int
	res, err := Run(Options{
		Seed:  1,
		Quick: true,
		Progress: func(done, total int) {
			lastDone, lastTotal = done, total
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lastDone != lastTotal || lastDone == 0 {
		t.Errorf("progress ended at %d/%d", lastDone, lastTotal)
	}

	// Golden run: Fig. 4 anchor.
	if res.Golden.MaxDecel < 1.4 || res.Golden.MaxDecel > 1.7 {
		t.Errorf("golden max decel = %v, want ~1.53", res.Golden.MaxDecel)
	}
	if res.GoldenLog.Len() < 5900 {
		t.Errorf("golden log %d samples", res.GoldenLog.Len())
	}

	// Delay campaign: no non-effective outcomes; severe present.
	if res.Delay.Counts.NonEffective != 0 {
		t.Errorf("non-effective = %d, want 0", res.Delay.Counts.NonEffective)
	}
	if res.Delay.Counts.Severe == 0 {
		t.Error("no severe outcomes in delay campaign")
	}
	if got := res.Delay.Counts.Total(); got != 150 {
		t.Errorf("delay total = %d", got)
	}

	// Fig. 6 shape: the lowest PD bucket has no severe cases, the
	// highest is dominated by them.
	if len(res.Fig6.Buckets) != 5 {
		t.Fatalf("Fig6 buckets = %d", len(res.Fig6.Buckets))
	}
	lo := res.Fig6.Buckets[0]
	hi := res.Fig6.Buckets[len(res.Fig6.Buckets)-1]
	if lo.Key != 0.2 || hi.Key != 3.0 {
		t.Errorf("Fig6 keys [%v..%v]", lo.Key, hi.Key)
	}
	if lo.Counts.Severe >= hi.Counts.Severe {
		t.Errorf("Fig6 not rising: severe %d at PD=0.2 vs %d at PD=3.0",
			lo.Counts.Severe, hi.Counts.Severe)
	}

	// Fig. 7 shape: the 19.8 s start (zero-acceleration phase) has
	// fewer severe cases than the 17.0 s start.
	var at17, at198 int
	for _, b := range res.Fig7.Buckets {
		switch b.Key {
		case 17.0:
			at17 = b.Counts.Severe
		case 19.8:
			at198 = b.Counts.Severe
		}
	}
	if at198 >= at17 {
		t.Errorf("Fig7 benign window missing: severe %d at 19.8s vs %d at 17.0s", at198, at17)
	}

	// DoS campaign: strong majority severe, collider order V2 >= V3 >= V4.
	if res.DoS.Counts.Severe < 20 {
		t.Errorf("DoS severe = %d/25", res.DoS.Counts.Severe)
	}
	if len(res.DoSColliders) < 2 {
		t.Fatalf("DoS colliders = %v", res.DoSColliders)
	}
	if res.DoSColliders[0].Vehicle != "vehicle.2" {
		t.Errorf("top DoS collider = %v, want vehicle.2", res.DoSColliders[0])
	}

	// Delay colliders: the attacked vehicle dominates (paper: 65.4%).
	if len(res.DelayColliders) == 0 || res.DelayColliders[0].Vehicle != "vehicle.2" {
		t.Errorf("delay colliders = %v, want vehicle.2 first", res.DelayColliders)
	}

	// The report renders all sections.
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	report := sb.String()
	for _, want := range []string{
		"Golden run", "Delay campaign", "Fig5-duration", "Fig6-pd-value",
		"Fig7-start-time", "DoS campaign", "collider by start time",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
